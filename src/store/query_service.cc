#include "store/query_service.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <utility>

#include "core/min_weighted.h"
#include "engine/worker_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"

namespace pie {
namespace {

KernelSpec MaxPpsSpec(Family family) {
  return {Function::kMax, Scheme::kPps, Regime::kKnownSeeds, family};
}

KernelSpec OrPpsSpec(Family family) {
  return {Function::kOr, Scheme::kPps, Regime::kKnownSeeds, family};
}

/// One pie_query_seconds{query=...} series per public aggregate. Callers
/// hold the reference in a function-local static so repeat queries never
/// touch the registry.
obs::Histogram& QueryHistogram(const char* query) {
  return obs::MetricsRegistry::Global().GetHistogram(
      "pie_query_seconds", "Wall time per aggregate query, by query type",
      obs::LatencyBuckets(), {{"query", query}});
}

/// Records the relative width (hi - lo) / |estimate| of every served
/// interval; zero estimates are skipped (the ratio is undefined there).
void ObserveCiWidth(const IntervalEstimate& interval) {
  static obs::Histogram& widths = obs::MetricsRegistry::Global().GetHistogram(
      "pie_ci_relative_width",
      "Relative width (hi - lo) / |estimate| of served confidence intervals",
      obs::RelativeWidthBuckets());
  if (interval.estimate != 0.0) {
    widths.Observe((interval.hi - interval.lo) /
                   std::abs(interval.estimate));
  }
}

/// Instrumentation of the degraded path (registry lookups are fine here:
/// answering from a partial store is the rare case, not the hot path).
void NoteDegradedQuery(const char* query, double coverage) {
  auto& reg = obs::MetricsRegistry::Global();
  reg.GetCounter("pie_degraded_queries_total",
                 "Aggregate queries answered from a degraded (partial-"
                 "coverage) snapshot, by query type",
                 {{"query", query}})
      .Increment();
  reg.GetGauge("pie_degraded_coverage",
               "Shard coverage fraction of the last degraded answer")
      .Set(coverage);
}

}  // namespace

QueryService::QueryService(std::shared_ptr<const StoreSnapshot> snapshot,
                           QueryServiceOptions options)
    : snapshot_(std::move(snapshot)), options_(options) {
  PIE_CHECK(snapshot_ != nullptr);
  PIE_CHECK(options_.num_threads >= 0);
}

QueryService QueryService::Borrowed(const StoreSnapshot& snapshot,
                                    QueryServiceOptions options) {
  return QueryService(
      std::shared_ptr<const StoreSnapshot>(&snapshot,
                                           [](const StoreSnapshot*) {}),
      options);
}

int QueryService::ScanThreads() const {
  return ResolveParallelism(options_.num_threads);
}

void QueryService::ForEachShard(const std::function<void(int)>& fn) const {
  // The shard fan-out and the within-shard chunk splits share the one
  // persistent pool, so a skewed store cannot oversubscribe: workers that
  // finish small shards early pick up chunk indices of the hot shard's
  // nested scan instead of idling.
  WorkerPool::Global().ParallelFor(snapshot_->num_shards(), ScanThreads(),
                                   fn);
}

IntervalEstimate QueryService::DegradeInterval(
    const std::vector<double>& est, const std::vector<double>& var) const {
  const int num_shards = snapshot_->num_shards();
  int m = 0;
  double est_sum = 0.0;
  double var_sum = 0.0;
  for (int s = 0; s < num_shards; ++s) {
    if (snapshot_->ShardAbsent(s)) continue;
    ++m;
    est_sum += est[static_cast<size_t>(s)];
    var_sum += var[static_cast<size_t>(s)];
  }
  // m >= 1 always: degraded recovery refuses a generation without at
  // least one verified shard (persist/checkpoint.cc).
  const double c = static_cast<double>(m) / static_cast<double>(num_shards);
  double variance = 0.0;
  if (options_.with_variance) {
    variance = var_sum / (c * c);
    if (m > 1 && m < num_shards) {
      const double mean = est_sum / static_cast<double>(m);
      double ss = 0.0;
      for (int s = 0; s < num_shards; ++s) {
        if (snapshot_->ShardAbsent(s)) continue;
        const double d = est[static_cast<size_t>(s)] - mean;
        ss += d * d;
      }
      variance += static_cast<double>(num_shards) *
                  static_cast<double>(num_shards - m) *
                  (ss / static_cast<double>(m - 1)) / static_cast<double>(m);
    }
  }
  IntervalEstimate out = MakeInterval(est_sum / c, variance, options_.ci);
  out.coverage = c;
  return out;
}

IntervalEstimate QueryService::DegradeFromPartials(
    const std::vector<std::vector<AccuracyAccumulator>>& partials,
    size_t k) const {
  std::vector<double> est;
  std::vector<double> var;
  est.reserve(partials.size());
  var.reserve(partials.size());
  for (const auto& shard : partials) {
    est.push_back(shard[k].sum());
    var.push_back(shard[k].variance());
  }
  return DegradeInterval(est, var);
}

namespace {

/// Fills one shard's r=2 PPS union batch: one row per key sampled in
/// either instance, slabs written in a deterministic order (s1's arrival
/// order, then s2's keys not already covered). Shared by the max-pair and
/// joint L1 scans so both see identical rows.
void FillPairBatch(const StreamingPpsSketch* s1, const StreamingPpsSketch* s2,
                   double tau1, double tau2, const SeedFunction& seed1,
                   const SeedFunction& seed2, OutcomeBatch* batch) {
  batch->Reset(Scheme::kPps, 2);
  auto add_key = [&](uint64_t key) {
    const int i = batch->AppendRow();
    double* tau = batch->param_row(i);
    tau[0] = tau1;
    tau[1] = tau2;
    double* seed = batch->seed_row(i);
    seed[0] = seed1(key);
    seed[1] = seed2(key);
    uint8_t* sampled = batch->sampled_row(i);
    double* value = batch->value_row(i);
    sampled[0] = sampled[1] = 0;
    value[0] = value[1] = 0.0;
    double v = 0.0;
    if (s1 != nullptr && s1->Lookup(key, &v)) {
      sampled[0] = 1;
      value[0] = v;
    }
    if (s2 != nullptr && s2->Lookup(key, &v)) {
      sampled[1] = 1;
      value[1] = v;
    }
  };
  if (s1 != nullptr) {
    for (const auto& e : s1->entries()) add_key(e.key);
  }
  if (s2 != nullptr) {
    for (const auto& e : s2->entries()) {
      if (s1 == nullptr || !s1->Lookup(e.key, nullptr)) add_key(e.key);
    }
  }
}

}  // namespace

void QueryService::ScanMaxPair(
    int i1, int i2, const std::vector<const EstimatorKernel*>& kernels,
    std::vector<AccuracyAccumulator>* totals,
    std::vector<std::vector<AccuracyAccumulator>>* shard_partials) const {
  obs::ScopedSpan span("scan/max_pair");
  const double tau1 = snapshot_->TauFor(i1);
  const double tau2 = snapshot_->TauFor(i2);
  const SeedFunction seed1(snapshot_->InstanceSalt(i1));
  const SeedFunction seed2(snapshot_->InstanceSalt(i2));
  const int num_shards = snapshot_->num_shards();
  const size_t num_kernels = kernels.size();
  std::vector<std::vector<AccuracyAccumulator>> partial(
      static_cast<size_t>(num_shards),
      std::vector<AccuracyAccumulator>(num_kernels));
  // Idle pool workers split each shard's chunked scan (a hot shard of a
  // skewed store no longer serializes the query); results are unchanged
  // for any value (the chunked driver is thread-count invariant).
  const int scan_threads = ScanThreads();
  ForEachShard([&](int s) {
    const ShardSnapshot& shard = snapshot_->Shard(s);
    OutcomeBatch batch;
    FillPairBatch(shard.Instance(i1), shard.Instance(i2), tau1, tau2, seed1,
                  seed2, &batch);
    for (size_t k = 0; k < num_kernels; ++k) {
      AccuracyAccumulator& acc = partial[static_cast<size_t>(s)][k];
      if (options_.with_variance) {
        acc.AddBatch(*kernels[k], batch, scan_threads);
      } else {
        acc.AddBatchEstimateOnly(*kernels[k], batch, scan_threads);
      }
    }
  });
  totals->assign(num_kernels, AccuracyAccumulator());
  for (int s = 0; s < num_shards; ++s) {
    for (size_t k = 0; k < num_kernels; ++k) {
      (*totals)[k].Merge(partial[static_cast<size_t>(s)][k]);
    }
  }
  if (shard_partials != nullptr) *shard_partials = std::move(partial);
}

Result<DualInterval> QueryService::MaxDominance(int i1, int i2) const {
  static obs::Histogram& latency = QueryHistogram("max_dominance");
  obs::ScopedTimer timer(latency);
  obs::ScopedSpan span("query/max_dominance");
  const SamplingParams params({snapshot_->TauFor(i1), snapshot_->TauFor(i2)},
                              options_.quad_tol);
  auto& engine = EstimationEngine::Global();
  auto ht = engine.Kernel(MaxPpsSpec(Family::kHt), params);
  auto l = engine.Kernel(MaxPpsSpec(Family::kL), params);
  PIE_RETURN_IF_ERROR(ht.status());
  PIE_RETURN_IF_ERROR(l.status());

  const bool degraded = snapshot_->absent_shards() > 0;
  std::vector<AccuracyAccumulator> totals;
  std::vector<std::vector<AccuracyAccumulator>> partials;
  ScanMaxPair(i1, i2, {ht->get(), l->get()}, &totals,
              degraded ? &partials : nullptr);
  DualInterval out;
  if (degraded) {
    out.ht = DegradeFromPartials(partials, 0);
    out.l = DegradeFromPartials(partials, 1);
    NoteDegradedQuery("max_dominance", out.ht.coverage);
  } else {
    out.ht = totals[0].Interval(options_.ci);
    out.l = totals[1].Interval(options_.ci);
  }
  ObserveCiWidth(out.ht);
  ObserveCiWidth(out.l);
  return out;
}

Result<SelectedEstimate> QueryService::MaxDominanceAuto(int i1, int i2) const {
  static obs::Histogram& latency = QueryHistogram("max_dominance_auto");
  obs::ScopedTimer timer(latency);
  obs::ScopedSpan span("query/max_dominance_auto");
  const SamplingParams params({snapshot_->TauFor(i1), snapshot_->TauFor(i2)},
                              options_.quad_tol);
  // One exact-variance ranking per threshold class, ever: repeat queries
  // against the same (tau1, tau2, quad_tol) class serve the cached spec.
  auto chosen = SelectorCache::Global().Choose(
      Function::kMax, Scheme::kPps, Regime::kKnownSeeds, params);
  PIE_RETURN_IF_ERROR(chosen.status());
  auto kernel = EstimationEngine::Global().Kernel(*chosen, params);
  PIE_RETURN_IF_ERROR(kernel.status());

  const bool degraded = snapshot_->absent_shards() > 0;
  std::vector<AccuracyAccumulator> totals;
  std::vector<std::vector<AccuracyAccumulator>> partials;
  ScanMaxPair(i1, i2, {kernel->get()}, &totals,
              degraded ? &partials : nullptr);
  SelectedEstimate out;
  out.spec = *chosen;
  if (degraded) {
    out.interval = DegradeFromPartials(partials, 0);
    NoteDegradedQuery("max_dominance_auto", out.interval.coverage);
  } else {
    out.interval = totals[0].Interval(options_.ci);
  }
  ObserveCiWidth(out.interval);
  return out;
}

Result<IntervalEstimate> QueryService::MinDominanceHt(int i1, int i2) const {
  static obs::Histogram& latency = QueryHistogram("min_dominance_ht");
  obs::ScopedTimer timer(latency);
  obs::ScopedSpan span("query/min_dominance_ht");
  const double tau1 = snapshot_->TauFor(i1);
  const double tau2 = snapshot_->TauFor(i2);
  auto min_ht = EstimationEngine::Global().Kernel(
      {Function::kMin, Scheme::kPps, Regime::kUnknownSeeds, Family::kHt},
      SamplingParams({tau1, tau2}, options_.quad_tol));
  PIE_RETURN_IF_ERROR(min_ht.status());

  obs::ScopedSpan scan_span("scan/min_ht");
  const int num_shards = snapshot_->num_shards();
  std::vector<AccuracyAccumulator> partial(static_cast<size_t>(num_shards));
  const int scan_threads = ScanThreads();
  ForEachShard([&](int s) {
    const ShardSnapshot& shard = snapshot_->Shard(s);
    const StreamingPpsSketch* s1 = shard.Instance(i1);
    const StreamingPpsSketch* s2 = shard.Instance(i2);
    if (s1 == nullptr || s2 == nullptr) return;
    // min^(HT) needs both entries; the unknown-seeds kernel never reads
    // the seed slab, which stays zeroed for interface parity.
    OutcomeBatch batch;
    batch.Reset(Scheme::kPps, 2);
    for (const auto& e : s1->entries()) {
      double v2 = 0.0;
      if (!s2->Lookup(e.key, &v2)) continue;
      const int i = batch.AppendRow();
      double* tau = batch.param_row(i);
      tau[0] = tau1;
      tau[1] = tau2;
      double* seed = batch.seed_row(i);
      seed[0] = seed[1] = 0.0;
      uint8_t* sampled = batch.sampled_row(i);
      sampled[0] = sampled[1] = 1;
      double* value = batch.value_row(i);
      value[0] = e.weight;
      value[1] = v2;
    }
    AccuracyAccumulator& acc = partial[static_cast<size_t>(s)];
    if (options_.with_variance) {
      acc.AddBatch(**min_ht, batch, scan_threads);
    } else {
      acc.AddBatchEstimateOnly(**min_ht, batch, scan_threads);
    }
  });

  IntervalEstimate interval;
  if (snapshot_->absent_shards() > 0) {
    std::vector<double> est;
    std::vector<double> var;
    est.reserve(partial.size());
    var.reserve(partial.size());
    for (const auto& p : partial) {
      est.push_back(p.sum());
      var.push_back(p.variance());
    }
    interval = DegradeInterval(est, var);
    NoteDegradedQuery("min_dominance_ht", interval.coverage);
  } else {
    AccuracyAccumulator total;
    for (const auto& p : partial) total.Merge(p);
    interval = total.Interval(options_.ci);
  }
  ObserveCiWidth(interval);
  return interval;
}

Result<IntervalEstimate> QueryService::L1Distance(int i1, int i2) const {
  static obs::Histogram& latency = QueryHistogram("l1_distance");
  obs::ScopedTimer timer(latency);
  obs::ScopedSpan span("query/l1_distance");
  const double tau1 = snapshot_->TauFor(i1);
  const double tau2 = snapshot_->TauFor(i2);
  const SamplingParams params({tau1, tau2}, options_.quad_tol);
  auto& engine = EstimationEngine::Global();
  auto max_l = engine.Kernel(MaxPpsSpec(Family::kL), params);
  PIE_RETURN_IF_ERROR(max_l.status());
  auto min_ht = engine.Kernel(
      {Function::kMin, Scheme::kPps, Regime::kUnknownSeeds, Family::kHt},
      params);
  PIE_RETURN_IF_ERROR(min_ht.status());

  // Joint scan: both estimators read each key's ONE shared outcome from
  // the same union batch, so the per-key covariance is estimable exactly:
  //   Cov-hat = X(o) Y(o) - max*min/p_all on the all-sampled event
  // (MaxMinProductRow; X Y is unbiased for E[XY] trivially, the product
  // term for max(v) min(v)). Keys missing an entry contribute Y = 0 and
  // product-hat = 0, so the cross term costs nothing on sparse rows.
  const MinHtWeighted min_core({tau1, tau2});
  const auto cross = [&min_core](const BatchView& chunk, int i, double x,
                                 double y) {
    return x * y -
           min_core.MaxMinProductRow(chunk.sampled_row(i),
                                     chunk.value_row(i));
  };
  const SeedFunction seed1(snapshot_->InstanceSalt(i1));
  const SeedFunction seed2(snapshot_->InstanceSalt(i2));
  obs::ScopedSpan scan_span("scan/l1_joint");
  const int num_shards = snapshot_->num_shards();
  std::vector<DifferenceAccumulator> partial(
      static_cast<size_t>(num_shards));
  ForEachShard([&](int s) {
    const ShardSnapshot& shard = snapshot_->Shard(s);
    OutcomeBatch batch;
    FillPairBatch(shard.Instance(i1), shard.Instance(i2), tau1, tau2, seed1,
                  seed2, &batch);
    partial[static_cast<size_t>(s)].AddBatch(**max_l, **min_ht, batch, cross,
                                             options_.with_variance);
  });
  IntervalEstimate interval;
  if (snapshot_->absent_shards() > 0) {
    // Per-shard variance uses the same joint-clamped-to-conservative rule
    // as DifferenceAccumulator::Interval, applied shard-wise.
    std::vector<double> est;
    std::vector<double> var;
    est.reserve(partial.size());
    var.reserve(partial.size());
    for (const auto& p : partial) {
      est.push_back(p.estimate());
      const double joint = p.joint_variance();
      const double ceiling = p.conservative_variance();
      var.push_back(std::max(0.0, std::min(joint, ceiling)));
    }
    interval = DegradeInterval(est, var);
    NoteDegradedQuery("l1_distance", interval.coverage);
  } else {
    DifferenceAccumulator total;
    for (const auto& p : partial) total.Merge(p);
    interval = total.Interval(options_.ci);
  }
  ObserveCiWidth(interval);
  return interval;
}

Status QueryService::ScanOrUnion(
    const std::vector<int>& instances,
    const std::vector<const EstimatorKernel*>& kernels,
    std::vector<AccuracyAccumulator>* totals,
    std::vector<std::vector<AccuracyAccumulator>>* shard_partials) const {
  obs::ScopedSpan span("scan/or_union");
  const int r = static_cast<int>(instances.size());
  std::vector<double> taus;
  taus.reserve(instances.size());
  for (int instance : instances) taus.push_back(snapshot_->TauFor(instance));

  std::vector<SeedFunction> seeds;
  seeds.reserve(instances.size());
  for (int instance : instances) {
    seeds.emplace_back(snapshot_->InstanceSalt(instance));
  }
  const int num_shards = snapshot_->num_shards();
  const size_t num_kernels = kernels.size();
  std::vector<std::vector<AccuracyAccumulator>> partial(
      static_cast<size_t>(num_shards),
      std::vector<AccuracyAccumulator>(num_kernels));
  std::atomic<bool> non_unit_weight{false};
  const int scan_threads = ScanThreads();
  ForEachShard([&](int s) {
    const ShardSnapshot& shard = snapshot_->Shard(s);
    std::vector<const StreamingPpsSketch*> sketches(static_cast<size_t>(r));
    for (int j = 0; j < r; ++j) {
      sketches[static_cast<size_t>(j)] = shard.Instance(instances[j]);
    }
    OutcomeBatch batch;
    batch.Reset(Scheme::kPps, r);
    // Each instance's entries contribute the keys no earlier instance
    // already covered, so the union is scanned exactly once per key.
    for (int j = 0; j < r; ++j) {
      const StreamingPpsSketch* sj = sketches[static_cast<size_t>(j)];
      if (sj == nullptr) continue;
      for (const auto& e : sj->entries()) {
        if (e.weight != 1.0) {
          non_unit_weight.store(true, std::memory_order_relaxed);
          return;
        }
        bool covered = false;
        for (int j2 = 0; j2 < j && !covered; ++j2) {
          const StreamingPpsSketch* prev = sketches[static_cast<size_t>(j2)];
          covered = prev != nullptr && prev->Lookup(e.key, nullptr);
        }
        if (covered) continue;
        const int i = batch.AppendRow();
        double* tau = batch.param_row(i);
        double* seed = batch.seed_row(i);
        uint8_t* sampled = batch.sampled_row(i);
        double* value = batch.value_row(i);
        for (int j2 = 0; j2 < r; ++j2) {
          tau[j2] = taus[static_cast<size_t>(j2)];
          seed[j2] = seeds[static_cast<size_t>(j2)](e.key);
          const StreamingPpsSketch* other = sketches[static_cast<size_t>(j2)];
          const bool in = other != nullptr && other->Lookup(e.key, nullptr);
          sampled[j2] = in ? 1 : 0;
          value[j2] = in ? 1.0 : 0.0;
        }
      }
    }
    for (size_t k = 0; k < num_kernels; ++k) {
      AccuracyAccumulator& acc = partial[static_cast<size_t>(s)][k];
      if (options_.with_variance) {
        acc.AddBatch(*kernels[k], batch, scan_threads);
      } else {
        acc.AddBatchEstimateOnly(*kernels[k], batch, scan_threads);
      }
    }
  });
  if (non_unit_weight.load()) {
    return Status::InvalidArgument(
        "distinct union requires unit-weight ingestion (set semantics)");
  }

  totals->assign(num_kernels, AccuracyAccumulator());
  for (int s = 0; s < num_shards; ++s) {
    for (size_t k = 0; k < num_kernels; ++k) {
      (*totals)[k].Merge(partial[static_cast<size_t>(s)][k]);
    }
  }
  if (shard_partials != nullptr) *shard_partials = std::move(partial);
  return Status::OK();
}

Result<DualInterval> QueryService::DistinctUnion(
    const std::vector<int>& instances) const {
  if (instances.size() < 2) {
    return Status::InvalidArgument("distinct union needs >= 2 instances");
  }
  static obs::Histogram& latency = QueryHistogram("distinct_union");
  obs::ScopedTimer timer(latency);
  obs::ScopedSpan span("query/distinct_union");
  std::vector<double> taus;
  taus.reserve(instances.size());
  for (int instance : instances) taus.push_back(snapshot_->TauFor(instance));
  const SamplingParams params(taus, options_.quad_tol);
  auto& engine = EstimationEngine::Global();
  auto ht = engine.Kernel(OrPpsSpec(Family::kHt), params);
  auto l = engine.Kernel(OrPpsSpec(Family::kL), params);
  PIE_RETURN_IF_ERROR(ht.status());
  PIE_RETURN_IF_ERROR(l.status());

  const bool degraded = snapshot_->absent_shards() > 0;
  std::vector<AccuracyAccumulator> totals;
  std::vector<std::vector<AccuracyAccumulator>> partials;
  PIE_RETURN_IF_ERROR(ScanOrUnion(instances, {ht->get(), l->get()}, &totals,
                                  degraded ? &partials : nullptr));
  DualInterval out;
  if (degraded) {
    out.ht = DegradeFromPartials(partials, 0);
    out.l = DegradeFromPartials(partials, 1);
    NoteDegradedQuery("distinct_union", out.ht.coverage);
  } else {
    out.ht = totals[0].Interval(options_.ci);
    out.l = totals[1].Interval(options_.ci);
  }
  ObserveCiWidth(out.ht);
  ObserveCiWidth(out.l);
  return out;
}

Result<SelectedEstimate> QueryService::DistinctUnionAuto(
    const std::vector<int>& instances) const {
  if (instances.size() < 2) {
    return Status::InvalidArgument("distinct union needs >= 2 instances");
  }
  static obs::Histogram& latency = QueryHistogram("distinct_union_auto");
  obs::ScopedTimer timer(latency);
  obs::ScopedSpan span("query/distinct_union_auto");
  std::vector<double> taus;
  taus.reserve(instances.size());
  for (int instance : instances) taus.push_back(snapshot_->TauFor(instance));
  const SamplingParams params(taus, options_.quad_tol);
  // The cached selector naturally restricts to admissible families: e.g.
  // OR^(U) competes at r = 2 but is excluded for wider unions where only
  // HT and the Theorem 4.2 L recursion have constructions.
  auto chosen = SelectorCache::Global().Choose(
      Function::kOr, Scheme::kPps, Regime::kKnownSeeds, params);
  PIE_RETURN_IF_ERROR(chosen.status());
  auto kernel = EstimationEngine::Global().Kernel(*chosen, params);
  PIE_RETURN_IF_ERROR(kernel.status());

  const bool degraded = snapshot_->absent_shards() > 0;
  std::vector<AccuracyAccumulator> totals;
  std::vector<std::vector<AccuracyAccumulator>> partials;
  PIE_RETURN_IF_ERROR(ScanOrUnion(instances, {kernel->get()}, &totals,
                                  degraded ? &partials : nullptr));
  SelectedEstimate out;
  out.spec = *chosen;
  if (degraded) {
    out.interval = DegradeFromPartials(partials, 0);
    NoteDegradedQuery("distinct_union_auto", out.interval.coverage);
  } else {
    out.interval = totals[0].Interval(options_.ci);
  }
  ObserveCiWidth(out.interval);
  return out;
}

}  // namespace pie
