#include "store/query_service.h"

#include <atomic>
#include <thread>
#include <utility>

#include "util/check.h"

namespace pie {
namespace {

KernelSpec MaxPpsSpec(Family family) {
  return {Function::kMax, Scheme::kPps, Regime::kKnownSeeds, family};
}

KernelSpec OrPpsSpec(Family family) {
  return {Function::kOr, Scheme::kPps, Regime::kKnownSeeds, family};
}

}  // namespace

QueryService::QueryService(std::shared_ptr<const StoreSnapshot> snapshot,
                           QueryServiceOptions options)
    : snapshot_(std::move(snapshot)), options_(options) {
  PIE_CHECK(snapshot_ != nullptr);
  PIE_CHECK(options_.num_threads >= 0);
}

QueryService QueryService::Borrowed(const StoreSnapshot& snapshot,
                                    QueryServiceOptions options) {
  options.num_threads = 1;
  return QueryService(
      std::shared_ptr<const StoreSnapshot>(&snapshot,
                                           [](const StoreSnapshot*) {}),
      options);
}

void QueryService::ForEachShard(const std::function<void(int)>& fn) const {
  const int num_shards = snapshot_->num_shards();
  int threads = options_.num_threads;
  if (threads == 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads < 1) threads = 1;
  }
  if (threads > num_shards) threads = num_shards;
  if (threads <= 1) {
    for (int s = 0; s < num_shards; ++s) fn(s);
    return;
  }
  std::atomic<int> next{0};
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      for (int s = next.fetch_add(1, std::memory_order_relaxed);
           s < num_shards;
           s = next.fetch_add(1, std::memory_order_relaxed)) {
        fn(s);
      }
    });
  }
  for (auto& worker : workers) worker.join();
}

void QueryService::ScanMaxPair(
    int i1, int i2, const std::vector<const EstimatorKernel*>& kernels,
    std::vector<AccuracyAccumulator>* totals) const {
  const double tau1 = snapshot_->TauFor(i1);
  const double tau2 = snapshot_->TauFor(i2);
  const SeedFunction seed1(snapshot_->InstanceSalt(i1));
  const SeedFunction seed2(snapshot_->InstanceSalt(i2));
  const int num_shards = snapshot_->num_shards();
  const size_t num_kernels = kernels.size();
  std::vector<std::vector<AccuracyAccumulator>> partial(
      static_cast<size_t>(num_shards),
      std::vector<AccuracyAccumulator>(num_kernels));
  ForEachShard([&](int s) {
    const ShardSnapshot& shard = snapshot_->Shard(s);
    const StreamingPpsSketch* s1 = shard.Instance(i1);
    const StreamingPpsSketch* s2 = shard.Instance(i2);
    OutcomeBatch batch;
    batch.Reset(Scheme::kPps, 2);
    auto add_key = [&](uint64_t key) {
      const int i = batch.AppendRow();
      double* tau = batch.param_row(i);
      tau[0] = tau1;
      tau[1] = tau2;
      double* seed = batch.seed_row(i);
      seed[0] = seed1(key);
      seed[1] = seed2(key);
      uint8_t* sampled = batch.sampled_row(i);
      double* value = batch.value_row(i);
      sampled[0] = sampled[1] = 0;
      value[0] = value[1] = 0.0;
      double v = 0.0;
      if (s1 != nullptr && s1->Lookup(key, &v)) {
        sampled[0] = 1;
        value[0] = v;
      }
      if (s2 != nullptr && s2->Lookup(key, &v)) {
        sampled[1] = 1;
        value[1] = v;
      }
    };
    if (s1 != nullptr) {
      for (const auto& e : s1->entries()) add_key(e.key);
    }
    if (s2 != nullptr) {
      for (const auto& e : s2->entries()) {
        if (s1 == nullptr || !s1->Lookup(e.key, nullptr)) add_key(e.key);
      }
    }
    for (size_t k = 0; k < num_kernels; ++k) {
      AccuracyAccumulator& acc = partial[static_cast<size_t>(s)][k];
      if (options_.with_variance) {
        acc.AddBatch(*kernels[k], batch);
      } else {
        acc.AddBatchEstimateOnly(*kernels[k], batch);
      }
    }
  });
  totals->assign(num_kernels, AccuracyAccumulator());
  for (int s = 0; s < num_shards; ++s) {
    for (size_t k = 0; k < num_kernels; ++k) {
      (*totals)[k].Merge(partial[static_cast<size_t>(s)][k]);
    }
  }
}

Result<DualInterval> QueryService::MaxDominance(int i1, int i2) const {
  const SamplingParams params({snapshot_->TauFor(i1), snapshot_->TauFor(i2)},
                              options_.quad_tol);
  auto& engine = EstimationEngine::Global();
  auto ht = engine.Kernel(MaxPpsSpec(Family::kHt), params);
  auto l = engine.Kernel(MaxPpsSpec(Family::kL), params);
  PIE_RETURN_IF_ERROR(ht.status());
  PIE_RETURN_IF_ERROR(l.status());

  std::vector<AccuracyAccumulator> totals;
  ScanMaxPair(i1, i2, {ht->get(), l->get()}, &totals);
  DualInterval out;
  out.ht = totals[0].Interval(options_.ci);
  out.l = totals[1].Interval(options_.ci);
  return out;
}

Result<SelectedEstimate> QueryService::MaxDominanceAuto(int i1, int i2) const {
  const SamplingParams params({snapshot_->TauFor(i1), snapshot_->TauFor(i2)},
                              options_.quad_tol);
  auto report = EstimatorSelector().Select(Function::kMax, Scheme::kPps,
                                           Regime::kKnownSeeds, params);
  PIE_RETURN_IF_ERROR(report.status());
  auto kernel = EstimationEngine::Global().Kernel(report->chosen, params);
  PIE_RETURN_IF_ERROR(kernel.status());

  std::vector<AccuracyAccumulator> totals;
  ScanMaxPair(i1, i2, {kernel->get()}, &totals);
  SelectedEstimate out;
  out.spec = report->chosen;
  out.interval = totals[0].Interval(options_.ci);
  return out;
}

Result<IntervalEstimate> QueryService::MinDominanceHt(int i1, int i2) const {
  const double tau1 = snapshot_->TauFor(i1);
  const double tau2 = snapshot_->TauFor(i2);
  auto min_ht = EstimationEngine::Global().Kernel(
      {Function::kMin, Scheme::kPps, Regime::kUnknownSeeds, Family::kHt},
      SamplingParams({tau1, tau2}, options_.quad_tol));
  PIE_RETURN_IF_ERROR(min_ht.status());

  const int num_shards = snapshot_->num_shards();
  std::vector<AccuracyAccumulator> partial(static_cast<size_t>(num_shards));
  ForEachShard([&](int s) {
    const ShardSnapshot& shard = snapshot_->Shard(s);
    const StreamingPpsSketch* s1 = shard.Instance(i1);
    const StreamingPpsSketch* s2 = shard.Instance(i2);
    if (s1 == nullptr || s2 == nullptr) return;
    // min^(HT) needs both entries; the unknown-seeds kernel never reads
    // the seed slab, which stays zeroed for interface parity.
    OutcomeBatch batch;
    batch.Reset(Scheme::kPps, 2);
    for (const auto& e : s1->entries()) {
      double v2 = 0.0;
      if (!s2->Lookup(e.key, &v2)) continue;
      const int i = batch.AppendRow();
      double* tau = batch.param_row(i);
      tau[0] = tau1;
      tau[1] = tau2;
      double* seed = batch.seed_row(i);
      seed[0] = seed[1] = 0.0;
      uint8_t* sampled = batch.sampled_row(i);
      sampled[0] = sampled[1] = 1;
      double* value = batch.value_row(i);
      value[0] = e.weight;
      value[1] = v2;
    }
    AccuracyAccumulator& acc = partial[static_cast<size_t>(s)];
    if (options_.with_variance) {
      acc.AddBatch(**min_ht, batch);
    } else {
      acc.AddBatchEstimateOnly(**min_ht, batch);
    }
  });

  AccuracyAccumulator total;
  for (const auto& p : partial) total.Merge(p);
  return total.Interval(options_.ci);
}

Result<IntervalEstimate> QueryService::L1Distance(int i1, int i2) const {
  auto max_est = MaxDominance(i1, i2);
  PIE_RETURN_IF_ERROR(max_est.status());
  auto min_est = MinDominanceHt(i1, i2);
  PIE_RETURN_IF_ERROR(min_est.status());
  // The difference's variance needs the covariance of the two scans (they
  // share the sample); sd(X - Y) <= sd(X) + sd(Y) gives a conservative
  // but always-valid width.
  const double std_err_bound = max_est->l.std_err + min_est->std_err;
  return MakeInterval(max_est->l.estimate - min_est->estimate,
                      std_err_bound * std_err_bound, options_.ci);
}

Result<DualInterval> QueryService::DistinctUnion(
    const std::vector<int>& instances) const {
  const int r = static_cast<int>(instances.size());
  if (r < 2) {
    return Status::InvalidArgument("distinct union needs >= 2 instances");
  }
  std::vector<double> taus;
  taus.reserve(instances.size());
  for (int instance : instances) taus.push_back(snapshot_->TauFor(instance));
  const SamplingParams params(taus, options_.quad_tol);
  auto& engine = EstimationEngine::Global();
  auto ht = engine.Kernel(OrPpsSpec(Family::kHt), params);
  auto l = engine.Kernel(OrPpsSpec(Family::kL), params);
  PIE_RETURN_IF_ERROR(ht.status());
  PIE_RETURN_IF_ERROR(l.status());

  std::vector<SeedFunction> seeds;
  seeds.reserve(instances.size());
  for (int instance : instances) {
    seeds.emplace_back(snapshot_->InstanceSalt(instance));
  }
  const int num_shards = snapshot_->num_shards();
  std::vector<AccuracyAccumulator> ht_partial(
      static_cast<size_t>(num_shards));
  std::vector<AccuracyAccumulator> l_partial(static_cast<size_t>(num_shards));
  std::atomic<bool> non_unit_weight{false};
  ForEachShard([&](int s) {
    const ShardSnapshot& shard = snapshot_->Shard(s);
    std::vector<const StreamingPpsSketch*> sketches(static_cast<size_t>(r));
    for (int j = 0; j < r; ++j) {
      sketches[static_cast<size_t>(j)] = shard.Instance(instances[j]);
    }
    OutcomeBatch batch;
    batch.Reset(Scheme::kPps, r);
    // Each instance's entries contribute the keys no earlier instance
    // already covered, so the union is scanned exactly once per key.
    for (int j = 0; j < r; ++j) {
      const StreamingPpsSketch* sj = sketches[static_cast<size_t>(j)];
      if (sj == nullptr) continue;
      for (const auto& e : sj->entries()) {
        if (e.weight != 1.0) {
          non_unit_weight.store(true, std::memory_order_relaxed);
          return;
        }
        bool covered = false;
        for (int j2 = 0; j2 < j && !covered; ++j2) {
          const StreamingPpsSketch* prev = sketches[static_cast<size_t>(j2)];
          covered = prev != nullptr && prev->Lookup(e.key, nullptr);
        }
        if (covered) continue;
        const int i = batch.AppendRow();
        double* tau = batch.param_row(i);
        double* seed = batch.seed_row(i);
        uint8_t* sampled = batch.sampled_row(i);
        double* value = batch.value_row(i);
        for (int j2 = 0; j2 < r; ++j2) {
          tau[j2] = taus[static_cast<size_t>(j2)];
          seed[j2] = seeds[static_cast<size_t>(j2)](e.key);
          const StreamingPpsSketch* other = sketches[static_cast<size_t>(j2)];
          const bool in = other != nullptr && other->Lookup(e.key, nullptr);
          sampled[j2] = in ? 1 : 0;
          value[j2] = in ? 1.0 : 0.0;
        }
      }
    }
    if (options_.with_variance) {
      ht_partial[static_cast<size_t>(s)].AddBatch(**ht, batch);
      l_partial[static_cast<size_t>(s)].AddBatch(**l, batch);
    } else {
      ht_partial[static_cast<size_t>(s)].AddBatchEstimateOnly(**ht, batch);
      l_partial[static_cast<size_t>(s)].AddBatchEstimateOnly(**l, batch);
    }
  });
  if (non_unit_weight.load()) {
    return Status::InvalidArgument(
        "distinct union requires unit-weight ingestion (set semantics)");
  }

  AccuracyAccumulator ht_total, l_total;
  for (int s = 0; s < num_shards; ++s) {
    ht_total.Merge(ht_partial[static_cast<size_t>(s)]);
    l_total.Merge(l_partial[static_cast<size_t>(s)]);
  }
  DualInterval out;
  out.ht = ht_total.Interval(options_.ci);
  out.l = l_total.Interval(options_.ci);
  return out;
}

}  // namespace pie
