#include "store/sketch_store.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/check.h"

namespace pie {
namespace {

double TauFromOptions(const SketchStoreOptions& options, int instance) {
  auto it = options.instance_tau.find(instance);
  return it != options.instance_tau.end() ? it->second : options.default_tau;
}

uint64_t SaltFromOptions(const SketchStoreOptions& options, int instance) {
  if (options.coordinated) return options.salt;
  return HashCombine(options.salt, static_cast<uint64_t>(instance));
}

// Validated before the shard vector is sized: a nonpositive count must hit
// the check, not convert to a huge size_t inside std::vector.
size_t CheckedShardCount(int num_shards) {
  PIE_CHECK(num_shards > 0);
  return static_cast<size_t>(num_shards);
}

}  // namespace

const StreamingPpsSketch* ShardSnapshot::Instance(int instance) const {
  auto it = sketches_.find(instance);
  return it != sketches_.end() ? &it->second : nullptr;
}

double StoreSnapshot::TauFor(int instance) const {
  return TauFromOptions(options_, instance);
}

uint64_t StoreSnapshot::InstanceSalt(int instance) const {
  return SaltFromOptions(options_, instance);
}

std::vector<int> StoreSnapshot::Instances() const {
  std::vector<int> out;
  for (const auto& shard : shards_) {
    for (const auto& [instance, sketch] : shard->sketches()) {
      out.push_back(instance);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

uint64_t StoreSnapshot::UpdateCount(int instance) const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    const StreamingPpsSketch* sketch = shard->Instance(instance);
    if (sketch != nullptr) total += sketch->num_updates();
  }
  return total;
}

StreamingPpsSketch StoreSnapshot::MergedInstance(int instance) const {
  StreamingPpsSketch merged(TauFor(instance), InstanceSalt(instance));
  for (const auto& shard : shards_) {
    const StreamingPpsSketch* sketch = shard->Instance(instance);
    if (sketch != nullptr) merged.Merge(*sketch);
  }
  return merged;
}

SketchStore::SketchStore(SketchStoreOptions options)
    : options_(std::move(options)),
      shards_(CheckedShardCount(options_.num_shards)) {
  PIE_CHECK(options_.default_tau > 0 && std::isfinite(options_.default_tau));
  for (const auto& [instance, tau] : options_.instance_tau) {
    PIE_CHECK(tau > 0 && std::isfinite(tau));
  }
}

double SketchStore::TauFor(int instance) const {
  return TauFromOptions(options_, instance);
}

uint64_t SketchStore::InstanceSalt(int instance) const {
  return SaltFromOptions(options_, instance);
}

StreamingPpsSketch& SketchStore::LiveSketch(Shard& shard, int instance) {
  auto it = shard.live.find(instance);
  if (it == shard.live.end()) {
    it = shard.live
             .emplace(instance, StreamingPpsSketch(TauFor(instance),
                                                   InstanceSalt(instance)))
             .first;
  }
  return it->second;
}

void SketchStore::Update(int instance, uint64_t key, double weight) {
  Shard& shard = shards_[ShardOf(key)];
  std::lock_guard<std::mutex> lock(shard.mu);
  LiveSketch(shard, instance).Update(key, weight);
  shard.version.fetch_add(1, std::memory_order_release);
}

void SketchStore::UpdateBatch(int instance,
                              const std::vector<WeightedItem>& items) {
  // Group records by shard so each dirtied shard pays one lock/version
  // update per batch instead of one per record. Bucketing preserves the
  // per-shard arrival order of the original sequence.
  std::vector<std::vector<WeightedItem>> by_shard(shards_.size());
  for (const auto& item : items) {
    by_shard[static_cast<size_t>(ShardOf(item.key))].push_back(item);
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (by_shard[s].empty()) continue;
    Shard& shard = shards_[s];
    std::lock_guard<std::mutex> lock(shard.mu);
    StreamingPpsSketch& sketch = LiveSketch(shard, instance);
    for (const auto& item : by_shard[s]) sketch.Update(item.key, item.weight);
    shard.version.fetch_add(by_shard[s].size(), std::memory_order_release);
  }
}

std::shared_ptr<const StoreSnapshot> SketchStore::Snapshot() const {
  auto snapshot = std::make_shared<StoreSnapshot>();
  snapshot->options_ = options_;
  snapshot->shards_.reserve(shards_.size());
  for (Shard& shard : shards_) {
    const uint64_t version = shard.version.load(std::memory_order_acquire);
    std::shared_ptr<const ShardSnapshot> published =
        std::atomic_load_explicit(&shard.published,
                                  std::memory_order_acquire);
    if (published == nullptr || published->version() != version) {
      std::lock_guard<std::mutex> lock(shard.mu);
      published = std::make_shared<const ShardSnapshot>(
          shard.version.load(std::memory_order_relaxed), shard.live);
      std::atomic_store_explicit(&shard.published, published,
                                 std::memory_order_release);
    }
    snapshot->shards_.push_back(std::move(published));
  }
  return snapshot;
}

}  // namespace pie
