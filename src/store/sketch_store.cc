#include "store/sketch_store.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"

namespace pie {
namespace {

/// Store-wide snapshot instrumentation. The age gauge reports seconds
/// since ANY store last (re)published a snapshot -- a process-level
/// staleness signal evaluated lazily at dump time.
struct StoreMetrics {
  obs::Histogram& snapshot_seconds;
  obs::Counter& shards_reused;
  obs::Counter& shards_copied;
  std::atomic<int64_t> last_snapshot_ns{0};

  static StoreMetrics& Get() {
    static StoreMetrics* m = [] {
      auto& reg = obs::MetricsRegistry::Global();
      auto* metrics = new StoreMetrics{
          reg.GetHistogram("pie_store_snapshot_publish_seconds",
                           "Wall time of one store-wide Snapshot() capture",
                           obs::LatencyBuckets()),
          reg.GetCounter("pie_store_snapshot_shards_total",
                         "Per-shard snapshot captures by outcome",
                         {{"result", "reused"}}),
          reg.GetCounter("pie_store_snapshot_shards_total",
                         "Per-shard snapshot captures by outcome",
                         {{"result", "copied"}}),
          {}};
      reg.RegisterCallbackGauge(
          "pie_store_snapshot_age_seconds",
          "Seconds since the last store snapshot publish (-1 = never)",
          [metrics] {
            const int64_t last =
                metrics->last_snapshot_ns.load(std::memory_order_relaxed);
            if (last == 0) return -1.0;
            return static_cast<double>(obs::MonotonicNowNs() - last) * 1e-9;
          });
      return metrics;
    }();
    return *m;
  }
};

double TauFromOptions(const SketchStoreOptions& options, int instance) {
  auto it = options.instance_tau.find(instance);
  return it != options.instance_tau.end() ? it->second : options.default_tau;
}

uint64_t SaltFromOptions(const SketchStoreOptions& options, int instance) {
  if (options.coordinated) return options.salt;
  return HashCombine(options.salt, static_cast<uint64_t>(instance));
}

// Validated before the shard vector is sized: a nonpositive count must hit
// the check, not convert to a huge size_t inside std::vector.
size_t CheckedShardCount(int num_shards) {
  PIE_CHECK(num_shards > 0);
  return static_cast<size_t>(num_shards);
}

}  // namespace

const StreamingPpsSketch* ShardSnapshot::Instance(int instance) const {
  auto it = sketches_.find(instance);
  return it != sketches_.end() ? &it->second : nullptr;
}

double StoreSnapshot::TauFor(int instance) const {
  return TauFromOptions(options_, instance);
}

uint64_t StoreSnapshot::InstanceSalt(int instance) const {
  return SaltFromOptions(options_, instance);
}

std::vector<int> StoreSnapshot::Instances() const {
  std::vector<int> out;
  for (const auto& shard : shards_) {
    for (const auto& [instance, sketch] : shard->sketches()) {
      out.push_back(instance);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

uint64_t StoreSnapshot::UpdateCount(int instance) const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    const StreamingPpsSketch* sketch = shard->Instance(instance);
    if (sketch != nullptr) total += sketch->num_updates();
  }
  return total;
}

int StoreSnapshot::absent_shards() const {
  int n = 0;
  for (uint8_t flag : absent_) n += flag != 0;
  return n;
}

StreamingPpsSketch StoreSnapshot::MergedInstance(int instance) const {
  StreamingPpsSketch merged(TauFor(instance), InstanceSalt(instance));
  for (const auto& shard : shards_) {
    const StreamingPpsSketch* sketch = shard->Instance(instance);
    if (sketch != nullptr) merged.Merge(*sketch);
  }
  return merged;
}

SketchStore::SketchStore(SketchStoreOptions options)
    : options_(std::move(options)),
      shards_(CheckedShardCount(options_.num_shards)) {
  PIE_CHECK(options_.default_tau > 0 && std::isfinite(options_.default_tau));
  for (const auto& [instance, tau] : options_.instance_tau) {
    PIE_CHECK(tau > 0 && std::isfinite(tau));
  }
  StoreMetrics::Get();  // eager family registration
  shard_update_counts_.reserve(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    shard_update_counts_.push_back(&obs::MetricsRegistry::Global().GetCounter(
        "pie_store_updates_total", "Records absorbed, by shard",
        {{"shard", std::to_string(s)}}));
  }
}

double SketchStore::TauFor(int instance) const {
  return TauFromOptions(options_, instance);
}

uint64_t SketchStore::InstanceSalt(int instance) const {
  return SaltFromOptions(options_, instance);
}

int SketchStore::absent_shards() const {
  int n = 0;
  for (uint8_t flag : shard_absent_) n += flag != 0;
  return n;
}

StreamingPpsSketch& SketchStore::LiveSketch(Shard& shard, int instance) {
  auto it = shard.live.find(instance);
  if (it == shard.live.end()) {
    it = shard.live
             .emplace(instance, StreamingPpsSketch(TauFor(instance),
                                                   InstanceSalt(instance)))
             .first;
  }
  return it->second;
}

void SketchStore::Update(int instance, uint64_t key, double weight) {
  const int s = ShardOf(key);
  Shard& shard = shards_[s];
  shard_update_counts_[s]->Increment();
  std::lock_guard<std::mutex> lock(shard.mu);
  LiveSketch(shard, instance).Update(key, weight);
  shard.version.fetch_add(1, std::memory_order_release);
}

void SketchStore::UpdateBatch(int instance,
                              const std::vector<WeightedItem>& items) {
  // Group records by shard so each dirtied shard pays one lock/version
  // update per batch instead of one per record. Bucketing preserves the
  // per-shard arrival order of the original sequence.
  std::vector<std::vector<WeightedItem>> by_shard(shards_.size());
  for (const auto& item : items) {
    by_shard[static_cast<size_t>(ShardOf(item.key))].push_back(item);
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (by_shard[s].empty()) continue;
    Shard& shard = shards_[s];
    shard_update_counts_[s]->Add(by_shard[s].size());
    std::lock_guard<std::mutex> lock(shard.mu);
    StreamingPpsSketch& sketch = LiveSketch(shard, instance);
    for (const auto& item : by_shard[s]) sketch.Update(item.key, item.weight);
    shard.version.fetch_add(by_shard[s].size(), std::memory_order_release);
  }
}

std::shared_ptr<const StoreSnapshot> SketchStore::Snapshot() const {
  StoreMetrics& metrics = StoreMetrics::Get();
  obs::ScopedSpan span("store/snapshot");
  obs::ScopedTimer timer(metrics.snapshot_seconds);
  auto snapshot = std::make_shared<StoreSnapshot>();
  snapshot->options_ = options_;
  snapshot->absent_ = shard_absent_;
  snapshot->shards_.reserve(shards_.size());
  for (Shard& shard : shards_) {
    const uint64_t version = shard.version.load(std::memory_order_acquire);
    std::shared_ptr<const ShardSnapshot> published =
        std::atomic_load_explicit(&shard.published,
                                  std::memory_order_acquire);
    if (published == nullptr || published->version() != version) {
      metrics.shards_copied.Increment();
      std::lock_guard<std::mutex> lock(shard.mu);
      published = std::make_shared<const ShardSnapshot>(
          shard.version.load(std::memory_order_relaxed), shard.live);
      std::atomic_store_explicit(&shard.published, published,
                                 std::memory_order_release);
    } else {
      metrics.shards_reused.Increment();
    }
    snapshot->shards_.push_back(std::move(published));
  }
  metrics.last_snapshot_ns.store(obs::MonotonicNowNs(),
                                 std::memory_order_relaxed);
  return snapshot;
}

}  // namespace pie
