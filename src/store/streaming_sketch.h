// One-pass streaming sketch builders: the store layer's ingestion
// primitives (the classic bottom-k / priority-sampling regime of the
// Cohen-Kaplan coordinated-sketch line).
//
// The batch builders (PpsInstanceSketch::Build, BottomKSample) consume a
// fully materialized std::vector<WeightedItem>; a live service cannot
// afford that dump. Both samplers are permutation-invariant functions of
// the item set -- PPS inclusion tests each key against a fixed seed-derived
// threshold, bottom-k keeps the k+1 smallest ranks -- so they admit exact
// one-pass maintenance: feeding records incrementally yields the same
// sample set as the batch builders on any arrival order. Both sketches are
// also exactly mergeable, which is what lets the sharded store fan updates
// out to per-shard sketches and recover the global per-instance sketch at
// snapshot time with no approximation.
//
// Record model: records are pre-aggregated per key (the paper's
// one-value-per-key-per-instance model, Section 7.1). A repeat arrival of
// a key that is already sampled accumulates exactly (weights only grow and
// the inclusion threshold u(h)*tau is fixed, so the key stays sampled); a
// repeat arrival of a previously rejected key is tested on its own weight
// -- exact PPS of the aggregated totals therefore requires each key's
// total to arrive in one record, or its first record to already clear the
// threshold.

#pragma once

#include <cmath>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sampling/bottomk.h"
#include "sampling/rank.h"
#include "util/hashing.h"

namespace pie {

/// Incremental Poisson PPS sketch of one instance: key h is included iff
/// v(h) >= u(h) * tau, i.e. with probability min(1, v(h)/tau). Produces
/// the same sample set as PpsInstanceSketch::Build on any arrival order
/// (Build is a thin wrapper over this class).
class StreamingPpsSketch {
 public:
  StreamingPpsSketch(double tau, uint64_t salt);

  /// Rebuilds a sketch from persisted state (persist/format.cc): the
  /// entries land in `entries_` in the given order -- which a round-trip
  /// makes the original arrival order, keeping serialization bitwise --
  /// and the key index is rebuilt. Keys must be distinct; every weight
  /// must satisfy the inclusion invariant weight >= seed(key) * tau
  /// (callers validate untrusted input *before* this, returning a typed
  /// error; here violations are programming errors and PIE_CHECK).
  static StreamingPpsSketch FromParts(double tau, uint64_t salt,
                                      std::vector<WeightedItem> entries,
                                      uint64_t num_updates);

  /// Offers one (key, weight) record. Nonpositive weights are never
  /// sampled (sparse representation) but still count toward num_updates().
  void Update(uint64_t key, double weight) {
    ++num_updates_;
    if (weight <= 0) return;
    auto it = index_.find(key);
    if (it != index_.end()) {
      entries_[it->second].weight += weight;  // sampled keys stay sampled
      return;
    }
    if (weight >= seed_fn_(key) * tau_) {
      index_.emplace(key, entries_.size());
      entries_.push_back({key, weight});
    }
  }

  /// Folds `other` in as if its records had been appended to this stream.
  /// Both sketches must share tau and salt (same sampling configuration).
  void Merge(const StreamingPpsSketch& other);

  double tau() const { return tau_; }
  uint64_t salt() const { return seed_fn_.salt(); }
  const SeedFunction& seed_fn() const { return seed_fn_; }
  int size() const { return static_cast<int>(entries_.size()); }
  /// Number of Update() calls absorbed (including nonpositive-weight and
  /// merged-in ones); used by snapshot consistency checks.
  uint64_t num_updates() const { return num_updates_; }

  /// Sampled entries in arrival order.
  const std::vector<WeightedItem>& entries() const { return entries_; }
  /// Sampled entries in canonical (ascending key) order, for comparing
  /// sample sets across arrival permutations or shard layouts.
  std::vector<WeightedItem> EntriesByKey() const;

  /// True + value if the key is in the sketch.
  bool Lookup(uint64_t key, double* value) const {
    auto it = index_.find(key);
    if (it == index_.end()) return false;
    if (value != nullptr) *value = entries_[it->second].weight;
    return true;
  }

  /// Horvitz-Thompson subset-sum estimate of this instance's values over
  /// keys selected by `pred`. Templated so hot scans pay no std::function
  /// indirection or allocation.
  template <typename Pred>
  double SubsetSumEstimate(Pred&& pred) const {
    double sum = 0.0;
    for (const auto& e : entries_) {
      if (pred(e.key)) {
        // Same expression as PpsInstanceSketch::SubsetSumEstimate, so the
        // store and materialized-sketch paths agree bitwise (w/(w/tau)
        // differs from a plain max(w, tau) by an ulp for many pairs).
        sum += e.weight / std::fmin(1.0, e.weight / tau_);
      }
    }
    return sum;
  }

 private:
  double tau_;
  SeedFunction seed_fn_;
  std::vector<WeightedItem> entries_;
  std::unordered_map<uint64_t, size_t> index_;  // key -> entries_ slot
  uint64_t num_updates_ = 0;
};

/// Incremental bottom-k (order) sketch of one instance: keeps the k+1
/// smallest-ranked keys; Finalize() surfaces the k smallest as entries and
/// the (k+1)-st smallest rank as the rank-conditioning threshold, byte-
/// identical to BottomKSample over the same record multiset, on any
/// arrival order.
///
/// Merging is exact: each of the union's k+1 smallest ranks is among the
/// k+1 smallest of its own substream, all of which the substream's sketch
/// still holds (keys included -- the threshold item is only shed at
/// Finalize), so folding one sketch's slots into the other reproduces the
/// single-stream sketch of the concatenation.
class StreamingBottomkSketch {
 public:
  StreamingBottomkSketch(int k, RankFamily family, uint64_t salt);

  /// Rebuilds a sketch from persisted state (persist/format.cc): `slots`
  /// must already be a max-heap by rank of at most k+1 entries whose ranks
  /// equal RankValue(family, weight, seed(key)) -- the wire format stores
  /// only (key, weight) and recomputes ranks on load, so a round-trip is
  /// bitwise (callers validate untrusted input before this; violations
  /// here are programming errors and PIE_CHECK).
  static StreamingBottomkSketch FromParts(
      int k, RankFamily family, uint64_t salt,
      std::vector<BottomKSketch::Entry> slots, uint64_t num_updates);

  /// Offers one (key, weight) record. Keys must be distinct across the
  /// stream (pre-aggregated records); zero weights rank at +infinity and
  /// are never retained.
  void Update(uint64_t key, double weight);

  /// Folds `other` in. Both sketches must share k, family, and salt, and
  /// the two streams' key sets must be disjoint (e.g. hash-sharded).
  void Merge(const StreamingBottomkSketch& other);

  int k() const { return k_; }
  RankFamily family() const { return family_; }
  uint64_t salt() const { return seed_fn_.salt(); }
  uint64_t num_updates() const { return num_updates_; }

  /// The raw retained slots (the k+1 smallest-ranked items, in heap
  /// order) -- what persistence serializes so a reloaded sketch keeps
  /// absorbing updates exactly where this one left off.
  const std::vector<BottomKSketch::Entry>& pending() const { return heap_; }

  /// The bottom-k sketch of everything absorbed so far: entries sorted by
  /// increasing rank, threshold = (k+1)-st smallest rank (+infinity when
  /// fewer than k+1 positive keys were seen).
  BottomKSketch Finalize() const;

 private:
  void Push(const BottomKSketch::Entry& entry);

  int k_;
  RankFamily family_;
  SeedFunction seed_fn_;
  /// Max-heap (by rank) holding the k+1 smallest-ranked items seen so far.
  std::vector<BottomKSketch::Entry> heap_;
  uint64_t num_updates_ = 0;
};

}  // namespace pie
