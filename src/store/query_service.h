// Engine-batched estimation queries over store snapshots.
//
// A QueryService binds one immutable StoreSnapshot and answers the
// Section 8 sum aggregates -- max/min dominance, L1 distance, distinct /
// Boolean-OR counts -- by scanning the union of sampled keys shard by
// shard: each shard's keys are assembled into a per-shard columnar
// OutcomeBatch (flat value/threshold/seed/sampled slabs, allocation-free
// in steady state) and driven through the estimation engine's memoized
// kernels with one EstimateMany pass per kernel, with a final
// deterministic reduction in shard order. Shards are independent, so the
// scan fans out across worker threads; results are bitwise identical for
// any thread count because each shard's partial is computed identically
// (EstimateMany overrides are bitwise-identical to the scalar path) and
// the reduction order is fixed.

#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "engine/engine.h"
#include "store/sketch_store.h"
#include "util/status.h"

namespace pie {

struct QueryServiceOptions {
  /// Worker threads for the per-shard scan; 0 picks
  /// min(hardware_concurrency, num_shards). 1 scans inline.
  int num_threads = 0;
  /// Quadrature tolerance forwarded to kernels that integrate seed bounds.
  double quad_tol = 1e-10;
};

/// The classical baseline and the paper's partial-information estimate of
/// the same aggregate, side by side.
struct DualEstimate {
  double ht = 0.0;
  double l = 0.0;
};

class QueryService {
 public:
  explicit QueryService(std::shared_ptr<const StoreSnapshot> snapshot,
                        QueryServiceOptions options = {});

  /// Max-dominance norm sum_h max(v_i1(h), v_i2(h)) (Section 8.2), via the
  /// per-key weighted max^(HT) / max^(L) kernels over the union of sampled
  /// keys.
  Result<DualEstimate> MaxDominance(int i1, int i2) const;

  /// Min-dominance norm sum_h min(v_i1(h), v_i2(h)) via min^(HT)
  /// (Section 6; keys sampled in both instances contribute).
  Result<double> MinDominanceHt(int i1, int i2) const;

  /// Unbiased L1 distance sum_h |v_i1(h) - v_i2(h)| as max^(L) - min^(HT).
  Result<double> L1Distance(int i1, int i2) const;

  /// Distinct count |union of instances| (Section 8.1) as the sum
  /// aggregate of per-key Boolean OR. Requires unit-weight ingestion (set
  /// semantics: every record weight 1, so tau = 1/p); more than two
  /// instances additionally require a uniform tau.
  Result<DualEstimate> DistinctUnion(const std::vector<int>& instances) const;

  /// Horvitz-Thompson subset-sum estimate of one instance's total over
  /// keys selected by `pred` (templated: no allocation on the scan).
  template <typename Pred>
  double SubsetSumHt(int instance, Pred&& pred) const {
    double total = 0.0;
    for (int s = 0; s < snapshot_->num_shards(); ++s) {
      const StreamingPpsSketch* sketch = snapshot_->Shard(s).Instance(instance);
      if (sketch != nullptr) total += sketch->SubsetSumEstimate(pred);
    }
    return total;
  }

  const StoreSnapshot& snapshot() const { return *snapshot_; }

 private:
  /// Runs fn(shard) for every shard, fanning out across options_.num_threads
  /// workers. fn must only touch its own shard's slots.
  void ForEachShard(const std::function<void(int)>& fn) const;

  std::shared_ptr<const StoreSnapshot> snapshot_;
  QueryServiceOptions options_;
};

}  // namespace pie
