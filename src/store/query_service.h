// Engine-batched estimation queries over store snapshots, with error bars.
//
// A QueryService binds one immutable StoreSnapshot and answers the
// Section 8 sum aggregates -- max/min dominance, L1 distance, distinct /
// Boolean-OR counts -- by scanning the union of sampled keys shard by
// shard: each shard's keys are assembled into a per-shard columnar
// OutcomeBatch (flat value/threshold/seed/sampled slabs, allocation-free
// in steady state) and driven through the estimation engine's memoized
// kernels with one EstimateMany pass per kernel, with a final
// deterministic reduction in shard order. Shards are independent, so the
// scan fans out across worker threads; results are bitwise identical for
// any thread count because each shard's partial is computed identically
// (EstimateMany overrides are bitwise-identical to the scalar path) and
// the reduction order is fixed.
//
// Since PR 4 every aggregate returns an IntervalEstimate {estimate,
// std_err, lo, hi} rather than a bare double: each shard scan accumulates
// unbiased per-key variance estimates into mergeable AccuracyAccumulators
// (src/accuracy/). The with-variance scan is FUSED -- one
// EstimateWithVarianceMany slab pass per chunk produces the estimate and
// its variance together, through the deterministic chunked driver of
// engine/parallel_scan.h -- so error bars cost a fraction of a second
// pass, and point estimates stay bitwise identical to EstimateSum.
// L1Distance additionally scans its max^(L) and min^(HT) terms jointly
// over the shared sample, estimating their covariance exactly instead of
// assuming the worst (see L1Distance below).

#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "accuracy/accumulator.h"
#include "accuracy/confidence.h"
#include "accuracy/selector.h"
#include "engine/engine.h"
#include "store/sketch_store.h"
#include "util/status.h"

namespace pie {

struct QueryServiceOptions {
  /// Parallelism cap for the per-shard scan AND the within-shard chunk
  /// splits, which share the process-wide persistent WorkerPool
  /// (engine/worker_pool.h): 0 picks the PIE_THREADS environment variable
  /// when set, else clamped hardware_concurrency. 1 scans inline. Result
  /// bits never depend on this value.
  int num_threads = 0;
  /// Quadrature tolerance forwarded to kernels that integrate seed bounds.
  double quad_tol = 1e-10;
  /// Interval policy applied to every aggregate's error bars.
  CiPolicy ci = {};
  /// When false, the per-shard scans skip the second-moment pass: point
  /// estimates are unchanged (still bitwise identical), but every returned
  /// interval is zero-width (variance/std_err/lo-hi spread all 0). For
  /// point-only callers that must not pay for error bars -- roughly half
  /// the scan cost (see bench/perf_accuracy.cc).
  bool with_variance = true;
};

/// A selector-chosen aggregate: which family answered, and its interval.
struct SelectedEstimate {
  KernelSpec spec;
  IntervalEstimate interval;
};

class QueryService {
 public:
  explicit QueryService(std::shared_ptr<const StoreSnapshot> snapshot,
                        QueryServiceOptions options = {});

  /// A synchronous service borrowing `snapshot` (no-op deleter): the
  /// aggregate layer's repeat-call bridges. options.num_threads is
  /// honored -- parallel scans run on the persistent WorkerPool, so a
  /// repeat-call path no longer pays a per-call thread spawn/join. The
  /// caller must keep the snapshot alive.
  static QueryService Borrowed(const StoreSnapshot& snapshot,
                               QueryServiceOptions options = {});

  /// Max-dominance norm sum_h max(v_i1(h), v_i2(h)) (Section 8.2), via the
  /// per-key weighted max^(HT) / max^(L) kernels over the union of sampled
  /// keys, each with error bars.
  Result<DualInterval> MaxDominance(int i1, int i2) const;

  /// Max-dominance through the variance-driven EstimatorSelector: the
  /// minimum-variance admissible weighted max family for this snapshot's
  /// threshold class answers (the paper's Pareto ordering, operational).
  /// Selections are memoized per threshold class (SelectorCache), so only
  /// the first query against a class pays for the exact-variance ranking.
  Result<SelectedEstimate> MaxDominanceAuto(int i1, int i2) const;

  /// Min-dominance norm sum_h min(v_i1(h), v_i2(h)) via min^(HT)
  /// (Section 6; keys sampled in both instances contribute).
  Result<IntervalEstimate> MinDominanceHt(int i1, int i2) const;

  /// Unbiased L1 distance sum_h |v_i1(h) - v_i2(h)| as max^(L) - min^(HT),
  /// both terms scanned jointly over the shared sample. Because the scan
  /// is joint, the per-key covariance of the two estimators is itself
  /// estimated without bias (X(o) Y(o) minus the identifiable-event
  /// estimate of max * min; see MinHtWeighted::MaxMinProductRow), so the
  /// error bars use the exact Var[X] + Var[Y] - 2 Cov[X, Y] width. The
  /// pre-covariance conservative bound sd(X) + sd(Y) is kept as the
  /// ceiling: the reported interval is never wider than it.
  Result<IntervalEstimate> L1Distance(int i1, int i2) const;

  /// Distinct union through the cached variance-driven selector: the
  /// minimum-variance admissible weighted OR family for this snapshot's
  /// threshold class answers. Same ingestion requirements as
  /// DistinctUnion.
  Result<SelectedEstimate> DistinctUnionAuto(
      const std::vector<int>& instances) const;

  /// Distinct count |union of instances| (Section 8.1) as the sum
  /// aggregate of per-key Boolean OR. Requires unit-weight ingestion (set
  /// semantics: every record weight 1, so tau = 1/p); more than two
  /// instances additionally require a uniform tau.
  Result<DualInterval> DistinctUnion(const std::vector<int>& instances) const;

  /// Horvitz-Thompson subset-sum estimate of one instance's total over
  /// keys selected by `pred` (templated: no allocation on the scan).
  template <typename Pred>
  double SubsetSumHt(int instance, Pred&& pred) const {
    double total = 0.0;
    for (int s = 0; s < snapshot_->num_shards(); ++s) {
      const StreamingPpsSketch* sketch = snapshot_->Shard(s).Instance(instance);
      if (sketch != nullptr) total += sketch->SubsetSumEstimate(pred);
    }
    return total;
  }

  const StoreSnapshot& snapshot() const { return *snapshot_; }

 private:
  /// Runs fn(shard) for every shard on the persistent WorkerPool, up to
  /// ScanThreads() wide. fn must only touch its own shard's slots.
  void ForEachShard(const std::function<void(int)>& fn) const;

  /// options_.num_threads resolved to an effective parallelism
  /// (engine/worker_pool.h ResolveParallelism).
  int ScanThreads() const;

  /// Scans the union of keys sampled in instance i1 or i2, assembling the
  /// per-shard r=2 PPS batches once and accumulating every kernel's
  /// estimate + variance; totals are reduced in shard order (one
  /// AccuracyAccumulator per kernel). When `shard_partials` is non-null
  /// the per-shard accumulators (outer index: shard, inner: kernel) are
  /// moved out too -- the degraded path extrapolates from them.
  void ScanMaxPair(
      int i1, int i2, const std::vector<const EstimatorKernel*>& kernels,
      std::vector<AccuracyAccumulator>* totals,
      std::vector<std::vector<AccuracyAccumulator>>* shard_partials =
          nullptr) const;

  /// Scans the union of keys sampled in any of `instances` (unit-weight
  /// set semantics), accumulating every kernel's estimate + variance;
  /// totals reduced in shard order. InvalidArgument on non-unit weights.
  Status ScanOrUnion(
      const std::vector<int>& instances,
      const std::vector<const EstimatorKernel*>& kernels,
      std::vector<AccuracyAccumulator>* totals,
      std::vector<std::vector<AccuracyAccumulator>>* shard_partials =
          nullptr) const;

  /// Cluster-sampling extrapolation for degraded snapshots. `est`/`var`
  /// hold one per-shard (estimate, variance) partial per store shard, in
  /// shard order; absent shards' slots are ignored. Treating the m
  /// surviving shards as a size-m sample of the N per-shard totals (keys
  /// hash uniformly across shards), the full-store total is estimated as
  /// sum_surviving / (m/N) and the interval is widened by both the 1/c^2
  /// scaling of the within-shard variance and the between-shard
  /// (finite-population cluster sampling) term N (N - m) s^2 / m --
  /// skipped when with_variance is off (zero-width contract) or m == 1
  /// (s^2 undefined). Deterministic: partials are reduced in shard order.
  IntervalEstimate DegradeInterval(const std::vector<double>& est,
                                   const std::vector<double>& var) const;

  /// DegradeInterval over kernel `k`'s column of a per-shard accumulator
  /// matrix (as produced by ScanMaxPair/ScanOrUnion).
  IntervalEstimate DegradeFromPartials(
      const std::vector<std::vector<AccuracyAccumulator>>& partials,
      size_t k) const;

  std::shared_ptr<const StoreSnapshot> snapshot_;
  QueryServiceOptions options_;
};

}  // namespace pie
