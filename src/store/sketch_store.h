// Key-hash sharded streaming sketch store with consistent snapshot reads.
//
// The ingestion tier between the samplers and the estimation workloads:
// many writer threads feed (instance, key, weight) records; each record is
// routed by key hash to one of N shards and absorbed into that shard's
// per-instance StreamingPpsSketch under the shard's mutex. Readers obtain
// immutable StoreSnapshot views and run engine-batched estimation against
// them (see store/query_service.h) without ever contending with writers.
//
// Snapshot consistency semantics: a snapshot captures each shard at one
// instant (all records the shard had absorbed at that instant, across all
// instances -- shard capture is atomic under the shard mutex). Different
// shards may be captured a few records apart, so a snapshot is a per-shard
// consistent cut, not a global barrier; because every sketch is a
// permutation-invariant function of its absorbed record set, each shard's
// view equals a single-threaded replay of exactly the records it had
// absorbed. Snapshots are cheap when the store is quiet: each shard
// publishes its latest copy through an atomic shared_ptr tagged with the
// shard version, and Snapshot() reuses the published copy lock-free
// whenever no write has landed since.
//
// Seed coordination: instance i samples with seeds u_i(h) derived from
// salt_i. By default salts are derived per instance from the store salt
// (independent samples with known seeds -- what the Section 8 estimators
// assume); options.coordinated shares one salt across instances (the PRN
// method of Section 7.2).

#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "store/streaming_sketch.h"
#include "util/hashing.h"
#include "util/status.h"

namespace pie {

class FileSystem;  // util/fs.h

namespace obs {
class Counter;  // obs/metrics.h
}

struct SketchStoreOptions {
  int num_shards = 16;
  /// PPS threshold used by every instance sketch unless overridden below.
  double default_tau = 1.0;
  /// Per-instance threshold overrides (e.g. from per-period FindPpsTau
  /// calibration).
  std::map<int, double> instance_tau;
  /// Base salt; per-instance seed salts are derived from it.
  uint64_t salt = 0;
  /// Share one seed salt across instances (Section 7.2 PRN coordination)
  /// instead of deriving independent per-instance salts.
  bool coordinated = false;
};

/// One shard's immutable capture: every instance sketch the shard held at
/// capture time, tagged with the shard version that produced it.
class ShardSnapshot {
 public:
  ShardSnapshot(uint64_t version, std::map<int, StreamingPpsSketch> sketches)
      : version_(version), sketches_(std::move(sketches)) {}

  uint64_t version() const { return version_; }
  /// The shard's sketch of `instance`, or nullptr if the shard never saw a
  /// record for it.
  const StreamingPpsSketch* Instance(int instance) const;
  const std::map<int, StreamingPpsSketch>& sketches() const {
    return sketches_;
  }

 private:
  uint64_t version_;
  std::map<int, StreamingPpsSketch> sketches_;
};

/// An immutable store-wide view: one ShardSnapshot per shard. Shareable
/// across query threads without synchronization.
class StoreSnapshot {
 public:
  int num_shards() const { return static_cast<int>(shards_.size()); }
  const ShardSnapshot& Shard(int shard) const { return *shards_[shard]; }
  const SketchStoreOptions& options() const { return options_; }

  double TauFor(int instance) const;
  uint64_t InstanceSalt(int instance) const;

  /// True when degraded-mode recovery marked `shard` unrecoverable: the
  /// shard's snapshot is empty and queries extrapolate around it.
  bool ShardAbsent(int shard) const {
    return !absent_.empty() && absent_[static_cast<size_t>(shard)] != 0;
  }
  /// Number of absent shards (0 for any store built by ingestion or
  /// strict recovery).
  int absent_shards() const;
  /// Fraction of shards that are present, in (0, 1]; 1.0 when complete.
  double coverage() const {
    return 1.0 - static_cast<double>(absent_shards()) /
                     static_cast<double>(num_shards());
  }

  /// Instances with at least one absorbed record, ascending.
  std::vector<int> Instances() const;
  /// Total Update() calls absorbed for `instance` across shards.
  uint64_t UpdateCount(int instance) const;
  /// Exact global per-instance sketch, recovered by shard fan-in merge.
  StreamingPpsSketch MergedInstance(int instance) const;

 private:
  friend class SketchStore;
  SketchStoreOptions options_;
  std::vector<std::shared_ptr<const ShardSnapshot>> shards_;
  std::vector<uint8_t> absent_;  // empty, or one flag per shard
};

/// How SketchStore::Recover treats a generation with unrecoverable shards.
enum class RecoverPolicy {
  /// Fail-fast (the historical behavior, byte-for-byte): a generation
  /// with any bad file is skipped; DataLoss when none is complete.
  kStrict,
  /// Serve what survives: the newest committed generation with >= 1
  /// verified shard loads, bad shards are marked absent, and queries
  /// answer with coverage-annotated, conservatively widened intervals.
  kDegraded,
};

struct RecoverOptions {
  RecoverPolicy policy = RecoverPolicy::kStrict;
  /// Filesystem recovery reads through; null means FileSystem::Default().
  FileSystem* fs = nullptr;
};

class SketchStore {
 public:
  explicit SketchStore(SketchStoreOptions options);
  SketchStore(const SketchStore&) = delete;
  SketchStore& operator=(const SketchStore&) = delete;

  int num_shards() const { return static_cast<int>(shards_.size()); }
  int ShardOf(uint64_t key) const {
    return static_cast<int>(Mix64(key) % shards_.size());
  }
  double TauFor(int instance) const;
  uint64_t InstanceSalt(int instance) const;

  /// Absorbs one record. Thread-safe; blocks only writers hitting the same
  /// shard.
  void Update(int instance, uint64_t key, double weight);
  /// Absorbs a batch of records for one instance.
  void UpdateBatch(int instance, const std::vector<WeightedItem>& items);

  /// Captures a consistent view (semantics in the file comment). Reuses
  /// each shard's published copy lock-free when the shard is unchanged;
  /// otherwise briefly takes that shard's mutex to copy and republish.
  std::shared_ptr<const StoreSnapshot> Snapshot() const;

  // Persistence (defined in persist/checkpoint.cc; callers link
  // pie_persist). Wire format and crash-safety protocol: persist/format.h.

  /// Writes a snapshot of the store into `dir` as one new checkpoint
  /// generation: per-shard files first (each written atomically), manifest
  /// last -- so a crash mid-checkpoint can never make a partial generation
  /// look complete. Prior generations in `dir` are left in place as
  /// recovery fallbacks.
  Status Checkpoint(const std::string& dir) const;

  /// Reloads the newest fully intact checkpoint generation in `dir`,
  /// byte-validating every file; generations with missing, truncated, or
  /// corrupt files (CRC mismatch) are skipped in favor of the next older
  /// one. DataLoss when no complete generation survives, NotFound when the
  /// directory holds no manifest at all.
  static Result<std::unique_ptr<SketchStore>> Recover(const std::string& dir);

  /// Policy-carrying overload. RecoverPolicy::kStrict is byte-for-byte the
  /// call above; RecoverPolicy::kDegraded serves the newest committed
  /// generation with at least one verified shard, marking the rest absent
  /// (see StoreSnapshot::ShardAbsent). A degraded store answers queries
  /// (coverage-extrapolated; store/query_service.h) but refuses to
  /// Checkpoint -- persisting a partial view as if complete would corrupt
  /// downstream merges.
  static Result<std::unique_ptr<SketchStore>> Recover(
      const std::string& dir, const RecoverOptions& options);

  /// Degraded-recovery mask: true when `shard` was unrecoverable. Always
  /// false for ingest-built or strictly recovered stores.
  bool ShardAbsent(int shard) const {
    return !shard_absent_.empty() &&
           shard_absent_[static_cast<size_t>(shard)] != 0;
  }
  int absent_shards() const;

  /// Combines the newest intact generation from each directory into one
  /// store, exactly as if every process's records had been fed to a single
  /// store: per-(shard, instance) sketches are merged in directory order,
  /// so queries against the result are bitwise identical to a
  /// single-process build over the concatenated streams (dirs' stores must
  /// share identical SketchStoreOptions). See tests/persist_determinism_test.cc.
  static Result<std::unique_ptr<SketchStore>> MergeCheckpoints(
      const std::vector<std::string>& dirs);

 private:
  struct alignas(64) Shard {
    mutable std::mutex mu;
    std::map<int, StreamingPpsSketch> live;  // guarded by mu
    /// Bumped under mu after every absorbed record; read lock-free by
    /// Snapshot() to detect unchanged shards.
    std::atomic<uint64_t> version{0};
    /// Latest capture, tagged with the version it reflects. Accessed only
    /// through the std::atomic_{load,store}_explicit shared_ptr overloads:
    /// ThreadSanitizer cannot see through libstdc++'s
    /// std::atomic<shared_ptr> internal lock-bit protocol (false races in
    /// the tsan CI job), while the free functions' synchronization is
    /// fully TSan-visible.
    mutable std::shared_ptr<const ShardSnapshot> published;
  };

  StreamingPpsSketch& LiveSketch(Shard& shard, int instance);

  SketchStoreOptions options_;
  mutable std::vector<Shard> shards_;
  /// Set only by degraded recovery (persist/checkpoint.cc), before the
  /// store is published to any other thread; immutable afterwards.
  std::vector<uint8_t> shard_absent_;
  /// pie_store_updates_total{shard=...}, resolved once at construction so
  /// the ingest path pays one relaxed fetch_add per record (or per batch
  /// bucket), never a registry lookup.
  std::vector<obs::Counter*> shard_update_counts_;
};

}  // namespace pie
