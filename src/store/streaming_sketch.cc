#include "store/streaming_sketch.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace pie {

StreamingPpsSketch::StreamingPpsSketch(double tau, uint64_t salt)
    : tau_(tau), seed_fn_(salt) {
  PIE_CHECK(tau > 0 && std::isfinite(tau));
}

StreamingPpsSketch StreamingPpsSketch::FromParts(
    double tau, uint64_t salt, std::vector<WeightedItem> entries,
    uint64_t num_updates) {
  StreamingPpsSketch sketch(tau, salt);
  sketch.index_.reserve(entries.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    PIE_CHECK(entries[i].weight >= sketch.seed_fn_(entries[i].key) * tau &&
              "entry violates the PPS inclusion invariant");
    const bool inserted = sketch.index_.emplace(entries[i].key, i).second;
    PIE_CHECK(inserted && "duplicate key in persisted entries");
  }
  sketch.entries_ = std::move(entries);
  sketch.num_updates_ = num_updates;
  return sketch;
}

void StreamingPpsSketch::Merge(const StreamingPpsSketch& other) {
  PIE_CHECK(other.tau_ == tau_);
  PIE_CHECK(other.salt() == salt());
  // Replaying the other stream's sampled entries is exact: its rejected
  // records would be rejected here too (same seeds, same tau), and its
  // sampled ones arrive with their accumulated weights.
  for (const auto& e : other.entries_) {
    auto it = index_.find(e.key);
    if (it != index_.end()) {
      entries_[it->second].weight += e.weight;
    } else {
      index_.emplace(e.key, entries_.size());
      entries_.push_back(e);
    }
  }
  num_updates_ += other.num_updates_;
}

std::vector<WeightedItem> StreamingPpsSketch::EntriesByKey() const {
  std::vector<WeightedItem> sorted = entries_;
  std::sort(sorted.begin(), sorted.end(),
            [](const WeightedItem& a, const WeightedItem& b) {
              return a.key < b.key;
            });
  return sorted;
}

StreamingBottomkSketch::StreamingBottomkSketch(int k, RankFamily family,
                                               uint64_t salt)
    : k_(k), family_(family), seed_fn_(salt) {
  PIE_CHECK(k > 0);
}

StreamingBottomkSketch StreamingBottomkSketch::FromParts(
    int k, RankFamily family, uint64_t salt,
    std::vector<BottomKSketch::Entry> slots, uint64_t num_updates) {
  StreamingBottomkSketch sketch(k, family, salt);
  PIE_CHECK(static_cast<int>(slots.size()) <= k + 1);
  auto by_rank = [](const BottomKSketch::Entry& a,
                    const BottomKSketch::Entry& b) { return a.rank < b.rank; };
  PIE_CHECK(std::is_heap(slots.begin(), slots.end(), by_rank));
  for (const auto& slot : slots) {
    PIE_CHECK(slot.rank == RankValue(family, slot.weight, sketch.seed_fn_(
                                                              slot.key)) &&
              "persisted rank disagrees with its (key, weight, salt)");
  }
  sketch.heap_ = std::move(slots);
  sketch.num_updates_ = num_updates;
  return sketch;
}

void StreamingBottomkSketch::Push(const BottomKSketch::Entry& entry) {
  auto by_rank = [](const BottomKSketch::Entry& a,
                    const BottomKSketch::Entry& b) { return a.rank < b.rank; };
  heap_.push_back(entry);
  std::push_heap(heap_.begin(), heap_.end(), by_rank);
  if (static_cast<int>(heap_.size()) > k_ + 1) {
    std::pop_heap(heap_.begin(), heap_.end(), by_rank);
    heap_.pop_back();
  }
}

void StreamingBottomkSketch::Update(uint64_t key, double weight) {
  ++num_updates_;
  if (weight <= 0) return;  // rank +infinity, never retained
  Push({key, weight, RankValue(family_, weight, seed_fn_(key))});
}

void StreamingBottomkSketch::Merge(const StreamingBottomkSketch& other) {
  PIE_CHECK(other.k_ == k_);
  PIE_CHECK(other.family_ == family_);
  PIE_CHECK(other.salt() == salt());
  // The union's k+1 smallest ranks are each among their own substream's
  // k+1 smallest, all of which `other` still holds with keys and weights.
  for (const auto& entry : other.heap_) Push(entry);
  num_updates_ += other.num_updates_;
}

BottomKSketch StreamingBottomkSketch::Finalize() const {
  BottomKSketch sketch;
  sketch.family = family_;
  sketch.k = k_;

  sketch.entries = heap_;
  std::sort(sketch.entries.begin(), sketch.entries.end(),
            [](const BottomKSketch::Entry& a, const BottomKSketch::Entry& b) {
              return a.rank < b.rank;
            });
  if (static_cast<int>(sketch.entries.size()) == k_ + 1) {
    sketch.threshold = sketch.entries.back().rank;
    sketch.entries.pop_back();
  } else {
    sketch.threshold = Infinity();  // sketch holds the whole instance
  }
  return sketch;
}

}  // namespace pie
