// End-of-run reporting helpers shared by the examples.
//
//  * MaybeDumpMetricsReport(): opt-in exit dump controlled by the
//    PIE_DUMP_METRICS env var -- unset/"0" does nothing, "json" dumps the
//    registry as JSON, any other value dumps Prometheus text; a value
//    containing "trace" additionally dumps the recent span trees. Output
//    goes to stderr so it never mixes with example stdout.
//  * PrintCompactStats(): a short human-readable operational summary
//    (ingest rate, query latency p50/p99, selector hit rate, mean served
//    CI relative width, SIMD log-lane share) computed from the registry
//    snapshot. In -DPIE_METRICS=OFF builds it prints a one-line notice.

#pragma once

#include <cstdio>

namespace pie::obs {

void MaybeDumpMetricsReport();

/// `ingest_seconds` > 0 turns the update total into an updates/s rate
/// (callers time their own ingest window with MonotonicNowNs()).
void PrintCompactStats(std::FILE* out, double ingest_seconds = 0.0);

}  // namespace pie::obs
