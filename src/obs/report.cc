#include "obs/report.h"

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace pie::obs {

void MaybeDumpMetricsReport() {
  const char* env = std::getenv("PIE_DUMP_METRICS");
  if (env == nullptr || *env == '\0' || std::strcmp(env, "0") == 0) return;
  const std::string mode(env);
  if (mode.find("json") != std::string::npos) {
    DumpJson(std::cerr);
  } else {
    DumpPrometheusText(std::cerr);
  }
  if (mode.find("trace") != std::string::npos) {
    DumpTraces(std::cerr);
  }
}

namespace {

/// "1.23us" / "4.56ms" / "7.8s" for a duration in seconds.
std::string FormatSeconds(double s) {
  char buf[32];
  if (s < 1e-3) {
    std::snprintf(buf, sizeof buf, "%.1fus", s * 1e6);
  } else if (s < 1.0) {
    std::snprintf(buf, sizeof buf, "%.2fms", s * 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.2fs", s);
  }
  return buf;
}

std::string FormatRate(double per_second) {
  char buf[32];
  if (per_second >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.1fM/s", per_second * 1e-6);
  } else if (per_second >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.1fk/s", per_second * 1e-3);
  } else {
    std::snprintf(buf, sizeof buf, "%.1f/s", per_second);
  }
  return buf;
}

std::string FormatBytes(double bytes) {
  char buf[32];
  if (bytes >= 1 << 20) {
    std::snprintf(buf, sizeof buf, "%.1fMiB", bytes / (1 << 20));
  } else if (bytes >= 1 << 10) {
    std::snprintf(buf, sizeof buf, "%.1fKiB", bytes / (1 << 10));
  } else {
    std::snprintf(buf, sizeof buf, "%.0fB", bytes);
  }
  return buf;
}

}  // namespace

void PrintCompactStats(std::FILE* out, double ingest_seconds) {
  const MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  std::fprintf(out, "-- pie runtime stats %s\n",
               "------------------------------------------");
  if (snapshot.metrics.empty()) {
    std::fprintf(out, "   metrics disabled (built with -DPIE_METRICS=OFF)\n");
    return;
  }

  const double updates = snapshot.SumValues("pie_store_updates_total");
  if (updates > 0) {
    if (ingest_seconds > 0) {
      std::fprintf(out, "   ingest:   %.0f updates (%s)\n", updates,
                   FormatRate(updates / ingest_seconds).c_str());
    } else {
      std::fprintf(out, "   ingest:   %.0f updates\n", updates);
    }
  }

  const MetricValue queries =
      snapshot.AggregateHistogram("pie_query_seconds");
  if (queries.count > 0) {
    std::fprintf(out,
                 "   queries:  %llu served, latency p50=%s p99=%s\n",
                 static_cast<unsigned long long>(queries.count),
                 FormatSeconds(queries.Quantile(0.5)).c_str(),
                 FormatSeconds(queries.Quantile(0.99)).c_str());
  }

  const MetricValue* hits =
      snapshot.Find("pie_selector_requests_total", {{"result", "hit"}});
  const MetricValue* misses =
      snapshot.Find("pie_selector_requests_total", {{"result", "miss"}});
  const double selector_total =
      (hits != nullptr ? hits->value : 0.0) +
      (misses != nullptr ? misses->value : 0.0);
  if (selector_total > 0) {
    const double hit_count = hits != nullptr ? hits->value : 0.0;
    std::fprintf(out, "   selector: %.0f/%.0f cache hits (%.1f%%)\n",
                 hit_count, selector_total,
                 100.0 * hit_count / selector_total);
  }

  const MetricValue ci = snapshot.AggregateHistogram("pie_ci_relative_width");
  if (ci.count > 0) {
    std::fprintf(out,
                 "   ci width: mean relative width %.3g (n=%llu)\n",
                 ci.sum / static_cast<double>(ci.count),
                 static_cast<unsigned long long>(ci.count));
  }

  const double log_lanes = snapshot.SumValues("pie_simd_log_lanes_total");
  const double maxl_rows = snapshot.SumValues("pie_simd_maxl_rows_total");
  if (maxl_rows > 0) {
    std::fprintf(out,
                 "   simd:     log-regime lanes %.1f%% of max^L rows\n",
                 100.0 * log_lanes / maxl_rows);
  }

  const double regions = snapshot.SumValues("pie_pool_parallel_for_total");
  const double tasks = snapshot.SumValues("pie_pool_tasks_total");
  if (regions > 0) {
    std::fprintf(out, "   pool:     %.0f parallel regions, %.0f tasks\n",
                 regions, tasks);
  }

  // Only printed when a checkpoint directory is active (this process wrote
  // at least one checkpoint, so the size gauge is nonzero).
  const MetricValue* ckpt_bytes =
      snapshot.Find("pie_persist_checkpoint_bytes", {});
  if (ckpt_bytes != nullptr && ckpt_bytes->value > 0) {
    const MetricValue* age =
        snapshot.Find("pie_persist_checkpoint_age_seconds", {});
    std::fprintf(out, "   persist:  last checkpoint %s, age %s\n",
                 FormatBytes(ckpt_bytes->value).c_str(),
                 age != nullptr && age->value >= 0
                     ? FormatSeconds(age->value).c_str()
                     : "n/a");
  }
}

}  // namespace pie::obs
