// Lightweight trace spans: RAII-scoped monotonic timings that nest into
// per-query span trees on the current thread, with a bounded ring buffer
// of recent slow root spans for postmortem inspection.
//
//   IntervalEstimate QueryService::MaxDominance(...) {
//     obs::ScopedSpan span("query/max_dominance");
//     ...
//     { obs::ScopedSpan scan("scan/max_pair"); ... }   // child of the root
//   }
//
// A root span (no enclosing span on this thread) is recorded into the ring
// when its duration reaches the slow threshold (default 0 = record every
// root; override via SetSlowTraceThresholdNs or the PIE_TRACE_SLOW_US env
// var). Nesting is per-thread via a thread_local frame pointer: spans on
// pool worker threads form their own roots rather than racing the caller.
//
// Like the metrics registry, spans never touch estimator state, and under
// -DPIE_METRICS=OFF ScopedSpan is an empty inline class.

#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace pie::obs {

/// One completed span; children are in start order.
struct TraceSpan {
  std::string name;
  int64_t start_ns = 0;
  int64_t duration_ns = 0;
  std::vector<TraceSpan> children;
};

/// Capacity of the recent-slow-roots ring buffer.
inline constexpr int kTraceRingCapacity = 64;

#ifdef PIE_METRICS

class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  TraceSpan span_;
  ScopedSpan* parent_;
};

#else  // !PIE_METRICS

class ScopedSpan {
 public:
  explicit ScopedSpan(const char*) {}
};

#endif  // PIE_METRICS

/// Roots whose duration is below the threshold are not recorded (their
/// children are still attached while in flight, then dropped with them).
void SetSlowTraceThresholdNs(int64_t ns);
int64_t SlowTraceThresholdNs();

/// Completed root spans currently in the ring, oldest first. No-op builds
/// return an empty vector.
std::vector<TraceSpan> RecentTraces();
/// Total root spans completed (recorded or not) since process start.
uint64_t TraceRootsCompleted();
void ClearRecentTraces();

/// Human-readable indented dump of RecentTraces().
void DumpTraces(std::ostream& os);

}  // namespace pie::obs
