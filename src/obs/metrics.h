// Process-wide runtime metrics: counters, gauges, and fixed-bucket
// histograms behind a single MetricsRegistry, exported as Prometheus text
// exposition format or JSON.
//
// Hot-path contract (the reason this layer may sit under the scan driver):
//
//  * Counter::Add / Gauge::Set / Histogram::Observe touch only per-thread
//    -sharded relaxed atomics -- no locks, no allocation, no syscalls. A
//    thread picks its shard once (thread_local) and keeps hitting the same
//    cache lines, so an uncontended update is one relaxed fetch_add.
//  * Registration (GetCounter/GetGauge/GetHistogram) and Snapshot()/dumps
//    take the registry mutex and may allocate. Call sites on hot paths
//    cache the returned reference in a function-local static.
//  * Instrumentation never reads or writes estimator state: disabling it
//    (-DPIE_METRICS=OFF) or racing it cannot change any output bit. The
//    registry-wide sweep in tests/obs_test.cc enforces this.
//
// Under -DPIE_METRICS=OFF every type collapses to an inline no-op with the
// identical API, so instrumented call sites compile away entirely.
//
// Metric identity is (name, labels); re-requesting the same identity
// returns the same object (stable address for the process lifetime).
// Requesting an existing name with a different metric type aborts
// (programmer error).

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace pie::obs {

/// Label set attached to one metric child, e.g. {{"shard", "3"}}. Order is
/// part of the identity; call sites use one consistent order per name.
using Labels = std::vector<std::pair<std::string, std::string>>;

enum class MetricType { kCounter, kGauge, kHistogram };

/// Monotonic wall-independent clock in nanoseconds (steady_clock). Defined
/// unconditionally so examples can time ingest even in OFF builds.
int64_t MonotonicNowNs();

/// One metric child captured by MetricsRegistry::Snapshot().
struct MetricValue {
  std::string name;
  std::string help;
  MetricType type = MetricType::kCounter;
  Labels labels;
  double value = 0.0;            // counter (as double) or gauge
  std::vector<double> bounds;    // histogram upper bounds, excluding +Inf
  std::vector<uint64_t> buckets; // per-bucket (non-cumulative), bounds+1
  double sum = 0.0;              // histogram sum of observations
  uint64_t count = 0;            // histogram observation count

  /// Histogram quantile by linear interpolation within the owning bucket
  /// (q in [0,1]); returns 0 when empty. Observations above the last
  /// finite bound clamp to that bound.
  double Quantile(double q) const;
};

struct MetricsSnapshot {
  std::vector<MetricValue> metrics;

  /// First child matching name (and labels when given), or nullptr.
  const MetricValue* Find(std::string_view name,
                          const Labels& labels = {}) const;
  /// Sum of `value` across every child of a counter/gauge family.
  double SumValues(std::string_view name) const;
  /// Merge all children of a histogram family into one MetricValue
  /// (identical bounds assumed). Returns an empty histogram when absent.
  MetricValue AggregateHistogram(std::string_view name) const;
};

// --- Bucket presets (defined in metrics.cc, available in both modes) ----

/// Latency seconds: 1us .. 10s, roughly x4 per bucket.
std::vector<double> LatencyBuckets();
/// Sizes/counts: 1 .. 16M, x4 per bucket.
std::vector<double> SizeBuckets();
/// CI relative width: 1e-4 .. 10, log-spaced.
std::vector<double> RelativeWidthBuckets();

#ifdef PIE_METRICS

inline constexpr int kMetricShards = 16;

namespace internal {
uint32_t NextThreadShard();
inline uint32_t ThreadShardIndex() {
  thread_local const uint32_t shard = NextThreadShard();
  return shard;
}
inline void AtomicAddDouble(std::atomic<double>* target, double delta) {
  double cur = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(cur, cur + delta,
                                        std::memory_order_relaxed)) {
  }
}
}  // namespace internal

/// Monotonically increasing event count, sharded across threads.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t n) {
    cells_[internal::ThreadShardIndex()].v.fetch_add(
        n, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Cell& cell : cells_) {
      total += cell.v.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Cell {
    std::atomic<uint64_t> v{0};
  };
  Cell cells_[kMetricShards];
};

/// Last-write-wins instantaneous value (plus relaxed Add for +/- deltas,
/// e.g. active-worker counts).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) { internal::AtomicAddDouble(&value_, delta); }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. Bounds are inclusive upper bounds (Prometheus
/// `le` semantics) fixed at registration; Observe() is a linear bucket
/// scan plus one sharded relaxed fetch_add and one sharded CAS double-add.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(double v) {
    int b = 0;
    const int n = static_cast<int>(bounds_.size());
    while (b < n && v > bounds_[b]) ++b;
    const uint32_t shard = internal::ThreadShardIndex();
    cells_[static_cast<size_t>(shard) * stride_ + b].fetch_add(
        1, std::memory_order_relaxed);
    internal::AtomicAddDouble(&sums_[shard].sum, v);
  }

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) count; index bounds().size() is overflow.
  uint64_t BucketCount(int bucket) const;
  uint64_t CountValue() const;
  double SumValue() const;

 private:
  std::vector<double> bounds_;
  size_t stride_ = 0;  // buckets per shard, padded to a cache line
  std::vector<std::atomic<uint64_t>> cells_;  // kMetricShards * stride_
  struct alignas(64) SumCell {
    std::atomic<double> sum{0.0};
  };
  SumCell sums_[kMetricShards];
};

/// Observes elapsed seconds into a histogram on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& h) : h_(h), start_ns_(MonotonicNowNs()) {}
  ~ScopedTimer() {
    h_.Observe(static_cast<double>(MonotonicNowNs() - start_ns_) * 1e-9);
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram& h_;
  int64_t start_ns_;
};

class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  /// Get-or-create. The returned reference is stable for the process
  /// lifetime; hot call sites cache it in a function-local static.
  Counter& GetCounter(const std::string& name, const std::string& help,
                      const Labels& labels = {});
  Gauge& GetGauge(const std::string& name, const std::string& help,
                  const Labels& labels = {});
  Histogram& GetHistogram(const std::string& name, const std::string& help,
                          const std::vector<double>& bounds,
                          const Labels& labels = {});

  /// Gauge whose value is computed at snapshot/dump time (e.g. snapshot
  /// age). `fn` runs under the registry mutex: it must not call back into
  /// the registry. Re-registering the same (name, labels) replaces `fn`.
  void RegisterCallbackGauge(const std::string& name, const std::string& help,
                             std::function<double()> fn,
                             const Labels& labels = {});

  /// Consistent point-in-time read of every registered metric (relaxed
  /// per-cell reads; totals are exact once writers are quiescent).
  MetricsSnapshot Snapshot() const;

  void DumpPrometheusText(std::ostream& os) const;
  void DumpJson(std::ostream& os) const;

 private:
  MetricsRegistry() = default;
  struct Entry;
  Entry& GetOrCreate(const std::string& name, const std::string& help,
                     MetricType type, const Labels& labels);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_;  // registration order
};

#else  // !PIE_METRICS ----------------------------------------------------

// Inline no-op twins: identical API, zero cost, shared dummy instances.

class Counter {
 public:
  void Add(uint64_t) {}
  void Increment() {}
  uint64_t Value() const { return 0; }
};

class Gauge {
 public:
  void Set(double) {}
  void Add(double) {}
  double Value() const { return 0.0; }
};

class Histogram {
 public:
  Histogram() = default;
  explicit Histogram(const std::vector<double>&) {}
  void Observe(double) {}
  const std::vector<double>& bounds() const {
    static const std::vector<double> kEmpty;
    return kEmpty;
  }
  uint64_t BucketCount(int) const { return 0; }
  uint64_t CountValue() const { return 0; }
  double SumValue() const { return 0.0; }
};

class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram&) {}
};

class MetricsRegistry {
 public:
  static MetricsRegistry& Global() {
    static MetricsRegistry registry;
    return registry;
  }
  Counter& GetCounter(const std::string&, const std::string&,
                      const Labels& = {}) {
    static Counter counter;
    return counter;
  }
  Gauge& GetGauge(const std::string&, const std::string&,
                  const Labels& = {}) {
    static Gauge gauge;
    return gauge;
  }
  Histogram& GetHistogram(const std::string&, const std::string&,
                          const std::vector<double>&, const Labels& = {}) {
    static Histogram histogram;
    return histogram;
  }
  void RegisterCallbackGauge(const std::string&, const std::string&,
                             std::function<double()>, const Labels& = {}) {}
  MetricsSnapshot Snapshot() const { return {}; }
  // Defined in metrics.cc: emit a "# pie metrics disabled" comment so
  // consumers can tell an OFF build from an idle one.
  void DumpPrometheusText(std::ostream& os) const;
  void DumpJson(std::ostream& os) const;
};

#endif  // PIE_METRICS

/// Convenience forwarders for the exit report and examples.
void DumpPrometheusText(std::ostream& os);
void DumpJson(std::ostream& os);

}  // namespace pie::obs
