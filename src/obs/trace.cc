#include "obs/trace.h"

#include <atomic>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <ostream>

namespace pie::obs {

#ifdef PIE_METRICS

namespace {

thread_local ScopedSpan* t_current_span = nullptr;

std::mutex g_ring_mu;
std::deque<TraceSpan>& Ring() {
  static std::deque<TraceSpan>* ring = new std::deque<TraceSpan>();
  return *ring;
}

std::atomic<uint64_t> g_roots_completed{0};

int64_t InitialThresholdNs() {
  // PIE_TRACE_SLOW_US: record only roots at least this many microseconds
  // long. Parsed leniently here (it only gates diagnostics); invalid
  // values fall back to 0 = record everything.
  if (const char* env = std::getenv("PIE_TRACE_SLOW_US")) {
    char* end = nullptr;
    const long long us = std::strtoll(env, &end, 10);
    if (end != env && *end == '\0' && us > 0) return us * 1000;
  }
  return 0;
}

std::atomic<int64_t> g_slow_threshold_ns{InitialThresholdNs()};

void RecordRoot(TraceSpan&& span) {
  g_roots_completed.fetch_add(1, std::memory_order_relaxed);
  if (span.duration_ns <
      g_slow_threshold_ns.load(std::memory_order_relaxed)) {
    return;
  }
  std::lock_guard<std::mutex> lock(g_ring_mu);
  std::deque<TraceSpan>& ring = Ring();
  if (static_cast<int>(ring.size()) >= kTraceRingCapacity) ring.pop_front();
  ring.push_back(std::move(span));
}

}  // namespace

ScopedSpan::ScopedSpan(const char* name) {
  span_.name = name;
  span_.start_ns = MonotonicNowNs();
  parent_ = t_current_span;
  t_current_span = this;
}

ScopedSpan::~ScopedSpan() {
  span_.duration_ns = MonotonicNowNs() - span_.start_ns;
  t_current_span = parent_;
  if (parent_ != nullptr) {
    parent_->span_.children.push_back(std::move(span_));
  } else {
    RecordRoot(std::move(span_));
  }
}

void SetSlowTraceThresholdNs(int64_t ns) {
  g_slow_threshold_ns.store(ns, std::memory_order_relaxed);
}

int64_t SlowTraceThresholdNs() {
  return g_slow_threshold_ns.load(std::memory_order_relaxed);
}

std::vector<TraceSpan> RecentTraces() {
  std::lock_guard<std::mutex> lock(g_ring_mu);
  const std::deque<TraceSpan>& ring = Ring();
  return std::vector<TraceSpan>(ring.begin(), ring.end());
}

uint64_t TraceRootsCompleted() {
  return g_roots_completed.load(std::memory_order_relaxed);
}

void ClearRecentTraces() {
  std::lock_guard<std::mutex> lock(g_ring_mu);
  Ring().clear();
}

namespace {

void DumpSpan(const TraceSpan& span, int depth, std::ostream& os) {
  for (int i = 0; i < depth; ++i) os << "  ";
  os << span.name << ' '
     << static_cast<double>(span.duration_ns) * 1e-3 << "us\n";
  for (const TraceSpan& child : span.children) {
    DumpSpan(child, depth + 1, os);
  }
}

}  // namespace

void DumpTraces(std::ostream& os) {
  const std::vector<TraceSpan> traces = RecentTraces();
  os << "# " << traces.size() << " recent trace roots ("
     << TraceRootsCompleted() << " total)\n";
  for (const TraceSpan& root : traces) {
    DumpSpan(root, 0, os);
  }
}

#else  // !PIE_METRICS

void SetSlowTraceThresholdNs(int64_t) {}
int64_t SlowTraceThresholdNs() { return 0; }
std::vector<TraceSpan> RecentTraces() { return {}; }
uint64_t TraceRootsCompleted() { return 0; }
void ClearRecentTraces() {}
void DumpTraces(std::ostream& os) {
  os << "# pie traces disabled (built with -DPIE_METRICS=OFF)\n";
}

#endif  // PIE_METRICS

}  // namespace pie::obs
