#include "obs/metrics.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <ostream>
#include <sstream>

#include "util/check.h"

namespace pie::obs {

int64_t MonotonicNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double MetricValue::Quantile(double q) const {
  if (count == 0 || buckets.empty()) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double target = q * static_cast<double>(count);
  uint64_t cum = 0;
  for (size_t b = 0; b < buckets.size(); ++b) {
    const uint64_t prev = cum;
    cum += buckets[b];
    if (static_cast<double>(cum) >= target && buckets[b] > 0) {
      const double lower = b == 0 ? 0.0 : bounds[b - 1];
      // The overflow bucket has no finite upper bound: clamp to the last
      // finite bound (quantiles there are a lower bound on the truth).
      const double upper = b < bounds.size() ? bounds[b] : bounds.back();
      const double frac =
          (target - static_cast<double>(prev)) / static_cast<double>(buckets[b]);
      return lower + std::min(1.0, std::max(0.0, frac)) * (upper - lower);
    }
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

const MetricValue* MetricsSnapshot::Find(std::string_view name,
                                         const Labels& labels) const {
  for (const MetricValue& m : metrics) {
    if (m.name != name) continue;
    if (!labels.empty() && m.labels != labels) continue;
    return &m;
  }
  return nullptr;
}

double MetricsSnapshot::SumValues(std::string_view name) const {
  double total = 0.0;
  for (const MetricValue& m : metrics) {
    if (m.name == name) total += m.value;
  }
  return total;
}

MetricValue MetricsSnapshot::AggregateHistogram(std::string_view name) const {
  MetricValue out;
  out.type = MetricType::kHistogram;
  for (const MetricValue& m : metrics) {
    if (m.name != name || m.type != MetricType::kHistogram) continue;
    if (out.name.empty()) {
      out.name = m.name;
      out.help = m.help;
      out.bounds = m.bounds;
      out.buckets.assign(m.buckets.size(), 0);
    }
    if (m.buckets.size() != out.buckets.size()) continue;
    for (size_t b = 0; b < m.buckets.size(); ++b) out.buckets[b] += m.buckets[b];
    out.sum += m.sum;
    out.count += m.count;
  }
  return out;
}

namespace {

std::vector<double> GeometricBuckets(double lo, double hi, double factor) {
  std::vector<double> bounds;
  for (double b = lo; b <= hi * (1.0 + 1e-12); b *= factor) bounds.push_back(b);
  return bounds;
}

}  // namespace

std::vector<double> LatencyBuckets() {
  // 1us .. ~16s, x4: 12 buckets + overflow.
  return GeometricBuckets(1e-6, 16.0, 4.0);
}

std::vector<double> SizeBuckets() {
  // 1 .. 16M, x4: 13 buckets + overflow.
  return GeometricBuckets(1.0, 1 << 24, 4.0);
}

std::vector<double> RelativeWidthBuckets() {
  // 1e-4 .. 10, roughly half-decade steps.
  return {1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1.0, 3.0, 10.0};
}

#ifdef PIE_METRICS

namespace {

void EscapeLabelValue(const std::string& value, std::ostream& os) {
  for (const char c : value) {
    switch (c) {
      case '\\':
        os << "\\\\";
        break;
      case '"':
        os << "\\\"";
        break;
      case '\n':
        os << "\\n";
        break;
      default:
        os << c;
    }
  }
}

void WriteLabels(const Labels& labels, std::ostream& os) {
  if (labels.empty()) return;
  os << '{';
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) os << ',';
    os << labels[i].first << "=\"";
    EscapeLabelValue(labels[i].second, os);
    os << '"';
  }
  os << '}';
}

// Same, but with room for an extra `le` label (histogram buckets).
void WriteBucketLabels(const Labels& labels, const std::string& le,
                       std::ostream& os) {
  os << '{';
  for (const auto& [k, v] : labels) {
    os << k << "=\"";
    EscapeLabelValue(v, os);
    os << "\",";
  }
  os << "le=\"" << le << "\"}";
}

void EscapeJson(const std::string& s, std::ostream& os) {
  for (const char c : s) {
    switch (c) {
      case '\\':
        os << "\\\\";
        break;
      case '"':
        os << "\\\"";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

const char* TypeName(MetricType type) {
  switch (type) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "untyped";
}

// Prometheus floats: plain shortest-round-trip-ish formatting; counters
// stay integral when they are integral.
void WriteNumber(double v, std::ostream& os) {
  if (v == static_cast<double>(static_cast<int64_t>(v)) &&
      std::fabs(v) < 9.0e15) {
    os << static_cast<int64_t>(v);
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  os << buf;
}

}  // namespace

namespace internal {

uint32_t NextThreadShard() {
  static std::atomic<uint32_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed) %
         static_cast<uint32_t>(kMetricShards);
}

}  // namespace internal

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  PIE_CHECK(!bounds_.empty());
  for (size_t i = 1; i < bounds_.size(); ++i) {
    PIE_CHECK(bounds_[i - 1] < bounds_[i]);
  }
  const size_t raw = bounds_.size() + 1;  // + overflow bucket
  stride_ = (raw + 7) & ~size_t{7};       // pad to a 64-byte line of u64s
  cells_ = std::vector<std::atomic<uint64_t>>(
      static_cast<size_t>(kMetricShards) * stride_);
}

uint64_t Histogram::BucketCount(int bucket) const {
  uint64_t total = 0;
  for (int s = 0; s < kMetricShards; ++s) {
    total += cells_[static_cast<size_t>(s) * stride_ + bucket].load(
        std::memory_order_relaxed);
  }
  return total;
}

uint64_t Histogram::CountValue() const {
  uint64_t total = 0;
  for (size_t b = 0; b <= bounds_.size(); ++b) {
    total += BucketCount(static_cast<int>(b));
  }
  return total;
}

double Histogram::SumValue() const {
  double total = 0.0;
  for (const SumCell& cell : sums_) {
    total += cell.sum.load(std::memory_order_relaxed);
  }
  return total;
}

struct MetricsRegistry::Entry {
  std::string name;
  std::string help;
  MetricType type;
  Labels labels;
  std::unique_ptr<Counter> counter;
  std::unique_ptr<Gauge> gauge;
  std::unique_ptr<Histogram> histogram;
  std::function<double()> callback;  // optional, gauges only
};

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // leaked
  return *registry;
}

MetricsRegistry::Entry& MetricsRegistry::GetOrCreate(const std::string& name,
                                                     const std::string& help,
                                                     MetricType type,
                                                     const Labels& labels) {
  // Caller holds mu_.
  for (const auto& entry : entries_) {
    if (entry->name == name) {
      PIE_CHECK(entry->type == type);  // one type per family name
      if (entry->labels == labels) return *entry;
    }
  }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->help = help;
  entry->type = type;
  entry->labels = labels;
  entries_.push_back(std::move(entry));
  return *entries_.back();
}

Counter& MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help,
                                     const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = GetOrCreate(name, help, MetricType::kCounter, labels);
  if (entry.counter == nullptr) entry.counter = std::make_unique<Counter>();
  return *entry.counter;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help,
                                 const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = GetOrCreate(name, help, MetricType::kGauge, labels);
  if (entry.gauge == nullptr) entry.gauge = std::make_unique<Gauge>();
  return *entry.gauge;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& help,
                                         const std::vector<double>& bounds,
                                         const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = GetOrCreate(name, help, MetricType::kHistogram, labels);
  if (entry.histogram == nullptr) {
    entry.histogram = std::make_unique<Histogram>(bounds);
  }
  PIE_CHECK(entry.histogram->bounds().size() == bounds.size());
  return *entry.histogram;
}

void MetricsRegistry::RegisterCallbackGauge(const std::string& name,
                                            const std::string& help,
                                            std::function<double()> fn,
                                            const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = GetOrCreate(name, help, MetricType::kGauge, labels);
  entry.callback = std::move(fn);
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snapshot;
  snapshot.metrics.reserve(entries_.size());
  for (const auto& entry : entries_) {
    MetricValue value;
    value.name = entry->name;
    value.help = entry->help;
    value.type = entry->type;
    value.labels = entry->labels;
    switch (entry->type) {
      case MetricType::kCounter:
        value.value = static_cast<double>(entry->counter->Value());
        break;
      case MetricType::kGauge:
        value.value =
            entry->callback ? entry->callback() : entry->gauge->Value();
        break;
      case MetricType::kHistogram: {
        const Histogram& h = *entry->histogram;
        value.bounds = h.bounds();
        value.buckets.resize(h.bounds().size() + 1);
        for (size_t b = 0; b < value.buckets.size(); ++b) {
          value.buckets[b] = h.BucketCount(static_cast<int>(b));
        }
        value.sum = h.SumValue();
        value.count = 0;
        for (const uint64_t c : value.buckets) value.count += c;
        break;
      }
    }
    snapshot.metrics.push_back(std::move(value));
  }
  return snapshot;
}

void MetricsRegistry::DumpPrometheusText(std::ostream& os) const {
  const MetricsSnapshot snapshot = Snapshot();
  // Families are emitted grouped by name in first-registration order, with
  // one HELP/TYPE header per family (Prometheus exposition requirement).
  std::vector<std::string> emitted;
  for (size_t i = 0; i < snapshot.metrics.size(); ++i) {
    const MetricValue& head = snapshot.metrics[i];
    if (std::find(emitted.begin(), emitted.end(), head.name) !=
        emitted.end()) {
      continue;
    }
    emitted.push_back(head.name);
    os << "# HELP " << head.name << ' ' << head.help << '\n';
    os << "# TYPE " << head.name << ' ' << TypeName(head.type) << '\n';
    for (size_t j = i; j < snapshot.metrics.size(); ++j) {
      const MetricValue& m = snapshot.metrics[j];
      if (m.name != head.name) continue;
      if (m.type != MetricType::kHistogram) {
        os << m.name;
        WriteLabels(m.labels, os);
        os << ' ';
        WriteNumber(m.value, os);
        os << '\n';
        continue;
      }
      uint64_t cum = 0;
      for (size_t b = 0; b < m.buckets.size(); ++b) {
        cum += m.buckets[b];
        std::string le;
        if (b < m.bounds.size()) {
          std::ostringstream bound;
          WriteNumber(m.bounds[b], bound);
          le = bound.str();
        } else {
          le = "+Inf";
        }
        os << m.name << "_bucket";
        WriteBucketLabels(m.labels, le, os);
        os << ' ' << cum << '\n';
      }
      os << m.name << "_sum";
      WriteLabels(m.labels, os);
      os << ' ';
      WriteNumber(m.sum, os);
      os << '\n';
      os << m.name << "_count";
      WriteLabels(m.labels, os);
      os << ' ' << m.count << '\n';
    }
  }
}

void MetricsRegistry::DumpJson(std::ostream& os) const {
  const MetricsSnapshot snapshot = Snapshot();
  os << "{\"metrics\":[";
  for (size_t i = 0; i < snapshot.metrics.size(); ++i) {
    const MetricValue& m = snapshot.metrics[i];
    if (i > 0) os << ',';
    os << "{\"name\":\"";
    EscapeJson(m.name, os);
    os << "\",\"type\":\"" << TypeName(m.type) << "\",\"labels\":{";
    for (size_t l = 0; l < m.labels.size(); ++l) {
      if (l > 0) os << ',';
      os << '"';
      EscapeJson(m.labels[l].first, os);
      os << "\":\"";
      EscapeJson(m.labels[l].second, os);
      os << '"';
    }
    os << '}';
    if (m.type == MetricType::kHistogram) {
      os << ",\"bounds\":[";
      for (size_t b = 0; b < m.bounds.size(); ++b) {
        if (b > 0) os << ',';
        WriteNumber(m.bounds[b], os);
      }
      os << "],\"buckets\":[";
      for (size_t b = 0; b < m.buckets.size(); ++b) {
        if (b > 0) os << ',';
        os << m.buckets[b];
      }
      os << "],\"sum\":";
      WriteNumber(m.sum, os);
      os << ",\"count\":" << m.count;
    } else {
      os << ",\"value\":";
      WriteNumber(m.value, os);
    }
    os << '}';
  }
  os << "]}\n";
}

#else  // !PIE_METRICS

void MetricsRegistry::DumpPrometheusText(std::ostream& os) const {
  os << "# pie metrics disabled (built with -DPIE_METRICS=OFF)\n";
}

void MetricsRegistry::DumpJson(std::ostream& os) const {
  os << "{\"metrics\":[],\"disabled\":true}\n";
}

#endif  // PIE_METRICS

void DumpPrometheusText(std::ostream& os) {
  MetricsRegistry::Global().DumpPrometheusText(os);
}

void DumpJson(std::ostream& os) { MetricsRegistry::Global().DumpJson(os); }

}  // namespace pie::obs
