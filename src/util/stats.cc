#include "util/stats.h"

namespace pie {

double RelativeError(double a, double b, double floor) {
  return std::fabs(a - b) / std::max(std::fabs(b), floor);
}

}  // namespace pie
