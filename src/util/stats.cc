#include "util/stats.h"

namespace pie {

void RunningStat::Merge(const RunningStat& o) {
  if (o.count_ == 0) return;
  if (count_ == 0) {
    *this = o;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(o.count_);
  const double delta = o.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += o.m2_ + delta * delta * n1 * n2 / n;
  count_ += o.count_;
  min_ = std::min(min_, o.min_);
  max_ = std::max(max_, o.max_);
}

double RelativeError(double a, double b, double floor) {
  return std::fabs(a - b) / std::max(std::fabs(b), floor);
}

}  // namespace pie
