// Minimal aligned text-table printer used by the benchmark harness to emit
// the same rows/series the paper's figures plot.

#pragma once

#include <string>
#include <vector>

namespace pie {

/// Collects rows of cells and renders them with right-aligned columns.
class TextTable {
 public:
  /// Sets the header row.
  void SetHeader(std::vector<std::string> header);

  /// Appends a data row; rows may have differing cell counts.
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  static std::string Fmt(double v, int precision = 6);
  /// Scientific notation, e.g. 1.23e+04.
  static std::string FmtSci(double v, int precision = 3);

  /// Renders the table with two-space column separation.
  std::string ToString() const;

  /// Renders and writes to stdout.
  void Print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pie
