// Exact rational arithmetic on int64 numerator/denominator.
//
// The derivation engine (src/deriver) is templated on its scalar type; with
// Rational it reproduces the paper's closed-form estimators *exactly* at
// rational sampling probabilities (p = 1/2, 1/4, ...), which is how the test
// suite certifies that the hand-coded closed forms in src/core were
// transcribed correctly. Overflow is a checked fatal error (intermediate
// products use __int128), which is acceptable because derivation domains are
// tiny.

#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "util/check.h"

namespace pie {

/// An exact rational number num/den in lowest terms with den > 0.
class Rational {
 public:
  constexpr Rational() : num_(0), den_(1) {}
  Rational(int64_t value) : num_(value), den_(1) {}  // NOLINT
  Rational(int value) : num_(value), den_(1) {}      // NOLINT

  /// Creates num/den; den must be nonzero.
  Rational(int64_t num, int64_t den);

  int64_t num() const { return num_; }
  int64_t den() const { return den_; }

  double ToDouble() const {
    return static_cast<double>(num_) / static_cast<double>(den_);
  }

  /// "3/4" or "3" when the denominator is 1.
  std::string ToString() const;

  bool IsZero() const { return num_ == 0; }
  bool IsNegative() const { return num_ < 0; }

  Rational operator-() const { return Rational(-num_, den_); }
  Rational Abs() const { return num_ < 0 ? -*this : *this; }

  Rational operator+(const Rational& o) const;
  Rational operator-(const Rational& o) const;
  Rational operator*(const Rational& o) const;
  Rational operator/(const Rational& o) const;

  Rational& operator+=(const Rational& o) { return *this = *this + o; }
  Rational& operator-=(const Rational& o) { return *this = *this - o; }
  Rational& operator*=(const Rational& o) { return *this = *this * o; }
  Rational& operator/=(const Rational& o) { return *this = *this / o; }

  bool operator==(const Rational& o) const {
    return num_ == o.num_ && den_ == o.den_;
  }
  std::strong_ordering operator<=>(const Rational& o) const;

 private:
  int64_t num_;
  int64_t den_;
};

std::ostream& operator<<(std::ostream& os, const Rational& r);

/// Scalar adapters so generic code can treat double and Rational uniformly.
inline double ToDouble(double x) { return x; }
inline double ToDouble(const Rational& x) { return x.ToDouble(); }

}  // namespace pie
