#include "util/random.h"

#include <cmath>

namespace pie {

double Rng::Exponential(double rate) {
  PIE_DCHECK(rate > 0);
  // Map u in [0,1) through the inverse CDF; 1-u is in (0,1] so the log is
  // finite.
  const double u = UniformDouble();
  return -std::log1p(-u) / rate;
}

}  // namespace pie
