#include "util/hashing.h"

namespace pie {

uint64_t HashBytes(std::string_view bytes) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  // Finalize: raw FNV has weak low bits for short inputs.
  return Mix64(h);
}

}  // namespace pie
