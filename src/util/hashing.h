// Stable hashing used to implement "reproducible randomization".
//
// The paper's known-seeds model (Section 2 and Section 7.2) requires the
// random seed u_i(h) of key h in instance i to be recoverable at estimation
// time. We realize seeds as stateless hashes: u_i(h) = Unit(Mix(h, salt_i)).
// With a shared salt across instances the seeds coincide (shared-seed
// coordination); with per-instance salts they are independent.

#pragma once

#include <cstdint>
#include <string_view>

namespace pie {

/// SplitMix64 finalizer: a bijective 64-bit mix with good avalanche.
inline uint64_t Mix64(uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Combines two 64-bit values into one; order-sensitive.
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return Mix64(a + 0x9e3779b97f4a7c15ULL + (b << 6) + (b >> 2) + Mix64(b));
}

/// FNV-1a over bytes, for string keys.
uint64_t HashBytes(std::string_view bytes);

/// Maps a 64-bit hash to a uniform double in [0, 1) (53 bits).
inline double UnitUniform(uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// A reproducible seed function u(key) in [0,1), parameterized by a salt.
///
/// Two SeedFunctions with the same salt produce identical seeds (the PRN /
/// shared-seed coordination method of Section 7.2); different salts give
/// independent-looking seeds ("independent sampling with known seeds").
class SeedFunction {
 public:
  explicit SeedFunction(uint64_t salt) : salt_(salt) {}

  /// Seed for an integer key.
  double operator()(uint64_t key) const {
    return UnitUniform(HashCombine(salt_, Mix64(key)));
  }

  uint64_t salt() const { return salt_; }

 private:
  uint64_t salt_;
};

}  // namespace pie
