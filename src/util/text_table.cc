#include "util/text_table.h"

#include <cstdio>
#include <sstream>

namespace pie {

void TextTable::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TextTable::Fmt(double v, int precision) {
  std::ostringstream os;
  os.precision(precision);
  os << v;
  return os.str();
}

std::string TextTable::FmtSci(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", precision, v);
  return buf;
}

std::string TextTable::ToString() const {
  std::vector<size_t> widths;
  auto account = [&widths](const std::vector<std::string>& row) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  account(header_);
  for (const auto& row : rows_) account(row);

  std::ostringstream os;
  auto emit = [&os, &widths](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) os << "  ";
      os.width(static_cast<std::streamsize>(widths[i]));
      os << row[i];
    }
    os << "\n";
  };
  if (!header_.empty()) {
    emit(header_);
    size_t total = 0;
    for (size_t i = 0; i < widths.size(); ++i) {
      total += widths[i] + (i > 0 ? 2 : 0);
    }
    os << std::string(total, '-') << "\n";
  }
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void TextTable::Print() const { std::fputs(ToString().c_str(), stdout); }

}  // namespace pie
