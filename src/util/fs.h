// Pluggable filesystem abstraction for every fallible I/O path.
//
// All persist-layer I/O (atomic file writes, checkpoint reads, directory
// scans, fsync/rename, retention GC) goes through a FileSystem so tests can
// substitute FaultInjectingFs: a deterministic, scriptable wrapper that
// fails the Nth operation, truncates appends (short writes / EINTR), maps
// ENOSPC/EIO onto typed Status codes, or "crashes" at operation K --
// freezing the directory in exactly the state the real filesystem would
// hold if the process died there. The crash-point torture harness
// (tests/crash_torture_test.cc) enumerates every operation index of a
// checkpoint or GC run this way and asserts recovery always serves a fully
// verified generation.
//
// Error taxonomy: operations return Status with NotFound for missing
// paths, Unavailable for the transient errno class (EINTR, EAGAIN, EBUSY,
// ENOSPC, EDQUOT -- the only code persist's RetryPolicy retries), and
// Internal for everything else. WritableFile::AppendSome mirrors write(2):
// it may write FEWER bytes than asked (a short write; EINTR surfaces as a
// zero-byte success) and callers loop -- WriteFileAtomic below owns that
// loop, so short-write handling is injectable and tested rather than
// buried in each call site.
//
// This layer sits in util (below obs), so it carries no metrics; persist
// wraps these primitives with retry/metrics (persist/retry.h).

#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace pie {

/// A file opened for writing (created or truncated). Close() must be
/// called for the contents to be considered complete; the destructor
/// releases the descriptor without syncing.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  /// Appends up to `n` bytes, returning how many actually landed --
  /// possibly fewer (short write) or zero (interrupted, retry). Callers
  /// loop; see WriteFileAtomic.
  virtual Result<size_t> AppendSome(const char* data, size_t n) = 0;
  /// fsync: flushed to durable storage.
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
};

/// Virtual filesystem. The process-default implementation is POSIX;
/// FaultInjectingFs wraps any FileSystem with scripted failures.
class FileSystem {
 public:
  virtual ~FileSystem() = default;

  /// Whole file into memory. NotFound when missing.
  virtual Result<std::string> ReadFile(const std::string& path) = 0;
  /// Creates (or truncates) `path` for writing.
  virtual Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) = 0;
  virtual Status Rename(const std::string& from, const std::string& to) = 0;
  /// Removes a file. NotFound when it does not exist.
  virtual Status RemoveFile(const std::string& path) = 0;
  /// fsync on a directory: makes completed renames/unlinks durable.
  virtual Status SyncDir(const std::string& dir) = 0;
  /// mkdir -p.
  virtual Status CreateDirs(const std::string& dir) = 0;
  /// Entry names (not paths) in `dir`, unsorted. Tolerates entries
  /// vanishing mid-scan (a concurrent GC unlinking files must never turn
  /// a directory listing into a hard error); NotFound when `dir` itself
  /// is missing.
  virtual Result<std::vector<std::string>> ListDir(const std::string& dir) = 0;

  /// The process-wide POSIX filesystem.
  static FileSystem& Default();
};

/// Writes `payload` as `dir`/`name` crash-safely through `fs`: temp file
/// in the same directory (append loop tolerant of short writes), fsync,
/// rename over the final name, fsync the directory. A crash at any point
/// leaves either the old file, no file, or the complete new file under the
/// final name -- never a torn one. On failure the temp file is removed
/// (best effort) and the first error is returned.
Status WriteFileAtomic(FileSystem& fs, const std::string& dir,
                       const std::string& name, std::string_view payload);

/// Operation classes of FaultInjectingFs, for type-targeted scripts
/// ("fail the next fsync with EIO").
enum class FsOp {
  kRead,
  kList,
  kCreate,  // NewWritableFile
  kAppend,
  kSync,    // WritableFile::Sync
  kClose,
  kRename,
  kRemove,
  kSyncDir,
  kMkdir,
};

/// Deterministic fault injection over a base FileSystem.
///
/// Every virtual call (including calls on files it hands out) is one
/// *operation*, numbered from 1 in call order. Scripts are evaluated
/// before the operation touches the base filesystem:
///
///   * FailOp(k, status)        -- operation k returns `status`, no side
///                                 effect (fail-at-Nth-op, ENOSPC, ...).
///   * FailNextOps(op, n, st)   -- the next n operations of class `op`
///                                 return `st` (transient faults for retry
///                                 tests; EIO-on-fsync with op = kSync).
///   * SetAppendLimit(max)      -- every AppendSome writes at most `max`
///                                 bytes (short-write / EINTR coverage;
///                                 0 means appends make no progress).
///   * CrashAtOp(k)             -- operation k "crashes": an append first
///                                 applies a seeded partial prefix (a torn
///                                 write), any other operation applies
///                                 nothing; every operation from k on
///                                 fails with Unavailable("fs crashed"),
///                                 freezing the base directory state.
///
/// The same seed and script replay the same behavior exactly; there is no
/// wall-clock or randomness involved. Thread-safe, though torture runs
/// are single-threaded by construction.
class FaultInjectingFs : public FileSystem {
 public:
  explicit FaultInjectingFs(FileSystem* base, uint64_t seed = 0)
      : base_(base), seed_(seed) {}

  Result<std::string> ReadFile(const std::string& path) override;
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status RemoveFile(const std::string& path) override;
  Status SyncDir(const std::string& dir) override;
  Status CreateDirs(const std::string& dir) override;
  Result<std::vector<std::string>> ListDir(const std::string& dir) override;

  void FailOp(uint64_t k, Status status);
  void FailNextOps(FsOp op, int count, Status status);
  void SetAppendLimit(size_t max_bytes);
  void CrashAtOp(uint64_t k);

  /// Operations observed so far (a clean pass measures the op count a
  /// torture sweep then enumerates).
  uint64_t ops() const;
  bool crashed() const;
  /// Clears scripts, the crash latch, and the operation counter.
  void Reset();

 private:
  friend class FaultWritableFile;

  /// Runs the script for one operation of class `op`. Returns non-OK when
  /// the operation must fail; sets *torn_prefix (appends only) to the
  /// seeded partial length to apply before failing, or SIZE_MAX for none.
  Status Enter(FsOp op, size_t append_len, size_t* torn_prefix);

  mutable std::mutex mu_;
  FileSystem* base_;
  uint64_t seed_;
  uint64_t op_count_ = 0;
  bool crashed_ = false;
  uint64_t crash_at_ = 0;  // 0 = disabled
  std::map<uint64_t, Status> fail_at_;
  struct TypedFault {
    int remaining = 0;
    Status status;
  };
  std::map<FsOp, TypedFault> typed_;
  size_t append_limit_ = SIZE_MAX;
};

}  // namespace pie
