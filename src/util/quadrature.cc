#include "util/quadrature.h"

#include <cmath>

#include "util/check.h"

namespace pie {
namespace {

double AdaptiveSimpsonImpl(const std::function<double(double)>& f, double a,
                           double b, double fa, double fm, double fb,
                           double whole, double tol, int depth) {
  const double m = 0.5 * (a + b);
  const double lm = 0.5 * (a + m);
  const double rm = 0.5 * (m + b);
  const double flm = f(lm);
  const double frm = f(rm);
  const double left = (m - a) / 6.0 * (fa + 4.0 * flm + fm);
  const double right = (b - m) / 6.0 * (fm + 4.0 * frm + fb);
  const double delta = left + right - whole;
  if (depth <= 0 || std::fabs(delta) <= 15.0 * tol) {
    return left + right + delta / 15.0;  // Richardson extrapolation
  }
  return AdaptiveSimpsonImpl(f, a, m, fa, flm, fm, left, 0.5 * tol,
                             depth - 1) +
         AdaptiveSimpsonImpl(f, m, b, fm, frm, fb, right, 0.5 * tol,
                             depth - 1);
}

}  // namespace

double Simpson(const std::function<double(double)>& f, double a, double b,
               int n) {
  PIE_CHECK(n >= 2 && n % 2 == 0);
  const double h = (b - a) / n;
  double sum = f(a) + f(b);
  for (int i = 1; i < n; ++i) {
    sum += f(a + i * h) * (i % 2 == 1 ? 4.0 : 2.0);
  }
  return sum * h / 3.0;
}

double AdaptiveSimpson(const std::function<double(double)>& f, double a,
                       double b, double tol, int max_depth) {
  if (a == b) return 0.0;
  const double fa = f(a);
  const double fb = f(b);
  const double m = 0.5 * (a + b);
  const double fm = f(m);
  const double whole = (b - a) / 6.0 * (fa + 4.0 * fm + fb);
  return AdaptiveSimpsonImpl(f, a, b, fa, fm, fb, whole, tol, max_depth);
}

}  // namespace pie
