#include "util/quadrature.h"

namespace pie {

double Simpson(const std::function<double(double)>& f, double a, double b,
               int n) {
  return SimpsonT(f, a, b, n);
}

double AdaptiveSimpson(const std::function<double(double)>& f, double a,
                       double b, double tol, int max_depth) {
  return AdaptiveSimpsonT(f, a, b, tol, max_depth);
}

}  // namespace pie
