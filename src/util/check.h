// Lightweight runtime invariant checks, in the spirit of glog's CHECK.
//
// PIE_CHECK(cond)        aborts with a diagnostic when `cond` is false.
// PIE_CHECK_OK(status)   aborts when a pie::Status is not OK.
// PIE_DCHECK(cond)       PIE_CHECK in debug builds, no-op in NDEBUG builds.
//
// These are for programmer errors (broken invariants), not for recoverable
// conditions; fallible configuration paths return Status/Result instead.

#pragma once

#include <cstdio>
#include <cstdlib>

namespace pie {
namespace internal {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file,
                                     int line) {
  std::fprintf(stderr, "PIE_CHECK failed: %s at %s:%d\n", expr, file, line);
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal
}  // namespace pie

#define PIE_CHECK(cond)                                     \
  do {                                                      \
    if (!(cond)) {                                          \
      ::pie::internal::CheckFailed(#cond, __FILE__, __LINE__); \
    }                                                       \
  } while (0)

#define PIE_CHECK_OK(status_expr)                                       \
  do {                                                                  \
    const auto& pie_check_ok_status = (status_expr);                    \
    if (!pie_check_ok_status.ok()) {                                    \
      std::fprintf(stderr, "PIE_CHECK_OK failed: %s at %s:%d\n",        \
                   pie_check_ok_status.ToString().c_str(), __FILE__,    \
                   __LINE__);                                           \
      std::fflush(stderr);                                              \
      std::abort();                                                     \
    }                                                                   \
  } while (0)

#ifdef NDEBUG
#define PIE_DCHECK(cond) \
  do {                   \
  } while (0)
#else
#define PIE_DCHECK(cond) PIE_CHECK(cond)
#endif
