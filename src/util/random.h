// Deterministic, portable pseudo-random number generation.
//
// All stochastic components of libpie (samplers, Monte Carlo cross-checks,
// workload generators) draw from Rng so that every experiment is exactly
// reproducible from a 64-bit seed on any platform. The generator is
// xoshiro256++ seeded via SplitMix64, which is the standard, well-tested
// pairing recommended by the xoshiro authors.

#pragma once

#include <cstdint>
#include <limits>

#include "util/check.h"

namespace pie {

/// SplitMix64: a tiny, high-quality 64-bit generator mainly used for seeding
/// and for stateless hashing (see hashing.h).
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// xoshiro256++ 1.0 by Blackman & Vigna: fast all-purpose generator with a
/// 256-bit state and full 64-bit output.
class Rng {
 public:
  /// Seeds the four 64-bit state words from `seed` via SplitMix64.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Reseed(seed); }

  void Reseed(uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& word : state_) word = sm.Next();
  }

  uint64_t NextU64() {
    const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 random bits.
  double UniformDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    PIE_DCHECK(lo <= hi);
    return lo + (hi - lo) * UniformDouble();
  }

  /// Uniform integer in [0, n). Uses rejection to avoid modulo bias.
  uint64_t UniformInt(uint64_t n) {
    PIE_DCHECK(n > 0);
    const uint64_t threshold = (0ULL - n) % n;  // == 2^64 mod n
    uint64_t x;
    do {
      x = NextU64();
    } while (x < threshold);
    return x % n;
  }

  /// Bernoulli trial with success probability p in [0, 1].
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Exponential variate with rate `rate` (mean 1/rate).
  double Exponential(double rate);

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace pie
