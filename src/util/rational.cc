#include "util/rational.h"

#include <cstdlib>
#include <numeric>
#include <ostream>

namespace pie {
namespace {

// Narrows an __int128 to int64, aborting on overflow. Rational domains in
// the derivation engine are tiny, so overflow indicates a genuine bug (or an
// attempt to run derivation on a domain it was not designed for).
int64_t Narrow(__int128 x) {
  PIE_CHECK(x <= INT64_MAX && x >= INT64_MIN);
  return static_cast<int64_t>(x);
}

__int128 Gcd128(__int128 a, __int128 b) {
  if (a < 0) a = -a;
  if (b < 0) b = -b;
  while (b != 0) {
    __int128 t = a % b;
    a = b;
    b = t;
  }
  return a;
}

// Builds a normalized Rational from 128-bit intermediates.
Rational Normalize(__int128 num, __int128 den) {
  PIE_CHECK(den != 0);
  if (den < 0) {
    num = -num;
    den = -den;
  }
  __int128 g = Gcd128(num, den);
  if (g == 0) g = 1;  // num == 0
  return Rational(Narrow(num / g), Narrow(den / g));
}

}  // namespace

Rational::Rational(int64_t num, int64_t den) {
  PIE_CHECK(den != 0);
  if (den < 0) {
    num = -num;
    den = -den;
  }
  int64_t g = std::gcd(num, den);
  if (g == 0) g = 1;
  num_ = num / g;
  den_ = den / g;
}

std::string Rational::ToString() const {
  if (den_ == 1) return std::to_string(num_);
  return std::to_string(num_) + "/" + std::to_string(den_);
}

Rational Rational::operator+(const Rational& o) const {
  return Normalize(static_cast<__int128>(num_) * o.den_ +
                       static_cast<__int128>(o.num_) * den_,
                   static_cast<__int128>(den_) * o.den_);
}

Rational Rational::operator-(const Rational& o) const {
  return Normalize(static_cast<__int128>(num_) * o.den_ -
                       static_cast<__int128>(o.num_) * den_,
                   static_cast<__int128>(den_) * o.den_);
}

Rational Rational::operator*(const Rational& o) const {
  return Normalize(static_cast<__int128>(num_) * o.num_,
                   static_cast<__int128>(den_) * o.den_);
}

Rational Rational::operator/(const Rational& o) const {
  PIE_CHECK(!o.IsZero());
  return Normalize(static_cast<__int128>(num_) * o.den_,
                   static_cast<__int128>(den_) * o.num_);
}

std::strong_ordering Rational::operator<=>(const Rational& o) const {
  const __int128 lhs = static_cast<__int128>(num_) * o.den_;
  const __int128 rhs = static_cast<__int128>(o.num_) * den_;
  if (lhs < rhs) return std::strong_ordering::less;
  if (lhs > rhs) return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

std::ostream& operator<<(std::ostream& os, const Rational& r) {
  return os << r.ToString();
}

}  // namespace pie
