#include "util/fs.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <system_error>
#include <utility>

#include "util/hashing.h"

namespace pie {

namespace {

/// errno -> typed Status. The transient class maps to Unavailable (the
/// only retryable code); missing paths to NotFound; the rest to Internal.
Status ErrnoStatus(const std::string& what) {
  const int err = errno;
  std::string msg = "fs: " + what + ": " + std::strerror(err);
  switch (err) {
    case EINTR:
    case EAGAIN:
    case EBUSY:
    case ENOSPC:
#ifdef EDQUOT
    case EDQUOT:
#endif
      return Status::Unavailable(std::move(msg));
    case ENOENT:
      return Status::NotFound(std::move(msg));
    default:
      return Status::Internal(std::move(msg));
  }
}

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}
  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Result<size_t> AppendSome(const char* data, size_t n) override {
    const ssize_t written = ::write(fd_, data, n);
    if (written < 0) {
      // EINTR is a zero-byte short write: the caller's loop retries.
      if (errno == EINTR) return static_cast<size_t>(0);
      return ErrnoStatus("write " + path_);
    }
    return static_cast<size_t>(written);
  }

  Status Sync() override {
    if (::fsync(fd_) != 0) return ErrnoStatus("fsync " + path_);
    return Status::OK();
  }

  Status Close() override {
    const int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) return ErrnoStatus("close " + path_);
    return Status::OK();
  }

 private:
  int fd_;
  std::string path_;
};

class PosixFileSystem : public FileSystem {
 public:
  Result<std::string> ReadFile(const std::string& path) override {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return ErrnoStatus("open " + path);
    std::string bytes;
    char buf[1 << 16];
    for (;;) {
      const ssize_t n = ::read(fd, buf, sizeof buf);
      if (n < 0) {
        if (errno == EINTR) continue;
        const Status status = ErrnoStatus("read " + path);
        ::close(fd);
        return status;
      }
      if (n == 0) break;
      bytes.append(buf, static_cast<size_t>(n));
    }
    ::close(fd);
    return bytes;
  }

  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override {
    const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) return ErrnoStatus("open " + path);
    return std::unique_ptr<WritableFile>(new PosixWritableFile(fd, path));
  }

  Status Rename(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return ErrnoStatus("rename " + from + " -> " + to);
    }
    return Status::OK();
  }

  Status RemoveFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) return ErrnoStatus("unlink " + path);
    return Status::OK();
  }

  Status SyncDir(const std::string& dir) override {
    const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0) return ErrnoStatus("open dir " + dir);
    const int rc = ::fsync(fd);
    ::close(fd);
    if (rc != 0) return ErrnoStatus("fsync dir " + dir);
    return Status::OK();
  }

  Status CreateDirs(const std::string& dir) override {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
      return Status::Internal("fs: mkdir " + dir + ": " + ec.message());
    }
    return Status::OK();
  }

  Result<std::vector<std::string>> ListDir(const std::string& dir) override {
    std::error_code ec;
    std::filesystem::directory_iterator it(dir, ec);
    if (ec) {
      if (ec == std::errc::no_such_file_or_directory) {
        return Status::NotFound("fs: list " + dir + ": " + ec.message());
      }
      return Status::Internal("fs: list " + dir + ": " + ec.message());
    }
    // Non-throwing iteration: a file unlinked between readdir batches (a
    // concurrent GC) must skip, not abort the scan. A mid-iteration error
    // ends the listing with the entries gathered so far -- readers verify
    // every file they load anyway.
    std::vector<std::string> names;
    const std::filesystem::directory_iterator end;
    while (it != end) {
      names.push_back(it->path().filename().string());
      it.increment(ec);
      if (ec) break;
    }
    return names;
  }
};

}  // namespace

FileSystem& FileSystem::Default() {
  static PosixFileSystem* fs = new PosixFileSystem;
  return *fs;
}

Status WriteFileAtomic(FileSystem& fs, const std::string& dir,
                       const std::string& name, std::string_view payload) {
  const std::string tmp_path = dir + "/" + name + ".tmp";
  const std::string final_path = dir + "/" + name;
  auto file = fs.NewWritableFile(tmp_path);
  if (!file.ok()) return file.status();
  const auto fail = [&](const Status& status) {
    fs.RemoveFile(tmp_path);  // best effort; the error below wins
    return status;
  };
  size_t written = 0;
  size_t stalls = 0;
  while (written < payload.size()) {
    auto n = (*file)->AppendSome(payload.data() + written,
                                 payload.size() - written);
    if (!n.ok()) return fail(n.status());
    written += *n;
    // A zero-byte append is an interrupted write and retries, but a
    // filesystem that never makes progress must not hang the writer.
    stalls = (*n == 0) ? stalls + 1 : 0;
    if (stalls > 1000) {
      return fail(Status::Unavailable("fs: append to " + tmp_path +
                                      " makes no progress"));
    }
  }
  Status status = (*file)->Sync();
  if (!status.ok()) return fail(status);
  status = (*file)->Close();
  if (!status.ok()) return fail(status);
  status = fs.Rename(tmp_path, final_path);
  if (!status.ok()) return fail(status);
  return fs.SyncDir(dir);
}

// ---------------------------------------------------------------------------
// FaultInjectingFs
// ---------------------------------------------------------------------------

/// A fault-wrapped writable file: every call is an operation of the
/// owning FaultInjectingFs, so scripts can target appends/syncs/closes.
/// Namespace-scope (not anonymous) so the friend declaration in fs.h
/// grants it access to Enter and the script state.
class FaultWritableFile : public WritableFile {
 public:
  FaultWritableFile(FaultInjectingFs* owner,
                    std::unique_ptr<WritableFile> base)
      : owner_(owner), base_(std::move(base)) {}

  Result<size_t> AppendSome(const char* data, size_t n) override;
  Status Sync() override;
  Status Close() override;

 private:
  FaultInjectingFs* owner_;
  std::unique_ptr<WritableFile> base_;
};

namespace {

/// Fully writes `n` bytes through the base file (the injected torn prefix
/// must land deterministically, short base writes notwithstanding).
Status AppendAll(WritableFile* file, const char* data, size_t n) {
  size_t written = 0;
  while (written < n) {
    auto w = file->AppendSome(data + written, n - written);
    if (!w.ok()) return w.status();
    written += *w;
  }
  return Status::OK();
}

}  // namespace

Status FaultInjectingFs::Enter(FsOp op, size_t append_len,
                               size_t* torn_prefix) {
  std::lock_guard<std::mutex> lock(mu_);
  *torn_prefix = SIZE_MAX;
  const uint64_t k = ++op_count_;
  if (crashed_) return Status::Unavailable("fs crashed (fault injection)");
  if (crash_at_ != 0 && k >= crash_at_) {
    crashed_ = true;
    if (op == FsOp::kAppend && append_len > 0) {
      // The torn write: a seeded strict-prefix of the payload lands, the
      // rest never does. Deterministic in (seed, op index).
      *torn_prefix = static_cast<size_t>(Mix64(seed_ ^ k) % append_len);
    }
    return Status::Unavailable("fs crashed (fault injection)");
  }
  if (auto it = fail_at_.find(k); it != fail_at_.end()) {
    Status status = it->second;
    fail_at_.erase(it);
    return status;
  }
  if (auto it = typed_.find(op); it != typed_.end() && it->second.remaining > 0) {
    --it->second.remaining;
    return it->second.status;
  }
  return Status::OK();
}

Result<std::string> FaultInjectingFs::ReadFile(const std::string& path) {
  size_t torn;
  Status status = Enter(FsOp::kRead, 0, &torn);
  if (!status.ok()) return status;
  return base_->ReadFile(path);
}

Result<std::unique_ptr<WritableFile>> FaultInjectingFs::NewWritableFile(
    const std::string& path) {
  size_t torn;
  Status status = Enter(FsOp::kCreate, 0, &torn);
  if (!status.ok()) return status;
  auto base = base_->NewWritableFile(path);
  if (!base.ok()) return base.status();
  return std::unique_ptr<WritableFile>(
      new FaultWritableFile(this, std::move(*base)));
}

Status FaultInjectingFs::Rename(const std::string& from,
                                const std::string& to) {
  size_t torn;
  Status status = Enter(FsOp::kRename, 0, &torn);
  if (!status.ok()) return status;
  return base_->Rename(from, to);
}

Status FaultInjectingFs::RemoveFile(const std::string& path) {
  size_t torn;
  Status status = Enter(FsOp::kRemove, 0, &torn);
  if (!status.ok()) return status;
  return base_->RemoveFile(path);
}

Status FaultInjectingFs::SyncDir(const std::string& dir) {
  size_t torn;
  Status status = Enter(FsOp::kSyncDir, 0, &torn);
  if (!status.ok()) return status;
  return base_->SyncDir(dir);
}

Status FaultInjectingFs::CreateDirs(const std::string& dir) {
  size_t torn;
  Status status = Enter(FsOp::kMkdir, 0, &torn);
  if (!status.ok()) return status;
  return base_->CreateDirs(dir);
}

Result<std::vector<std::string>> FaultInjectingFs::ListDir(
    const std::string& dir) {
  size_t torn;
  Status status = Enter(FsOp::kList, 0, &torn);
  if (!status.ok()) return status;
  return base_->ListDir(dir);
}

Result<size_t> FaultWritableFile::AppendSome(const char* data, size_t n) {
  size_t torn = SIZE_MAX;
  Status status = owner_->Enter(FsOp::kAppend, n, &torn);
  if (!status.ok()) {
    if (torn != SIZE_MAX && torn > 0) {
      AppendAll(base_.get(), data, torn);  // the crash's torn write
    }
    return status;
  }
  size_t limit;
  {
    std::lock_guard<std::mutex> lock(owner_->mu_);
    limit = owner_->append_limit_;
  }
  return base_->AppendSome(data, n < limit ? n : limit);
}

Status FaultWritableFile::Sync() {
  size_t torn;
  Status status = owner_->Enter(FsOp::kSync, 0, &torn);
  if (!status.ok()) return status;
  return base_->Sync();
}

Status FaultWritableFile::Close() {
  size_t torn;
  Status status = owner_->Enter(FsOp::kClose, 0, &torn);
  if (!status.ok()) return status;
  return base_->Close();
}

void FaultInjectingFs::FailOp(uint64_t k, Status status) {
  std::lock_guard<std::mutex> lock(mu_);
  fail_at_[k] = std::move(status);
}

void FaultInjectingFs::FailNextOps(FsOp op, int count, Status status) {
  std::lock_guard<std::mutex> lock(mu_);
  typed_[op] = {count, std::move(status)};
}

void FaultInjectingFs::SetAppendLimit(size_t max_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  append_limit_ = max_bytes;
}

void FaultInjectingFs::CrashAtOp(uint64_t k) {
  std::lock_guard<std::mutex> lock(mu_);
  crash_at_ = k;
}

uint64_t FaultInjectingFs::ops() const {
  std::lock_guard<std::mutex> lock(mu_);
  return op_count_;
}

bool FaultInjectingFs::crashed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return crashed_;
}

void FaultInjectingFs::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  op_count_ = 0;
  crashed_ = false;
  crash_at_ = 0;
  fail_at_.clear();
  typed_.clear();
  append_limit_ = SIZE_MAX;
}

}  // namespace pie
