#include "util/status.h"

namespace pie {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kInfeasible:
      return "Infeasible";
    case StatusCode::kDataLoss:
      return "DataLoss";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace pie
