// One-dimensional numerical integration.
//
// Exact variances of the weighted known-seeds estimators (Section 5.2)
// involve integrals of the estimate over the seed of the unsampled entry;
// the integrands are smooth within the case regions of Figure 3, so adaptive
// Simpson converges quickly when the caller splits at case boundaries.

#pragma once

#include <functional>

namespace pie {

/// Composite Simpson rule with n (even, >= 2) panels.
double Simpson(const std::function<double(double)>& f, double a, double b,
               int n);

/// Adaptive Simpson integration of f over [a, b] to absolute tolerance tol.
/// max_depth bounds recursion (each level halves the interval).
double AdaptiveSimpson(const std::function<double(double)>& f, double a,
                       double b, double tol = 1e-10, int max_depth = 40);

}  // namespace pie
