// One-dimensional numerical integration.
//
// Exact variances of the weighted known-seeds estimators (Section 5.2)
// involve integrals of the estimate over the seed of the unsampled entry;
// the integrands are smooth within the case regions of Figure 3, so adaptive
// Simpson converges quickly when the caller splits at case boundaries.
//
// Both routines are function templates on the integrand: every caller
// passes its callable (usually a lambda) directly and pays no
// std::function indirection or allocation per evaluation. The former
// std::function overloads (and the SimpsonT/AdaptiveSimpsonT aliases that
// coexisted with them) are gone -- the templates are the only entry point.

#pragma once

#include <cmath>

#include "util/check.h"

namespace pie {
namespace quadrature_internal {

template <typename F>
double AdaptiveSimpsonImpl(F&& f, double a, double b, double fa, double fm,
                           double fb, double whole, double tol, int depth) {
  const double m = 0.5 * (a + b);
  const double lm = 0.5 * (a + m);
  const double rm = 0.5 * (m + b);
  const double flm = f(lm);
  const double frm = f(rm);
  const double left = (m - a) / 6.0 * (fa + 4.0 * flm + fm);
  const double right = (b - m) / 6.0 * (fm + 4.0 * frm + fb);
  const double delta = left + right - whole;
  if (depth <= 0 || std::fabs(delta) <= 15.0 * tol) {
    return left + right + delta / 15.0;  // Richardson extrapolation
  }
  return AdaptiveSimpsonImpl(f, a, m, fa, flm, fm, left, 0.5 * tol,
                             depth - 1) +
         AdaptiveSimpsonImpl(f, m, b, fm, frm, fb, right, 0.5 * tol,
                             depth - 1);
}

}  // namespace quadrature_internal

/// Composite Simpson rule with n (even, >= 2) panels.
template <typename F>
double Simpson(F&& f, double a, double b, int n) {
  PIE_CHECK(n >= 2 && n % 2 == 0);
  const double h = (b - a) / n;
  double sum = f(a) + f(b);
  for (int i = 1; i < n; ++i) {
    sum += f(a + i * h) * (i % 2 == 1 ? 4.0 : 2.0);
  }
  return sum * h / 3.0;
}

/// Adaptive Simpson integration of f over [a, b] to absolute tolerance tol.
/// max_depth bounds recursion (each level halves the interval).
template <typename F>
double AdaptiveSimpson(F&& f, double a, double b, double tol = 1e-10,
                       int max_depth = 40) {
  if (a == b) return 0.0;
  const double fa = f(a);
  const double fb = f(b);
  const double m = 0.5 * (a + b);
  const double fm = f(m);
  const double whole = (b - a) / 6.0 * (fa + 4.0 * fm + fb);
  return quadrature_internal::AdaptiveSimpsonImpl(f, a, b, fa, fm, fb, whole,
                                                  tol, max_depth);
}

}  // namespace pie
