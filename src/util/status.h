// Arrow/RocksDB-style error propagation without exceptions.
//
// Fallible configuration and derivation paths return Status (or Result<T>
// for value-returning functions). Hot estimator-evaluation paths never fail
// and therefore do not pay for Status.

#pragma once

#include <string>
#include <utility>
#include <variant>

#include "util/check.h"

namespace pie {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kFailedPrecondition,
  kOutOfRange,
  kNotFound,
  kUnimplemented,
  kInternal,
  kInfeasible,  // derivation-specific: no estimator with requested properties
  kDataLoss,    // persistence-specific: corrupted or truncated on-disk data
  kUnavailable,  // transient I/O failure (EINTR/EAGAIN/ENOSPC class);
                 // the only code persist's RetryPolicy treats as retryable
};

/// Returns a short stable name for a status code ("InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// A success-or-error value. Cheap to copy in the OK case.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Infeasible(std::string msg) {
    return Status(StatusCode::kInfeasible, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Dereferencing a non-OK
/// Result is a checked fatal error.
template <typename T>
class Result {
 public:
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    PIE_CHECK(!std::get<Status>(repr_).ok());  // OK status carries no value
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status& status() const {
    static const Status kOk = Status::OK();
    return ok() ? kOk : std::get<Status>(repr_);
  }

  const T& value() const& {
    PIE_CHECK(ok());
    return std::get<T>(repr_);
  }
  T& value() & {
    PIE_CHECK(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    PIE_CHECK(ok());
    return std::move(std::get<T>(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> repr_;
};

}  // namespace pie

/// Propagates a non-OK Status out of the calling function.
#define PIE_RETURN_IF_ERROR(expr)          \
  do {                                     \
    ::pie::Status pie_status_ = (expr);    \
    if (!pie_status_.ok()) return pie_status_; \
  } while (0)
