// Streaming summary statistics (Welford's algorithm) and helpers used by the
// Monte Carlo cross-checks and the benchmark harness.

#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "util/check.h"

namespace pie {

/// Numerically stable streaming mean/variance/extremes accumulator.
class RunningStat {
 public:
  void Add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  /// Merges another accumulator (parallel Welford / Chan et al.).
  void Merge(const RunningStat& o);

  int64_t count() const { return count_; }
  double mean() const { return mean_; }

  /// Population variance (divide by n). Zero for fewer than 2 samples.
  double variance() const {
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_);
  }
  /// Sample variance (divide by n-1). Zero for fewer than 2 samples.
  double sample_variance() const {
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
  }
  double stddev() const { return std::sqrt(variance()); }

  double min() const { return min_; }
  double max() const { return max_; }

  /// Coefficient of variation: stddev / |mean|. Requires nonzero mean.
  double cv() const {
    PIE_DCHECK(mean_ != 0.0);
    return stddev() / std::fabs(mean_);
  }

  /// Standard error of the mean (sample stddev / sqrt(n)).
  double standard_error() const {
    return count_ < 2 ? 0.0
                      : std::sqrt(sample_variance() /
                                  static_cast<double>(count_));
  }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Relative error |a - b| / max(|b|, floor); floor avoids division blowup
/// near zero.
double RelativeError(double a, double b, double floor = 1e-12);

}  // namespace pie
