// Streaming summary statistics (Welford's algorithm) and helpers used by the
// Monte Carlo cross-checks, the accuracy layer, and the benchmark harness.

#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "util/check.h"

namespace pie {

/// Mergeable streaming moment accumulator: count / mean / M2 maintained by
/// Welford's update, with the exact pairwise Merge() of Chan et al. so
/// per-shard (or per-thread) partials reduce to the same moments as a
/// single stream, up to floating-point rounding. This is the building block
/// of RunningStat, of the accuracy layer's per-query variance accumulation,
/// and of the Monte Carlo cross-checks in bench/fig2 and bench/fig4.
class MomentAccumulator {
 public:
  void Add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
  }

  /// Exact pairwise combination (Chan et al., parallel Welford): the merged
  /// accumulator has the moments of the concatenated streams. Merging is
  /// commutative/associative up to rounding; merge-order invariance is
  /// covered in tests/util_test.cc.
  void Merge(const MomentAccumulator& o) {
    if (o.count_ == 0) return;
    if (count_ == 0) {
      *this = o;
      return;
    }
    const double n1 = static_cast<double>(count_);
    const double n2 = static_cast<double>(o.count_);
    const double delta = o.mean_ - mean_;
    const double n = n1 + n2;
    mean_ += delta * n2 / n;
    m2_ += o.m2_ + delta * delta * n1 * n2 / n;
    count_ += o.count_;
  }

  /// Builds an accumulator directly from its moments: `count` samples with
  /// mean `mean` and squared-deviation sum `m2`. The bridge for drivers
  /// that compute a block's moments in closed form (e.g. the parallel scan
  /// driver's per-chunk two-pass mean/M2, which avoids Welford's per-key
  /// division) and then Merge() blocks exactly as usual.
  static MomentAccumulator FromMoments(int64_t count, double mean,
                                       double m2) {
    PIE_DCHECK(count >= 0);
    MomentAccumulator out;
    out.count_ = count;
    out.mean_ = mean;
    out.m2_ = m2;
    return out;
  }

  int64_t count() const { return count_; }
  double mean() const { return mean_; }
  /// Sum of squared deviations from the mean (the raw M2 moment).
  double m2() const { return m2_; }

  /// Population variance (divide by n). Zero for fewer than 2 samples.
  double variance() const {
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_);
  }
  /// Sample variance (divide by n-1). Zero for fewer than 2 samples.
  double sample_variance() const {
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
  }
  double stddev() const { return std::sqrt(variance()); }

  /// Standard error of the mean (sample stddev / sqrt(n)).
  double standard_error() const {
    return count_ < 2 ? 0.0
                      : std::sqrt(sample_variance() /
                                  static_cast<double>(count_));
  }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Numerically stable streaming mean/variance/extremes accumulator: the
/// mergeable moments plus min/max tracking.
class RunningStat {
 public:
  void Add(double x) {
    moments_.Add(x);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  /// Merges another accumulator (parallel Welford / Chan et al.).
  void Merge(const RunningStat& o) {
    moments_.Merge(o.moments_);
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
  }

  int64_t count() const { return moments_.count(); }
  double mean() const { return moments_.mean(); }

  /// Population variance (divide by n). Zero for fewer than 2 samples.
  double variance() const { return moments_.variance(); }
  /// Sample variance (divide by n-1). Zero for fewer than 2 samples.
  double sample_variance() const { return moments_.sample_variance(); }
  double stddev() const { return moments_.stddev(); }

  double min() const { return min_; }
  double max() const { return max_; }

  /// Coefficient of variation: stddev / |mean|. Requires nonzero mean.
  double cv() const {
    PIE_DCHECK(mean() != 0.0);
    return stddev() / std::fabs(mean());
  }

  /// Standard error of the mean (sample stddev / sqrt(n)).
  double standard_error() const { return moments_.standard_error(); }

  const MomentAccumulator& moments() const { return moments_; }

 private:
  MomentAccumulator moments_;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Relative error |a - b| / max(|b|, floor); floor avoids division blowup
/// near zero.
double RelativeError(double a, double b, double floor = 1e-12);

}  // namespace pie
