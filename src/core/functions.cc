#include "core/functions.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace pie {

double MaxOf(const std::vector<double>& v) {
  double best = 0.0;
  for (size_t i = 0; i < v.size(); ++i) {
    best = i == 0 ? v[i] : std::max(best, v[i]);
  }
  return best;
}

double MinOf(const std::vector<double>& v) {
  double best = 0.0;
  for (size_t i = 0; i < v.size(); ++i) {
    best = i == 0 ? v[i] : std::min(best, v[i]);
  }
  return best;
}

double RangeOf(const std::vector<double>& v) { return MaxOf(v) - MinOf(v); }

double RangePowOf(const std::vector<double>& v, double d) {
  PIE_DCHECK(d > 0);
  return std::pow(RangeOf(v), d);
}

double OrOf(const std::vector<double>& v) {
  for (double x : v) {
    if (x != 0.0) return 1.0;
  }
  return 0.0;
}

double LthOf(std::vector<double> v, int l) {
  PIE_CHECK(l >= 1 && l <= static_cast<int>(v.size()));
  std::nth_element(v.begin(), v.begin() + (l - 1), v.end(),
                   std::greater<double>());
  return v[l - 1];
}

}  // namespace pie
