// max^(L) for THREE instances with arbitrary per-instance probabilities
// (weight-oblivious Poisson) -- the general-p instantiation of Theorem 4.1
// one dimension past the paper's worked r = 2 example.
//
// The estimate is sum_i alpha_{i,pi(p)} phi(S)_{pi_i} where pi sorts the
// determining vector; the permuted prefix sums needed at r = 3 are
//   A_3(p)       = 1 / (1 - q1 q2 q3)                   (equation (16))
//   A_2(a,b)     = A_3 / (1 - q_a q_b)                  (equation (18))
//   A_1(a)       = (A_2(a,b) + A_2(a,c) - A_3) / p_a    (the k = 1 case)
// with q_i = 1 - p_i. Theorem 4.1's symmetry property (A_2 symmetric in
// its two leading entries, A_1 in its two trailing ones) makes the
// estimate independent of tie-breaking among equal values; tests verify
// this numerically along with exact unbiasedness by outcome enumeration.

#pragma once

#include <array>

#include "sampling/poisson.h"

namespace pie {

/// General-probability max^(L) for r = 3.
class MaxLThree {
 public:
  MaxLThree(double p1, double p2, double p3);

  /// Estimate from a three-entry weight-oblivious outcome.
  double Estimate(const ObliviousOutcome& outcome) const;

  /// Estimate from a determining vector (unsampled entries already replaced
  /// by the sampled maximum). Invariant under permutations of equal values.
  double EstimateFromDeterminingVector(const std::array<double, 3>& phi) const;

  /// Exact variance on a data vector (outcome enumeration).
  double Variance(const std::array<double, 3>& values) const;

  /// Permuted prefix sums (exposed for tests): A_3; A_2 with leading pair
  /// {a,b}; A_1 with leading entry a.
  double A3() const { return a3_; }
  double A2(int a, int b) const;
  double A1(int a) const { return a1_[static_cast<size_t>(a)]; }

 private:
  std::array<double, 3> p_;
  double a3_;
  std::array<double, 3> a2_pair_;  ///< indexed by the EXCLUDED entry
  std::array<double, 3> a1_;
};

}  // namespace pie
