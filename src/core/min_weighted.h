// Inverse-probability estimators for min(v) under weighted PPS sampling
// (Section 6 notes min is the one quantile estimable even with UNKNOWN
// seeds: the all-sampled outcome reveals min(v), and its probability
// prod_i min(1, v_i/tau_i) is computable from the sampled values alone).
//
// The estimator is Pareto optimal among unbiased nonnegative estimators:
// any outcome with a missing entry is consistent with a data vector whose
// min is 0, forcing the estimate 0 there (the argument of Section 2.2).

#pragma once

#include <vector>

#include "sampling/poisson.h"

namespace pie {

/// min^(HT) over r independently PPS-sampled instances. Unknown seeds
/// suffice; the estimate never reads the seed vector.
class MinHtWeighted {
 public:
  explicit MinHtWeighted(std::vector<double> tau);

  /// min over sampled values divided by the all-sampled probability when
  /// every entry is present; 0 otherwise.
  double Estimate(const PpsOutcome& outcome) const;

  /// Row variant over length-r arrays; shared by the scalar and batched
  /// paths (never reads seeds, matching the unknown-seeds regime).
  double EstimateRow(const uint8_t* sampled, const double* value) const;

  /// Unbiased estimate of min(v)^2: min^2 / p on the all-sampled event
  /// (where min(v) is known and p = prod_i min(1, v_i/tau_i) is computable
  /// from the sampled values alone), 0 otherwise. Feeds the accuracy
  /// layer's per-key variance estimates (src/accuracy/).
  double SecondMomentRow(const uint8_t* sampled, const double* value) const;

  /// Fused EstimateRow + SecondMomentRow: one all-sampled pass fills both
  /// min/p and min^2/p. Bitwise identical to the two separate calls (the
  /// shared AllSampledMin core produces the same min and p) at half the
  /// work -- the single-pass estimate+variance slab loops drive this.
  void EstimateWithSecondMomentRow(const uint8_t* sampled,
                                   const double* value, double* est_out,
                                   double* second_out) const;

  /// Unbiased estimate of max(v) * min(v): on the all-sampled event the
  /// whole vector is known, so max * min / p (with p the all-sampled
  /// probability, computable from the sampled values alone) is unbiased;
  /// 0 otherwise. This is the cross moment behind covariance-aware error
  /// bars for differences of max- and min-based aggregates that share one
  /// sample (QueryService::L1Distance): with X the max estimator and Y
  /// this kernel's min estimator over the same outcome,
  ///   Cov-hat = X(o) Y(o) - MaxMinProductRow(o)
  /// is an unbiased per-key estimate of Cov[X, Y].
  double MaxMinProductRow(const uint8_t* sampled, const double* value) const;

  /// P[all entries sampled | values] = prod_i min(1, v_i/tau_i).
  double PositiveProb(const std::vector<double>& values) const;

  /// Exact variance: min(v)^2 (1/p - 1); 0 when some value is 0 (min is
  /// then 0 and the estimator is constant 0).
  double Variance(const std::vector<double>& values) const;

  const std::vector<double>& tau() const { return tau_; }

 private:
  /// Shared core of Estimate/SecondMomentRow: true iff every entry is
  /// sampled, returning min(v) and the all-sampled probability. One copy
  /// keeps the estimate/second-moment pair in sync.
  bool AllSampledMin(const uint8_t* sampled, const double* value,
                     double* min_out, double* prob_out) const;

  std::vector<double> tau_;
};

}  // namespace pie
