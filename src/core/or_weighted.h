// Boolean OR under weighted PPS sampling with known seeds (Section 5.1).
//
// Over binary domains, weighted sampling with known seeds is equivalent to
// weight-oblivious sampling: a value-1 entry is sampled with probability
// p_i = min(1, 1/tau*_i), and when entry i is missing but its seed satisfies
// u_i <= p_i, the seed certifies v_i = 0 (because v_i < u_i * tau*_i <= 1).
// MapBinaryPpsToOblivious performs exactly this outcome translation, after
// which the Section 4.3 estimators apply unchanged -- including their
// optimality and variance (the paper's Section 5.1 tables are the composed
// forms).

#pragma once

#include <vector>

#include "core/or_oblivious.h"
#include "sampling/poisson.h"

namespace pie {

/// Per-entry probability that a value-1 entry is sampled under PPS
/// thresholds tau: p_i = min(1, 1/tau_i).
std::vector<double> BinaryPpsInclusionProbs(const std::vector<double>& tau);

/// Maps a weighted PPS outcome over binary data (known seeds) to the
/// equivalent weight-oblivious outcome. Checks that sampled values are 0/1.
ObliviousOutcome MapBinaryPpsToOblivious(const PpsOutcome& outcome);

/// OR over r instances sampled by weighted PPS with a uniform threshold
/// tau (so each value-1 entry is sampled with p = min(1, 1/tau)): the
/// general-r OR^(L) through the outcome mapping, using the Theorem 4.2
/// prefix sums.
class OrWeightedUniform {
 public:
  OrWeightedUniform(int r, double tau);

  /// OR^(L) estimate (requires known seeds).
  double EstimateL(const PpsOutcome& outcome) const;
  /// OR^(HT): positive only when every entry is mapped-sampled.
  double EstimateHt(const PpsOutcome& outcome) const;

  double p() const { return or_l_.p(); }
  int r() const { return or_l_.r(); }

 private:
  OrLUniform or_l_;
};

/// Convenience wrapper bundling the three OR estimators for two instances
/// sampled by weighted PPS with known seeds.
class OrWeightedTwo {
 public:
  OrWeightedTwo(double tau1, double tau2);

  /// OR^(HT): positive only when both seeds fall below p_i.
  double EstimateHt(const PpsOutcome& outcome) const;
  /// OR^(L) through the outcome mapping.
  double EstimateL(const PpsOutcome& outcome) const;
  /// OR^(U) through the outcome mapping.
  double EstimateU(const PpsOutcome& outcome) const;

  double p1() const { return p1_; }
  double p2() const { return p2_; }

 private:
  double p1_, p2_;
  OrLTwo or_l_;
  OrUTwo or_u_;
};

}  // namespace pie
