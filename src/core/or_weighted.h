// Boolean OR under weighted PPS sampling with known seeds (Section 5.1).
//
// Over binary domains, weighted sampling with known seeds is equivalent to
// weight-oblivious sampling: a value-1 entry is sampled with probability
// p_i = min(1, 1/tau*_i), and when entry i is missing but its seed satisfies
// u_i <= p_i, the seed certifies v_i = 0 (because v_i < u_i * tau*_i <= 1).
// MapBinaryPpsToOblivious performs exactly this outcome translation, after
// which the Section 4.3 estimators apply unchanged -- including their
// optimality and variance (the paper's Section 5.1 tables are the composed
// forms).

#pragma once

#include <cmath>
#include <vector>

#include "core/or_oblivious.h"
#include "sampling/poisson.h"
#include "util/check.h"

namespace pie {

/// Per-entry probability that a value-1 entry is sampled under PPS
/// thresholds tau: p_i = min(1, 1/tau_i).
std::vector<double> BinaryPpsInclusionProbs(const std::vector<double>& tau);

/// Maps a weighted PPS outcome over binary data (known seeds) to the
/// equivalent weight-oblivious outcome. Checks that sampled values are 0/1.
ObliviousOutcome MapBinaryPpsToOblivious(const PpsOutcome& outcome);

/// Row variant of the outcome mapping over length-r arrays: writes the
/// mapped inclusion probabilities, sampled flags, and binary values. The
/// scalar MapBinaryPpsToOblivious and the engine's batched loops both
/// route through it (bitwise-identical paths by construction).
inline void MapBinaryPpsRowToOblivious(const double* tau, const double* seed,
                                       const uint8_t* sampled,
                                       const double* value, int r,
                                       double* p_out, uint8_t* sampled_out,
                                       double* value_out) {
  for (int i = 0; i < r; ++i) {
    PIE_CHECK(tau[i] > 0);
    p_out[i] = std::fmin(1.0, 1.0 / tau[i]);
    if (sampled[i]) {
      PIE_CHECK(value[i] == 1.0);  // binary domain, zero never sampled
      sampled_out[i] = 1;
      value_out[i] = 1.0;
    } else if (seed[i] <= p_out[i]) {
      // Seed certifies a zero: v_i < u_i * tau_i <= 1.
      sampled_out[i] = 1;
      value_out[i] = 0.0;
    } else {
      sampled_out[i] = 0;
      value_out[i] = 0.0;
    }
  }
}

/// OR over r instances sampled by weighted PPS with a uniform threshold
/// tau (so each value-1 entry is sampled with p = min(1, 1/tau)): the
/// general-r OR^(L) through the outcome mapping, using the Theorem 4.2
/// prefix sums.
class OrWeightedUniform {
 public:
  OrWeightedUniform(int r, double tau);

  /// OR^(L) estimate (requires known seeds).
  double EstimateL(const PpsOutcome& outcome) const;
  /// OR^(HT): positive only when every entry is mapped-sampled.
  double EstimateHt(const PpsOutcome& outcome) const;

  /// Row variants: map into caller scratch (length r each), then estimate.
  /// Batched loops keep the scratch across keys, so mapping allocates
  /// nothing.
  double EstimateLRow(const double* tau, const double* seed,
                      const uint8_t* sampled, const double* value,
                      double* p_scratch, uint8_t* sampled_scratch,
                      double* value_scratch) const {
    MapBinaryPpsRowToOblivious(tau, seed, sampled, value, r(), p_scratch,
                               sampled_scratch, value_scratch);
    return or_l_.EstimateRow(sampled_scratch, value_scratch);
  }
  double EstimateHtRow(const double* tau, const double* seed,
                       const uint8_t* sampled, const double* value,
                       double* p_scratch, uint8_t* sampled_scratch,
                       double* value_scratch) const {
    MapBinaryPpsRowToOblivious(tau, seed, sampled, value, r(), p_scratch,
                               sampled_scratch, value_scratch);
    return OrHtEstimateRow(p_scratch, sampled_scratch, value_scratch, r());
  }

  double p() const { return or_l_.p(); }
  int r() const { return or_l_.r(); }

  const OrLUniform& or_l() const { return or_l_; }

 private:
  OrLUniform or_l_;
};

/// Convenience wrapper bundling the three OR estimators for two instances
/// sampled by weighted PPS with known seeds.
class OrWeightedTwo {
 public:
  OrWeightedTwo(double tau1, double tau2);

  /// OR^(HT): positive only when both seeds fall below p_i.
  double EstimateHt(const PpsOutcome& outcome) const;
  /// OR^(L) through the outcome mapping.
  double EstimateL(const PpsOutcome& outcome) const;
  /// OR^(U) through the outcome mapping.
  double EstimateU(const PpsOutcome& outcome) const;

  /// Row variants over length-2 arrays (mapping into stack scratch);
  /// shared arithmetic with the scalar forms above.
  double EstimateHtRow(const double* tau, const double* seed,
                       const uint8_t* sampled, const double* value) const {
    double p[2];
    uint8_t s[2];
    double v[2];
    MapBinaryPpsRowToOblivious(tau, seed, sampled, value, 2, p, s, v);
    return OrHtEstimateRow(p, s, v, 2);
  }
  double EstimateLRow(const double* tau, const double* seed,
                      const uint8_t* sampled, const double* value) const {
    double p[2];
    uint8_t s[2];
    double v[2];
    MapBinaryPpsRowToOblivious(tau, seed, sampled, value, 2, p, s, v);
    return or_l_.EstimateRow(s, v);
  }
  double EstimateURow(const double* tau, const double* seed,
                      const uint8_t* sampled, const double* value) const {
    double p[2];
    uint8_t s[2];
    double v[2];
    MapBinaryPpsRowToOblivious(tau, seed, sampled, value, 2, p, s, v);
    return or_u_.EstimateRow(s, v);
  }

  double p1() const { return p1_; }
  double p2() const { return p2_; }

  const OrLTwo& or_l() const { return or_l_; }
  const OrUTwo& or_u() const { return or_u_; }

 private:
  double p1_, p2_;
  OrLTwo or_l_;
  OrUTwo or_u_;
};

}  // namespace pie
