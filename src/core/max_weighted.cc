#include "core/max_weighted.h"

#include <algorithm>
#include <cmath>

#include "core/fast_log.h"
#include "util/check.h"
#include "util/quadrature.h"

namespace pie {
namespace {

// Lower integration cut for seed integrals: the integrand grows like
// log(1/u)^2 near u = 0, so the truncated mass is O(eps * log^2 eps).
constexpr double kSeedEpsilon = 1e-13;

}  // namespace

MaxLWeightedTwo::MaxLWeightedTwo(double tau1, double tau2, double quad_tol)
    : tau1_(tau1), tau2_(tau2), quad_tol_(quad_tol) {
  PIE_CHECK(tau1 > 0 && std::isfinite(tau1));
  PIE_CHECK(tau2 > 0 && std::isfinite(tau2));
  PIE_CHECK(quad_tol > 0);
}

std::array<double, 2> MaxLWeightedTwo::DeterminingVector(
    const PpsOutcome& outcome) const {
  PIE_CHECK(outcome.r() == 2);
  const bool s1 = outcome.sampled[0];
  const bool s2 = outcome.sampled[1];
  if (!s1 && !s2) return {0.0, 0.0};
  if (s1 && s2) return {outcome.value[0], outcome.value[1]};
  if (s1) {
    const double v1 = outcome.value[0];
    return {v1, std::min(outcome.UpperBound(1), v1)};
  }
  const double v2 = outcome.value[1];
  return {std::min(outcome.UpperBound(0), v2), v2};
}

double MaxLWeightedTwo::EvalSorted(double hi, double lo, double tau_hi,
                                   double tau_lo) {
  PIE_DCHECK(hi >= lo);
  if (hi <= 0) return 0.0;
  if (lo >= tau_lo) {
    // Equation (26): the low entry is sampled with certainty.
    return lo + (hi - lo) / std::fmin(1.0, hi / tau_hi);
  }
  if (hi >= tau_hi) {
    // The high entry is sampled with certainty; Appendix A shows the
    // constant solution max^(L) = hi.
    return hi;
  }
  const double b = tau_hi + tau_lo;
  if (hi <= tau_lo) {
    // Equation (29): hi <= min(tau_hi, tau_lo). Requires lo > 0; lo = 0
    // has probability zero (determining vectors of nonempty outcomes are
    // positive) and yields +infinity.
    return tau_hi * tau_lo / (b - hi) +
           tau_hi * tau_lo * (tau_hi - hi) / (hi * b) *
               PieLog((b - lo) * hi / (lo * (b - hi))) +
           (hi - lo) * tau_hi * tau_lo * (tau_hi - hi) /
               (hi * (b - lo) * (b - hi));
  }
  // Equation (30): lo <= tau_lo <= hi <= tau_hi. The log argument printed
  // in the paper, (b-hi+Delta)tau_hi / (tau_lo (b-hi)), does not satisfy the
  // paper's own boundary conditions (it breaks continuity with equations
  // (26) and (29) and unbiasedness); re-deriving the definite integral
  // int_{hi-tau_lo}^{Delta} dx / ((b-hi+x)^2 (hi-x)) with the substitution
  // in the paper's own footnote gives (b-lo) tau_lo / (lo tau_hi), which
  // restores both. See DESIGN.md (errata).
  return tau_hi + tau_lo - tau_hi * tau_lo / hi +
         tau_hi * tau_lo * (tau_hi - hi) / (hi * b) *
             PieLog((b - lo) * tau_lo / (lo * tau_hi)) +
         tau_lo * (tau_hi - hi) * (tau_lo - lo) / ((b - lo) * hi);
}

double MaxLWeightedTwo::EstimateFromDeterminingVector(double v1,
                                                      double v2) const {
  if (v1 >= v2) return EvalSorted(v1, v2, tau1_, tau2_);
  return EvalSorted(v2, v1, tau2_, tau1_);
}

double MaxLWeightedTwo::Estimate(const PpsOutcome& outcome) const {
  PIE_CHECK(outcome.r() == 2);
  return EstimateRow(outcome.tau.data(), outcome.seed.data(),
                     outcome.sampled.data(), outcome.value.data());
}

double MaxLWeightedTwo::EstimateRow(const double* tau, const double* seed,
                                    const uint8_t* sampled,
                                    const double* value) const {
  const bool s1 = sampled[0] != 0;
  const bool s2 = sampled[1] != 0;
  double d1 = 0.0;
  double d2 = 0.0;
  if (s1 && s2) {
    d1 = value[0];
    d2 = value[1];
  } else if (s1) {
    d1 = value[0];
    d2 = std::min(seed[1] * tau[1], d1);
  } else if (s2) {
    d2 = value[1];
    d1 = std::min(seed[0] * tau[0], d2);
  }
  return EstimateFromDeterminingVector(d1, d2);
}

double MaxLWeightedTwo::Moment(double v1, double v2, bool squared) const {
  const double rho1 = v1 > 0 ? std::fmin(1.0, v1 / tau1_) : 0.0;
  const double rho2 = v2 > 0 ? std::fmin(1.0, v2 / tau2_) : 0.0;
  auto g = [squared](double x) { return squared ? x * x : x; };
  // Scale the absolute quadrature tolerance to the moment's magnitude
  // (E[est] ~ max(v); E[est^2] ~ max(v) * tau), so accuracy is relative and
  // small-value keys do not trigger needlessly deep refinement.
  const double mx = std::fmax(std::fmax(v1, v2), 1e-30);
  const double tol =
      quad_tol_ * (squared ? mx * std::fmax(tau1_, tau2_) : mx);

  double total = 0.0;

  // S = {1,2}: both sampled, determining vector is the data itself.
  if (rho1 > 0 && rho2 > 0) {
    total += rho1 * rho2 * g(EstimateFromDeterminingVector(v1, v2));
  }

  // S = {1}: u2 in (rho2, 1), determining vector (v1, min(u2*tau2, v1)).
  if (rho1 > 0 && rho2 < 1) {
    auto f = [&](double u2) {
      return g(EstimateFromDeterminingVector(v1, std::min(u2 * tau2_, v1)));
    };
    const double lo = std::max(rho2, kSeedEpsilon);
    const double cap = v1 / tau2_;  // beyond this, the bound clips at v1
    double integral = 0.0;
    if (cap > lo && cap < 1.0) {
      integral = AdaptiveSimpson(f, lo, cap, tol) +
                 AdaptiveSimpson(f, cap, 1.0, tol);
    } else {
      integral = AdaptiveSimpson(f, lo, 1.0, tol);
    }
    total += rho1 * integral;
  }

  // S = {2}: u1 in (rho1, 1), determining vector (min(u1*tau1, v2), v2).
  if (rho2 > 0 && rho1 < 1) {
    auto f = [&](double u1) {
      return g(EstimateFromDeterminingVector(std::min(u1 * tau1_, v2), v2));
    };
    const double lo = std::max(rho1, kSeedEpsilon);
    const double cap = v2 / tau1_;
    double integral = 0.0;
    if (cap > lo && cap < 1.0) {
      integral = AdaptiveSimpson(f, lo, cap, tol) +
                 AdaptiveSimpson(f, cap, 1.0, tol);
    } else {
      integral = AdaptiveSimpson(f, lo, 1.0, tol);
    }
    total += rho2 * integral;
  }

  // S = {} contributes 0.
  return total;
}

double MaxLWeightedTwo::Mean(double v1, double v2) const {
  return Moment(v1, v2, /*squared=*/false);
}

double MaxLWeightedTwo::Variance(double v1, double v2) const {
  const double mean = Moment(v1, v2, /*squared=*/false);
  const double second = Moment(v1, v2, /*squared=*/true);
  return std::max(0.0, second - mean * mean);
}

}  // namespace pie
