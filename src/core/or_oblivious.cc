#include "core/or_oblivious.h"

#include <cmath>

#include "core/enumerate.h"
#include "core/functions.h"
#include "util/check.h"

namespace pie {

double OrHtEstimateRow(const double* p, const uint8_t* sampled,
                       const double* value, int r) {
  bool any_one = false;
  for (int i = 0; i < r; ++i) {
    if (!sampled[i]) return 0.0;
    any_one = any_one || value[i] != 0.0;
  }
  if (!any_one) return 0.0;
  double prob = 1.0;
  for (int i = 0; i < r; ++i) prob *= p[i];
  return 1.0 / prob;
}

double OrHtEstimate(const ObliviousOutcome& outcome) {
  return OrHtEstimateRow(outcome.p.data(), outcome.sampled.data(),
                         outcome.value.data(), outcome.r());
}

double OrHtVariance(const std::vector<double>& p) {
  double prob = 1.0;
  for (double pi : p) prob *= pi;
  PIE_CHECK(prob > 0);
  return 1.0 / prob - 1.0;
}

// ---------------------------------------------------------------------------
// OrLTwo
// ---------------------------------------------------------------------------

OrLTwo::OrLTwo(double p1, double p2) : p1_(p1), p2_(p2) {
  PIE_CHECK(p1 > 0 && p1 <= 1 && p2 > 0 && p2 <= 1);
  q_ = p1 + p2 - p1 * p2;
}

double OrLTwo::Estimate(const ObliviousOutcome& outcome) const {
  PIE_CHECK(outcome.r() == 2);
  return EstimateRow(outcome.sampled.data(), outcome.value.data());
}

double OrLTwo::Variance(int v1, int v2) const {
  return ObliviousVariance(
      {static_cast<double>(v1), static_cast<double>(v2)}, {p1_, p2_},
      [this](const ObliviousOutcome& o) { return Estimate(o); });
}

double OrLTwo::VarianceBothOnes() const { return 1.0 / q_ - 1.0; }

double OrLTwo::VarianceOneZero() const {
  // Section 4.3: estimate 0 w.p. 1-p1; 1/q w.p. p1(1-p2); 1/(p1 q) w.p.
  // p1 p2 (data (1,0)).
  const double a = 1.0 / q_;
  const double b = 1.0 / (p1_ * q_);
  const double mean = 1.0;
  return (1.0 - p1_) * mean * mean +
         p1_ * (1.0 - p2_) * (a - mean) * (a - mean) +
         p1_ * p2_ * (b - mean) * (b - mean);
}

// ---------------------------------------------------------------------------
// OrLUniform
// ---------------------------------------------------------------------------

OrLUniform::OrLUniform(int r, double p) : max_l_(r, p) {}

double OrLUniform::EstimateFromCounts(int sampled_ones,
                                      int sampled_zeros) const {
  PIE_CHECK(sampled_ones >= 0 && sampled_zeros >= 0);
  PIE_CHECK(sampled_ones + sampled_zeros <= r());
  if (sampled_ones == 0) return 0.0;
  // Determining vector: unsampled entries and sampled ones hold 1, sampled
  // zeros hold 0; the sorted dot product collapses to the prefix sum
  // A_{r - z}.
  return max_l_.prefix_sums()[static_cast<size_t>(r() - sampled_zeros - 1)];
}

double OrLUniform::EstimateRow(const uint8_t* sampled,
                               const double* value) const {
  int ones = 0;
  int zeros = 0;
  for (int i = 0; i < r(); ++i) {
    if (!sampled[i]) continue;
    PIE_CHECK(value[i] == 0.0 || value[i] == 1.0);
    if (value[i] != 0.0) {
      ++ones;
    } else {
      ++zeros;
    }
  }
  return EstimateFromCounts(ones, zeros);
}

double OrLUniform::Estimate(const ObliviousOutcome& outcome) const {
  PIE_CHECK(outcome.r() == r());
  return EstimateRow(outcome.sampled.data(), outcome.value.data());
}

double OrLUniform::Variance(int ones) const {
  PIE_CHECK(ones >= 0 && ones <= r());
  if (ones == 0) return 0.0;
  const int zeros_total = r() - ones;
  const double p = max_l_.p();
  // Sum over (a sampled ones, b sampled zeros) with binomial weights.
  auto log_binom = [](int n, int k) {
    return std::lgamma(n + 1.0) - std::lgamma(k + 1.0) -
           std::lgamma(n - k + 1.0);
  };
  double mean = 0.0;
  double second = 0.0;
  for (int a = 0; a <= ones; ++a) {
    for (int b = 0; b <= zeros_total; ++b) {
      double log_prob = log_binom(ones, a) + log_binom(zeros_total, b);
      if (a + b > 0) log_prob += (a + b) * std::log(p);
      if (r() - a - b > 0) log_prob += (r() - a - b) * std::log1p(-p);
      const double prob = std::exp(log_prob);
      const double e = EstimateFromCounts(a, b);
      mean += prob * e;
      second += prob * e * e;
    }
  }
  return second - mean * mean;
}

// ---------------------------------------------------------------------------
// OrUTwo
// ---------------------------------------------------------------------------

OrUTwo::OrUTwo(double p1, double p2) : max_u_(p1, p2), p1_(p1), p2_(p2) {}

double OrUTwo::Estimate(const ObliviousOutcome& outcome) const {
  PIE_CHECK(outcome.r() == 2);
  return EstimateRow(outcome.sampled.data(), outcome.value.data());
}

double OrUTwo::Variance(int v1, int v2) const {
  return ObliviousVariance(
      {static_cast<double>(v1), static_cast<double>(v2)}, {p1_, p2_},
      [this](const ObliviousOutcome& o) { return Estimate(o); });
}

}  // namespace pie
