// Pareto-optimal estimator max^(L) for the maximum over nonnegative reals
// under weighted PPS Poisson sampling with known seeds (Section 5.2 and
// Appendix A; r = 2 instances).
//
// The order ≺ ranks vectors by the sorted multiset of gaps max(v) - v_i;
// running Algorithm 1 over it yields a closed form in two steps:
//
//  (1) each outcome S maps to its determining vector phi(S): sampled entries
//      keep their value; an unsampled entry i becomes
//      min(largest sampled value, u_i * tau*_i) -- the seed's upper bound,
//      clipped at the sampled maximum (Figure 3, top table);
//  (2) the estimate is a function of the determining vector alone, given by
//      the four-case formula of Figure 3 (equations (25), (26), (29), (30)).
//
// The estimator is unbiased, nonnegative, monotone, dominates max^(HT)
// (variance ratio at least (1+rho)/rho >= 2 where rho = max(v)/tau*), and is
// *unbounded yet has bounded variance*: as the seed bound on the unseen
// entry tends to 0 the estimate grows like log(1/bound).

#pragma once

#include <array>

#include "sampling/poisson.h"

namespace pie {

/// max^(L) for two instances under PPS thresholds (tau1, tau2), known seeds.
class MaxLWeightedTwo {
 public:
  /// quad_tol controls the adaptive-quadrature tolerance used by Mean() and
  /// Variance() (estimation itself is closed-form and unaffected). Loosen
  /// it for large sweeps such as the Figure 7 reproduction.
  explicit MaxLWeightedTwo(double tau1, double tau2, double quad_tol = 1e-10);

  /// Determining vector phi(S) of an outcome (Figure 3, top table).
  std::array<double, 2> DeterminingVector(const PpsOutcome& outcome) const;

  /// The estimate as a function of the determining vector (Figure 3, bottom
  /// table; symmetric in the two coordinates with their thresholds).
  double EstimateFromDeterminingVector(double v1, double v2) const;

  /// Estimate from an outcome (requires known seeds).
  double Estimate(const PpsOutcome& outcome) const;

  /// Row variant over length-2 arrays; shared by the scalar and batched
  /// paths (determining vector from the row, then the Figure 3 formula).
  double EstimateRow(const double* tau, const double* seed,
                     const uint8_t* sampled, const double* value) const;

  /// E[estimate | data (v1, v2)] by exact case decomposition + adaptive
  /// quadrature over the unsampled entry's seed. Equals max(v1, v2) up to
  /// quadrature error (unbiasedness; verified in tests).
  double Mean(double v1, double v2) const;

  /// Var[estimate | data (v1, v2)], same technique.
  double Variance(double v1, double v2) const;

  double tau1() const { return tau1_; }
  double tau2() const { return tau2_; }

 private:
  /// Estimate for a determining vector sorted as hi >= lo, where hi carries
  /// threshold tau_hi and lo carries tau_lo.
  static double EvalSorted(double hi, double lo, double tau_hi,
                           double tau_lo);

  /// E[g(estimate)] for g(x) = x or x^2 via the outcome-case decomposition.
  double Moment(double v1, double v2, bool squared) const;

  double tau1_, tau2_;
  double quad_tol_;
};

}  // namespace pie
