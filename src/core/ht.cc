#include "core/ht.h"

#include <algorithm>
#include <cmath>

#include "core/functions.h"
#include "util/check.h"

namespace pie {
namespace {

// Shared core of the all-sampled HT row forms: true iff every entry is
// sampled, filling f(v) (via scratch) and the all-sampled probability.
bool ObliviousHtAllSampled(const double* p, const uint8_t* sampled,
                           const double* value, int r,
                           const VectorFunction& f,
                           std::vector<double>* scratch, double* fv_out,
                           double* prob_out) {
  for (int i = 0; i < r; ++i) {
    if (!sampled[i]) return false;
  }
  double prob = 1.0;
  for (int i = 0; i < r; ++i) prob *= p[i];
  PIE_DCHECK(prob > 0);
  scratch->assign(value, value + r);
  *fv_out = f(*scratch);
  *prob_out = prob;
  return true;
}

}  // namespace

double ObliviousHtEstimate(const ObliviousOutcome& outcome,
                           const VectorFunction& f) {
  if (!outcome.AllSampled()) return 0.0;
  double prob = 1.0;
  for (double pi : outcome.p) prob *= pi;
  PIE_DCHECK(prob > 0);
  return f(outcome.value) / prob;
}

double ObliviousHtEstimateRow(const double* p, const uint8_t* sampled,
                              const double* value, int r,
                              const VectorFunction& f,
                              std::vector<double>* scratch) {
  double fv, prob;
  if (!ObliviousHtAllSampled(p, sampled, value, r, f, scratch, &fv, &prob)) {
    return 0.0;
  }
  return fv / prob;
}

double ObliviousHtSecondMomentRow(const double* p, const uint8_t* sampled,
                                  const double* value, int r,
                                  const VectorFunction& f,
                                  std::vector<double>* scratch) {
  double fv, prob;
  if (!ObliviousHtAllSampled(p, sampled, value, r, f, scratch, &fv, &prob)) {
    return 0.0;
  }
  return fv * fv / prob;
}

void ObliviousHtEstimateWithSecondMomentRow(const double* p,
                                            const uint8_t* sampled,
                                            const double* value, int r,
                                            const VectorFunction& f,
                                            std::vector<double>* scratch,
                                            double* est_out,
                                            double* second_out) {
  double fv, prob;
  if (!ObliviousHtAllSampled(p, sampled, value, r, f, scratch, &fv, &prob)) {
    *est_out = 0.0;
    *second_out = 0.0;
    return;
  }
  *est_out = fv / prob;
  *second_out = fv * fv / prob;
}

double ObliviousHtVariance(const std::vector<double>& values,
                           const std::vector<double>& p,
                           const VectorFunction& f) {
  double prob = 1.0;
  for (double pi : p) prob *= pi;
  PIE_DCHECK(prob > 0);
  const double fv = f(values);
  return fv * fv * (1.0 / prob - 1.0);
}

MaxHtWeighted::MaxHtWeighted(std::vector<double> tau) : tau_(std::move(tau)) {
  for (double t : tau_) PIE_CHECK(t > 0 && std::isfinite(t));
}

double MaxHtWeighted::Estimate(const PpsOutcome& outcome) const {
  PIE_CHECK(outcome.r() == static_cast<int>(tau_.size()));
  return EstimateRow(outcome.tau.data(), outcome.seed.data(),
                     outcome.sampled.data(), outcome.value.data());
}

bool MaxHtWeighted::IdentifiedMax(const double* tau, const double* seed,
                                  const uint8_t* sampled, const double* value,
                                  double* max_out, double* prob_out) const {
  const int r = static_cast<int>(tau_.size());
  double max_sampled = 0.0;
  for (int i = 0; i < r; ++i) {
    if (sampled[i]) max_sampled = std::max(max_sampled, value[i]);
  }
  if (max_sampled <= 0) return false;
  // The outcome identifies max(v) iff every unsampled entry is upper-bounded
  // by the largest sampled value (seed bound u_i * tau_i).
  for (int i = 0; i < r; ++i) {
    if (!sampled[i] && seed[i] * tau[i] > max_sampled) {
      return false;
    }
  }
  double prob = 1.0;
  for (double t : tau_) prob *= std::fmin(1.0, max_sampled / t);
  *max_out = max_sampled;
  *prob_out = prob;
  return true;
}

double MaxHtWeighted::EstimateRow(const double* tau, const double* seed,
                                  const uint8_t* sampled,
                                  const double* value) const {
  double mx, prob;
  if (!IdentifiedMax(tau, seed, sampled, value, &mx, &prob)) return 0.0;
  return mx / prob;
}

double MaxHtWeighted::SecondMomentRow(const double* tau, const double* seed,
                                      const uint8_t* sampled,
                                      const double* value) const {
  double mx, prob;
  if (!IdentifiedMax(tau, seed, sampled, value, &mx, &prob)) return 0.0;
  return mx * mx / prob;
}

void MaxHtWeighted::EstimateWithSecondMomentRow(const double* tau,
                                                const double* seed,
                                                const uint8_t* sampled,
                                                const double* value,
                                                double* est_out,
                                                double* second_out) const {
  double mx, prob;
  if (!IdentifiedMax(tau, seed, sampled, value, &mx, &prob)) {
    *est_out = 0.0;
    *second_out = 0.0;
    return;
  }
  *est_out = mx / prob;
  *second_out = mx * mx / prob;
}

double MaxHtWeighted::PositiveProb(const std::vector<double>& values) const {
  PIE_CHECK(values.size() == tau_.size());
  const double mx = MaxOf(values);
  if (mx <= 0) return 0.0;
  double prob = 1.0;
  for (double t : tau_) prob *= std::fmin(1.0, mx / t);
  return prob;
}

double MaxHtWeighted::Variance(const std::vector<double>& values) const {
  const double mx = MaxOf(values);
  if (mx <= 0) return 0.0;
  const double p = PositiveProb(values);
  return mx * mx * (1.0 / p - 1.0);
}

}  // namespace pie
