#include "core/enumerate.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"

namespace pie {
namespace {

// Folds fn over all outcomes: fn(probability, outcome).
void ForEachOutcome(
    const std::vector<double>& values, const std::vector<double>& p,
    const std::function<void(double, const ObliviousOutcome&)>& fn) {
  const int r = static_cast<int>(values.size());
  PIE_CHECK(r >= 1 && r <= 25);
  PIE_CHECK(p.size() == values.size());
  ObliviousOutcome out;
  out.p = p;
  out.sampled.resize(values.size());
  out.value.resize(values.size());
  for (uint32_t mask = 0; mask < (1u << r); ++mask) {
    double prob = 1.0;
    for (int i = 0; i < r; ++i) {
      const bool in = (mask >> i) & 1u;
      out.sampled[i] = in ? 1 : 0;
      out.value[i] = in ? values[i] : 0.0;
      prob *= in ? p[i] : 1.0 - p[i];
    }
    fn(prob, out);
  }
}

}  // namespace

double ObliviousExpectation(const std::vector<double>& values,
                            const std::vector<double>& p,
                            const ObliviousEstimator& est) {
  double sum = 0.0;
  ForEachOutcome(values, p, [&](double prob, const ObliviousOutcome& o) {
    sum += prob * est(o);
  });
  return sum;
}

double ObliviousVariance(const std::vector<double>& values,
                         const std::vector<double>& p,
                         const ObliviousEstimator& est) {
  double sum = 0.0;
  double sum_sq = 0.0;
  ForEachOutcome(values, p, [&](double prob, const ObliviousOutcome& o) {
    const double e = est(o);
    sum += prob * e;
    sum_sq += prob * e * e;
  });
  return sum_sq - sum * sum;
}

double ObliviousMinEstimate(const std::vector<double>& values,
                            const std::vector<double>& p,
                            const ObliviousEstimator& est) {
  double best = std::numeric_limits<double>::infinity();
  ForEachOutcome(values, p, [&](double prob, const ObliviousOutcome& o) {
    if (prob > 0) best = std::min(best, est(o));
  });
  return best;
}

}  // namespace pie
