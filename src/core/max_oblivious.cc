#include "core/max_oblivious.h"

#include <algorithm>
#include <cmath>

#include "core/enumerate.h"
#include "util/check.h"

namespace pie {
namespace {

// Validates the common two-instance setup.
void CheckTwoInstanceProbs(double p1, double p2) {
  PIE_CHECK(p1 > 0 && p1 <= 1);
  PIE_CHECK(p2 > 0 && p2 <= 1);
}

void CheckTwoEntryOutcome(const ObliviousOutcome& outcome) {
  PIE_CHECK(outcome.r() == 2);
}

}  // namespace

Status ValidateProbability(double p) {
  if (!(p > 0.0) || p > 1.0 || !std::isfinite(p)) {
    return Status::InvalidArgument("probability must lie in (0,1]");
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// MaxLTwo
// ---------------------------------------------------------------------------

MaxLTwo::MaxLTwo(double p1, double p2) : p1_(p1), p2_(p2) {
  CheckTwoInstanceProbs(p1, p2);
  q_ = p1_ + p2_ - p1_ * p2_;
}

double MaxLTwo::Estimate(const ObliviousOutcome& outcome) const {
  CheckTwoEntryOutcome(outcome);
  return EstimateRow(outcome.sampled.data(), outcome.value.data());
}

double MaxLTwo::Variance(double v1, double v2) const {
  return ObliviousVariance(
      {v1, v2}, {p1_, p2_},
      [this](const ObliviousOutcome& o) { return Estimate(o); });
}

double MaxLTwo::VarianceClosedForm(double v1, double v2) const {
  const double mx = std::max(v1, v2);
  const double e1 = v1 / q_;
  const double e2 = v2 / q_;
  const double e12 = mx / (p1_ * p2_) -
                     ((1.0 / p2_ - 1.0) * v1 + (1.0 / p1_ - 1.0) * v2) / q_;
  return p1_ * (1.0 - p2_) * e1 * e1 + p2_ * (1.0 - p1_) * e2 * e2 +
         p1_ * p2_ * e12 * e12 - mx * mx;
}

// ---------------------------------------------------------------------------
// MaxLUniform
// ---------------------------------------------------------------------------

MaxLUniform::MaxLUniform(int r, double p) : r_(r), p_(p) {
  PIE_CHECK(r >= 1);
  PIE_CHECK(p > 0 && p <= 1);
  const double q = 1.0 - p;

  // Prefix sums A_h, h = 1..r, via the triangular recursion of
  // Theorem 4.2:
  //   A_r       = 1 / (1 - q^r)
  //   A_{r-k-1} = (A_{r-k} + t_k) / (1 - q^{r-k-1}),  k = 0..r-2, with
  //   t_k = sum_{l=1}^{k} C(k,l) (q/p)^l
  //            (A_{r-k+l} - (1 - q^{r-k-1}) A_{r-k+l-1}).
  prefix_.assign(static_cast<size_t>(r), 0.0);
  auto a = [this](int h) -> double& { return prefix_[static_cast<size_t>(h - 1)]; };

  a(r_) = 1.0 / (1.0 - std::pow(q, r_));
  for (int k = 0; k <= r_ - 2; ++k) {
    const double shrink = 1.0 - std::pow(q, r_ - k - 1);
    double t = 0.0;
    double binom = 1.0;        // C(k, l), updated multiplicatively
    double ratio_pow = 1.0;    // (q/p)^l
    for (int l = 1; l <= k; ++l) {
      binom *= static_cast<double>(k - l + 1) / static_cast<double>(l);
      ratio_pow *= q / p;
      t += binom * ratio_pow * (a(r_ - k + l) - shrink * a(r_ - k + l - 1));
    }
    a(r_ - k - 1) = (a(r_ - k) + t) / shrink;
  }

  alpha_.assign(static_cast<size_t>(r), 0.0);
  alpha_[0] = prefix_[0];
  for (int h = 2; h <= r_; ++h) {
    alpha_[static_cast<size_t>(h - 1)] =
        prefix_[static_cast<size_t>(h - 1)] - prefix_[static_cast<size_t>(h - 2)];
  }
}

double MaxLUniform::EstimateFromSortedDeterminingVector(
    const std::vector<double>& u) const {
  PIE_CHECK(static_cast<int>(u.size()) == r_);
  double est = 0.0;
  for (int i = 0; i < r_; ++i) {
    PIE_DCHECK(i == 0 || u[static_cast<size_t>(i)] <= u[static_cast<size_t>(i - 1)]);
    est += alpha_[static_cast<size_t>(i)] * u[static_cast<size_t>(i)];
  }
  return est;
}

double MaxLUniform::EstimateRow(const uint8_t* sampled, const double* value,
                                std::vector<double>* scratch) const {
  // Algorithm 3 EST: sort sampled values in nonincreasing order; the
  // determining vector replaces every unsampled entry with the largest
  // sampled value, so its sorted form is that value repeated, followed by
  // the remaining sampled values.
  std::vector<double>& z = *scratch;
  z.clear();
  for (int i = 0; i < r_; ++i) {
    if (sampled[i]) z.push_back(value[i]);
  }
  if (z.empty()) return 0.0;
  std::sort(z.begin(), z.end(), std::greater<double>());

  const int missing = r_ - static_cast<int>(z.size());
  double est = 0.0;
  for (int i = 0; i < missing; ++i) {
    est += alpha_[static_cast<size_t>(i)] * z[0];
  }
  for (size_t j = 0; j < z.size(); ++j) {
    est += alpha_[static_cast<size_t>(missing) + j] * z[j];
  }
  return est;
}

double MaxLUniform::Estimate(const ObliviousOutcome& outcome) const {
  PIE_CHECK(outcome.r() == r_);
  std::vector<double> z;
  z.reserve(static_cast<size_t>(r_));
  return EstimateRow(outcome.sampled.data(), outcome.value.data(), &z);
}

double MaxLUniform::Variance(const std::vector<double>& values) const {
  const std::vector<double> p(static_cast<size_t>(r_), p_);
  return ObliviousVariance(values, p, [this](const ObliviousOutcome& o) {
    return Estimate(o);
  });
}

// ---------------------------------------------------------------------------
// MaxUTwo
// ---------------------------------------------------------------------------

MaxUTwo::MaxUTwo(double p1, double p2) : p1_(p1), p2_(p2) {
  CheckTwoInstanceProbs(p1, p2);
  c_ = 1.0 + std::max(0.0, 1.0 - p1 - p2);
}

double MaxUTwo::Estimate(const ObliviousOutcome& outcome) const {
  CheckTwoEntryOutcome(outcome);
  return EstimateRow(outcome.sampled.data(), outcome.value.data());
}

double MaxUTwo::Variance(double v1, double v2) const {
  return ObliviousVariance(
      {v1, v2}, {p1_, p2_},
      [this](const ObliviousOutcome& o) { return Estimate(o); });
}

// ---------------------------------------------------------------------------
// MaxUAsymTwo
// ---------------------------------------------------------------------------

MaxUAsymTwo::MaxUAsymTwo(double p1, double p2) : p1_(p1), p2_(p2) {
  CheckTwoInstanceProbs(p1, p2);
  m_ = std::max(1.0 - p1, p2);
}

double MaxUAsymTwo::Estimate(const ObliviousOutcome& outcome) const {
  CheckTwoEntryOutcome(outcome);
  return EstimateRow(outcome.sampled.data(), outcome.value.data());
}

double MaxUAsymTwo::Variance(double v1, double v2) const {
  return ObliviousVariance(
      {v1, v2}, {p1_, p2_},
      [this](const ObliviousOutcome& o) { return Estimate(o); });
}

}  // namespace pie
