#include "core/max_l_three.h"

#include <algorithm>
#include <cmath>

#include "core/enumerate.h"
#include "util/check.h"

namespace pie {

MaxLThree::MaxLThree(double p1, double p2, double p3) : p_({p1, p2, p3}) {
  for (double p : p_) PIE_CHECK(p > 0 && p <= 1);
  const double q1 = 1 - p1, q2 = 1 - p2, q3 = 1 - p3;
  a3_ = 1.0 / (1.0 - q1 * q2 * q3);
  // a2_pair_[excluded]: A_2 with leading pair = the other two entries.
  a2_pair_[0] = a3_ / (1.0 - q2 * q3);
  a2_pair_[1] = a3_ / (1.0 - q1 * q3);
  a2_pair_[2] = a3_ / (1.0 - q1 * q2);
  // a1_[a] = (A_2 excluding b + A_2 excluding c - A_3) / p_a.
  for (int a = 0; a < 3; ++a) {
    const int b = (a + 1) % 3;
    const int c = (a + 2) % 3;
    a1_[static_cast<size_t>(a)] =
        (a2_pair_[static_cast<size_t>(b)] + a2_pair_[static_cast<size_t>(c)] -
         a3_) /
        p_[static_cast<size_t>(a)];
  }
}

double MaxLThree::A2(int a, int b) const {
  PIE_CHECK(a != b && a >= 0 && a < 3 && b >= 0 && b < 3);
  return a2_pair_[static_cast<size_t>(3 - a - b)];
}

double MaxLThree::EstimateFromDeterminingVector(
    const std::array<double, 3>& phi) const {
  // Sorting permutation: nonincreasing values, stable by index. The
  // Theorem 4.1 symmetry property makes tie-breaking immaterial (verified
  // in tests).
  std::array<int, 3> pi = {0, 1, 2};
  std::stable_sort(pi.begin(), pi.end(), [&phi](int a, int b) {
    return phi[static_cast<size_t>(a)] > phi[static_cast<size_t>(b)];
  });
  const double alpha1 = A1(pi[0]);
  const double alpha2 = A2(pi[0], pi[1]) - A1(pi[0]);
  const double alpha3 = a3_ - A2(pi[0], pi[1]);
  return alpha1 * phi[static_cast<size_t>(pi[0])] +
         alpha2 * phi[static_cast<size_t>(pi[1])] +
         alpha3 * phi[static_cast<size_t>(pi[2])];
}

double MaxLThree::Estimate(const ObliviousOutcome& outcome) const {
  PIE_CHECK(outcome.r() == 3);
  if (outcome.NumSampled() == 0) return 0.0;
  const double mx = outcome.MaxSampledValue();
  std::array<double, 3> phi;
  for (int i = 0; i < 3; ++i) {
    phi[static_cast<size_t>(i)] = outcome.sampled[i] ? outcome.value[i] : mx;
  }
  return EstimateFromDeterminingVector(phi);
}

double MaxLThree::Variance(const std::array<double, 3>& values) const {
  return ObliviousVariance(
      {values[0], values[1], values[2]}, {p_[0], p_[1], p_[2]},
      [this](const ObliviousOutcome& o) { return Estimate(o); });
}

}  // namespace pie
