// Estimators for Boolean OR over weight-oblivious Poisson samples
// (Section 4.3). OR(v) over {0,1}^r is max(v) restricted to the binary
// domain, and the paper shows the specializations of max^(L) and max^(U)
// remain Pareto optimal there. The sum aggregate of OR over keys is the
// distinct-element count (size of the union), so these estimators are the
// per-key building block of Section 8.1.

#pragma once

#include <vector>

#include "core/max_oblivious.h"
#include "sampling/poisson.h"
#include "util/check.h"

namespace pie {

/// OR^(HT): 1/prod(p) when all entries are sampled and at least one is 1;
/// 0 otherwise.
double OrHtEstimate(const ObliviousOutcome& outcome);

/// Row variant of OrHtEstimate over length-r arrays; the scalar form and
/// the engine's batched loops both route through it (bitwise-identical
/// paths by construction).
double OrHtEstimateRow(const double* p, const uint8_t* sampled,
                       const double* value, int r);

/// Variance of OR^(HT) on any data vector with OR(v) = 1 (equation (23)).
double OrHtVariance(const std::vector<double>& p);

/// OR^(L) for two instances, arbitrary (p1, p2): the specialization of
/// max^(L) to {0,1}.
class OrLTwo {
 public:
  OrLTwo(double p1, double p2);

  double Estimate(const ObliviousOutcome& outcome) const;

  /// Row variant; shared by the scalar and batched paths.
  double EstimateRow(const uint8_t* sampled, const double* value) const {
    const bool s1 = sampled[0] != 0;
    const bool s2 = sampled[1] != 0;
    const double v1 = s1 ? value[0] : 0.0;
    const double v2 = s2 ? value[1] : 0.0;
    if (!s1 && !s2) return 0.0;
    if (s1 && !s2) return v1 / q_;
    if (!s1 && s2) return v2 / q_;
    // Both sampled: OR/(p1 p2) - ((1/p2-1)v1 + (1/p1-1)v2)/q.
    const double or_v = (v1 != 0.0 || v2 != 0.0) ? 1.0 : 0.0;
    return or_v / (p1_ * p2_) -
           ((1.0 / p2_ - 1.0) * v1 + (1.0 / p1_ - 1.0) * v2) / q_;
  }

  /// Exact variance on binary data (v1, v2).
  double Variance(int v1, int v2) const;

  /// Closed-form variance on (1,1): 1/(p1+p2-p1p2) - 1 (equation (24)).
  double VarianceBothOnes() const;
  /// Closed-form variance on (1,0) (Section 4.3).
  double VarianceOneZero() const;

  double p1() const { return p1_; }
  double p2() const { return p2_; }
  double q() const { return q_; }

 private:
  double p1_, p2_;
  double q_;  // p1 + p2 - p1*p2
};

/// OR^(L) for r instances with uniform p. The estimate on an outcome with
/// at least one sampled 1 and z sampled 0s is the prefix sum A_{r-z} of the
/// max^(L) coefficients; outcomes with no sampled 1 estimate 0.
class OrLUniform {
 public:
  OrLUniform(int r, double p);

  double Estimate(const ObliviousOutcome& outcome) const;

  /// Row variant; shared by the scalar and batched paths.
  double EstimateRow(const uint8_t* sampled, const double* value) const;

  /// Estimate from sufficient statistics: number of sampled ones/zeros.
  double EstimateFromCounts(int sampled_ones, int sampled_zeros) const;

  /// Exact variance on a binary data vector with `ones` entries equal to 1
  /// (by symmetry only the count matters). Computed by enumeration over
  /// (sampled ones, sampled zeros) counts in O(r^2).
  double Variance(int ones) const;

  int r() const { return max_l_.r(); }
  double p() const { return max_l_.p(); }

 private:
  MaxLUniform max_l_;
};

/// Symmetric OR^(U) for two instances: the specialization of max^(U).
class OrUTwo {
 public:
  OrUTwo(double p1, double p2);

  double Estimate(const ObliviousOutcome& outcome) const;

  /// Row variant; shared by the scalar and batched paths.
  double EstimateRow(const uint8_t* sampled, const double* value) const {
    for (int i = 0; i < 2; ++i) {
      if (sampled[i]) {
        PIE_CHECK(value[i] == 0.0 || value[i] == 1.0);
      }
    }
    return max_u_.EstimateRow(sampled, value);
  }

  /// Exact variance on binary data (v1, v2).
  double Variance(int v1, int v2) const;

  const MaxUTwo& max_u() const { return max_u_; }

 private:
  MaxUTwo max_u_;
  double p1_, p2_;
};

}  // namespace pie
