// Estimators for Boolean OR over weight-oblivious Poisson samples
// (Section 4.3). OR(v) over {0,1}^r is max(v) restricted to the binary
// domain, and the paper shows the specializations of max^(L) and max^(U)
// remain Pareto optimal there. The sum aggregate of OR over keys is the
// distinct-element count (size of the union), so these estimators are the
// per-key building block of Section 8.1.

#pragma once

#include <vector>

#include "core/max_oblivious.h"
#include "sampling/poisson.h"

namespace pie {

/// OR^(HT): 1/prod(p) when all entries are sampled and at least one is 1;
/// 0 otherwise.
double OrHtEstimate(const ObliviousOutcome& outcome);

/// Variance of OR^(HT) on any data vector with OR(v) = 1 (equation (23)).
double OrHtVariance(const std::vector<double>& p);

/// OR^(L) for two instances, arbitrary (p1, p2): the specialization of
/// max^(L) to {0,1}.
class OrLTwo {
 public:
  OrLTwo(double p1, double p2);

  double Estimate(const ObliviousOutcome& outcome) const;

  /// Exact variance on binary data (v1, v2).
  double Variance(int v1, int v2) const;

  /// Closed-form variance on (1,1): 1/(p1+p2-p1p2) - 1 (equation (24)).
  double VarianceBothOnes() const;
  /// Closed-form variance on (1,0) (Section 4.3).
  double VarianceOneZero() const;

 private:
  double p1_, p2_;
  double q_;  // p1 + p2 - p1*p2
};

/// OR^(L) for r instances with uniform p. The estimate on an outcome with
/// at least one sampled 1 and z sampled 0s is the prefix sum A_{r-z} of the
/// max^(L) coefficients; outcomes with no sampled 1 estimate 0.
class OrLUniform {
 public:
  OrLUniform(int r, double p);

  double Estimate(const ObliviousOutcome& outcome) const;

  /// Estimate from sufficient statistics: number of sampled ones/zeros.
  double EstimateFromCounts(int sampled_ones, int sampled_zeros) const;

  /// Exact variance on a binary data vector with `ones` entries equal to 1
  /// (by symmetry only the count matters). Computed by enumeration over
  /// (sampled ones, sampled zeros) counts in O(r^2).
  double Variance(int ones) const;

  int r() const { return max_l_.r(); }
  double p() const { return max_l_.p(); }

 private:
  MaxLUniform max_l_;
};

/// Symmetric OR^(U) for two instances: the specialization of max^(U).
class OrUTwo {
 public:
  OrUTwo(double p1, double p2);

  double Estimate(const ObliviousOutcome& outcome) const;

  /// Exact variance on binary data (v1, v2).
  double Variance(int v1, int v2) const;

 private:
  MaxUTwo max_u_;
  double p1_, p2_;
};

}  // namespace pie
