// Horvitz-Thompson (inverse-probability) estimators (Section 2.2).
//
// Under "all or nothing" information the HT estimator is variance-optimal
// among unbiased nonnegative estimators. For multi-instance functions over
// weight-oblivious Poisson samples the natural HT estimator is positive only
// when *all* r entries are sampled; the paper shows it is Pareto optimal for
// min and for the two-instance range, but suboptimal for max and OR -- which
// is the gap the L/U estimators close.

#pragma once

#include <functional>
#include <vector>

#include "sampling/poisson.h"

namespace pie {

/// f applied to a complete data vector.
using VectorFunction = std::function<double(const std::vector<double>&)>;

/// HT estimate of f(v) from a weight-oblivious outcome: f(values)/prod(p)
/// when every entry is sampled, 0 otherwise.
double ObliviousHtEstimate(const ObliviousOutcome& outcome,
                           const VectorFunction& f);

/// Row variant over length-r arrays: f is applied to `scratch`, refilled
/// from the row (batched loops keep one buffer across keys). Produces the
/// same arithmetic as the scalar form above.
double ObliviousHtEstimateRow(const double* p, const uint8_t* sampled,
                              const double* value, int r,
                              const VectorFunction& f,
                              std::vector<double>* scratch);

/// Closed-form variance f(v)^2 (1/prod(p) - 1) of the all-sampled HT
/// estimator (equation (10) in the paper).
double ObliviousHtVariance(const std::vector<double>& values,
                           const std::vector<double>& p,
                           const VectorFunction& f);

/// Unbiased estimate of f(v)^2 from a weight-oblivious outcome:
/// f(values)^2 / prod(p) when every entry is sampled, 0 otherwise. On the
/// all-sampled event (probability prod(p)) f(v) is known exactly, so the
/// inverse-probability estimate of its square is unbiased for ANY f --
/// this is the second-moment kernel behind the accuracy layer's per-key
/// variance estimates (src/accuracy/).
double ObliviousHtSecondMomentRow(const double* p, const uint8_t* sampled,
                                  const double* value, int r,
                                  const VectorFunction& f,
                                  std::vector<double>* scratch);

/// Fused form of the two rows above: one all-sampled check and one f(v)
/// evaluation produce both the estimate (fv/prob) and the second moment
/// (fv^2/prob). Bitwise identical to calling the two row forms separately
/// -- the same shared core fills fv and prob -- at half the work, for the
/// accuracy layer's single-pass estimate+variance scans.
void ObliviousHtEstimateWithSecondMomentRow(const double* p,
                                            const uint8_t* sampled,
                                            const double* value, int r,
                                            const VectorFunction& f,
                                            std::vector<double>* scratch,
                                            double* est_out,
                                            double* second_out);

/// The optimal inverse-probability estimator for max under weighted PPS
/// sampling with known seeds (Section 5.2, from Cohen-Kaplan-Sen):
/// positive on outcomes where the maximum is identifiable, i.e. every
/// unsampled entry's seed upper bound u_i*tau_i is at most the largest
/// sampled value.
class MaxHtWeighted {
 public:
  /// Thresholds tau*_i > 0 of the per-instance PPS samplers.
  explicit MaxHtWeighted(std::vector<double> tau);

  /// Estimate from an outcome (requires known seeds).
  double Estimate(const PpsOutcome& outcome) const;

  /// Row variant over length-r arrays (tau is the row's threshold slab;
  /// the inclusion probability uses the construction-time thresholds, as
  /// in the scalar path). Shared by the scalar and batched paths.
  double EstimateRow(const double* tau, const double* seed,
                     const uint8_t* sampled, const double* value) const;

  /// Unbiased estimate of max(v)^2: max_sampled^2 / p on the identifiable
  /// event (every unsampled entry's seed bound below the largest sampled
  /// value, where max_sampled = max(v) and p = prod_i min(1, max/tau_i) is
  /// computable), 0 otherwise. Because the identifiable event does not
  /// depend on which estimator is being error-barred, this is the shared
  /// second-moment form for EVERY known-seeds weighted max kernel (HT and
  /// the order-optimal families alike): the accuracy layer only needs
  /// E[returned] = max(v)^2.
  double SecondMomentRow(const double* tau, const double* seed,
                         const uint8_t* sampled, const double* value) const;

  /// Fused EstimateRow + SecondMomentRow: one identifiability check fills
  /// both mx/p and mx^2/p. Bitwise identical to the two separate calls
  /// (the shared IdentifiedMax core produces the same mx and p) at half
  /// the work -- the single-pass estimate+variance slab loops drive this.
  void EstimateWithSecondMomentRow(const double* tau, const double* seed,
                                   const uint8_t* sampled,
                                   const double* value, double* est_out,
                                   double* second_out) const;

  /// Exact variance on a data vector: max^2 (1/p - 1) with
  /// p = prod_i min(1, max/tau_i); 0 for the all-zero vector.
  double Variance(const std::vector<double>& values) const;

  /// P[estimator is positive | values].
  double PositiveProb(const std::vector<double>& values) const;

  const std::vector<double>& tau() const { return tau_; }

 private:
  /// Shared core of Estimate/SecondMomentRow: true iff the outcome
  /// identifies max(v), returning the identified max and the event
  /// probability prod_i min(1, max/tau_i). One copy of the
  /// identifiability logic keeps the estimate/second-moment pair in sync.
  bool IdentifiedMax(const double* tau, const double* seed,
                     const uint8_t* sampled, const double* value,
                     double* max_out, double* prob_out) const;

  std::vector<double> tau_;
};

}  // namespace pie
