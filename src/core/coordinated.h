// Inverse-probability estimators for max and min under SHARED-SEED
// (coordinated) PPS sampling of the instances (Section 7.2).
//
// With one seed u shared across instances, entry i is sampled iff
// u <= v_i / tau_i, so the sampled set is the set of entries above a common
// threshold -- similar instances yield similar samples. Coordination makes
// multi-instance quantities far easier to pin down:
//
//  * max(v) is identified iff u <= max(v)/tau_j for every j (one shared
//    event instead of an intersection of r independent ones), so the
//    positive probability is a MIN of per-entry rates rather than their
//    product;
//  * min(v) is identified iff every entry is sampled, i.e.
//    u <= min_i v_i/tau_i -- again a min instead of a product.
//
// These estimators realize the paper's claim that coordination "can boost
// estimation quality of multi-instance functions"; the companion ablation
// bench (bench/ablation_coordination.cc) also shows the flip side the paper
// notes: on decomposable (per-instance sum) queries coordination is worse
// because per-instance estimates become positively correlated.

#pragma once

#include <vector>

#include "sampling/poisson.h"

namespace pie {

/// max^(HT) for coordinated PPS samples (seed shared across entries).
/// Outcomes must come from a shared-seed sampler: all entries of
/// `outcome.seed` equal.
class MaxHtCoordinated {
 public:
  explicit MaxHtCoordinated(std::vector<double> tau);

  double Estimate(const PpsOutcome& outcome) const;

  /// P[max identified | values] = min(1, min_j max(v)/tau_j).
  double PositiveProb(const std::vector<double>& values) const;

  /// Exact variance max^2 (1/p - 1).
  double Variance(const std::vector<double>& values) const;

 private:
  std::vector<double> tau_;
};

/// min^(HT) for coordinated PPS samples.
class MinHtCoordinated {
 public:
  explicit MinHtCoordinated(std::vector<double> tau);

  double Estimate(const PpsOutcome& outcome) const;

  /// P[all sampled | values] = min(1, min_i v_i/tau_i).
  double PositiveProb(const std::vector<double>& values) const;

  double Variance(const std::vector<double>& values) const;

 private:
  std::vector<double> tau_;
};

/// Draws a shared-seed PPS sample of a data vector (the coordinated
/// counterpart of SamplePps).
PpsOutcome SamplePpsShared(const std::vector<double>& values,
                           const std::vector<double>& tau, Rng& rng);

/// Deterministic variant with an explicit shared seed.
PpsOutcome SamplePpsSharedWithSeed(const std::vector<double>& values,
                                   const std::vector<double>& tau,
                                   double seed);

}  // namespace pie
