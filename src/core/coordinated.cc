#include "core/coordinated.h"

#include <cmath>

#include "core/functions.h"
#include "util/check.h"

namespace pie {
namespace {

void CheckSharedSeed(const PpsOutcome& outcome) {
  for (int i = 1; i < outcome.r(); ++i) {
    PIE_CHECK(outcome.seed[static_cast<size_t>(i)] == outcome.seed[0]);
  }
}

}  // namespace

PpsOutcome SamplePpsSharedWithSeed(const std::vector<double>& values,
                                   const std::vector<double>& tau,
                                   double seed) {
  return SamplePpsWithSeeds(values, tau,
                            std::vector<double>(values.size(), seed));
}

PpsOutcome SamplePpsShared(const std::vector<double>& values,
                           const std::vector<double>& tau, Rng& rng) {
  return SamplePpsSharedWithSeed(values, tau, rng.UniformDouble());
}

// ---------------------------------------------------------------------------
// MaxHtCoordinated
// ---------------------------------------------------------------------------

MaxHtCoordinated::MaxHtCoordinated(std::vector<double> tau)
    : tau_(std::move(tau)) {
  for (double t : tau_) PIE_CHECK(t > 0 && std::isfinite(t));
}

double MaxHtCoordinated::Estimate(const PpsOutcome& outcome) const {
  PIE_CHECK(outcome.r() == static_cast<int>(tau_.size()));
  CheckSharedSeed(outcome);
  const double mx = outcome.MaxSampledValue();
  if (mx <= 0) return 0.0;
  // Identified iff every unsampled entry's bound u*tau_j stays below the
  // sampled maximum.
  for (int i = 0; i < outcome.r(); ++i) {
    if (!outcome.sampled[i] && outcome.UpperBound(i) > mx) return 0.0;
  }
  // On positive outcomes the sampled maximum IS max(v), so the positive
  // probability is computable from the outcome alone.
  double p = 1.0;
  for (double t : tau_) p = std::fmin(p, std::fmin(1.0, mx / t));
  return mx / p;
}

double MaxHtCoordinated::PositiveProb(const std::vector<double>& values) const {
  const double mx = MaxOf(values);
  if (mx <= 0) return 0.0;
  double p = 1.0;
  for (double t : tau_) p = std::fmin(p, std::fmin(1.0, mx / t));
  return p;
}

double MaxHtCoordinated::Variance(const std::vector<double>& values) const {
  const double mx = MaxOf(values);
  if (mx <= 0) return 0.0;
  const double p = PositiveProb(values);
  return mx * mx * (1.0 / p - 1.0);
}

// ---------------------------------------------------------------------------
// MinHtCoordinated
// ---------------------------------------------------------------------------

MinHtCoordinated::MinHtCoordinated(std::vector<double> tau)
    : tau_(std::move(tau)) {
  for (double t : tau_) PIE_CHECK(t > 0 && std::isfinite(t));
}

double MinHtCoordinated::Estimate(const PpsOutcome& outcome) const {
  PIE_CHECK(outcome.r() == static_cast<int>(tau_.size()));
  CheckSharedSeed(outcome);
  double mn = 0.0;
  std::vector<double> values(static_cast<size_t>(outcome.r()));
  for (int i = 0; i < outcome.r(); ++i) {
    if (!outcome.sampled[i]) return 0.0;
    values[static_cast<size_t>(i)] = outcome.value[i];
    mn = i == 0 ? outcome.value[i] : std::fmin(mn, outcome.value[i]);
  }
  return mn / PositiveProb(values);
}

double MinHtCoordinated::PositiveProb(const std::vector<double>& values) const {
  PIE_CHECK(values.size() == tau_.size());
  double p = 1.0;
  for (size_t i = 0; i < values.size(); ++i) {
    p = std::fmin(p, std::fmin(1.0, values[i] / tau_[i]));
  }
  return p;
}

double MinHtCoordinated::Variance(const std::vector<double>& values) const {
  const double mn = MinOf(values);
  if (mn <= 0) return 0.0;
  const double p = PositiveProb(values);
  return mn * mn * (1.0 / p - 1.0);
}

}  // namespace pie
