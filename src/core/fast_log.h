// PIE_FAST_LOG: a vectorizable, libm-free natural log for the log-regime
// lanes of the weighted max^(L) closed forms.
//
// The serving max^(L) path spends ~40% of its cycles in scalar std::log
// (the eq (29)/(30) lanes of MaxLWeightedTwo::EvalSorted; live share via
// pie_simd_log_lanes_total / pie_simd_maxl_rows_total). libm's log cannot
// auto-vectorize -- it is an opaque call with errno/precision contracts --
// so those lanes serialize an otherwise branch-free dense loop.
//
// FastLog below is the classical FDLIBM e_log reduction made branch-free:
// bit-trick range reduction to z in [sqrt(2)/2, sqrt(2)) with an integer
// exponent k, then the FDLIBM minimax polynomial in s = f/(2+f), f = z-1,
// recombined as k*ln2_hi + (...) + k*ln2_lo. Every step is add/sub/mul/div,
// integer bit ops, and bit casts on 64-bit lanes -- no calls, no branches,
// no lookup table -- so GCC auto-vectorizes the compacted log loops in
// engine/registry.cc under the PIE_SIMD flags.
//
// Accuracy and versioning contract:
//  * Valid for positive, finite, NORMAL doubles. The regime log arguments
//    are always >= 1 (both eq (29) and eq (30) arguments are products of
//    ratios >= 1; see tests/fast_log_test.cc), comfortably inside the
//    domain. No Inf/NaN/subnormal handling -- callers own the domain.
//  * Max error vs std::log is bounded by kFastLogMaxUlp ulps, asserted
//    over the regime input ranges by tests/fast_log_test.cc.
//  * The bits legitimately differ from libm, so PIE_FAST_LOG is an
//    explicit estimator-versioning tier (CMake option, default OFF):
//    within the tier results are bitwise deterministic at any thread
//    count, batch shape, and SIMD setting -- the same registry sweeps that
//    pin the default tier run under it, plus a committed golden digest
//    (portable BECAUSE the tier is libm-free: IEEE arithmetic only).
//
// PieLog(x) is the estimator-facing entry point: FastLog under the tier,
// std::log otherwise. Both the scalar EvalSorted path (core/max_weighted.cc)
// and the dense EvalSortedDense path (engine/registry.cc) call it, so
// batched == scalar stays bitwise exact within either tier.

#pragma once

#include <bit>
#include <cmath>
#include <cstdint>

namespace pie {

/// Documented max-ULP bound of FastLog vs std::log over the regime input
/// ranges (asserted by tests/fast_log_test.cc; measured max is lower).
inline constexpr int kFastLogMaxUlp = 4;

/// Branch-free FDLIBM-style natural log. Domain: positive finite normal
/// doubles (the weighted max^(L) regime arguments, which are >= 1).
inline double FastLog(double x) {
  // FDLIBM e_log.c coefficients (Sun Microsystems, freely distributable):
  // ln2 split plus the minimax polynomial for log(1+f) on
  // |f| <= sqrt(2) - 1 in s = f/(2+f).
  constexpr double kLn2Hi = 6.93147180369123816490e-01;  // 0x3FE62E42FEE00000
  constexpr double kLn2Lo = 1.90821492927058770002e-10;  // 0x3DEA39EF35793C76
  constexpr double kLg1 = 6.666666666666735130e-01;
  constexpr double kLg2 = 3.999999999940941908e-01;
  constexpr double kLg3 = 2.857142874366239149e-01;
  constexpr double kLg4 = 2.222219843214978396e-01;
  constexpr double kLg5 = 1.818357216161805012e-01;
  constexpr double kLg6 = 1.531383769920937332e-01;
  constexpr double kLg7 = 1.479819860511658591e-01;

  // Range reduction: x = z * 2^k with z in [sqrt(2)/2, sqrt(2)). Subtract
  // the bit pattern of sqrt(2)/2 so the exponent field of `adj` is exactly
  // the biased k; peeling it off `bits` rescales x to z in one integer
  // subtract (the borrow into the mantissa never happens because both
  // share mantissa bits above the cut).
  const uint64_t bits = std::bit_cast<uint64_t>(x);
  const uint64_t adj = bits - 0x3fe6a09e00000000ULL;
  const uint64_t k_mod = adj >> 52;  // k mod 4096 (two's complement field)
  const double z =
      std::bit_cast<double>(bits - (adj & 0xfff0000000000000ULL));
  // Exponent to double without an int64->double convert (no such AVX2
  // instruction, which would block vectorization): re-bias the 12-bit
  // field into the low mantissa of 2^52 and subtract the offset.
  const double k =
      std::bit_cast<double>((k_mod ^ 0x800ULL) | 0x4330000000000000ULL) -
      (0x1p52 + 2048.0);

  const double f = z - 1.0;
  const double s = f / (2.0 + f);
  const double z2 = s * s;
  const double w = z2 * z2;
  const double t1 = w * (kLg2 + w * (kLg4 + w * kLg6));
  const double t2 = z2 * (kLg1 + w * (kLg3 + w * (kLg5 + w * kLg7)));
  const double r = t2 + t1;
  const double hfsq = 0.5 * f * f;
  return k * kLn2Hi - ((hfsq - (s * (hfsq + r) + k * kLn2Lo)) - f);
}

/// The estimator-facing log: the PIE_FAST_LOG tier's FastLog, or scalar
/// libm std::log in the default tier. Used by BOTH the scalar
/// MaxLWeightedTwo::EvalSorted and the dense EvalSortedDense lanes so the
/// batched/scalar bitwise contract holds within each tier.
inline double PieLog(double x) {
#ifdef PIE_FAST_LOG
  return FastLog(x);
#else
  return std::log(x);
#endif
}

}  // namespace pie
