// The multi-instance query primitives of Section 2: functions
// f(v_1, ..., v_r) over the values a single key assumes across r dispersed
// instances.

#pragma once

#include <vector>

namespace pie {

/// max_i v_i; 0 for an empty vector.
double MaxOf(const std::vector<double>& v);

/// min_i v_i; 0 for an empty vector.
double MinOf(const std::vector<double>& v);

/// Range RG(v) = max(v) - min(v).
double RangeOf(const std::vector<double>& v);

/// Exponentiated range RG^d(v) = (max(v) - min(v))^d, d > 0.
double RangePowOf(const std::vector<double>& v, double d);

/// Boolean OR: 1 if any entry is nonzero, else 0. Intended for 0/1 vectors.
double OrOf(const std::vector<double>& v);

/// l-th largest entry, 1-based (l = 1 is the maximum, l = r the minimum).
double LthOf(std::vector<double> v, int l);

}  // namespace pie
