// Pareto-optimal estimators for max(v) under weight-oblivious Poisson
// sampling (Section 4 of the paper).
//
// Two incomparable Pareto-optimal estimators are derived in the paper:
//
//  * max^(L) (Section 4.1) prioritizes *dense* data vectors -- the order ≺
//    ranks vectors by the number of entries strictly below the maximum.
//    It has lowest variance when the values of a key are similar across
//    instances ("no change" workloads).
//  * max^(U) (Section 4.2) prioritizes *sparse* vectors -- the ordered
//    partition ranks vectors by the number of positive entries. It has
//    lowest variance when only one instance has a positive value.
//
// Both dominate the Horvitz-Thompson estimator max^(HT). For r = 2 the
// paper gives closed forms for arbitrary (p_1, p_2) (MaxLTwo, MaxUTwo, and
// the asymmetric Pareto-optimal variant MaxUAsymTwo); for general r with
// uniform p, Theorem 4.2 / Algorithm 3 give an O(r^2) coefficient recursion
// (MaxLUniform).

#pragma once

#include <algorithm>
#include <vector>

#include "sampling/poisson.h"
#include "util/status.h"

namespace pie {

/// max^(L) for two instances, arbitrary inclusion probabilities
/// (Section 4.1, "Maximum over two instances"; equation (12)).
class MaxLTwo {
 public:
  MaxLTwo(double p1, double p2);

  /// Estimate from a two-entry weight-oblivious outcome.
  double Estimate(const ObliviousOutcome& outcome) const;

  /// Estimate from one columnar row (length-2 sampled/value arrays). The
  /// scalar Estimate and the engine's batched EstimateMany both route
  /// through this, so the two paths are bitwise-identical by construction.
  double EstimateRow(const uint8_t* sampled, const double* value) const {
    const bool s1 = sampled[0] != 0;
    const bool s2 = sampled[1] != 0;
    if (!s1 && !s2) return 0.0;
    if (s1 && !s2) return value[0] / q_;
    if (!s1 && s2) return value[1] / q_;
    const double v1 = value[0];
    const double v2 = value[1];
    return std::max(v1, v2) / (p1_ * p2_) -
           ((1.0 / p2_ - 1.0) * v1 + (1.0 / p1_ - 1.0) * v2) / q_;
  }

  /// Exact variance on data (v1, v2), by outcome enumeration.
  double Variance(double v1, double v2) const;

  /// The same variance in closed form: summing the four-outcome table
  /// directly, Var = p1(1-p2)(v1/q)^2 + p2(1-p1)(v2/q)^2 + p1 p2 e12^2
  /// - max^2 with e12 the both-sampled estimate. Cross-checked against
  /// Variance() in tests.
  double VarianceClosedForm(double v1, double v2) const;

  double p1() const { return p1_; }
  double p2() const { return p2_; }
  double q() const { return q_; }

 private:
  double p1_, p2_;
  double q_;  // p1 + p2 - p1*p2 = P[at least one entry sampled]
};

/// max^(L) for r >= 1 instances with uniform inclusion probability p
/// (Theorem 4.2 and Algorithm 3). The estimate is a fixed linear
/// combination sum_i alpha_i u_i of the sorted determining vector u
/// (unsampled entries replaced by the largest sampled value).
class MaxLUniform {
 public:
  /// Precomputes the coefficients alpha_1..alpha_r in O(r^2).
  MaxLUniform(int r, double p);

  /// Estimate from an r-entry outcome.
  double Estimate(const ObliviousOutcome& outcome) const;

  /// Row variant sharing arithmetic with Estimate; `scratch` holds the
  /// sorted sampled values (batched loops keep one buffer across keys, so
  /// the scan allocates nothing in steady state).
  double EstimateRow(const uint8_t* sampled, const double* value,
                     std::vector<double>* scratch) const;

  /// Estimate given the determining vector sorted in nonincreasing order.
  double EstimateFromSortedDeterminingVector(
      const std::vector<double>& u) const;

  /// Exact variance on a data vector (enumeration; r <= 25).
  double Variance(const std::vector<double>& values) const;

  /// Coefficients alpha_1..alpha_r (alpha_i multiplies the i-th largest
  /// determining-vector entry). Lemma 4.2: alpha_1 > 0, alpha_i < 0 for
  /// i > 1, and alpha_1 <= p^-r establish monotonicity/nonnegativity/
  /// dominance.
  const std::vector<double>& alpha() const { return alpha_; }

  /// Prefix sums A_h = sum_{i<=h} alpha_i (equation (14)); the OR^(L)
  /// estimate on an outcome with at least one sampled 1 and z sampled 0s is
  /// exactly A_{r-z}.
  const std::vector<double>& prefix_sums() const { return prefix_; }

  int r() const { return r_; }
  double p() const { return p_; }

 private:
  int r_;
  double p_;
  std::vector<double> prefix_;  // prefix_[h-1] = A_h
  std::vector<double> alpha_;   // alpha_[i-1] = alpha_i
};

/// Symmetric max^(U) for two instances (Section 4.2).
class MaxUTwo {
 public:
  MaxUTwo(double p1, double p2);

  double Estimate(const ObliviousOutcome& outcome) const;

  /// Row variant; shared by the scalar and batched paths (see MaxLTwo).
  double EstimateRow(const uint8_t* sampled, const double* value) const {
    const bool s1 = sampled[0] != 0;
    const bool s2 = sampled[1] != 0;
    if (!s1 && !s2) return 0.0;
    if (s1 && !s2) return value[0] / (p1_ * c_);
    if (!s1 && s2) return value[1] / (p2_ * c_);
    const double v1 = value[0];
    const double v2 = value[1];
    return (std::max(v1, v2) -
            (v1 * (1.0 - p2_) + v2 * (1.0 - p1_)) / c_) /
           (p1_ * p2_);
  }

  /// Exact variance on data (v1, v2).
  double Variance(double v1, double v2) const;

  double p1() const { return p1_; }
  double p2() const { return p2_; }
  double c() const { return c_; }

 private:
  double p1_, p2_;
  double c_;  // 1 + max(0, 1 - p1 - p2)
};

/// The asymmetric Pareto-optimal variant max^(Uas) (Section 4.2) obtained by
/// processing vectors (v,0) before (0,v); it has strictly lower variance
/// than MaxUTwo on (v, 0) at the cost of (0, v).
class MaxUAsymTwo {
 public:
  MaxUAsymTwo(double p1, double p2);

  double Estimate(const ObliviousOutcome& outcome) const;

  /// Row variant; shared by the scalar and batched paths (see MaxLTwo).
  double EstimateRow(const uint8_t* sampled, const double* value) const {
    const bool s1 = sampled[0] != 0;
    const bool s2 = sampled[1] != 0;
    if (!s1 && !s2) return 0.0;
    if (s1 && !s2) return value[0] / p1_;
    if (!s1 && s2) return value[1] / m_;
    const double v1 = value[0];
    const double v2 = value[1];
    return (std::max(v1, v2) - p2_ * (1.0 - p1_) / m_ * v2 -
            (1.0 - p2_) * v1) /
           (p1_ * p2_);
  }

  /// Exact variance on data (v1, v2).
  double Variance(double v1, double v2) const;

  double p1() const { return p1_; }
  double p2() const { return p2_; }
  double m() const { return m_; }

 private:
  double p1_, p2_;
  double m_;  // max(1 - p1, p2)
};

/// Validates an inclusion probability in (0, 1].
Status ValidateProbability(double p);

}  // namespace pie
