// Exact expectation/variance of estimators over weight-oblivious Poisson
// outcomes by enumerating all 2^r sampled subsets.
//
// The estimate on an outcome depends only on which entries are sampled (the
// data vector is fixed), so the expectation is a finite sum over subsets
// weighted by prod p_i^{s_i} (1-p_i)^{1-s_i}. Used by tests (exact
// unbiasedness) and by the variance reports behind Figures 1 and 2.

#pragma once

#include <functional>
#include <vector>

#include "sampling/poisson.h"

namespace pie {

/// An estimator evaluated on a weight-oblivious outcome.
using ObliviousEstimator = std::function<double(const ObliviousOutcome&)>;

/// Exact E[est | values] over the 2^r outcomes. r <= 25 enforced.
double ObliviousExpectation(const std::vector<double>& values,
                            const std::vector<double>& p,
                            const ObliviousEstimator& est);

/// Exact Var[est | values] = E[est^2] - E[est]^2.
double ObliviousVariance(const std::vector<double>& values,
                         const std::vector<double>& p,
                         const ObliviousEstimator& est);

/// Exact min over outcomes with positive probability (used to certify
/// nonnegativity on a data vector).
double ObliviousMinEstimate(const std::vector<double>& values,
                            const std::vector<double>& p,
                            const ObliviousEstimator& est);

}  // namespace pie
