#include "core/min_weighted.h"

#include <cmath>

#include "core/functions.h"
#include "util/check.h"

namespace pie {

MinHtWeighted::MinHtWeighted(std::vector<double> tau) : tau_(std::move(tau)) {
  for (double t : tau_) PIE_CHECK(t > 0 && std::isfinite(t));
}

double MinHtWeighted::Estimate(const PpsOutcome& outcome) const {
  PIE_CHECK(outcome.r() == static_cast<int>(tau_.size()));
  return EstimateRow(outcome.sampled.data(), outcome.value.data());
}

bool MinHtWeighted::AllSampledMin(const uint8_t* sampled, const double* value,
                                  double* min_out, double* prob_out) const {
  const int r = static_cast<int>(tau_.size());
  double mn = 0.0;
  double prob = 1.0;
  for (int i = 0; i < r; ++i) {
    if (!sampled[i]) return false;
    const double v = value[i];
    mn = i == 0 ? v : std::fmin(mn, v);
    prob *= std::fmin(1.0, v / tau_[static_cast<size_t>(i)]);
  }
  *min_out = mn;
  *prob_out = prob;
  return true;
}

double MinHtWeighted::EstimateRow(const uint8_t* sampled,
                                  const double* value) const {
  double mn, prob;
  if (!AllSampledMin(sampled, value, &mn, &prob)) return 0.0;
  return mn / prob;
}

double MinHtWeighted::SecondMomentRow(const uint8_t* sampled,
                                      const double* value) const {
  double mn, prob;
  if (!AllSampledMin(sampled, value, &mn, &prob)) return 0.0;
  return mn * mn / prob;
}

void MinHtWeighted::EstimateWithSecondMomentRow(const uint8_t* sampled,
                                                const double* value,
                                                double* est_out,
                                                double* second_out) const {
  double mn, prob;
  if (!AllSampledMin(sampled, value, &mn, &prob)) {
    *est_out = 0.0;
    *second_out = 0.0;
    return;
  }
  *est_out = mn / prob;
  *second_out = mn * mn / prob;
}

double MinHtWeighted::MaxMinProductRow(const uint8_t* sampled,
                                       const double* value) const {
  double mn, prob;
  if (!AllSampledMin(sampled, value, &mn, &prob)) return 0.0;
  const int r = static_cast<int>(tau_.size());
  double mx = value[0];
  for (int i = 1; i < r; ++i) mx = std::fmax(mx, value[i]);
  return mx * mn / prob;
}

double MinHtWeighted::PositiveProb(const std::vector<double>& values) const {
  PIE_CHECK(values.size() == tau_.size());
  double prob = 1.0;
  for (size_t i = 0; i < values.size(); ++i) {
    prob *= std::fmin(1.0, values[i] / tau_[i]);  // 0 when values[i] == 0
  }
  return prob;
}

double MinHtWeighted::Variance(const std::vector<double>& values) const {
  const double mn = MinOf(values);
  if (mn <= 0) return 0.0;
  const double p = PositiveProb(values);
  return mn * mn * (1.0 / p - 1.0);
}

}  // namespace pie
