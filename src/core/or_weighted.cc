#include "core/or_weighted.h"

#include <cmath>

#include "util/check.h"

namespace pie {

std::vector<double> BinaryPpsInclusionProbs(const std::vector<double>& tau) {
  std::vector<double> p(tau.size());
  for (size_t i = 0; i < tau.size(); ++i) {
    PIE_CHECK(tau[i] > 0);
    p[i] = std::fmin(1.0, 1.0 / tau[i]);
  }
  return p;
}

ObliviousOutcome MapBinaryPpsToOblivious(const PpsOutcome& outcome) {
  ObliviousOutcome out;
  out.p.resize(outcome.tau.size());
  out.sampled.resize(outcome.tau.size());
  out.value.resize(outcome.tau.size());
  MapBinaryPpsRowToOblivious(outcome.tau.data(), outcome.seed.data(),
                             outcome.sampled.data(), outcome.value.data(),
                             outcome.r(), out.p.data(), out.sampled.data(),
                             out.value.data());
  return out;
}

OrWeightedUniform::OrWeightedUniform(int r, double tau)
    : or_l_(r, std::fmin(1.0, 1.0 / tau)) {
  PIE_CHECK(tau > 0);
}

double OrWeightedUniform::EstimateL(const PpsOutcome& outcome) const {
  return or_l_.Estimate(MapBinaryPpsToOblivious(outcome));
}

double OrWeightedUniform::EstimateHt(const PpsOutcome& outcome) const {
  return OrHtEstimate(MapBinaryPpsToOblivious(outcome));
}

OrWeightedTwo::OrWeightedTwo(double tau1, double tau2)
    : p1_(std::fmin(1.0, 1.0 / tau1)),
      p2_(std::fmin(1.0, 1.0 / tau2)),
      or_l_(p1_, p2_),
      or_u_(p1_, p2_) {
  PIE_CHECK(tau1 > 0 && tau2 > 0);
}

double OrWeightedTwo::EstimateHt(const PpsOutcome& outcome) const {
  return OrHtEstimate(MapBinaryPpsToOblivious(outcome));
}

double OrWeightedTwo::EstimateL(const PpsOutcome& outcome) const {
  return or_l_.Estimate(MapBinaryPpsToOblivious(outcome));
}

double OrWeightedTwo::EstimateU(const PpsOutcome& outcome) const {
  return or_u_.Estimate(MapBinaryPpsToOblivious(outcome));
}

}  // namespace pie
