// Zipf-distributed values: the standard heavy-tailed model for per-key
// request/flow counts (used to synthesize the paper's IP-traffic workload).

#pragma once

#include <vector>

#include "util/random.h"

namespace pie {

/// Zipf law over ranks 1..n with exponent s: P(rank = k) proportional to
/// k^-s. Sampling is by inverse CDF on a precomputed table (O(log n) per
/// draw).
class ZipfGenerator {
 public:
  ZipfGenerator(int n, double s);

  /// Draws a rank in [1, n].
  int SampleRank(Rng& rng) const;

  /// Deterministic value of a rank: scale / rank^s.
  double ValueOfRank(int rank, double scale = 1.0) const;

  int n() const { return n_; }
  double s() const { return s_; }

 private:
  int n_;
  double s_;
  std::vector<double> cdf_;
};

}  // namespace pie
