#include "workload/zipf.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace pie {

ZipfGenerator::ZipfGenerator(int n, double s) : n_(n), s_(s) {
  PIE_CHECK(n >= 1);
  PIE_CHECK(s >= 0);
  cdf_.resize(static_cast<size_t>(n));
  double acc = 0.0;
  for (int k = 1; k <= n; ++k) {
    acc += std::pow(static_cast<double>(k), -s);
    cdf_[static_cast<size_t>(k - 1)] = acc;
  }
  for (double& c : cdf_) c /= acc;
}

int ZipfGenerator::SampleRank(Rng& rng) const {
  const double u = rng.UniformDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<int>(it - cdf_.begin()) + 1;
}

double ZipfGenerator::ValueOfRank(int rank, double scale) const {
  PIE_CHECK(rank >= 1 && rank <= n_);
  return scale * std::pow(static_cast<double>(rank), -s_);
}

}  // namespace pie
