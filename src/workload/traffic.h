// Synthetic two-hour IP traffic workload (substitution for the paper's
// proprietary AT&T hourly flow summaries; see DESIGN.md).
//
// The Figure 7 experiment needs, per destination IP, the number of active
// flows in each of two consecutive hours. The estimator comparison depends
// only on (a) the heavy-tailed marginal value distribution relative to the
// sampling threshold, (b) the per-key correlation between the two hours
// (min/max ratio), and (c) the key-overlap structure. The generator
// reproduces the paper's reported aggregate statistics:
//   ~2.45e4 distinct destinations per hour, ~3.8e4 over both hours,
//   ~5.5e5 flows per hour, sum of per-key maxima ~7.47e5.

#pragma once

#include <cstdint>

#include "aggregate/dataset.h"
#include "util/random.h"

namespace pie {

struct TrafficParams {
  int keys_per_instance = 24500;  ///< distinct destinations in each hour
  int distinct_total = 38000;     ///< distinct destinations over both hours
  double flows_per_instance = 5.5e5;  ///< total flows in each hour
  double zipf_exponent = 1.05;    ///< heavy tail of per-key flow counts
  double churn_sigma = 0.45;      ///< lognormal hour-to-hour jitter
  /// Ephemeral (single-hour) destinations carry smaller flows than
  /// persistent ones; this scales their base rates. Calibrated so the sum
  /// of per-key maxima lands near the paper's 7.47e5 at the default sizes.
  double churn_value_scale = 0.28;
  uint64_t seed = 20110906;       ///< generator seed (arXiv date of paper)
};

/// Generates a two-instance data set with the statistics above. Values are
/// positive integers (flow counts).
MultiInstanceData GenerateTraffic(const TrafficParams& params);

}  // namespace pie
