#include "workload/traffic.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/check.h"
#include "workload/zipf.h"

namespace pie {
namespace {

// Standard normal via Box-Muller (one value per call; simple and adequate).
double StandardNormal(Rng& rng) {
  const double u1 = std::max(rng.UniformDouble(), 1e-300);
  const double u2 = rng.UniformDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

// Scales raw positive values so they sum to about `target` and rounds up to
// integers >= 1.
void NormalizeToTotal(std::vector<double>& values, double target) {
  double sum = 0.0;
  for (double v : values) sum += v;
  PIE_CHECK(sum > 0);
  const double scale = target / sum;
  for (double& v : values) v = std::max(1.0, std::round(v * scale));
}

}  // namespace

MultiInstanceData GenerateTraffic(const TrafficParams& params) {
  PIE_CHECK(params.keys_per_instance > 0);
  PIE_CHECK(params.distinct_total >= params.keys_per_instance);
  PIE_CHECK(params.distinct_total <= 2 * params.keys_per_instance);

  const int n = params.keys_per_instance;
  const int overlap = 2 * n - params.distinct_total;  // keys active both hours
  const int only_each = n - overlap;                  // churn keys per hour

  Rng rng(params.seed);
  ZipfGenerator zipf(n, params.zipf_exponent);

  // Base rates: a Zipf value per key, shuffled so that key id carries no
  // rank information.
  auto draw_base = [&](int count) {
    std::vector<double> base(static_cast<size_t>(count));
    for (double& b : base) {
      b = zipf.ValueOfRank(static_cast<int>(rng.UniformInt(
                               static_cast<uint64_t>(zipf.n()))) +
                               1,
                           1e4);
    }
    return base;
  };

  // Overlapping keys: hour-2 value is the hour-1 rate with lognormal jitter
  // (multiplicative churn), preserving heavy tails and realistic min/max
  // ratios.
  std::vector<double> v1(static_cast<size_t>(n));
  std::vector<double> v2(static_cast<size_t>(n));
  {
    const std::vector<double> base = draw_base(overlap);
    for (int i = 0; i < overlap; ++i) {
      const double jitter =
          std::exp(params.churn_sigma * StandardNormal(rng));
      v1[static_cast<size_t>(i)] = base[static_cast<size_t>(i)];
      v2[static_cast<size_t>(i)] = base[static_cast<size_t>(i)] * jitter;
    }
    const std::vector<double> churn1 = draw_base(only_each);
    const std::vector<double> churn2 = draw_base(only_each);
    for (int i = 0; i < only_each; ++i) {
      v1[static_cast<size_t>(overlap + i)] =
          churn1[static_cast<size_t>(i)] * params.churn_value_scale;
      v2[static_cast<size_t>(overlap + i)] = 0.0;  // placeholder; see below
    }
    // Hour-2 churn keys occupy fresh key ids appended after hour-1 keys.
    v2.resize(static_cast<size_t>(n + only_each), 0.0);
    v1.resize(static_cast<size_t>(n + only_each), 0.0);
    for (int i = 0; i < only_each; ++i) {
      v2[static_cast<size_t>(n + i)] =
          churn2[static_cast<size_t>(i)] * params.churn_value_scale;
    }
  }

  // Normalize each hour's positive values to the target flow total.
  {
    std::vector<double> hour1;
    std::vector<double> hour2;
    for (double v : v1) {
      if (v > 0) hour1.push_back(v);
    }
    for (double v : v2) {
      if (v > 0) hour2.push_back(v);
    }
    NormalizeToTotal(hour1, params.flows_per_instance);
    NormalizeToTotal(hour2, params.flows_per_instance);
    size_t j = 0;
    for (double& v : v1) {
      if (v > 0) v = hour1[j++];
    }
    j = 0;
    for (double& v : v2) {
      if (v > 0) v = hour2[j++];
    }
  }

  MultiInstanceData data(2);
  for (size_t key = 0; key < v1.size(); ++key) {
    if (v1[key] > 0) data.Set(static_cast<uint64_t>(key + 1), 0, v1[key]);
    if (v2[key] > 0) data.Set(static_cast<uint64_t>(key + 1), 1, v2[key]);
  }
  return data;
}

}  // namespace pie
