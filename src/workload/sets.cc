#include "workload/sets.h"

#include <cmath>

#include "util/check.h"

namespace pie {

SetPair MakeJaccardSetPair(int n, double jaccard, uint64_t first_key) {
  PIE_CHECK(n > 0);
  PIE_CHECK(jaccard >= 0 && jaccard <= 1);
  const int64_t inter =
      static_cast<int64_t>(std::llround(2.0 * n * jaccard / (1.0 + jaccard)));
  PIE_CHECK(inter >= 0 && inter <= n);

  SetPair out;
  out.intersection = inter;
  out.union_size = 2 * static_cast<int64_t>(n) - inter;
  out.jaccard = static_cast<double>(inter) / static_cast<double>(out.union_size);

  // Keys: [first, first+inter) shared; then n-inter unique to each set.
  uint64_t next = first_key;
  for (int64_t i = 0; i < inter; ++i) {
    out.n1.push_back(next);
    out.n2.push_back(next);
    ++next;
  }
  for (int64_t i = 0; i < n - inter; ++i) {
    out.n1.push_back(next++);
  }
  for (int64_t i = 0; i < n - inter; ++i) {
    out.n2.push_back(next++);
  }
  return out;
}

}  // namespace pie
