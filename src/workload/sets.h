// Binary set-pair workloads with a controlled Jaccard coefficient, for the
// distinct-count experiments (Sections 8.1 and Figure 6).

#pragma once

#include <cstdint>
#include <vector>

namespace pie {

/// Two key sets with |N1| = |N2| = n and Jaccard coefficient as close to
/// `jaccard` as integrality permits.
struct SetPair {
  std::vector<uint64_t> n1;
  std::vector<uint64_t> n2;
  int64_t intersection = 0;
  int64_t union_size = 0;
  double jaccard = 0.0;  ///< realized coefficient
};

/// Builds the pair on consecutive key ids starting at `first_key`.
/// intersection = round(2 n J / (1 + J)).
SetPair MakeJaccardSetPair(int n, double jaccard, uint64_t first_key = 1);

}  // namespace pie
