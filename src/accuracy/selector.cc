#include "accuracy/selector.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/metrics.h"
#include "util/check.h"

namespace pie {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

EstimatorSelector::EstimatorSelector(const KernelRegistry* registry)
    : registry_(registry != nullptr ? registry : &KernelRegistry::Global()) {}

std::vector<std::vector<double>> EstimatorSelector::DefaultProfiles(
    Function function, Scheme scheme, const SamplingParams& params) {
  const int r = params.r();
  PIE_CHECK(r >= 1);
  std::vector<std::vector<double>> profiles;
  if (function == Function::kOr) {
    // Binary domain: the dense ("no change") and sparse ("change") extremes
    // of Figure 2, which is exactly where the L and U families trade off.
    profiles.emplace_back(static_cast<size_t>(r), 1.0);
    std::vector<double> one_hot(static_cast<size_t>(r), 0.0);
    one_hot[0] = 1.0;
    profiles.push_back(std::move(one_hot));
    return profiles;
  }
  // Real-valued domain: dense, geometrically skewed, and one-hot vectors.
  // Oblivious estimators are scale-free, so the unit scale is fine there;
  // PPS profiles sit below the smallest threshold (rho < 1), the regime
  // where the families actually differ (above every threshold the key is
  // sampled with certainty).
  double scale = 1.0;
  if (scheme == Scheme::kPps) {
    scale = *std::min_element(params.per_entry.begin(),
                              params.per_entry.end());
    PIE_CHECK(scale > 0);
    scale *= 0.8;
  }
  profiles.emplace_back(static_cast<size_t>(r), scale);
  std::vector<double> skewed(static_cast<size_t>(r));
  for (int i = 0; i < r; ++i) {
    skewed[static_cast<size_t>(i)] = scale * std::ldexp(1.0, -i);
  }
  profiles.push_back(std::move(skewed));
  std::vector<double> one_hot(static_cast<size_t>(r), 0.0);
  one_hot[0] = scale;
  profiles.push_back(std::move(one_hot));
  return profiles;
}

Result<SelectionReport> EstimatorSelector::Select(
    Function function, Scheme scheme, Regime regime,
    const SamplingParams& params, const Options& options) const {
  const std::vector<std::vector<double>>& profiles =
      options.profiles.empty() ? DefaultProfiles(function, scheme, params)
                               : options.profiles;

  SelectionReport report;
  for (const KernelEntry& entry : registry_->Entries()) {
    if (entry.spec.function != function || entry.spec.scheme != scheme) {
      continue;
    }
    // A family is a candidate when the requested regime resolves to this
    // registration (oblivious regime aliases; a PPS known-seeds request is
    // servable by an unknown-seeds estimator, not vice versa).
    KernelSpec lookup = entry.spec;
    lookup.regime = regime;
    if (!(registry_->CanonicalSpec(lookup) == entry.spec)) continue;

    FamilyScore score;
    score.spec = entry.spec;
    score.variance_score = kInf;
    auto kernel = entry.factory(entry.spec, params);
    if (!kernel.ok()) {
      score.kernel_name = kernel.status().ToString();
      report.ranking.push_back(std::move(score));
      continue;
    }
    score.kernel_name = (*kernel)->name();
    double total = 0.0;
    bool scored = true;
    for (const auto& profile : profiles) {
      auto variance = (*kernel)->Variance(profile);
      if (!variance.ok()) {
        score.kernel_name = variance.status().ToString();
        scored = false;
        break;
      }
      total += *variance;
    }
    if (scored) {
      score.admissible = true;
      score.variance_score = total;
    }
    report.ranking.push_back(std::move(score));
  }

  if (report.ranking.empty()) {
    return Status::NotFound("no kernel family registered for " +
                            std::string(FunctionToString(function)) + "/" +
                            SchemeToString(scheme) + "/" +
                            RegimeToString(regime));
  }
  // Admissible families by ascending variance, inadmissible last; ties
  // break on the family enum for determinism.
  std::stable_sort(report.ranking.begin(), report.ranking.end(),
                   [](const FamilyScore& a, const FamilyScore& b) {
                     if (a.admissible != b.admissible) return a.admissible;
                     if (a.variance_score != b.variance_score) {
                       return a.variance_score < b.variance_score;
                     }
                     return static_cast<int>(a.spec.family) <
                            static_cast<int>(b.spec.family);
                   });
  if (!report.ranking.front().admissible) {
    return Status::NotFound(
        "no admissible kernel family for this configuration (first "
        "failure: " +
        report.ranking.front().kernel_name + ")");
  }
  report.chosen = report.ranking.front().spec;
  return report;
}

std::vector<Result<SelectionReport>> EstimatorSelector::SelectPerClass(
    Function function, Scheme scheme, Regime regime,
    const std::vector<SamplingParams>& classes,
    const Options& options) const {
  std::vector<Result<SelectionReport>> out;
  out.reserve(classes.size());
  for (const SamplingParams& params : classes) {
    out.push_back(Select(function, scheme, regime, params, options));
  }
  return out;
}

bool SelectorCache::Key::operator<(const Key& o) const {
  if (function != o.function) return function < o.function;
  if (scheme != o.scheme) return scheme < o.scheme;
  if (regime != o.regime) return regime < o.regime;
  if (per_entry != o.per_entry) return per_entry < o.per_entry;
  return quad_tol < o.quad_tol;
}

SelectorCache& SelectorCache::Global() {
  static SelectorCache* cache = new SelectorCache();
  return *cache;
}

Result<KernelSpec> SelectorCache::Choose(Function function, Scheme scheme,
                                         Regime regime,
                                         const SamplingParams& params) {
  static obs::Counter& cache_hits = obs::MetricsRegistry::Global().GetCounter(
      "pie_selector_requests_total",
      "SelectorCache::Choose lookups by result", {{"result", "hit"}});
  static obs::Counter& cache_misses =
      obs::MetricsRegistry::Global().GetCounter(
          "pie_selector_requests_total",
          "SelectorCache::Choose lookups by result", {{"result", "miss"}});
  Key key{static_cast<int>(function), static_cast<int>(scheme),
          static_cast<int>(regime), params.per_entry, params.quad_tol};
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      ++hits_;
      cache_hits.Increment();
      if (!it->second.status.ok()) return it->second.status;
      return it->second.spec;
    }
  }
  cache_misses.Increment();
  // Rank outside the lock: exact-variance scoring can run quadrature.
  auto report = EstimatorSelector().Select(function, scheme, regime, params);
  CachedChoice choice;
  if (report.ok()) {
    choice.spec = report->chosen;
  } else {
    choice.status = report.status();
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (static_cast<int>(cache_.size()) >= kMaxCachedSelections) {
    cache_.clear();
  }
  auto [it, inserted] = cache_.emplace(std::move(key), std::move(choice));
  (void)inserted;  // a racing chooser computed the same ranking; share it
  if (!it->second.status.ok()) return it->second.status;
  return it->second.spec;
}

int SelectorCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(cache_.size());
}

int64_t SelectorCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

}  // namespace pie
