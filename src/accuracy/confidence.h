// Confidence-interval policies for the accuracy layer.
//
// The estimators this library serves are unbiased, and PR 4 makes their
// per-key variance estimable in the same columnar scan (see
// EstimatorKernel::EstimateSecondMoment). This header turns an (estimate,
// variance-estimate) pair into an interval: a normal (CLT) interval for the
// many-key sum aggregates the store answers, or a distribution-free
// Chebyshev fallback when the caller cannot appeal to the CLT (few keys,
// heavy-tailed per-key estimates). Every QueryService aggregate returns an
// IntervalEstimate instead of a bare double.

#pragma once

namespace pie {

/// How the interval half-width is derived from the standard error.
enum class CiMethod {
  kNormal,     ///< estimate +/- z_{(1+level)/2} * stderr (CLT)
  kChebyshev,  ///< estimate +/- stderr / sqrt(1 - level) (distribution-free)
};

/// Interval policy: method and nominal coverage level in (0, 1).
struct CiPolicy {
  CiMethod method = CiMethod::kNormal;
  double level = 0.95;
};

/// A point estimate with its estimated error: the accuracy layer's return
/// type for every sum aggregate.
struct IntervalEstimate {
  double estimate = 0.0;
  /// Variance estimate of `estimate`: unbiased for directly-scanned sum
  /// aggregates; a conservative UPPER BOUND for derived differences whose
  /// cross-covariance is unknown (QueryService::L1Distance documents its
  /// sd(X)+sd(Y) bound). May be slightly negative on unlucky samples (a
  /// difference of unbiased terms); the interval uses the clamped value.
  double variance = 0.0;
  double std_err = 0.0;  ///< sqrt(max(0, variance))
  double lo = 0.0;       ///< estimate - critical * std_err
  double hi = 0.0;       ///< estimate + critical * std_err
  /// Fraction of store shards that backed this answer: 1.0 for a complete
  /// store; < 1 when a degraded-recovery snapshot answered by
  /// extrapolating around absent shards (QueryService widens the interval
  /// accordingly -- see store/query_service.h).
  double coverage = 1.0;
};

/// The paper's dual readout (classical baseline next to the
/// partial-information estimator), with error bars on both.
struct DualInterval {
  IntervalEstimate ht;
  IntervalEstimate l;
};

/// Quantile of the standard normal distribution (inverse CDF), p in (0, 1).
/// Acklam's rational approximation, relative error < 1.2e-9 -- orders of
/// magnitude below Monte Carlo noise at any feasible trial count.
double NormalQuantile(double p);

/// Multiplier applied to the standard error under `policy`:
/// NormalQuantile((1 + level) / 2) for kNormal, 1/sqrt(1 - level) for
/// kChebyshev (both checked for level in (0, 1)). Memoized per thread on
/// the recently-used (method, level) pairs; bitwise identical to
/// CriticalValueUncached on every input.
double CriticalValue(const CiPolicy& policy);

/// The direct computation behind CriticalValue, bypassing its memo (the
/// regression test compares the two bitwise).
double CriticalValueUncached(const CiPolicy& policy);

/// Assembles the interval for an (estimate, variance-estimate) pair.
IntervalEstimate MakeInterval(double estimate, double variance,
                              const CiPolicy& policy = {});

}  // namespace pie
