// Mergeable accumulation of a sum aggregate together with its unbiased
// variance estimate, in one columnar scan.
//
// For independent per-key outcomes (independent seeds, the store's model),
// the variance of a sum aggregate is the sum of per-key estimator
// variances, and each key's variance has the unbiased estimate
//   Var-hat(key) = Estimate(o)^2 - EstimateSecondMoment(o)
// (E[est^2] - f^2 = Var[est]; see kernel.h). An AccuracyAccumulator drives
// the kernel's FUSED EstimateWithVarianceMany pass through the
// deterministic scan driver (engine/parallel_scan.h): the batch is split
// into fixed-size chunks -- each scanned once, paying for the row data a
// single time instead of the two slab passes of the pre-fusion layout --
// and the per-chunk partials (sum, variance, per-key moments) combine by a
// fixed-shape pairwise tree, so the result bits are identical for any
// thread count and bitwise equal to EstimateSum on the same batch.
// Per-shard accumulators Merge() in shard order, so the store's
// deterministic-reduction guarantee extends to the error bars.

#pragma once

#include <cstdint>

#include "accuracy/confidence.h"
#include "engine/engine.h"
#include "engine/parallel_scan.h"
#include "util/stats.h"

namespace pie {

class AccuracyAccumulator {
 public:
  /// Accumulates one key's (estimate, second-moment estimate) pair.
  void Add(double estimate, double second_moment) {
    sum_ += estimate;
    variance_ += estimate * estimate - second_moment;
    per_key_.Add(estimate);
  }

  /// Scans a whole batch with the kernel's fused estimate+variance pass
  /// via the deterministic driver. The resulting sum() is bitwise
  /// identical to EstimateSum(kernel, batch) (same chunking, same tree
  /// reduction), which tests/accuracy_test.cc enforces registry-wide, and
  /// independent of num_threads (tests/parallel_scan_test.cc).
  void AddBatch(const EstimatorKernel& kernel, const OutcomeBatch& batch,
                int num_threads = 1) {
    AddBatchImpl(kernel, batch, /*with_variance=*/true, num_threads);
  }

  /// Estimate-only scan: the same chunked sum (still bitwise identical to
  /// EstimateSum) and per-key moments, skipping the variance pass
  /// entirely -- variance() stays 0, so Interval() degenerates to a
  /// zero-width interval. For point-only callers that must not pay for
  /// error bars (QueryServiceOptions::with_variance = false).
  void AddBatchEstimateOnly(const EstimatorKernel& kernel,
                            const OutcomeBatch& batch,
                            int num_threads = 1) {
    AddBatchImpl(kernel, batch, /*with_variance=*/false, num_threads);
  }

  /// Exact merge: component-wise for sum/variance, Chan et al. for the
  /// per-key moments. Merging per-shard partials in shard order reproduces
  /// the single-scan accumulator's sum bitwise.
  void Merge(const AccuracyAccumulator& o) {
    sum_ += o.sum_;
    variance_ += o.variance_;
    per_key_.Merge(o.per_key_);
  }

  int64_t keys() const { return per_key_.count(); }
  double sum() const { return sum_; }
  /// Unbiased estimate of Var[sum()]; may be slightly negative on unlucky
  /// samples (difference of unbiased terms), clamped by Interval().
  double variance() const { return variance_; }
  /// Per-key estimate moments (spread diagnostics), mergeable.
  const MomentAccumulator& per_key() const { return per_key_; }

  /// The sum with its error bars under `policy`.
  IntervalEstimate Interval(const CiPolicy& policy = {}) const {
    return MakeInterval(sum_, variance_, policy);
  }

 private:
  void AddBatchImpl(const EstimatorKernel& kernel, const OutcomeBatch& batch,
                    bool with_variance, int num_threads);

  double sum_ = 0.0;
  double variance_ = 0.0;
  MomentAccumulator per_key_;
};

/// One-shot convenience: scan the batch and return the interval.
IntervalEstimate EstimateSumWithCi(const EstimatorKernel& kernel,
                                   const OutcomeBatch& batch,
                                   const CiPolicy& policy = {});

/// Accumulates a difference aggregate X - Y whose two estimators scan the
/// SAME batch (one shared sample per key), including the exact covariance
/// cross term the conservative sd(X) + sd(Y) width throws away:
///   Var[X - Y] = Var[X] + Var[Y] - 2 Cov[X, Y],
/// with per-key unbiased estimates of all three terms accumulated in one
/// fused chunked scan. The caller supplies the per-row covariance estimate
/// (kernel-pair-specific; e.g. X(o) Y(o) minus an unbiased estimate of
/// f_X(v) f_Y(v) -- see MinHtWeighted::MaxMinProductRow) through
/// `cross_fn(chunk, i, x, y)`.
///
/// Interval() uses the joint variance, falling back to the conservative
/// (sd(X) + sd(Y))^2 bound whenever the joint estimate exceeds it (the
/// cross term, a difference of unbiased estimates, can overshoot on
/// unlucky samples) -- so the reported interval is NEVER wider than the
/// pre-covariance bound, which tests/accuracy_test.cc asserts.
class DifferenceAccumulator {
 public:
  /// Chunked fused scan of both kernels over the same batch; rows
  /// accumulated in order, chunks in order (the per-shard unit of the
  /// store's deterministic reduction -- shard partials Merge() in shard
  /// order).
  template <typename CrossFn>
  void AddBatch(const EstimatorKernel& kx, const EstimatorKernel& ky,
                const OutcomeBatch& batch, const CrossFn& cross_fn,
                bool with_variance = true) {
    double ex[kScanChunkRows], vx[kScanChunkRows];
    double ey[kScanChunkRows], vy[kScanChunkRows];
    const BatchView view = batch.view();
    for (int start = 0; start < view.size; start += kScanChunkRows) {
      const BatchView chunk = view.Slice(
          start, view.size - start < kScanChunkRows ? view.size - start
                                                    : kScanChunkRows);
      if (with_variance) {
        kx.EstimateWithVarianceMany(chunk, ex, vx);
        ky.EstimateWithVarianceMany(chunk, ey, vy);
        for (int i = 0; i < chunk.size; ++i) {
          sum_x_ += ex[i];
          sum_y_ += ey[i];
          var_x_ += vx[i];
          var_y_ += vy[i];
          cross_ += cross_fn(chunk, i, ex[i], ey[i]);
        }
      } else {
        kx.EstimateMany(chunk, ex);
        ky.EstimateMany(chunk, ey);
        for (int i = 0; i < chunk.size; ++i) {
          sum_x_ += ex[i];
          sum_y_ += ey[i];
        }
      }
      keys_ += chunk.size;
    }
  }

  /// Exact component-wise merge (shard partials, in shard order).
  void Merge(const DifferenceAccumulator& o) {
    sum_x_ += o.sum_x_;
    sum_y_ += o.sum_y_;
    var_x_ += o.var_x_;
    var_y_ += o.var_y_;
    cross_ += o.cross_;
    keys_ += o.keys_;
  }

  int64_t keys() const { return keys_; }
  double sum_x() const { return sum_x_; }
  double sum_y() const { return sum_y_; }
  double estimate() const { return sum_x_ - sum_y_; }
  /// Unbiased variance estimates of the two term sums and their summed
  /// covariance estimate (each may go slightly negative on unlucky
  /// samples; Interval() clamps).
  double variance_x() const { return var_x_; }
  double variance_y() const { return var_y_; }
  double covariance() const { return cross_; }
  /// Joint unbiased estimate of Var[X - Y] (may be negative; see above).
  double joint_variance() const { return var_x_ + var_y_ - 2.0 * cross_; }
  /// The pre-covariance upper bound (sd(X) + sd(Y))^2 on Var[X - Y].
  double conservative_variance() const;

  /// The difference with covariance-aware error bars: joint variance,
  /// clamped into [0, conservative_variance()].
  IntervalEstimate Interval(const CiPolicy& policy = {}) const;

 private:
  double sum_x_ = 0.0;
  double sum_y_ = 0.0;
  double var_x_ = 0.0;
  double var_y_ = 0.0;
  double cross_ = 0.0;
  int64_t keys_ = 0;
};

}  // namespace pie
