// Mergeable accumulation of a sum aggregate together with its unbiased
// variance estimate, in one columnar scan.
//
// For independent per-key outcomes (independent seeds, the store's model),
// the variance of a sum aggregate is the sum of per-key estimator
// variances, and each key's variance has the unbiased estimate
//   Var-hat(key) = Estimate(o)^2 - EstimateSecondMoment(o)
// (E[est^2] - f^2 = Var[est]; see kernel.h). An AccuracyAccumulator drives
// EstimateMany and EstimateSecondMomentMany over a batch's slabs in fixed
// chunks and keeps three reductions: the running sum (bitwise identical to
// EstimateSum -- same chunking, same row-order additions), the running
// variance estimate, and the mergeable per-key moments (MomentAccumulator)
// for diagnostics. Per-shard accumulators Merge() in shard order, so the
// store's deterministic-reduction guarantee extends to the error bars.

#pragma once

#include <cstdint>

#include "accuracy/confidence.h"
#include "engine/engine.h"
#include "util/stats.h"

namespace pie {

class AccuracyAccumulator {
 public:
  /// Accumulates one key's (estimate, second-moment estimate) pair.
  void Add(double estimate, double second_moment) {
    sum_ += estimate;
    variance_ += estimate * estimate - second_moment;
    per_key_.Add(estimate);
  }

  /// Scans a whole batch with the kernel: one EstimateMany and one
  /// EstimateSecondMomentMany pass per fixed-size chunk, rows accumulated
  /// in order. The resulting sum() is bitwise identical to
  /// EstimateSum(kernel, batch) (same chunk size, same addition order),
  /// which tests/accuracy_test.cc enforces registry-wide.
  void AddBatch(const EstimatorKernel& kernel, const OutcomeBatch& batch) {
    AddBatchImpl(kernel, batch, /*with_variance=*/true);
  }

  /// Estimate-only scan: the same chunked sum (still bitwise identical to
  /// EstimateSum) and per-key moments, skipping the second-moment pass
  /// entirely -- variance() stays 0, so Interval() degenerates to a
  /// zero-width interval. For point-only callers that must not pay for
  /// error bars (QueryServiceOptions::with_variance = false).
  void AddBatchEstimateOnly(const EstimatorKernel& kernel,
                            const OutcomeBatch& batch) {
    AddBatchImpl(kernel, batch, /*with_variance=*/false);
  }

  /// Exact merge: component-wise for sum/variance, Chan et al. for the
  /// per-key moments. Merging per-shard partials in shard order reproduces
  /// the single-scan accumulator's sum bitwise.
  void Merge(const AccuracyAccumulator& o) {
    sum_ += o.sum_;
    variance_ += o.variance_;
    per_key_.Merge(o.per_key_);
  }

  int64_t keys() const { return per_key_.count(); }
  double sum() const { return sum_; }
  /// Unbiased estimate of Var[sum()]; may be slightly negative on unlucky
  /// samples (difference of unbiased terms), clamped by Interval().
  double variance() const { return variance_; }
  /// Per-key estimate moments (spread diagnostics), mergeable.
  const MomentAccumulator& per_key() const { return per_key_; }

  /// The sum with its error bars under `policy`.
  IntervalEstimate Interval(const CiPolicy& policy = {}) const {
    return MakeInterval(sum_, variance_, policy);
  }

 private:
  void AddBatchImpl(const EstimatorKernel& kernel, const OutcomeBatch& batch,
                    bool with_variance);

  double sum_ = 0.0;
  double variance_ = 0.0;
  MomentAccumulator per_key_;
};

/// One-shot convenience: scan the batch and return the interval.
IntervalEstimate EstimateSumWithCi(const EstimatorKernel& kernel,
                                   const OutcomeBatch& batch,
                                   const CiPolicy& policy = {});

}  // namespace pie
