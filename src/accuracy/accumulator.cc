#include "accuracy/accumulator.h"

#include <algorithm>

namespace pie {

void AccuracyAccumulator::AddBatchImpl(const EstimatorKernel& kernel,
                                       const OutcomeBatch& batch,
                                       bool with_variance) {
  // Mirrors EstimateSum (engine.cc): the same fixed chunk size and the
  // same row-order `sum_ += est` additions, so the point estimate is
  // bitwise identical to the plain scan -- with or without the variance
  // pass. The second-moment pass shares the chunk's slab views, so a
  // steady-state scan still allocates nothing.
  constexpr int kChunk = 256;
  double est[kChunk];
  double second[kChunk];
  const BatchView view = batch.view();
  for (int start = 0; start < view.size; start += kChunk) {
    const BatchView chunk =
        view.Slice(start, std::min(kChunk, view.size - start));
    kernel.EstimateMany(chunk, est);
    if (with_variance) kernel.EstimateSecondMomentMany(chunk, second);
    for (int i = 0; i < chunk.size; ++i) {
      sum_ += est[i];
      if (with_variance) variance_ += est[i] * est[i] - second[i];
      per_key_.Add(est[i]);
    }
  }
}

IntervalEstimate EstimateSumWithCi(const EstimatorKernel& kernel,
                                   const OutcomeBatch& batch,
                                   const CiPolicy& policy) {
  AccuracyAccumulator acc;
  acc.AddBatch(kernel, batch);
  return acc.Interval(policy);
}

}  // namespace pie
