#include "accuracy/accumulator.h"

#include <algorithm>
#include <cmath>

namespace pie {

void AccuracyAccumulator::AddBatchImpl(const EstimatorKernel& kernel,
                                       const OutcomeBatch& batch,
                                       bool with_variance, int num_threads) {
  // One fused pass per fixed-size chunk through the deterministic driver:
  // the point estimate and the per-key variance estimate come out of the
  // same slab loop (EstimateWithVarianceMany), and the chunk partials
  // tree-reduce in a fixed shape -- so sum() is bitwise identical to
  // EstimateSum(kernel, batch) and independent of num_threads.
  ScanOptions options;
  options.num_threads = num_threads;
  options.with_variance = with_variance;
  const ScanPartial partial = ScanBatch(kernel, batch.view(), options);
  sum_ += partial.sum;
  variance_ += partial.variance;
  per_key_.Merge(partial.per_key);
}

IntervalEstimate EstimateSumWithCi(const EstimatorKernel& kernel,
                                   const OutcomeBatch& batch,
                                   const CiPolicy& policy) {
  AccuracyAccumulator acc;
  acc.AddBatch(kernel, batch);
  return acc.Interval(policy);
}

double DifferenceAccumulator::conservative_variance() const {
  const double sd_x = std::sqrt(std::fmax(0.0, var_x_));
  const double sd_y = std::sqrt(std::fmax(0.0, var_y_));
  const double bound = sd_x + sd_y;
  return bound * bound;
}

IntervalEstimate DifferenceAccumulator::Interval(
    const CiPolicy& policy) const {
  // The joint estimate is sharper whenever the cross term is real (shared
  // samples make Cov[X, Y] > 0 for max/min pairs); the conservative bound
  // remains the ceiling, so the covariance-aware interval can only shrink
  // the error bars, never widen them. The floor handles unlucky samples
  // where the joint estimate (a difference of unbiased terms) goes
  // negative: the interval collapses to zero width, matching the header
  // contract that variance lands in [0, conservative_variance()].
  const double joint = std::fmax(
      0.0, std::fmin(joint_variance(), conservative_variance()));
  return MakeInterval(estimate(), joint, policy);
}

}  // namespace pie
