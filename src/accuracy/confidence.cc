#include "accuracy/confidence.h"

#include <cmath>

#include "util/check.h"

namespace pie {

double NormalQuantile(double p) {
  PIE_CHECK(p > 0.0 && p < 1.0);
  // Acklam's inverse normal CDF approximation: a rational central form on
  // [0.02425, 0.97575] and rational tail forms in sqrt(-2 log p) outside.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  static constexpr double kLow = 0.02425;
  if (p < kLow) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p > 1.0 - kLow) {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  const double q = p - 0.5;
  const double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
          a[5]) *
         q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}

double CriticalValueUncached(const CiPolicy& policy) {
  PIE_CHECK(policy.level > 0.0 && policy.level < 1.0);
  switch (policy.method) {
    case CiMethod::kNormal:
      return NormalQuantile(0.5 * (1.0 + policy.level));
    case CiMethod::kChebyshev:
      return 1.0 / std::sqrt(1.0 - policy.level);
  }
  PIE_CHECK(false && "unreachable");
  return 0.0;
}

double CriticalValue(const CiPolicy& policy) {
  // Interval assembly runs once per aggregate result, but a multi-level
  // readout (QueryService dual intervals, accuracy sweeps) re-derives the
  // same handful of (method, level) pairs over and over; the Acklam tails
  // cost a log+sqrt each. Small thread-local memo, round-robin eviction;
  // keys compare exactly, so a hit returns the identical bits the direct
  // computation would (tests/accuracy_test.cc pins this).
  struct Entry {
    int method = 0;  // static_cast<int>(method) + 1; 0 = empty slot
    double level = 0.0;
    double value = 0.0;
  };
  constexpr int kSlots = 8;
  thread_local Entry memo[kSlots];
  thread_local int next_victim = 0;
  const int method_key = static_cast<int>(policy.method) + 1;
  for (const Entry& e : memo) {
    if (e.method == method_key && e.level == policy.level) return e.value;
  }
  const double value = CriticalValueUncached(policy);
  memo[next_victim] = {method_key, policy.level, value};
  next_victim = (next_victim + 1) % kSlots;
  return value;
}

IntervalEstimate MakeInterval(double estimate, double variance,
                              const CiPolicy& policy) {
  IntervalEstimate out;
  out.estimate = estimate;
  out.variance = variance;
  out.std_err = std::sqrt(std::fmax(0.0, variance));
  const double half = CriticalValue(policy) * out.std_err;
  out.lo = estimate - half;
  out.hi = estimate + half;
  return out;
}

}  // namespace pie
