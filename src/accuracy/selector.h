// Variance-driven estimator selection.
//
// The paper's headline ordering -- the order-optimal families dominate
// Horvitz-Thompson pointwise (max^(U), max^(L) <= HT; Sections 4-5,
// Figures 2/4) -- is made operational here: given a target function, a
// sampling scheme/regime, and a concrete sampler configuration (one
// "threshold class"), the selector scores every registered family's exact
// variance on a set of reference data profiles and picks the
// minimum-variance admissible family. Serving paths (QueryService's *Auto
// queries) call this instead of hard-coding a family, so a configuration
// where a family is inadmissible (no closed form for that r / thresholds)
// or dominated falls back automatically.

#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "engine/registry.h"
#include "util/status.h"

namespace pie {

/// One candidate family's outcome in a selection.
struct FamilyScore {
  KernelSpec spec;          ///< canonical spec the family resolves to
  std::string kernel_name;  ///< instantiated kernel name (or failure reason)
  bool admissible = false;  ///< factory + exact variance both available
  /// Sum of exact kernel variances over the reference profiles; the
  /// selection objective (lower is better). Infinity when inadmissible.
  double variance_score = 0.0;
};

/// Result of one selection: the chosen spec plus the full ranking
/// (admissible families by ascending score, then inadmissible ones).
struct SelectionReport {
  KernelSpec chosen;
  std::vector<FamilyScore> ranking;
};

class EstimatorSelector {
 public:
  struct Options {
    /// Reference data profiles the exact variances are evaluated on. Empty
    /// selects built-in profiles derived from the sampling params (binary
    /// patterns for OR; dense/skewed/one-hot vectors scaled to the
    /// thresholds for max/min).
    std::vector<std::vector<double>> profiles;
  };

  /// Selects over `registry` (default: the process-wide registry).
  explicit EstimatorSelector(const KernelRegistry* registry = nullptr);

  /// Minimum-variance admissible family for (function, scheme, regime)
  /// under `params`. NotFound when no registered family is admissible for
  /// the configuration.
  Result<SelectionReport> Select(Function function, Scheme scheme,
                                 Regime regime, const SamplingParams& params,
                                 const Options& options = {}) const;

  /// Select() per threshold class: one independent selection for each
  /// sampler configuration (serving stores bucket instances by threshold,
  /// and the best family can differ across buckets).
  std::vector<Result<SelectionReport>> SelectPerClass(
      Function function, Scheme scheme, Regime regime,
      const std::vector<SamplingParams>& classes,
      const Options& options = {}) const;

  /// The built-in reference profiles Select() uses when none are given.
  static std::vector<std::vector<double>> DefaultProfiles(
      Function function, Scheme scheme, const SamplingParams& params);

 private:
  const KernelRegistry* registry_;
};

/// Process-wide memo of selector decisions, keyed by threshold class
/// (function, scheme, regime, sampler configuration). A selection scores
/// EXACT variances -- for the weighted max families that means adaptive
/// quadrature per reference profile -- so re-ranking on every query is
/// orders of magnitude more expensive than the per-key scan it gates.
/// Serving paths (QueryService::MaxDominanceAuto / DistinctUnionAuto, the
/// aggregate layer's selected offline scans) run each threshold class
/// through Select() exactly once and serve the cached spec afterwards.
/// Thread-safe; failures (no admissible family) are cached too, so a
/// misconfigured class does not re-rank on every request either.
class SelectorCache {
 public:
  /// Cache capacity; crossing it clears and refills (mirrors the
  /// EstimationEngine kernel cache's wholesale-reset policy).
  static constexpr int kMaxCachedSelections = 1024;

  SelectorCache() = default;
  SelectorCache(const SelectorCache&) = delete;
  SelectorCache& operator=(const SelectorCache&) = delete;

  /// The shared cache the serving paths consult.
  static SelectorCache& Global();

  /// The cached minimum-variance admissible family for the threshold
  /// class, running EstimatorSelector::Select on first use.
  Result<KernelSpec> Choose(Function function, Scheme scheme, Regime regime,
                            const SamplingParams& params);

  /// Telemetry / tests: distinct classes cached, and how many Choose()
  /// calls were served from the cache without re-ranking.
  int size() const;
  int64_t hits() const;

 private:
  struct Key {
    int function;
    int scheme;
    int regime;
    std::vector<double> per_entry;
    double quad_tol;
    bool operator<(const Key& o) const;
  };
  struct CachedChoice {
    Status status = Status::OK();
    KernelSpec spec;
  };

  mutable std::mutex mu_;
  std::map<Key, CachedChoice> cache_;
  int64_t hits_ = 0;
};

}  // namespace pie
