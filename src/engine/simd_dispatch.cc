#include "engine/simd_dispatch.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/metrics.h"

namespace pie {
namespace {

/// Trims leading/trailing whitespace in place on a [begin, end) view.
void TrimWhitespace(const char** begin, const char** end) {
  while (*begin < *end &&
         std::isspace(static_cast<unsigned char>(**begin))) {
    ++*begin;
  }
  while (*end > *begin &&
         std::isspace(static_cast<unsigned char>((*end)[-1]))) {
    --*end;
  }
}

obs::Gauge& TierGauge() {
  return obs::MetricsRegistry::Global().GetGauge(
      "pie_simd_tier",
      "Effective SIMD execution tier: 0 scalar, 1 avx2, 2 avx512");
}

void WarnInvalid(const char* var, const char* value, const char* expected) {
  obs::MetricsRegistry::Global()
      .GetCounter("pie_config_errors_total",
                  "Invalid configuration values rejected at startup",
                  {{"var", var}})
      .Increment();
  std::fprintf(stderr, "pie: ignoring invalid %s=\"%s\" (expected %s)\n",
               var, value, expected);
}

}  // namespace

bool ParseSimdTier(const char* text, SimdTier* out) {
  if (text == nullptr) return false;
  const char* begin = text;
  const char* end = text + std::strlen(text);
  TrimWhitespace(&begin, &end);
  const size_t len = static_cast<size_t>(end - begin);
  if (len == 6 && std::memcmp(begin, "scalar", 6) == 0) {
    *out = SimdTier::kScalar;
    return true;
  }
  if (len == 4 && std::memcmp(begin, "avx2", 4) == 0) {
    *out = SimdTier::kAvx2;
    return true;
  }
  if (len == 6 && std::memcmp(begin, "avx512", 6) == 0) {
    *out = SimdTier::kAvx512;
    return true;
  }
  return false;
}

int ParsePrefetchDistance(const char* text, bool* invalid) {
  *invalid = true;
  if (text == nullptr) return 0;
  const char* p = text;
  while (std::isspace(static_cast<unsigned char>(*p))) ++p;
  if (*p == '\0') return 0;  // empty / whitespace-only
  // As in ParsePieThreads: an optional '+' and decimal digits only, so
  // "-1", "0x40", "1e3", and "64abc" are rejected instead of truncated.
  const char* digits = (*p == '+') ? p + 1 : p;
  if (*digits < '0' || *digits > '9') return 0;
  errno = 0;
  char* end = nullptr;
  const long parsed = std::strtol(p, &end, 10);
  if (errno == ERANGE) return 0;  // overflow
  while (std::isspace(static_cast<unsigned char>(*end))) ++end;
  if (*end != '\0') return 0;  // trailing garbage
  if (parsed < 0 || parsed > kMaxPrefetchRows) return 0;
  *invalid = false;
  return static_cast<int>(parsed);
}

SimdTier MaxSupportedSimdTier() {
#ifdef PIE_SIMD_AVX512
  if (__builtin_cpu_supports("avx512f")) return SimdTier::kAvx512;
#endif
#ifdef PIE_SIMD
  return SimdTier::kAvx2;
#else
  return SimdTier::kScalar;
#endif
}

namespace simd_internal {

int ResolveTierSlow() {
  const SimdTier ceiling = MaxSupportedSimdTier();
  SimdTier tier = ceiling;
  if (const char* env = std::getenv("PIE_SIMD_TIER")) {
    SimdTier requested;
    if (ParseSimdTier(env, &requested)) {
      // Requests above the build+CPU ceiling clamp down (a PIE_SIMD_AVX512
      // binary on a non-AVX-512 machine must stay safe); requests below it
      // are honored so tests can pin the generic path.
      tier = requested < ceiling ? requested : ceiling;
    } else {
      WarnInvalid("PIE_SIMD_TIER", env, "one of scalar|avx2|avx512");
    }
  }
  const int value = static_cast<int>(tier);
  // First resolution wins so concurrent first uses agree; the gauge write
  // is idempotent either way.
  int expected = -1;
  g_tier.compare_exchange_strong(expected, value,
                                 std::memory_order_relaxed);
  const int effective = g_tier.load(std::memory_order_relaxed);
  TierGauge().Set(static_cast<double>(effective));
  return effective;
}

int ResolvePrefetchSlow() {
  int rows = kPieDefaultPrefetchRows;
  if (const char* env = std::getenv("PIE_PREFETCH_DIST")) {
    bool invalid = false;
    const int parsed = ParsePrefetchDistance(env, &invalid);
    if (!invalid) {
      rows = parsed;
    } else {
      WarnInvalid("PIE_PREFETCH_DIST", env,
                  "an integer in [0, 1048576] rows (0 disables)");
    }
  }
  int expected = -1;
  g_prefetch.compare_exchange_strong(expected, rows,
                                     std::memory_order_relaxed);
  return g_prefetch.load(std::memory_order_relaxed);
}

}  // namespace simd_internal

SimdTier ActiveSimdTier() {
  const int tier = simd_internal::g_tier.load(std::memory_order_relaxed);
  return static_cast<SimdTier>(tier >= 0 ? tier
                                         : simd_internal::ResolveTierSlow());
}

SimdTier SetSimdTierForTest(SimdTier tier) {
  const SimdTier ceiling = MaxSupportedSimdTier();
  const SimdTier effective = tier < ceiling ? tier : ceiling;
  simd_internal::g_tier.store(static_cast<int>(effective),
                              std::memory_order_relaxed);
  TierGauge().Set(static_cast<double>(static_cast<int>(effective)));
  return effective;
}

int PrefetchDistanceRows() {
  const int rows = simd_internal::g_prefetch.load(std::memory_order_relaxed);
  return rows >= 0 ? rows : simd_internal::ResolvePrefetchSlow();
}

int SetPrefetchDistanceForTest(int rows) {
  if (rows < 0) rows = 0;
  if (rows > kMaxPrefetchRows) rows = kMaxPrefetchRows;
  simd_internal::g_prefetch.store(rows, std::memory_order_relaxed);
  return rows;
}

}  // namespace pie
