#include "engine/worker_pool.h"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <thread>

namespace pie {

int HardwareThreads() {
  const unsigned reported = std::thread::hardware_concurrency();
  return reported == 0 ? 1 : static_cast<int>(reported);
}

int ResolveParallelism(int requested) {
  if (requested >= 1) return requested;
  static const int auto_width = [] {
    if (const char* env = std::getenv("PIE_THREADS")) {
      const int parsed = std::atoi(env);
      if (parsed > 0) return parsed;
    }
    return HardwareThreads();
  }();
  return auto_width;
}

/// One published parallel region: an atomic index counter helpers drain
/// alongside the caller. `next` is the only field touched outside the pool
/// mutex; everything else (helper budget, active helper count, queue
/// membership) is mutex-guarded, which also provides the release/acquire
/// edge making helpers' writes visible to the caller on return.
struct WorkerPool::Job {
  const std::function<void(int)>* fn = nullptr;
  int count = 0;
  std::atomic<int> next{0};
  /// Helpers still allowed to join (job leaves the queue at 0).
  int helper_budget = 0;
  /// Helpers currently draining; the caller returns once this hits 0
  /// after it finished its own drain and dequeued the job.
  int active = 0;
  bool queued = false;
};

class WorkerPool::Impl {
 public:
  explicit Impl(int num_workers) {
    for (int i = 0; i < num_workers; ++i) {
      std::thread([this] { WorkerLoop(); }).detach();
    }
  }

  void Run(Job* job) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.push_back(job);
      job->queued = true;
    }
    if (job->helper_budget == 1) {
      work_cv_.notify_one();
    } else {
      work_cv_.notify_all();
    }
    Drain(job);  // the caller always participates
    std::unique_lock<std::mutex> lock(mu_);
    if (job->queued) {
      for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if (*it == job) {
          queue_.erase(it);
          break;
        }
      }
      job->queued = false;
    }
    done_cv_.wait(lock, [job] { return job->active == 0; });
  }

 private:
  static void Drain(Job* job) {
    for (;;) {
      const int i = job->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= job->count) return;
      (*job->fn)(i);
    }
  }

  void WorkerLoop() {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      work_cv_.wait(lock, [this] { return !queue_.empty(); });
      Job* job = queue_.front();
      ++job->active;
      if (--job->helper_budget == 0) {
        queue_.pop_front();
        job->queued = false;
      }
      lock.unlock();
      Drain(job);
      lock.lock();
      if (--job->active == 0) done_cv_.notify_all();
    }
  }

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::deque<Job*> queue_;  // jobs still accepting helpers
};

WorkerPool::WorkerPool()
    // The Impl is leaked alongside the pool itself: workers park on its
    // queue forever, so it must outlive every static destructor.
    : impl_(new Impl(ResolveParallelism(0) - 1)),
      num_workers_(ResolveParallelism(0) - 1) {}

WorkerPool& WorkerPool::Global() {
  static WorkerPool* pool = new WorkerPool();  // leaked; LSan-reachable
  return *pool;
}

void WorkerPool::ParallelFor(int count, int max_parallelism,
                             const std::function<void(int)>& fn) {
  if (count <= 0) return;
  int width = max_parallelism < count ? max_parallelism : count;
  if (width > num_workers_ + 1) width = num_workers_ + 1;
  if (width <= 1) {
    for (int i = 0; i < count; ++i) fn(i);
    return;
  }
  Job job;
  job.fn = &fn;
  job.count = count;
  job.helper_budget = width - 1;
  impl_->Run(&job);
}

}  // namespace pie
