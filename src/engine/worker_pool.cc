#include "engine/worker_pool.h"

#include <atomic>
#include <cctype>
#include <cerrno>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <thread>

#include "obs/metrics.h"

namespace pie {

int HardwareThreads() {
  const unsigned reported = std::thread::hardware_concurrency();
  return reported == 0 ? 1 : static_cast<int>(reported);
}

int ParsePieThreads(const char* text, bool* invalid) {
  *invalid = true;
  if (text == nullptr) return 0;
  const char* p = text;
  while (std::isspace(static_cast<unsigned char>(*p))) ++p;
  if (*p == '\0') return 0;  // empty / whitespace-only
  // strtol accepts leading '-' and hex/octal prefixes; restrict to an
  // optional '+' and decimal digits so "-4", "0x8", and "8abc" are all
  // rejected instead of silently truncated.
  const char* digits = (*p == '+') ? p + 1 : p;
  if (*digits < '0' || *digits > '9') return 0;
  errno = 0;
  char* end = nullptr;
  const long parsed = std::strtol(p, &end, 10);
  if (errno == ERANGE) return 0;  // overflow
  while (std::isspace(static_cast<unsigned char>(*end))) ++end;
  if (*end != '\0') return 0;  // trailing garbage
  if (parsed < 1 || parsed > kMaxPieThreads) return 0;
  *invalid = false;
  return static_cast<int>(parsed);
}

int ResolveParallelism(int requested) {
  if (requested >= 1) return requested;
  static const int auto_width = [] {
    if (const char* env = std::getenv("PIE_THREADS")) {
      bool invalid = false;
      const int parsed = ParsePieThreads(env, &invalid);
      if (!invalid) return parsed;
      obs::MetricsRegistry::Global()
          .GetCounter("pie_config_errors_total",
                      "Invalid configuration values rejected at startup",
                      {{"var", "PIE_THREADS"}})
          .Increment();
      std::fprintf(stderr,
                   "pie: ignoring invalid PIE_THREADS=\"%s\" (expected a "
                   "positive integer <= %d); using %d hardware threads\n",
                   env, kMaxPieThreads, HardwareThreads());
    }
    return HardwareThreads();
  }();
  return auto_width;
}

namespace {

/// Pool instrumentation handles, registered eagerly when the pool is
/// created so every dump contains the families even before (or without)
/// any parallel work -- a 1-CPU host degenerates every region inline but
/// still reports pie_pool_parallel_for_total.
struct PoolMetrics {
  obs::Counter& regions;
  obs::Counter& tasks;
  obs::Histogram& queue_wait;
  obs::Histogram& run;
  obs::Gauge& active;

  static PoolMetrics& Get() {
    static PoolMetrics* m = [] {
      auto& reg = obs::MetricsRegistry::Global();
      return new PoolMetrics{
          reg.GetCounter("pie_pool_parallel_for_total",
                         "Parallel regions executed (including regions "
                         "degenerated to the caller's inline loop)"),
          reg.GetCounter("pie_pool_tasks_total",
                         "Loop indices executed across all parallel "
                         "regions"),
          reg.GetHistogram("pie_pool_queue_wait_seconds",
                           "Delay between a job being published and a "
                           "helper joining it", obs::LatencyBuckets()),
          reg.GetHistogram("pie_pool_run_seconds",
                           "Wall time of pool-executed parallel regions",
                           obs::LatencyBuckets()),
          reg.GetGauge("pie_pool_active_workers",
                       "Pool helpers currently draining a job"),
      };
    }();
    return *m;
  }
};

}  // namespace

/// One published parallel region: an atomic index counter helpers drain
/// alongside the caller. `next` is the only field touched outside the pool
/// mutex; everything else (helper budget, active helper count, queue
/// membership) is mutex-guarded, which also provides the release/acquire
/// edge making helpers' writes visible to the caller on return.
struct WorkerPool::Job {
  const std::function<void(int)>* fn = nullptr;
  int count = 0;
  std::atomic<int> next{0};
  /// Helpers still allowed to join (job leaves the queue at 0).
  int helper_budget = 0;
  /// Helpers currently draining; the caller returns once this hits 0
  /// after it finished its own drain and dequeued the job.
  int active = 0;
  bool queued = false;
  int64_t publish_ns = 0;  // queue-wait histogram reference point
};

class WorkerPool::Impl {
 public:
  explicit Impl(int num_workers) {
    PoolMetrics::Get();  // eager family registration
    for (int i = 0; i < num_workers; ++i) {
      std::thread([this] { WorkerLoop(); }).detach();
    }
  }

  void Run(Job* job) {
    job->publish_ns = obs::MonotonicNowNs();
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.push_back(job);
      job->queued = true;
      ++jobs_published_;
    }
    if (job->helper_budget == 1) {
      work_cv_.notify_one();
    } else {
      work_cv_.notify_all();
    }
    Drain(job);  // the caller always participates
    std::unique_lock<std::mutex> lock(mu_);
    if (job->queued) {
      for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if (*it == job) {
          queue_.erase(it);
          break;
        }
      }
      job->queued = false;
    }
    done_cv_.wait(lock, [job] { return job->active == 0; });
    ++jobs_executed_;
  }

  PoolStats StatsLocked() const {
    std::lock_guard<std::mutex> lock(mu_);
    PoolStats stats;
    stats.queued = static_cast<int>(queue_.size());
    stats.executed = jobs_executed_;
    stats.generation = jobs_published_;
    return stats;
  }

 private:
  static void Drain(Job* job) {
    for (;;) {
      const int i = job->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= job->count) return;
      (*job->fn)(i);
    }
  }

  void WorkerLoop() {
    PoolMetrics& metrics = PoolMetrics::Get();
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      work_cv_.wait(lock, [this] { return !queue_.empty(); });
      Job* job = queue_.front();
      ++job->active;
      if (--job->helper_budget == 0) {
        queue_.pop_front();
        job->queued = false;
      }
      const int64_t publish_ns = job->publish_ns;
      lock.unlock();
      metrics.queue_wait.Observe(
          static_cast<double>(obs::MonotonicNowNs() - publish_ns) * 1e-9);
      metrics.active.Add(1.0);
      Drain(job);
      metrics.active.Add(-1.0);
      lock.lock();
      if (--job->active == 0) done_cv_.notify_all();
    }
  }

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::deque<Job*> queue_;  // jobs still accepting helpers
  // Published/executed job counts share mu_ with the deque so Stats()
  // sees one consistent world: executed <= generation and
  // queued <= generation - executed hold for every interleaving.
  uint64_t jobs_published_ = 0;
  uint64_t jobs_executed_ = 0;
};

WorkerPool::WorkerPool()
    // The Impl is leaked alongside the pool itself: workers park on its
    // queue forever, so it must outlive every static destructor.
    : impl_(new Impl(ResolveParallelism(0) - 1)),
      num_workers_(ResolveParallelism(0) - 1) {}

WorkerPool& WorkerPool::Global() {
  static WorkerPool* pool = new WorkerPool();  // leaked; LSan-reachable
  return *pool;
}

PoolStats WorkerPool::Stats() const { return impl_->StatsLocked(); }

void WorkerPool::ParallelFor(int count, int max_parallelism,
                             const std::function<void(int)>& fn) {
  if (count <= 0) return;
  PoolMetrics& metrics = PoolMetrics::Get();
  metrics.regions.Increment();
  metrics.tasks.Add(static_cast<uint64_t>(count));
  int width = max_parallelism < count ? max_parallelism : count;
  if (width > num_workers_ + 1) width = num_workers_ + 1;
  if (width <= 1) {
    for (int i = 0; i < count; ++i) fn(i);
    return;
  }
  Job job;
  job.fn = &fn;
  job.count = count;
  job.helper_budget = width - 1;
  obs::ScopedTimer timer(metrics.run);
  impl_->Run(&job);
}

}  // namespace pie
