// The estimation engine's kernel abstraction.
//
// The paper derives a *family* of per-key optimal unbiased estimators, one
// per combination of target function (max, OR, min, l-th largest), sampling
// scheme (weight-oblivious Poisson vs weighted PPS), and information regime
// (seeds known vs unknown). src/core/ implements each as its own class with
// its own constructor and Estimate signature; the engine wraps them behind
// one interface so the aggregate layer, benchmarks, and applications can
// drive any of them generically and in batches.
//
// An EstimatorKernel estimates one key's contribution f(v) from an Outcome
// (the sampled values plus the inclusion probabilities / thresholds and
// seeds the regime allows the estimator to read). Kernels are immutable
// after construction: all coefficient tables (e.g. the Theorem 4.2 alpha
// recursion) are computed once, so sharing one kernel across millions of
// keys amortizes the setup the free-function API redid per call site.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sampling/poisson.h"
#include "util/check.h"
#include "util/random.h"
#include "util/status.h"

namespace pie {

namespace obs {
class Counter;  // obs/metrics.h
}

/// Target function f(v_1, ..., v_r) estimated by a kernel.
enum class Function {
  kMax,
  kOr,          ///< Boolean OR over a binary domain
  kMin,
  kLthLargest,  ///< l-th largest entry (l = 1 is max, l = r is min)
};

/// How each instance's entry was sampled.
enum class Scheme {
  kOblivious,  ///< fixed inclusion probability p_i, independent of v_i
  kPps,        ///< weighted PPS: sampled iff v_i >= u_i * tau*_i
};

/// What the estimator may read besides the sampled values. For the
/// oblivious scheme the sampled set is full information, so the regime is
/// immaterial and normalized to kKnownSeeds on lookup.
enum class Regime {
  kKnownSeeds,    ///< seed vector visible (missing entries bound the value)
  kUnknownSeeds,  ///< only the sampled set and values are visible
};

/// Which estimator of the family to use; the paper's L and U variants are
/// Pareto-optimal and incomparable, HT is the classical baseline.
enum class Family {
  kHt,     ///< Horvitz-Thompson (all-or-nothing information)
  kL,      ///< dense-first order-optimal estimator (max^(L), OR^(L), ...)
  kU,      ///< sparse-first partition-optimal estimator (max^(U), OR^(U))
  kUAsym,  ///< asymmetric Pareto-optimal variant (max^(Uas), r = 2)
};

const char* FunctionToString(Function f);
const char* SchemeToString(Scheme s);
const char* RegimeToString(Regime r);
const char* FamilyToString(Family f);

/// Registry / engine key: which estimator to instantiate.
struct KernelSpec {
  Function function = Function::kMax;
  Scheme scheme = Scheme::kOblivious;
  Regime regime = Regime::kKnownSeeds;
  Family family = Family::kL;
  int l = 1;  ///< order statistic, used only by kLthLargest

  /// "max/pps/known-seeds/L"-style description.
  std::string ToString() const;

  friend bool operator==(const KernelSpec& a, const KernelSpec& b) {
    return a.function == b.function && a.scheme == b.scheme &&
           a.regime == b.regime && a.family == b.family && a.l == b.l;
  }
};

/// Per-instance sampler configuration a kernel is instantiated for:
/// inclusion probabilities p_i (oblivious) or PPS thresholds tau*_i (pps).
/// quad_tol is the adaptive-quadrature tolerance used by kernels whose
/// closed-form variance requires seed integrals (known-seeds weighted max).
struct SamplingParams {
  std::vector<double> per_entry;
  double quad_tol = 1e-10;

  SamplingParams() = default;
  SamplingParams(std::initializer_list<double> entries)
      : per_entry(entries) {}
  explicit SamplingParams(std::vector<double> entries, double tol = 1e-10)
      : per_entry(std::move(entries)), quad_tol(tol) {}

  int r() const { return static_cast<int>(per_entry.size()); }
  /// True when every entry equals the first (uniform p or uniform tau).
  bool IsUniform() const;
};

/// One key's sampling outcome, tagged by scheme. Exactly one of the two
/// payloads is meaningful; both are kept as members (not a variant) so
/// batch slots can be overwritten in place without reallocating the inner
/// vectors.
struct Outcome {
  Scheme scheme = Scheme::kOblivious;
  ObliviousOutcome oblivious;
  PpsOutcome pps;

  static Outcome FromOblivious(ObliviousOutcome o) {
    Outcome out;
    out.scheme = Scheme::kOblivious;
    out.oblivious = std::move(o);
    return out;
  }
  static Outcome FromPps(PpsOutcome o) {
    Outcome out;
    out.scheme = Scheme::kPps;
    out.pps = std::move(o);
    return out;
  }
};

/// Borrowed columnar (struct-of-arrays) view of a batch of same-shaped
/// outcomes: `size` keys, each a width-`r` outcome of one scheme. The four
/// slabs are row-major [size][r] -- row i holds key i's per-entry data at a
/// stable index, so kernel-level batch loops stream contiguous memory
/// instead of chasing per-key vectors:
///   param   : inclusion probabilities p_i (oblivious) or thresholds tau_i
///   seed    : seeds u_i (PPS layouts only; nullptr for oblivious)
///   sampled : 1 iff entry is in the sample
///   value   : v_i, meaningful only where sampled
/// Produced by OutcomeBatch::view() (engine.h); consumed by EstimateMany.
struct BatchView {
  Scheme scheme = Scheme::kOblivious;
  int r = 0;
  int size = 0;
  const double* param = nullptr;
  const double* seed = nullptr;
  const uint8_t* sampled = nullptr;
  const double* value = nullptr;

  const double* param_row(int i) const {
    PIE_DCHECK(i >= 0 && i < size);
    return param + static_cast<size_t>(i) * static_cast<size_t>(r);
  }
  const double* seed_row(int i) const {
    PIE_DCHECK(i >= 0 && i < size);
    PIE_DCHECK(seed != nullptr);
    return seed + static_cast<size_t>(i) * static_cast<size_t>(r);
  }
  const uint8_t* sampled_row(int i) const {
    PIE_DCHECK(i >= 0 && i < size);
    return sampled + static_cast<size_t>(i) * static_cast<size_t>(r);
  }
  const double* value_row(int i) const {
    PIE_DCHECK(i >= 0 && i < size);
    return value + static_cast<size_t>(i) * static_cast<size_t>(r);
  }

  /// Sub-range view of rows [begin, begin + count): same slabs, offset
  /// pointers. Lets drivers chunk one batch (e.g. fixed-size accumulation
  /// buffers) without copying.
  BatchView Slice(int begin, int count) const {
    PIE_DCHECK(begin >= 0 && count >= 0 && begin + count <= size);
    BatchView out = *this;
    const size_t offset =
        static_cast<size_t>(begin) * static_cast<size_t>(r);
    out.size = count;
    out.param += offset;
    if (out.seed != nullptr) out.seed += offset;
    out.sampled += offset;
    out.value += offset;
    return out;
  }
};

/// Materializes row i of a view as a scalar Outcome (reusing out's inner
/// vectors' capacity) -- the bridge from columnar rows back to the scalar
/// Estimate API, used by the default EstimateMany loop.
void ExtractRow(const BatchView& batch, int i, Outcome* out);

/// Aborts unless the view's layout matches what a kernel was constructed
/// for; kernel EstimateMany overrides call this once per batch in place of
/// the per-outcome scheme/width checks of the scalar path.
void CheckBatchLayout(const BatchView& batch, Scheme scheme, int r);

/// Estimates one key's f(v) contribution from an outcome. Thread-safe after
/// construction (estimation is const and touches no shared mutable state).
class EstimatorKernel {
 public:
  virtual ~EstimatorKernel() = default;

  /// Unbiased estimate of f(v) from one outcome. The outcome's scheme must
  /// match the kernel's spec.
  virtual double Estimate(const Outcome& outcome) const = 0;

  /// Estimates every row of a columnar batch into out[0..batch.size).
  /// The base implementation materializes each row and loops the scalar
  /// Estimate; hot kernels override it with tight loops over the slabs.
  /// Overrides MUST be bitwise-identical to the scalar path (the registry
  /// sweep in tests/batch_equivalence_test.cc enforces this), so batched
  /// drivers inherit the determinism guarantees of the per-key API.
  /// A kernel should override EstimateMany when per-key estimation is cheap
  /// enough that virtual dispatch, per-outcome layout checks, and per-key
  /// vector indirection dominate (closed-form r = 2 estimators, HT, the
  /// Theorem 4.2 recursion); kernels whose per-key cost is inherently large
  /// (quadrature, enumeration) gain nothing from an override.
  virtual void EstimateMany(BatchView batch, double* out) const;

  /// Unbiased estimate of f(v)^2 from one outcome: E over outcomes of the
  /// returned value equals f(v)^2 for every data vector. Together with the
  /// point estimate this yields the unbiased per-key variance estimate
  ///   Var-hat = Estimate(o)^2 - EstimateSecondMoment(o),
  /// since E[Estimate^2] - f^2 = Var[Estimate] -- the accuracy layer sums
  /// Var-hat over keys to attach honest error bars to sum aggregates
  /// (src/accuracy/).
  ///
  /// The base implementation covers every weight-oblivious kernel exactly:
  /// the sampled set is value-independent, and all primitive targets
  /// commute with squaring on nonnegative data (max(v.^2) = max(v)^2,
  /// likewise min / l-th largest / binary OR), so estimating the squared
  /// data vector through the same outcome is unbiased for f(v)^2. PPS
  /// kernels (sampling depends on the values, so squaring breaks the
  /// outcome correspondence) MUST override; the built-ins use
  /// identifiable-event inverse-probability forms (core/ht.h,
  /// core/min_weighted.h) and the OR binary identity f^2 = f.
  virtual double EstimateSecondMoment(const Outcome& outcome) const;

  /// Batched second moments into out[0..batch.size), mirroring
  /// EstimateMany. The base implementation materializes rows onto the
  /// scalar EstimateSecondMoment; hot kernels override with slab loops.
  /// Overrides MUST be bitwise-identical to the scalar path (enforced by
  /// the registry sweep in tests/accuracy_test.cc).
  virtual void EstimateSecondMomentMany(BatchView batch, double* out) const;

  /// Fused single-pass batch scan: est[i] receives the point estimate and
  /// var[i] the unbiased per-key variance estimate
  ///   var[i] = est[i]^2 - second_moment[i]
  /// for every row. This is the accuracy layer's hot call: a with-variance
  /// scan pays for the row data once instead of driving EstimateMany and
  /// EstimateSecondMomentMany as two separate slab passes.
  ///
  /// The base implementation bridges the two batched calls (second moments
  /// are computed into var, then combined in place), so every kernel
  /// serves the fused API. Hot kernels override it with single-load slab
  /// loops that share the inline EstimateRow cores; overrides MUST stay
  /// bitwise-identical to the two-pass bridge (same estimates, same
  /// e*e - second combination), which the registry sweep in
  /// tests/parallel_scan_test.cc enforces.
  virtual void EstimateWithVarianceMany(BatchView batch, double* est,
                                        double* var) const;

  /// Exact variance on a data vector, where core provides a closed form /
  /// enumeration; Unimplemented otherwise.
  virtual Result<double> Variance(
      const std::vector<double>& /*values*/) const {
    return Status::Unimplemented("no exact variance for kernel " + name());
  }

  /// Human-readable kernel name ("max^(L) oblivious r=2", ...).
  virtual std::string name() const = 0;

  /// Per-spec scan counters (pie_kernel_scans_total / pie_kernel_rows_total
  /// labeled by the canonical function/scheme/regime/family), attached by
  /// KernelRegistry::Create after construction; nullptr on directly
  /// constructed kernels. Scan drivers bump them once per batch pass --
  /// never per key -- and estimator math never reads them, so the counters
  /// cannot change any output bit.
  obs::Counter* obs_scans = nullptr;
  obs::Counter* obs_rows = nullptr;
};

/// Ground truth f(v) for a kernel spec (dispatches to core/functions).
double TrueValue(const KernelSpec& spec, const std::vector<double>& values);

/// Draws one outcome of `values` under the spec'd scheme: SampleOblivious
/// for kOblivious (params = inclusion probabilities), SamplePps for kPps
/// (params = thresholds). Shared by the Monte Carlo test fixture and the
/// benchmarks.
Outcome SampleOutcome(Scheme scheme, const SamplingParams& params,
                      const std::vector<double>& values, Rng& rng);

}  // namespace pie
