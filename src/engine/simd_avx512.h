// Hand-written AVX-512F helpers for the partitioned kernel paths: native
// gather/scatter for the bucket index moves and mask-compress for the
// log-regime compaction -- the loops the AVX2 tier leaves scalar (AVX2 has
// no scatter and no compress, and GCC will not auto-vectorize an
// index-indirect store).
//
// Implemented in engine/simd_avx512.cc, the ONE translation unit compiled
// with -mavx512f (PIE_SIMD_AVX512); callers guard every call with
// UseAvx512Tier() (engine/simd_dispatch.h), so the instructions never
// execute on machines whose CPUID lacks avx512f.
//
// Bitwise contract: every helper is pure data movement or predicate
// evaluation -- doubles are gathered, scattered, and compress-stored
// untouched, and the compaction comparisons use ordered-quiet predicates
// matching the scalar !(a <= b)-style forms -- so the AVX-512 tier is
// bit-identical to the generic tier on every input (enforced by
// tests/simd_dispatch_test.cc and the registry-wide sweeps).

#pragma once

#include <cstdint>

namespace pie {
namespace avx512 {

/// Gathers column `col` of the row-major slab (r doubles per row) for the
/// `n` rows in `idx` into dense `out` (vgatherdpd, 8 rows per step).
void GatherColumn(const double* slab, int r, int col, const uint16_t* idx,
                  int n, double* out);

/// Scatters dense `in` back to the row-indexed slots of `out`
/// (vscatterdpd). Indices must be distinct, as partition buckets are.
void Scatter(const double* in, const uint16_t* idx, int n, double* out);

/// Writes `v` to every row slot of `out` named by `idx`.
void ScatterConstant(double v, const uint16_t* idx, int n, double* out);

/// The branch-free log-regime compaction of EvalSortedDense as mask
/// compares + vpcompressq: appends to idx29 the lanes with
/// needs_log && hi <= tl and to idx30 the lanes with needs_log && hi > tl,
/// where needs_log = !(hi <= 0) && !(lo >= tl) && !(hi >= th), preserving
/// lane order (so the index sequences are identical to the generic loop's).
/// n <= kPartitionBlockRows.
void CompactLogRegimes(const double* hi, const double* lo, const double* th,
                       const double* tl, int n, uint16_t* idx29, int* n29,
                       uint16_t* idx30, int* n30);

}  // namespace avx512
}  // namespace pie
