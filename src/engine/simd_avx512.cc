// AVX-512F implementations of the partition helpers (see simd_avx512.h).
// This is the only translation unit compiled with -mavx512f; it must stay
// free of inline'able calls INTO it from uncompiled-for-avx512 TUs (plain
// out-of-line functions only) and uses AVX-512F instructions exclusively
// (no VL/BW/DQ/VBMI2), so the dispatch floor is a single CPUID feature.

#include "engine/simd_avx512.h"

#ifdef PIE_SIMD_AVX512

#include <immintrin.h>

#include "engine/pattern_partition.h"

namespace pie {
namespace avx512 {

namespace {

/// Loads 8 uint16 row indices and widens to the epi32 lane offsets
/// idx[k] * r + col for vgatherdpd/vscatterdpd.
inline __m256i LaneOffsets(const uint16_t* idx, int r, int col) {
  const __m128i raw =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx));
  const __m256i wide = _mm256_cvtepu16_epi32(raw);
  return _mm256_add_epi32(_mm256_mullo_epi32(wide, _mm256_set1_epi32(r)),
                          _mm256_set1_epi32(col));
}

}  // namespace

void GatherColumn(const double* slab, int r, int col, const uint16_t* idx,
                  int n, double* out) {
  int k = 0;
  for (; k + 8 <= n; k += 8) {
    const __m512d v =
        _mm512_i32gather_pd(LaneOffsets(idx + k, r, col), slab, 8);
    _mm512_storeu_pd(out + k, v);
  }
  for (; k < n; ++k) {
    out[k] = slab[static_cast<size_t>(idx[k]) * static_cast<size_t>(r) + col];
  }
}

void Scatter(const double* in, const uint16_t* idx, int n, double* out) {
  int k = 0;
  for (; k + 8 <= n; k += 8) {
    _mm512_i32scatter_pd(out, LaneOffsets(idx + k, 1, 0),
                         _mm512_loadu_pd(in + k), 8);
  }
  for (; k < n; ++k) out[idx[k]] = in[k];
}

void ScatterConstant(double v, const uint16_t* idx, int n, double* out) {
  const __m512d vv = _mm512_set1_pd(v);
  int k = 0;
  for (; k + 8 <= n; k += 8) {
    _mm512_i32scatter_pd(out, LaneOffsets(idx + k, 1, 0), vv, 8);
  }
  for (; k < n; ++k) out[idx[k]] = v;
}

void CompactLogRegimes(const double* hi, const double* lo, const double* th,
                       const double* tl, int n, uint16_t* idx29, int* n29,
                       uint16_t* idx30, int* n30) {
  // vpcompressq writes 64-bit lanes; AVX-512F has no 256-bit epi32 or any
  // epi16 compress (those need VL / VBMI2), so compress lane numbers as
  // epi64 into a scratch block and narrow to the uint16 index arrays once
  // at the end (at most n conversions).
  int64_t tmp29[kPartitionBlockRows];
  int64_t tmp30[kPartitionBlockRows];
  int c29 = 0;
  int c30 = 0;
  const __m512d zero = _mm512_setzero_pd();
  __m512i lanes = _mm512_setr_epi64(0, 1, 2, 3, 4, 5, 6, 7);
  const __m512i step = _mm512_set1_epi64(8);
  int k = 0;
  for (; k + 8 <= n; k += 8) {
    const __m512d vhi = _mm512_loadu_pd(hi + k);
    const __m512d vlo = _mm512_loadu_pd(lo + k);
    const __m512d vth = _mm512_loadu_pd(th + k);
    const __m512d vtl = _mm512_loadu_pd(tl + k);
    // Ordered-quiet predicates: false on NaN, exactly like the scalar
    // (a <= b) / (a >= b) comparisons these replicate.
    const unsigned is_zero =
        _mm512_cmp_pd_mask(vhi, zero, _CMP_LE_OQ);       // hi <= 0
    const unsigned low_certain =
        _mm512_cmp_pd_mask(vlo, vtl, _CMP_GE_OQ);        // lo >= tl
    const unsigned high_certain =
        _mm512_cmp_pd_mask(vhi, vth, _CMP_GE_OQ);        // hi >= th
    const unsigned is29 = _mm512_cmp_pd_mask(vhi, vtl, _CMP_LE_OQ);
    const unsigned needs = ~(is_zero | low_certain | high_certain) & 0xffu;
    const unsigned m29 = needs & is29;
    const unsigned m30 = needs & ~is29 & 0xffu;
    _mm512_mask_compressstoreu_epi64(tmp29 + c29,
                                     static_cast<__mmask8>(m29), lanes);
    _mm512_mask_compressstoreu_epi64(tmp30 + c30,
                                     static_cast<__mmask8>(m30), lanes);
    c29 += __builtin_popcount(m29);
    c30 += __builtin_popcount(m30);
    lanes = _mm512_add_epi64(lanes, step);
  }
  for (; k < n; ++k) {  // scalar tail, same predicates
    const bool needs_log =
        !(hi[k] <= 0) && !(lo[k] >= tl[k]) && !(hi[k] >= th[k]);
    const bool is29 = hi[k] <= tl[k];
    if (needs_log && is29) tmp29[c29++] = k;
    if (needs_log && !is29) tmp30[c30++] = k;
  }
  for (int i = 0; i < c29; ++i) idx29[i] = static_cast<uint16_t>(tmp29[i]);
  for (int i = 0; i < c30; ++i) idx30[i] = static_cast<uint16_t>(tmp30[i]);
  *n29 = c29;
  *n30 = c30;
}

}  // namespace avx512
}  // namespace pie

#endif  // PIE_SIMD_AVX512
