// Deterministic multi-threaded scan driver for columnar batches.
//
// The per-key estimators are embarrassingly parallel, so a sum aggregate
// over a BatchView should scale across cores -- but serving paths promise
// bitwise-reproducible results, which naive parallel accumulation (sum
// order dependent on thread completion) breaks. This driver restores both
// properties at once:
//
//  * the view is split into FIXED-size chunks of kScanChunkRows rows
//    (independent of the thread count), and each chunk's partial is
//    computed by exactly one worker with the kernel's fused
//    EstimateWithVarianceMany pass, rows accumulated in row order;
//  * the per-chunk partials are combined after the join by a FIXED-SHAPE
//    pairwise (tree) reduction over the chunk index -- the shape depends
//    only on the number of chunks, never on which thread produced which
//    partial or in what order workers finished.
//
// Result: for a given batch the output bits are a function of the chunk
// size alone. One thread, two threads, or eight produce identical bytes,
// so callers (EstimateSum, AccuracyAccumulator, the store's QueryService
// scans) can pick a thread count purely on throughput grounds.

#pragma once

#include <cstdint>

#include "engine/kernel.h"
#include "util/stats.h"

namespace pie {

/// Rows per scan chunk: the unit of work distribution AND the accumulation
/// granularity the deterministic guarantee is defined over. Shared by every
/// scan driver (EstimateSum, AccuracyAccumulator) so their reductions stay
/// bitwise-comparable.
constexpr int kScanChunkRows = 256;

/// Mergeable partial of one fused estimate+variance scan: the running sum,
/// the summed per-key variance estimates, and the per-key estimate moments
/// (Welford/Chan, for spread diagnostics). Merge order is the tree's
/// business; Merge itself is plain component-wise combination.
struct ScanPartial {
  double sum = 0.0;
  double variance = 0.0;
  MomentAccumulator per_key;

  void Merge(const ScanPartial& o) {
    sum += o.sum;
    variance += o.variance;
    per_key.Merge(o.per_key);
  }
};

struct ScanOptions {
  /// Parallelism cap for this scan; 1 scans inline on the calling thread,
  /// 0 picks the PIE_THREADS environment variable when set, else clamped
  /// hardware_concurrency (engine/worker_pool.h). Parallel scans run on
  /// the process-wide persistent WorkerPool, whose size is the global
  /// ceiling. The result bits never depend on this value.
  int num_threads = 1;
  /// When false the scan skips the variance pass entirely (plain
  /// EstimateMany per chunk); ScanPartial::variance stays 0.
  bool with_variance = true;
};

/// Scans every row of `view` with the kernel and returns the tree-reduced
/// totals. Deterministic: bitwise-identical output for any num_threads.
ScanPartial ScanBatch(const EstimatorKernel& kernel, BatchView view,
                      const ScanOptions& options);

/// Point-only scan: the sum of per-row estimates under the same chunking
/// and tree reduction (bitwise identical to ScanBatch(...).sum with any
/// with_variance setting), without maintaining moments. The engine's
/// EstimateSum routes here.
double ScanSum(const EstimatorKernel& kernel, BatchView view,
               int num_threads = 1);

/// The fixed-shape pairwise reduction the scans use, exposed for reuse by
/// other chunked drivers (and tests): merges partials[begin..end) into
/// partials[begin] by combining strided pairs -- (0,1),(2,3),... then
/// (0,2),(4,6),... -- so the addition tree depends only on the element
/// count. Merge(T&, const T&) via a member or free overload.
template <typename T>
void TreeReduce(T* partials, int count) {
  for (int stride = 1; stride < count; stride *= 2) {
    for (int i = 0; i + stride < count; i += 2 * stride) {
      partials[i].Merge(partials[i + stride]);
    }
  }
}

}  // namespace pie
