// Batched estimation engine (the entry point the aggregate layer drives).
//
// Two costs dominated the old free-function call sites:
//  * per-key estimator construction -- e.g. the Theorem 4.2 coefficient
//    recursion is O(r^2) and the bottom-k dominance path rebuilt its
//    estimators for every key;
//  * per-key allocation of outcome vectors.
// The engine removes both: Kernel() memoizes constructed kernels by
// (spec, params) so coefficient/quadrature tables are computed once, and
// OutcomeBatch recycles outcome slots (including their inner vectors'
// capacity) across Clear() calls, so a steady-state scan allocates nothing.
//
// Typical use:
//   auto& engine = EstimationEngine::Global();
//   KernelHandle ht = engine.Kernel(ht_spec, params).value();
//   KernelHandle l = engine.Kernel(l_spec, params).value();
//   batch.Clear();
//   for (key : keys) MakePairOutcomeInto(s1, s2, key, &batch.AddPps());
//   double ht_sum = EstimateSum(*ht, batch);  // one pass per kernel,
//   double l_sum = EstimateSum(*l, batch);    // outcomes assembled once

#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "engine/kernel.h"
#include "engine/registry.h"
#include "util/status.h"

namespace pie {

/// A reusable vector of outcome slots. Clear() resets the logical size but
/// keeps every slot (and the capacity of its inner vectors) alive, so
/// refilling the batch for the next scan reuses the same memory.
class OutcomeBatch {
 public:
  void Clear() { size_ = 0; }
  int size() const { return static_cast<int>(size_); }
  bool empty() const { return size_ == 0; }

  /// Returns the next slot, tagged for the given scheme. The caller
  /// overwrites the payload fields; stale data from a previous use of the
  /// slot is the caller's to overwrite (assign every field you read).
  Outcome& Add(Scheme scheme);

  /// Convenience: next slot tagged kPps, returning the payload directly.
  PpsOutcome& AddPps() { return Add(Scheme::kPps).pps; }
  /// Convenience: next slot tagged kOblivious, returning the payload.
  ObliviousOutcome& AddOblivious() {
    return Add(Scheme::kOblivious).oblivious;
  }

  const Outcome& operator[](int i) const {
    return slots_[static_cast<size_t>(i)];
  }

 private:
  std::vector<Outcome> slots_;
  size_t size_ = 0;
};

/// Applies the kernel to every outcome, appending to `out` (cleared first;
/// capacity is reused across calls).
void EstimateBatch(const EstimatorKernel& kernel, const OutcomeBatch& batch,
                   std::vector<double>* out);

/// Sum of per-outcome estimates: the per-key contributions of a sum
/// aggregate (Section 7's sum-of-f(v) queries).
double EstimateSum(const EstimatorKernel& kernel, const OutcomeBatch& batch);

/// A shared, immutable kernel handle. Callers hold it for as long as they
/// estimate with the kernel; the engine's cache holds another reference, so
/// cache eviction never invalidates a handle in use.
using KernelHandle = std::shared_ptr<const EstimatorKernel>;

/// Creates kernels through the registry and memoizes them by
/// (spec, params), so the per-(function, scheme, regime, family, config)
/// setup work -- coefficient recursions, prefix-sum tables -- happens once
/// per engine rather than once per call or per key. Thread-safe. Cache
/// lookups are allocation-free on hits. The cache is bounded: workloads
/// that sweep unboundedly many distinct params (e.g. data-dependent
/// thresholds in a long-running service) cannot grow it past
/// kMaxCachedKernels -- it is reset wholesale and refilled, while
/// outstanding KernelHandles keep their kernels alive.
class EstimationEngine {
 public:
  /// Cache capacity; crossing it clears and refills the cache (simple and
  /// O(1) amortized; an LRU would be overkill for kernel-sized objects).
  static constexpr int kMaxCachedKernels = 1024;

  EstimationEngine() = default;
  EstimationEngine(const EstimationEngine&) = delete;
  EstimationEngine& operator=(const EstimationEngine&) = delete;

  /// A process-wide engine for library-internal call sites (the aggregate
  /// layer). Sweeps over many distinct params (e.g. parameter searches)
  /// should prefer a local engine or KernelRegistry::Create to avoid
  /// churning the shared cache.
  static EstimationEngine& Global();

  /// The memoized kernel for (spec, params); created on first use.
  Result<KernelHandle> Kernel(const KernelSpec& spec,
                              const SamplingParams& params);

  /// Convenience: estimate a whole batch with the memoized kernel.
  Result<double> EstimateSum(const KernelSpec& spec,
                             const SamplingParams& params,
                             const OutcomeBatch& batch);
  Status EstimateBatch(const KernelSpec& spec, const SamplingParams& params,
                       const OutcomeBatch& batch, std::vector<double>* out);

  /// Number of distinct kernels currently cached (telemetry/tests).
  int cache_size() const;

 private:
  struct CacheKey {
    int function;
    int scheme;
    int regime;
    int family;
    int l;
    std::vector<double> per_entry;
    double quad_tol;
  };
  /// Borrowed view of a lookup key; avoids copying per_entry on hits.
  struct CacheQuery {
    const KernelSpec* spec;
    const SamplingParams* params;
  };
  struct CacheKeyLess {
    using is_transparent = void;
    bool operator()(const CacheKey& a, const CacheKey& b) const;
    bool operator()(const CacheKey& a, const CacheQuery& b) const;
    bool operator()(const CacheQuery& a, const CacheKey& b) const;
  };

  mutable std::mutex mu_;
  std::map<CacheKey, KernelHandle, CacheKeyLess> cache_;
};

}  // namespace pie
