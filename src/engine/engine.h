// Batched estimation engine (the entry point the aggregate and store
// layers drive).
//
// Three costs dominated the old per-key call sites:
//  * per-key estimator construction -- e.g. the Theorem 4.2 coefficient
//    recursion is O(r^2) and the bottom-k dominance path rebuilt its
//    estimators for every key;
//  * per-key allocation of outcome vectors;
//  * per-key virtual dispatch and pointer chasing -- one virtual
//    Estimate(const Outcome&) call per key over array-of-structs slots.
// The engine removes all three: Kernel() memoizes constructed kernels by
// (spec, params) so coefficient/quadrature tables are computed once;
// OutcomeBatch stores outcomes columnar (one value/threshold/seed/
// sampled-mask slab each, reused across Clear() calls) so a steady-state
// scan allocates nothing; and EstimateBatch/EstimateSum drive the kernel's
// EstimateMany -- one virtual call per batch, with the hot kernels looping
// branch-light over the slabs (see kernel.h).
//
// Typical use:
//   auto& engine = EstimationEngine::Global();
//   KernelHandle ht = engine.Kernel(ht_spec, params).value();
//   KernelHandle l = engine.Kernel(l_spec, params).value();
//   batch.Reset(Scheme::kPps, /*r=*/2);           // fix the row layout
//   for (key : keys) AppendPairOutcome(s1, s2, key, &batch);
//   double ht_sum = EstimateSum(*ht, batch);  // one EstimateMany pass per
//   double l_sum = EstimateSum(*l, batch);    // kernel, slabs assembled once

#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "engine/kernel.h"
#include "engine/registry.h"
#include "util/status.h"

namespace pie {

/// Columnar (struct-of-arrays) storage for a batch of same-shaped
/// outcomes. Reset(scheme, r) fixes the row layout; every appended row is
/// one key's width-r outcome, stored across four flat slabs (see BatchView
/// in kernel.h) at a stable per-key index. Clear() resets the logical size
/// but keeps the slabs' capacity, so refilling the batch for the next scan
/// reuses the same memory -- a steady-state scan allocates nothing.
class OutcomeBatch {
 public:
  OutcomeBatch() = default;

  /// Fixes the row layout: scheme (which slabs exist -- oblivious rows
  /// have no seed slab) and width r. Drops all rows; slab capacity is
  /// kept.
  void Reset(Scheme scheme, int r);

  /// Drops all rows, keeping layout and slab capacity.
  void Clear() { size_ = 0; }

  Scheme scheme() const { return scheme_; }
  int r() const { return r_; }
  int size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Appends a row and returns its stable index. The row's slab content is
  /// unspecified (stale data from a previous use of the storage); the
  /// caller must write every field through the row accessors below.
  int AppendRow();

  /// Appends a row copied from a scalar outcome (the bridge from the
  /// sampling API into the columnar layout; the outcome must match the
  /// batch's scheme and width). Returns the row index.
  int Append(const ObliviousOutcome& outcome);
  int Append(const PpsOutcome& outcome);

  // Row accessors: r-element row i of each slab, debug bounds-checked.
  // param is p_i for oblivious layouts and tau_i for PPS layouts;
  // seed_row is only valid for PPS layouts.
  double* param_row(int i) { return row(param_, i); }
  double* seed_row(int i) {
    PIE_DCHECK(scheme_ == Scheme::kPps);
    return row(seed_, i);
  }
  uint8_t* sampled_row(int i) { return row(sampled_, i); }
  double* value_row(int i) { return row(value_, i); }
  const double* param_row(int i) const { return row(param_, i); }
  const double* seed_row(int i) const {
    PIE_DCHECK(scheme_ == Scheme::kPps);
    return row(seed_, i);
  }
  const uint8_t* sampled_row(int i) const { return row(sampled_, i); }
  const double* value_row(int i) const { return row(value_, i); }

  /// Borrowed view of one row (debug bounds-checked): pointers into the
  /// slabs plus the layout, the per-key unit of the columnar API.
  struct ConstRow {
    Scheme scheme;
    int r;
    const double* param;
    const double* seed;  ///< nullptr for oblivious layouts
    const uint8_t* sampled;
    const double* value;
  };
  ConstRow operator[](int i) const {
    PIE_DCHECK(i >= 0 && i < size_);
    return {scheme_,        r_,           param_row(i),
            scheme_ == Scheme::kPps ? seed_row(i) : nullptr,
            sampled_row(i), value_row(i)};
  }

  /// Borrowed columnar view of the whole batch, the input to
  /// EstimatorKernel::EstimateMany. Invalidated by any append or Reset.
  BatchView view() const;

  /// Materializes row i as a scalar Outcome, reusing out's inner vectors'
  /// capacity (the bridge back to the scalar Estimate API).
  void ExtractRowInto(int i, Outcome* out) const;

 private:
  template <typename T>
  T* row(std::vector<T>& slab, int i) {
    PIE_DCHECK(i >= 0 && i < size_);
    return slab.data() + static_cast<size_t>(i) * static_cast<size_t>(r_);
  }
  template <typename T>
  const T* row(const std::vector<T>& slab, int i) const {
    PIE_DCHECK(i >= 0 && i < size_);
    return slab.data() + static_cast<size_t>(i) * static_cast<size_t>(r_);
  }

  Scheme scheme_ = Scheme::kOblivious;
  int r_ = 0;
  int size_ = 0;
  std::vector<double> param_;
  std::vector<double> seed_;
  std::vector<double> value_;
  std::vector<uint8_t> sampled_;
};

/// Applies the kernel to every row via one EstimateMany call, replacing
/// `out`'s contents (capacity is reused across calls).
void EstimateBatch(const EstimatorKernel& kernel, const OutcomeBatch& batch,
                   std::vector<double>* out);

/// Sum of per-row estimates: the per-key contributions of a sum aggregate
/// (Section 7's sum-of-f(v) queries). Routed through the deterministic
/// scan driver (engine/parallel_scan.h): fixed-size chunks accumulated in
/// row order, combined by a fixed-shape pairwise tree -- so the sum's bits
/// never depend on num_threads, and multi-threaded callers scale the scan
/// across cores without perturbing results. Batches of at most one chunk
/// (256 rows) reduce to the plain row-order sum.
double EstimateSum(const EstimatorKernel& kernel, const OutcomeBatch& batch,
                   int num_threads = 1);

/// A shared, immutable kernel handle. Callers hold it for as long as they
/// estimate with the kernel; the engine's cache holds another reference, so
/// cache eviction never invalidates a handle in use.
using KernelHandle = std::shared_ptr<const EstimatorKernel>;

/// Creates kernels through the registry and memoizes them by
/// (spec, params), so the per-(function, scheme, regime, family, config)
/// setup work -- coefficient recursions, prefix-sum tables -- happens once
/// per engine rather than once per call or per key. Thread-safe. Cache
/// lookups are allocation-free on hits. The cache is bounded: workloads
/// that sweep unboundedly many distinct params (e.g. data-dependent
/// thresholds in a long-running service) cannot grow it past
/// kMaxCachedKernels -- it is reset wholesale and refilled, while
/// outstanding KernelHandles keep their kernels alive.
class EstimationEngine {
 public:
  /// Cache capacity; crossing it clears and refills the cache (simple and
  /// O(1) amortized; an LRU would be overkill for kernel-sized objects).
  static constexpr int kMaxCachedKernels = 1024;

  EstimationEngine() = default;
  EstimationEngine(const EstimationEngine&) = delete;
  EstimationEngine& operator=(const EstimationEngine&) = delete;

  /// A process-wide engine for library-internal call sites (the aggregate
  /// layer). Sweeps over many distinct params (e.g. parameter searches)
  /// should prefer a local engine or KernelRegistry::Create to avoid
  /// churning the shared cache.
  static EstimationEngine& Global();

  /// The memoized kernel for (spec, params); created on first use.
  Result<KernelHandle> Kernel(const KernelSpec& spec,
                              const SamplingParams& params);

  /// Convenience: estimate a whole batch with the memoized kernel.
  Result<double> EstimateSum(const KernelSpec& spec,
                             const SamplingParams& params,
                             const OutcomeBatch& batch);
  Status EstimateBatch(const KernelSpec& spec, const SamplingParams& params,
                       const OutcomeBatch& batch, std::vector<double>* out);

  /// Number of distinct kernels currently cached (telemetry/tests).
  int cache_size() const;

 private:
  struct CacheKey {
    int function;
    int scheme;
    int regime;
    int family;
    int l;
    std::vector<double> per_entry;
    double quad_tol;
  };
  /// Borrowed view of a lookup key; avoids copying per_entry on hits.
  struct CacheQuery {
    const KernelSpec* spec;
    const SamplingParams* params;
  };
  struct CacheKeyLess {
    using is_transparent = void;
    bool operator()(const CacheKey& a, const CacheKey& b) const;
    bool operator()(const CacheKey& a, const CacheQuery& b) const;
    bool operator()(const CacheQuery& a, const CacheKey& b) const;
  };

  mutable std::mutex mu_;
  std::map<CacheKey, KernelHandle, CacheKeyLess> cache_;
};

/// The estimator-versioning tier this binary evaluates with: 0 is the
/// default scalar-libm log tier, 1 is the PIE_FAST_LOG vectorizable
/// polynomial tier (bitwise-deterministic but intentionally NOT
/// bit-identical to tier 0 on the eq 29/30 log-regime lanes; see
/// core/fast_log.h). Persisted checkpoints record this tag in their
/// headers so a recovered sketch's provenance states which estimator bits
/// produced -- and will reproduce -- its query answers.
uint32_t EstimatorTierTag();

}  // namespace pie
