// Sampling-pattern partitioning of batch blocks: the scratch permutation
// under the branch-free SIMD kernel paths (PIE_SIMD).
//
// The paper's estimators are closed forms chosen by the row's sampling
// PATTERN -- which of the r entries were sampled -- and the fused slab
// loops in engine/registry.cc used to re-derive that choice per row with
// data-dependent branches, which both mispredict on mixed batches and
// block auto-vectorization. Instead, each block of up to 256 rows (the
// scan driver's chunk unit, kScanChunkRows) is first partitioned into
// STABLE index buckets by pattern code -- for r=2 the four
// (sampled_0, sampled_1) combinations; for HT-style all-or-nothing
// estimators just all-sampled vs not. No row data moves: the partition is
// a per-block permutation of row indices living entirely on the stack.
// Each bucket's rows are then gathered into dense scratch columns, pushed
// through a branch-free loop the compiler auto-vectorizes (every row in a
// bucket evaluates the SAME closed form, so there is nothing left to
// predict), and scattered back to the caller's row-indexed output.
//
// Stability matters only for cache-friendliness (buckets walk the block in
// row order); correctness never depends on it, because results land in
// per-row output slots. Bitwise equality with the scalar fallback is
// enforced registry-wide by tests/simd_partition_test.cc and
// tests/parallel_scan_test.cc: the bucket loops replicate the scalar
// path's floating-point expression trees exactly (hoisting only
// row-invariant subexpressions, which is value-preserving), so
// partitioned execution produces identical bytes.

#pragma once

#include <cstddef>
#include <cstdint>

#include "engine/simd_dispatch.h"
#include "obs/metrics.h"

#ifdef PIE_SIMD_AVX512
#include "engine/simd_avx512.h"
#endif

namespace pie {

/// Rows per partition block. Equal to the scan driver's kScanChunkRows so
/// a driver chunk is exactly one block; kernels fed larger batches split
/// them into blocks of this size internally.
inline constexpr int kPartitionBlockRows = 256;

/// Stable partition of an r=2 block by pattern code
/// sampled_0 + 2 * sampled_1: bucket 0 = neither entry sampled,
/// 1 = only entry 0, 2 = only entry 1, 3 = both.
struct R2Partition {
  uint16_t idx[4][kPartitionBlockRows];
  int count[4];
};

/// Bucket-occupancy counters (pie_simd_bucket_rows_total): one Add per
/// NON-EMPTY bucket per block, so the hot partition paths pay at most a
/// handful of relaxed fetch_adds per 256 rows. Inline no-op when metrics
/// are compiled out.
inline void CountBucketRows(obs::Counter* const counters[], const int* counts,
                            int num_buckets) {
  for (int b = 0; b < num_buckets; ++b) {
    if (counts[b] > 0) counters[b]->Add(static_cast<uint64_t>(counts[b]));
  }
}

/// Partitions `n` rows (n <= kPartitionBlockRows) of the r=2 sampled slab
/// `sampled` (row-major, 2 flags per row).
inline void PartitionR2(const uint8_t* sampled, int n, R2Partition* part) {
  part->count[0] = part->count[1] = part->count[2] = part->count[3] = 0;
  for (int i = 0; i < n; ++i) {
    const int code =
        (sampled[2 * i] != 0 ? 1 : 0) + (sampled[2 * i + 1] != 0 ? 2 : 0);
    part->idx[code][part->count[code]++] = static_cast<uint16_t>(i);
  }
  static obs::Counter* const counters[4] = {
      &obs::MetricsRegistry::Global().GetCounter(
          "pie_simd_bucket_rows_total",
          "Rows per sampling-pattern bucket across partitioned blocks",
          {{"partition", "r2"}, {"bucket", "none"}}),
      &obs::MetricsRegistry::Global().GetCounter(
          "pie_simd_bucket_rows_total",
          "Rows per sampling-pattern bucket across partitioned blocks",
          {{"partition", "r2"}, {"bucket", "first"}}),
      &obs::MetricsRegistry::Global().GetCounter(
          "pie_simd_bucket_rows_total",
          "Rows per sampling-pattern bucket across partitioned blocks",
          {{"partition", "r2"}, {"bucket", "second"}}),
      &obs::MetricsRegistry::Global().GetCounter(
          "pie_simd_bucket_rows_total",
          "Rows per sampling-pattern bucket across partitioned blocks",
          {{"partition", "r2"}, {"bucket", "both"}})};
  CountBucketRows(counters, part->count, 4);
}

/// Stable partition of a block by the all-or-nothing criterion of the
/// HT-style estimators: rows with every entry sampled vs the rest (which
/// estimate 0 identically).
struct AllSampledPartition {
  uint16_t idx[kPartitionBlockRows];   // rows with all r entries sampled
  uint16_t rest[kPartitionBlockRows];  // everything else
  int count;
  int rest_count;
};

inline void PartitionAllSampled(const uint8_t* sampled, int r, int n,
                                AllSampledPartition* part) {
  part->count = 0;
  part->rest_count = 0;
  for (int i = 0; i < n; ++i) {
    bool all = true;
    for (int j = 0; j < r; ++j) all = all && sampled[i * r + j] != 0;
    if (all) {
      part->idx[part->count++] = static_cast<uint16_t>(i);
    } else {
      part->rest[part->rest_count++] = static_cast<uint16_t>(i);
    }
  }
  static obs::Counter* const counters[2] = {
      &obs::MetricsRegistry::Global().GetCounter(
          "pie_simd_bucket_rows_total",
          "Rows per sampling-pattern bucket across partitioned blocks",
          {{"partition", "all_sampled"}, {"bucket", "hit"}}),
      &obs::MetricsRegistry::Global().GetCounter(
          "pie_simd_bucket_rows_total",
          "Rows per sampling-pattern bucket across partitioned blocks",
          {{"partition", "all_sampled"}, {"bucket", "rest"}})};
  const int counts[2] = {part->count, part->rest_count};
  CountBucketRows(counters, counts, 2);
}

/// Stable partition by "has at least one sampled entry": `idx` holds rows
/// with one or more sampled entries, `rest` the empty outcomes, which
/// estimate exactly 0 under every kernel family.
inline void PartitionAnySampled(const uint8_t* sampled, int r, int n,
                                AllSampledPartition* part) {
  part->count = 0;
  part->rest_count = 0;
  for (int i = 0; i < n; ++i) {
    bool any = false;
    for (int j = 0; j < r; ++j) any = any || sampled[i * r + j] != 0;
    if (any) {
      part->idx[part->count++] = static_cast<uint16_t>(i);
    } else {
      part->rest[part->rest_count++] = static_cast<uint16_t>(i);
    }
  }
  static obs::Counter* const counters[2] = {
      &obs::MetricsRegistry::Global().GetCounter(
          "pie_simd_bucket_rows_total",
          "Rows per sampling-pattern bucket across partitioned blocks",
          {{"partition", "any_sampled"}, {"bucket", "hit"}}),
      &obs::MetricsRegistry::Global().GetCounter(
          "pie_simd_bucket_rows_total",
          "Rows per sampling-pattern bucket across partitioned blocks",
          {{"partition", "any_sampled"}, {"bucket", "rest"}})};
  const int counts[2] = {part->count, part->rest_count};
  CountBucketRows(counters, counts, 2);
}

/// Gathers column `col` of the row-major slab (r doubles per row) for the
/// `n` rows in `idx` into the dense array `out`. Under the AVX-512 tier
/// the index-indirect loads run as native vgatherdpd (8 rows per step);
/// either way the doubles are moved untouched, so the tier cannot change a
/// bit. The n >= 8 floor skips the out-of-line call for tiny buckets.
inline void GatherColumn(const double* slab, int r, int col,
                         const uint16_t* idx, int n, double* out) {
#ifdef PIE_SIMD_AVX512
  if (n >= 8 && UseAvx512Tier()) {
    avx512::GatherColumn(slab, r, col, idx, n, out);
    return;
  }
#endif
  for (int k = 0; k < n; ++k) {
    out[k] = slab[static_cast<size_t>(idx[k]) * static_cast<size_t>(r) + col];
  }
}

/// Scatters the dense values `in` back to the row-indexed slots of `out`
/// (native vscatterdpd under the AVX-512 tier; bucket indices are
/// distinct, so scatter-ordering semantics never matter).
inline void Scatter(const double* in, const uint16_t* idx, int n,
                    double* out) {
#ifdef PIE_SIMD_AVX512
  if (n >= 8 && UseAvx512Tier()) {
    avx512::Scatter(in, idx, n, out);
    return;
  }
#endif
  for (int k = 0; k < n; ++k) out[idx[k]] = in[k];
}

/// Writes `v` to every row slot of `out` named by `idx`.
inline void ScatterConstant(double v, const uint16_t* idx, int n,
                            double* out) {
#ifdef PIE_SIMD_AVX512
  if (n >= 8 && UseAvx512Tier()) {
    avx512::ScatterConstant(v, idx, n, out);
    return;
  }
#endif
  for (int k = 0; k < n; ++k) out[idx[k]] = v;
}

/// Issues one software prefetch per 64-byte line over [p, p + bytes):
/// non-temporal-read hint into the low cache levels for slab rows the
/// gather loops will touch `PrefetchDistanceRows()` rows from now.
inline void PrefetchBytes(const void* p, size_t bytes) {
  const char* c = static_cast<const char*>(p);
  for (size_t off = 0; off < bytes; off += 64) {
    __builtin_prefetch(c + off, /*rw=*/0, /*locality=*/1);
  }
}

}  // namespace pie
