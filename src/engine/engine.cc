#include "engine/engine.h"

#include <tuple>
#include <utility>

#include "util/check.h"

namespace pie {

Outcome& OutcomeBatch::Add(Scheme scheme) {
  if (size_ == slots_.size()) {
    slots_.emplace_back();
  }
  Outcome& slot = slots_[size_++];
  slot.scheme = scheme;
  return slot;
}

void EstimateBatch(const EstimatorKernel& kernel, const OutcomeBatch& batch,
                   std::vector<double>* out) {
  PIE_CHECK(out != nullptr);
  out->clear();
  out->reserve(static_cast<size_t>(batch.size()));
  for (int i = 0; i < batch.size(); ++i) {
    out->push_back(kernel.Estimate(batch[i]));
  }
}

double EstimateSum(const EstimatorKernel& kernel, const OutcomeBatch& batch) {
  double sum = 0.0;
  for (int i = 0; i < batch.size(); ++i) {
    sum += kernel.Estimate(batch[i]);
  }
  return sum;
}

EstimationEngine& EstimationEngine::Global() {
  static EstimationEngine* engine = new EstimationEngine();
  return *engine;
}

namespace {

using KeyView =
    std::tuple<int, int, int, int, int, const std::vector<double>&, double>;

}  // namespace

bool EstimationEngine::CacheKeyLess::operator()(const CacheKey& a,
                                                const CacheKey& b) const {
  return KeyView(a.function, a.scheme, a.regime, a.family, a.l, a.per_entry,
                 a.quad_tol) <
         KeyView(b.function, b.scheme, b.regime, b.family, b.l, b.per_entry,
                 b.quad_tol);
}

bool EstimationEngine::CacheKeyLess::operator()(const CacheKey& a,
                                                const CacheQuery& b) const {
  return KeyView(a.function, a.scheme, a.regime, a.family, a.l, a.per_entry,
                 a.quad_tol) <
         KeyView(static_cast<int>(b.spec->function),
                 static_cast<int>(b.spec->scheme),
                 static_cast<int>(b.spec->regime),
                 static_cast<int>(b.spec->family), b.spec->l,
                 b.params->per_entry, b.params->quad_tol);
}

bool EstimationEngine::CacheKeyLess::operator()(const CacheQuery& a,
                                                const CacheKey& b) const {
  return KeyView(static_cast<int>(a.spec->function),
                 static_cast<int>(a.spec->scheme),
                 static_cast<int>(a.spec->regime),
                 static_cast<int>(a.spec->family), a.spec->l,
                 a.params->per_entry, a.params->quad_tol) <
         KeyView(b.function, b.scheme, b.regime, b.family, b.l, b.per_entry,
                 b.quad_tol);
}

Result<KernelHandle> EstimationEngine::Kernel(const KernelSpec& spec,
                                              const SamplingParams& params) {
  // Key the cache on the canonical spec so regime aliases (oblivious
  // regimes, PPS known-seeds served by an unknown-seeds estimator) share
  // one cached kernel.
  const KernelSpec canonical = KernelRegistry::Global().CanonicalSpec(spec);
  const CacheQuery query{&canonical, &params};
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(query);
    if (it != cache_.end()) return it->second;
  }
  // Construct outside the lock: coefficient recursions can be O(r^2).
  auto created = KernelRegistry::Global().Create(canonical, params);
  if (!created.ok()) return created.status();
  KernelHandle handle(std::move(created).value());
  std::lock_guard<std::mutex> lock(mu_);
  if (static_cast<int>(cache_.size()) >= kMaxCachedKernels) {
    cache_.clear();  // outstanding KernelHandles keep their kernels alive
  }
  CacheKey key{static_cast<int>(canonical.function),
               static_cast<int>(canonical.scheme),
               static_cast<int>(canonical.regime),
               static_cast<int>(canonical.family),
               canonical.l, params.per_entry, params.quad_tol};
  auto [it, inserted] = cache_.emplace(std::move(key), handle);
  if (!inserted) handle = it->second;  // a racing creator won; share its kernel
  return handle;
}

Result<double> EstimationEngine::EstimateSum(const KernelSpec& spec,
                                             const SamplingParams& params,
                                             const OutcomeBatch& batch) {
  auto kernel = Kernel(spec, params);
  if (!kernel.ok()) return kernel.status();
  return pie::EstimateSum(**kernel, batch);
}

Status EstimationEngine::EstimateBatch(const KernelSpec& spec,
                                       const SamplingParams& params,
                                       const OutcomeBatch& batch,
                                       std::vector<double>* out) {
  auto kernel = Kernel(spec, params);
  if (!kernel.ok()) return kernel.status();
  pie::EstimateBatch(**kernel, batch, out);
  return Status::OK();
}

int EstimationEngine::cache_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(cache_.size());
}

}  // namespace pie
