#include "engine/engine.h"

#include <algorithm>
#include <tuple>
#include <utility>

#include "engine/parallel_scan.h"
#include "obs/metrics.h"
#include "util/check.h"

namespace pie {

void OutcomeBatch::Reset(Scheme scheme, int r) {
  PIE_CHECK(r >= 1);
  scheme_ = scheme;
  r_ = r;
  size_ = 0;
}

int OutcomeBatch::AppendRow() {
  PIE_CHECK(r_ >= 1 && "Reset(scheme, r) must fix the layout first");
  const size_t need =
      static_cast<size_t>(size_ + 1) * static_cast<size_t>(r_);
  // vector::resize grows geometrically, so repeated appends amortize like
  // push_back while Clear()+refill reuses the slabs untouched.
  if (param_.size() < need) param_.resize(need);
  if (value_.size() < need) value_.resize(need);
  if (sampled_.size() < need) sampled_.resize(need);
  if (scheme_ == Scheme::kPps && seed_.size() < need) seed_.resize(need);
  return size_++;
}

int OutcomeBatch::Append(const ObliviousOutcome& outcome) {
  PIE_CHECK(scheme_ == Scheme::kOblivious);
  PIE_CHECK(outcome.r() == r_);
  const int i = AppendRow();
  std::copy(outcome.p.begin(), outcome.p.end(), param_row(i));
  std::copy(outcome.sampled.begin(), outcome.sampled.end(), sampled_row(i));
  std::copy(outcome.value.begin(), outcome.value.end(), value_row(i));
  return i;
}

int OutcomeBatch::Append(const PpsOutcome& outcome) {
  PIE_CHECK(scheme_ == Scheme::kPps);
  PIE_CHECK(outcome.r() == r_);
  const int i = AppendRow();
  std::copy(outcome.tau.begin(), outcome.tau.end(), param_row(i));
  std::copy(outcome.seed.begin(), outcome.seed.end(), seed_row(i));
  std::copy(outcome.sampled.begin(), outcome.sampled.end(), sampled_row(i));
  std::copy(outcome.value.begin(), outcome.value.end(), value_row(i));
  return i;
}

BatchView OutcomeBatch::view() const {
  BatchView v;
  v.scheme = scheme_;
  v.r = r_;
  v.size = size_;
  v.param = param_.data();
  v.seed = scheme_ == Scheme::kPps ? seed_.data() : nullptr;
  v.sampled = sampled_.data();
  v.value = value_.data();
  return v;
}

void OutcomeBatch::ExtractRowInto(int i, Outcome* out) const {
  ExtractRow(view(), i, out);
}

void EstimateBatch(const EstimatorKernel& kernel, const OutcomeBatch& batch,
                   std::vector<double>* out) {
  PIE_CHECK(out != nullptr);
  out->clear();
  out->resize(static_cast<size_t>(batch.size()));
  kernel.EstimateMany(batch.view(), out->data());
}

double EstimateSum(const EstimatorKernel& kernel, const OutcomeBatch& batch,
                   int num_threads) {
  // The deterministic scan driver: fixed kScanChunkRows chunks, row-order
  // accumulation within a chunk, fixed-shape tree reduction across chunks.
  // The result bits depend on the chunk size only, never on num_threads.
  return ScanSum(kernel, batch.view(), num_threads);
}

EstimationEngine& EstimationEngine::Global() {
  static EstimationEngine* engine = new EstimationEngine();
  return *engine;
}

namespace {

using KeyView =
    std::tuple<int, int, int, int, int, const std::vector<double>&, double>;

}  // namespace

bool EstimationEngine::CacheKeyLess::operator()(const CacheKey& a,
                                                const CacheKey& b) const {
  return KeyView(a.function, a.scheme, a.regime, a.family, a.l, a.per_entry,
                 a.quad_tol) <
         KeyView(b.function, b.scheme, b.regime, b.family, b.l, b.per_entry,
                 b.quad_tol);
}

bool EstimationEngine::CacheKeyLess::operator()(const CacheKey& a,
                                                const CacheQuery& b) const {
  return KeyView(a.function, a.scheme, a.regime, a.family, a.l, a.per_entry,
                 a.quad_tol) <
         KeyView(static_cast<int>(b.spec->function),
                 static_cast<int>(b.spec->scheme),
                 static_cast<int>(b.spec->regime),
                 static_cast<int>(b.spec->family), b.spec->l,
                 b.params->per_entry, b.params->quad_tol);
}

bool EstimationEngine::CacheKeyLess::operator()(const CacheQuery& a,
                                                const CacheKey& b) const {
  return KeyView(static_cast<int>(a.spec->function),
                 static_cast<int>(a.spec->scheme),
                 static_cast<int>(a.spec->regime),
                 static_cast<int>(a.spec->family), a.spec->l,
                 a.params->per_entry, a.params->quad_tol) <
         KeyView(b.function, b.scheme, b.regime, b.family, b.l, b.per_entry,
                 b.quad_tol);
}

Result<KernelHandle> EstimationEngine::Kernel(const KernelSpec& spec,
                                              const SamplingParams& params) {
  // Key the cache on the canonical spec so regime aliases (oblivious
  // regimes, PPS known-seeds served by an unknown-seeds estimator) share
  // one cached kernel.
  const KernelSpec canonical = KernelRegistry::Global().CanonicalSpec(spec);
  const CacheQuery query{&canonical, &params};
  static obs::Counter& cache_hits = obs::MetricsRegistry::Global().GetCounter(
      "pie_engine_kernel_cache_total", "Engine kernel-memo lookups by result",
      {{"result", "hit"}});
  static obs::Counter& cache_misses =
      obs::MetricsRegistry::Global().GetCounter(
          "pie_engine_kernel_cache_total",
          "Engine kernel-memo lookups by result", {{"result", "miss"}});
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(query);
    if (it != cache_.end()) {
      cache_hits.Increment();
      return it->second;
    }
  }
  cache_misses.Increment();
  // Construct outside the lock: coefficient recursions can be O(r^2).
  auto created = KernelRegistry::Global().Create(canonical, params);
  if (!created.ok()) return created.status();
  KernelHandle handle(std::move(created).value());
  std::lock_guard<std::mutex> lock(mu_);
  if (static_cast<int>(cache_.size()) >= kMaxCachedKernels) {
    cache_.clear();  // outstanding KernelHandles keep their kernels alive
  }
  CacheKey key{static_cast<int>(canonical.function),
               static_cast<int>(canonical.scheme),
               static_cast<int>(canonical.regime),
               static_cast<int>(canonical.family),
               canonical.l, params.per_entry, params.quad_tol};
  auto [it, inserted] = cache_.emplace(std::move(key), handle);
  if (!inserted) handle = it->second;  // a racing creator won; share its kernel
  return handle;
}

Result<double> EstimationEngine::EstimateSum(const KernelSpec& spec,
                                             const SamplingParams& params,
                                             const OutcomeBatch& batch) {
  auto kernel = Kernel(spec, params);
  if (!kernel.ok()) return kernel.status();
  return pie::EstimateSum(**kernel, batch);
}

Status EstimationEngine::EstimateBatch(const KernelSpec& spec,
                                       const SamplingParams& params,
                                       const OutcomeBatch& batch,
                                       std::vector<double>* out) {
  auto kernel = Kernel(spec, params);
  if (!kernel.ok()) return kernel.status();
  pie::EstimateBatch(**kernel, batch, out);
  return Status::OK();
}

int EstimationEngine::cache_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(cache_.size());
}

uint32_t EstimatorTierTag() {
#ifdef PIE_FAST_LOG
  return 1;
#else
  return 0;
#endif
}

}  // namespace pie
