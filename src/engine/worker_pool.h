// Process-wide persistent worker pool: the execution runtime under every
// parallel scan in the codebase.
//
// Before this layer existed, each ScanBatch / per-shard query fan-out
// spawned and joined fresh std::threads, so repeat-call paths (the
// aggregate layer's bridges) had to force single-threaded scans to avoid
// paying thread creation per call. The pool starts its workers lazily on
// first use and keeps them parked on a condition variable, so handing a
// parallel region to the pool costs a mutex push + wakeup instead of a
// spawn/join round trip.
//
// Scheduling model: ParallelFor(count, max_parallelism, fn) publishes a
// job (an atomic index counter over [0, count)) that up to
// max_parallelism - 1 idle workers join; the CALLER always participates
// and drains the counter itself, then waits only for joined helpers to
// finish their last index. Because the caller never blocks on a worker
// becoming available, nested ParallelFor calls (a per-shard fan-out whose
// shard scans split into chunks) cannot deadlock: with no idle workers the
// inner call simply degenerates to the caller's own loop. Work stealing
// falls out of the same structure -- workers idled by small shards pick up
// the index counter of whichever job is still queued, so one hot shard of
// a skewed store no longer serializes a query.
//
// Determinism: the pool only distributes loop INDICES; which thread runs
// which index is unspecified and irrelevant, because every caller in this
// codebase writes results into per-index slots and reduces them in a fixed
// shape afterwards (see engine/parallel_scan.h). Results are therefore
// bitwise identical for any thread count, pool size, or scheduling order,
// which tests/parallel_scan_test.cc and tests/worker_pool_test.cc enforce.
//
// Sizing: the pool holds ResolveParallelism(0) - 1 workers -- the
// PIE_THREADS environment variable when set to a positive integer, else
// clamped hardware_concurrency() -- and that is also the cap on any single
// job's width, so one knob governs total parallelism across the scan
// driver and the store's shard fan-out.

#pragma once

#include <cstdint>
#include <functional>

namespace pie {

/// std::thread::hardware_concurrency() clamped to >= 1 (the standard
/// allows it to return 0 when the count is not computable).
int HardwareThreads();

/// Strict positive-integer parse for the PIE_THREADS environment variable:
/// optional surrounding whitespace and a leading '+', then digits only.
/// Empty strings, trailing garbage ("8abc"), zero, negatives, and values
/// that overflow or exceed kMaxPieThreads set *invalid and return 0.
/// Exposed for unit tests; production callers go through
/// ResolveParallelism, which warns once and counts the error in the
/// pie_config_errors_total metric before falling back to hardware width.
inline constexpr int kMaxPieThreads = 1 << 20;
int ParsePieThreads(const char* text, bool* invalid);

/// Resolves a requested thread count to an effective parallelism:
/// requested >= 1 is taken as-is; requested <= 0 ("auto") picks the
/// PIE_THREADS environment variable (strictly validated positive integer,
/// read once) when set, else HardwareThreads(). An invalid PIE_THREADS is
/// rejected with a one-time stderr warning (never silently truncated the
/// way atoi would) and counted via pie_config_errors_total.
int ResolveParallelism(int requested);

/// Point-in-time pool accounting; see WorkerPool::Stats(). Always
/// satisfies executed <= generation and queued <= generation - executed.
struct PoolStats {
  int queued = 0;           // jobs currently accepting helpers
  uint64_t executed = 0;    // jobs fully drained and returned
  uint64_t generation = 0;  // jobs ever published to the queue
};

class WorkerPool {
 public:
  /// The process-wide pool, created (and its workers started) on first
  /// use. Never destroyed: workers park forever on the queue, which is
  /// safe at process exit precisely because the pool outlives them.
  static WorkerPool& Global();

  /// Runs fn(i) for every i in [0, count), using the calling thread plus
  /// up to max_parallelism - 1 pool workers (further capped by the pool
  /// size), and returns once every index has completed. fn must be safe
  /// to call concurrently for distinct indices and must only write state
  /// owned by its index. count <= 1, max_parallelism <= 1, or an empty
  /// pool all degenerate to an inline loop on the caller.
  void ParallelFor(int count, int max_parallelism,
                   const std::function<void(int)>& fn);

  /// Pool workers + the caller: the width cap for any single job.
  int max_parallelism() const { return num_workers_ + 1; }

  /// A consistent point-in-time view of the job queue, read under the same
  /// lock that guards the deque (so a snapshot taken mid-drain can never
  /// show e.g. more queued jobs than published-minus-executed).
  PoolStats Stats() const;

 private:
  struct Job;
  class Impl;

  WorkerPool();
  ~WorkerPool() = delete;  // leaked singleton; workers park forever

  Impl* impl_;
  int num_workers_;
};

}  // namespace pie
