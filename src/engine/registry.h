// Kernel registry: maps (function, sampling scheme, information regime,
// family) to a factory that instantiates the matching core estimator for a
// concrete sampler configuration.
//
// The registry is the seam where new estimator families plug in: register a
// factory under a KernelSpec and every registry-driven consumer -- the
// batched engine, the shared unbiasedness test fixture in
// tests/engine_test.cc, the benchmarks -- picks it up without changes.
// Factories may reject configurations they have no construction for (e.g.
// general-p max^(L) is closed-form only up to r = 3; larger r requires a
// uniform p) by returning a non-OK Result.

#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "engine/kernel.h"
#include "util/status.h"

namespace pie {

/// Instantiates a kernel for a concrete sampler configuration.
using KernelFactory =
    std::function<Result<std::unique_ptr<EstimatorKernel>>(
        const KernelSpec&, const SamplingParams&)>;

/// A registered kernel family.
struct KernelEntry {
  KernelSpec spec;
  std::string description;
  KernelFactory factory;
  /// Sampler configurations this family supports, used by the shared test
  /// fixture to auto-cover every registered kernel with Monte Carlo
  /// unbiasedness and nonnegativity checks.
  std::vector<SamplingParams> example_params;
};

class KernelRegistry {
 public:
  /// The process-wide registry, with the paper's built-in estimator
  /// families registered on first use.
  static KernelRegistry& Global();

  /// Registers a kernel family. Fails on a spec already registered (the
  /// `l` field is a factory parameter, not part of the lookup key, so two
  /// entries may not differ only in l). Registration is a startup-time
  /// operation: it is NOT safe concurrently with Create/CanonicalSpec/
  /// Entries or with estimation through an EstimationEngine -- register
  /// every family before the first concurrent lookup.
  Status Register(KernelEntry entry);

  /// The canonical spec `spec` resolves to: the oblivious scheme's regime
  /// is normalized to kKnownSeeds (the sampled set is full information
  /// either way), and a PPS known-seeds request served only by an
  /// unknown-seeds registration maps to that registration (an estimator
  /// needing less information stays valid with more). Unresolvable specs
  /// are returned with only the oblivious normalization applied. Cache
  /// layers (EstimationEngine) key on this so regime aliases share one
  /// kernel.
  KernelSpec CanonicalSpec(const KernelSpec& spec) const;

  /// Instantiates the kernel for `spec` and `params` (after CanonicalSpec
  /// normalization). NotFound if no family is registered under the spec.
  Result<std::unique_ptr<EstimatorKernel>> Create(
      const KernelSpec& spec, const SamplingParams& params) const;

  /// All registered families, in registration order.
  const std::vector<KernelEntry>& Entries() const { return entries_; }

 private:
  std::vector<KernelEntry> entries_;
};

}  // namespace pie
