#include "engine/registry.h"

#include <cmath>
#include <utility>

#include "core/functions.h"
#include "core/ht.h"
#include "core/max_l_three.h"
#include "core/max_oblivious.h"
#include "core/max_weighted.h"
#include "core/min_weighted.h"
#include "core/or_oblivious.h"
#include "core/or_weighted.h"
#include "util/check.h"

namespace pie {
namespace {

// ---------------------------------------------------------------------------
// Adapter kernels around the core estimator classes. Each adapter fixes the
// sampler configuration at construction so per-key estimation reuses the
// precomputed coefficient tables.
// ---------------------------------------------------------------------------

// Matches an entry on everything but l: LthLargest registrations carry a
// representative l, and the requested l is passed to the factory.
bool SpecMatches(const KernelSpec& entry, const KernelSpec& lookup) {
  return entry.function == lookup.function &&
         entry.scheme == lookup.scheme && entry.regime == lookup.regime &&
         entry.family == lookup.family;
}

Status RequireR(int got, int r) {
  if (got != r) {
    return Status::InvalidArgument("kernel requires r = " + std::to_string(r) +
                                   " instances, got " + std::to_string(got));
  }
  return Status::OK();
}

Status RequireBinary(const std::vector<double>& values) {
  for (double v : values) {
    if (v != 0.0 && v != 1.0) {
      return Status::InvalidArgument("OR variance requires binary values");
    }
  }
  return Status::OK();
}

/// Horvitz-Thompson over weight-oblivious outcomes for any primitive f.
class ObliviousHtKernel : public EstimatorKernel {
 public:
  ObliviousHtKernel(std::string name, VectorFunction f,
                    std::vector<double> p)
      : name_(std::move(name)), f_(std::move(f)), p_(std::move(p)) {}

  double Estimate(const Outcome& outcome) const override {
    PIE_DCHECK(outcome.scheme == Scheme::kOblivious);
    return ObliviousHtEstimate(outcome.oblivious, f_);
  }
  void EstimateMany(BatchView batch, double* out) const override {
    CheckBatchLayout(batch, Scheme::kOblivious,
                     static_cast<int>(p_.size()));
    std::vector<double> scratch;
    scratch.reserve(p_.size());
    for (int i = 0; i < batch.size; ++i) {
      out[i] = ObliviousHtEstimateRow(batch.param_row(i),
                                      batch.sampled_row(i),
                                      batch.value_row(i), batch.r, f_,
                                      &scratch);
    }
  }
  double EstimateSecondMoment(const Outcome& outcome) const override {
    PIE_DCHECK(outcome.scheme == Scheme::kOblivious);
    const ObliviousOutcome& o = outcome.oblivious;
    std::vector<double> scratch;
    scratch.reserve(p_.size());
    return ObliviousHtSecondMomentRow(o.p.data(), o.sampled.data(),
                                      o.value.data(), o.r(), f_, &scratch);
  }
  void EstimateSecondMomentMany(BatchView batch, double* out) const override {
    CheckBatchLayout(batch, Scheme::kOblivious,
                     static_cast<int>(p_.size()));
    std::vector<double> scratch;
    scratch.reserve(p_.size());
    for (int i = 0; i < batch.size; ++i) {
      out[i] = ObliviousHtSecondMomentRow(batch.param_row(i),
                                          batch.sampled_row(i),
                                          batch.value_row(i), batch.r, f_,
                                          &scratch);
    }
  }
  void EstimateWithVarianceMany(BatchView batch, double* est,
                                double* var) const override {
    CheckBatchLayout(batch, Scheme::kOblivious,
                     static_cast<int>(p_.size()));
    std::vector<double> scratch;
    scratch.reserve(p_.size());
    for (int i = 0; i < batch.size; ++i) {
      double second;
      ObliviousHtEstimateWithSecondMomentRow(
          batch.param_row(i), batch.sampled_row(i), batch.value_row(i),
          batch.r, f_, &scratch, &est[i], &second);
      var[i] = est[i] * est[i] - second;
    }
  }
  Result<double> Variance(const std::vector<double>& values) const override {
    return ObliviousHtVariance(values, p_, f_);
  }
  std::string name() const override { return name_; }

 private:
  std::string name_;
  VectorFunction f_;
  std::vector<double> p_;
};

/// Squares the sampled entries of a length-r row into `out` (unsampled
/// slots are copied through untouched; the estimators never read them, but
/// copying keeps the row well-formed). The slab-loop twin of the base
/// EstimateSecondMoment's squared-outcome bridge: x * x on the same lanes,
/// so the batched and scalar second-moment paths stay bitwise identical.
inline void SquareSampledRow(const uint8_t* sampled, const double* value,
                             int r, double* out) {
  for (int i = 0; i < r; ++i) {
    out[i] = sampled[i] ? value[i] * value[i] : value[i];
  }
}

/// Fused variance combine for the binary (OR) kernels, whose second moment
/// IS the point estimate (OR^2 = OR): var = e*e - e, the same arithmetic
/// the two-pass bridge performs after its redundant second estimate pass.
/// One estimate loop therefore serves the whole fused scan.
inline void BinaryVarianceFromEstimates(const double* est, int n,
                                        double* var) {
  for (int i = 0; i < n; ++i) {
    var[i] = est[i] * est[i] - est[i];
  }
}

class MaxLTwoKernel : public EstimatorKernel {
 public:
  MaxLTwoKernel(double p1, double p2) : est_(p1, p2) {}
  double Estimate(const Outcome& outcome) const override {
    PIE_DCHECK(outcome.scheme == Scheme::kOblivious);
    return est_.Estimate(outcome.oblivious);
  }
  void EstimateMany(BatchView batch, double* out) const override {
    CheckBatchLayout(batch, Scheme::kOblivious, 2);
    for (int i = 0; i < batch.size; ++i) {
      out[i] = est_.EstimateRow(batch.sampled_row(i), batch.value_row(i));
    }
  }
  void EstimateSecondMomentMany(BatchView batch, double* out) const override {
    CheckBatchLayout(batch, Scheme::kOblivious, 2);
    double sq[2];
    for (int i = 0; i < batch.size; ++i) {
      const uint8_t* sampled = batch.sampled_row(i);
      SquareSampledRow(sampled, batch.value_row(i), 2, sq);
      out[i] = est_.EstimateRow(sampled, sq);
    }
  }
  void EstimateWithVarianceMany(BatchView batch, double* est,
                                double* var) const override {
    CheckBatchLayout(batch, Scheme::kOblivious, 2);
    double sq[2];
    for (int i = 0; i < batch.size; ++i) {
      const uint8_t* sampled = batch.sampled_row(i);
      const double* value = batch.value_row(i);
      const double e = est_.EstimateRow(sampled, value);
      SquareSampledRow(sampled, value, 2, sq);
      est[i] = e;
      var[i] = e * e - est_.EstimateRow(sampled, sq);
    }
  }
  Result<double> Variance(const std::vector<double>& values) const override {
    PIE_RETURN_IF_ERROR(RequireR(static_cast<int>(values.size()), 2));
    return est_.Variance(values[0], values[1]);
  }
  std::string name() const override { return "max^(L) oblivious r=2"; }

 private:
  MaxLTwo est_;
};

class MaxLThreeKernel : public EstimatorKernel {
 public:
  MaxLThreeKernel(double p1, double p2, double p3) : est_(p1, p2, p3) {}
  double Estimate(const Outcome& outcome) const override {
    PIE_DCHECK(outcome.scheme == Scheme::kOblivious);
    return est_.Estimate(outcome.oblivious);
  }
  Result<double> Variance(const std::vector<double>& values) const override {
    PIE_RETURN_IF_ERROR(RequireR(static_cast<int>(values.size()), 3));
    return est_.Variance({values[0], values[1], values[2]});
  }
  std::string name() const override { return "max^(L) oblivious r=3"; }

 private:
  MaxLThree est_;
};

class MaxLUniformKernel : public EstimatorKernel {
 public:
  MaxLUniformKernel(int r, double p) : est_(r, p) {}
  double Estimate(const Outcome& outcome) const override {
    PIE_DCHECK(outcome.scheme == Scheme::kOblivious);
    return est_.Estimate(outcome.oblivious);
  }
  void EstimateMany(BatchView batch, double* out) const override {
    CheckBatchLayout(batch, Scheme::kOblivious, est_.r());
    std::vector<double> scratch;
    scratch.reserve(static_cast<size_t>(est_.r()));
    for (int i = 0; i < batch.size; ++i) {
      out[i] = est_.EstimateRow(batch.sampled_row(i), batch.value_row(i),
                                &scratch);
    }
  }
  void EstimateSecondMomentMany(BatchView batch, double* out) const override {
    CheckBatchLayout(batch, Scheme::kOblivious, est_.r());
    std::vector<double> scratch;
    scratch.reserve(static_cast<size_t>(est_.r()));
    std::vector<double> sq(static_cast<size_t>(est_.r()));
    for (int i = 0; i < batch.size; ++i) {
      const uint8_t* sampled = batch.sampled_row(i);
      SquareSampledRow(sampled, batch.value_row(i), est_.r(), sq.data());
      out[i] = est_.EstimateRow(sampled, sq.data(), &scratch);
    }
  }
  void EstimateWithVarianceMany(BatchView batch, double* est,
                                double* var) const override {
    CheckBatchLayout(batch, Scheme::kOblivious, est_.r());
    std::vector<double> scratch;
    scratch.reserve(static_cast<size_t>(est_.r()));
    std::vector<double> sq(static_cast<size_t>(est_.r()));
    for (int i = 0; i < batch.size; ++i) {
      const uint8_t* sampled = batch.sampled_row(i);
      const double* value = batch.value_row(i);
      const double e = est_.EstimateRow(sampled, value, &scratch);
      SquareSampledRow(sampled, value, est_.r(), sq.data());
      est[i] = e;
      var[i] = e * e - est_.EstimateRow(sampled, sq.data(), &scratch);
    }
  }
  Result<double> Variance(const std::vector<double>& values) const override {
    if (static_cast<int>(values.size()) != est_.r() || est_.r() > 25) {
      return Status::InvalidArgument(
          "exact max^(L) variance needs matching r <= 25");
    }
    return est_.Variance(values);
  }
  std::string name() const override {
    return "max^(L) oblivious uniform r=" + std::to_string(est_.r());
  }

 private:
  MaxLUniform est_;
};

class MaxUTwoKernel : public EstimatorKernel {
 public:
  MaxUTwoKernel(double p1, double p2) : est_(p1, p2) {}
  double Estimate(const Outcome& outcome) const override {
    PIE_DCHECK(outcome.scheme == Scheme::kOblivious);
    return est_.Estimate(outcome.oblivious);
  }
  void EstimateMany(BatchView batch, double* out) const override {
    CheckBatchLayout(batch, Scheme::kOblivious, 2);
    for (int i = 0; i < batch.size; ++i) {
      out[i] = est_.EstimateRow(batch.sampled_row(i), batch.value_row(i));
    }
  }
  void EstimateSecondMomentMany(BatchView batch, double* out) const override {
    CheckBatchLayout(batch, Scheme::kOblivious, 2);
    double sq[2];
    for (int i = 0; i < batch.size; ++i) {
      const uint8_t* sampled = batch.sampled_row(i);
      SquareSampledRow(sampled, batch.value_row(i), 2, sq);
      out[i] = est_.EstimateRow(sampled, sq);
    }
  }
  void EstimateWithVarianceMany(BatchView batch, double* est,
                                double* var) const override {
    CheckBatchLayout(batch, Scheme::kOblivious, 2);
    double sq[2];
    for (int i = 0; i < batch.size; ++i) {
      const uint8_t* sampled = batch.sampled_row(i);
      const double* value = batch.value_row(i);
      const double e = est_.EstimateRow(sampled, value);
      SquareSampledRow(sampled, value, 2, sq);
      est[i] = e;
      var[i] = e * e - est_.EstimateRow(sampled, sq);
    }
  }
  Result<double> Variance(const std::vector<double>& values) const override {
    PIE_RETURN_IF_ERROR(RequireR(static_cast<int>(values.size()), 2));
    return est_.Variance(values[0], values[1]);
  }
  std::string name() const override { return "max^(U) oblivious r=2"; }

 private:
  MaxUTwo est_;
};

class MaxUAsymTwoKernel : public EstimatorKernel {
 public:
  MaxUAsymTwoKernel(double p1, double p2) : est_(p1, p2) {}
  double Estimate(const Outcome& outcome) const override {
    PIE_DCHECK(outcome.scheme == Scheme::kOblivious);
    return est_.Estimate(outcome.oblivious);
  }
  void EstimateMany(BatchView batch, double* out) const override {
    CheckBatchLayout(batch, Scheme::kOblivious, 2);
    for (int i = 0; i < batch.size; ++i) {
      out[i] = est_.EstimateRow(batch.sampled_row(i), batch.value_row(i));
    }
  }
  void EstimateSecondMomentMany(BatchView batch, double* out) const override {
    CheckBatchLayout(batch, Scheme::kOblivious, 2);
    double sq[2];
    for (int i = 0; i < batch.size; ++i) {
      const uint8_t* sampled = batch.sampled_row(i);
      SquareSampledRow(sampled, batch.value_row(i), 2, sq);
      out[i] = est_.EstimateRow(sampled, sq);
    }
  }
  void EstimateWithVarianceMany(BatchView batch, double* est,
                                double* var) const override {
    CheckBatchLayout(batch, Scheme::kOblivious, 2);
    double sq[2];
    for (int i = 0; i < batch.size; ++i) {
      const uint8_t* sampled = batch.sampled_row(i);
      const double* value = batch.value_row(i);
      const double e = est_.EstimateRow(sampled, value);
      SquareSampledRow(sampled, value, 2, sq);
      est[i] = e;
      var[i] = e * e - est_.EstimateRow(sampled, sq);
    }
  }
  Result<double> Variance(const std::vector<double>& values) const override {
    PIE_RETURN_IF_ERROR(RequireR(static_cast<int>(values.size()), 2));
    return est_.Variance(values[0], values[1]);
  }
  std::string name() const override { return "max^(Uas) oblivious r=2"; }

 private:
  MaxUAsymTwo est_;
};

class OrLTwoKernel : public EstimatorKernel {
 public:
  OrLTwoKernel(double p1, double p2) : est_(p1, p2) {}
  double Estimate(const Outcome& outcome) const override {
    PIE_DCHECK(outcome.scheme == Scheme::kOblivious);
    return est_.Estimate(outcome.oblivious);
  }
  void EstimateMany(BatchView batch, double* out) const override {
    CheckBatchLayout(batch, Scheme::kOblivious, 2);
    for (int i = 0; i < batch.size; ++i) {
      out[i] = est_.EstimateRow(batch.sampled_row(i), batch.value_row(i));
    }
  }
  // Binary domain: OR(v)^2 = OR(v), so the point estimate IS the unbiased
  // second-moment estimate (and 0/1 are fixed points of squaring, so this
  // is bitwise the base squared-outcome bridge).
  double EstimateSecondMoment(const Outcome& outcome) const override {
    return Estimate(outcome);
  }
  void EstimateSecondMomentMany(BatchView batch, double* out) const override {
    EstimateMany(batch, out);
  }
  void EstimateWithVarianceMany(BatchView batch, double* est,
                                double* var) const override {
    EstimateMany(batch, est);
    BinaryVarianceFromEstimates(est, batch.size, var);
  }
  Result<double> Variance(const std::vector<double>& values) const override {
    PIE_RETURN_IF_ERROR(RequireR(static_cast<int>(values.size()), 2));
    PIE_RETURN_IF_ERROR(RequireBinary(values));
    return est_.Variance(static_cast<int>(values[0]),
                         static_cast<int>(values[1]));
  }
  std::string name() const override { return "OR^(L) oblivious r=2"; }

 private:
  OrLTwo est_;
};

class OrLUniformKernel : public EstimatorKernel {
 public:
  OrLUniformKernel(int r, double p) : est_(r, p) {}
  double Estimate(const Outcome& outcome) const override {
    PIE_DCHECK(outcome.scheme == Scheme::kOblivious);
    return est_.Estimate(outcome.oblivious);
  }
  void EstimateMany(BatchView batch, double* out) const override {
    CheckBatchLayout(batch, Scheme::kOblivious, est_.r());
    for (int i = 0; i < batch.size; ++i) {
      out[i] = est_.EstimateRow(batch.sampled_row(i), batch.value_row(i));
    }
  }
  // Binary domain: OR(v)^2 = OR(v) (see OrLTwoKernel).
  double EstimateSecondMoment(const Outcome& outcome) const override {
    return Estimate(outcome);
  }
  void EstimateSecondMomentMany(BatchView batch, double* out) const override {
    EstimateMany(batch, out);
  }
  void EstimateWithVarianceMany(BatchView batch, double* est,
                                double* var) const override {
    EstimateMany(batch, est);
    BinaryVarianceFromEstimates(est, batch.size, var);
  }
  Result<double> Variance(const std::vector<double>& values) const override {
    PIE_RETURN_IF_ERROR(RequireR(static_cast<int>(values.size()), est_.r()));
    PIE_RETURN_IF_ERROR(RequireBinary(values));
    int ones = 0;
    for (double v : values) ones += v != 0.0 ? 1 : 0;
    return est_.Variance(ones);
  }
  std::string name() const override {
    return "OR^(L) oblivious uniform r=" + std::to_string(est_.r());
  }

 private:
  OrLUniform est_;
};

class OrUTwoKernel : public EstimatorKernel {
 public:
  OrUTwoKernel(double p1, double p2) : est_(p1, p2) {}
  double Estimate(const Outcome& outcome) const override {
    PIE_DCHECK(outcome.scheme == Scheme::kOblivious);
    return est_.Estimate(outcome.oblivious);
  }
  void EstimateMany(BatchView batch, double* out) const override {
    CheckBatchLayout(batch, Scheme::kOblivious, 2);
    for (int i = 0; i < batch.size; ++i) {
      out[i] = est_.EstimateRow(batch.sampled_row(i), batch.value_row(i));
    }
  }
  // Binary domain: OR(v)^2 = OR(v) (see OrLTwoKernel).
  double EstimateSecondMoment(const Outcome& outcome) const override {
    return Estimate(outcome);
  }
  void EstimateSecondMomentMany(BatchView batch, double* out) const override {
    EstimateMany(batch, out);
  }
  void EstimateWithVarianceMany(BatchView batch, double* est,
                                double* var) const override {
    EstimateMany(batch, est);
    BinaryVarianceFromEstimates(est, batch.size, var);
  }
  Result<double> Variance(const std::vector<double>& values) const override {
    PIE_RETURN_IF_ERROR(RequireR(static_cast<int>(values.size()), 2));
    PIE_RETURN_IF_ERROR(RequireBinary(values));
    return est_.Variance(static_cast<int>(values[0]),
                         static_cast<int>(values[1]));
  }
  std::string name() const override { return "OR^(U) oblivious r=2"; }

 private:
  OrUTwo est_;
};

class MaxHtWeightedKernel : public EstimatorKernel {
 public:
  explicit MaxHtWeightedKernel(std::vector<double> tau)
      : est_(std::move(tau)) {}
  double Estimate(const Outcome& outcome) const override {
    PIE_DCHECK(outcome.scheme == Scheme::kPps);
    return est_.Estimate(outcome.pps);
  }
  void EstimateMany(BatchView batch, double* out) const override {
    CheckBatchLayout(batch, Scheme::kPps,
                     static_cast<int>(est_.tau().size()));
    for (int i = 0; i < batch.size; ++i) {
      out[i] = est_.EstimateRow(batch.param_row(i), batch.seed_row(i),
                                batch.sampled_row(i), batch.value_row(i));
    }
  }
  double EstimateSecondMoment(const Outcome& outcome) const override {
    PIE_DCHECK(outcome.scheme == Scheme::kPps);
    const PpsOutcome& o = outcome.pps;
    return est_.SecondMomentRow(o.tau.data(), o.seed.data(),
                                o.sampled.data(), o.value.data());
  }
  void EstimateSecondMomentMany(BatchView batch, double* out) const override {
    CheckBatchLayout(batch, Scheme::kPps,
                     static_cast<int>(est_.tau().size()));
    for (int i = 0; i < batch.size; ++i) {
      out[i] = est_.SecondMomentRow(batch.param_row(i), batch.seed_row(i),
                                    batch.sampled_row(i),
                                    batch.value_row(i));
    }
  }
  void EstimateWithVarianceMany(BatchView batch, double* est,
                                double* var) const override {
    CheckBatchLayout(batch, Scheme::kPps,
                     static_cast<int>(est_.tau().size()));
    for (int i = 0; i < batch.size; ++i) {
      double second;
      est_.EstimateWithSecondMomentRow(batch.param_row(i),
                                       batch.seed_row(i),
                                       batch.sampled_row(i),
                                       batch.value_row(i), &est[i],
                                       &second);
      var[i] = est[i] * est[i] - second;
    }
  }
  Result<double> Variance(const std::vector<double>& values) const override {
    return est_.Variance(values);
  }
  std::string name() const override {
    return "max^(HT) pps known-seeds r=" +
           std::to_string(est_.tau().size());
  }

 private:
  MaxHtWeighted est_;
};

class MaxLWeightedTwoKernel : public EstimatorKernel {
 public:
  MaxLWeightedTwoKernel(double tau1, double tau2, double quad_tol)
      : est_(tau1, tau2, quad_tol), second_({tau1, tau2}) {}
  double Estimate(const Outcome& outcome) const override {
    PIE_DCHECK(outcome.scheme == Scheme::kPps);
    return est_.Estimate(outcome.pps);
  }
  void EstimateMany(BatchView batch, double* out) const override {
    CheckBatchLayout(batch, Scheme::kPps, 2);
    for (int i = 0; i < batch.size; ++i) {
      out[i] = est_.EstimateRow(batch.param_row(i), batch.seed_row(i),
                                batch.sampled_row(i), batch.value_row(i));
    }
  }
  // The second moment uses the identifiable-event inverse-probability form
  // (max_sampled^2 / p on outcomes that pin down max(v)); any unbiased
  // estimator of max^2 serves, and this one is closed-form, nonnegative,
  // and shares the slab layout -- see MaxHtWeighted::SecondMomentRow.
  double EstimateSecondMoment(const Outcome& outcome) const override {
    PIE_DCHECK(outcome.scheme == Scheme::kPps);
    const PpsOutcome& o = outcome.pps;
    return second_.SecondMomentRow(o.tau.data(), o.seed.data(),
                                   o.sampled.data(), o.value.data());
  }
  void EstimateSecondMomentMany(BatchView batch, double* out) const override {
    CheckBatchLayout(batch, Scheme::kPps, 2);
    for (int i = 0; i < batch.size; ++i) {
      out[i] = second_.SecondMomentRow(batch.param_row(i),
                                       batch.seed_row(i),
                                       batch.sampled_row(i),
                                       batch.value_row(i));
    }
  }
  // Single-load fused row: one case split on the sampled pattern feeds
  // BOTH the max^(L) determining vector and the identifiable-event second
  // moment (they share the largest sampled value and the seed upper
  // bounds), so the with-variance scan pays one branchy pass per row
  // instead of two. Every expression matches MaxLWeightedTwo::EstimateRow
  // / MaxHtWeighted::SecondMomentRow operation for operation -- the fused
  // sweep in tests/parallel_scan_test.cc enforces bitwise identity with
  // the two-pass bridge.
  void EstimateWithVarianceMany(BatchView batch, double* est,
                                double* var) const override {
    CheckBatchLayout(batch, Scheme::kPps, 2);
    const double tau1 = est_.tau1();
    const double tau2 = est_.tau2();
    for (int i = 0; i < batch.size; ++i) {
      const double* tau = batch.param_row(i);
      const double* seed = batch.seed_row(i);
      const uint8_t* sampled = batch.sampled_row(i);
      const double* value = batch.value_row(i);
      const bool s1 = sampled[0] != 0;
      const bool s2 = sampled[1] != 0;
      double e = 0.0;
      double second = 0.0;
      if (s1 || s2) {
        double d1, d2;            // determining vector (max^(L))
        double mx;                // largest sampled value (second moment)
        bool identifiable;        // every unsampled seed bound <= mx
        if (s1 && s2) {
          d1 = value[0];
          d2 = value[1];
          mx = std::max(std::max(0.0, value[0]), value[1]);
          identifiable = true;
        } else if (s1) {
          d1 = value[0];
          const double bound2 = seed[1] * tau[1];
          d2 = std::min(bound2, d1);
          mx = std::max(0.0, value[0]);
          identifiable = !(bound2 > mx);
        } else {
          d2 = value[1];
          const double bound1 = seed[0] * tau[0];
          d1 = std::min(bound1, d2);
          mx = std::max(0.0, value[1]);
          identifiable = !(bound1 > mx);
        }
        e = est_.EstimateFromDeterminingVector(d1, d2);
        if (mx > 0 && identifiable) {
          const double prob =
              std::fmin(1.0, mx / tau1) * std::fmin(1.0, mx / tau2);
          second = mx * mx / prob;
        }
      }
      est[i] = e;
      var[i] = e * e - second;
    }
  }
  Result<double> Variance(const std::vector<double>& values) const override {
    PIE_RETURN_IF_ERROR(RequireR(static_cast<int>(values.size()), 2));
    return est_.Variance(values[0], values[1]);
  }
  std::string name() const override { return "max^(L) pps known-seeds r=2"; }

 private:
  MaxLWeightedTwo est_;
  MaxHtWeighted second_;
};

/// OR over weighted PPS samples with known seeds, r = 2; the family selects
/// HT, L, or U through the binary outcome mapping of Section 5.1.
class OrWeightedTwoKernel : public EstimatorKernel {
 public:
  OrWeightedTwoKernel(double tau1, double tau2, Family family)
      : est_(tau1, tau2), family_(family) {}
  double Estimate(const Outcome& outcome) const override {
    PIE_DCHECK(outcome.scheme == Scheme::kPps);
    switch (family_) {
      case Family::kHt:
        return est_.EstimateHt(outcome.pps);
      case Family::kL:
        return est_.EstimateL(outcome.pps);
      default:
        return est_.EstimateU(outcome.pps);
    }
  }
  void EstimateMany(BatchView batch, double* out) const override {
    CheckBatchLayout(batch, Scheme::kPps, 2);
    for (int i = 0; i < batch.size; ++i) {
      const double* tau = batch.param_row(i);
      const double* seed = batch.seed_row(i);
      const uint8_t* sampled = batch.sampled_row(i);
      const double* value = batch.value_row(i);
      switch (family_) {
        case Family::kHt:
          out[i] = est_.EstimateHtRow(tau, seed, sampled, value);
          break;
        case Family::kL:
          out[i] = est_.EstimateLRow(tau, seed, sampled, value);
          break;
        default:
          out[i] = est_.EstimateURow(tau, seed, sampled, value);
          break;
      }
    }
  }
  // Binary domain: OR(v)^2 = OR(v), so the point estimate is itself the
  // unbiased second-moment estimate.
  double EstimateSecondMoment(const Outcome& outcome) const override {
    return Estimate(outcome);
  }
  void EstimateSecondMomentMany(BatchView batch, double* out) const override {
    EstimateMany(batch, out);
  }
  void EstimateWithVarianceMany(BatchView batch, double* est,
                                double* var) const override {
    EstimateMany(batch, est);
    BinaryVarianceFromEstimates(est, batch.size, var);
  }
  Result<double> Variance(const std::vector<double>& values) const override {
    PIE_RETURN_IF_ERROR(RequireR(static_cast<int>(values.size()), 2));
    PIE_RETURN_IF_ERROR(RequireBinary(values));
    // Section 5.1: over binary domains the known-seeds weighted outcome is
    // equivalent to an oblivious one with p_i = min(1, 1/tau_i).
    const int v1 = static_cast<int>(values[0]);
    const int v2 = static_cast<int>(values[1]);
    switch (family_) {
      case Family::kHt:
        return OrOf(values) == 0.0 ? 0.0
                                   : OrHtVariance({est_.p1(), est_.p2()});
      case Family::kL:
        return OrLTwo(est_.p1(), est_.p2()).Variance(v1, v2);
      default:
        return OrUTwo(est_.p1(), est_.p2()).Variance(v1, v2);
    }
  }
  std::string name() const override {
    return std::string("OR^(") + FamilyToString(family_) +
           ") pps known-seeds r=2";
  }

 private:
  OrWeightedTwo est_;
  Family family_;
};

/// OR over r weighted PPS samples with a uniform threshold, HT or L.
class OrWeightedUniformKernel : public EstimatorKernel {
 public:
  OrWeightedUniformKernel(int r, double tau, Family family)
      : est_(r, tau), family_(family) {}
  double Estimate(const Outcome& outcome) const override {
    PIE_DCHECK(outcome.scheme == Scheme::kPps);
    return family_ == Family::kHt ? est_.EstimateHt(outcome.pps)
                                  : est_.EstimateL(outcome.pps);
  }
  void EstimateMany(BatchView batch, double* out) const override {
    CheckBatchLayout(batch, Scheme::kPps, est_.r());
    std::vector<double> p(static_cast<size_t>(est_.r()));
    std::vector<uint8_t> s(static_cast<size_t>(est_.r()));
    std::vector<double> v(static_cast<size_t>(est_.r()));
    for (int i = 0; i < batch.size; ++i) {
      out[i] = family_ == Family::kHt
                   ? est_.EstimateHtRow(batch.param_row(i),
                                        batch.seed_row(i),
                                        batch.sampled_row(i),
                                        batch.value_row(i), p.data(),
                                        s.data(), v.data())
                   : est_.EstimateLRow(batch.param_row(i),
                                       batch.seed_row(i),
                                       batch.sampled_row(i),
                                       batch.value_row(i), p.data(),
                                       s.data(), v.data());
    }
  }
  // Binary domain: OR(v)^2 = OR(v) (see OrWeightedTwoKernel).
  double EstimateSecondMoment(const Outcome& outcome) const override {
    return Estimate(outcome);
  }
  void EstimateSecondMomentMany(BatchView batch, double* out) const override {
    EstimateMany(batch, out);
  }
  void EstimateWithVarianceMany(BatchView batch, double* est,
                                double* var) const override {
    EstimateMany(batch, est);
    BinaryVarianceFromEstimates(est, batch.size, var);
  }
  Result<double> Variance(const std::vector<double>& values) const override {
    PIE_RETURN_IF_ERROR(RequireR(static_cast<int>(values.size()), est_.r()));
    PIE_RETURN_IF_ERROR(RequireBinary(values));
    if (OrOf(values) == 0.0) return 0.0;
    if (family_ == Family::kHt) {
      return OrHtVariance(std::vector<double>(
          static_cast<size_t>(est_.r()), est_.p()));
    }
    int ones = 0;
    for (double v : values) ones += v != 0.0 ? 1 : 0;
    return OrLUniform(est_.r(), est_.p()).Variance(ones);
  }
  std::string name() const override {
    return std::string("OR^(") + FamilyToString(family_) +
           ") pps known-seeds uniform r=" + std::to_string(est_.r());
  }

 private:
  OrWeightedUniform est_;
  Family family_;
};

class MinHtWeightedKernel : public EstimatorKernel {
 public:
  explicit MinHtWeightedKernel(std::vector<double> tau)
      : est_(std::move(tau)) {}
  double Estimate(const Outcome& outcome) const override {
    PIE_DCHECK(outcome.scheme == Scheme::kPps);
    return est_.Estimate(outcome.pps);
  }
  void EstimateMany(BatchView batch, double* out) const override {
    CheckBatchLayout(batch, Scheme::kPps,
                     static_cast<int>(est_.tau().size()));
    for (int i = 0; i < batch.size; ++i) {
      out[i] = est_.EstimateRow(batch.sampled_row(i), batch.value_row(i));
    }
  }
  double EstimateSecondMoment(const Outcome& outcome) const override {
    PIE_DCHECK(outcome.scheme == Scheme::kPps);
    return est_.SecondMomentRow(outcome.pps.sampled.data(),
                                outcome.pps.value.data());
  }
  void EstimateSecondMomentMany(BatchView batch, double* out) const override {
    CheckBatchLayout(batch, Scheme::kPps,
                     static_cast<int>(est_.tau().size()));
    for (int i = 0; i < batch.size; ++i) {
      out[i] = est_.SecondMomentRow(batch.sampled_row(i),
                                    batch.value_row(i));
    }
  }
  void EstimateWithVarianceMany(BatchView batch, double* est,
                                double* var) const override {
    CheckBatchLayout(batch, Scheme::kPps,
                     static_cast<int>(est_.tau().size()));
    for (int i = 0; i < batch.size; ++i) {
      double second;
      est_.EstimateWithSecondMomentRow(batch.sampled_row(i),
                                       batch.value_row(i), &est[i],
                                       &second);
      var[i] = est[i] * est[i] - second;
    }
  }
  Result<double> Variance(const std::vector<double>& values) const override {
    return est_.Variance(values);
  }
  std::string name() const override {
    return "min^(HT) pps r=" + std::to_string(est_.tau().size());
  }

 private:
  MinHtWeighted est_;
};

// ---------------------------------------------------------------------------
// Factories
// ---------------------------------------------------------------------------

using KernelResult = Result<std::unique_ptr<EstimatorKernel>>;

KernelResult MakeMaxObliviousL(const KernelSpec&,
                               const SamplingParams& params) {
  const auto& p = params.per_entry;
  if (params.r() == 2) {
    return std::unique_ptr<EstimatorKernel>(new MaxLTwoKernel(p[0], p[1]));
  }
  if (params.r() == 3) {
    return std::unique_ptr<EstimatorKernel>(
        new MaxLThreeKernel(p[0], p[1], p[2]));
  }
  if (params.r() >= 1 && params.IsUniform()) {
    return std::unique_ptr<EstimatorKernel>(
        new MaxLUniformKernel(params.r(), p[0]));
  }
  return Status::InvalidArgument(
      "general-p max^(L) has closed forms only for r <= 3; r >= 4 requires "
      "uniform p (Theorem 4.2)");
}

KernelResult MakeMaxObliviousU(const KernelSpec&,
                               const SamplingParams& params) {
  PIE_RETURN_IF_ERROR(RequireR(params.r(), 2));
  return std::unique_ptr<EstimatorKernel>(
      new MaxUTwoKernel(params.per_entry[0], params.per_entry[1]));
}

KernelResult MakeMaxObliviousUAsym(const KernelSpec&,
                                   const SamplingParams& params) {
  PIE_RETURN_IF_ERROR(RequireR(params.r(), 2));
  return std::unique_ptr<EstimatorKernel>(
      new MaxUAsymTwoKernel(params.per_entry[0], params.per_entry[1]));
}

KernelResult MakeMaxObliviousHt(const KernelSpec&,
                                const SamplingParams& params) {
  return std::unique_ptr<EstimatorKernel>(new ObliviousHtKernel(
      "max^(HT) oblivious r=" + std::to_string(params.r()), MaxOf,
      params.per_entry));
}

KernelResult MakeOrObliviousL(const KernelSpec&,
                              const SamplingParams& params) {
  const auto& p = params.per_entry;
  if (params.r() == 2) {
    return std::unique_ptr<EstimatorKernel>(new OrLTwoKernel(p[0], p[1]));
  }
  if (params.r() >= 1 && params.IsUniform()) {
    return std::unique_ptr<EstimatorKernel>(
        new OrLUniformKernel(params.r(), p[0]));
  }
  return Status::InvalidArgument(
      "general-p OR^(L) has closed forms only for r = 2; r >= 3 requires "
      "uniform p");
}

KernelResult MakeOrObliviousU(const KernelSpec&,
                              const SamplingParams& params) {
  PIE_RETURN_IF_ERROR(RequireR(params.r(), 2));
  return std::unique_ptr<EstimatorKernel>(
      new OrUTwoKernel(params.per_entry[0], params.per_entry[1]));
}

KernelResult MakeOrObliviousHt(const KernelSpec&,
                               const SamplingParams& params) {
  return std::unique_ptr<EstimatorKernel>(new ObliviousHtKernel(
      "OR^(HT) oblivious r=" + std::to_string(params.r()), OrOf,
      params.per_entry));
}

KernelResult MakeMaxPpsL(const KernelSpec&, const SamplingParams& params) {
  PIE_RETURN_IF_ERROR(RequireR(params.r(), 2));
  return std::unique_ptr<EstimatorKernel>(new MaxLWeightedTwoKernel(
      params.per_entry[0], params.per_entry[1], params.quad_tol));
}

KernelResult MakeMaxPpsHt(const KernelSpec&, const SamplingParams& params) {
  if (params.r() < 1) return Status::InvalidArgument("empty params");
  return std::unique_ptr<EstimatorKernel>(
      new MaxHtWeightedKernel(params.per_entry));
}

KernelResult MakeOrPps(const KernelSpec& spec, const SamplingParams& params) {
  if (params.r() == 2) {
    return std::unique_ptr<EstimatorKernel>(new OrWeightedTwoKernel(
        params.per_entry[0], params.per_entry[1], spec.family));
  }
  if (spec.family != Family::kU && params.r() >= 1 && params.IsUniform()) {
    return std::unique_ptr<EstimatorKernel>(new OrWeightedUniformKernel(
        params.r(), params.per_entry[0], spec.family));
  }
  return Status::InvalidArgument(
      "weighted OR supports r = 2 (any thresholds) or uniform tau (HT/L)");
}

KernelResult MakeMinPpsHt(const KernelSpec&, const SamplingParams& params) {
  if (params.r() < 1) return Status::InvalidArgument("empty params");
  return std::unique_ptr<EstimatorKernel>(
      new MinHtWeightedKernel(params.per_entry));
}

KernelResult MakeLthLargestHt(const KernelSpec& spec,
                              const SamplingParams& params) {
  if (spec.l < 1 || spec.l > params.r()) {
    return Status::InvalidArgument("order statistic l must be in [1, r]");
  }
  const int l = spec.l;
  return std::unique_ptr<EstimatorKernel>(new ObliviousHtKernel(
      "lth-largest^(HT) oblivious l=" + std::to_string(l) +
          " r=" + std::to_string(params.r()),
      [l](const std::vector<double>& v) { return LthOf(v, l); },
      params.per_entry));
}

void RegisterBuiltins(KernelRegistry& registry) {
  auto add = [&registry](Function fn, Scheme sc, Regime re, Family fa,
                         std::string description, KernelFactory factory,
                         std::vector<SamplingParams> examples, int l = 1) {
    KernelEntry entry;
    entry.spec = {fn, sc, re, fa, l};
    entry.description = std::move(description);
    entry.factory = std::move(factory);
    entry.example_params = std::move(examples);
    PIE_CHECK_OK(registry.Register(std::move(entry)));
  };

  // --- weight-oblivious Poisson (Section 4) ---
  add(Function::kMax, Scheme::kOblivious, Regime::kKnownSeeds, Family::kL,
      "dense-first Pareto-optimal max (Thm 4.1/4.2)", MakeMaxObliviousL,
      {{0.5, 0.3}, {0.5, 0.3, 0.7}, {0.4, 0.4, 0.4, 0.4}});
  add(Function::kMax, Scheme::kOblivious, Regime::kKnownSeeds, Family::kU,
      "sparse-first Pareto-optimal max (Sec 4.2)", MakeMaxObliviousU,
      {{0.5, 0.3}});
  add(Function::kMax, Scheme::kOblivious, Regime::kKnownSeeds,
      Family::kUAsym, "asymmetric Pareto-optimal max (Sec 4.2)",
      MakeMaxObliviousUAsym, {{0.5, 0.3}});
  add(Function::kMax, Scheme::kOblivious, Regime::kKnownSeeds, Family::kHt,
      "all-sampled Horvitz-Thompson max", MakeMaxObliviousHt,
      {{0.5, 0.3}, {0.6, 0.7, 0.8}});
  add(Function::kOr, Scheme::kOblivious, Regime::kKnownSeeds, Family::kL,
      "dense-first OR, the distinct-count building block (Sec 4.3)",
      MakeOrObliviousL, {{0.5, 0.3}, {0.2, 0.2, 0.2, 0.2}});
  add(Function::kOr, Scheme::kOblivious, Regime::kKnownSeeds, Family::kU,
      "sparse-first OR (Sec 4.3)", MakeOrObliviousU, {{0.5, 0.3}});
  add(Function::kOr, Scheme::kOblivious, Regime::kKnownSeeds, Family::kHt,
      "all-sampled Horvitz-Thompson OR", MakeOrObliviousHt,
      {{0.5, 0.3}, {0.3, 0.3, 0.3}});
  add(Function::kLthLargest, Scheme::kOblivious, Regime::kKnownSeeds,
      Family::kHt, "all-sampled Horvitz-Thompson l-th largest",
      MakeLthLargestHt, {{0.5, 0.4, 0.6}}, /*l=*/2);

  // --- weighted PPS with known seeds (Section 5) ---
  add(Function::kMax, Scheme::kPps, Regime::kKnownSeeds, Family::kL,
      "Pareto-optimal weighted max from seed bounds (Sec 5.2)", MakeMaxPpsL,
      {{10.0, 8.0}});
  add(Function::kMax, Scheme::kPps, Regime::kKnownSeeds, Family::kHt,
      "inverse-probability weighted max (Sec 5.2)", MakeMaxPpsHt,
      {{10.0, 8.0}, {5.0, 7.0, 9.0}});
  add(Function::kOr, Scheme::kPps, Regime::kKnownSeeds, Family::kL,
      "weighted OR via the binary outcome mapping (Sec 5.1)", MakeOrPps,
      {{3.0, 2.0}, {4.0, 4.0, 4.0}});
  add(Function::kOr, Scheme::kPps, Regime::kKnownSeeds, Family::kU,
      "weighted OR^(U) via the binary outcome mapping (Sec 5.1)", MakeOrPps,
      {{3.0, 2.0}});
  add(Function::kOr, Scheme::kPps, Regime::kKnownSeeds, Family::kHt,
      "weighted OR^(HT) via the binary outcome mapping (Sec 5.1)", MakeOrPps,
      {{3.0, 2.0}, {4.0, 4.0, 4.0}});

  // --- weighted PPS, unknown seeds (Section 6) ---
  add(Function::kMin, Scheme::kPps, Regime::kUnknownSeeds, Family::kHt,
      "inverse-probability min, the one unknown-seeds quantile (Sec 6)",
      MakeMinPpsHt, {{10.0, 8.0}, {6.0, 6.0, 6.0}});
}

}  // namespace

KernelRegistry& KernelRegistry::Global() {
  static KernelRegistry* registry = [] {
    auto* r = new KernelRegistry();
    RegisterBuiltins(*r);
    return r;
  }();
  return *registry;
}

Status KernelRegistry::Register(KernelEntry entry) {
  if (!entry.factory) {
    return Status::InvalidArgument("kernel entry has no factory");
  }
  // Dedup on the same key lookup uses (l is a factory parameter, not part
  // of the lookup key): a second entry differing only in l would be
  // silently unreachable, so reject it here instead.
  for (const auto& existing : entries_) {
    if (SpecMatches(existing.spec, entry.spec)) {
      return Status::InvalidArgument("duplicate kernel spec " +
                                     entry.spec.ToString());
    }
  }
  entries_.push_back(std::move(entry));
  return Status::OK();
}

KernelSpec KernelRegistry::CanonicalSpec(const KernelSpec& spec) const {
  KernelSpec lookup = spec;
  // The oblivious sampled set is full information; both regimes name the
  // same estimator.
  if (lookup.scheme == Scheme::kOblivious) {
    lookup.regime = Regime::kKnownSeeds;
    return lookup;
  }
  // An estimator that needs only unknown seeds remains valid when seeds are
  // known; a known-seeds request served only by an unknown-seeds
  // registration canonicalizes to it.
  if (lookup.scheme == Scheme::kPps && lookup.regime == Regime::kKnownSeeds) {
    for (const auto& entry : entries_) {
      if (SpecMatches(entry.spec, lookup)) return lookup;
    }
    KernelSpec weaker = lookup;
    weaker.regime = Regime::kUnknownSeeds;
    for (const auto& entry : entries_) {
      if (SpecMatches(entry.spec, weaker)) return weaker;
    }
  }
  return lookup;
}

Result<std::unique_ptr<EstimatorKernel>> KernelRegistry::Create(
    const KernelSpec& spec, const SamplingParams& params) const {
  const KernelSpec lookup = CanonicalSpec(spec);
  for (const auto& entry : entries_) {
    if (SpecMatches(entry.spec, lookup)) {
      return entry.factory(lookup, params);
    }
  }
  return Status::NotFound("no kernel registered for " + spec.ToString());
}

}  // namespace pie
