#include "engine/registry.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "core/fast_log.h"
#include "core/functions.h"
#include "core/ht.h"
#include "core/max_l_three.h"
#include "core/max_oblivious.h"
#include "core/max_weighted.h"
#include "core/min_weighted.h"
#include "core/or_oblivious.h"
#include "core/or_weighted.h"
#include "engine/pattern_partition.h"
#include "obs/metrics.h"
#include "util/check.h"

namespace pie {
namespace {

// ---------------------------------------------------------------------------
// Adapter kernels around the core estimator classes. Each adapter fixes the
// sampler configuration at construction so per-key estimation reuses the
// precomputed coefficient tables.
// ---------------------------------------------------------------------------

// Matches an entry on everything but l: LthLargest registrations carry a
// representative l, and the requested l is passed to the factory.
bool SpecMatches(const KernelSpec& entry, const KernelSpec& lookup) {
  return entry.function == lookup.function &&
         entry.scheme == lookup.scheme && entry.regime == lookup.regime &&
         entry.family == lookup.family;
}

Status RequireR(int got, int r) {
  if (got != r) {
    return Status::InvalidArgument("kernel requires r = " + std::to_string(r) +
                                   " instances, got " + std::to_string(got));
  }
  return Status::OK();
}

Status RequireBinary(const std::vector<double>& values) {
  for (double v : values) {
    if (v != 0.0 && v != 1.0) {
      return Status::InvalidArgument("OR variance requires binary values");
    }
  }
  return Status::OK();
}

#ifdef PIE_SIMD
// ---------------------------------------------------------------------------
// Pattern-partitioned branch-free block loops (the PIE_SIMD fast paths).
//
// Batches are processed in blocks of kPartitionBlockRows rows: each block
// is partitioned into stable index buckets by sampling pattern
// (engine/pattern_partition.h), every bucket's rows are gathered into
// dense columns and evaluated by ONE closed form with no data-dependent
// branches -- so the compiler can auto-vectorize the lane loops (the AVX2
// and if-conversion flags ride on pie_build_flags; see the PIE_SIMD block
// in CMakeLists.txt) -- then scattered back to row-indexed outputs. Each
// form hoists only row-invariant coefficients and otherwise replicates
// the scalar estimator's floating-point expression tree operation for
// operation; the bitwise contract (batched == scalar, SIMD == fallback,
// any thread count) is enforced registry-wide by
// tests/simd_partition_test.cc and tests/parallel_scan_test.cc.
// ---------------------------------------------------------------------------

/// Vectorizable std::fmin(1.0, x). GCC will not auto-vectorize fmin on
/// x86 (no vector optab for IEEE min), but with the first operand fixed at
/// 1.0 the blend below returns bit-identical values for EVERY input: for
/// non-NaN x it is the ordinary minimum, and for NaN the comparison is
/// false so both forms yield 1.0.
inline double Min1(double x) { return x < 1.0 ? x : 1.0; }

/// Software-prefetches the slab rows a block loop will gather
/// PrefetchDistanceRows() rows ahead of `base` (PIE_PREFETCH_DIST; 0
/// disables). Scans past ~4 threads are memory-bound -- every key touches
/// up to 4 slabs -- and the partition indirection defeats some hardware
/// prefetch, so the block loops hint the next block's value/sampled (and
/// for PPS kernels seed/param) lines ahead of use. Pure hints: no effect
/// on results.
inline void PrefetchSlabsAhead(const BatchView& batch, int base, bool seeds,
                               bool params) {
  const int dist = PrefetchDistanceRows();
  if (dist <= 0) return;
  const int ahead = base + dist;
  if (ahead >= batch.size) return;
  const int n = std::min(kPartitionBlockRows, batch.size - ahead);
  const size_t lanes =
      static_cast<size_t>(n) * static_cast<size_t>(batch.r);
  PrefetchBytes(batch.value_row(ahead), lanes * sizeof(double));
  PrefetchBytes(batch.sampled_row(ahead), lanes);
  if (seeds) PrefetchBytes(batch.seed_row(ahead), lanes * sizeof(double));
  if (params) PrefetchBytes(batch.param_row(ahead), lanes * sizeof(double));
}

/// Hoisted per-pattern forms of MaxLTwo::EstimateRow (equation (12)).
struct MaxLTwoForms {
  double q, p12, a1, a2;
  explicit MaxLTwoForms(const MaxLTwo& est)
      : q(est.q()),
        p12(est.p1() * est.p2()),
        a1(1.0 / est.p2() - 1.0),
        a2(1.0 / est.p1() - 1.0) {}
  double Only0(double v) const { return v / q; }
  double Only1(double v) const { return v / q; }
  double Both(double v0, double v1) const {
    return std::max(v0, v1) / p12 - (a1 * v0 + a2 * v1) / q;
  }
};

/// Hoisted per-pattern forms of MaxUTwo::EstimateRow (Section 4.2).
struct MaxUTwoForms {
  double pc1, pc2, b1, b2, c, p12;
  explicit MaxUTwoForms(const MaxUTwo& est)
      : pc1(est.p1() * est.c()),
        pc2(est.p2() * est.c()),
        b1(1.0 - est.p2()),
        b2(1.0 - est.p1()),
        c(est.c()),
        p12(est.p1() * est.p2()) {}
  double Only0(double v) const { return v / pc1; }
  double Only1(double v) const { return v / pc2; }
  double Both(double v0, double v1) const {
    return (std::max(v0, v1) - (v0 * b1 + v1 * b2) / c) / p12;
  }
};

/// Hoisted per-pattern forms of MaxUAsymTwo::EstimateRow (Section 4.2).
struct MaxUAsymTwoForms {
  double p1, m, k2, k1, p12;
  explicit MaxUAsymTwoForms(const MaxUAsymTwo& est)
      : p1(est.p1()),
        m(est.m()),
        k2(est.p2() * (1.0 - est.p1()) / est.m()),
        k1(1.0 - est.p2()),
        p12(est.p1() * est.p2()) {}
  double Only0(double v) const { return v / p1; }
  double Only1(double v) const { return v / m; }
  double Both(double v0, double v1) const {
    return (std::max(v0, v1) - k2 * v1 - k1 * v0) / p12;
  }
};

/// Hoisted per-pattern forms of OrLTwo::EstimateRow (Section 4.3).
struct OrLTwoForms {
  double q, p12, a1, a2;
  explicit OrLTwoForms(const OrLTwo& est)
      : q(est.q()),
        p12(est.p1() * est.p2()),
        a1(1.0 / est.p2() - 1.0),
        a2(1.0 / est.p1() - 1.0) {}
  double Only0(double v) const { return v / q; }
  double Only1(double v) const { return v / q; }
  double Both(double v0, double v1) const {
    const double or_v = (v0 != 0.0 || v1 != 0.0) ? 1.0 : 0.0;
    return or_v / p12 - (a1 * v0 + a2 * v1) / q;
  }
};

/// Applies an r=2 form set bucket by bucket over one partitioned block:
/// rows with neither entry sampled estimate 0.
template <typename Forms>
void ApplyR2Forms(const double* value, const R2Partition& part,
                  const Forms& f, double* out) {
  double v0[kPartitionBlockRows];
  double v1[kPartitionBlockRows];
  double e[kPartitionBlockRows];
  ScatterConstant(0.0, part.idx[0], part.count[0], out);
  GatherColumn(value, 2, 0, part.idx[1], part.count[1], v0);
  for (int k = 0; k < part.count[1]; ++k) e[k] = f.Only0(v0[k]);
  Scatter(e, part.idx[1], part.count[1], out);
  GatherColumn(value, 2, 1, part.idx[2], part.count[2], v1);
  for (int k = 0; k < part.count[2]; ++k) e[k] = f.Only1(v1[k]);
  Scatter(e, part.idx[2], part.count[2], out);
  GatherColumn(value, 2, 0, part.idx[3], part.count[3], v0);
  GatherColumn(value, 2, 1, part.idx[3], part.count[3], v1);
  for (int k = 0; k < part.count[3]; ++k) e[k] = f.Both(v0[k], v1[k]);
  Scatter(e, part.idx[3], part.count[3], out);
}

/// Estimate-only blocks for an r=2 oblivious kernel.
template <typename Forms>
void R2EstimateBlocks(BatchView batch, const Forms& f, double* out) {
  for (int base = 0; base < batch.size; base += kPartitionBlockRows) {
    PrefetchSlabsAhead(batch, base, /*seeds=*/false, /*params=*/false);
    const int n = std::min(kPartitionBlockRows, batch.size - base);
    R2Partition part;
    PartitionR2(batch.sampled_row(base), n, &part);
    ApplyR2Forms(batch.value_row(base), part, f, out + base);
  }
}

/// Second-moment blocks: the same forms on squared sampled lanes (the
/// bucket twin of SquareSampledRow + EstimateRow).
template <typename Forms>
void R2SecondMomentBlocks(BatchView batch, const Forms& f, double* out) {
  for (int base = 0; base < batch.size; base += kPartitionBlockRows) {
    PrefetchSlabsAhead(batch, base, /*seeds=*/false, /*params=*/false);
    const int n = std::min(kPartitionBlockRows, batch.size - base);
    R2Partition part;
    PartitionR2(batch.sampled_row(base), n, &part);
    const double* value = batch.value_row(base);
    double* out_block = out + base;
    double v0[kPartitionBlockRows];
    double v1[kPartitionBlockRows];
    double e[kPartitionBlockRows];
    ScatterConstant(0.0, part.idx[0], part.count[0], out_block);
    GatherColumn(value, 2, 0, part.idx[1], part.count[1], v0);
    for (int k = 0; k < part.count[1]; ++k) e[k] = f.Only0(v0[k] * v0[k]);
    Scatter(e, part.idx[1], part.count[1], out_block);
    GatherColumn(value, 2, 1, part.idx[2], part.count[2], v1);
    for (int k = 0; k < part.count[2]; ++k) e[k] = f.Only1(v1[k] * v1[k]);
    Scatter(e, part.idx[2], part.count[2], out_block);
    GatherColumn(value, 2, 0, part.idx[3], part.count[3], v0);
    GatherColumn(value, 2, 1, part.idx[3], part.count[3], v1);
    for (int k = 0; k < part.count[3]; ++k) {
      e[k] = f.Both(v0[k] * v0[k], v1[k] * v1[k]);
    }
    Scatter(e, part.idx[3], part.count[3], out_block);
  }
}

/// Fused estimate + variance blocks: var = e*e - form(squared lanes),
/// matching the fused scalar combine bit for bit.
template <typename Forms>
void R2FusedBlocks(BatchView batch, const Forms& f, double* est,
                   double* var) {
  for (int base = 0; base < batch.size; base += kPartitionBlockRows) {
    PrefetchSlabsAhead(batch, base, /*seeds=*/false, /*params=*/false);
    const int n = std::min(kPartitionBlockRows, batch.size - base);
    R2Partition part;
    PartitionR2(batch.sampled_row(base), n, &part);
    const double* value = batch.value_row(base);
    double* est_block = est + base;
    double* var_block = var + base;
    double v0[kPartitionBlockRows];
    double v1[kPartitionBlockRows];
    double e[kPartitionBlockRows];
    double w[kPartitionBlockRows];
    ScatterConstant(0.0, part.idx[0], part.count[0], est_block);
    ScatterConstant(0.0, part.idx[0], part.count[0], var_block);
    GatherColumn(value, 2, 0, part.idx[1], part.count[1], v0);
    for (int k = 0; k < part.count[1]; ++k) {
      const double ei = f.Only0(v0[k]);
      const double si = f.Only0(v0[k] * v0[k]);
      e[k] = ei;
      w[k] = ei * ei - si;
    }
    Scatter(e, part.idx[1], part.count[1], est_block);
    Scatter(w, part.idx[1], part.count[1], var_block);
    GatherColumn(value, 2, 1, part.idx[2], part.count[2], v1);
    for (int k = 0; k < part.count[2]; ++k) {
      const double ei = f.Only1(v1[k]);
      const double si = f.Only1(v1[k] * v1[k]);
      e[k] = ei;
      w[k] = ei * ei - si;
    }
    Scatter(e, part.idx[2], part.count[2], est_block);
    Scatter(w, part.idx[2], part.count[2], var_block);
    GatherColumn(value, 2, 0, part.idx[3], part.count[3], v0);
    GatherColumn(value, 2, 1, part.idx[3], part.count[3], v1);
    for (int k = 0; k < part.count[3]; ++k) {
      const double ei = f.Both(v0[k], v1[k]);
      const double si = f.Both(v0[k] * v0[k], v1[k] * v1[k]);
      e[k] = ei;
      w[k] = ei * ei - si;
    }
    Scatter(e, part.idx[3], part.count[3], est_block);
    Scatter(w, part.idx[3], part.count[3], var_block);
  }
}

/// OrUTwo's scalar row form checks that sampled values are binary before
/// delegating to max^(U); keep the checks (they guard caller bugs) in one
/// pass ahead of the branch-free bucket loops.
void CheckR2BinarySampled(BatchView batch) {
  for (int i = 0; i < batch.size; ++i) {
    const uint8_t* sampled = batch.sampled_row(i);
    const double* value = batch.value_row(i);
    for (int j = 0; j < 2; ++j) {
      if (sampled[j]) {
        PIE_CHECK(value[j] == 0.0 || value[j] == 1.0);
      }
    }
  }
}

/// Branch-free MaxLWeightedTwo::EvalSorted over dense determining-vector
/// lanes. Pass 1 orders each pair by blends and resolves the log-free
/// regimes (hi <= 0; equation (26); the constant regime hi >= tau_hi); the
/// two log regimes (equations (29)/(30)) evaluate in a second pass so the
/// log -- scalar libm in the default tier for bitwise stability, the
/// vectorizable FastLog lanes under PIE_FAST_LOG (core/fast_log.h) -- runs
/// only on lanes that need it. Regime tests replicate EvalSorted's check
/// order exactly.
inline void EvalSortedDense(const double* d1, const double* d2, int n,
                            double tau1, double tau2, double* out) {
  double hi_a[kPartitionBlockRows];
  double lo_a[kPartitionBlockRows];
  double th_a[kPartitionBlockRows];
  double tl_a[kPartitionBlockRows];
  // Pure double lanes (a uint8 regime flag here would block the
  // vectorizer: no 4x8-bit vector type pairs with the 4x64-bit lanes);
  // the compaction loop below re-derives the regime from the stored pairs.
  for (int k = 0; k < n; ++k) {
    const bool first = d1[k] >= d2[k];
    const double hi = first ? d1[k] : d2[k];
    const double lo = first ? d2[k] : d1[k];
    const double th = first ? tau1 : tau2;
    const double tl = first ? tau2 : tau1;
    hi_a[k] = hi;
    lo_a[k] = lo;
    th_a[k] = th;
    tl_a[k] = tl;
    const double e26 = lo + (hi - lo) / Min1(hi / th);
    const bool zero = hi <= 0;
    const bool low_certain = lo >= tl;
    const bool high_certain = hi >= th;
    out[k] = zero ? 0.0 : (low_certain ? e26 : (high_certain ? hi : 0.0));
  }
  // Pass 2: compact the log lanes by regime so only the std::log call
  // itself runs scalar; the divide-heavy arithmetic before and after it is
  // dense and branch-free. Every expression keeps EvalSorted's exact parse
  // tree (additions stay left-associated), so splitting the evaluation
  // around the log does not move a single rounding.
  // Branch-free compaction (unconditional stores + predicated increments):
  // the regime split is ~50/50 on mixed batches, so a branchy loop would
  // mispredict on nearly every lane.
  uint16_t idx29[kPartitionBlockRows];
  uint16_t idx30[kPartitionBlockRows];
  int n29 = 0, n30 = 0;
#ifdef PIE_SIMD_AVX512
  if (UseAvx512Tier()) {
    // vpcompressq replaces the predicated-increment loop; the masks use
    // ordered-quiet compares matching the scalar predicates, and compress
    // preserves lane order, so the index sequences are identical.
    avx512::CompactLogRegimes(hi_a, lo_a, th_a, tl_a, n, idx29, &n29,
                              idx30, &n30);
  } else
#endif
  {
    for (int k = 0; k < n; ++k) {
      const bool needs_log =
          !(hi_a[k] <= 0) && !(lo_a[k] >= tl_a[k]) && !(hi_a[k] >= th_a[k]);
      const bool is29 = hi_a[k] <= tl_a[k];
      idx29[n29] = static_cast<uint16_t>(k);
      idx30[n30] = static_cast<uint16_t>(k);
      n29 += needs_log && is29 ? 1 : 0;
      n30 += needs_log && !is29 ? 1 : 0;
    }
  }
  {
    // Live counters for ROADMAP open item 1a: the share of serving
    // max^(L) rows that lands in the scalar std::log regimes is now a
    // metric instead of a perf-profile claim. Counters only -- the lane
    // math above and below is untouched.
    struct LogLaneCounters {
      obs::Counter& rows;
      obs::Counter& eq29;
      obs::Counter& eq30;
      obs::Counter& fastlog;
    };
    static LogLaneCounters* const counters = [] {
      auto& reg = obs::MetricsRegistry::Global();
      return new LogLaneCounters{
          reg.GetCounter("pie_simd_maxl_rows_total",
                         "Rows through the dense weighted max^(L) r=2 "
                         "evaluator"),
          reg.GetCounter("pie_simd_log_lanes_total",
                         "Rows requiring a scalar std::log, by closed-form "
                         "equation", {{"eq", "29"}}),
          reg.GetCounter("pie_simd_log_lanes_total",
                         "Rows requiring a scalar std::log, by closed-form "
                         "equation", {{"eq", "30"}}),
          reg.GetCounter("pie_fastlog_lanes_total",
                         "Log-regime lanes evaluated by the vectorized "
                         "FastLog tier (PIE_FAST_LOG)")};
    }();
    counters->rows.Add(static_cast<uint64_t>(n));
    if (n29 > 0) counters->eq29.Add(static_cast<uint64_t>(n29));
    if (n30 > 0) counters->eq30.Add(static_cast<uint64_t>(n30));
#ifdef PIE_FAST_LOG
    if (n29 + n30 > 0) counters->fastlog.Add(static_cast<uint64_t>(n29 + n30));
#else
    (void)counters->fastlog;
#endif
  }
  double hi_d[kPartitionBlockRows], lo_d[kPartitionBlockRows];
  double th_d[kPartitionBlockRows], tl_d[kPartitionBlockRows];
  double lg[kPartitionBlockRows], res[kPartitionBlockRows];
  if (n29 > 0) {  // equation (29): hi <= tau_lo
    GatherColumn(hi_a, 1, 0, idx29, n29, hi_d);
    GatherColumn(lo_a, 1, 0, idx29, n29, lo_d);
    GatherColumn(th_a, 1, 0, idx29, n29, th_d);
    GatherColumn(tl_a, 1, 0, idx29, n29, tl_d);
    for (int k = 0; k < n29; ++k) {
      const double b = th_d[k] + tl_d[k];
      lg[k] = (b - lo_d[k]) * hi_d[k] / (lo_d[k] * (b - hi_d[k]));
    }
    for (int k = 0; k < n29; ++k) lg[k] = PieLog(lg[k]);
    for (int k = 0; k < n29; ++k) {
      const double hi = hi_d[k], lo = lo_d[k];
      const double tau_hi = th_d[k], tau_lo = tl_d[k];
      const double b = tau_hi + tau_lo;
      res[k] = tau_hi * tau_lo / (b - hi) +
               tau_hi * tau_lo * (tau_hi - hi) / (hi * b) * lg[k] +
               (hi - lo) * tau_hi * tau_lo * (tau_hi - hi) /
                   (hi * (b - lo) * (b - hi));
    }
    Scatter(res, idx29, n29, out);
  }
  if (n30 > 0) {  // equation (30): tau_lo < hi < tau_hi
    GatherColumn(hi_a, 1, 0, idx30, n30, hi_d);
    GatherColumn(lo_a, 1, 0, idx30, n30, lo_d);
    GatherColumn(th_a, 1, 0, idx30, n30, th_d);
    GatherColumn(tl_a, 1, 0, idx30, n30, tl_d);
    for (int k = 0; k < n30; ++k) {
      const double b = th_d[k] + tl_d[k];
      lg[k] = (b - lo_d[k]) * tl_d[k] / (lo_d[k] * th_d[k]);
    }
    for (int k = 0; k < n30; ++k) lg[k] = PieLog(lg[k]);
    for (int k = 0; k < n30; ++k) {
      const double hi = hi_d[k], lo = lo_d[k];
      const double tau_hi = th_d[k], tau_lo = tl_d[k];
      const double b = tau_hi + tau_lo;
      res[k] = tau_hi + tau_lo - tau_hi * tau_lo / hi +
               tau_hi * tau_lo * (tau_hi - hi) / (hi * b) * lg[k] +
               tau_lo * (tau_hi - hi) * (tau_lo - lo) / ((b - lo) * hi);
    }
    Scatter(res, idx30, n30, out);
  }
}

/// Dense r=2 blocks of MaxHtWeighted (shared by the weighted max kernels'
/// second moments): per bucket, the identified max, its identifiability
/// flag, and prob = min(1, mx/tau1) min(1, mx/tau2) are branch-free;
/// non-identified lanes blend to 0. Null output pointers skip a result.
inline void MaxHtR2Blocks(BatchView batch, double tau1, double tau2,
                          double* est, double* second) {
  for (int base = 0; base < batch.size; base += kPartitionBlockRows) {
    PrefetchSlabsAhead(batch, base, /*seeds=*/true, /*params=*/true);
    const int n = std::min(kPartitionBlockRows, batch.size - base);
    R2Partition part;
    PartitionR2(batch.sampled_row(base), n, &part);
    const double* value = batch.value_row(base);
    const double* seed = batch.seed_row(base);
    const double* tau_row = batch.param_row(base);
    double v[kPartitionBlockRows];
    double sd[kPartitionBlockRows];
    double bt[kPartitionBlockRows];
    double e[kPartitionBlockRows];
    double s[kPartitionBlockRows];
    for (int bucket = 0; bucket < 4; ++bucket) {
      const uint16_t* idx = part.idx[bucket];
      const int cnt = part.count[bucket];
      if (bucket == 0) {
        if (est != nullptr) ScatterConstant(0.0, idx, cnt, est + base);
        if (second != nullptr) {
          ScatterConstant(0.0, idx, cnt, second + base);
        }
        continue;
      }
      if (bucket == 3) {
        GatherColumn(value, 2, 0, idx, cnt, v);
        GatherColumn(value, 2, 1, idx, cnt, sd);  // reuse as v1 lanes
        for (int k = 0; k < cnt; ++k) {
          const double mx = std::max(std::max(0.0, v[k]), sd[k]);
          const bool ok = mx > 0;
          const double prob =
              Min1(mx / tau1) * Min1(mx / tau2);
          e[k] = ok ? mx / prob : 0.0;
          s[k] = ok ? mx * mx / prob : 0.0;
        }
      } else {
        // Exactly one entry sampled: the other entry's seed bound decides
        // identifiability (MaxHtWeighted::IdentifiedMax).
        const int have = bucket == 1 ? 0 : 1;
        const int miss = 1 - have;
        GatherColumn(value, 2, have, idx, cnt, v);
        GatherColumn(seed, 2, miss, idx, cnt, sd);
        GatherColumn(tau_row, 2, miss, idx, cnt, bt);
        // ok = mx > 0 && !(bound > mx) split into two single-comparison
        // blends (v[k] > 0 iff mx > 0 since mx = max(0, v[k])): GCC's
        // if-converter refuses the fused && form, and each chain picks the
        // same value the scalar path does.
        for (int k = 0; k < cnt; ++k) {
          const double mx = std::max(0.0, v[k]);
          const double bound = sd[k] * bt[k];
          const double prob =
              Min1(mx / tau1) * Min1(mx / tau2);
          const double e_ok = bound > mx ? 0.0 : mx / prob;
          const double s_ok = bound > mx ? 0.0 : mx * mx / prob;
          e[k] = v[k] > 0 ? e_ok : 0.0;
          s[k] = v[k] > 0 ? s_ok : 0.0;
        }
      }
      if (est != nullptr) Scatter(e, idx, cnt, est + base);
      if (second != nullptr) Scatter(s, idx, cnt, second + base);
    }
  }
}

/// Dense all-sampled blocks of MinHtWeighted: survivors accumulate the
/// columnwise min and all-sampled probability in entry order (mirroring
/// AllSampledMin); everything else estimates 0. Null pointers skip a
/// result.
inline void MinHtBlocks(BatchView batch, const std::vector<double>& tau,
                        double* est, double* second) {
  const int r = static_cast<int>(tau.size());
  for (int base = 0; base < batch.size; base += kPartitionBlockRows) {
    PrefetchSlabsAhead(batch, base, /*seeds=*/false, /*params=*/false);
    const int n = std::min(kPartitionBlockRows, batch.size - base);
    AllSampledPartition part;
    PartitionAllSampled(batch.sampled_row(base), r, n, &part);
    if (est != nullptr) {
      ScatterConstant(0.0, part.rest, part.rest_count, est + base);
    }
    if (second != nullptr) {
      ScatterConstant(0.0, part.rest, part.rest_count, second + base);
    }
    const double* value = batch.value_row(base);
    double col[kPartitionBlockRows];
    double mn[kPartitionBlockRows];
    double prob[kPartitionBlockRows];
    for (int j = 0; j < r; ++j) {
      GatherColumn(value, r, j, part.idx, part.count, col);
      const double tau_j = tau[static_cast<size_t>(j)];
      if (j == 0) {
        for (int k = 0; k < part.count; ++k) {
          mn[k] = col[k];
          prob[k] = Min1(col[k] / tau_j);
        }
      } else {
        for (int k = 0; k < part.count; ++k) {
          mn[k] = std::fmin(mn[k], col[k]);
          prob[k] *= Min1(col[k] / tau_j);
        }
      }
    }
    double e[kPartitionBlockRows];
    double s[kPartitionBlockRows];
    for (int k = 0; k < part.count; ++k) {
      e[k] = mn[k] / prob[k];
      s[k] = mn[k] * mn[k] / prob[k];
    }
    if (est != nullptr) Scatter(e, part.idx, part.count, est + base);
    if (second != nullptr) Scatter(s, part.idx, part.count, second + base);
  }
}
#endif  // PIE_SIMD

/// Horvitz-Thompson over weight-oblivious outcomes for any primitive f.
class ObliviousHtKernel : public EstimatorKernel {
 public:
  ObliviousHtKernel(std::string name, VectorFunction f,
                    std::vector<double> p)
      : name_(std::move(name)), f_(std::move(f)), p_(std::move(p)) {}

  double Estimate(const Outcome& outcome) const override {
    PIE_DCHECK(outcome.scheme == Scheme::kOblivious);
    return ObliviousHtEstimate(outcome.oblivious, f_);
  }
  void EstimateMany(BatchView batch, double* out) const override {
    CheckBatchLayout(batch, Scheme::kOblivious,
                     static_cast<int>(p_.size()));
#ifdef PIE_SIMD
    PartitionedMany(batch, out, nullptr);
#else
    std::vector<double> scratch;
    scratch.reserve(p_.size());
    for (int i = 0; i < batch.size; ++i) {
      out[i] = ObliviousHtEstimateRow(batch.param_row(i),
                                      batch.sampled_row(i),
                                      batch.value_row(i), batch.r, f_,
                                      &scratch);
    }
#endif
  }
  double EstimateSecondMoment(const Outcome& outcome) const override {
    PIE_DCHECK(outcome.scheme == Scheme::kOblivious);
    const ObliviousOutcome& o = outcome.oblivious;
    std::vector<double> scratch;
    scratch.reserve(p_.size());
    return ObliviousHtSecondMomentRow(o.p.data(), o.sampled.data(),
                                      o.value.data(), o.r(), f_, &scratch);
  }
  void EstimateSecondMomentMany(BatchView batch, double* out) const override {
    CheckBatchLayout(batch, Scheme::kOblivious,
                     static_cast<int>(p_.size()));
#ifdef PIE_SIMD
    PartitionedMany(batch, nullptr, out);
#else
    std::vector<double> scratch;
    scratch.reserve(p_.size());
    for (int i = 0; i < batch.size; ++i) {
      out[i] = ObliviousHtSecondMomentRow(batch.param_row(i),
                                          batch.sampled_row(i),
                                          batch.value_row(i), batch.r, f_,
                                          &scratch);
    }
#endif
  }
  void EstimateWithVarianceMany(BatchView batch, double* est,
                                double* var) const override {
    CheckBatchLayout(batch, Scheme::kOblivious,
                     static_cast<int>(p_.size()));
#ifdef PIE_SIMD
    PartitionedMany(batch, est, var);
    for (int i = 0; i < batch.size; ++i) {
      var[i] = est[i] * est[i] - var[i];
    }
#else
    std::vector<double> scratch;
    scratch.reserve(p_.size());
    for (int i = 0; i < batch.size; ++i) {
      double second;
      ObliviousHtEstimateWithSecondMomentRow(
          batch.param_row(i), batch.sampled_row(i), batch.value_row(i),
          batch.r, f_, &scratch, &est[i], &second);
      var[i] = est[i] * est[i] - second;
    }
#endif
  }
  Result<double> Variance(const std::vector<double>& values) const override {
    return ObliviousHtVariance(values, p_, f_);
  }
  std::string name() const override { return name_; }

 private:
#ifdef PIE_SIMD
  /// All-sampled partition: non-survivors estimate 0 without touching f_
  /// (a std::function, so its lane math cannot fuse into a branch-free
  /// loop -- the win is routing rows that cannot contribute around the
  /// all-sampled scan and call machinery). Survivors run the fused scalar
  /// row core, whose estimate/second pair shares one f(v) evaluation.
  void PartitionedMany(BatchView batch, double* est, double* second) const {
    const int r = static_cast<int>(p_.size());
    std::vector<double> scratch;
    scratch.reserve(p_.size());
    AllSampledPartition part;
    for (int base = 0; base < batch.size; base += kPartitionBlockRows) {
      PrefetchSlabsAhead(batch, base, /*seeds=*/false, /*params=*/true);
      const int n = std::min(kPartitionBlockRows, batch.size - base);
      PartitionAllSampled(batch.sampled_row(base), r, n, &part);
      if (est != nullptr) {
        ScatterConstant(0.0, part.rest, part.rest_count, est + base);
      }
      if (second != nullptr) {
        ScatterConstant(0.0, part.rest, part.rest_count, second + base);
      }
      for (int k = 0; k < part.count; ++k) {
        const int i = base + part.idx[k];
        double e, s;
        ObliviousHtEstimateWithSecondMomentRow(
            batch.param_row(i), batch.sampled_row(i), batch.value_row(i),
            batch.r, f_, &scratch, &e, &s);
        if (est != nullptr) est[i] = e;
        if (second != nullptr) second[i] = s;
      }
    }
  }
#endif

  std::string name_;
  VectorFunction f_;
  std::vector<double> p_;
};

/// Squares the sampled entries of a length-r row into `out` (unsampled
/// slots are copied through untouched; the estimators never read them, but
/// copying keeps the row well-formed). The slab-loop twin of the base
/// EstimateSecondMoment's squared-outcome bridge: x * x on the same lanes,
/// so the batched and scalar second-moment paths stay bitwise identical.
inline void SquareSampledRow(const uint8_t* sampled, const double* value,
                             int r, double* out) {
  for (int i = 0; i < r; ++i) {
    out[i] = sampled[i] ? value[i] * value[i] : value[i];
  }
}

/// Fused variance combine for the binary (OR) kernels, whose second moment
/// IS the point estimate (OR^2 = OR): var = e*e - e, the same arithmetic
/// the two-pass bridge performs after its redundant second estimate pass.
/// One estimate loop therefore serves the whole fused scan.
inline void BinaryVarianceFromEstimates(const double* est, int n,
                                        double* var) {
  for (int i = 0; i < n; ++i) {
    var[i] = est[i] * est[i] - est[i];
  }
}

class MaxLTwoKernel : public EstimatorKernel {
 public:
  MaxLTwoKernel(double p1, double p2) : est_(p1, p2) {}
  double Estimate(const Outcome& outcome) const override {
    PIE_DCHECK(outcome.scheme == Scheme::kOblivious);
    return est_.Estimate(outcome.oblivious);
  }
  void EstimateMany(BatchView batch, double* out) const override {
    CheckBatchLayout(batch, Scheme::kOblivious, 2);
#ifdef PIE_SIMD
    R2EstimateBlocks(batch, MaxLTwoForms(est_), out);
#else
    for (int i = 0; i < batch.size; ++i) {
      out[i] = est_.EstimateRow(batch.sampled_row(i), batch.value_row(i));
    }
#endif
  }
  void EstimateSecondMomentMany(BatchView batch, double* out) const override {
    CheckBatchLayout(batch, Scheme::kOblivious, 2);
#ifdef PIE_SIMD
    R2SecondMomentBlocks(batch, MaxLTwoForms(est_), out);
#else
    double sq[2];
    for (int i = 0; i < batch.size; ++i) {
      const uint8_t* sampled = batch.sampled_row(i);
      SquareSampledRow(sampled, batch.value_row(i), 2, sq);
      out[i] = est_.EstimateRow(sampled, sq);
    }
#endif
  }
  void EstimateWithVarianceMany(BatchView batch, double* est,
                                double* var) const override {
    CheckBatchLayout(batch, Scheme::kOblivious, 2);
#ifdef PIE_SIMD
    R2FusedBlocks(batch, MaxLTwoForms(est_), est, var);
#else
    double sq[2];
    for (int i = 0; i < batch.size; ++i) {
      const uint8_t* sampled = batch.sampled_row(i);
      const double* value = batch.value_row(i);
      const double e = est_.EstimateRow(sampled, value);
      SquareSampledRow(sampled, value, 2, sq);
      est[i] = e;
      var[i] = e * e - est_.EstimateRow(sampled, sq);
    }
#endif
  }
  Result<double> Variance(const std::vector<double>& values) const override {
    PIE_RETURN_IF_ERROR(RequireR(static_cast<int>(values.size()), 2));
    return est_.Variance(values[0], values[1]);
  }
  std::string name() const override { return "max^(L) oblivious r=2"; }

 private:
  MaxLTwo est_;
};

class MaxLThreeKernel : public EstimatorKernel {
 public:
  MaxLThreeKernel(double p1, double p2, double p3) : est_(p1, p2, p3) {}
  double Estimate(const Outcome& outcome) const override {
    PIE_DCHECK(outcome.scheme == Scheme::kOblivious);
    return est_.Estimate(outcome.oblivious);
  }
  Result<double> Variance(const std::vector<double>& values) const override {
    PIE_RETURN_IF_ERROR(RequireR(static_cast<int>(values.size()), 3));
    return est_.Variance({values[0], values[1], values[2]});
  }
  std::string name() const override { return "max^(L) oblivious r=3"; }

 private:
  MaxLThree est_;
};

class MaxLUniformKernel : public EstimatorKernel {
 public:
  MaxLUniformKernel(int r, double p) : est_(r, p) {}
  double Estimate(const Outcome& outcome) const override {
    PIE_DCHECK(outcome.scheme == Scheme::kOblivious);
    return est_.Estimate(outcome.oblivious);
  }
  void EstimateMany(BatchView batch, double* out) const override {
    CheckBatchLayout(batch, Scheme::kOblivious, est_.r());
#ifdef PIE_SIMD
    // The Theorem 4.2 estimate is a sorted dot product, so survivor rows
    // stay scalar; partitioning pays by routing empty outcomes (estimate
    // exactly 0) around the sort entirely.
    std::vector<double> scratch;
    scratch.reserve(static_cast<size_t>(est_.r()));
    AllSampledPartition part;
    for (int base = 0; base < batch.size; base += kPartitionBlockRows) {
      const int n = std::min(kPartitionBlockRows, batch.size - base);
      PartitionAnySampled(batch.sampled_row(base), est_.r(), n, &part);
      ScatterConstant(0.0, part.rest, part.rest_count, out + base);
      for (int k = 0; k < part.count; ++k) {
        const int i = base + part.idx[k];
        out[i] = est_.EstimateRow(batch.sampled_row(i), batch.value_row(i),
                                  &scratch);
      }
    }
#else
    std::vector<double> scratch;
    scratch.reserve(static_cast<size_t>(est_.r()));
    for (int i = 0; i < batch.size; ++i) {
      out[i] = est_.EstimateRow(batch.sampled_row(i), batch.value_row(i),
                                &scratch);
    }
#endif
  }
  void EstimateSecondMomentMany(BatchView batch, double* out) const override {
    CheckBatchLayout(batch, Scheme::kOblivious, est_.r());
    std::vector<double> scratch;
    scratch.reserve(static_cast<size_t>(est_.r()));
    std::vector<double> sq(static_cast<size_t>(est_.r()));
#ifdef PIE_SIMD
    AllSampledPartition part;
    for (int base = 0; base < batch.size; base += kPartitionBlockRows) {
      const int n = std::min(kPartitionBlockRows, batch.size - base);
      PartitionAnySampled(batch.sampled_row(base), est_.r(), n, &part);
      ScatterConstant(0.0, part.rest, part.rest_count, out + base);
      for (int k = 0; k < part.count; ++k) {
        const int i = base + part.idx[k];
        const uint8_t* sampled = batch.sampled_row(i);
        SquareSampledRow(sampled, batch.value_row(i), est_.r(), sq.data());
        out[i] = est_.EstimateRow(sampled, sq.data(), &scratch);
      }
    }
#else
    for (int i = 0; i < batch.size; ++i) {
      const uint8_t* sampled = batch.sampled_row(i);
      SquareSampledRow(sampled, batch.value_row(i), est_.r(), sq.data());
      out[i] = est_.EstimateRow(sampled, sq.data(), &scratch);
    }
#endif
  }
  void EstimateWithVarianceMany(BatchView batch, double* est,
                                double* var) const override {
    CheckBatchLayout(batch, Scheme::kOblivious, est_.r());
    std::vector<double> scratch;
    scratch.reserve(static_cast<size_t>(est_.r()));
    std::vector<double> sq(static_cast<size_t>(est_.r()));
#ifdef PIE_SIMD
    AllSampledPartition part;
    for (int base = 0; base < batch.size; base += kPartitionBlockRows) {
      const int n = std::min(kPartitionBlockRows, batch.size - base);
      PartitionAnySampled(batch.sampled_row(base), est_.r(), n, &part);
      ScatterConstant(0.0, part.rest, part.rest_count, est + base);
      ScatterConstant(0.0, part.rest, part.rest_count, var + base);
      for (int k = 0; k < part.count; ++k) {
        const int i = base + part.idx[k];
        const uint8_t* sampled = batch.sampled_row(i);
        const double* value = batch.value_row(i);
        const double e = est_.EstimateRow(sampled, value, &scratch);
        SquareSampledRow(sampled, value, est_.r(), sq.data());
        est[i] = e;
        var[i] = e * e - est_.EstimateRow(sampled, sq.data(), &scratch);
      }
    }
#else
    for (int i = 0; i < batch.size; ++i) {
      const uint8_t* sampled = batch.sampled_row(i);
      const double* value = batch.value_row(i);
      const double e = est_.EstimateRow(sampled, value, &scratch);
      SquareSampledRow(sampled, value, est_.r(), sq.data());
      est[i] = e;
      var[i] = e * e - est_.EstimateRow(sampled, sq.data(), &scratch);
    }
#endif
  }
  Result<double> Variance(const std::vector<double>& values) const override {
    if (static_cast<int>(values.size()) != est_.r() || est_.r() > 25) {
      return Status::InvalidArgument(
          "exact max^(L) variance needs matching r <= 25");
    }
    return est_.Variance(values);
  }
  std::string name() const override {
    return "max^(L) oblivious uniform r=" + std::to_string(est_.r());
  }

 private:
  MaxLUniform est_;
};

class MaxUTwoKernel : public EstimatorKernel {
 public:
  MaxUTwoKernel(double p1, double p2) : est_(p1, p2) {}
  double Estimate(const Outcome& outcome) const override {
    PIE_DCHECK(outcome.scheme == Scheme::kOblivious);
    return est_.Estimate(outcome.oblivious);
  }
  void EstimateMany(BatchView batch, double* out) const override {
    CheckBatchLayout(batch, Scheme::kOblivious, 2);
#ifdef PIE_SIMD
    R2EstimateBlocks(batch, MaxUTwoForms(est_), out);
#else
    for (int i = 0; i < batch.size; ++i) {
      out[i] = est_.EstimateRow(batch.sampled_row(i), batch.value_row(i));
    }
#endif
  }
  void EstimateSecondMomentMany(BatchView batch, double* out) const override {
    CheckBatchLayout(batch, Scheme::kOblivious, 2);
#ifdef PIE_SIMD
    R2SecondMomentBlocks(batch, MaxUTwoForms(est_), out);
#else
    double sq[2];
    for (int i = 0; i < batch.size; ++i) {
      const uint8_t* sampled = batch.sampled_row(i);
      SquareSampledRow(sampled, batch.value_row(i), 2, sq);
      out[i] = est_.EstimateRow(sampled, sq);
    }
#endif
  }
  void EstimateWithVarianceMany(BatchView batch, double* est,
                                double* var) const override {
    CheckBatchLayout(batch, Scheme::kOblivious, 2);
#ifdef PIE_SIMD
    R2FusedBlocks(batch, MaxUTwoForms(est_), est, var);
#else
    double sq[2];
    for (int i = 0; i < batch.size; ++i) {
      const uint8_t* sampled = batch.sampled_row(i);
      const double* value = batch.value_row(i);
      const double e = est_.EstimateRow(sampled, value);
      SquareSampledRow(sampled, value, 2, sq);
      est[i] = e;
      var[i] = e * e - est_.EstimateRow(sampled, sq);
    }
#endif
  }
  Result<double> Variance(const std::vector<double>& values) const override {
    PIE_RETURN_IF_ERROR(RequireR(static_cast<int>(values.size()), 2));
    return est_.Variance(values[0], values[1]);
  }
  std::string name() const override { return "max^(U) oblivious r=2"; }

 private:
  MaxUTwo est_;
};

class MaxUAsymTwoKernel : public EstimatorKernel {
 public:
  MaxUAsymTwoKernel(double p1, double p2) : est_(p1, p2) {}
  double Estimate(const Outcome& outcome) const override {
    PIE_DCHECK(outcome.scheme == Scheme::kOblivious);
    return est_.Estimate(outcome.oblivious);
  }
  void EstimateMany(BatchView batch, double* out) const override {
    CheckBatchLayout(batch, Scheme::kOblivious, 2);
#ifdef PIE_SIMD
    R2EstimateBlocks(batch, MaxUAsymTwoForms(est_), out);
#else
    for (int i = 0; i < batch.size; ++i) {
      out[i] = est_.EstimateRow(batch.sampled_row(i), batch.value_row(i));
    }
#endif
  }
  void EstimateSecondMomentMany(BatchView batch, double* out) const override {
    CheckBatchLayout(batch, Scheme::kOblivious, 2);
#ifdef PIE_SIMD
    R2SecondMomentBlocks(batch, MaxUAsymTwoForms(est_), out);
#else
    double sq[2];
    for (int i = 0; i < batch.size; ++i) {
      const uint8_t* sampled = batch.sampled_row(i);
      SquareSampledRow(sampled, batch.value_row(i), 2, sq);
      out[i] = est_.EstimateRow(sampled, sq);
    }
#endif
  }
  void EstimateWithVarianceMany(BatchView batch, double* est,
                                double* var) const override {
    CheckBatchLayout(batch, Scheme::kOblivious, 2);
#ifdef PIE_SIMD
    R2FusedBlocks(batch, MaxUAsymTwoForms(est_), est, var);
#else
    double sq[2];
    for (int i = 0; i < batch.size; ++i) {
      const uint8_t* sampled = batch.sampled_row(i);
      const double* value = batch.value_row(i);
      const double e = est_.EstimateRow(sampled, value);
      SquareSampledRow(sampled, value, 2, sq);
      est[i] = e;
      var[i] = e * e - est_.EstimateRow(sampled, sq);
    }
#endif
  }
  Result<double> Variance(const std::vector<double>& values) const override {
    PIE_RETURN_IF_ERROR(RequireR(static_cast<int>(values.size()), 2));
    return est_.Variance(values[0], values[1]);
  }
  std::string name() const override { return "max^(Uas) oblivious r=2"; }

 private:
  MaxUAsymTwo est_;
};

class OrLTwoKernel : public EstimatorKernel {
 public:
  OrLTwoKernel(double p1, double p2) : est_(p1, p2) {}
  double Estimate(const Outcome& outcome) const override {
    PIE_DCHECK(outcome.scheme == Scheme::kOblivious);
    return est_.Estimate(outcome.oblivious);
  }
  void EstimateMany(BatchView batch, double* out) const override {
    CheckBatchLayout(batch, Scheme::kOblivious, 2);
#ifdef PIE_SIMD
    R2EstimateBlocks(batch, OrLTwoForms(est_), out);
#else
    for (int i = 0; i < batch.size; ++i) {
      out[i] = est_.EstimateRow(batch.sampled_row(i), batch.value_row(i));
    }
#endif
  }
  // Binary domain: OR(v)^2 = OR(v), so the point estimate IS the unbiased
  // second-moment estimate (and 0/1 are fixed points of squaring, so this
  // is bitwise the base squared-outcome bridge).
  double EstimateSecondMoment(const Outcome& outcome) const override {
    return Estimate(outcome);
  }
  void EstimateSecondMomentMany(BatchView batch, double* out) const override {
    EstimateMany(batch, out);
  }
  void EstimateWithVarianceMany(BatchView batch, double* est,
                                double* var) const override {
    EstimateMany(batch, est);
    BinaryVarianceFromEstimates(est, batch.size, var);
  }
  Result<double> Variance(const std::vector<double>& values) const override {
    PIE_RETURN_IF_ERROR(RequireR(static_cast<int>(values.size()), 2));
    PIE_RETURN_IF_ERROR(RequireBinary(values));
    return est_.Variance(static_cast<int>(values[0]),
                         static_cast<int>(values[1]));
  }
  std::string name() const override { return "OR^(L) oblivious r=2"; }

 private:
  OrLTwo est_;
};

class OrLUniformKernel : public EstimatorKernel {
 public:
  OrLUniformKernel(int r, double p) : est_(r, p) {}
  double Estimate(const Outcome& outcome) const override {
    PIE_DCHECK(outcome.scheme == Scheme::kOblivious);
    return est_.Estimate(outcome.oblivious);
  }
  void EstimateMany(BatchView batch, double* out) const override {
    CheckBatchLayout(batch, Scheme::kOblivious, est_.r());
#ifdef PIE_SIMD
    // Rows without a sampled entry estimate 0 dense; survivors run the
    // checked counting row (the estimate itself is a prefix-sum lookup).
    AllSampledPartition part;
    for (int base = 0; base < batch.size; base += kPartitionBlockRows) {
      const int n = std::min(kPartitionBlockRows, batch.size - base);
      PartitionAnySampled(batch.sampled_row(base), est_.r(), n, &part);
      ScatterConstant(0.0, part.rest, part.rest_count, out + base);
      for (int k = 0; k < part.count; ++k) {
        const int i = base + part.idx[k];
        out[i] = est_.EstimateRow(batch.sampled_row(i), batch.value_row(i));
      }
    }
#else
    for (int i = 0; i < batch.size; ++i) {
      out[i] = est_.EstimateRow(batch.sampled_row(i), batch.value_row(i));
    }
#endif
  }
  // Binary domain: OR(v)^2 = OR(v) (see OrLTwoKernel).
  double EstimateSecondMoment(const Outcome& outcome) const override {
    return Estimate(outcome);
  }
  void EstimateSecondMomentMany(BatchView batch, double* out) const override {
    EstimateMany(batch, out);
  }
  void EstimateWithVarianceMany(BatchView batch, double* est,
                                double* var) const override {
    EstimateMany(batch, est);
    BinaryVarianceFromEstimates(est, batch.size, var);
  }
  Result<double> Variance(const std::vector<double>& values) const override {
    PIE_RETURN_IF_ERROR(RequireR(static_cast<int>(values.size()), est_.r()));
    PIE_RETURN_IF_ERROR(RequireBinary(values));
    int ones = 0;
    for (double v : values) ones += v != 0.0 ? 1 : 0;
    return est_.Variance(ones);
  }
  std::string name() const override {
    return "OR^(L) oblivious uniform r=" + std::to_string(est_.r());
  }

 private:
  OrLUniform est_;
};

class OrUTwoKernel : public EstimatorKernel {
 public:
  OrUTwoKernel(double p1, double p2) : est_(p1, p2) {}
  double Estimate(const Outcome& outcome) const override {
    PIE_DCHECK(outcome.scheme == Scheme::kOblivious);
    return est_.Estimate(outcome.oblivious);
  }
  void EstimateMany(BatchView batch, double* out) const override {
    CheckBatchLayout(batch, Scheme::kOblivious, 2);
#ifdef PIE_SIMD
    CheckR2BinarySampled(batch);
    R2EstimateBlocks(batch, MaxUTwoForms(est_.max_u()), out);
#else
    for (int i = 0; i < batch.size; ++i) {
      out[i] = est_.EstimateRow(batch.sampled_row(i), batch.value_row(i));
    }
#endif
  }
  // Binary domain: OR(v)^2 = OR(v) (see OrLTwoKernel).
  double EstimateSecondMoment(const Outcome& outcome) const override {
    return Estimate(outcome);
  }
  void EstimateSecondMomentMany(BatchView batch, double* out) const override {
    EstimateMany(batch, out);
  }
  void EstimateWithVarianceMany(BatchView batch, double* est,
                                double* var) const override {
    EstimateMany(batch, est);
    BinaryVarianceFromEstimates(est, batch.size, var);
  }
  Result<double> Variance(const std::vector<double>& values) const override {
    PIE_RETURN_IF_ERROR(RequireR(static_cast<int>(values.size()), 2));
    PIE_RETURN_IF_ERROR(RequireBinary(values));
    return est_.Variance(static_cast<int>(values[0]),
                         static_cast<int>(values[1]));
  }
  std::string name() const override { return "OR^(U) oblivious r=2"; }

 private:
  OrUTwo est_;
};

class MaxHtWeightedKernel : public EstimatorKernel {
 public:
  explicit MaxHtWeightedKernel(std::vector<double> tau)
      : est_(std::move(tau)) {}
  double Estimate(const Outcome& outcome) const override {
    PIE_DCHECK(outcome.scheme == Scheme::kPps);
    return est_.Estimate(outcome.pps);
  }
  void EstimateMany(BatchView batch, double* out) const override {
    CheckBatchLayout(batch, Scheme::kPps,
                     static_cast<int>(est_.tau().size()));
#ifdef PIE_SIMD
    if (est_.tau().size() == 2) {
      MaxHtR2Blocks(batch, est_.tau()[0], est_.tau()[1], out, nullptr);
      return;
    }
#endif
    for (int i = 0; i < batch.size; ++i) {
      out[i] = est_.EstimateRow(batch.param_row(i), batch.seed_row(i),
                                batch.sampled_row(i), batch.value_row(i));
    }
  }
  double EstimateSecondMoment(const Outcome& outcome) const override {
    PIE_DCHECK(outcome.scheme == Scheme::kPps);
    const PpsOutcome& o = outcome.pps;
    return est_.SecondMomentRow(o.tau.data(), o.seed.data(),
                                o.sampled.data(), o.value.data());
  }
  void EstimateSecondMomentMany(BatchView batch, double* out) const override {
    CheckBatchLayout(batch, Scheme::kPps,
                     static_cast<int>(est_.tau().size()));
#ifdef PIE_SIMD
    if (est_.tau().size() == 2) {
      MaxHtR2Blocks(batch, est_.tau()[0], est_.tau()[1], nullptr, out);
      return;
    }
#endif
    for (int i = 0; i < batch.size; ++i) {
      out[i] = est_.SecondMomentRow(batch.param_row(i), batch.seed_row(i),
                                    batch.sampled_row(i),
                                    batch.value_row(i));
    }
  }
  void EstimateWithVarianceMany(BatchView batch, double* est,
                                double* var) const override {
    CheckBatchLayout(batch, Scheme::kPps,
                     static_cast<int>(est_.tau().size()));
#ifdef PIE_SIMD
    if (est_.tau().size() == 2) {
      MaxHtR2Blocks(batch, est_.tau()[0], est_.tau()[1], est, var);
      for (int i = 0; i < batch.size; ++i) {
        var[i] = est[i] * est[i] - var[i];
      }
      return;
    }
#endif
    for (int i = 0; i < batch.size; ++i) {
      double second;
      est_.EstimateWithSecondMomentRow(batch.param_row(i),
                                       batch.seed_row(i),
                                       batch.sampled_row(i),
                                       batch.value_row(i), &est[i],
                                       &second);
      var[i] = est[i] * est[i] - second;
    }
  }
  Result<double> Variance(const std::vector<double>& values) const override {
    return est_.Variance(values);
  }
  std::string name() const override {
    return "max^(HT) pps known-seeds r=" +
           std::to_string(est_.tau().size());
  }

 private:
  MaxHtWeighted est_;
};

class MaxLWeightedTwoKernel : public EstimatorKernel {
 public:
  MaxLWeightedTwoKernel(double tau1, double tau2, double quad_tol)
      : est_(tau1, tau2, quad_tol), second_({tau1, tau2}) {}
  double Estimate(const Outcome& outcome) const override {
    PIE_DCHECK(outcome.scheme == Scheme::kPps);
    return est_.Estimate(outcome.pps);
  }
  void EstimateMany(BatchView batch, double* out) const override {
    CheckBatchLayout(batch, Scheme::kPps, 2);
#ifdef PIE_SIMD
    // Pattern-partitioned: each bucket builds its determining vector
    // (d1, d2) branch-free, then EvalSortedDense evaluates the non-log
    // regimes vectorized and resolves the log regimes in a scalar tail.
    const double tau1 = est_.tau1();
    const double tau2 = est_.tau2();
    for (int base = 0; base < batch.size; base += kPartitionBlockRows) {
      PrefetchSlabsAhead(batch, base, /*seeds=*/true, /*params=*/true);
      const int n = std::min(kPartitionBlockRows, batch.size - base);
      R2Partition part;
      PartitionR2(batch.sampled_row(base), n, &part);
      const double* value = batch.value_row(base);
      const double* seed = batch.seed_row(base);
      const double* tau = batch.param_row(base);
      double d1[kPartitionBlockRows], d2[kPartitionBlockRows];
      double sd[kPartitionBlockRows], bt[kPartitionBlockRows];
      double e[kPartitionBlockRows];
      ScatterConstant(0.0, part.idx[0], part.count[0], out + base);
      // The three sampled buckets build their (d1, d2) pairs into disjoint
      // SEGMENTS of one dense lane array, so EvalSortedDense runs once per
      // block (one pass-1 sweep, one log compaction, one vector tail)
      // instead of once per bucket. The evaluation is per-lane independent,
      // so concatenation changes no bits.
      int seg[4] = {0, 0, 0, 0};
      int off = 0;
      for (int bucket = 1; bucket <= 2; ++bucket) {
        const uint16_t* idx = part.idx[bucket];
        const int cnt = part.count[bucket];
        seg[bucket] = off;
        if (cnt == 0) continue;
        const int have = bucket == 1 ? 0 : 1;
        const int miss = 1 - have;
        double* dh = (bucket == 1 ? d1 : d2) + off;
        double* dm = (bucket == 1 ? d2 : d1) + off;
        GatherColumn(value, 2, have, idx, cnt, dh);
        GatherColumn(seed, 2, miss, idx, cnt, sd);
        GatherColumn(tau, 2, miss, idx, cnt, bt);
        for (int k = 0; k < cnt; ++k) {
          dm[k] = std::min(sd[k] * bt[k], dh[k]);
        }
        off += cnt;
      }
      seg[3] = off;
      if (part.count[3] > 0) {
        GatherColumn(value, 2, 0, part.idx[3], part.count[3], d1 + off);
        GatherColumn(value, 2, 1, part.idx[3], part.count[3], d2 + off);
        off += part.count[3];
      }
      if (off > 0) {
        EvalSortedDense(d1, d2, off, tau1, tau2, e);
        for (int bucket = 1; bucket <= 3; ++bucket) {
          Scatter(e + seg[bucket], part.idx[bucket], part.count[bucket],
                  out + base);
        }
      }
    }
#else
    for (int i = 0; i < batch.size; ++i) {
      out[i] = est_.EstimateRow(batch.param_row(i), batch.seed_row(i),
                                batch.sampled_row(i), batch.value_row(i));
    }
#endif
  }
  // The second moment uses the identifiable-event inverse-probability form
  // (max_sampled^2 / p on outcomes that pin down max(v)); any unbiased
  // estimator of max^2 serves, and this one is closed-form, nonnegative,
  // and shares the slab layout -- see MaxHtWeighted::SecondMomentRow.
  double EstimateSecondMoment(const Outcome& outcome) const override {
    PIE_DCHECK(outcome.scheme == Scheme::kPps);
    const PpsOutcome& o = outcome.pps;
    return second_.SecondMomentRow(o.tau.data(), o.seed.data(),
                                   o.sampled.data(), o.value.data());
  }
  void EstimateSecondMomentMany(BatchView batch, double* out) const override {
    CheckBatchLayout(batch, Scheme::kPps, 2);
#ifdef PIE_SIMD
    // Same identifiable-event arithmetic as MaxHtWeighted r=2.
    MaxHtR2Blocks(batch, est_.tau1(), est_.tau2(), nullptr, out);
#else
    for (int i = 0; i < batch.size; ++i) {
      out[i] = second_.SecondMomentRow(batch.param_row(i),
                                       batch.seed_row(i),
                                       batch.sampled_row(i),
                                       batch.value_row(i));
    }
#endif
  }
  // Single-load fused row: one case split on the sampled pattern feeds
  // BOTH the max^(L) determining vector and the identifiable-event second
  // moment (they share the largest sampled value and the seed upper
  // bounds), so the with-variance scan pays one branchy pass per row
  // instead of two. Every expression matches MaxLWeightedTwo::EstimateRow
  // / MaxHtWeighted::SecondMomentRow operation for operation -- the fused
  // sweep in tests/parallel_scan_test.cc enforces bitwise identity with
  // the two-pass bridge.
  void EstimateWithVarianceMany(BatchView batch, double* est,
                                double* var) const override {
    CheckBatchLayout(batch, Scheme::kPps, 2);
    const double tau1 = est_.tau1();
    const double tau2 = est_.tau2();
#ifdef PIE_SIMD
    // Per bucket the fused pass builds (d1, d2) for max^(L) and the
    // (mx, identifiable) pair for the second moment from the SAME gathered
    // columns, evaluates the estimate dense, and combines var = e^2 - s.
    for (int base = 0; base < batch.size; base += kPartitionBlockRows) {
      PrefetchSlabsAhead(batch, base, /*seeds=*/true, /*params=*/true);
      const int n = std::min(kPartitionBlockRows, batch.size - base);
      R2Partition part;
      PartitionR2(batch.sampled_row(base), n, &part);
      const double* value = batch.value_row(base);
      const double* seed = batch.seed_row(base);
      const double* tau = batch.param_row(base);
      double d1[kPartitionBlockRows], d2[kPartitionBlockRows];
      double sd[kPartitionBlockRows], bt[kPartitionBlockRows];
      double e[kPartitionBlockRows], s[kPartitionBlockRows];
      double w[kPartitionBlockRows];
      ScatterConstant(0.0, part.idx[0], part.count[0], est + base);
      ScatterConstant(0.0, part.idx[0], part.count[0], var + base);
      // As in EstimateMany, the sampled buckets fill disjoint segments of
      // one dense lane array (here (d1, d2) AND the second-moment lane s)
      // so EvalSortedDense and the var combine run once per block.
      int seg[4] = {0, 0, 0, 0};
      int off = 0;
      for (int bucket = 1; bucket <= 2; ++bucket) {
        const uint16_t* idx = part.idx[bucket];
        const int cnt = part.count[bucket];
        seg[bucket] = off;
        if (cnt == 0) continue;
        const int have = bucket == 1 ? 0 : 1;
        const int miss = 1 - have;
        double* dh = (bucket == 1 ? d1 : d2) + off;
        double* dm = (bucket == 1 ? d2 : d1) + off;
        double* sb = s + off;
        GatherColumn(value, 2, have, idx, cnt, dh);
        GatherColumn(seed, 2, miss, idx, cnt, sd);
        GatherColumn(tau, 2, miss, idx, cnt, bt);
        // ok split into single-comparison blends as in MaxHtR2Blocks.
        for (int k = 0; k < cnt; ++k) {
          const double bound = sd[k] * bt[k];
          dm[k] = std::min(bound, dh[k]);
          const double mx = std::max(0.0, dh[k]);
          const double prob =
              Min1(mx / tau1) * Min1(mx / tau2);
          const double s_ok = bound > mx ? 0.0 : mx * mx / prob;
          sb[k] = dh[k] > 0 ? s_ok : 0.0;
        }
        off += cnt;
      }
      seg[3] = off;
      if (part.count[3] > 0) {
        const uint16_t* idx = part.idx[3];
        const int cnt = part.count[3];
        double* da = d1 + off;
        double* db = d2 + off;
        double* sb = s + off;
        GatherColumn(value, 2, 0, idx, cnt, da);
        GatherColumn(value, 2, 1, idx, cnt, db);
        for (int k = 0; k < cnt; ++k) {
          const double mx = std::max(std::max(0.0, da[k]), db[k]);
          const double prob =
              Min1(mx / tau1) * Min1(mx / tau2);
          sb[k] = mx > 0 ? mx * mx / prob : 0.0;
        }
        off += cnt;
      }
      if (off > 0) {
        EvalSortedDense(d1, d2, off, tau1, tau2, e);
        for (int k = 0; k < off; ++k) w[k] = e[k] * e[k] - s[k];
        for (int bucket = 1; bucket <= 3; ++bucket) {
          Scatter(e + seg[bucket], part.idx[bucket], part.count[bucket],
                  est + base);
          Scatter(w + seg[bucket], part.idx[bucket], part.count[bucket],
                  var + base);
        }
      }
    }
#else
    for (int i = 0; i < batch.size; ++i) {
      const double* tau = batch.param_row(i);
      const double* seed = batch.seed_row(i);
      const uint8_t* sampled = batch.sampled_row(i);
      const double* value = batch.value_row(i);
      const bool s1 = sampled[0] != 0;
      const bool s2 = sampled[1] != 0;
      double e = 0.0;
      double second = 0.0;
      if (s1 || s2) {
        double d1, d2;            // determining vector (max^(L))
        double mx;                // largest sampled value (second moment)
        bool identifiable;        // every unsampled seed bound <= mx
        if (s1 && s2) {
          d1 = value[0];
          d2 = value[1];
          mx = std::max(std::max(0.0, value[0]), value[1]);
          identifiable = true;
        } else if (s1) {
          d1 = value[0];
          const double bound2 = seed[1] * tau[1];
          d2 = std::min(bound2, d1);
          mx = std::max(0.0, value[0]);
          identifiable = !(bound2 > mx);
        } else {
          d2 = value[1];
          const double bound1 = seed[0] * tau[0];
          d1 = std::min(bound1, d2);
          mx = std::max(0.0, value[1]);
          identifiable = !(bound1 > mx);
        }
        e = est_.EstimateFromDeterminingVector(d1, d2);
        if (mx > 0 && identifiable) {
          const double prob =
              std::fmin(1.0, mx / tau1) * std::fmin(1.0, mx / tau2);
          second = mx * mx / prob;
        }
      }
      est[i] = e;
      var[i] = e * e - second;
    }
#endif
  }
  Result<double> Variance(const std::vector<double>& values) const override {
    PIE_RETURN_IF_ERROR(RequireR(static_cast<int>(values.size()), 2));
    return est_.Variance(values[0], values[1]);
  }
  std::string name() const override { return "max^(L) pps known-seeds r=2"; }

 private:
  MaxLWeightedTwo est_;
  MaxHtWeighted second_;
};

/// OR over weighted PPS samples with known seeds, r = 2; the family selects
/// HT, L, or U through the binary outcome mapping of Section 5.1.
class OrWeightedTwoKernel : public EstimatorKernel {
 public:
  OrWeightedTwoKernel(double tau1, double tau2, Family family)
      : est_(tau1, tau2), family_(family) {}
  double Estimate(const Outcome& outcome) const override {
    PIE_DCHECK(outcome.scheme == Scheme::kPps);
    switch (family_) {
      case Family::kHt:
        return est_.EstimateHt(outcome.pps);
      case Family::kL:
        return est_.EstimateL(outcome.pps);
      default:
        return est_.EstimateU(outcome.pps);
    }
  }
  void EstimateMany(BatchView batch, double* out) const override {
    CheckBatchLayout(batch, Scheme::kPps, 2);
#ifdef PIE_SIMD
    // Section 5.1 mapping first (per row, keeps its checks), then the rows
    // are partitioned on the MAPPED sampled flags -- a seed below p_i turns
    // a missing entry into a certified zero, so the mapped pattern, not the
    // raw one, selects the estimator's closed form.
    for (int base = 0; base < batch.size; base += kPartitionBlockRows) {
      const int n = std::min(kPartitionBlockRows, batch.size - base);
      double p_blk[2 * kPartitionBlockRows];
      uint8_t s_blk[2 * kPartitionBlockRows];
      double v_blk[2 * kPartitionBlockRows];
      for (int i = 0; i < n; ++i) {
        const int row = base + i;
        MapBinaryPpsRowToOblivious(batch.param_row(row), batch.seed_row(row),
                                   batch.sampled_row(row),
                                   batch.value_row(row), 2, p_blk + 2 * i,
                                   s_blk + 2 * i, v_blk + 2 * i);
      }
      R2Partition part;
      PartitionR2(s_blk, n, &part);
      switch (family_) {
        case Family::kL:
          ApplyR2Forms(v_blk, part, OrLTwoForms(est_.or_l()), out + base);
          break;
        case Family::kHt: {  // positive only when both mapped-sampled.
          ScatterConstant(0.0, part.idx[0], part.count[0], out + base);
          ScatterConstant(0.0, part.idx[1], part.count[1], out + base);
          ScatterConstant(0.0, part.idx[2], part.count[2], out + base);
          const uint16_t* idx = part.idx[3];
          const int cnt = part.count[3];
          if (cnt > 0) {
            double v0[kPartitionBlockRows], v1[kPartitionBlockRows];
            double p0[kPartitionBlockRows], p1[kPartitionBlockRows];
            double e[kPartitionBlockRows];
            GatherColumn(v_blk, 2, 0, idx, cnt, v0);
            GatherColumn(v_blk, 2, 1, idx, cnt, v1);
            GatherColumn(p_blk, 2, 0, idx, cnt, p0);
            GatherColumn(p_blk, 2, 1, idx, cnt, p1);
            for (int k = 0; k < cnt; ++k) {
              const bool any = v0[k] != 0.0 || v1[k] != 0.0;
              e[k] = any ? 1.0 / (p0[k] * p1[k]) : 0.0;
            }
            Scatter(e, idx, cnt, out + base);
          }
          break;
        }
        default:
          // Mapped values are 0/1 by construction (the mapping already
          // checked them), so OrUTwo reduces to its max^(U) arithmetic.
          ApplyR2Forms(v_blk, part, MaxUTwoForms(est_.or_u().max_u()),
                       out + base);
          break;
      }
    }
#else
    for (int i = 0; i < batch.size; ++i) {
      const double* tau = batch.param_row(i);
      const double* seed = batch.seed_row(i);
      const uint8_t* sampled = batch.sampled_row(i);
      const double* value = batch.value_row(i);
      switch (family_) {
        case Family::kHt:
          out[i] = est_.EstimateHtRow(tau, seed, sampled, value);
          break;
        case Family::kL:
          out[i] = est_.EstimateLRow(tau, seed, sampled, value);
          break;
        default:
          out[i] = est_.EstimateURow(tau, seed, sampled, value);
          break;
      }
    }
#endif
  }
  // Binary domain: OR(v)^2 = OR(v), so the point estimate is itself the
  // unbiased second-moment estimate.
  double EstimateSecondMoment(const Outcome& outcome) const override {
    return Estimate(outcome);
  }
  void EstimateSecondMomentMany(BatchView batch, double* out) const override {
    EstimateMany(batch, out);
  }
  void EstimateWithVarianceMany(BatchView batch, double* est,
                                double* var) const override {
    EstimateMany(batch, est);
    BinaryVarianceFromEstimates(est, batch.size, var);
  }
  Result<double> Variance(const std::vector<double>& values) const override {
    PIE_RETURN_IF_ERROR(RequireR(static_cast<int>(values.size()), 2));
    PIE_RETURN_IF_ERROR(RequireBinary(values));
    // Section 5.1: over binary domains the known-seeds weighted outcome is
    // equivalent to an oblivious one with p_i = min(1, 1/tau_i).
    const int v1 = static_cast<int>(values[0]);
    const int v2 = static_cast<int>(values[1]);
    switch (family_) {
      case Family::kHt:
        return OrOf(values) == 0.0 ? 0.0
                                   : OrHtVariance({est_.p1(), est_.p2()});
      case Family::kL:
        return OrLTwo(est_.p1(), est_.p2()).Variance(v1, v2);
      default:
        return OrUTwo(est_.p1(), est_.p2()).Variance(v1, v2);
    }
  }
  std::string name() const override {
    return std::string("OR^(") + FamilyToString(family_) +
           ") pps known-seeds r=2";
  }

 private:
  OrWeightedTwo est_;
  Family family_;
};

/// OR over r weighted PPS samples with a uniform threshold, HT or L.
class OrWeightedUniformKernel : public EstimatorKernel {
 public:
  OrWeightedUniformKernel(int r, double tau, Family family)
      : est_(r, tau), family_(family) {}
  double Estimate(const Outcome& outcome) const override {
    PIE_DCHECK(outcome.scheme == Scheme::kPps);
    return family_ == Family::kHt ? est_.EstimateHt(outcome.pps)
                                  : est_.EstimateL(outcome.pps);
  }
  void EstimateMany(BatchView batch, double* out) const override {
    CheckBatchLayout(batch, Scheme::kPps, est_.r());
#ifdef PIE_SIMD
    // Map every row (keeping the mapping's checks), partition the block on
    // the MAPPED flags, and run the family's row form only on rows that
    // can estimate nonzero; the rest are exactly 0.
    const int r = est_.r();
    const size_t slab = static_cast<size_t>(r) * kPartitionBlockRows;
    std::vector<double> p_blk(slab);
    std::vector<uint8_t> s_blk(slab);
    std::vector<double> v_blk(slab);
    for (int base = 0; base < batch.size; base += kPartitionBlockRows) {
      const int n = std::min(kPartitionBlockRows, batch.size - base);
      for (int i = 0; i < n; ++i) {
        const int row = base + i;
        MapBinaryPpsRowToOblivious(
            batch.param_row(row), batch.seed_row(row), batch.sampled_row(row),
            batch.value_row(row), r, p_blk.data() + i * r,
            s_blk.data() + i * r, v_blk.data() + i * r);
      }
      AllSampledPartition part;
      if (family_ == Family::kHt) {
        PartitionAllSampled(s_blk.data(), r, n, &part);
        ScatterConstant(0.0, part.rest, part.rest_count, out + base);
        for (int k = 0; k < part.count; ++k) {
          const int i = part.idx[k];
          out[base + i] = OrHtEstimateRow(p_blk.data() + i * r,
                                          s_blk.data() + i * r,
                                          v_blk.data() + i * r, r);
        }
      } else {
        PartitionAnySampled(s_blk.data(), r, n, &part);
        ScatterConstant(0.0, part.rest, part.rest_count, out + base);
        for (int k = 0; k < part.count; ++k) {
          const int i = part.idx[k];
          out[base + i] = est_.or_l().EstimateRow(s_blk.data() + i * r,
                                                  v_blk.data() + i * r);
        }
      }
    }
#else
    std::vector<double> p(static_cast<size_t>(est_.r()));
    std::vector<uint8_t> s(static_cast<size_t>(est_.r()));
    std::vector<double> v(static_cast<size_t>(est_.r()));
    for (int i = 0; i < batch.size; ++i) {
      out[i] = family_ == Family::kHt
                   ? est_.EstimateHtRow(batch.param_row(i),
                                        batch.seed_row(i),
                                        batch.sampled_row(i),
                                        batch.value_row(i), p.data(),
                                        s.data(), v.data())
                   : est_.EstimateLRow(batch.param_row(i),
                                       batch.seed_row(i),
                                       batch.sampled_row(i),
                                       batch.value_row(i), p.data(),
                                       s.data(), v.data());
    }
#endif
  }
  // Binary domain: OR(v)^2 = OR(v) (see OrWeightedTwoKernel).
  double EstimateSecondMoment(const Outcome& outcome) const override {
    return Estimate(outcome);
  }
  void EstimateSecondMomentMany(BatchView batch, double* out) const override {
    EstimateMany(batch, out);
  }
  void EstimateWithVarianceMany(BatchView batch, double* est,
                                double* var) const override {
    EstimateMany(batch, est);
    BinaryVarianceFromEstimates(est, batch.size, var);
  }
  Result<double> Variance(const std::vector<double>& values) const override {
    PIE_RETURN_IF_ERROR(RequireR(static_cast<int>(values.size()), est_.r()));
    PIE_RETURN_IF_ERROR(RequireBinary(values));
    if (OrOf(values) == 0.0) return 0.0;
    if (family_ == Family::kHt) {
      return OrHtVariance(std::vector<double>(
          static_cast<size_t>(est_.r()), est_.p()));
    }
    int ones = 0;
    for (double v : values) ones += v != 0.0 ? 1 : 0;
    return OrLUniform(est_.r(), est_.p()).Variance(ones);
  }
  std::string name() const override {
    return std::string("OR^(") + FamilyToString(family_) +
           ") pps known-seeds uniform r=" + std::to_string(est_.r());
  }

 private:
  OrWeightedUniform est_;
  Family family_;
};

class MinHtWeightedKernel : public EstimatorKernel {
 public:
  explicit MinHtWeightedKernel(std::vector<double> tau)
      : est_(std::move(tau)) {}
  double Estimate(const Outcome& outcome) const override {
    PIE_DCHECK(outcome.scheme == Scheme::kPps);
    return est_.Estimate(outcome.pps);
  }
  void EstimateMany(BatchView batch, double* out) const override {
    CheckBatchLayout(batch, Scheme::kPps,
                     static_cast<int>(est_.tau().size()));
#ifdef PIE_SIMD
    MinHtBlocks(batch, est_.tau(), out, nullptr);
#else
    for (int i = 0; i < batch.size; ++i) {
      out[i] = est_.EstimateRow(batch.sampled_row(i), batch.value_row(i));
    }
#endif
  }
  double EstimateSecondMoment(const Outcome& outcome) const override {
    PIE_DCHECK(outcome.scheme == Scheme::kPps);
    return est_.SecondMomentRow(outcome.pps.sampled.data(),
                                outcome.pps.value.data());
  }
  void EstimateSecondMomentMany(BatchView batch, double* out) const override {
    CheckBatchLayout(batch, Scheme::kPps,
                     static_cast<int>(est_.tau().size()));
#ifdef PIE_SIMD
    MinHtBlocks(batch, est_.tau(), nullptr, out);
#else
    for (int i = 0; i < batch.size; ++i) {
      out[i] = est_.SecondMomentRow(batch.sampled_row(i),
                                    batch.value_row(i));
    }
#endif
  }
  void EstimateWithVarianceMany(BatchView batch, double* est,
                                double* var) const override {
    CheckBatchLayout(batch, Scheme::kPps,
                     static_cast<int>(est_.tau().size()));
#ifdef PIE_SIMD
    MinHtBlocks(batch, est_.tau(), est, var);
    for (int i = 0; i < batch.size; ++i) {
      var[i] = est[i] * est[i] - var[i];
    }
#else
    for (int i = 0; i < batch.size; ++i) {
      double second;
      est_.EstimateWithSecondMomentRow(batch.sampled_row(i),
                                       batch.value_row(i), &est[i],
                                       &second);
      var[i] = est[i] * est[i] - second;
    }
#endif
  }
  Result<double> Variance(const std::vector<double>& values) const override {
    return est_.Variance(values);
  }
  std::string name() const override {
    return "min^(HT) pps r=" + std::to_string(est_.tau().size());
  }

 private:
  MinHtWeighted est_;
};

// ---------------------------------------------------------------------------
// Factories
// ---------------------------------------------------------------------------

using KernelResult = Result<std::unique_ptr<EstimatorKernel>>;

KernelResult MakeMaxObliviousL(const KernelSpec&,
                               const SamplingParams& params) {
  const auto& p = params.per_entry;
  if (params.r() == 2) {
    return std::unique_ptr<EstimatorKernel>(new MaxLTwoKernel(p[0], p[1]));
  }
  if (params.r() == 3) {
    return std::unique_ptr<EstimatorKernel>(
        new MaxLThreeKernel(p[0], p[1], p[2]));
  }
  if (params.r() >= 1 && params.IsUniform()) {
    return std::unique_ptr<EstimatorKernel>(
        new MaxLUniformKernel(params.r(), p[0]));
  }
  return Status::InvalidArgument(
      "general-p max^(L) has closed forms only for r <= 3; r >= 4 requires "
      "uniform p (Theorem 4.2)");
}

KernelResult MakeMaxObliviousU(const KernelSpec&,
                               const SamplingParams& params) {
  PIE_RETURN_IF_ERROR(RequireR(params.r(), 2));
  return std::unique_ptr<EstimatorKernel>(
      new MaxUTwoKernel(params.per_entry[0], params.per_entry[1]));
}

KernelResult MakeMaxObliviousUAsym(const KernelSpec&,
                                   const SamplingParams& params) {
  PIE_RETURN_IF_ERROR(RequireR(params.r(), 2));
  return std::unique_ptr<EstimatorKernel>(
      new MaxUAsymTwoKernel(params.per_entry[0], params.per_entry[1]));
}

KernelResult MakeMaxObliviousHt(const KernelSpec&,
                                const SamplingParams& params) {
  return std::unique_ptr<EstimatorKernel>(new ObliviousHtKernel(
      "max^(HT) oblivious r=" + std::to_string(params.r()), MaxOf,
      params.per_entry));
}

KernelResult MakeOrObliviousL(const KernelSpec&,
                              const SamplingParams& params) {
  const auto& p = params.per_entry;
  if (params.r() == 2) {
    return std::unique_ptr<EstimatorKernel>(new OrLTwoKernel(p[0], p[1]));
  }
  if (params.r() >= 1 && params.IsUniform()) {
    return std::unique_ptr<EstimatorKernel>(
        new OrLUniformKernel(params.r(), p[0]));
  }
  return Status::InvalidArgument(
      "general-p OR^(L) has closed forms only for r = 2; r >= 3 requires "
      "uniform p");
}

KernelResult MakeOrObliviousU(const KernelSpec&,
                              const SamplingParams& params) {
  PIE_RETURN_IF_ERROR(RequireR(params.r(), 2));
  return std::unique_ptr<EstimatorKernel>(
      new OrUTwoKernel(params.per_entry[0], params.per_entry[1]));
}

KernelResult MakeOrObliviousHt(const KernelSpec&,
                               const SamplingParams& params) {
  return std::unique_ptr<EstimatorKernel>(new ObliviousHtKernel(
      "OR^(HT) oblivious r=" + std::to_string(params.r()), OrOf,
      params.per_entry));
}

KernelResult MakeMaxPpsL(const KernelSpec&, const SamplingParams& params) {
  PIE_RETURN_IF_ERROR(RequireR(params.r(), 2));
  return std::unique_ptr<EstimatorKernel>(new MaxLWeightedTwoKernel(
      params.per_entry[0], params.per_entry[1], params.quad_tol));
}

KernelResult MakeMaxPpsHt(const KernelSpec&, const SamplingParams& params) {
  if (params.r() < 1) return Status::InvalidArgument("empty params");
  return std::unique_ptr<EstimatorKernel>(
      new MaxHtWeightedKernel(params.per_entry));
}

KernelResult MakeOrPps(const KernelSpec& spec, const SamplingParams& params) {
  if (params.r() == 2) {
    return std::unique_ptr<EstimatorKernel>(new OrWeightedTwoKernel(
        params.per_entry[0], params.per_entry[1], spec.family));
  }
  if (spec.family != Family::kU && params.r() >= 1 && params.IsUniform()) {
    return std::unique_ptr<EstimatorKernel>(new OrWeightedUniformKernel(
        params.r(), params.per_entry[0], spec.family));
  }
  return Status::InvalidArgument(
      "weighted OR supports r = 2 (any thresholds) or uniform tau (HT/L)");
}

KernelResult MakeMinPpsHt(const KernelSpec&, const SamplingParams& params) {
  if (params.r() < 1) return Status::InvalidArgument("empty params");
  return std::unique_ptr<EstimatorKernel>(
      new MinHtWeightedKernel(params.per_entry));
}

KernelResult MakeLthLargestHt(const KernelSpec& spec,
                              const SamplingParams& params) {
  if (spec.l < 1 || spec.l > params.r()) {
    return Status::InvalidArgument("order statistic l must be in [1, r]");
  }
  const int l = spec.l;
  return std::unique_ptr<EstimatorKernel>(new ObliviousHtKernel(
      "lth-largest^(HT) oblivious l=" + std::to_string(l) +
          " r=" + std::to_string(params.r()),
      [l](const std::vector<double>& v) { return LthOf(v, l); },
      params.per_entry));
}

void RegisterBuiltins(KernelRegistry& registry) {
  auto add = [&registry](Function fn, Scheme sc, Regime re, Family fa,
                         std::string description, KernelFactory factory,
                         std::vector<SamplingParams> examples, int l = 1) {
    KernelEntry entry;
    entry.spec = {fn, sc, re, fa, l};
    entry.description = std::move(description);
    entry.factory = std::move(factory);
    entry.example_params = std::move(examples);
    PIE_CHECK_OK(registry.Register(std::move(entry)));
  };

  // --- weight-oblivious Poisson (Section 4) ---
  add(Function::kMax, Scheme::kOblivious, Regime::kKnownSeeds, Family::kL,
      "dense-first Pareto-optimal max (Thm 4.1/4.2)", MakeMaxObliviousL,
      {{0.5, 0.3}, {0.5, 0.3, 0.7}, {0.4, 0.4, 0.4, 0.4}});
  add(Function::kMax, Scheme::kOblivious, Regime::kKnownSeeds, Family::kU,
      "sparse-first Pareto-optimal max (Sec 4.2)", MakeMaxObliviousU,
      {{0.5, 0.3}});
  add(Function::kMax, Scheme::kOblivious, Regime::kKnownSeeds,
      Family::kUAsym, "asymmetric Pareto-optimal max (Sec 4.2)",
      MakeMaxObliviousUAsym, {{0.5, 0.3}});
  add(Function::kMax, Scheme::kOblivious, Regime::kKnownSeeds, Family::kHt,
      "all-sampled Horvitz-Thompson max", MakeMaxObliviousHt,
      {{0.5, 0.3}, {0.6, 0.7, 0.8}});
  add(Function::kOr, Scheme::kOblivious, Regime::kKnownSeeds, Family::kL,
      "dense-first OR, the distinct-count building block (Sec 4.3)",
      MakeOrObliviousL, {{0.5, 0.3}, {0.2, 0.2, 0.2, 0.2}});
  add(Function::kOr, Scheme::kOblivious, Regime::kKnownSeeds, Family::kU,
      "sparse-first OR (Sec 4.3)", MakeOrObliviousU, {{0.5, 0.3}});
  add(Function::kOr, Scheme::kOblivious, Regime::kKnownSeeds, Family::kHt,
      "all-sampled Horvitz-Thompson OR", MakeOrObliviousHt,
      {{0.5, 0.3}, {0.3, 0.3, 0.3}});
  add(Function::kLthLargest, Scheme::kOblivious, Regime::kKnownSeeds,
      Family::kHt, "all-sampled Horvitz-Thompson l-th largest",
      MakeLthLargestHt, {{0.5, 0.4, 0.6}}, /*l=*/2);

  // --- weighted PPS with known seeds (Section 5) ---
  add(Function::kMax, Scheme::kPps, Regime::kKnownSeeds, Family::kL,
      "Pareto-optimal weighted max from seed bounds (Sec 5.2)", MakeMaxPpsL,
      {{10.0, 8.0}});
  add(Function::kMax, Scheme::kPps, Regime::kKnownSeeds, Family::kHt,
      "inverse-probability weighted max (Sec 5.2)", MakeMaxPpsHt,
      {{10.0, 8.0}, {5.0, 7.0, 9.0}});
  add(Function::kOr, Scheme::kPps, Regime::kKnownSeeds, Family::kL,
      "weighted OR via the binary outcome mapping (Sec 5.1)", MakeOrPps,
      {{3.0, 2.0}, {4.0, 4.0, 4.0}});
  add(Function::kOr, Scheme::kPps, Regime::kKnownSeeds, Family::kU,
      "weighted OR^(U) via the binary outcome mapping (Sec 5.1)", MakeOrPps,
      {{3.0, 2.0}});
  add(Function::kOr, Scheme::kPps, Regime::kKnownSeeds, Family::kHt,
      "weighted OR^(HT) via the binary outcome mapping (Sec 5.1)", MakeOrPps,
      {{3.0, 2.0}, {4.0, 4.0, 4.0}});

  // --- weighted PPS, unknown seeds (Section 6) ---
  add(Function::kMin, Scheme::kPps, Regime::kUnknownSeeds, Family::kHt,
      "inverse-probability min, the one unknown-seeds quantile (Sec 6)",
      MakeMinPpsHt, {{10.0, 8.0}, {6.0, 6.0, 6.0}});
}

}  // namespace

KernelRegistry& KernelRegistry::Global() {
  static KernelRegistry* registry = [] {
    auto* r = new KernelRegistry();
    RegisterBuiltins(*r);
    return r;
  }();
  return *registry;
}

Status KernelRegistry::Register(KernelEntry entry) {
  if (!entry.factory) {
    return Status::InvalidArgument("kernel entry has no factory");
  }
  // Dedup on the same key lookup uses (l is a factory parameter, not part
  // of the lookup key): a second entry differing only in l would be
  // silently unreachable, so reject it here instead.
  for (const auto& existing : entries_) {
    if (SpecMatches(existing.spec, entry.spec)) {
      return Status::InvalidArgument("duplicate kernel spec " +
                                     entry.spec.ToString());
    }
  }
  entries_.push_back(std::move(entry));
  return Status::OK();
}

KernelSpec KernelRegistry::CanonicalSpec(const KernelSpec& spec) const {
  KernelSpec lookup = spec;
  // The oblivious sampled set is full information; both regimes name the
  // same estimator.
  if (lookup.scheme == Scheme::kOblivious) {
    lookup.regime = Regime::kKnownSeeds;
    return lookup;
  }
  // An estimator that needs only unknown seeds remains valid when seeds are
  // known; a known-seeds request served only by an unknown-seeds
  // registration canonicalizes to it.
  if (lookup.scheme == Scheme::kPps && lookup.regime == Regime::kKnownSeeds) {
    for (const auto& entry : entries_) {
      if (SpecMatches(entry.spec, lookup)) return lookup;
    }
    KernelSpec weaker = lookup;
    weaker.regime = Regime::kUnknownSeeds;
    for (const auto& entry : entries_) {
      if (SpecMatches(entry.spec, weaker)) return weaker;
    }
  }
  return lookup;
}

namespace {

/// Labels registry-created kernels with per-spec scan counters (the labels
/// name the CANONICAL spec actually served, so e.g. an oblivious
/// unknown-seeds request counts under known-seeds). Registration is
/// memoized by the metrics registry; the engine additionally memoizes
/// whole kernels, so this runs once per distinct (spec, params).
void AttachKernelCounters(const KernelSpec& spec, EstimatorKernel* kernel) {
  const obs::Labels labels = {{"function", FunctionToString(spec.function)},
                              {"scheme", SchemeToString(spec.scheme)},
                              {"regime", RegimeToString(spec.regime)},
                              {"family", FamilyToString(spec.family)}};
  auto& reg = obs::MetricsRegistry::Global();
  kernel->obs_scans =
      &reg.GetCounter("pie_kernel_scans_total",
                      "Batch scans served, by kernel spec", labels);
  kernel->obs_rows =
      &reg.GetCounter("pie_kernel_rows_total",
                      "Rows estimated, by kernel spec", labels);
}

}  // namespace

Result<std::unique_ptr<EstimatorKernel>> KernelRegistry::Create(
    const KernelSpec& spec, const SamplingParams& params) const {
  const KernelSpec lookup = CanonicalSpec(spec);
  for (const auto& entry : entries_) {
    if (SpecMatches(entry.spec, lookup)) {
      auto created = entry.factory(lookup, params);
      if (created.ok()) {
        AttachKernelCounters(lookup, created->get());
      }
      return created;
    }
  }
  return Status::NotFound("no kernel registered for " + spec.ToString());
}

}  // namespace pie
