#include "engine/kernel.h"

#include <cmath>

#include "core/functions.h"
#include "util/check.h"

namespace pie {

const char* FunctionToString(Function f) {
  switch (f) {
    case Function::kMax:
      return "max";
    case Function::kOr:
      return "or";
    case Function::kMin:
      return "min";
    case Function::kLthLargest:
      return "lth-largest";
  }
  return "?";
}

const char* SchemeToString(Scheme s) {
  switch (s) {
    case Scheme::kOblivious:
      return "oblivious";
    case Scheme::kPps:
      return "pps";
  }
  return "?";
}

const char* RegimeToString(Regime r) {
  switch (r) {
    case Regime::kKnownSeeds:
      return "known-seeds";
    case Regime::kUnknownSeeds:
      return "unknown-seeds";
  }
  return "?";
}

const char* FamilyToString(Family f) {
  switch (f) {
    case Family::kHt:
      return "HT";
    case Family::kL:
      return "L";
    case Family::kU:
      return "U";
    case Family::kUAsym:
      return "Uasym";
  }
  return "?";
}

std::string KernelSpec::ToString() const {
  std::string out = FunctionToString(function);
  if (function == Function::kLthLargest) {
    out += "(l=" + std::to_string(l) + ")";
  }
  out += std::string("/") + SchemeToString(scheme) + "/" +
         RegimeToString(regime) + "/" + FamilyToString(family);
  return out;
}

void ExtractRow(const BatchView& batch, int i, Outcome* out) {
  PIE_CHECK(out != nullptr);
  PIE_DCHECK(i >= 0 && i < batch.size);
  out->scheme = batch.scheme;
  const double* param = batch.param_row(i);
  const uint8_t* sampled = batch.sampled_row(i);
  const double* value = batch.value_row(i);
  const size_t r = static_cast<size_t>(batch.r);
  if (batch.scheme == Scheme::kOblivious) {
    ObliviousOutcome& o = out->oblivious;
    o.p.assign(param, param + r);
    o.sampled.assign(sampled, sampled + r);
    o.value.assign(value, value + r);
    return;
  }
  const double* seed = batch.seed_row(i);
  PpsOutcome& o = out->pps;
  o.tau.assign(param, param + r);
  o.seed.assign(seed, seed + r);
  o.sampled.assign(sampled, sampled + r);
  o.value.assign(value, value + r);
}

void CheckBatchLayout(const BatchView& batch, Scheme scheme, int r) {
  PIE_CHECK(batch.scheme == scheme);
  PIE_CHECK(batch.r == r);
}

void EstimatorKernel::EstimateMany(BatchView batch, double* out) const {
  Outcome scratch;
  for (int i = 0; i < batch.size; ++i) {
    ExtractRow(batch, i, &scratch);
    out[i] = Estimate(scratch);
  }
}

double EstimatorKernel::EstimateSecondMoment(const Outcome& outcome) const {
  // Weight-oblivious sampling is value-independent, so the outcome of the
  // squared data vector is this outcome with sampled values squared; the
  // kernel's unbiasedness on arbitrary nonnegative data then gives an
  // unbiased estimate of f(v.^2) = f(v)^2 (all primitive targets commute
  // with squaring on nonnegative entries).
  PIE_CHECK(outcome.scheme == Scheme::kOblivious &&
            "PPS kernels must override EstimateSecondMoment (squaring "
            "sampled values breaks the weighted outcome correspondence)");
  Outcome squared = outcome;
  for (size_t i = 0; i < squared.oblivious.value.size(); ++i) {
    if (squared.oblivious.sampled[i]) {
      squared.oblivious.value[i] *= squared.oblivious.value[i];
    }
  }
  return Estimate(squared);
}

void EstimatorKernel::EstimateSecondMomentMany(BatchView batch,
                                               double* out) const {
  Outcome scratch;
  for (int i = 0; i < batch.size; ++i) {
    ExtractRow(batch, i, &scratch);
    out[i] = EstimateSecondMoment(scratch);
  }
}

void EstimatorKernel::EstimateWithVarianceMany(BatchView batch, double* est,
                                               double* var) const {
  // Bridge: the two batched passes, combined in place. Fused overrides
  // must reproduce exactly this arithmetic (est from the EstimateMany
  // core, var = est * est - second moment, in that operation order).
  EstimateMany(batch, est);
  EstimateSecondMomentMany(batch, var);
  for (int i = 0; i < batch.size; ++i) {
    var[i] = est[i] * est[i] - var[i];
  }
}

bool SamplingParams::IsUniform() const {
  for (double x : per_entry) {
    if (x != per_entry[0]) return false;
  }
  return true;
}

double TrueValue(const KernelSpec& spec, const std::vector<double>& values) {
  switch (spec.function) {
    case Function::kMax:
      return MaxOf(values);
    case Function::kOr:
      return OrOf(values);
    case Function::kMin:
      return MinOf(values);
    case Function::kLthLargest:
      return LthOf(values, spec.l);
  }
  PIE_CHECK(false && "unreachable");
  return 0.0;
}

Outcome SampleOutcome(Scheme scheme, const SamplingParams& params,
                      const std::vector<double>& values, Rng& rng) {
  PIE_CHECK(params.r() == static_cast<int>(values.size()));
  switch (scheme) {
    case Scheme::kOblivious:
      return Outcome::FromOblivious(
          SampleOblivious(values, params.per_entry, rng));
    case Scheme::kPps:
      return Outcome::FromPps(SamplePps(values, params.per_entry, rng));
  }
  PIE_CHECK(false && "unreachable");
  return Outcome();
}

}  // namespace pie
