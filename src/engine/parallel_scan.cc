#include "engine/parallel_scan.h"

#include <algorithm>
#include <vector>

#include "engine/worker_pool.h"
#include "obs/metrics.h"
#include "util/check.h"

namespace pie {
namespace {

/// Scan-driver instrumentation, bumped once per scan (not per chunk or
/// key): batch/chunk/key totals plus a per-scan wall-time histogram.
struct ScanMetrics {
  obs::Counter& batches;
  obs::Counter& chunks;
  obs::Counter& keys;
  obs::Histogram& seconds;

  static ScanMetrics& Get() {
    static ScanMetrics* m = [] {
      auto& reg = obs::MetricsRegistry::Global();
      return new ScanMetrics{
          reg.GetCounter("pie_scan_batches_total",
                         "Batch scans executed by the chunked driver"),
          reg.GetCounter("pie_scan_chunks_total",
                         "Fixed-size row chunks processed across scans"),
          reg.GetCounter("pie_scan_keys_total",
                         "Keys (rows) scanned across all batch scans"),
          reg.GetHistogram("pie_scan_seconds",
                           "Wall time of one chunked batch scan",
                           obs::LatencyBuckets()),
      };
    }();
    return *m;
  }
};

void CountScan(const EstimatorKernel& kernel, const BatchView& view,
               int num_chunks, ScanMetrics& metrics) {
  metrics.batches.Increment();
  metrics.chunks.Add(static_cast<uint64_t>(num_chunks));
  metrics.keys.Add(static_cast<uint64_t>(view.size));
  if (kernel.obs_scans != nullptr) {
    kernel.obs_scans->Increment();
    kernel.obs_rows->Add(static_cast<uint64_t>(view.size));
  }
}

int ResolveThreads(int requested, int num_chunks) {
  const int threads = ResolveParallelism(requested);
  PIE_CHECK(threads >= 1);
  return std::min(threads, num_chunks);
}

/// Runs chunk_fn(c) for every chunk index in [0, num_chunks) on the
/// process-wide persistent worker pool (engine/worker_pool.h), the caller
/// included, up to `threads` wide. Which worker computes which chunk is
/// racy; what each chunk computes is not -- partials are indexed by chunk,
/// so the post-wait reduction sees the same inputs regardless of
/// scheduling. ParallelFor's completion wait gives the caller a
/// happens-before edge over every partial.
template <typename ChunkFn>
void ForEachChunk(int num_chunks, int threads, const ChunkFn& chunk_fn) {
  if (threads <= 1) {
    for (int c = 0; c < num_chunks; ++c) chunk_fn(c);
    return;
  }
  WorkerPool::Global().ParallelFor(num_chunks, threads, chunk_fn);
}

/// One chunk's [begin, begin + count) rows as a sub-view.
BatchView Chunk(const BatchView& view, int c) {
  const int begin = c * kScanChunkRows;
  return view.Slice(begin, std::min(kScanChunkRows, view.size - begin));
}

struct SumPartial {
  double sum = 0.0;
  void Merge(const SumPartial& o) { sum += o.sum; }
};

/// Computes every chunk's partial with chunk_fn(c, &partial) and returns
/// the tree-reduced total. Scans of up to kStackPartials chunks (the
/// store's typical per-shard batches) keep the partials on the stack, so
/// a steady-state serving scan still allocates nothing; the heap vector
/// only appears once the batch is large enough to amortize it. Both paths
/// reduce with the same TreeReduce shape, so the bits never depend on
/// which one ran.
template <typename Partial, typename ChunkFn>
Partial ReduceChunks(int num_chunks, int threads, const ChunkFn& chunk_fn) {
  constexpr int kStackPartials = 16;
  if (num_chunks <= kStackPartials) {
    Partial partials[kStackPartials];
    ForEachChunk(num_chunks, threads,
                 [&](int c) { chunk_fn(c, &partials[c]); });
    TreeReduce(partials, num_chunks);
    return partials[0];
  }
  std::vector<Partial> partials(static_cast<size_t>(num_chunks));
  ForEachChunk(num_chunks, threads, [&](int c) {
    chunk_fn(c, &partials[static_cast<size_t>(c)]);
  });
  TreeReduce(partials.data(), num_chunks);
  return partials[0];
}

}  // namespace

ScanPartial ScanBatch(const EstimatorKernel& kernel, BatchView view,
                      const ScanOptions& options) {
  if (view.size == 0) return ScanPartial();
  const int num_chunks = (view.size + kScanChunkRows - 1) / kScanChunkRows;
  const int threads = ResolveThreads(options.num_threads, num_chunks);
  const bool with_variance = options.with_variance;
  ScanMetrics& metrics = ScanMetrics::Get();
  CountScan(kernel, view, num_chunks, metrics);
  obs::ScopedTimer timer(metrics.seconds);
  return ReduceChunks<ScanPartial>(num_chunks, threads, [&](int c,
                                                            ScanPartial*
                                                                out) {
    const BatchView chunk = Chunk(view, c);
    double est[kScanChunkRows];
    double var[kScanChunkRows];
    ScanPartial& partial = *out;
    double sum = 0.0;
    if (with_variance) {
      kernel.EstimateWithVarianceMany(chunk, est, var);
      double variance = 0.0;
      for (int i = 0; i < chunk.size; ++i) {
        sum += est[i];
        variance += var[i];
      }
      partial.variance = variance;
    } else {
      kernel.EstimateMany(chunk, est);
      for (int i = 0; i < chunk.size; ++i) sum += est[i];
    }
    partial.sum = sum;
    // Chunk moments in closed form (two-pass mean/M2) rather than per-key
    // Welford: no division in the per-key loop, and Chan's Merge combines
    // chunk moments exactly as it combines Welford partials.
    const double mean = sum / static_cast<double>(chunk.size);
    double m2 = 0.0;
    for (int i = 0; i < chunk.size; ++i) {
      const double delta = est[i] - mean;
      m2 += delta * delta;
    }
    partial.per_key = MomentAccumulator::FromMoments(chunk.size, mean, m2);
  });
}

double ScanSum(const EstimatorKernel& kernel, BatchView view,
               int num_threads) {
  if (view.size == 0) return 0.0;
  const int num_chunks = (view.size + kScanChunkRows - 1) / kScanChunkRows;
  const int threads = ResolveThreads(num_threads, num_chunks);
  ScanMetrics& metrics = ScanMetrics::Get();
  CountScan(kernel, view, num_chunks, metrics);
  obs::ScopedTimer timer(metrics.seconds);
  return ReduceChunks<SumPartial>(num_chunks, threads,
                                  [&](int c, SumPartial* out) {
                                    const BatchView chunk = Chunk(view, c);
                                    double est[kScanChunkRows];
                                    kernel.EstimateMany(chunk, est);
                                    double sum = 0.0;
                                    for (int i = 0; i < chunk.size; ++i) {
                                      sum += est[i];
                                    }
                                    out->sum = sum;
                                  })
      .sum;
}

}  // namespace pie
