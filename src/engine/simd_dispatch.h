// Runtime SIMD-tier dispatch and gather-prefetch configuration.
//
// The build compiles up to three execution tiers of the partitioned kernel
// paths:
//  * generic  -- the portable loops (PIE_SIMD=OFF), or the branch-free
//                AVX2 auto-vectorized loops (PIE_SIMD=ON). Chosen at
//                compile time; "scalar" and "avx2" name the same code in a
//                given build.
//  * avx512   -- hand-written AVX-512F helpers (engine/simd_avx512.cc,
//                PIE_SIMD_AVX512=ON) for the bucket gather/scatter and the
//                regime-compaction loops the AVX2 tier leaves scalar.
//                Selected at RUNTIME via CPUID, so a PIE_SIMD_AVX512
//                binary stays safe on machines without AVX-512.
//
// Every tier is bitwise identical to every other: the AVX-512 helpers are
// pure data movement (gathers/scatters/compress of untouched doubles) and
// predicate evaluation replicating the scalar comparison semantics, so no
// floating-point result depends on the tier (enforced both ways by
// tests/simd_dispatch_test.cc and the registry-wide sweeps).
//
// Env knobs (strict parsing, ParsePieThreads-style: garbage warns once on
// stderr, bumps pie_config_errors_total, and falls back to the default):
//  * PIE_SIMD_TIER     -- "scalar" | "avx2" | "avx512": force a tier for
//                         tests/debugging. Requests above the build+CPU
//                         ceiling clamp down; the effective tier is
//                         exported as the pie_simd_tier gauge.
//  * PIE_PREFETCH_DIST -- software-prefetch distance in rows for the slab
//                         gather loops (0 disables; default
//                         kPieDefaultPrefetchRows).

#pragma once

#include <atomic>

namespace pie {

/// Execution tiers, ordered: higher enables strictly more ISA. kScalar and
/// kAvx2 select the same compiled code within one build (the generic
/// paths); the distinction documents which build produced it and lets
/// tests exercise the clamping logic.
enum class SimdTier : int { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

/// Strict parse of a PIE_SIMD_TIER value: optional surrounding whitespace
/// around exactly "scalar", "avx2", or "avx512" (lowercase). Returns false
/// on anything else (empty, case variants, prefixes, trailing garbage).
bool ParseSimdTier(const char* text, SimdTier* out);

/// Default and maximum gather-prefetch distances, in rows.
inline constexpr int kPieDefaultPrefetchRows = 256;
inline constexpr int kMaxPrefetchRows = 1 << 20;

/// Strict parse of a PIE_PREFETCH_DIST value: optional whitespace, an
/// optional '+', decimal digits only, range [0, kMaxPrefetchRows] (0 means
/// "disable prefetch"). Sets *invalid and returns 0 on anything else.
int ParsePrefetchDistance(const char* text, bool* invalid);

/// The tier ceiling this build + this CPU can execute: kAvx512 only when
/// PIE_SIMD_AVX512 is compiled in AND cpuid reports avx512f; kAvx2 when
/// PIE_SIMD is on; else kScalar.
SimdTier MaxSupportedSimdTier();

/// The effective tier: min(requested, ceiling), resolved once from
/// PIE_SIMD_TIER (invalid values warn once + bump pie_config_errors_total)
/// and exported as the pie_simd_tier gauge.
SimdTier ActiveSimdTier();

/// Forces the effective tier (clamped to MaxSupportedSimdTier) -- test
/// hook; updates the pie_simd_tier gauge. Returns the tier actually set.
SimdTier SetSimdTierForTest(SimdTier tier);

/// Effective prefetch distance in rows (0 = disabled), resolved once from
/// PIE_PREFETCH_DIST with the same invalid-value protocol.
int PrefetchDistanceRows();

/// Forces the prefetch distance (clamped to [0, kMaxPrefetchRows]) -- test
/// and bench hook. Returns the distance actually set.
int SetPrefetchDistanceForTest(int rows);

namespace simd_internal {
/// Resolved state, -1 until first use. Inline atomics so the hot-path
/// checks below are a single relaxed load after resolution (and stay
/// race-free under TSan when tests flip tiers).
inline std::atomic<int> g_tier{-1};
inline std::atomic<int> g_prefetch{-1};
int ResolveTierSlow();
int ResolvePrefetchSlow();
}  // namespace simd_internal

/// True when the AVX-512 helper tier is active -- the hot-path dispatch
/// check compiled into the partition helpers (one relaxed load).
inline bool UseAvx512Tier() {
  const int tier = simd_internal::g_tier.load(std::memory_order_relaxed);
  return (tier >= 0 ? tier : simd_internal::ResolveTierSlow()) >=
         static_cast<int>(SimdTier::kAvx512);
}

}  // namespace pie
