#include "sampling/rank.h"

#include <cmath>

#include "util/check.h"

namespace pie {

const char* RankFamilyToString(RankFamily family) {
  switch (family) {
    case RankFamily::kPps:
      return "PPS";
    case RankFamily::kExp:
      return "EXP";
  }
  return "Unknown";
}

double RankValue(RankFamily family, double w, double u) {
  PIE_DCHECK(w >= 0);
  PIE_DCHECK(u >= 0 && u < 1);
  if (w == 0) return Infinity();
  switch (family) {
    case RankFamily::kPps:
      return u / w;
    case RankFamily::kExp:
      return -std::log1p(-u) / w;
  }
  return Infinity();
}

double RankInclusionProb(RankFamily family, double w, double tau) {
  PIE_DCHECK(w >= 0);
  PIE_DCHECK(tau >= 0);
  if (w == 0) return 0.0;
  if (std::isinf(tau)) return 1.0;
  switch (family) {
    case RankFamily::kPps:
      return std::fmin(1.0, w * tau);
    case RankFamily::kExp:
      return -std::expm1(-w * tau);
  }
  return 0.0;
}

Status ValidateWeight(double w) {
  if (!std::isfinite(w) || w < 0) {
    return Status::InvalidArgument("weight must be finite and nonnegative");
  }
  return Status::OK();
}

}  // namespace pie
