#include "sampling/varopt.h"

#include <algorithm>

#include "util/check.h"

namespace pie {

Status ValidateVarOptConfig(int k) {
  if (k <= 0) return Status::InvalidArgument("k must be positive");
  return Status::OK();
}

VarOptSampler::VarOptSampler(int k, uint64_t seed) : k_(k), rng_(seed) {
  PIE_CHECK(k > 0);
}

int VarOptSampler::size() const {
  return static_cast<int>(large_.size() + small_keys_.size());
}

void VarOptSampler::Add(uint64_t key, double weight) {
  PIE_CHECK_OK(ValidateWeight(weight));
  if (weight <= 0) return;
  total_weight_ += weight;
  // tau_ only grows, so a new item below tau_ would belong to the small
  // pool; but small items must all have HT weight tau_, so route everything
  // through the large heap and let DropOne reclassify.
  large_.push({key, weight});
  if (size() > k_) DropOne();
}

void VarOptSampler::AddAll(const std::vector<WeightedItem>& items) {
  for (const auto& item : items) Add(item.key, item.weight);
}

void VarOptSampler::DropOne() {
  // Pool of this step's individually-weighted small candidates (items popped
  // from the large heap because they fall below the new threshold).
  std::vector<HeapItem> stepped;
  // Old small items count t, each with weight tau_.
  const double t = static_cast<double>(small_keys_.size());
  double small_sum = t * tau_;
  double small_count = t;

  // Grow the small pool until the implied threshold
  //   tau' = small_sum / (k - |large|)
  // exceeds every small item and is at most the smallest large weight.
  while (!large_.empty()) {
    const double remaining = static_cast<double>(k_) -
                             static_cast<double>(large_.size());
    if (remaining > 0 && large_.top().weight * remaining > small_sum) break;
    stepped.push_back(large_.top());
    large_.pop();
    small_sum += stepped.back().weight;
    small_count += 1.0;
  }
  const double remaining = static_cast<double>(k_) -
                           static_cast<double>(large_.size());
  PIE_CHECK(remaining > 0);
  const double new_tau = small_sum / remaining;
  PIE_DCHECK(new_tau >= tau_);

  // Drop exactly one small item; drop probabilities 1 - w_i/tau' sum to 1
  // because small_count - small_sum/tau' = (k+1) - |large| - (k - |large|).
  double u = rng_.UniformDouble();
  bool dropped = false;

  // Group 1: old small items, each with drop probability 1 - tau_/tau'.
  const double old_drop_each = 1.0 - (new_tau > 0 ? tau_ / new_tau : 0.0);
  const double old_drop_mass = t * old_drop_each;
  if (u < old_drop_mass) {
    const size_t victim =
        std::min(static_cast<size_t>(u / old_drop_each),
                 small_keys_.size() - 1);
    small_keys_[victim] = small_keys_.back();
    small_keys_.pop_back();
    dropped = true;
  } else {
    u -= old_drop_mass;
    // Group 2: this step's individually-weighted items.
    for (size_t j = 0; j < stepped.size(); ++j) {
      const double dj = 1.0 - stepped[j].weight / new_tau;
      if (!dropped && u < dj) {
        stepped[j] = stepped.back();
        stepped.pop_back();
        dropped = true;
        break;
      }
      u -= dj;
    }
    // Floating-point slack: if the masses summed to slightly under 1 and we
    // fell off the end, drop the last stepped item (largest drop deficit is
    // O(eps)).
    if (!dropped) {
      if (!stepped.empty()) {
        stepped.pop_back();
      } else {
        PIE_CHECK(!small_keys_.empty());
        small_keys_.pop_back();
      }
    }
  }

  for (const auto& item : stepped) small_keys_.push_back(item.key);
  tau_ = new_tau;
  PIE_CHECK(size() == k_);
}

std::vector<VarOptSampler::Entry> VarOptSampler::Sample() const {
  std::vector<Entry> out;
  out.reserve(static_cast<size_t>(size()));
  auto heap_copy = large_;
  while (!heap_copy.empty()) {
    const auto& item = heap_copy.top();
    out.push_back({item.key, item.weight, item.weight});
    heap_copy.pop();
  }
  for (uint64_t key : small_keys_) {
    // Original weights of small items are intentionally forgotten; their HT
    // adjusted weight is exactly tau_.
    out.push_back({key, tau_, tau_});
  }
  return out;
}

double VarOptSampler::SubsetSumEstimate(
    const std::function<bool(uint64_t)>& pred) const {
  double sum = 0.0;
  for (const auto& e : Sample()) {
    if (pred(e.key)) sum += e.adjusted_weight;
  }
  return sum;
}

}  // namespace pie
