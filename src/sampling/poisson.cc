#include "sampling/poisson.h"

#include <algorithm>
#include <cmath>

#include "sampling/rank.h"
#include "util/check.h"

namespace pie {
namespace {

double MaxWhereSampled(const std::vector<uint8_t>& sampled,
                       const std::vector<double>& value) {
  double best = 0.0;
  for (size_t i = 0; i < sampled.size(); ++i) {
    if (sampled[i]) best = std::max(best, value[i]);
  }
  return best;
}

int CountSampled(const std::vector<uint8_t>& sampled) {
  int n = 0;
  for (uint8_t s : sampled) n += s;
  return n;
}

}  // namespace

int ObliviousOutcome::NumSampled() const { return CountSampled(sampled); }
double ObliviousOutcome::MaxSampledValue() const {
  return MaxWhereSampled(sampled, value);
}

int PpsOutcome::NumSampled() const { return CountSampled(sampled); }
double PpsOutcome::MaxSampledValue() const {
  return MaxWhereSampled(sampled, value);
}

Status ValidateObliviousConfig(const std::vector<double>& values,
                               const std::vector<double>& p) {
  if (values.size() != p.size()) {
    return Status::InvalidArgument("values and p must have equal length");
  }
  if (values.empty()) {
    return Status::InvalidArgument("empty data vector");
  }
  for (double pi : p) {
    if (!(pi > 0.0) || pi > 1.0) {
      return Status::InvalidArgument("probabilities must lie in (0,1]");
    }
  }
  for (double v : values) {
    PIE_RETURN_IF_ERROR(ValidateWeight(v));
  }
  return Status::OK();
}

Status ValidatePpsConfig(const std::vector<double>& values,
                         const std::vector<double>& tau) {
  if (values.size() != tau.size()) {
    return Status::InvalidArgument("values and tau must have equal length");
  }
  if (values.empty()) {
    return Status::InvalidArgument("empty data vector");
  }
  for (double t : tau) {
    if (!(t > 0.0) || !std::isfinite(t)) {
      return Status::InvalidArgument("thresholds must be finite and positive");
    }
  }
  for (double v : values) {
    PIE_RETURN_IF_ERROR(ValidateWeight(v));
  }
  return Status::OK();
}

ObliviousOutcome SampleObliviousWithSeeds(const std::vector<double>& values,
                                          const std::vector<double>& p,
                                          const std::vector<double>& seeds) {
  PIE_CHECK(values.size() == p.size() && values.size() == seeds.size());
  ObliviousOutcome out;
  out.p = p;
  out.value = values;
  out.sampled.resize(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    out.sampled[i] = seeds[i] < p[i] ? 1 : 0;
    if (!out.sampled[i]) out.value[i] = 0.0;  // not visible to estimators
  }
  return out;
}

ObliviousOutcome SampleOblivious(const std::vector<double>& values,
                                 const std::vector<double>& p, Rng& rng) {
  std::vector<double> seeds(values.size());
  for (double& s : seeds) s = rng.UniformDouble();
  return SampleObliviousWithSeeds(values, p, seeds);
}

PpsOutcome SamplePpsWithSeeds(const std::vector<double>& values,
                              const std::vector<double>& tau,
                              const std::vector<double>& seeds) {
  PIE_CHECK(values.size() == tau.size() && values.size() == seeds.size());
  PpsOutcome out;
  out.tau = tau;
  out.seed = seeds;
  out.value = values;
  out.sampled.resize(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    out.sampled[i] = values[i] >= seeds[i] * tau[i] && values[i] > 0 ? 1 : 0;
    if (!out.sampled[i]) out.value[i] = 0.0;  // not visible to estimators
  }
  return out;
}

PpsOutcome SamplePps(const std::vector<double>& values,
                     const std::vector<double>& tau, Rng& rng) {
  std::vector<double> seeds(values.size());
  for (double& s : seeds) s = rng.UniformDouble();
  return SamplePpsWithSeeds(values, tau, seeds);
}

}  // namespace pie
