#include "sampling/bottomk.h"

#include <algorithm>
#include <queue>

#include "util/check.h"

namespace pie {

Status ValidateBottomKConfig(const std::vector<WeightedItem>& items, int k) {
  if (k <= 0) return Status::InvalidArgument("k must be positive");
  for (const auto& item : items) {
    PIE_RETURN_IF_ERROR(ValidateWeight(item.weight));
  }
  return Status::OK();
}

BottomKSketch BottomKSample(const std::vector<WeightedItem>& items, int k,
                            RankFamily family,
                            const std::function<double(uint64_t)>& seed_fn) {
  PIE_CHECK(k > 0);
  BottomKSketch sketch;
  sketch.family = family;
  sketch.k = k;

  // Max-heap over the k+1 smallest ranks seen so far: k sketch entries plus
  // the threshold candidate.
  auto cmp = [](const BottomKSketch::Entry& a, const BottomKSketch::Entry& b) {
    return a.rank < b.rank;
  };
  std::priority_queue<BottomKSketch::Entry,
                      std::vector<BottomKSketch::Entry>, decltype(cmp)>
      heap(cmp);

  for (const auto& item : items) {
    if (item.weight <= 0) continue;  // zero keys are never sampled
    const double u = seed_fn(item.key);
    const double rank = RankValue(family, item.weight, u);
    heap.push({item.key, item.weight, rank});
    if (static_cast<int>(heap.size()) > k + 1) heap.pop();
  }

  if (static_cast<int>(heap.size()) == k + 1) {
    sketch.threshold = heap.top().rank;  // (k+1)-st smallest rank
    heap.pop();
  } else {
    sketch.threshold = Infinity();  // sketch holds the whole instance
  }

  sketch.entries.resize(heap.size());
  for (size_t i = heap.size(); i-- > 0;) {
    sketch.entries[i] = heap.top();
    heap.pop();
  }
  return sketch;
}

double BottomKSubsetSum(const BottomKSketch& sketch,
                        const std::function<bool(uint64_t)>& pred) {
  double sum = 0.0;
  for (const auto& e : sketch.entries) {
    if (pred(e.key)) sum += sketch.AdjustedWeight(e);
  }
  return sum;
}

}  // namespace pie
