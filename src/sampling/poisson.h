// Poisson (independent per-entry) sampling of a dispersed data vector
// v = (v_1, ..., v_r), one entry per instance (Section 2 of the paper).
//
// Two schemes are modeled:
//  * Weight-oblivious: entry i is sampled with a fixed probability p_i,
//    independent of v_i.
//  * Weighted PPS with thresholds tau*_i and seeds u_i ~ U[0,1): entry i is
//    sampled iff v_i >= u_i * tau*_i, i.e. with probability min(1, v_i/tau*_i).
//    In the *known seeds* model the seed vector is visible to the estimator,
//    so a missing entry additionally reveals the upper bound v_i < u_i*tau*_i.
//
// Outcomes carry everything an estimator is allowed to look at; the
// unknown-seeds model is represented by simply not reading `seed`
// (estimators declare which model they implement).

#pragma once

#include <cstdint>
#include <vector>

#include "util/random.h"
#include "util/status.h"

namespace pie {

/// Outcome of weight-oblivious Poisson sampling of one data vector.
struct ObliviousOutcome {
  std::vector<double> p;        ///< per-entry inclusion probabilities
  std::vector<uint8_t> sampled; ///< 1 iff entry is in the sample
  std::vector<double> value;    ///< v_i; meaningful only where sampled

  int r() const { return static_cast<int>(p.size()); }
  int NumSampled() const;
  bool AllSampled() const { return NumSampled() == r(); }
  /// Largest sampled value; 0 if nothing is sampled.
  double MaxSampledValue() const;
};

/// Draws a weight-oblivious Poisson sample of `values` with inclusion
/// probabilities `p` (same length, p_i in (0,1]).
ObliviousOutcome SampleOblivious(const std::vector<double>& values,
                                 const std::vector<double>& p, Rng& rng);

/// Deterministic variant: entry i is sampled iff seeds[i] < p[i]; used by
/// exhaustive enumeration in tests.
ObliviousOutcome SampleObliviousWithSeeds(const std::vector<double>& values,
                                          const std::vector<double>& p,
                                          const std::vector<double>& seeds);

/// Outcome of weighted PPS Poisson sampling with known seeds.
struct PpsOutcome {
  std::vector<double> tau;      ///< tau*_i > 0, fixed thresholds
  std::vector<double> seed;     ///< u_i in [0,1); visible iff seeds are known
  std::vector<uint8_t> sampled; ///< 1 iff v_i >= u_i * tau*_i
  std::vector<double> value;    ///< v_i; meaningful only where sampled

  int r() const { return static_cast<int>(tau.size()); }
  int NumSampled() const;
  /// Largest sampled value; 0 if nothing is sampled.
  double MaxSampledValue() const;
  /// Known-seeds upper bound on an unsampled entry: v_i < seed[i]*tau[i].
  double UpperBound(int i) const { return seed[i] * tau[i]; }
};

/// Draws a weighted PPS sample of `values` with thresholds `tau`.
PpsOutcome SamplePps(const std::vector<double>& values,
                     const std::vector<double>& tau, Rng& rng);

/// Deterministic variant with explicit seeds.
PpsOutcome SamplePpsWithSeeds(const std::vector<double>& values,
                              const std::vector<double>& tau,
                              const std::vector<double>& seeds);

/// Validates sampler configuration (dimensions and parameter ranges).
Status ValidateObliviousConfig(const std::vector<double>& values,
                               const std::vector<double>& p);
Status ValidatePpsConfig(const std::vector<double>& values,
                         const std::vector<double>& tau);

}  // namespace pie
