// VarOpt_k stream sampling (Chao 1982; Cohen, Duffield, Kaplan, Lund,
// Thorup 2009): a fixed-size weighted sample with PPS inclusion
// probabilities and variance-optimal subset-sum estimates.
//
// The paper (Section 7.1) lists VarOpt alongside Poisson and bottom-k as a
// sampling scheme estimators must accommodate. VarOpt maintains exactly k
// items; an item with weight w is included with probability min(1, w/tau)
// where tau is the final threshold, and its Horvitz-Thompson adjusted weight
// is max(w, tau). A distinguishing property (tested): the full-population
// estimate Sum of adjusted weights equals the true total *deterministically*.

#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sampling/bottomk.h"  // WeightedItem
#include "util/random.h"
#include "util/status.h"

namespace pie {

/// Streaming VarOpt_k sampler. Add items one at a time, then read the
/// sample. O(log k) amortized per item.
class VarOptSampler {
 public:
  struct Entry {
    uint64_t key = 0;
    double weight = 0.0;           ///< original weight
    double adjusted_weight = 0.0;  ///< max(weight, tau): HT weight
  };

  /// Creates a sampler holding at most k items; randomness from `seed`.
  VarOptSampler(int k, uint64_t seed);

  /// Processes one stream item. Items with weight <= 0 are ignored
  /// (consistent with weighted sampling of sparse data).
  void Add(uint64_t key, double weight);

  /// Processes a batch.
  void AddAll(const std::vector<WeightedItem>& items);

  /// Current threshold tau (0 until the sample first overflows k).
  double threshold() const { return tau_; }

  /// Number of retained items: min(k, #positive items seen).
  int size() const;

  /// Total weight of the stream so far.
  double total_weight() const { return total_weight_; }

  /// Materializes the current sample with adjusted weights.
  std::vector<Entry> Sample() const;

  /// Unbiased subset-sum estimate over keys selected by `pred`.
  double SubsetSumEstimate(const std::function<bool(uint64_t)>& pred) const;

 private:
  struct HeapItem {
    uint64_t key;
    double weight;
    bool operator>(const HeapItem& o) const { return weight > o.weight; }
  };

  // Resolves an overflow to k+1 items: computes the new threshold, drops
  // exactly one item, and migrates newly-small items into small_keys_.
  void DropOne();

  int k_;
  Rng rng_;
  double tau_ = 0.0;
  double total_weight_ = 0.0;
  // Items with weight > tau_, min-heap by weight.
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> large_;
  // Items whose HT adjusted weight is exactly tau_ (original weights are no
  // longer needed -- VarOpt's inclusion probabilities make all small items
  // exchangeable).
  std::vector<uint64_t> small_keys_;
};

/// Validates VarOpt parameters.
Status ValidateVarOptConfig(int k);

}  // namespace pie
