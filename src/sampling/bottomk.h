// Bottom-k (order) sampling of a weighted instance (Section 7.1).
//
// Every key h with value w(h) > 0 gets a rank r(h) = F_w(h)^{-1}(u(h)) from a
// reproducible seed u(h); the sketch keeps the k keys of smallest rank plus
// the (k+1)-st smallest rank as the conditioning threshold. With PPS ranks
// this is priority sampling (PRI); with EXP ranks it is weighted sampling
// without replacement.
//
// Subset-sum estimation uses rank conditioning (RC): conditioned on the
// ranks of all other keys, a sampled key h is included exactly when its rank
// falls below the threshold, which happens with probability
// F_w(h)(threshold); its Horvitz-Thompson adjusted weight is
// w(h) / F_w(h)(threshold).

#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sampling/rank.h"
#include "util/hashing.h"
#include "util/status.h"

namespace pie {

/// A (key, value) pair of one instance. Values are nonnegative; zero-valued
/// keys are never represented explicitly (sparse representation).
struct WeightedItem {
  uint64_t key = 0;
  double weight = 0.0;
};

/// A bottom-k sketch: the k smallest-ranked keys and the conditioning
/// threshold.
struct BottomKSketch {
  struct Entry {
    uint64_t key = 0;
    double weight = 0.0;
    double rank = 0.0;
  };

  RankFamily family = RankFamily::kPps;
  int k = 0;
  /// (k+1)-st smallest rank over the instance; +infinity when the instance
  /// has at most k positive keys (then the sketch is exact).
  double threshold = 0.0;
  /// Entries sorted by increasing rank; size min(k, #positive keys).
  std::vector<Entry> entries;

  /// Rank-conditioning inclusion probability of a sketched entry.
  double InclusionProb(const Entry& e) const {
    return RankInclusionProb(family, e.weight, threshold);
  }
  /// Horvitz-Thompson adjusted weight of a sketched entry.
  double AdjustedWeight(const Entry& e) const {
    return e.weight / InclusionProb(e);
  }
};

/// Builds the bottom-k sketch of `items` using seeds from `seed_fn`
/// (reproducible; share the SeedFunction salt across instances to coordinate
/// samples, or pass any key -> [0,1) function). O(n log k).
BottomKSketch BottomKSample(const std::vector<WeightedItem>& items, int k,
                            RankFamily family,
                            const std::function<double(uint64_t)>& seed_fn);

/// Rank-conditioning estimate of sum of weights over keys selected by
/// `pred`. Unbiased for any fixed predicate.
double BottomKSubsetSum(const BottomKSketch& sketch,
                        const std::function<bool(uint64_t)>& pred);

/// Validates bottom-k parameters.
Status ValidateBottomKConfig(const std::vector<WeightedItem>& items, int k);

}  // namespace pie
