// Random-rank families for weighted sampling (Section 7.1 of the paper).
//
// A rank assignment maps a key with value w and a uniform seed u in [0,1) to
// a rank r = F_w^{-1}(u), where F_w is the rank CDF for value w. Bottom-k
// sampling keeps the k smallest ranks; Poisson-tau sampling keeps ranks
// below a fixed threshold tau.
//
//  * PPS ranks: F_w(x) = min(1, w*x); rank u/w. Poisson-tau is probability-
//    proportional-to-size sampling, bottom-k is priority sampling.
//  * EXP ranks: F_w(x) = 1 - exp(-w*x); rank -ln(1-u)/w. Bottom-k is
//    weighted sampling without replacement (successive PPS).
//
// Values w = 0 receive rank +infinity and are never sampled (weighted
// sampling never samples zero entries, Section 2).

#pragma once

#include <limits>

#include "util/status.h"

namespace pie {

enum class RankFamily {
  kPps,  // uniform rank CDF on [0, 1/w]
  kExp,  // exponential rank with parameter w
};

const char* RankFamilyToString(RankFamily family);

/// r = F_w^{-1}(u): the rank of a key with value `w` and seed `u` in [0,1).
/// Returns +infinity when w == 0.
double RankValue(RankFamily family, double w, double u);

/// F_w(tau): probability that the rank of a value-w key is below `tau`,
/// i.e. the inclusion probability under threshold (Poisson-tau) sampling or
/// under rank conditioning for bottom-k.
double RankInclusionProb(RankFamily family, double w, double tau);

/// Validates a (family, w) pair: w must be finite and nonnegative.
Status ValidateWeight(double w);

inline double Infinity() { return std::numeric_limits<double>::infinity(); }

}  // namespace pie
