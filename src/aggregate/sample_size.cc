#include "aggregate/sample_size.h"

#include <cmath>
#include <functional>

// The cv formulas evaluate the engine-backed Section 8.1 variances
// (aggregate/distinct routes them through the registry's OR kernels); the
// bisection below sweeps p, which is why those paths use uncached registry
// kernels rather than the global engine cache.
#include "aggregate/distinct.h"
#include "util/check.h"

namespace pie {
namespace {

double UnionSize(double n, double jaccard) { return 2.0 * n / (1.0 + jaccard); }

Result<double> SolveForSampleSize(double n, double jaccard, double target_cv,
                                  const std::function<double(double)>& cv) {
  PIE_CHECK(n > 0);
  PIE_CHECK(jaccard >= 0 && jaccard <= 1);
  PIE_CHECK(target_cv > 0);
  if (cv(1.0) > target_cv) {
    return Status::OutOfRange("target cv unreachable even at p = 1");
  }
  double lo = 1e-12;
  double hi = 1.0;
  if (cv(lo) <= target_cv) return lo * n;
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = std::sqrt(lo * hi);  // log-scale bisection
    if (cv(mid) > target_cv) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi * n;
}

}  // namespace

double DistinctCvHt(double n, double jaccard, double p) {
  const double d = UnionSize(n, jaccard);
  return std::sqrt(DistinctHtVariance(d, p, p)) / d;
}

double DistinctCvL(double n, double jaccard, double p) {
  const double d = UnionSize(n, jaccard);
  return std::sqrt(DistinctLVariance(d, jaccard, p, p)) / d;
}

Result<double> RequiredSampleSizeHt(double n, double jaccard, double cv) {
  return SolveForSampleSize(n, jaccard, cv, [&](double p) {
    return DistinctCvHt(n, jaccard, p);
  });
}

Result<double> RequiredSampleSizeL(double n, double jaccard, double cv) {
  return SolveForSampleSize(n, jaccard, cv, [&](double p) {
    return DistinctCvL(n, jaccard, p);
  });
}

}  // namespace pie
