#include "aggregate/dataset.h"

#include "util/check.h"

namespace pie {

MultiInstanceData::MultiInstanceData(int num_instances)
    : num_instances_(num_instances) {
  PIE_CHECK(num_instances >= 1);
}

void MultiInstanceData::Set(uint64_t key, int instance, double value) {
  PIE_CHECK(instance >= 0 && instance < num_instances_);
  PIE_CHECK_OK(ValidateWeight(value));
  auto [it, inserted] = rows_.try_emplace(
      key, std::vector<double>(static_cast<size_t>(num_instances_), 0.0));
  it->second[static_cast<size_t>(instance)] = value;
}

std::vector<double> MultiInstanceData::Values(uint64_t key) const {
  auto it = rows_.find(key);
  if (it == rows_.end()) {
    return std::vector<double>(static_cast<size_t>(num_instances_), 0.0);
  }
  return it->second;
}

std::vector<uint64_t> MultiInstanceData::Keys() const {
  std::vector<uint64_t> keys;
  keys.reserve(rows_.size());
  for (const auto& [key, values] : rows_) {
    for (double v : values) {
      if (v != 0.0) {
        keys.push_back(key);
        break;
      }
    }
  }
  return keys;
}

std::vector<WeightedItem> MultiInstanceData::InstanceItems(
    int instance) const {
  PIE_CHECK(instance >= 0 && instance < num_instances_);
  std::vector<WeightedItem> items;
  for (const auto& [key, values] : rows_) {
    const double v = values[static_cast<size_t>(instance)];
    if (v > 0.0) items.push_back({key, v});
  }
  return items;
}

double MultiInstanceData::InstanceTotal(int instance) const {
  double total = 0.0;
  for (const auto& item : InstanceItems(instance)) total += item.weight;
  return total;
}

double MultiInstanceData::SumAggregate(
    const std::function<double(const std::vector<double>&)>& f,
    const std::function<bool(uint64_t)>& pred) const {
  double total = 0.0;
  for (const auto& [key, values] : rows_) {
    if (pred && !pred(key)) continue;
    total += f(values);
  }
  return total;
}

MultiInstanceData MultiInstanceData::PaperExample() {
  // Figure 5 (A): rows are instances 1..3, columns keys 1..6.
  const double table[3][6] = {
      {15, 0, 10, 5, 10, 10},
      {20, 10, 12, 20, 0, 10},
      {10, 15, 15, 0, 15, 10},
  };
  MultiInstanceData data(3);
  for (int i = 0; i < 3; ++i) {
    for (int h = 0; h < 6; ++h) {
      if (table[i][h] > 0) {
        data.Set(static_cast<uint64_t>(h + 1), i, table[i][h]);
      }
    }
  }
  return data;
}

}  // namespace pie
