// Per-instance sketches with reproducible hash seeds (Section 7.1-7.2).
//
// Each instance is summarized independently -- processing one instance never
// looks at another's values -- but seeds come from a salted hash of the key,
// so at estimation time the seed u_i(h) of *any* key in *any* instance can
// be recomputed ("known seeds"). Using one shared salt coordinates the
// samples (PRN method); distinct salts give independent samples.

#pragma once

#include <cmath>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sampling/bottomk.h"
#include "sampling/poisson.h"
#include "store/streaming_sketch.h"
#include "util/hashing.h"
#include "util/status.h"

namespace pie {

class OutcomeBatch;
class StoreSnapshot;

/// Poisson PPS sketch of one instance: key h is included iff
/// v(h) >= u(h) * tau, i.e. with probability min(1, v(h)/tau).
///
/// A thin estimation-side view over the store layer's one-pass builder:
/// Build feeds the batch through a StreamingPpsSketch, so the batch and
/// streaming paths produce identical sample sets by construction.
class PpsInstanceSketch {
 public:
  /// Builds the sketch of `items` with threshold `tau` and seed salt `salt`.
  static PpsInstanceSketch Build(const std::vector<WeightedItem>& items,
                                 double tau, uint64_t salt);

  /// Adopts the sample of a one-pass builder (same tau, salt, entries).
  static PpsInstanceSketch FromStreaming(const StreamingPpsSketch& stream);

  double tau() const { return tau_; }
  uint64_t salt() const { return salt_; }
  const SeedFunction& seed_fn() const { return seed_fn_; }
  int size() const { return static_cast<int>(entries_.size()); }
  const std::vector<WeightedItem>& entries() const { return entries_; }

  /// True + value if the key is in the sketch.
  bool Lookup(uint64_t key, double* value) const;

  /// Horvitz-Thompson subset-sum estimate of this instance's values.
  /// Templated on the predicate so the hot scan pays no std::function
  /// indirection or allocation (mirrors the PR 1 quadrature treatment).
  template <typename Pred>
  double SubsetSumEstimate(Pred&& pred) const {
    double sum = 0.0;
    for (const auto& e : entries_) {
      if (pred(e.key)) {
        sum += e.weight / std::fmin(1.0, e.weight / tau_);
      }
    }
    return sum;
  }

 private:
  PpsInstanceSketch(double tau, uint64_t salt)
      : tau_(tau), salt_(salt), seed_fn_(salt) {}

  double tau_;
  uint64_t salt_;
  SeedFunction seed_fn_;
  std::vector<WeightedItem> entries_;
  std::unordered_map<uint64_t, double> by_key_;
};

/// The exact global sketch of one store instance, materialized from a
/// snapshot by shard fan-in merge; plugs into the aggregate-layer
/// estimators (EstimateMaxDominance, MakePairOutcomeInto, ...) unchanged.
PpsInstanceSketch MaterializeInstance(const StoreSnapshot& snapshot,
                                      int instance);

/// Finds tau such that the expected PPS sample size sum_h min(1, v(h)/tau)
/// equals `target` (binary search; returns +0-sized result checks). Returns
/// InvalidArgument if target is not in (0, #items].
Result<double> FindPpsTauForExpectedSize(const std::vector<WeightedItem>& items,
                                         double target);

/// Assembles the PpsOutcome for one key across two sketches (the input to
/// the Section 5 estimators): values where sampled, recomputed seeds
/// everywhere.
PpsOutcome MakePairOutcome(const PpsInstanceSketch& s1,
                           const PpsInstanceSketch& s2, uint64_t key);

/// In-place variant for scalar call sites: overwrites `out` reusing its
/// inner vectors' capacity.
void MakePairOutcomeInto(const PpsInstanceSketch& s1,
                         const PpsInstanceSketch& s2, uint64_t key,
                         PpsOutcome* out);

/// Columnar variant for batched scans: appends one key's two-instance
/// outcome as a row of `batch` (whose layout must be
/// Reset(Scheme::kPps, 2)). Steady-state assembly into a Clear()ed batch
/// allocates nothing.
void AppendPairOutcome(const PpsInstanceSketch& s1,
                       const PpsInstanceSketch& s2, uint64_t key,
                       OutcomeBatch* batch);

}  // namespace pie
