// Sample-size planning for distinct-count queries (the Figure 6 analysis):
// given instance size n = |N1| = |N2|, Jaccard coefficient J of the two
// sets, and a target coefficient of variation, how large must the expected
// per-instance sample s = p*n be under the HT and L estimators?
//
// Union size D = 2n/(1+J); cv(p) = sqrt(Var(p)) / D with the Section 8.1
// variance formulas; cv is decreasing in p, so the minimal p solves
// cv(p) = target by bisection.

#pragma once

#include "util/status.h"

namespace pie {

/// cv of the HT distinct estimator at sampling probability p (p1 = p2 = p).
double DistinctCvHt(double n, double jaccard, double p);

/// cv of the L distinct estimator at sampling probability p.
double DistinctCvL(double n, double jaccard, double p);

/// Smallest expected sample size s = p*n with cv <= target under HT.
/// Returns OutOfRange if even p = 1 misses the target (it cannot: cv(1)=0).
Result<double> RequiredSampleSizeHt(double n, double jaccard, double cv);

/// Smallest expected sample size s = p*n with cv <= target under L.
Result<double> RequiredSampleSizeL(double n, double jaccard, double cv);

}  // namespace pie
