// Distinct count over r >= 2 independently sampled instances with known
// seeds: the general-r version of Section 8.1, powered by the Theorem 4.2
// prefix sums (OR^(L) estimate A_{r-z} for an outcome with at least one
// sampled membership and z seed-certified absences).
//
// Requires a uniform sampling probability across instances (the paper's
// general-p coefficients grow exponentially in the number of distinct
// probabilities; Theorem 4.2's O(r^2) recursion needs uniform p).
//
// Templated on the key predicate like the dominance scans; std::function
// overloads are thin wrappers.

#pragma once

#include <cmath>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "aggregate/distinct.h"
#include "aggregate/dominance.h"
#include "engine/engine.h"
#include "util/check.h"

namespace pie {

/// Per-key estimates of |union of r key sets| from their sketches.
/// All sketches must share the same p; keys are classified per instance as
/// member (sampled), certified-absent (seed below p but not sampled), or
/// unknown.
struct DistinctMultiEstimates {
  double ht = 0.0;  ///< positive only for keys with full information
  double l = 0.0;   ///< exploits partial information (A_{r-z} weights)
};

namespace distinct_multi_internal {

// Appends the representative binary outcome row with one sampled 1,
// `zeros` sampled 0s (seed-certified absences), and the rest unsampled. By
// symmetry the OR^(L) estimate of any outcome with at least one sampled 1
// depends only on the number of sampled 0s (the prefix sum A_{r-z}), so
// one row per z covers every key in that class.
void AppendRepresentativeRow(int r, double p, int ones, int zeros,
                             OutcomeBatch* batch);

}  // namespace distinct_multi_internal

template <typename Pred,
          typename = aggregate_internal::EnableIfKeyPredicate<Pred>>
DistinctMultiEstimates EstimateDistinctMulti(
    const std::vector<BinaryInstanceSketch>& sketches, Pred&& pred) {
  const int r = static_cast<int>(sketches.size());
  PIE_CHECK(r >= 2);
  const double p = sketches[0].p;
  for (const auto& s : sketches) {
    PIE_CHECK(std::fabs(s.p - p) < 1e-12 &&
              "multi-instance distinct count requires uniform p");
  }
  auto& engine = EstimationEngine::Global();
  const SamplingParams params(std::vector<double>(static_cast<size_t>(r), p));
  auto or_l = engine.Kernel(
      {Function::kOr, Scheme::kOblivious, Regime::kKnownSeeds, Family::kL},
      params);
  auto or_ht = engine.Kernel(
      {Function::kOr, Scheme::kOblivious, Regime::kKnownSeeds, Family::kHt},
      params);
  PIE_CHECK_OK(or_l.status());
  PIE_CHECK_OK(or_ht.status());

  // Per-class weights from one columnar batch of representative rows (row
  // z has z sampled zeros), evaluated with a single EstimateMany pass per
  // kernel; the engine's memoized kernel amortizes the Theorem 4.2
  // prefix-sum table. The HT weight is the all-sampled row z = r - 1.
  OutcomeBatch reps;
  reps.Reset(Scheme::kOblivious, r);
  for (int z = 0; z < r; ++z) {
    distinct_multi_internal::AppendRepresentativeRow(r, p, 1, z, &reps);
  }
  std::vector<double> l_weight;
  EstimateBatch(**or_l, reps, &l_weight);
  std::vector<double> ht_weights;
  EstimateBatch(**or_ht, reps, &ht_weights);
  const double ht_weight = ht_weights[static_cast<size_t>(r - 1)];

  // Membership map: key -> bitmask of sketches containing it.
  std::unordered_map<uint64_t, uint32_t> members;
  for (int i = 0; i < r; ++i) {
    for (uint64_t key : sketches[static_cast<size_t>(i)].keys) {
      if (!pred(key)) continue;
      members[key] |= (1u << i);
    }
  }

  DistinctMultiEstimates out;
  for (const auto& [key, mask] : members) {
    int ones = 0;
    int zeros = 0;
    for (int i = 0; i < r; ++i) {
      if ((mask >> i) & 1u) {
        ++ones;
      } else if (sketches[static_cast<size_t>(i)].seed_fn()(key) < p) {
        ++zeros;  // certified absent from instance i
      }
    }
    out.l += l_weight[static_cast<size_t>(zeros)];
    if (ones + zeros == r) out.ht += ht_weight;
  }
  return out;
}

/// All-keys and std::function conveniences (a null std::function selects
/// all keys).
DistinctMultiEstimates EstimateDistinctMulti(
    const std::vector<BinaryInstanceSketch>& sketches);
DistinctMultiEstimates EstimateDistinctMulti(
    const std::vector<BinaryInstanceSketch>& sketches,
    const std::function<bool(uint64_t)>& pred);

/// Analytic variances given the containment profile: counts[m-1] = number
/// of union keys that belong to exactly m of the r instances.
double DistinctMultiLVariance(const std::vector<int64_t>& counts, int r,
                              double p);
double DistinctMultiHtVariance(int64_t union_size, int r, double p);

}  // namespace pie
