// Distinct count over r >= 2 independently sampled instances with known
// seeds: the general-r version of Section 8.1, powered by the Theorem 4.2
// prefix sums (OR^(L) estimate A_{r-z} for an outcome with at least one
// sampled membership and z seed-certified absences).
//
// Requires a uniform sampling probability across instances (the paper's
// general-p coefficients grow exponentially in the number of distinct
// probabilities; Theorem 4.2's O(r^2) recursion needs uniform p).

#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "aggregate/distinct.h"

namespace pie {

/// Per-key estimates of |union of r key sets| from their sketches.
/// All sketches must share the same p; keys are classified per instance as
/// member (sampled), certified-absent (seed below p but not sampled), or
/// unknown.
struct DistinctMultiEstimates {
  double ht = 0.0;  ///< positive only for keys with full information
  double l = 0.0;   ///< exploits partial information (A_{r-z} weights)
};

DistinctMultiEstimates EstimateDistinctMulti(
    const std::vector<BinaryInstanceSketch>& sketches,
    const std::function<bool(uint64_t)>& pred = nullptr);

/// Analytic variances given the containment profile: counts[m-1] = number
/// of union keys that belong to exactly m of the r instances.
double DistinctMultiLVariance(const std::vector<int64_t>& counts, int r,
                              double p);
double DistinctMultiHtVariance(int64_t union_size, int r, double p);

}  // namespace pie
