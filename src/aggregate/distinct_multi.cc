#include "aggregate/distinct_multi.h"

#include <cmath>
#include <unordered_map>

#include "engine/engine.h"
#include "util/check.h"

namespace pie {
namespace {

KernelSpec OrObliviousSpec(Family family) {
  return {Function::kOr, Scheme::kOblivious, Regime::kKnownSeeds, family};
}

// Representative binary outcome with one sampled 1, `zeros` sampled 0s
// (seed-certified absences), and the rest unsampled. By symmetry the OR^(L)
// estimate of any outcome with at least one sampled 1 depends only on the
// number of sampled 0s (the prefix sum A_{r-z}), so one evaluation per z
// covers every key in that class.
ObliviousOutcome RepresentativeOutcome(int r, double p, int ones, int zeros) {
  ObliviousOutcome o;
  o.p.assign(static_cast<size_t>(r), p);
  o.sampled.assign(static_cast<size_t>(r), 0);
  o.value.assign(static_cast<size_t>(r), 0.0);
  for (int i = 0; i < ones; ++i) {
    o.sampled[static_cast<size_t>(i)] = 1;
    o.value[static_cast<size_t>(i)] = 1.0;
  }
  for (int i = ones; i < ones + zeros; ++i) {
    o.sampled[static_cast<size_t>(i)] = 1;
  }
  return o;
}

}  // namespace

DistinctMultiEstimates EstimateDistinctMulti(
    const std::vector<BinaryInstanceSketch>& sketches,
    const std::function<bool(uint64_t)>& pred) {
  const int r = static_cast<int>(sketches.size());
  PIE_CHECK(r >= 2);
  const double p = sketches[0].p;
  for (const auto& s : sketches) {
    PIE_CHECK(std::fabs(s.p - p) < 1e-12 &&
              "multi-instance distinct count requires uniform p");
  }
  auto& engine = EstimationEngine::Global();
  const SamplingParams params(std::vector<double>(static_cast<size_t>(r), p));
  auto or_l = engine.Kernel(OrObliviousSpec(Family::kL), params);
  auto or_ht = engine.Kernel(OrObliviousSpec(Family::kHt), params);
  PIE_CHECK_OK(or_l.status());
  PIE_CHECK_OK(or_ht.status());

  // Per-class weights, one kernel evaluation per sampled-zero count; the
  // engine's memoized kernel amortizes the Theorem 4.2 prefix-sum table.
  std::vector<double> l_weight(static_cast<size_t>(r));
  for (int z = 0; z < r; ++z) {
    l_weight[static_cast<size_t>(z)] = (*or_l)->Estimate(
        Outcome::FromOblivious(RepresentativeOutcome(r, p, 1, z)));
  }
  const double ht_weight = (*or_ht)->Estimate(
      Outcome::FromOblivious(RepresentativeOutcome(r, p, 1, r - 1)));

  // Membership map: key -> bitmask of sketches containing it.
  std::unordered_map<uint64_t, uint32_t> members;
  for (int i = 0; i < r; ++i) {
    for (uint64_t key : sketches[i].keys) {
      if (pred && !pred(key)) continue;
      members[key] |= (1u << i);
    }
  }

  DistinctMultiEstimates out;
  for (const auto& [key, mask] : members) {
    int ones = 0;
    int zeros = 0;
    for (int i = 0; i < r; ++i) {
      if ((mask >> i) & 1u) {
        ++ones;
      } else if (sketches[static_cast<size_t>(i)].seed_fn()(key) < p) {
        ++zeros;  // certified absent from instance i
      }
    }
    out.l += l_weight[static_cast<size_t>(zeros)];
    if (ones + zeros == r) out.ht += ht_weight;
  }
  return out;
}

double DistinctMultiLVariance(const std::vector<int64_t>& counts, int r,
                              double p) {
  PIE_CHECK(static_cast<int>(counts.size()) == r);
  auto or_l = EstimationEngine::Global().Kernel(
      OrObliviousSpec(Family::kL),
      SamplingParams(std::vector<double>(static_cast<size_t>(r), p)));
  PIE_CHECK_OK(or_l.status());
  std::vector<double> values(static_cast<size_t>(r), 0.0);
  double var = 0.0;
  for (int m = 1; m <= r; ++m) {
    values[static_cast<size_t>(m - 1)] = 1.0;  // m leading ones
    var += static_cast<double>(counts[static_cast<size_t>(m - 1)]) *
           (*or_l)->Variance(values).value();
  }
  return var;
}

double DistinctMultiHtVariance(int64_t union_size, int r, double p) {
  return static_cast<double>(union_size) * (1.0 / std::pow(p, r) - 1.0);
}

}  // namespace pie
