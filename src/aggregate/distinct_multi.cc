#include "aggregate/distinct_multi.h"

namespace pie {
namespace distinct_multi_internal {

void AppendRepresentativeRow(int r, double p, int ones, int zeros,
                             OutcomeBatch* batch) {
  PIE_CHECK(batch != nullptr);
  PIE_CHECK(ones + zeros <= r);
  const int row = batch->AppendRow();
  double* p_row = batch->param_row(row);
  uint8_t* sampled = batch->sampled_row(row);
  double* value = batch->value_row(row);
  for (int i = 0; i < r; ++i) {
    p_row[i] = p;
    sampled[i] = i < ones + zeros ? 1 : 0;
    value[i] = i < ones ? 1.0 : 0.0;
  }
}

}  // namespace distinct_multi_internal

DistinctMultiEstimates EstimateDistinctMulti(
    const std::vector<BinaryInstanceSketch>& sketches) {
  return EstimateDistinctMulti(sketches,
                               aggregate_internal::AcceptAllKeys{});
}

DistinctMultiEstimates EstimateDistinctMulti(
    const std::vector<BinaryInstanceSketch>& sketches,
    const std::function<bool(uint64_t)>& pred) {
  if (!pred) {
    return EstimateDistinctMulti(sketches,
                                 aggregate_internal::AcceptAllKeys{});
  }
  return EstimateDistinctMulti(
      sketches, [&pred](uint64_t key) { return pred(key); });
}

double DistinctMultiLVariance(const std::vector<int64_t>& counts, int r,
                              double p) {
  PIE_CHECK(static_cast<int>(counts.size()) == r);
  auto or_l = EstimationEngine::Global().Kernel(
      {Function::kOr, Scheme::kOblivious, Regime::kKnownSeeds, Family::kL},
      SamplingParams(std::vector<double>(static_cast<size_t>(r), p)));
  PIE_CHECK_OK(or_l.status());
  std::vector<double> values(static_cast<size_t>(r), 0.0);
  double var = 0.0;
  for (int m = 1; m <= r; ++m) {
    values[static_cast<size_t>(m - 1)] = 1.0;  // m leading ones
    var += static_cast<double>(counts[static_cast<size_t>(m - 1)]) *
           (*or_l)->Variance(values).value();
  }
  return var;
}

double DistinctMultiHtVariance(int64_t union_size, int r, double p) {
  return static_cast<double>(union_size) * (1.0 / std::pow(p, r) - 1.0);
}

}  // namespace pie
