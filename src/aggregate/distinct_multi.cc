#include "aggregate/distinct_multi.h"

#include <cmath>
#include <unordered_map>

#include "core/or_oblivious.h"
#include "util/check.h"

namespace pie {

DistinctMultiEstimates EstimateDistinctMulti(
    const std::vector<BinaryInstanceSketch>& sketches,
    const std::function<bool(uint64_t)>& pred) {
  const int r = static_cast<int>(sketches.size());
  PIE_CHECK(r >= 2);
  const double p = sketches[0].p;
  for (const auto& s : sketches) {
    PIE_CHECK(std::fabs(s.p - p) < 1e-12 &&
              "multi-instance distinct count requires uniform p");
  }
  const OrLUniform or_l(r, p);

  // Membership map: key -> bitmask of sketches containing it.
  std::unordered_map<uint64_t, uint32_t> members;
  for (int i = 0; i < r; ++i) {
    for (uint64_t key : sketches[i].keys) {
      if (pred && !pred(key)) continue;
      members[key] |= (1u << i);
    }
  }

  DistinctMultiEstimates out;
  const double ht_weight = 1.0 / std::pow(p, r);
  for (const auto& [key, mask] : members) {
    int ones = 0;
    int zeros = 0;
    for (int i = 0; i < r; ++i) {
      if ((mask >> i) & 1u) {
        ++ones;
      } else if (sketches[static_cast<size_t>(i)].seed_fn()(key) < p) {
        ++zeros;  // certified absent from instance i
      }
    }
    out.l += or_l.EstimateFromCounts(ones, zeros);
    if (ones + zeros == r) out.ht += ht_weight;
  }
  return out;
}

double DistinctMultiLVariance(const std::vector<int64_t>& counts, int r,
                              double p) {
  PIE_CHECK(static_cast<int>(counts.size()) == r);
  const OrLUniform or_l(r, p);
  double var = 0.0;
  for (int m = 1; m <= r; ++m) {
    var += static_cast<double>(counts[static_cast<size_t>(m - 1)]) *
           or_l.Variance(m);
  }
  return var;
}

double DistinctMultiHtVariance(int64_t union_size, int r, double p) {
  return static_cast<double>(union_size) * (1.0 / std::pow(p, r) - 1.0);
}

}  // namespace pie
