#include "aggregate/dominance.h"

#include <cmath>
#include <map>

#include "store/query_service.h"
#include "util/check.h"

namespace pie {

using aggregate_internal::AcceptAllKeys;

MaxDominanceEstimates EstimateMaxDominance(const PpsInstanceSketch& s1,
                                           const PpsInstanceSketch& s2) {
  return EstimateMaxDominance(s1, s2, AcceptAllKeys{});
}

MaxDominanceEstimates EstimateMaxDominance(
    const PpsInstanceSketch& s1, const PpsInstanceSketch& s2,
    const std::function<bool(uint64_t)>& pred) {
  if (!pred) return EstimateMaxDominance(s1, s2, AcceptAllKeys{});
  return EstimateMaxDominance(
      s1, s2, [&pred](uint64_t key) { return pred(key); });
}

double EstimateMinDominanceHt(const PpsInstanceSketch& s1,
                              const PpsInstanceSketch& s2) {
  return EstimateMinDominanceHt(s1, s2, AcceptAllKeys{});
}

double EstimateMinDominanceHt(const PpsInstanceSketch& s1,
                              const PpsInstanceSketch& s2,
                              const std::function<bool(uint64_t)>& pred) {
  if (!pred) return EstimateMinDominanceHt(s1, s2, AcceptAllKeys{});
  return EstimateMinDominanceHt(
      s1, s2, [&pred](uint64_t key) { return pred(key); });
}

double EstimateL1Distance(const PpsInstanceSketch& s1,
                          const PpsInstanceSketch& s2) {
  const MaxDominanceEstimates max_est = EstimateMaxDominance(s1, s2);
  return max_est.l - EstimateMinDominanceHt(s1, s2);
}

namespace {

// A synchronous thin bridge: the snapshot is borrowed (no-op deleter) and
// scanned inline -- per-call worker-thread spawn/join would dominate the
// repeat-call pattern these wrappers serve. Callers wanting the parallel
// per-shard scan use QueryService directly.
QueryService BorrowedQueryService(const StoreSnapshot& snapshot) {
  return QueryService(
      std::shared_ptr<const StoreSnapshot>(&snapshot,
                                           [](const StoreSnapshot*) {}),
      {/*num_threads=*/1});
}

}  // namespace

MaxDominanceEstimates EstimateMaxDominance(const StoreSnapshot& snapshot,
                                           int i1, int i2) {
  const auto est = BorrowedQueryService(snapshot).MaxDominance(i1, i2);
  PIE_CHECK_OK(est.status());
  return {est->ht, est->l};
}

double EstimateL1Distance(const StoreSnapshot& snapshot, int i1, int i2) {
  const auto est = BorrowedQueryService(snapshot).L1Distance(i1, i2);
  PIE_CHECK_OK(est.status());
  return *est;
}

MaxDominanceVariance AnalyticMaxDominanceVariance(
    const MultiInstanceData& data, double tau1, double tau2,
    double quad_tol) {
  PIE_CHECK(data.num_instances() == 2);
  auto& engine = EstimationEngine::Global();
  const SamplingParams params({tau1, tau2}, quad_tol);
  const KernelSpec ht_spec{Function::kMax, Scheme::kPps,
                           Regime::kKnownSeeds, Family::kHt};
  const KernelSpec l_spec{Function::kMax, Scheme::kPps, Regime::kKnownSeeds,
                          Family::kL};
  auto ht = engine.Kernel(ht_spec, params);
  auto l = engine.Kernel(l_spec, params);
  PIE_CHECK_OK(ht.status());
  PIE_CHECK_OK(l.status());
  // Integer-valued workloads (flow counts) repeat value pairs heavily, and
  // the per-key L variance requires quadrature: memoize per distinct pair.
  std::map<std::pair<double, double>, double> l_cache;
  MaxDominanceVariance out;
  for (uint64_t key : data.Keys()) {
    const std::vector<double> v = data.Values(key);
    out.sum_max += std::fmax(v[0], v[1]);
    out.ht += (*ht)->Variance(v).value();
    const auto cache_key = std::make_pair(v[0], v[1]);
    auto it = l_cache.find(cache_key);
    if (it == l_cache.end()) {
      it = l_cache.emplace(cache_key, (*l)->Variance(v).value()).first;
    }
    out.l += it->second;
  }
  return out;
}

}  // namespace pie
