#include "aggregate/dominance.h"

#include <cmath>
#include <map>
#include <unordered_set>

#include "engine/engine.h"
#include "store/query_service.h"
#include "util/check.h"

namespace pie {
namespace {

KernelSpec MaxPpsSpec(Family family) {
  return {Function::kMax, Scheme::kPps, Regime::kKnownSeeds, family};
}

// Iterates over the union of sampled keys, calling fn once per key.
void ForEachSampledKey(const PpsInstanceSketch& s1,
                       const PpsInstanceSketch& s2,
                       const std::function<bool(uint64_t)>& pred,
                       const std::function<void(uint64_t)>& fn) {
  std::unordered_set<uint64_t> seen;
  for (const auto& e : s1.entries()) {
    if (pred && !pred(e.key)) continue;
    seen.insert(e.key);
    fn(e.key);
  }
  for (const auto& e : s2.entries()) {
    if (pred && !pred(e.key)) continue;
    if (!seen.count(e.key)) fn(e.key);
  }
}

}  // namespace

MaxDominanceEstimates EstimateMaxDominance(
    const PpsInstanceSketch& s1, const PpsInstanceSketch& s2,
    const std::function<bool(uint64_t)>& pred) {
  auto& engine = EstimationEngine::Global();
  const SamplingParams params({s1.tau(), s2.tau()});
  auto ht = engine.Kernel(MaxPpsSpec(Family::kHt), params);
  auto l = engine.Kernel(MaxPpsSpec(Family::kL), params);
  PIE_CHECK_OK(ht.status());
  PIE_CHECK_OK(l.status());

  // Stream the union of sampled keys: each outcome is assembled once into a
  // reused scratch slot and fed to both memoized kernels -- O(1) memory,
  // no per-key estimator setup.
  MaxDominanceEstimates out;
  Outcome scratch;
  scratch.scheme = Scheme::kPps;
  ForEachSampledKey(s1, s2, pred, [&](uint64_t key) {
    MakePairOutcomeInto(s1, s2, key, &scratch.pps);
    out.ht += (*ht)->Estimate(scratch);
    out.l += (*l)->Estimate(scratch);
  });
  return out;
}

double EstimateMinDominanceHt(const PpsInstanceSketch& s1,
                              const PpsInstanceSketch& s2,
                              const std::function<bool(uint64_t)>& pred) {
  auto& engine = EstimationEngine::Global();
  auto min_ht = engine.Kernel(
      {Function::kMin, Scheme::kPps, Regime::kUnknownSeeds, Family::kHt},
      SamplingParams({s1.tau(), s2.tau()}));
  PIE_CHECK_OK(min_ht.status());

  // min^(HT) needs only the sampled values; the outcome is filled straight
  // from the scan (no seed hashing -- the unknown-seeds kernel never reads
  // seeds, but the outcome still carries a seed slot for interface parity).
  Outcome scratch;
  scratch.scheme = Scheme::kPps;
  PpsOutcome& o = scratch.pps;
  o.tau.assign({s1.tau(), s2.tau()});
  o.seed.assign(2, 0.0);
  o.sampled.assign(2, 1);
  double total = 0.0;
  for (const auto& e : s1.entries()) {
    if (pred && !pred(e.key)) continue;
    double v2 = 0.0;
    if (!s2.Lookup(e.key, &v2)) continue;  // min needs both entries
    o.value.assign({e.weight, v2});
    total += (*min_ht)->Estimate(scratch);
  }
  return total;
}

double EstimateL1Distance(const PpsInstanceSketch& s1,
                          const PpsInstanceSketch& s2) {
  const MaxDominanceEstimates max_est = EstimateMaxDominance(s1, s2);
  return max_est.l - EstimateMinDominanceHt(s1, s2);
}

namespace {

// A synchronous thin bridge: the snapshot is borrowed (no-op deleter) and
// scanned inline -- per-call worker-thread spawn/join would dominate the
// repeat-call pattern these wrappers serve. Callers wanting the parallel
// per-shard scan use QueryService directly.
QueryService BorrowedQueryService(const StoreSnapshot& snapshot) {
  return QueryService(
      std::shared_ptr<const StoreSnapshot>(&snapshot,
                                           [](const StoreSnapshot*) {}),
      {/*num_threads=*/1});
}

}  // namespace

MaxDominanceEstimates EstimateMaxDominance(const StoreSnapshot& snapshot,
                                           int i1, int i2) {
  const auto est = BorrowedQueryService(snapshot).MaxDominance(i1, i2);
  PIE_CHECK_OK(est.status());
  return {est->ht, est->l};
}

double EstimateL1Distance(const StoreSnapshot& snapshot, int i1, int i2) {
  const auto est = BorrowedQueryService(snapshot).L1Distance(i1, i2);
  PIE_CHECK_OK(est.status());
  return *est;
}

MaxDominanceVariance AnalyticMaxDominanceVariance(
    const MultiInstanceData& data, double tau1, double tau2,
    double quad_tol) {
  PIE_CHECK(data.num_instances() == 2);
  auto& engine = EstimationEngine::Global();
  const SamplingParams params({tau1, tau2}, quad_tol);
  auto ht = engine.Kernel(MaxPpsSpec(Family::kHt), params);
  auto l = engine.Kernel(MaxPpsSpec(Family::kL), params);
  PIE_CHECK_OK(ht.status());
  PIE_CHECK_OK(l.status());
  // Integer-valued workloads (flow counts) repeat value pairs heavily, and
  // the per-key L variance requires quadrature: memoize per distinct pair.
  std::map<std::pair<double, double>, double> l_cache;
  MaxDominanceVariance out;
  for (uint64_t key : data.Keys()) {
    const std::vector<double> v = data.Values(key);
    out.sum_max += std::fmax(v[0], v[1]);
    out.ht += (*ht)->Variance(v).value();
    const auto cache_key = std::make_pair(v[0], v[1]);
    auto it = l_cache.find(cache_key);
    if (it == l_cache.end()) {
      it = l_cache.emplace(cache_key, (*l)->Variance(v).value()).first;
    }
    out.l += it->second;
  }
  return out;
}

}  // namespace pie
