#include "aggregate/dominance.h"

#include <cmath>
#include <map>
#include <unordered_set>

#include "core/ht.h"
#include "core/max_weighted.h"
#include "util/check.h"

namespace pie {
namespace {

// Iterates over the union of sampled keys, calling fn once per key.
void ForEachSampledKey(const PpsInstanceSketch& s1,
                       const PpsInstanceSketch& s2,
                       const std::function<bool(uint64_t)>& pred,
                       const std::function<void(uint64_t)>& fn) {
  std::unordered_set<uint64_t> seen;
  for (const auto& e : s1.entries()) {
    if (pred && !pred(e.key)) continue;
    seen.insert(e.key);
    fn(e.key);
  }
  for (const auto& e : s2.entries()) {
    if (pred && !pred(e.key)) continue;
    if (!seen.count(e.key)) fn(e.key);
  }
}

}  // namespace

MaxDominanceEstimates EstimateMaxDominance(
    const PpsInstanceSketch& s1, const PpsInstanceSketch& s2,
    const std::function<bool(uint64_t)>& pred) {
  const MaxHtWeighted ht({s1.tau(), s2.tau()});
  const MaxLWeightedTwo l(s1.tau(), s2.tau());
  MaxDominanceEstimates out;
  ForEachSampledKey(s1, s2, pred, [&](uint64_t key) {
    const PpsOutcome outcome = MakePairOutcome(s1, s2, key);
    out.ht += ht.Estimate(outcome);
    out.l += l.Estimate(outcome);
  });
  return out;
}

double EstimateMinDominanceHt(const PpsInstanceSketch& s1,
                              const PpsInstanceSketch& s2,
                              const std::function<bool(uint64_t)>& pred) {
  double total = 0.0;
  for (const auto& e : s1.entries()) {
    if (pred && !pred(e.key)) continue;
    double v2 = 0.0;
    if (!s2.Lookup(e.key, &v2)) continue;  // min needs both entries
    const double rho1 = std::fmin(1.0, e.weight / s1.tau());
    const double rho2 = std::fmin(1.0, v2 / s2.tau());
    total += std::fmin(e.weight, v2) / (rho1 * rho2);
  }
  return total;
}

double EstimateL1Distance(const PpsInstanceSketch& s1,
                          const PpsInstanceSketch& s2) {
  const MaxDominanceEstimates max_est = EstimateMaxDominance(s1, s2);
  return max_est.l - EstimateMinDominanceHt(s1, s2);
}

MaxDominanceVariance AnalyticMaxDominanceVariance(
    const MultiInstanceData& data, double tau1, double tau2,
    double quad_tol) {
  PIE_CHECK(data.num_instances() == 2);
  const MaxHtWeighted ht({tau1, tau2});
  const MaxLWeightedTwo l(tau1, tau2, quad_tol);
  // Integer-valued workloads (flow counts) repeat value pairs heavily, and
  // the per-key L variance requires quadrature: memoize per distinct pair.
  std::map<std::pair<double, double>, double> l_cache;
  MaxDominanceVariance out;
  for (uint64_t key : data.Keys()) {
    const std::vector<double> v = data.Values(key);
    out.sum_max += std::fmax(v[0], v[1]);
    out.ht += ht.Variance(v);
    const auto cache_key = std::make_pair(v[0], v[1]);
    auto it = l_cache.find(cache_key);
    if (it == l_cache.end()) {
      it = l_cache.emplace(cache_key, l.Variance(v[0], v[1])).first;
    }
    out.l += it->second;
  }
  return out;
}

}  // namespace pie
