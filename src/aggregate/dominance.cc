#include "aggregate/dominance.h"

#include <cmath>
#include <map>

#include "store/query_service.h"
#include "util/check.h"

namespace pie {

using aggregate_internal::AcceptAllKeys;

MaxDominanceEstimates EstimateMaxDominance(const PpsInstanceSketch& s1,
                                           const PpsInstanceSketch& s2) {
  return EstimateMaxDominance(s1, s2, AcceptAllKeys{});
}

MaxDominanceEstimates EstimateMaxDominance(
    const PpsInstanceSketch& s1, const PpsInstanceSketch& s2,
    const std::function<bool(uint64_t)>& pred) {
  if (!pred) return EstimateMaxDominance(s1, s2, AcceptAllKeys{});
  return EstimateMaxDominance(
      s1, s2, [&pred](uint64_t key) { return pred(key); });
}

double EstimateMinDominanceHt(const PpsInstanceSketch& s1,
                              const PpsInstanceSketch& s2) {
  return EstimateMinDominanceHt(s1, s2, AcceptAllKeys{});
}

double EstimateMinDominanceHt(const PpsInstanceSketch& s1,
                              const PpsInstanceSketch& s2,
                              const std::function<bool(uint64_t)>& pred) {
  if (!pred) return EstimateMinDominanceHt(s1, s2, AcceptAllKeys{});
  return EstimateMinDominanceHt(
      s1, s2, [&pred](uint64_t key) { return pred(key); });
}

double EstimateL1Distance(const PpsInstanceSketch& s1,
                          const PpsInstanceSketch& s2) {
  const MaxDominanceEstimates max_est = EstimateMaxDominance(s1, s2);
  return max_est.l - EstimateMinDominanceHt(s1, s2);
}

Result<SelectedMaxDominance> EstimateMaxDominanceAuto(
    const PpsInstanceSketch& s1, const PpsInstanceSketch& s2) {
  const SamplingParams params({s1.tau(), s2.tau()});
  auto chosen = SelectorCache::Global().Choose(
      Function::kMax, Scheme::kPps, Regime::kKnownSeeds, params);
  PIE_RETURN_IF_ERROR(chosen.status());
  auto kernel = EstimationEngine::Global().Kernel(*chosen, params);
  PIE_RETURN_IF_ERROR(kernel.status());

  OutcomeBatch batch;
  batch.Reset(Scheme::kPps, 2);
  aggregate_internal::ForEachSampledKey(
      s1, s2, aggregate_internal::AcceptAllKeys{},
      [&](uint64_t key) { AppendPairOutcome(s1, s2, key, &batch); });
  SelectedMaxDominance out;
  out.spec = *chosen;
  out.estimate = EstimateSum(**kernel, batch);
  return out;
}

namespace {

// Point-only bridge options: the borrowed synchronous scan additionally
// skips the second-moment pass (these wrappers discard the error bars).
QueryServiceOptions PointOnlyOptions() {
  QueryServiceOptions options;
  options.with_variance = false;
  return options;
}

QueryServiceOptions CiOptions(const CiPolicy& policy) {
  QueryServiceOptions options;
  options.ci = policy;
  return options;
}

}  // namespace

MaxDominanceEstimates EstimateMaxDominance(const StoreSnapshot& snapshot,
                                           int i1, int i2) {
  const auto est =
      QueryService::Borrowed(snapshot, PointOnlyOptions()).MaxDominance(i1, i2);
  PIE_CHECK_OK(est.status());
  return {est->ht.estimate, est->l.estimate};
}

DualInterval EstimateMaxDominanceWithCi(const StoreSnapshot& snapshot, int i1,
                                        int i2, const CiPolicy& policy) {
  const auto est =
      QueryService::Borrowed(snapshot, CiOptions(policy)).MaxDominance(i1, i2);
  PIE_CHECK_OK(est.status());
  return *est;
}

double EstimateL1Distance(const StoreSnapshot& snapshot, int i1, int i2) {
  const auto est =
      QueryService::Borrowed(snapshot, PointOnlyOptions()).L1Distance(i1, i2);
  PIE_CHECK_OK(est.status());
  return est->estimate;
}

IntervalEstimate EstimateL1DistanceWithCi(const StoreSnapshot& snapshot,
                                          int i1, int i2,
                                          const CiPolicy& policy) {
  const auto est =
      QueryService::Borrowed(snapshot, CiOptions(policy)).L1Distance(i1, i2);
  PIE_CHECK_OK(est.status());
  return *est;
}

MaxDominanceVariance AnalyticMaxDominanceVariance(
    const MultiInstanceData& data, double tau1, double tau2,
    double quad_tol) {
  PIE_CHECK(data.num_instances() == 2);
  auto& engine = EstimationEngine::Global();
  const SamplingParams params({tau1, tau2}, quad_tol);
  const KernelSpec ht_spec{Function::kMax, Scheme::kPps,
                           Regime::kKnownSeeds, Family::kHt};
  const KernelSpec l_spec{Function::kMax, Scheme::kPps, Regime::kKnownSeeds,
                          Family::kL};
  auto ht = engine.Kernel(ht_spec, params);
  auto l = engine.Kernel(l_spec, params);
  PIE_CHECK_OK(ht.status());
  PIE_CHECK_OK(l.status());
  // Integer-valued workloads (flow counts) repeat value pairs heavily, and
  // the per-key L variance requires quadrature: memoize per distinct pair.
  std::map<std::pair<double, double>, double> l_cache;
  MaxDominanceVariance out;
  for (uint64_t key : data.Keys()) {
    const std::vector<double> v = data.Values(key);
    out.sum_max += std::fmax(v[0], v[1]);
    out.ht += (*ht)->Variance(v).value();
    const auto cache_key = std::make_pair(v[0], v[1]);
    auto it = l_cache.find(cache_key);
    if (it == l_cache.end()) {
      it = l_cache.emplace(cache_key, (*l)->Variance(v).value()).first;
    }
    out.l += it->second;
  }
  return out;
}

}  // namespace pie
