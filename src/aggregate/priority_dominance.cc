#include "aggregate/priority_dominance.h"

#include <cmath>
#include <unordered_map>

#include "core/ht.h"
#include "core/max_weighted.h"
#include "util/check.h"
#include "util/hashing.h"

namespace pie {
namespace {

// Threshold clamps: an exact sketch (infinite rank threshold) means every
// positive key is present with probability 1 (tau* -> 0); an empty rank
// pool means no information (tau* -> huge bound).
constexpr double kExactTau = 1e-12;
constexpr double kNoInfoTau = 1e18;

}  // namespace

double PrioritySketch::InclusionTau() const {
  if (std::isinf(sketch.threshold)) return kExactTau;
  return 1.0 / sketch.threshold;
}

double PrioritySketch::ExclusionTau() const {
  if (sketch.entries.empty()) return kNoInfoTau;
  const double kth = sketch.entries.back().rank;  // k-th smallest overall
  if (kth <= 0) return kNoInfoTau;
  return 1.0 / kth;
}

PrioritySketch BuildPrioritySketch(const std::vector<WeightedItem>& items,
                                   int k, uint64_t salt) {
  PrioritySketch out;
  out.salt = salt;
  out.sketch = BottomKSample(items, k, RankFamily::kPps, SeedFunction(salt));
  return out;
}

MaxDominanceEstimates EstimateMaxDominancePriority(
    const PrioritySketch& s1, const PrioritySketch& s2,
    const std::function<bool(uint64_t)>& pred) {
  const SeedFunction seed1(s1.salt);
  const SeedFunction seed2(s2.salt);

  std::unordered_map<uint64_t, double> in1, in2;
  for (const auto& e : s1.sketch.entries) in1.emplace(e.key, e.weight);
  for (const auto& e : s2.sketch.entries) in2.emplace(e.key, e.weight);

  MaxDominanceEstimates out;
  auto process = [&](uint64_t key) {
    if (pred && !pred(key)) return;
    PpsOutcome o;
    o.sampled.assign(2, 0);
    o.value.assign(2, 0.0);
    o.seed = {seed1(key), seed2(key)};
    auto it1 = in1.find(key);
    auto it2 = in2.find(key);
    o.tau = {it1 != in1.end() ? s1.InclusionTau() : s1.ExclusionTau(),
             it2 != in2.end() ? s2.InclusionTau() : s2.ExclusionTau()};
    if (it1 != in1.end()) {
      o.sampled[0] = 1;
      o.value[0] = it1->second;
    }
    if (it2 != in2.end()) {
      o.sampled[1] = 1;
      o.value[1] = it2->second;
    }
    const MaxHtWeighted ht({o.tau[0], o.tau[1]});
    const MaxLWeightedTwo l(o.tau[0], o.tau[1]);
    out.ht += ht.Estimate(o);
    out.l += l.Estimate(o);
  };

  for (const auto& [key, weight] : in1) process(key);
  for (const auto& [key, weight] : in2) {
    if (!in1.count(key)) process(key);
  }
  return out;
}

}  // namespace pie
