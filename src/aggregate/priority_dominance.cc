#include "aggregate/priority_dominance.h"

#include <cmath>
#include <unordered_map>

#include "engine/engine.h"
#include "util/check.h"
#include "util/hashing.h"

namespace pie {
namespace {

// Threshold clamps: an exact sketch (infinite rank threshold) means every
// positive key is present with probability 1 (tau* -> 0); an empty rank
// pool means no information (tau* -> huge bound).
constexpr double kExactTau = 1e-12;
constexpr double kNoInfoTau = 1e18;

}  // namespace

double PrioritySketch::InclusionTau() const {
  if (std::isinf(sketch.threshold)) return kExactTau;
  return 1.0 / sketch.threshold;
}

double PrioritySketch::ExclusionTau() const {
  if (sketch.entries.empty()) return kNoInfoTau;
  const double kth = sketch.entries.back().rank;  // k-th smallest overall
  if (kth <= 0) return kNoInfoTau;
  return 1.0 / kth;
}

PrioritySketch BuildPrioritySketch(const std::vector<WeightedItem>& items,
                                   int k, uint64_t salt) {
  // Thin wrapper over the store layer's one-pass builder: the batch and
  // streaming paths produce byte-identical sketches by construction.
  StreamingBottomkSketch stream(k, RankFamily::kPps, salt);
  for (const auto& item : items) stream.Update(item.key, item.weight);
  return FromStreamingBottomk(stream);
}

PrioritySketch FromStreamingBottomk(const StreamingBottomkSketch& stream) {
  PIE_CHECK(stream.family() == RankFamily::kPps);
  PrioritySketch out;
  out.salt = stream.salt();
  out.sketch = stream.Finalize();
  return out;
}

MaxDominanceEstimates EstimateMaxDominancePriority(
    const PrioritySketch& s1, const PrioritySketch& s2,
    const std::function<bool(uint64_t)>& pred) {
  const SeedFunction seed1(s1.salt);
  const SeedFunction seed2(s2.salt);

  std::unordered_map<uint64_t, double> in1, in2;
  for (const auto& e : s1.sketch.entries) in1.emplace(e.key, e.weight);
  for (const auto& e : s2.sketch.entries) in2.emplace(e.key, e.weight);

  // Rank conditioning gives each key one of four (tau1, tau2) combinations
  // (inclusion vs exclusion threshold per sketch). Resolve the four kernel
  // pairs up front -- one engine lookup each, memoized across calls -- so
  // the per-key work is pure estimation; the old code rebuilt both weighted
  // estimators for every key.
  auto& engine = EstimationEngine::Global();
  const KernelSpec ht_spec{Function::kMax, Scheme::kPps, Regime::kKnownSeeds,
                           Family::kHt};
  const KernelSpec l_spec{Function::kMax, Scheme::kPps, Regime::kKnownSeeds,
                          Family::kL};
  const double tau1_of[2] = {s1.ExclusionTau(), s1.InclusionTau()};
  const double tau2_of[2] = {s2.ExclusionTau(), s2.InclusionTau()};
  struct KernelPair {
    KernelHandle ht, l;
  };
  KernelPair kernels[2][2];
  for (int a = 0; a < 2; ++a) {
    for (int b = 0; b < 2; ++b) {
      if (a == 0 && b == 0) continue;  // absent-from-both keys never scanned
      const SamplingParams params({tau1_of[a], tau2_of[b]});
      auto ht = engine.Kernel(ht_spec, params);
      auto l = engine.Kernel(l_spec, params);
      PIE_CHECK_OK(ht.status());
      PIE_CHECK_OK(l.status());
      kernels[a][b] = {*ht, *l};
    }
  }

  MaxDominanceEstimates out;
  Outcome scratch;  // reused across keys
  scratch.scheme = Scheme::kPps;
  PpsOutcome& o = scratch.pps;
  auto process = [&](uint64_t key) {
    if (pred && !pred(key)) return;
    o.sampled.assign(2, 0);
    o.value.assign(2, 0.0);
    o.seed.assign({seed1(key), seed2(key)});
    auto it1 = in1.find(key);
    auto it2 = in2.find(key);
    const int present1 = it1 != in1.end() ? 1 : 0;
    const int present2 = it2 != in2.end() ? 1 : 0;
    o.tau.assign({tau1_of[present1], tau2_of[present2]});
    if (present1) {
      o.sampled[0] = 1;
      o.value[0] = it1->second;
    }
    if (present2) {
      o.sampled[1] = 1;
      o.value[1] = it2->second;
    }
    const KernelPair& pair = kernels[present1][present2];
    out.ht += pair.ht->Estimate(scratch);
    out.l += pair.l->Estimate(scratch);
  };

  for (const auto& [key, weight] : in1) process(key);
  for (const auto& [key, weight] : in2) {
    if (!in1.count(key)) process(key);
  }
  return out;
}

}  // namespace pie
