#include "aggregate/priority_dominance.h"

#include <cmath>

namespace pie {
namespace {

// Threshold clamps: an exact sketch (infinite rank threshold) means every
// positive key is present with probability 1 (tau* -> 0); an empty rank
// pool means no information (tau* -> huge bound).
constexpr double kExactTau = 1e-12;
constexpr double kNoInfoTau = 1e18;

}  // namespace

double PrioritySketch::InclusionTau() const {
  if (std::isinf(sketch.threshold)) return kExactTau;
  return 1.0 / sketch.threshold;
}

double PrioritySketch::ExclusionTau() const {
  if (sketch.entries.empty()) return kNoInfoTau;
  const double kth = sketch.entries.back().rank;  // k-th smallest overall
  if (kth <= 0) return kNoInfoTau;
  return 1.0 / kth;
}

PrioritySketch BuildPrioritySketch(const std::vector<WeightedItem>& items,
                                   int k, uint64_t salt) {
  // Thin wrapper over the store layer's one-pass builder: the batch and
  // streaming paths produce byte-identical sketches by construction.
  StreamingBottomkSketch stream(k, RankFamily::kPps, salt);
  for (const auto& item : items) stream.Update(item.key, item.weight);
  return FromStreamingBottomk(stream);
}

PrioritySketch FromStreamingBottomk(const StreamingBottomkSketch& stream) {
  PIE_CHECK(stream.family() == RankFamily::kPps);
  PrioritySketch out;
  out.salt = stream.salt();
  out.sketch = stream.Finalize();
  return out;
}

MaxDominanceEstimates EstimateMaxDominancePriority(const PrioritySketch& s1,
                                                   const PrioritySketch& s2) {
  return EstimateMaxDominancePriority(s1, s2,
                                      aggregate_internal::AcceptAllKeys{});
}

MaxDominanceEstimates EstimateMaxDominancePriority(
    const PrioritySketch& s1, const PrioritySketch& s2,
    const std::function<bool(uint64_t)>& pred) {
  if (!pred) {
    return EstimateMaxDominancePriority(s1, s2,
                                        aggregate_internal::AcceptAllKeys{});
  }
  return EstimateMaxDominancePriority(
      s1, s2, [&pred](uint64_t key) { return pred(key); });
}

}  // namespace pie
