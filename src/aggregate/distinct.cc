#include "aggregate/distinct.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <utility>

#include "core/or_oblivious.h"
#include "util/check.h"

namespace pie {

BinaryInstanceSketch SampleBinaryInstance(const std::vector<uint64_t>& keys,
                                          double p, uint64_t salt) {
  PIE_CHECK(p > 0 && p <= 1);
  BinaryInstanceSketch sketch;
  sketch.p = p;
  sketch.salt = salt;
  const SeedFunction seed(salt);
  for (uint64_t key : keys) {
    if (seed(key) < p) sketch.keys.push_back(key);
  }
  return sketch;
}

BinaryInstanceSketch SampleBinaryBottomK(const std::vector<uint64_t>& keys,
                                         int k, uint64_t salt) {
  PIE_CHECK(k > 0);
  BinaryInstanceSketch sketch;
  sketch.salt = salt;
  const SeedFunction seed(salt);
  if (static_cast<int>(keys.size()) <= k) {
    sketch.keys = keys;
    sketch.p = 1.0;
    return sketch;
  }
  // Keep the k smallest seeds; the (k+1)-st smallest is the conditioning
  // probability.
  std::vector<std::pair<double, uint64_t>> seeded;
  seeded.reserve(keys.size());
  for (uint64_t key : keys) seeded.push_back({seed(key), key});
  std::nth_element(seeded.begin(), seeded.begin() + k, seeded.end());
  sketch.p = seeded[static_cast<size_t>(k)].first;
  sketch.keys.reserve(static_cast<size_t>(k));
  for (int i = 0; i < k; ++i) {
    sketch.keys.push_back(seeded[static_cast<size_t>(i)].second);
  }
  return sketch;
}

DistinctClassification ClassifyDistinct(
    const BinaryInstanceSketch& s1, const BinaryInstanceSketch& s2,
    const std::function<bool(uint64_t)>& pred) {
  const SeedFunction u1 = s1.seed_fn();
  const SeedFunction u2 = s2.seed_fn();
  std::unordered_set<uint64_t> in_s2(s2.keys.begin(), s2.keys.end());

  DistinctClassification c;
  for (uint64_t key : s1.keys) {
    if (pred && !pred(key)) continue;
    if (in_s2.count(key)) {
      ++c.f11;
    } else if (u2(key) < s2.p) {
      ++c.f10;  // seed would have sampled it in instance 2: certified absent
    } else {
      ++c.f1q;
    }
  }
  std::unordered_set<uint64_t> in_s1(s1.keys.begin(), s1.keys.end());
  for (uint64_t key : s2.keys) {
    if (pred && !pred(key)) continue;
    if (in_s1.count(key)) continue;  // already counted as F11
    if (u1(key) < s1.p) {
      ++c.f01;
    } else {
      ++c.fq1;
    }
  }
  return c;
}

double DistinctHtEstimate(const DistinctClassification& c, double p1,
                          double p2) {
  return static_cast<double>(c.f11 + c.f10 + c.f01) / (p1 * p2);
}

double DistinctLEstimate(const DistinctClassification& c, double p1,
                         double p2) {
  const double q = p1 + p2 - p1 * p2;
  return static_cast<double>(c.f11 + c.f1q + c.fq1) / q +
         static_cast<double>(c.f10) / (p1 * q) +
         static_cast<double>(c.f01) / (p2 * q);
}

double DistinctIntersectionEstimate(const DistinctClassification& c,
                                    double p1, double p2) {
  return static_cast<double>(c.f11) / (p1 * p2);
}

DistinctEstimateWithCi DistinctLEstimateWithCi(const DistinctClassification& c,
                                               double p1, double p2,
                                               double z) {
  PIE_CHECK(z > 0);
  DistinctEstimateWithCi out;
  out.estimate = DistinctLEstimate(c, p1, p2);
  if (out.estimate <= 0) return out;
  const double inter = DistinctIntersectionEstimate(c, p1, p2);
  out.jaccard = std::fmin(1.0, std::fmax(0.0, inter / out.estimate));
  out.stddev =
      std::sqrt(DistinctLVariance(out.estimate, out.jaccard, p1, p2));
  out.lo = std::fmax(0.0, out.estimate - z * out.stddev);
  out.hi = out.estimate + z * out.stddev;
  return out;
}

double DistinctHtVariance(double distinct, double p1, double p2) {
  return distinct * (1.0 / (p1 * p2) - 1.0);
}

double DistinctLVariance(double distinct, double jaccard, double p1,
                         double p2) {
  PIE_CHECK(jaccard >= 0 && jaccard <= 1);
  OrLTwo or_l(p1, p2);
  // Keys in the intersection are (1,1) keys; the rest of the union splits
  // between (1,0) and (0,1). With p1 = p2 the two have equal variance; for
  // generality split the non-intersection mass evenly.
  const double both = distinct * jaccard;
  const double only = distinct - both;
  OrLTwo or_l_swapped(p2, p1);
  return both * or_l.VarianceBothOnes() +
         0.5 * only * or_l.VarianceOneZero() +
         0.5 * only * or_l_swapped.VarianceOneZero();
}

}  // namespace pie
