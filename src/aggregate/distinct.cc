#include "aggregate/distinct.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <utility>

#include "accuracy/selector.h"
#include "engine/engine.h"
#include "store/query_service.h"
#include "store/sketch_store.h"
#include "util/check.h"

namespace pie {
namespace {

// The distinct-count estimators are the sum aggregate of per-key Boolean OR
// (Section 8.1): by symmetry a key's estimate depends only on its seed
// classification category, so the aggregate collapses to counts times the
// OR kernel's estimate on one representative outcome per category. The
// categories map to binary weight-oblivious outcomes (a certified absence
// IS a sampled 0 under the Section 5.1 equivalence):
//   F11 -> both sampled, values (1,1)     F1? -> only entry 1 sampled, (1,-)
//   F10 -> both sampled, values (1,0)     F?1 -> only entry 2 sampled, (-,1)
//   F01 -> both sampled, values (0,1)
struct CategoryWeights {
  double f11, f10, f01, f1q, fq1;
};

ObliviousOutcome CategoryOutcome(double p1, double p2, bool s1, double v1,
                                 bool s2, double v2) {
  ObliviousOutcome o;
  o.p = {p1, p2};
  o.sampled = {static_cast<uint8_t>(s1), static_cast<uint8_t>(s2)};
  o.value = {v1, v2};
  return o;
}

// Uses the registry's uncached Create: sample-size planning bisects over p,
// and caching hundreds of one-shot (p, p) kernels in the global engine
// would only bloat it (OR r=2 kernel construction is trivial).
Result<std::unique_ptr<EstimatorKernel>> OrKernel(Family family, double p1,
                                                  double p2) {
  return KernelRegistry::Global().Create(
      {Function::kOr, Scheme::kOblivious, Regime::kKnownSeeds, family},
      SamplingParams({p1, p2}));
}

// Shared memo machinery for the per-(family, p1, p2) weight tables below.
// Estimation loops and variance formulas are called with a fixed (p1, p2)
// per trial/key scan; a one-entry memo per family makes repeat calls pure
// arithmetic while keeping parameter sweeps (sample-size bisection)
// allocation-bounded. Fill computes the payload from the family's kernel.
template <typename Weights, typename Fill>
const Weights& MemoizedOrWeights(Family family, double p1, double p2,
                                 const Fill& fill) {
  struct Memo {
    bool valid = false;
    Family family = Family::kHt;
    double p1 = 0.0, p2 = 0.0;
    Weights weights{};
  };
  static thread_local Memo memo_by_family[2];
  Memo& memo = memo_by_family[family == Family::kHt ? 0 : 1];
  if (!(memo.valid && memo.family == family && memo.p1 == p1 &&
        memo.p2 == p2)) {
    auto kernel = OrKernel(family, p1, p2);
    PIE_CHECK_OK(kernel.status());
    memo.weights = fill(**kernel);
    memo.family = family;
    memo.p1 = p1;
    memo.p2 = p2;
    memo.valid = true;
  }
  return memo.weights;
}

CategoryWeights DistinctWeights(Family family, double p1, double p2) {
  return MemoizedOrWeights<CategoryWeights>(
      family, p1, p2, [&](const EstimatorKernel& k) {
        auto weight = [&k](ObliviousOutcome o) {
          return k.Estimate(Outcome::FromOblivious(std::move(o)));
        };
        return CategoryWeights{
            weight(CategoryOutcome(p1, p2, true, 1, true, 1)),
            weight(CategoryOutcome(p1, p2, true, 1, true, 0)),
            weight(CategoryOutcome(p1, p2, true, 0, true, 1)),
            weight(CategoryOutcome(p1, p2, true, 1, false, 0)),
            weight(CategoryOutcome(p1, p2, false, 0, true, 1))};
      });
}

}  // namespace

BinaryInstanceSketch SampleBinaryInstance(const std::vector<uint64_t>& keys,
                                          double p, uint64_t salt) {
  PIE_CHECK(p > 0 && p <= 1);
  BinaryInstanceSketch sketch;
  sketch.p = p;
  sketch.salt = salt;
  const SeedFunction seed(salt);
  for (uint64_t key : keys) {
    if (seed(key) < p) sketch.keys.push_back(key);
  }
  return sketch;
}

BinaryInstanceSketch BinaryInstanceFromStore(const StoreSnapshot& snapshot,
                                             int instance) {
  const double tau = snapshot.TauFor(instance);
  BinaryInstanceSketch sketch;
  sketch.p = std::fmin(1.0, 1.0 / tau);
  sketch.salt = snapshot.InstanceSalt(instance);
  const StreamingPpsSketch merged = snapshot.MergedInstance(instance);
  for (const auto& e : merged.EntriesByKey()) {
    PIE_CHECK(e.weight == 1.0);  // set semantics: unit-weight records only
    sketch.keys.push_back(e.key);
  }
  return sketch;
}

BinaryInstanceSketch SampleBinaryBottomK(const std::vector<uint64_t>& keys,
                                         int k, uint64_t salt) {
  PIE_CHECK(k > 0);
  BinaryInstanceSketch sketch;
  sketch.salt = salt;
  const SeedFunction seed(salt);
  if (static_cast<int>(keys.size()) <= k) {
    sketch.keys = keys;
    sketch.p = 1.0;
    return sketch;
  }
  // Keep the k smallest seeds; the (k+1)-st smallest is the conditioning
  // probability.
  std::vector<std::pair<double, uint64_t>> seeded;
  seeded.reserve(keys.size());
  for (uint64_t key : keys) seeded.push_back({seed(key), key});
  std::nth_element(seeded.begin(), seeded.begin() + k, seeded.end());
  sketch.p = seeded[static_cast<size_t>(k)].first;
  sketch.keys.reserve(static_cast<size_t>(k));
  for (int i = 0; i < k; ++i) {
    sketch.keys.push_back(seeded[static_cast<size_t>(i)].second);
  }
  return sketch;
}

DistinctClassification ClassifyDistinct(
    const BinaryInstanceSketch& s1, const BinaryInstanceSketch& s2,
    const std::function<bool(uint64_t)>& pred) {
  const SeedFunction u1 = s1.seed_fn();
  const SeedFunction u2 = s2.seed_fn();
  std::unordered_set<uint64_t> in_s2(s2.keys.begin(), s2.keys.end());

  DistinctClassification c;
  for (uint64_t key : s1.keys) {
    if (pred && !pred(key)) continue;
    if (in_s2.count(key)) {
      ++c.f11;
    } else if (u2(key) < s2.p) {
      ++c.f10;  // seed would have sampled it in instance 2: certified absent
    } else {
      ++c.f1q;
    }
  }
  std::unordered_set<uint64_t> in_s1(s1.keys.begin(), s1.keys.end());
  for (uint64_t key : s2.keys) {
    if (pred && !pred(key)) continue;
    if (in_s1.count(key)) continue;  // already counted as F11
    if (u1(key) < s1.p) {
      ++c.f01;
    } else {
      ++c.fq1;
    }
  }
  return c;
}

double DistinctHtEstimate(const DistinctClassification& c, double p1,
                          double p2) {
  const CategoryWeights w = DistinctWeights(Family::kHt, p1, p2);
  return static_cast<double>(c.f11) * w.f11 +
         static_cast<double>(c.f10) * w.f10 +
         static_cast<double>(c.f01) * w.f01 +
         static_cast<double>(c.f1q) * w.f1q +
         static_cast<double>(c.fq1) * w.fq1;
}

double DistinctLEstimate(const DistinctClassification& c, double p1,
                         double p2) {
  const CategoryWeights w = DistinctWeights(Family::kL, p1, p2);
  return static_cast<double>(c.f11) * w.f11 +
         static_cast<double>(c.f10) * w.f10 +
         static_cast<double>(c.f01) * w.f01 +
         static_cast<double>(c.f1q) * w.f1q +
         static_cast<double>(c.fq1) * w.fq1;
}

double DistinctIntersectionEstimate(const DistinctClassification& c,
                                    double p1, double p2) {
  return static_cast<double>(c.f11) / (p1 * p2);
}

Result<DistinctSelectedEstimate> DistinctAutoEstimate(
    const DistinctClassification& c, double p1, double p2) {
  auto chosen = SelectorCache::Global().Choose(
      Function::kOr, Scheme::kOblivious, Regime::kKnownSeeds,
      SamplingParams({p1, p2}));
  PIE_RETURN_IF_ERROR(chosen.status());
  const CategoryWeights w = DistinctWeights(chosen->family, p1, p2);
  DistinctSelectedEstimate out;
  out.family = chosen->family;
  out.estimate = static_cast<double>(c.f11) * w.f11 +
                 static_cast<double>(c.f10) * w.f10 +
                 static_cast<double>(c.f01) * w.f01 +
                 static_cast<double>(c.f1q) * w.f1q +
                 static_cast<double>(c.fq1) * w.fq1;
  return out;
}

DistinctEstimateWithCi DistinctLEstimateWithCi(const DistinctClassification& c,
                                               double p1, double p2,
                                               double z) {
  PIE_CHECK(z > 0);
  DistinctEstimateWithCi out;
  out.estimate = DistinctLEstimate(c, p1, p2);
  if (out.estimate <= 0) return out;
  const double inter = DistinctIntersectionEstimate(c, p1, p2);
  out.jaccard = std::fmin(1.0, std::fmax(0.0, inter / out.estimate));
  out.stddev =
      std::sqrt(DistinctLVariance(out.estimate, out.jaccard, p1, p2));
  out.lo = std::fmax(0.0, out.estimate - z * out.stddev);
  out.hi = out.estimate + z * out.stddev;
  return out;
}

namespace {

// Per-key variances of the three membership patterns, from the OR kernel's
// Variance hook, memoized through the same helper as DistinctWeights.
struct VarianceWeights {
  double v11, v10, v01;
};

VarianceWeights DistinctVarianceWeights(Family family, double p1, double p2) {
  return MemoizedOrWeights<VarianceWeights>(
      family, p1, p2, [](const EstimatorKernel& k) {
        return VarianceWeights{k.Variance({1.0, 1.0}).value(),
                               k.Variance({1.0, 0.0}).value(),
                               k.Variance({0.0, 1.0}).value()};
      });
}

}  // namespace

double DistinctHtVariance(double distinct, double p1, double p2) {
  // The HT per-key variance 1/(p1 p2) - 1 is the same for every membership
  // pattern with OR(v) = 1, so the aggregate does not depend on Jaccard.
  return distinct * DistinctVarianceWeights(Family::kHt, p1, p2).v11;
}

double DistinctLVariance(double distinct, double jaccard, double p1,
                         double p2) {
  PIE_CHECK(jaccard >= 0 && jaccard <= 1);
  // Keys in the intersection are (1,1) keys; the rest of the union splits
  // between (1,0) and (0,1). With p1 = p2 the two have equal variance; for
  // generality split the non-intersection mass evenly.
  const VarianceWeights w = DistinctVarianceWeights(Family::kL, p1, p2);
  const double both = distinct * jaccard;
  const double only = distinct - both;
  return both * w.v11 + 0.5 * only * (w.v10 + w.v01);
}

DualInterval EstimateDistinctUnionWithCi(const StoreSnapshot& snapshot,
                                         const std::vector<int>& instances,
                                         const CiPolicy& policy) {
  QueryServiceOptions options;
  options.ci = policy;
  const auto est =
      QueryService::Borrowed(snapshot, options).DistinctUnion(instances);
  PIE_CHECK_OK(est.status());
  return *est;
}

}  // namespace pie
