// Dominance norms and L1 distance over two independently sampled weighted
// instances with known seeds (Section 8.2): sum aggregates of per-key max /
// min across two PPS sketches.
//
// The scans are templated on the key predicate (matching the sketch.h
// SubsetSumEstimate idiom) so hot callers passing lambdas pay no
// std::function indirection per key; thin std::function overloads are kept
// for convenience and null-predicate ("all keys") call sites. Each scan
// assembles the union of sampled keys into one columnar OutcomeBatch and
// drives every kernel's EstimateMany once over the slabs.

#pragma once

#include <cstdint>
#include <functional>
#include <type_traits>
#include <unordered_set>
#include <utility>

#include "accuracy/confidence.h"
#include "accuracy/selector.h"
#include "aggregate/dataset.h"
#include "aggregate/sketch.h"
#include "engine/engine.h"
#include "util/check.h"

namespace pie {

class StoreSnapshot;

/// Estimates of the max-dominance norm sum_h max(v1(h), v2(h)).
struct MaxDominanceEstimates {
  double ht = 0.0;
  double l = 0.0;
};

/// A selector-chosen offline aggregate: the family that answered and its
/// point estimate.
struct SelectedMaxDominance {
  KernelSpec spec;
  double estimate = 0.0;
};

namespace aggregate_internal {

/// Predicate for the "all keys" overloads (statically true, so the
/// per-key test compiles away).
struct AcceptAllKeys {
  bool operator()(uint64_t) const { return true; }
};

/// Guards the predicate templates: every std::function call shape (const
/// or not, lvalue or rvalue) and nullptr must resolve to the wrapper
/// overloads, which treat a null predicate as "all keys" -- without the
/// exclusion a non-const or rvalue std::function would pick the template
/// and call through a possibly-empty target.
template <typename Pred>
using EnableIfKeyPredicate = std::enable_if_t<
    std::is_invocable_r_v<bool, Pred&, uint64_t> &&
    !std::is_same_v<std::decay_t<Pred>, std::function<bool(uint64_t)>>>;

// Iterates over the union of sampled keys, calling fn once per key.
template <typename Pred, typename Fn>
void ForEachSampledKey(const PpsInstanceSketch& s1,
                       const PpsInstanceSketch& s2, Pred&& pred, Fn&& fn) {
  std::unordered_set<uint64_t> seen;
  for (const auto& e : s1.entries()) {
    if (!pred(e.key)) continue;
    seen.insert(e.key);
    fn(e.key);
  }
  for (const auto& e : s2.entries()) {
    if (!pred(e.key)) continue;
    if (!seen.count(e.key)) fn(e.key);
  }
}

}  // namespace aggregate_internal

/// Applies the per-key weighted max estimators (max^(HT) and max^(L),
/// Section 5.2) to every key sampled in either sketch (selected by `pred`)
/// and sums.
template <typename Pred,
          typename = aggregate_internal::EnableIfKeyPredicate<Pred>>
MaxDominanceEstimates EstimateMaxDominance(const PpsInstanceSketch& s1,
                                           const PpsInstanceSketch& s2,
                                           Pred&& pred) {
  auto& engine = EstimationEngine::Global();
  const SamplingParams params({s1.tau(), s2.tau()});
  auto ht = engine.Kernel(
      {Function::kMax, Scheme::kPps, Regime::kKnownSeeds, Family::kHt},
      params);
  auto l = engine.Kernel(
      {Function::kMax, Scheme::kPps, Regime::kKnownSeeds, Family::kL},
      params);
  PIE_CHECK_OK(ht.status());
  PIE_CHECK_OK(l.status());

  // Assemble the union of sampled keys once into columnar slabs, then run
  // each memoized kernel's EstimateMany over them -- no per-key estimator
  // setup, dispatch, or allocation.
  OutcomeBatch batch;
  batch.Reset(Scheme::kPps, 2);
  aggregate_internal::ForEachSampledKey(
      s1, s2, pred, [&](uint64_t key) { AppendPairOutcome(s1, s2, key, &batch); });
  MaxDominanceEstimates out;
  out.ht = EstimateSum(**ht, batch);
  out.l = EstimateSum(**l, batch);
  return out;
}

/// All-keys and std::function conveniences (thin wrappers over the
/// template; a null std::function selects all keys).
MaxDominanceEstimates EstimateMaxDominance(const PpsInstanceSketch& s1,
                                           const PpsInstanceSketch& s2);
MaxDominanceEstimates EstimateMaxDominance(
    const PpsInstanceSketch& s1, const PpsInstanceSketch& s2,
    const std::function<bool(uint64_t)>& pred);

/// Max dominance through the variance-driven selector instead of the
/// hard-coded HT+L dual readout: the minimum-variance admissible weighted
/// max family for this (tau1, tau2) threshold class answers, with the
/// ranking memoized in SelectorCache so repeat scans over the same class
/// never re-rank. The scan itself is the same columnar union scan as
/// EstimateMaxDominance, restricted to the chosen kernel.
Result<SelectedMaxDominance> EstimateMaxDominanceAuto(
    const PpsInstanceSketch& s1, const PpsInstanceSketch& s2);

/// HT estimate of the min-dominance norm sum_h min(v1(h), v2(h)): a key
/// contributes min(v1,v2) / (rho1 rho2) when sampled in both sketches
/// (the inverse-probability estimator, Pareto optimal for min).
template <typename Pred,
          typename = aggregate_internal::EnableIfKeyPredicate<Pred>>
double EstimateMinDominanceHt(const PpsInstanceSketch& s1,
                              const PpsInstanceSketch& s2, Pred&& pred) {
  auto min_ht = EstimationEngine::Global().Kernel(
      {Function::kMin, Scheme::kPps, Regime::kUnknownSeeds, Family::kHt},
      SamplingParams({s1.tau(), s2.tau()}));
  PIE_CHECK_OK(min_ht.status());

  // min^(HT) needs only the sampled values; rows are filled straight from
  // the scan (no seed hashing -- the unknown-seeds kernel never reads
  // seeds, but the layout still carries a seed slab for interface parity).
  OutcomeBatch batch;
  batch.Reset(Scheme::kPps, 2);
  for (const auto& e : s1.entries()) {
    if (!pred(e.key)) continue;
    double v2 = 0.0;
    if (!s2.Lookup(e.key, &v2)) continue;  // min needs both entries
    const int i = batch.AppendRow();
    double* tau = batch.param_row(i);
    tau[0] = s1.tau();
    tau[1] = s2.tau();
    double* seed = batch.seed_row(i);
    seed[0] = seed[1] = 0.0;
    uint8_t* sampled = batch.sampled_row(i);
    sampled[0] = sampled[1] = 1;
    double* value = batch.value_row(i);
    value[0] = e.weight;
    value[1] = v2;
  }
  return EstimateSum(**min_ht, batch);
}

double EstimateMinDominanceHt(const PpsInstanceSketch& s1,
                              const PpsInstanceSketch& s2);
double EstimateMinDominanceHt(const PpsInstanceSketch& s1,
                              const PpsInstanceSketch& s2,
                              const std::function<bool(uint64_t)>& pred);

/// Unbiased L1 distance estimate sum_h |v1(h) - v2(h)| as the difference of
/// the max-dominance (L) and min-dominance (HT) estimates. Unbiased but not
/// per-key nonnegative (Section 2.3 shows no nonnegative per-key RG
/// estimator recovers exact values under weighted sampling).
double EstimateL1Distance(const PpsInstanceSketch& s1,
                          const PpsInstanceSketch& s2);

/// Store-ingested variants: the same aggregates over two instances of a
/// SketchStore snapshot, answered by the store's QueryService (per-shard
/// parallel OutcomeBatches through the engine, deterministic reduction).
MaxDominanceEstimates EstimateMaxDominance(const StoreSnapshot& snapshot,
                                           int i1, int i2);
double EstimateL1Distance(const StoreSnapshot& snapshot, int i1, int i2);

/// The same snapshot aggregates with error bars from the accuracy layer:
/// per-key unbiased variance estimates accumulated in the same columnar
/// scan (see src/accuracy/). The point estimates are bitwise identical to
/// the plain variants above.
DualInterval EstimateMaxDominanceWithCi(const StoreSnapshot& snapshot, int i1,
                                        int i2, const CiPolicy& policy = {});
IntervalEstimate EstimateL1DistanceWithCi(const StoreSnapshot& snapshot,
                                          int i1, int i2,
                                          const CiPolicy& policy = {});

/// Exact (analytic) variances of the max-dominance estimators on a two-
/// instance data set: per-key variance formulas summed over keys
/// (independent seeds make per-key estimates independent). Used by the
/// Figure 7 reproduction.
struct MaxDominanceVariance {
  double ht = 0.0;
  double l = 0.0;
  double sum_max = 0.0;  ///< true max-dominance norm
};

MaxDominanceVariance AnalyticMaxDominanceVariance(const MultiInstanceData& data,
                                                  double tau1, double tau2,
                                                  double quad_tol = 1e-10);

}  // namespace pie
