// Dominance norms and L1 distance over two independently sampled weighted
// instances with known seeds (Section 8.2): sum aggregates of per-key max /
// min across two PPS sketches.

#pragma once

#include <functional>

#include "aggregate/dataset.h"
#include "aggregate/sketch.h"

namespace pie {

class StoreSnapshot;

/// Estimates of the max-dominance norm sum_h max(v1(h), v2(h)).
struct MaxDominanceEstimates {
  double ht = 0.0;
  double l = 0.0;
};

/// Applies the per-key weighted max estimators (max^(HT) and max^(L),
/// Section 5.2) to every key sampled in either sketch and sums.
/// `pred` selects keys (nullptr: all).
MaxDominanceEstimates EstimateMaxDominance(
    const PpsInstanceSketch& s1, const PpsInstanceSketch& s2,
    const std::function<bool(uint64_t)>& pred = nullptr);

/// HT estimate of the min-dominance norm sum_h min(v1(h), v2(h)): a key
/// contributes min(v1,v2) / (rho1 rho2) when sampled in both sketches
/// (the inverse-probability estimator, Pareto optimal for min).
double EstimateMinDominanceHt(const PpsInstanceSketch& s1,
                              const PpsInstanceSketch& s2,
                              const std::function<bool(uint64_t)>& pred =
                                  nullptr);

/// Unbiased L1 distance estimate sum_h |v1(h) - v2(h)| as the difference of
/// the max-dominance (L) and min-dominance (HT) estimates. Unbiased but not
/// per-key nonnegative (Section 2.3 shows no nonnegative per-key RG
/// estimator recovers exact values under weighted sampling).
double EstimateL1Distance(const PpsInstanceSketch& s1,
                          const PpsInstanceSketch& s2);

/// Store-ingested variants: the same aggregates over two instances of a
/// SketchStore snapshot, answered by the store's QueryService (per-shard
/// parallel OutcomeBatches through the engine, deterministic reduction).
MaxDominanceEstimates EstimateMaxDominance(const StoreSnapshot& snapshot,
                                           int i1, int i2);
double EstimateL1Distance(const StoreSnapshot& snapshot, int i1, int i2);

/// Exact (analytic) variances of the max-dominance estimators on a two-
/// instance data set: per-key variance formulas summed over keys
/// (independent seeds make per-key estimates independent). Used by the
/// Figure 7 reproduction.
struct MaxDominanceVariance {
  double ht = 0.0;
  double l = 0.0;
  double sum_max = 0.0;  ///< true max-dominance norm
};

MaxDominanceVariance AnalyticMaxDominanceVariance(const MultiInstanceData& data,
                                                  double tau1, double tau2,
                                                  double quad_tol = 1e-10);

}  // namespace pie
