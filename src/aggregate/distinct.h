// Distinct-element count over two independently sampled instances with
// known seeds (Section 8.1): the sum aggregate of per-key Boolean OR.
//
// Each instance is a key set N_i summarized by Poisson sampling with
// probability p_i using hash seeds u_i(h). At estimation time sampled keys
// are classified by what the seeds reveal about their membership in the
// *other* instance:
//   F11: sampled in both                      -> both entries known 1
//   F10: in S1, u2(h) < p2                    -> seed certifies h not in N2
//   F01: in S2, u1(h) < p1                    -> seed certifies h not in N1
//   F1?: in S1, u2(h) >= p2                   -> other membership unknown
//   F?1: in S2, u1(h) >= p1                   -> other membership unknown
// The HT estimator counts only F11/F10/F01 keys at weight 1/(p1 p2); the L
// estimator additionally extracts partial information from F1?/F?1 keys and
// dominates it.

#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "accuracy/confidence.h"
#include "engine/kernel.h"
#include "util/hashing.h"
#include "util/status.h"

namespace pie {

class StoreSnapshot;

/// Poisson sample of a key set with hash seeds: h is kept iff u(h) < p.
struct BinaryInstanceSketch {
  double p = 0.0;
  uint64_t salt = 0;
  std::vector<uint64_t> keys;  ///< sampled keys

  SeedFunction seed_fn() const { return SeedFunction(salt); }
};

/// Samples the key set `keys` with probability `p` and salt `salt`.
BinaryInstanceSketch SampleBinaryInstance(const std::vector<uint64_t>& keys,
                                          double p, uint64_t salt);

/// The binary membership sketch of one store instance, for feeding store-
/// ingested key sets (unit-weight records, tau = 1/p) into the Section 8.1
/// classification path: keys are the instance's sampled keys (canonical
/// order), p = min(1, 1/tau), salt the instance's seed salt.
BinaryInstanceSketch BinaryInstanceFromStore(const StoreSnapshot& snapshot,
                                             int instance);

/// Bottom-k sample of a key set (Section 8.1's fixed-size alternative): the
/// k keys of smallest seed, with the (k+1)-st smallest seed playing the
/// role of p (rank conditioning). When the set has at most k keys the
/// sketch is exact (p = 1). The returned sketch plugs into ClassifyDistinct
/// and the HT/L estimators unchanged.
BinaryInstanceSketch SampleBinaryBottomK(const std::vector<uint64_t>& keys,
                                         int k, uint64_t salt);

/// Per-category key counts after seed classification (restricted to keys
/// passing `pred`; nullptr selects all).
struct DistinctClassification {
  int64_t f11 = 0;
  int64_t f10 = 0;
  int64_t f01 = 0;
  int64_t f1q = 0;  ///< F1?
  int64_t fq1 = 0;  ///< F?1
};

DistinctClassification ClassifyDistinct(
    const BinaryInstanceSketch& s1, const BinaryInstanceSketch& s2,
    const std::function<bool(uint64_t)>& pred = nullptr);

/// HT estimate of |(N1 u N2) ^ A| (Section 8.1).
double DistinctHtEstimate(const DistinctClassification& c, double p1,
                          double p2);

/// L estimate of |(N1 u N2) ^ A| (Section 8.1).
double DistinctLEstimate(const DistinctClassification& c, double p1,
                         double p2);

/// The family the variance-driven selector picks for this (p1, p2) class,
/// and its estimate.
struct DistinctSelectedEstimate {
  Family family = Family::kL;
  double estimate = 0.0;
};

/// Distinct estimate through the cached variance-driven selector instead
/// of a hard-coded family: ranks the registered oblivious OR families
/// (HT / L / U) by exact variance on the binary reference profiles, once
/// per (p1, p2) class (SelectorCache), and evaluates the winner's category
/// weights. With the built-in families this selects L or U (both dominate
/// HT, Section 4.3); the hard-coded DistinctHtEstimate/DistinctLEstimate
/// pair remains for the paper's dual readout.
Result<DistinctSelectedEstimate> DistinctAutoEstimate(
    const DistinctClassification& c, double p1, double p2);

/// Analytic variances for a union of size `distinct` with Jaccard
/// coefficient `jaccard` (Section 8.1).
double DistinctHtVariance(double distinct, double p1, double p2);
double DistinctLVariance(double distinct, double jaccard, double p1,
                         double p2);

/// Unbiased estimate of the intersection size |N1 ^ N2 ^ A|: AND(v1,v2) is
/// revealed exactly when the key is sampled in both instances (F11), with
/// probability p1*p2.
double DistinctIntersectionEstimate(const DistinctClassification& c,
                                    double p1, double p2);

/// L estimate with a plug-in normal confidence interval: the union and
/// Jaccard coefficient are estimated from the sample and fed into the
/// Section 8.1 variance formula. The interval is asymptotically calibrated
/// (coverage tested empirically in aggregate_test).
struct DistinctEstimateWithCi {
  double estimate = 0.0;  ///< D̂^(L)
  double jaccard = 0.0;   ///< ratio estimate Î/D̂ (clamped to [0,1])
  double stddev = 0.0;    ///< plug-in standard deviation of D̂^(L)
  double lo = 0.0;        ///< estimate - z*stddev (clamped at 0)
  double hi = 0.0;        ///< estimate + z*stddev
};

DistinctEstimateWithCi DistinctLEstimateWithCi(const DistinctClassification& c,
                                               double p1, double p2,
                                               double z = 1.96);

/// Distinct-union estimates with error bars over store-snapshot instances:
/// the accuracy-layer path (per-key unbiased variance in the same columnar
/// scan; see QueryService::DistinctUnion). Unlike the plug-in interval
/// above, these bars need no Jaccard plug-in -- the per-key second-moment
/// kernels make the variance estimate itself unbiased.
DualInterval EstimateDistinctUnionWithCi(const StoreSnapshot& snapshot,
                                         const std::vector<int>& instances,
                                         const CiPolicy& policy = {});

}  // namespace pie
