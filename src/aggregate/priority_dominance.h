// Max-dominance estimation from bottom-k (priority) sketches with known
// seeds -- the fixed-size-sample variant the Figure 7 caption asserts gives
// "the same results" as Poisson PPS.
//
// Rank conditioning (Section 7.1) reduces each key's inclusion to a PPS
// threshold event conditioned on the other keys' ranks: with PPS ranks
// (rank = u/v), a sketched key was included iff u/v < t, i.e. iff
// v >= u / t, where t is the (k+1)-st smallest rank; an unsketched key
// carries the upper bound v < u / t' with t' the k-th smallest rank. Both
// are exactly the weighted-PPS known-seeds outcomes of Section 5, so the
// per-key max^(HT) / max^(L) estimators apply with per-key thresholds
// tau* = 1/t.

#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "aggregate/dominance.h"
#include "sampling/bottomk.h"
#include "store/streaming_sketch.h"

namespace pie {

/// A bottom-k sketch plus the salt that generated its seeds (needed to
/// recompute any key's seed at estimation time).
struct PrioritySketch {
  BottomKSketch sketch;
  uint64_t salt = 0;

  /// Conditional PPS threshold tau* for a key INSIDE the sketch:
  /// 1 / ((k+1)-st smallest rank). Clamped for exact sketches.
  double InclusionTau() const;
  /// Conditional PPS threshold for a key OUTSIDE the sketch (used for the
  /// seed upper bound): 1 / (k-th smallest rank).
  double ExclusionTau() const;
};

/// Builds the priority (PPS-rank bottom-k) sketch of one instance (a thin
/// wrapper feeding the one-pass StreamingBottomkSketch builder).
PrioritySketch BuildPrioritySketch(const std::vector<WeightedItem>& items,
                                   int k, uint64_t salt);

/// Adopts a one-pass bottom-k builder's state (must use PPS ranks).
PrioritySketch FromStreamingBottomk(const StreamingBottomkSketch& stream);

/// Max-dominance estimates (HT and L) over two priority sketches, applying
/// the Section 5 per-key estimators under rank conditioning. Conditionally
/// (hence unconditionally) unbiased.
MaxDominanceEstimates EstimateMaxDominancePriority(
    const PrioritySketch& s1, const PrioritySketch& s2,
    const std::function<bool(uint64_t)>& pred = nullptr);

}  // namespace pie
