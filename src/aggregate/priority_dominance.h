// Max-dominance estimation from bottom-k (priority) sketches with known
// seeds -- the fixed-size-sample variant the Figure 7 caption asserts gives
// "the same results" as Poisson PPS.
//
// Rank conditioning (Section 7.1) reduces each key's inclusion to a PPS
// threshold event conditioned on the other keys' ranks: with PPS ranks
// (rank = u/v), a sketched key was included iff u/v < t, i.e. iff
// v >= u / t, where t is the (k+1)-st smallest rank; an unsketched key
// carries the upper bound v < u / t' with t' the k-th smallest rank. Both
// are exactly the weighted-PPS known-seeds outcomes of Section 5, so the
// per-key max^(HT) / max^(L) estimators apply with per-key thresholds
// tau* = 1/t.

#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "aggregate/dominance.h"
#include "engine/engine.h"
#include "sampling/bottomk.h"
#include "store/streaming_sketch.h"
#include "util/check.h"
#include "util/hashing.h"

namespace pie {

/// A bottom-k sketch plus the salt that generated its seeds (needed to
/// recompute any key's seed at estimation time).
struct PrioritySketch {
  BottomKSketch sketch;
  uint64_t salt = 0;

  /// Conditional PPS threshold tau* for a key INSIDE the sketch:
  /// 1 / ((k+1)-st smallest rank). Clamped for exact sketches.
  double InclusionTau() const;
  /// Conditional PPS threshold for a key OUTSIDE the sketch (used for the
  /// seed upper bound): 1 / (k-th smallest rank).
  double ExclusionTau() const;
};

/// Builds the priority (PPS-rank bottom-k) sketch of one instance (a thin
/// wrapper feeding the one-pass StreamingBottomkSketch builder).
PrioritySketch BuildPrioritySketch(const std::vector<WeightedItem>& items,
                                   int k, uint64_t salt);

/// Adopts a one-pass bottom-k builder's state (must use PPS ranks).
PrioritySketch FromStreamingBottomk(const StreamingBottomkSketch& stream);

/// Max-dominance estimates (HT and L) over two priority sketches, applying
/// the Section 5 per-key estimators under rank conditioning. Conditionally
/// (hence unconditionally) unbiased. Templated on the key predicate like
/// the dominance scans.
///
/// Rank conditioning gives each key one of four (tau1, tau2) combinations
/// (inclusion vs exclusion threshold per sketch), so keys are binned into
/// one columnar batch per combination and each combination's memoized
/// kernels run one EstimateMany pass over their batch; the old code
/// rebuilt both weighted estimators for every key.
template <typename Pred,
          typename = aggregate_internal::EnableIfKeyPredicate<Pred>>
MaxDominanceEstimates EstimateMaxDominancePriority(const PrioritySketch& s1,
                                                   const PrioritySketch& s2,
                                                   Pred&& pred) {
  const SeedFunction seed1(s1.salt);
  const SeedFunction seed2(s2.salt);

  std::unordered_map<uint64_t, double> in1, in2;
  for (const auto& e : s1.sketch.entries) in1.emplace(e.key, e.weight);
  for (const auto& e : s2.sketch.entries) in2.emplace(e.key, e.weight);

  auto& engine = EstimationEngine::Global();
  const KernelSpec ht_spec{Function::kMax, Scheme::kPps, Regime::kKnownSeeds,
                           Family::kHt};
  const KernelSpec l_spec{Function::kMax, Scheme::kPps, Regime::kKnownSeeds,
                          Family::kL};
  const double tau1_of[2] = {s1.ExclusionTau(), s1.InclusionTau()};
  const double tau2_of[2] = {s2.ExclusionTau(), s2.InclusionTau()};
  struct KernelPair {
    KernelHandle ht, l;
  };
  KernelPair kernels[2][2];
  OutcomeBatch batches[2][2];
  for (int a = 0; a < 2; ++a) {
    for (int b = 0; b < 2; ++b) {
      if (a == 0 && b == 0) continue;  // absent-from-both keys never scanned
      const SamplingParams params({tau1_of[a], tau2_of[b]});
      auto ht = engine.Kernel(ht_spec, params);
      auto l = engine.Kernel(l_spec, params);
      PIE_CHECK_OK(ht.status());
      PIE_CHECK_OK(l.status());
      kernels[a][b] = {*ht, *l};
      batches[a][b].Reset(Scheme::kPps, 2);
    }
  }

  auto process = [&](uint64_t key) {
    if (!pred(key)) return;
    auto it1 = in1.find(key);
    auto it2 = in2.find(key);
    const int present1 = it1 != in1.end() ? 1 : 0;
    const int present2 = it2 != in2.end() ? 1 : 0;
    OutcomeBatch& batch = batches[present1][present2];
    const int i = batch.AppendRow();
    double* tau = batch.param_row(i);
    tau[0] = tau1_of[present1];
    tau[1] = tau2_of[present2];
    double* seed = batch.seed_row(i);
    seed[0] = seed1(key);
    seed[1] = seed2(key);
    uint8_t* sampled = batch.sampled_row(i);
    double* value = batch.value_row(i);
    sampled[0] = sampled[1] = 0;
    value[0] = value[1] = 0.0;
    if (present1) {
      sampled[0] = 1;
      value[0] = it1->second;
    }
    if (present2) {
      sampled[1] = 1;
      value[1] = it2->second;
    }
  };

  for (const auto& [key, weight] : in1) process(key);
  for (const auto& [key, weight] : in2) {
    if (!in1.count(key)) process(key);
  }

  MaxDominanceEstimates out;
  for (int a = 0; a < 2; ++a) {
    for (int b = 0; b < 2; ++b) {
      if (a == 0 && b == 0) continue;
      out.ht += EstimateSum(*kernels[a][b].ht, batches[a][b]);
      out.l += EstimateSum(*kernels[a][b].l, batches[a][b]);
    }
  }
  return out;
}

/// All-keys and std::function conveniences (a null std::function selects
/// all keys).
MaxDominanceEstimates EstimateMaxDominancePriority(const PrioritySketch& s1,
                                                   const PrioritySketch& s2);
MaxDominanceEstimates EstimateMaxDominancePriority(
    const PrioritySketch& s1, const PrioritySketch& s2,
    const std::function<bool(uint64_t)>& pred);

}  // namespace pie
