// The instances x keys data model of Section 7: each instance assigns
// nonnegative values to keys from a shared universe; multi-instance queries
// are sum aggregates sum_{h in K'} f(v(h)) of per-key primitives f over the
// vector v(h) of the key's values across instances.

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "core/functions.h"
#include "sampling/bottomk.h"
#include "util/status.h"

namespace pie {

/// Sparse instances x keys matrix. Zero values need not be stored; lookups
/// of absent keys return 0 in every instance.
class MultiInstanceData {
 public:
  explicit MultiInstanceData(int num_instances);

  int num_instances() const { return num_instances_; }
  int num_keys() const { return static_cast<int>(rows_.size()); }

  /// Sets the value of `key` in `instance` (overwrites).
  void Set(uint64_t key, int instance, double value);

  /// Values of `key` across instances (all zeros if the key is absent).
  std::vector<double> Values(uint64_t key) const;

  /// All keys that appear with a nonzero value somewhere, ascending.
  std::vector<uint64_t> Keys() const;

  /// Sparse view of one instance: keys with positive value there.
  std::vector<WeightedItem> InstanceItems(int instance) const;

  /// Total value of one instance.
  double InstanceTotal(int instance) const;

  /// Ground truth sum aggregate: sum over selected keys of f(v(h)).
  /// `pred` selects keys; pass nullptr for all keys.
  double SumAggregate(
      const std::function<double(const std::vector<double>&)>& f,
      const std::function<bool(uint64_t)>& pred = nullptr) const;

  /// The example data set of Figure 5 (A): 3 instances, keys 1..6.
  static MultiInstanceData PaperExample();

 private:
  int num_instances_;
  std::map<uint64_t, std::vector<double>> rows_;
};

}  // namespace pie
