#include "aggregate/sketch.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace pie {

PpsInstanceSketch PpsInstanceSketch::Build(
    const std::vector<WeightedItem>& items, double tau, uint64_t salt) {
  PIE_CHECK(tau > 0 && std::isfinite(tau));
  PpsInstanceSketch sketch(tau, salt);
  for (const auto& item : items) {
    if (item.weight <= 0) continue;
    const double u = sketch.seed_fn_(item.key);
    if (item.weight >= u * tau) {
      sketch.entries_.push_back(item);
      sketch.by_key_.emplace(item.key, item.weight);
    }
  }
  return sketch;
}

bool PpsInstanceSketch::Lookup(uint64_t key, double* value) const {
  auto it = by_key_.find(key);
  if (it == by_key_.end()) return false;
  if (value != nullptr) *value = it->second;
  return true;
}

double PpsInstanceSketch::SubsetSumEstimate(
    const std::function<bool(uint64_t)>& pred) const {
  double sum = 0.0;
  for (const auto& e : entries_) {
    if (pred(e.key)) {
      sum += e.weight / std::fmin(1.0, e.weight / tau_);
    }
  }
  return sum;
}

Result<double> FindPpsTauForExpectedSize(
    const std::vector<WeightedItem>& items, double target) {
  double positive = 0.0;
  double max_weight = 0.0;
  for (const auto& item : items) {
    if (item.weight > 0) {
      positive += 1.0;
      max_weight = std::max(max_weight, item.weight);
    }
  }
  if (!(target > 0.0) || target > positive) {
    return Status::InvalidArgument(
        "target expected size must lie in (0, #positive items]");
  }
  auto expected_size = [&](double tau) {
    double s = 0.0;
    for (const auto& item : items) {
      if (item.weight > 0) s += std::fmin(1.0, item.weight / tau);
    }
    return s;
  };
  // Expected size is nonincreasing in tau; bracket then bisect.
  double lo = max_weight;  // expected size = #positive at tau <= min weight
  double hi = max_weight;
  if (expected_size(lo) < target) {
    // target == positive handled here: shrink lo until satisfied.
    lo = 1e-12;
  }
  while (expected_size(hi) > target) hi *= 2.0;
  for (int iter = 0; iter < 200 && hi - lo > 1e-12 * hi; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (expected_size(mid) > target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

PpsOutcome MakePairOutcome(const PpsInstanceSketch& s1,
                           const PpsInstanceSketch& s2, uint64_t key) {
  PpsOutcome out;
  MakePairOutcomeInto(s1, s2, key, &out);
  return out;
}

void MakePairOutcomeInto(const PpsInstanceSketch& s1,
                         const PpsInstanceSketch& s2, uint64_t key,
                         PpsOutcome* out) {
  PIE_CHECK(out != nullptr);
  out->tau.assign({s1.tau(), s2.tau()});
  out->seed.assign({s1.seed_fn()(key), s2.seed_fn()(key)});
  out->sampled.assign(2, 0);
  out->value.assign(2, 0.0);
  double v = 0.0;
  if (s1.Lookup(key, &v)) {
    out->sampled[0] = 1;
    out->value[0] = v;
  }
  if (s2.Lookup(key, &v)) {
    out->sampled[1] = 1;
    out->value[1] = v;
  }
}

}  // namespace pie
