#include "aggregate/sketch.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "engine/engine.h"
#include "store/sketch_store.h"
#include "util/check.h"

namespace pie {

PpsInstanceSketch PpsInstanceSketch::Build(
    const std::vector<WeightedItem>& items, double tau, uint64_t salt) {
  StreamingPpsSketch stream(tau, salt);
  for (const auto& item : items) stream.Update(item.key, item.weight);
  return FromStreaming(stream);
}

PpsInstanceSketch PpsInstanceSketch::FromStreaming(
    const StreamingPpsSketch& stream) {
  PpsInstanceSketch sketch(stream.tau(), stream.salt());
  sketch.entries_ = stream.entries();
  sketch.by_key_.reserve(sketch.entries_.size());
  for (const auto& e : sketch.entries_) {
    sketch.by_key_.emplace(e.key, e.weight);
  }
  return sketch;
}

PpsInstanceSketch MaterializeInstance(const StoreSnapshot& snapshot,
                                      int instance) {
  return PpsInstanceSketch::FromStreaming(snapshot.MergedInstance(instance));
}

bool PpsInstanceSketch::Lookup(uint64_t key, double* value) const {
  auto it = by_key_.find(key);
  if (it == by_key_.end()) return false;
  if (value != nullptr) *value = it->second;
  return true;
}

Result<double> FindPpsTauForExpectedSize(
    const std::vector<WeightedItem>& items, double target) {
  double positive = 0.0;
  double max_weight = 0.0;
  double min_weight = Infinity();
  for (const auto& item : items) {
    if (item.weight > 0) {
      positive += 1.0;
      max_weight = std::max(max_weight, item.weight);
      min_weight = std::min(min_weight, item.weight);
    }
  }
  if (!(target > 0.0) || target > positive) {
    return Status::InvalidArgument(
        "target expected size must lie in (0, #positive items]");
  }
  auto expected_size = [&](double tau) {
    double s = 0.0;
    for (const auto& item : items) {
      if (item.weight > 0) s += std::fmin(1.0, item.weight / tau);
    }
    return s;
  };
  // Expected size is nonincreasing in tau; bracket then bisect. At
  // tau <= min weight every key is sampled with probability 1, so
  // [min_weight, max_weight] brackets every target up to #positive --
  // including target == #positive exactly (returned without bisection).
  double lo = max_weight;
  if (expected_size(lo) < target) lo = min_weight;
  if (expected_size(lo) == target) return lo;
  double hi = max_weight;
  while (expected_size(hi) > target) hi *= 2.0;
  // The bracket halves each step, so ~60 steps reach the last representable
  // double; terminate on one-ulp-tight relative width.
  constexpr double kRelTol = 4 * std::numeric_limits<double>::epsilon();
  for (int iter = 0; iter < 200 && hi - lo > kRelTol * hi; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (expected_size(mid) > target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

PpsOutcome MakePairOutcome(const PpsInstanceSketch& s1,
                           const PpsInstanceSketch& s2, uint64_t key) {
  PpsOutcome out;
  MakePairOutcomeInto(s1, s2, key, &out);
  return out;
}

void MakePairOutcomeInto(const PpsInstanceSketch& s1,
                         const PpsInstanceSketch& s2, uint64_t key,
                         PpsOutcome* out) {
  PIE_CHECK(out != nullptr);
  out->tau.assign({s1.tau(), s2.tau()});
  out->seed.assign({s1.seed_fn()(key), s2.seed_fn()(key)});
  out->sampled.assign(2, 0);
  out->value.assign(2, 0.0);
  double v = 0.0;
  if (s1.Lookup(key, &v)) {
    out->sampled[0] = 1;
    out->value[0] = v;
  }
  if (s2.Lookup(key, &v)) {
    out->sampled[1] = 1;
    out->value[1] = v;
  }
}

void AppendPairOutcome(const PpsInstanceSketch& s1,
                       const PpsInstanceSketch& s2, uint64_t key,
                       OutcomeBatch* batch) {
  PIE_CHECK(batch != nullptr);
  const int i = batch->AppendRow();
  double* tau = batch->param_row(i);
  double* seed = batch->seed_row(i);
  uint8_t* sampled = batch->sampled_row(i);
  double* value = batch->value_row(i);
  tau[0] = s1.tau();
  tau[1] = s2.tau();
  seed[0] = s1.seed_fn()(key);
  seed[1] = s2.seed_fn()(key);
  sampled[0] = sampled[1] = 0;
  value[0] = value[1] = 0.0;
  double v = 0.0;
  if (s1.Lookup(key, &v)) {
    sampled[0] = 1;
    value[0] = v;
  }
  if (s2.Lookup(key, &v)) {
    sampled[1] = 1;
    value[1] = v;
  }
}

}  // namespace pie
