#include "persist/gc.h"

#include <algorithm>
#include <set>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "persist/checkpoint.h"
#include "persist/format.h"

namespace pie::persist {

namespace {

struct GcMetrics {
  obs::Histogram& gc_seconds;
  obs::Counter& runs;
  obs::Counter& generations_deleted;
  obs::Counter& files_deleted;

  static GcMetrics& Get() {
    static GcMetrics* m = [] {
      auto& reg = obs::MetricsRegistry::Global();
      return new GcMetrics{
          reg.GetHistogram("pie_persist_gc_seconds",
                           "Wall time of one retention GC run",
                           obs::LatencyBuckets()),
          reg.GetCounter("pie_persist_gc_runs_total",
                         "Retention GC runs (successful)"),
          reg.GetCounter("pie_persist_gc_generations_deleted_total",
                         "Checkpoint generations deleted by retention GC"),
          reg.GetCounter("pie_persist_gc_files_deleted_total",
                         "Files deleted by retention GC (manifests, shard "
                         "files, stale temps)"),
      };
    }();
    return *m;
  }
};

/// True when `name` is a generation file (shard, manifest, or a stale
/// WriteFileAtomic temp of either), extracting its sequence number.
bool ParseGenerationFile(const std::string& name, uint64_t* seq) {
  std::string base = name;
  constexpr std::string_view kTmp = ".tmp";
  if (base.size() > kTmp.size() &&
      base.compare(base.size() - kTmp.size(), kTmp.size(), kTmp) == 0) {
    base.resize(base.size() - kTmp.size());
  }
  uint32_t shard = 0;
  return ParseShardFileName(base, seq, &shard) ||
         ParseManifestFileName(base, seq);
}

}  // namespace

Result<GcResult> RetainLatest(const std::string& dir, int keep,
                              const GcOptions& options) {
  GcMetrics& metrics = GcMetrics::Get();
  obs::ScopedSpan span("persist/gc");
  obs::ScopedTimer timer(metrics.gc_seconds);
  if (keep < 1) {
    return Status::InvalidArgument(
        "persist: gc keep must be >= 1, got " + std::to_string(keep));
  }
  FileSystem& fs =
      options.fs != nullptr ? *options.fs : FileSystem::Default();

  const std::vector<uint64_t> seqs = ListManifestSeqs(fs, dir);  // newest 1st
  if (seqs.empty()) {
    return Status::NotFound("persist: no checkpoint manifest in " + dir);
  }
  // The serving generation is whatever strict recovery would load right
  // now. If nothing verifies, refuse to delete anything: every byte on
  // disk is potential forensic/repair material, and a GC that destroys it
  // turns a recoverable incident into a permanent one.
  auto serving = LoadLatestCheckpoint(fs, dir);
  if (!serving.ok()) return serving.status();
  const uint64_t serving_seq = serving->manifest.seq;

  std::set<uint64_t> kept;
  for (size_t i = 0; i < seqs.size() && i < static_cast<size_t>(keep); ++i) {
    kept.insert(seqs[i]);
  }
  kept.insert(serving_seq);
  const uint64_t newest_seq = seqs.front();

  GcResult result;
  result.serving_seq = serving_seq;
  // Phase 1: unlink victim manifests, newest victim first, and make each
  // unlink durable before touching any shard bytes. After this phase the
  // victims are invisible to every (crash-interleaved) recovery.
  for (const uint64_t seq : seqs) {
    if (kept.count(seq) != 0) continue;
    PIE_RETURN_IF_ERROR(
        fs.RemoveFile(dir + "/" + ManifestFileName(seq)));
    PIE_RETURN_IF_ERROR(fs.SyncDir(dir));
    result.removed_seqs.push_back(seq);
    ++result.files_removed;
  }
  // Phase 2: orphan sweep. Any generation file whose seq has no manifest
  // is dead weight -- victims from phase 1, debris of generations torn at
  // write time, stale .tmp files -- EXCEPT sequences above the newest
  // manifest, which belong to a checkpoint currently being written (its
  // shards land before its manifest commits).
  auto names = fs.ListDir(dir);
  if (!names.ok()) return names.status();
  std::sort(names->begin(), names->end());  // deterministic unlink order
  for (const std::string& name : *names) {
    uint64_t seq = 0;
    if (!ParseGenerationFile(name, &seq)) continue;
    if (kept.count(seq) != 0 || seq > newest_seq) continue;
    uint64_t manifest_seq = 0;
    if (ParseManifestFileName(name, &manifest_seq)) continue;  // phase 1 only
    const Status removed = fs.RemoveFile(dir + "/" + name);
    // A concurrent GC may have unlinked it first; that is not a failure.
    if (!removed.ok() && removed.code() != StatusCode::kNotFound) {
      return removed;
    }
    if (removed.ok()) ++result.files_removed;
  }
  PIE_RETURN_IF_ERROR(fs.SyncDir(dir));

  metrics.runs.Increment();
  metrics.generations_deleted.Add(result.removed_seqs.size());
  metrics.files_deleted.Add(result.files_removed);
  return result;
}

}  // namespace pie::persist
