#include "persist/checkpoint.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <utility>

#include "engine/engine.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/hashing.h"

namespace pie::persist {

namespace {

/// Persistence instrumentation, registered eagerly on first touch. The
/// checkpoint_bytes gauge tracks the size of the last checkpoint this
/// process wrote; the age gauge is evaluated lazily at dump time.
struct PersistMetrics {
  obs::Histogram& checkpoint_seconds;
  obs::Histogram& recover_seconds;
  obs::Counter& bytes_written;
  obs::Counter& crc_failures;
  obs::Counter& scan_skips;
  obs::Counter& degraded_shards;
  obs::Gauge& checkpoint_bytes;
  std::atomic<int64_t> last_checkpoint_ns{0};

  static PersistMetrics& Get() {
    static PersistMetrics* m = [] {
      auto& reg = obs::MetricsRegistry::Global();
      auto* metrics = new PersistMetrics{
          reg.GetHistogram("pie_persist_checkpoint_seconds",
                           "Wall time of one full checkpoint write",
                           obs::LatencyBuckets()),
          reg.GetHistogram("pie_persist_recover_seconds",
                           "Wall time of one checkpoint recovery",
                           obs::LatencyBuckets()),
          reg.GetCounter("pie_persist_bytes_written_total",
                         "Checkpoint bytes written (shard files + manifests)"),
          reg.GetCounter("pie_persist_crc_failures_total",
                         "Checkpoint files rejected during recovery "
                         "(missing, truncated, or corrupt)"),
          reg.GetCounter("pie_persist_scan_skips_total",
                         "Checkpoint files that vanished or turned "
                         "unreadable mid-scan and were skipped"),
          reg.GetCounter("pie_degraded_shards_total",
                         "Shards marked absent by degraded-mode recovery"),
          reg.GetGauge("pie_persist_checkpoint_bytes",
                       "Size of the last checkpoint written by this process"),
          {}};
      reg.RegisterCallbackGauge(
          "pie_persist_checkpoint_age_seconds",
          "Seconds since this process last wrote a checkpoint (-1 = never)",
          [metrics] {
            const int64_t last =
                metrics->last_checkpoint_ns.load(std::memory_order_relaxed);
            if (last == 0) return -1.0;
            return static_cast<double>(obs::MonotonicNowNs() - last) * 1e-9;
          });
      return metrics;
    }();
    return *m;
  }
};

uint64_t InstanceSaltFromOptions(const SketchStoreOptions& options,
                                 int instance) {
  // Mirrors SketchStore::InstanceSalt (sketch_store.cc) -- validated
  // against recovered sketch headers so a Merge can never trip on a
  // salt mismatch.
  if (options.coordinated) return options.salt;
  return HashCombine(options.salt, static_cast<uint64_t>(instance));
}

double TauFromOptions(const SketchStoreOptions& options, int instance) {
  auto it = options.instance_tau.find(instance);
  return it != options.instance_tau.end() ? it->second : options.default_tau;
}

/// Options equality for merge: bitwise on the doubles, since merged
/// sketches must share the exact tau/salt the PIE_CHECKs in Merge expect.
bool SameStoreOptions(const SketchStoreOptions& a,
                      const SketchStoreOptions& b) {
  if (a.num_shards != b.num_shards || a.salt != b.salt ||
      a.coordinated != b.coordinated ||
      std::bit_cast<uint64_t>(a.default_tau) !=
          std::bit_cast<uint64_t>(b.default_tau) ||
      a.instance_tau.size() != b.instance_tau.size()) {
    return false;
  }
  auto ita = a.instance_tau.begin();
  auto itb = b.instance_tau.begin();
  for (; ita != a.instance_tau.end(); ++ita, ++itb) {
    if (ita->first != itb->first ||
        std::bit_cast<uint64_t>(ita->second) !=
            std::bit_cast<uint64_t>(itb->second)) {
      return false;
    }
  }
  return true;
}

/// Loads and verifies one shard file of generation `seq` against its
/// manifest entry: byte accounting (size + whole-file CRC), shard decode,
/// and per-sketch configuration checks against the manifest's options.
Result<ShardFileData> LoadShard(FileSystem& fs, const std::string& dir,
                                const Manifest& manifest, uint64_t seq,
                                int s) {
  const std::string path =
      dir + "/" + ShardFileName(seq, static_cast<uint32_t>(s));
  auto bytes = ReadFileBytes(fs, path);
  if (!bytes.ok()) return bytes.status();
  const ManifestShardEntry& entry = manifest.shards[static_cast<size_t>(s)];
  if (bytes->size() != entry.file_size ||
      Crc32c(bytes->data(), bytes->size()) != entry.file_crc) {
    return Status::DataLoss("persist: " + path +
                            " disagrees with its manifest entry");
  }
  auto shard = DecodeShardFile(*bytes);
  if (!shard.ok()) return shard.status();
  if (shard->shard_index != static_cast<uint32_t>(s) ||
      shard->num_shards !=
          static_cast<uint32_t>(manifest.options.num_shards) ||
      shard->tier_tag != manifest.tier_tag) {
    return Status::DataLoss("persist: " + path +
                            " header disagrees with its manifest");
  }
  for (const auto& [instance, sketch] : shard->sketches) {
    if (std::bit_cast<uint64_t>(sketch.tau()) !=
            std::bit_cast<uint64_t>(
                TauFromOptions(manifest.options, instance)) ||
        sketch.salt() !=
            InstanceSaltFromOptions(manifest.options, instance)) {
      return Status::DataLoss(
          "persist: " + path +
          " sketch configuration disagrees with the manifest options");
    }
  }
  return shard;
}

/// Loads and fully verifies generation `seq` of `dir`; any missing,
/// truncated, or misconfigured file fails the whole generation.
Result<LoadedCheckpoint> LoadGeneration(FileSystem& fs,
                                        const std::string& dir,
                                        uint64_t seq) {
  auto manifest_bytes =
      ReadFileBytes(fs, dir + "/" + ManifestFileName(seq));
  if (!manifest_bytes.ok()) return manifest_bytes.status();
  auto manifest = DecodeManifest(*manifest_bytes);
  if (!manifest.ok()) return manifest.status();

  LoadedCheckpoint out;
  out.manifest = std::move(manifest).value();
  const int num_shards = out.manifest.options.num_shards;
  out.shards.reserve(static_cast<size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    auto shard = LoadShard(fs, dir, out.manifest, seq, s);
    if (!shard.ok()) return shard.status();
    out.shards.push_back(std::move(shard).value());
  }
  return out;
}

/// Degraded load of generation `seq`: the manifest must decode, but shard
/// files that fail verification are marked absent rather than failing the
/// generation. DataLoss when not even one shard survives.
Result<LoadedCheckpoint> LoadGenerationDegraded(FileSystem& fs,
                                                const std::string& dir,
                                                uint64_t seq) {
  PersistMetrics& metrics = PersistMetrics::Get();
  auto manifest_bytes =
      ReadFileBytes(fs, dir + "/" + ManifestFileName(seq));
  if (!manifest_bytes.ok()) return manifest_bytes.status();
  auto manifest = DecodeManifest(*manifest_bytes);
  if (!manifest.ok()) return manifest.status();

  LoadedCheckpoint out;
  out.manifest = std::move(manifest).value();
  const int num_shards = out.manifest.options.num_shards;
  out.shards.resize(static_cast<size_t>(num_shards));
  out.shard_absent.assign(static_cast<size_t>(num_shards), 0);
  int present = 0;
  for (int s = 0; s < num_shards; ++s) {
    auto shard = LoadShard(fs, dir, out.manifest, seq, s);
    if (shard.ok()) {
      out.shards[static_cast<size_t>(s)] = std::move(shard).value();
      ++present;
    } else {
      out.shard_absent[static_cast<size_t>(s)] = 1;
      metrics.degraded_shards.Increment();
      if (shard.status().code() == StatusCode::kNotFound) {
        metrics.scan_skips.Increment();
      }
    }
  }
  if (present == 0) {
    return Status::DataLoss("persist: no recoverable shard in generation " +
                            std::to_string(seq) + " of " + dir);
  }
  if (present == num_shards) out.shard_absent.clear();
  return out;
}

FileSystem& ResolveFs(FileSystem* fs) {
  return fs != nullptr ? *fs : FileSystem::Default();
}

}  // namespace

CheckpointOptions::CheckpointOptions() : tier_tag(EstimatorTierTag()) {}

namespace {

/// Parses exactly 16 lowercase hex digits at name[at..at+16).
bool ParseHex16(const std::string& name, size_t at, uint64_t* out) {
  uint64_t value = 0;
  for (size_t i = at; i < at + 16; ++i) {
    const char c = name[i];
    uint64_t digit;
    if (c >= '0' && c <= '9') {
      digit = static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<uint64_t>(c - 'a') + 10;
    } else {
      return false;
    }
    value = (value << 4) | digit;
  }
  *out = value;
  return true;
}

}  // namespace

bool ParseManifestFileName(const std::string& name, uint64_t* seq) {
  // MANIFEST-%016x.pie: fixed width, hex digits only.
  constexpr size_t kLen = 9 + 16 + 4;
  return name.size() == kLen && name.rfind("MANIFEST-", 0) == 0 &&
         name.compare(kLen - 4, 4, ".pie") == 0 &&
         ParseHex16(name, 9, seq);
}

bool ParseShardFileName(const std::string& name, uint64_t* seq,
                        uint32_t* shard) {
  // shard-%016x-%05u.pie: fixed width, hex seq, decimal shard index.
  constexpr size_t kLen = 6 + 16 + 1 + 5 + 4;
  if (name.size() != kLen || name.rfind("shard-", 0) != 0 ||
      name[6 + 16] != '-' || name.compare(kLen - 4, 4, ".pie") != 0 ||
      !ParseHex16(name, 6, seq)) {
    return false;
  }
  uint32_t index = 0;
  for (size_t i = 6 + 16 + 1; i < kLen - 4; ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    index = index * 10 + static_cast<uint32_t>(name[i] - '0');
  }
  *shard = index;
  return true;
}

std::vector<uint64_t> ListManifestSeqs(FileSystem& fs,
                                       const std::string& dir) {
  std::vector<uint64_t> seqs;
  auto names = fs.ListDir(dir);
  if (!names.ok()) return seqs;
  for (const std::string& name : *names) {
    uint64_t seq = 0;
    if (ParseManifestFileName(name, &seq)) seqs.push_back(seq);
  }
  std::sort(seqs.rbegin(), seqs.rend());
  return seqs;
}

std::vector<uint64_t> ListManifestSeqs(const std::string& dir) {
  return ListManifestSeqs(FileSystem::Default(), dir);
}

Status WriteCheckpoint(const StoreSnapshot& snapshot, const std::string& dir,
                       const CheckpointOptions& options) {
  PersistMetrics& metrics = PersistMetrics::Get();
  obs::ScopedSpan span("persist/checkpoint");
  obs::ScopedTimer timer(metrics.checkpoint_seconds);
  if (snapshot.absent_shards() > 0) {
    // A degraded store's absent shards hold no data; persisting it would
    // commit a generation that silently undercounts them.
    return Status::FailedPrecondition(
        "persist: refusing to checkpoint a degraded store (" +
        std::to_string(snapshot.absent_shards()) + " absent shards)");
  }
  FileSystem& fs = ResolveFs(options.fs);
  PIE_RETURN_IF_ERROR(EnsureDirectory(fs, dir));
  const std::vector<uint64_t> existing = ListManifestSeqs(fs, dir);
  const uint64_t seq = existing.empty() ? 1 : existing.front() + 1;

  Manifest manifest;
  manifest.seq = seq;
  manifest.tier_tag = options.tier_tag;
  manifest.options = snapshot.options();
  uint64_t total_bytes = 0;
  for (int s = 0; s < snapshot.num_shards(); ++s) {
    const std::string bytes =
        EncodeShardFile(options.tier_tag, static_cast<uint32_t>(s),
                        static_cast<uint32_t>(snapshot.num_shards()),
                        snapshot.Shard(s).sketches());
    // Retry only the transient class: WriteFileAtomic is idempotent (the
    // temp file is recreated from scratch), so a re-attempt is safe.
    PIE_RETURN_IF_ERROR(RunWithRetry(options.retry, "write_shard", [&] {
      return WriteFileAtomic(fs, dir,
                             ShardFileName(seq, static_cast<uint32_t>(s)),
                             bytes);
    }));
    manifest.shards.push_back(
        {bytes.size(), Crc32c(bytes.data(), bytes.size())});
    total_bytes += bytes.size();
  }
  // The commit point: recovery only sees the generation once the manifest
  // -- written after every shard file is durable -- decodes clean.
  const std::string manifest_bytes = EncodeManifest(manifest);
  PIE_RETURN_IF_ERROR(RunWithRetry(options.retry, "write_manifest", [&] {
    return WriteFileAtomic(fs, dir, ManifestFileName(seq), manifest_bytes);
  }));
  total_bytes += manifest_bytes.size();
  metrics.bytes_written.Add(total_bytes);
  metrics.checkpoint_bytes.Set(static_cast<double>(total_bytes));
  metrics.last_checkpoint_ns.store(obs::MonotonicNowNs(),
                                   std::memory_order_relaxed);
  return Status::OK();
}

Result<LoadedCheckpoint> LoadLatestCheckpoint(FileSystem& fs,
                                              const std::string& dir) {
  PersistMetrics& metrics = PersistMetrics::Get();
  const std::vector<uint64_t> seqs = ListManifestSeqs(fs, dir);
  if (seqs.empty()) {
    return Status::NotFound("persist: no checkpoint manifest in " + dir);
  }
  std::string newest_error;
  for (const uint64_t seq : seqs) {
    auto loaded = LoadGeneration(fs, dir, seq);
    if (loaded.ok()) return loaded;
    // Fall back to the next older generation: this one is torn or corrupt.
    metrics.crc_failures.Increment();
    if (loaded.status().code() == StatusCode::kNotFound) {
      // A listed file vanished (or turned unreadable) between the scan
      // and the read -- e.g. a concurrent GC. Skip-with-metric, never a
      // hard error.
      metrics.scan_skips.Increment();
    }
    if (newest_error.empty()) newest_error = loaded.status().ToString();
  }
  return Status::DataLoss("persist: no complete checkpoint generation in " +
                          dir + " (newest: " + newest_error + ")");
}

Result<LoadedCheckpoint> LoadLatestCheckpoint(const std::string& dir) {
  return LoadLatestCheckpoint(FileSystem::Default(), dir);
}

Result<LoadedCheckpoint> LoadLatestCheckpointDegraded(
    FileSystem& fs, const std::string& dir) {
  PersistMetrics& metrics = PersistMetrics::Get();
  const std::vector<uint64_t> seqs = ListManifestSeqs(fs, dir);
  if (seqs.empty()) {
    return Status::NotFound("persist: no checkpoint manifest in " + dir);
  }
  std::string newest_error;
  for (const uint64_t seq : seqs) {
    // Freshness over completeness: the newest generation with a decodable
    // manifest and >= 1 verified shard serves. An undecodable manifest
    // still skips the whole generation -- the manifest IS the commit
    // point, degraded mode never serves an uncommitted checkpoint.
    auto loaded = LoadGenerationDegraded(fs, dir, seq);
    if (loaded.ok()) return loaded;
    metrics.crc_failures.Increment();
    if (loaded.status().code() == StatusCode::kNotFound) {
      metrics.scan_skips.Increment();
    }
    if (newest_error.empty()) newest_error = loaded.status().ToString();
  }
  return Status::DataLoss(
      "persist: no generation with a recoverable shard in " + dir +
      " (newest: " + newest_error + ")");
}

std::string ParsePieCheckpointDir(const char* text, bool* invalid) {
  *invalid = true;
  if (text == nullptr) return "";
  const size_t len = std::strlen(text);
  if (len == 0 || len > kMaxCheckpointDirLength) return "";
  for (size_t i = 0; i < len; ++i) {
    const unsigned char c = static_cast<unsigned char>(text[i]);
    if (c < 0x20 || c == 0x7f) return "";  // control characters
  }
  // Strict: no surrounding whitespace (a copy-pasted trailing space would
  // otherwise silently create a different directory).
  if (std::isspace(static_cast<unsigned char>(text[0])) ||
      std::isspace(static_cast<unsigned char>(text[len - 1]))) {
    return "";
  }
  std::string dir(text, len);
  while (dir.size() > 1 && dir.back() == '/') dir.pop_back();
  *invalid = false;
  return dir;
}

std::string ResolveCheckpointDir(const std::string& requested) {
  if (!requested.empty()) return requested;
  static const std::string from_env = [] {
    const char* env = std::getenv("PIE_CHECKPOINT_DIR");
    if (env == nullptr) return std::string();
    bool invalid = false;
    std::string dir = ParsePieCheckpointDir(env, &invalid);
    if (!invalid) return dir;
    obs::MetricsRegistry::Global()
        .GetCounter("pie_config_errors_total",
                    "Invalid configuration values rejected at startup",
                    {{"var", "PIE_CHECKPOINT_DIR"}})
        .Increment();
    std::fprintf(stderr,
                 "pie: ignoring invalid PIE_CHECKPOINT_DIR=\"%s\" (expected "
                 "a plain path, no surrounding whitespace or control "
                 "characters, at most %zu chars); checkpointing disabled\n",
                 env, kMaxCheckpointDirLength);
    return std::string();
  }();
  return from_env;
}

}  // namespace pie::persist

namespace pie {

Status SketchStore::Checkpoint(const std::string& dir) const {
  return persist::WriteCheckpoint(*Snapshot(), dir);
}

Result<std::unique_ptr<SketchStore>> SketchStore::Recover(
    const std::string& dir) {
  return Recover(dir, RecoverOptions{});
}

Result<std::unique_ptr<SketchStore>> SketchStore::Recover(
    const std::string& dir, const RecoverOptions& options) {
  obs::ScopedSpan span("persist/recover");
  obs::ScopedTimer timer(persist::PersistMetrics::Get().recover_seconds);
  FileSystem& fs =
      options.fs != nullptr ? *options.fs : FileSystem::Default();
  auto loaded = options.policy == RecoverPolicy::kDegraded
                    ? persist::LoadLatestCheckpointDegraded(fs, dir)
                    : persist::LoadLatestCheckpoint(fs, dir);
  if (!loaded.ok()) return loaded.status();
  persist::LoadedCheckpoint checkpoint = std::move(loaded).value();

  auto store = std::make_unique<SketchStore>(checkpoint.manifest.options);
  store->shard_absent_ = std::move(checkpoint.shard_absent);
  for (size_t s = 0; s < checkpoint.shards.size(); ++s) {
    if (store->ShardAbsent(static_cast<int>(s))) continue;
    Shard& shard = store->shards_[s];
    uint64_t updates = 0;
    for (auto& [instance, sketch] : checkpoint.shards[s].sketches) {
      updates += sketch.num_updates();
      shard.live.emplace(instance, std::move(sketch));
    }
    // Seed the shard version with the absorbed-update count so snapshot
    // version tags keep advancing monotonically from recovered state.
    shard.version.store(updates, std::memory_order_release);
  }
  return store;
}

Result<std::unique_ptr<SketchStore>> SketchStore::MergeCheckpoints(
    const std::vector<std::string>& dirs) {
  obs::ScopedSpan span("persist/merge");
  if (dirs.empty()) {
    return Status::InvalidArgument(
        "persist: no checkpoint directories to merge");
  }
  std::vector<persist::LoadedCheckpoint> loaded;
  loaded.reserve(dirs.size());
  for (const std::string& dir : dirs) {
    auto one = persist::LoadLatestCheckpoint(dir);
    if (!one.ok()) return one.status();
    loaded.push_back(std::move(one).value());
  }
  for (size_t i = 1; i < loaded.size(); ++i) {
    if (!persist::SameStoreOptions(loaded[0].manifest.options,
                                   loaded[i].manifest.options)) {
      return Status::InvalidArgument(
          "persist: checkpoint store options differ between " + dirs[0] +
          " and " + dirs[i]);
    }
    if (loaded[i].manifest.tier_tag != loaded[0].manifest.tier_tag) {
      return Status::InvalidArgument(
          "persist: mixing estimator tiers across checkpoints (" + dirs[0] +
          " vs " + dirs[i] + ")");
    }
  }

  auto store = std::make_unique<SketchStore>(loaded[0].manifest.options);
  // Directory order IS the logical stream order: folding each directory's
  // per-(shard, instance) sketch in sequence reproduces the entry arrival
  // order of a single process that ingested dirs[0]'s records, then
  // dirs[1]'s, ... -- which is what makes merged query answers bitwise
  // identical to a single-process build.
  for (size_t d = 0; d < loaded.size(); ++d) {
    for (size_t s = 0; s < loaded[d].shards.size(); ++s) {
      Shard& shard = store->shards_[s];
      uint64_t updates = 0;
      for (auto& [instance, sketch] : loaded[d].shards[s].sketches) {
        updates += sketch.num_updates();
        auto it = shard.live.find(instance);
        if (it == shard.live.end()) {
          shard.live.emplace(instance, std::move(sketch));
        } else {
          it->second.Merge(sketch);
        }
      }
      shard.version.fetch_add(updates, std::memory_order_release);
    }
  }
  return store;
}

}  // namespace pie
