#include "persist/checkpoint.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <utility>

#include "engine/engine.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/hashing.h"

namespace pie::persist {

namespace {

/// Persistence instrumentation, registered eagerly on first touch. The
/// checkpoint_bytes gauge tracks the size of the last checkpoint this
/// process wrote; the age gauge is evaluated lazily at dump time.
struct PersistMetrics {
  obs::Histogram& checkpoint_seconds;
  obs::Histogram& recover_seconds;
  obs::Counter& bytes_written;
  obs::Counter& crc_failures;
  obs::Gauge& checkpoint_bytes;
  std::atomic<int64_t> last_checkpoint_ns{0};

  static PersistMetrics& Get() {
    static PersistMetrics* m = [] {
      auto& reg = obs::MetricsRegistry::Global();
      auto* metrics = new PersistMetrics{
          reg.GetHistogram("pie_persist_checkpoint_seconds",
                           "Wall time of one full checkpoint write",
                           obs::LatencyBuckets()),
          reg.GetHistogram("pie_persist_recover_seconds",
                           "Wall time of one checkpoint recovery",
                           obs::LatencyBuckets()),
          reg.GetCounter("pie_persist_bytes_written_total",
                         "Checkpoint bytes written (shard files + manifests)"),
          reg.GetCounter("pie_persist_crc_failures_total",
                         "Checkpoint files rejected during recovery "
                         "(missing, truncated, or corrupt)"),
          reg.GetGauge("pie_persist_checkpoint_bytes",
                       "Size of the last checkpoint written by this process"),
          {}};
      reg.RegisterCallbackGauge(
          "pie_persist_checkpoint_age_seconds",
          "Seconds since this process last wrote a checkpoint (-1 = never)",
          [metrics] {
            const int64_t last =
                metrics->last_checkpoint_ns.load(std::memory_order_relaxed);
            if (last == 0) return -1.0;
            return static_cast<double>(obs::MonotonicNowNs() - last) * 1e-9;
          });
      return metrics;
    }();
    return *m;
  }
};

uint64_t InstanceSaltFromOptions(const SketchStoreOptions& options,
                                 int instance) {
  // Mirrors SketchStore::InstanceSalt (sketch_store.cc) -- validated
  // against recovered sketch headers so a Merge can never trip on a
  // salt mismatch.
  if (options.coordinated) return options.salt;
  return HashCombine(options.salt, static_cast<uint64_t>(instance));
}

double TauFromOptions(const SketchStoreOptions& options, int instance) {
  auto it = options.instance_tau.find(instance);
  return it != options.instance_tau.end() ? it->second : options.default_tau;
}

/// Options equality for merge: bitwise on the doubles, since merged
/// sketches must share the exact tau/salt the PIE_CHECKs in Merge expect.
bool SameStoreOptions(const SketchStoreOptions& a,
                      const SketchStoreOptions& b) {
  if (a.num_shards != b.num_shards || a.salt != b.salt ||
      a.coordinated != b.coordinated ||
      std::bit_cast<uint64_t>(a.default_tau) !=
          std::bit_cast<uint64_t>(b.default_tau) ||
      a.instance_tau.size() != b.instance_tau.size()) {
    return false;
  }
  auto ita = a.instance_tau.begin();
  auto itb = b.instance_tau.begin();
  for (; ita != a.instance_tau.end(); ++ita, ++itb) {
    if (ita->first != itb->first ||
        std::bit_cast<uint64_t>(ita->second) !=
            std::bit_cast<uint64_t>(itb->second)) {
      return false;
    }
  }
  return true;
}

/// Loads and fully verifies generation `seq` of `dir`: manifest decode,
/// per-shard byte accounting (size + whole-file CRC against the
/// manifest), shard decode, and per-sketch configuration checks against
/// the manifest's store options.
Result<LoadedCheckpoint> LoadGeneration(const std::string& dir,
                                        uint64_t seq) {
  auto manifest_bytes = ReadFileBytes(dir + "/" + ManifestFileName(seq));
  if (!manifest_bytes.ok()) return manifest_bytes.status();
  auto manifest = DecodeManifest(*manifest_bytes);
  if (!manifest.ok()) return manifest.status();

  LoadedCheckpoint out;
  out.manifest = std::move(manifest).value();
  const int num_shards = out.manifest.options.num_shards;
  out.shards.reserve(static_cast<size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    const std::string path =
        dir + "/" + ShardFileName(seq, static_cast<uint32_t>(s));
    auto bytes = ReadFileBytes(path);
    if (!bytes.ok()) return bytes.status();
    const ManifestShardEntry& entry =
        out.manifest.shards[static_cast<size_t>(s)];
    if (bytes->size() != entry.file_size ||
        Crc32c(bytes->data(), bytes->size()) != entry.file_crc) {
      return Status::DataLoss("persist: " + path +
                              " disagrees with its manifest entry");
    }
    auto shard = DecodeShardFile(*bytes);
    if (!shard.ok()) return shard.status();
    if (shard->shard_index != static_cast<uint32_t>(s) ||
        shard->num_shards != static_cast<uint32_t>(num_shards) ||
        shard->tier_tag != out.manifest.tier_tag) {
      return Status::DataLoss("persist: " + path +
                              " header disagrees with its manifest");
    }
    for (const auto& [instance, sketch] : shard->sketches) {
      if (std::bit_cast<uint64_t>(sketch.tau()) !=
              std::bit_cast<uint64_t>(
                  TauFromOptions(out.manifest.options, instance)) ||
          sketch.salt() !=
              InstanceSaltFromOptions(out.manifest.options, instance)) {
        return Status::DataLoss(
            "persist: " + path +
            " sketch configuration disagrees with the manifest options");
      }
    }
    out.shards.push_back(std::move(shard).value());
  }
  return out;
}

}  // namespace

CheckpointOptions::CheckpointOptions() : tier_tag(EstimatorTierTag()) {}

std::vector<uint64_t> ListManifestSeqs(const std::string& dir) {
  std::vector<uint64_t> seqs;
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) return seqs;
  for (const auto& entry : it) {
    const std::string name = entry.path().filename().string();
    // MANIFEST-%016x.pie: fixed width, hex digits only.
    constexpr size_t kLen = 9 + 16 + 4;
    if (name.size() != kLen || name.rfind("MANIFEST-", 0) != 0 ||
        name.compare(kLen - 4, 4, ".pie") != 0) {
      continue;
    }
    uint64_t seq = 0;
    bool valid = true;
    for (size_t i = 9; i < 9 + 16; ++i) {
      const char c = name[i];
      uint64_t digit;
      if (c >= '0' && c <= '9') {
        digit = static_cast<uint64_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        digit = static_cast<uint64_t>(c - 'a') + 10;
      } else {
        valid = false;
        break;
      }
      seq = (seq << 4) | digit;
    }
    if (valid) seqs.push_back(seq);
  }
  std::sort(seqs.rbegin(), seqs.rend());
  return seqs;
}

Status WriteCheckpoint(const StoreSnapshot& snapshot, const std::string& dir,
                       const CheckpointOptions& options) {
  PersistMetrics& metrics = PersistMetrics::Get();
  obs::ScopedSpan span("persist/checkpoint");
  obs::ScopedTimer timer(metrics.checkpoint_seconds);
  PIE_RETURN_IF_ERROR(EnsureDirectory(dir));
  const std::vector<uint64_t> existing = ListManifestSeqs(dir);
  const uint64_t seq = existing.empty() ? 1 : existing.front() + 1;

  Manifest manifest;
  manifest.seq = seq;
  manifest.tier_tag = options.tier_tag;
  manifest.options = snapshot.options();
  uint64_t total_bytes = 0;
  for (int s = 0; s < snapshot.num_shards(); ++s) {
    const std::string bytes =
        EncodeShardFile(options.tier_tag, static_cast<uint32_t>(s),
                        static_cast<uint32_t>(snapshot.num_shards()),
                        snapshot.Shard(s).sketches());
    PIE_RETURN_IF_ERROR(WriteFileAtomic(
        dir, ShardFileName(seq, static_cast<uint32_t>(s)), bytes));
    manifest.shards.push_back(
        {bytes.size(), Crc32c(bytes.data(), bytes.size())});
    total_bytes += bytes.size();
  }
  // The commit point: recovery only sees the generation once the manifest
  // -- written after every shard file is durable -- decodes clean.
  const std::string manifest_bytes = EncodeManifest(manifest);
  PIE_RETURN_IF_ERROR(
      WriteFileAtomic(dir, ManifestFileName(seq), manifest_bytes));
  total_bytes += manifest_bytes.size();
  metrics.bytes_written.Add(total_bytes);
  metrics.checkpoint_bytes.Set(static_cast<double>(total_bytes));
  metrics.last_checkpoint_ns.store(obs::MonotonicNowNs(),
                                   std::memory_order_relaxed);
  return Status::OK();
}

Result<LoadedCheckpoint> LoadLatestCheckpoint(const std::string& dir) {
  PersistMetrics& metrics = PersistMetrics::Get();
  const std::vector<uint64_t> seqs = ListManifestSeqs(dir);
  if (seqs.empty()) {
    return Status::NotFound("persist: no checkpoint manifest in " + dir);
  }
  std::string newest_error;
  for (const uint64_t seq : seqs) {
    auto loaded = LoadGeneration(dir, seq);
    if (loaded.ok()) return loaded;
    // Fall back to the next older generation: this one is torn or corrupt.
    metrics.crc_failures.Increment();
    if (newest_error.empty()) newest_error = loaded.status().ToString();
  }
  return Status::DataLoss("persist: no complete checkpoint generation in " +
                          dir + " (newest: " + newest_error + ")");
}

std::string ParsePieCheckpointDir(const char* text, bool* invalid) {
  *invalid = true;
  if (text == nullptr) return "";
  const size_t len = std::strlen(text);
  if (len == 0 || len > kMaxCheckpointDirLength) return "";
  for (size_t i = 0; i < len; ++i) {
    const unsigned char c = static_cast<unsigned char>(text[i]);
    if (c < 0x20 || c == 0x7f) return "";  // control characters
  }
  // Strict: no surrounding whitespace (a copy-pasted trailing space would
  // otherwise silently create a different directory).
  if (std::isspace(static_cast<unsigned char>(text[0])) ||
      std::isspace(static_cast<unsigned char>(text[len - 1]))) {
    return "";
  }
  std::string dir(text, len);
  while (dir.size() > 1 && dir.back() == '/') dir.pop_back();
  *invalid = false;
  return dir;
}

std::string ResolveCheckpointDir(const std::string& requested) {
  if (!requested.empty()) return requested;
  static const std::string from_env = [] {
    const char* env = std::getenv("PIE_CHECKPOINT_DIR");
    if (env == nullptr) return std::string();
    bool invalid = false;
    std::string dir = ParsePieCheckpointDir(env, &invalid);
    if (!invalid) return dir;
    obs::MetricsRegistry::Global()
        .GetCounter("pie_config_errors_total",
                    "Invalid configuration values rejected at startup",
                    {{"var", "PIE_CHECKPOINT_DIR"}})
        .Increment();
    std::fprintf(stderr,
                 "pie: ignoring invalid PIE_CHECKPOINT_DIR=\"%s\" (expected "
                 "a plain path, no surrounding whitespace or control "
                 "characters, at most %zu chars); checkpointing disabled\n",
                 env, kMaxCheckpointDirLength);
    return std::string();
  }();
  return from_env;
}

}  // namespace pie::persist

namespace pie {

Status SketchStore::Checkpoint(const std::string& dir) const {
  return persist::WriteCheckpoint(*Snapshot(), dir);
}

Result<std::unique_ptr<SketchStore>> SketchStore::Recover(
    const std::string& dir) {
  obs::ScopedSpan span("persist/recover");
  obs::ScopedTimer timer(persist::PersistMetrics::Get().recover_seconds);
  auto loaded = persist::LoadLatestCheckpoint(dir);
  if (!loaded.ok()) return loaded.status();
  persist::LoadedCheckpoint checkpoint = std::move(loaded).value();

  auto store = std::make_unique<SketchStore>(checkpoint.manifest.options);
  for (size_t s = 0; s < checkpoint.shards.size(); ++s) {
    Shard& shard = store->shards_[s];
    uint64_t updates = 0;
    for (auto& [instance, sketch] : checkpoint.shards[s].sketches) {
      updates += sketch.num_updates();
      shard.live.emplace(instance, std::move(sketch));
    }
    // Seed the shard version with the absorbed-update count so snapshot
    // version tags keep advancing monotonically from recovered state.
    shard.version.store(updates, std::memory_order_release);
  }
  return store;
}

Result<std::unique_ptr<SketchStore>> SketchStore::MergeCheckpoints(
    const std::vector<std::string>& dirs) {
  obs::ScopedSpan span("persist/merge");
  if (dirs.empty()) {
    return Status::InvalidArgument(
        "persist: no checkpoint directories to merge");
  }
  std::vector<persist::LoadedCheckpoint> loaded;
  loaded.reserve(dirs.size());
  for (const std::string& dir : dirs) {
    auto one = persist::LoadLatestCheckpoint(dir);
    if (!one.ok()) return one.status();
    loaded.push_back(std::move(one).value());
  }
  for (size_t i = 1; i < loaded.size(); ++i) {
    if (!persist::SameStoreOptions(loaded[0].manifest.options,
                                   loaded[i].manifest.options)) {
      return Status::InvalidArgument(
          "persist: checkpoint store options differ between " + dirs[0] +
          " and " + dirs[i]);
    }
    if (loaded[i].manifest.tier_tag != loaded[0].manifest.tier_tag) {
      return Status::InvalidArgument(
          "persist: mixing estimator tiers across checkpoints (" + dirs[0] +
          " vs " + dirs[i] + ")");
    }
  }

  auto store = std::make_unique<SketchStore>(loaded[0].manifest.options);
  // Directory order IS the logical stream order: folding each directory's
  // per-(shard, instance) sketch in sequence reproduces the entry arrival
  // order of a single process that ingested dirs[0]'s records, then
  // dirs[1]'s, ... -- which is what makes merged query answers bitwise
  // identical to a single-process build.
  for (size_t d = 0; d < loaded.size(); ++d) {
    for (size_t s = 0; s < loaded[d].shards.size(); ++s) {
      Shard& shard = store->shards_[s];
      uint64_t updates = 0;
      for (auto& [instance, sketch] : loaded[d].shards[s].sketches) {
        updates += sketch.num_updates();
        auto it = shard.live.find(instance);
        if (it == shard.live.end()) {
          shard.live.emplace(instance, std::move(sketch));
        } else {
          it->second.Merge(sketch);
        }
      }
      shard.version.fetch_add(updates, std::memory_order_release);
    }
  }
  return store;
}

}  // namespace pie
