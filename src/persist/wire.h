// Byte-level primitives of the persistence layer: CRC32C, bounds-checked
// little-endian buffer encode/decode, and crash-safe file writes.
//
// Everything on disk is little-endian with explicit widths (the wire
// format's only integer encodings are u8/u32/u64/i32 and IEEE-754 doubles
// carried as their u64 bit pattern), so serialized sketches round-trip
// bitwise-exactly: a weight is written as std::bit_cast<uint64_t> and read
// back as the identical double, never through a decimal detour.
//
// WireReader is the untrusted-input side: every read is bounds-checked,
// a failed read latches the reader into a failed state, and no read ever
// touches memory past the buffer -- the corruption sweep in
// tests/persist_test.cc drives truncated and bit-flipped files through
// the full deserialization stack under ASan/UBSan.
//
// WriteFileAtomic is the torn-write defense at the file level: payloads
// land in a temp file that is fsync'd, renamed into place, and followed by
// a directory fsync, so a crash leaves either the old file, no file, or
// the complete new file -- never a half-written one under its final name.
// (Checkpoint-level atomicity -- manifest written last -- is layered on
// top in persist/checkpoint.cc.)
//
// Since PR 10 every file touch goes through the pluggable FileSystem
// (util/fs.h): the helpers below keep their historical signatures against
// FileSystem::Default() and gain fs-explicit overloads, which is what lets
// FaultInjectingFs drive the crash-point torture harness through the whole
// persist stack.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/fs.h"
#include "util/status.h"

namespace pie::persist {

/// CRC-32C (Castagnoli polynomial, reflected), the checksum guarding every
/// slab and file of the wire format. Slice-by-8 software implementation;
/// `seed` chains partial checksums (pass a previous return value).
uint32_t Crc32c(const void* data, size_t size, uint32_t seed = 0);

/// Append-only little-endian encoder over a growable buffer.
class WireWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v);
  void U64(uint64_t v);
  void I32(int32_t v) { U32(static_cast<uint32_t>(v)); }
  /// IEEE-754 bit pattern, so doubles round-trip bitwise.
  void F64(double v);
  void Bytes(const void* data, size_t n);

  size_t size() const { return buf_.size(); }
  const std::string& buffer() const { return buf_; }
  std::string Take() { return std::move(buf_); }

  /// CRC32C of everything appended since offset `from` -- the per-slab and
  /// footer checksums are computed over the already-encoded bytes, so the
  /// checksum always covers exactly what lands on disk.
  uint32_t CrcSince(size_t from) const;

 private:
  std::string buf_;
};

/// Bounds-checked little-endian decoder over a borrowed buffer. Any
/// out-of-range read fails the reader permanently (ok() goes false, output
/// parameters are zeroed); callers may therefore decode a whole section
/// and check ok() once.
class WireReader {
 public:
  explicit WireReader(std::string_view data) : data_(data) {}

  bool U8(uint8_t* v);
  bool U32(uint32_t* v);
  bool U64(uint64_t* v);
  bool I32(int32_t* v);
  bool F64(double* v);
  bool Bytes(void* out, size_t n);
  bool Skip(size_t n);

  bool ok() const { return !failed_; }
  size_t offset() const { return off_; }
  size_t remaining() const { return data_.size() - off_; }

  /// CRC32C of the consumed range [from, offset()): verifies a slab or
  /// section right after decoding it.
  uint32_t CrcOver(size_t from) const;

 private:
  bool Take(void* out, size_t n);

  std::string_view data_;
  size_t off_ = 0;
  bool failed_ = false;
};

/// Reads a whole file into memory through `fs`. NotFound when the file
/// does not exist, Unavailable/Internal on other I/O errors (util/fs.h).
Result<std::string> ReadFileBytes(FileSystem& fs, const std::string& path);
Result<std::string> ReadFileBytes(const std::string& path);

/// Writes `payload` as `dir`/`name` crash-safely against the default
/// filesystem: temp file in the same directory, fsync, rename over the
/// final name, fsync the directory. Fs-explicit callers use
/// pie::WriteFileAtomic (util/fs.h) directly -- a persist-level overload
/// with the same signature would be ADL-ambiguous against it.
Status WriteFileAtomic(const std::string& dir, const std::string& name,
                       std::string_view payload);

/// Creates `dir` (and parents) if missing.
Status EnsureDirectory(FileSystem& fs, const std::string& dir);
Status EnsureDirectory(const std::string& dir);

}  // namespace pie::persist
