// Wire format v1 of the persistence subsystem: versioned little-endian
// encodings of the streaming sketches, per-shard checkpoint files, and the
// checkpoint manifest.
//
// Layout (all integers little-endian; doubles as IEEE-754 u64 bit
// patterns, so every value round-trips bitwise):
//
//   file header (24 bytes, both file types)
//     u64  magic           "PIEPRST1"
//     u32  format version  1
//     u32  file type       1 = shard file, 2 = manifest
//     u32  estimator tier  EstimatorTierTag() of the writing binary
//     u32  header crc      CRC32C of the 20 bytes above
//
//   PPS sketch block ("PPS1")
//     u32  tag, i32 instance, f64 tau, u64 salt, u64 num_updates,
//     u64 entry_count,
//     keys slab    entry_count x u64, u32 CRC32C of the slab
//     weights slab entry_count x f64, u32 CRC32C of the slab
//   The slabs mirror the store's columnar layout: keys contiguous, then
//   weights, each independently checksummed. Entry order is arrival order,
//   which is what makes a serialize/deserialize round-trip bitwise.
//
//   bottom-k sketch block ("BTK1")
//     u32 tag, i32 k, u32 family, u64 salt, u64 num_updates,
//     u64 slot_count, keys slab + crc, weights slab + crc
//   Ranks are not stored: RankValue(family, weight, seed(key)) is
//   deterministic, so they are recomputed on load and the persisted heap
//   order revalidated (std::is_heap).
//
//   shard file (file type 1)
//     header, u32 shard_index, u32 num_shards, u64 sketch_count,
//     sketch_count PPS blocks (ascending instance), footer
//
//   manifest (file type 2)
//     header, u64 seq, store options (i32 num_shards, f64 default_tau,
//     u64 salt, u32 coordinated, u64 override_count, override_count x
//     {i32 instance, f64 tau}), num_shards x {u64 file_size, u32 file_crc}
//     describing that generation's shard files, footer
//
//   footer (both file types)
//     u32 tag "FOOT", u64 body length, u32 CRC32C of every preceding byte
//
// Decoders treat their input as untrusted: every failure mode -- short
// buffer, bad magic/version/tag, CRC mismatch, counts that exceed the
// remaining bytes, values violating sketch invariants (duplicate keys,
// nonpositive/non-finite weights, weights below the PPS inclusion
// threshold, a non-heap bottom-k slot order) -- returns a typed
// Status::DataLoss, never a PIE_CHECK abort and never out-of-bounds
// access. tests/persist_test.cc sweeps truncations and bit flips over
// every byte offset under ASan/UBSan to enforce this.

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "persist/wire.h"
#include "store/sketch_store.h"
#include "store/streaming_sketch.h"
#include "util/status.h"

namespace pie::persist {

inline constexpr uint64_t kMagic = 0x3154535250454950ull;  // "PIEPRST1"
inline constexpr uint32_t kFormatVersion = 1;
inline constexpr uint32_t kFileTypeShard = 1;
inline constexpr uint32_t kFileTypeManifest = 2;
inline constexpr uint32_t kTagPps = 0x31535050u;   // "PPS1"
inline constexpr uint32_t kTagBtk = 0x314b5442u;   // "BTK1"
inline constexpr uint32_t kTagFoot = 0x544f4f46u;  // "FOOT"

/// Decoded common file header (magic/crc already verified).
struct FileHeader {
  uint32_t version = 0;
  uint32_t file_type = 0;
  uint32_t tier_tag = 0;
};

void WriteFileHeader(uint32_t file_type, uint32_t tier_tag, WireWriter* w);
Result<FileHeader> ReadFileHeader(WireReader* r);

/// Appends the footer: tag, body length (= bytes already in `w`), CRC32C
/// over those bytes. Call exactly once, last.
void WriteFooter(WireWriter* w);
/// Whole-file integrity check: footer present, body length consistent,
/// file CRC matches. Run before any section decoding, so decoders only
/// ever see files whose every byte checksummed clean (their own typed
/// errors then guard against crafted files with fixed-up CRCs).
Status VerifyFileIntegrity(std::string_view file);

// Sketch blocks. Serialize appends one block; Deserialize consumes one,
// validating tags, per-slab CRCs, and every sketch invariant.
void SerializePpsSketch(const StreamingPpsSketch& sketch, int instance,
                        WireWriter* w);
Result<std::pair<int, StreamingPpsSketch>> DeserializePpsSketch(
    WireReader* r);

void SerializeBottomkSketch(const StreamingBottomkSketch& sketch,
                            WireWriter* w);
Result<StreamingBottomkSketch> DeserializeBottomkSketch(WireReader* r);

/// One generation's shard file: every instance sketch one shard held.
std::string EncodeShardFile(uint32_t tier_tag, uint32_t shard_index,
                            uint32_t num_shards,
                            const std::map<int, StreamingPpsSketch>& sketches);

struct ShardFileData {
  uint32_t tier_tag = 0;
  uint32_t shard_index = 0;
  uint32_t num_shards = 0;
  std::vector<std::pair<int, StreamingPpsSketch>> sketches;
};
Result<ShardFileData> DecodeShardFile(std::string_view file);

/// The manifest commits a checkpoint generation: it is written last, and a
/// generation is complete iff its manifest decodes clean and every listed
/// shard file matches its recorded (size, CRC).
struct ManifestShardEntry {
  uint64_t file_size = 0;
  uint32_t file_crc = 0;
};

struct Manifest {
  uint64_t seq = 0;
  uint32_t tier_tag = 0;
  SketchStoreOptions options;
  std::vector<ManifestShardEntry> shards;  // one per shard, index order
};

std::string EncodeManifest(const Manifest& manifest);
Result<Manifest> DecodeManifest(std::string_view file);

/// Generation file names: MANIFEST-%016x.pie / shard-%016x-%05u.pie, so a
/// directory listing sorts by generation.
std::string ManifestFileName(uint64_t seq);
std::string ShardFileName(uint64_t seq, uint32_t shard);

}  // namespace pie::persist
