#include "persist/wire.h"

#include <bit>
#include <cstring>

namespace pie::persist {

// The slab encoders memcpy whole u64/f64 arrays; that is only the wire
// (little-endian) byte order on a little-endian host. Every supported
// target (x86_64, aarch64) is little-endian; a big-endian port would swap
// in the primitive encoders below.
static_assert(std::endian::native == std::endian::little,
              "pie_persist wire encoding assumes a little-endian host");

namespace {

/// Slice-by-8 CRC32C tables, built once: table[0] is the classic byte
/// table for the reflected Castagnoli polynomial, table[k] extends it by k
/// zero bytes.
struct Crc32cTables {
  uint32_t t[8][256];
  Crc32cTables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? 0x82f63b78u : 0u);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = t[0][i];
      for (int k = 1; k < 8; ++k) {
        crc = t[0][crc & 0xff] ^ (crc >> 8);
        t[k][i] = crc;
      }
    }
  }
};

const Crc32cTables& Tables() {
  static const Crc32cTables tables;
  return tables;
}

}  // namespace

uint32_t Crc32c(const void* data, size_t size, uint32_t seed) {
  const Crc32cTables& tb = Tables();
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint32_t crc = ~seed;
  while (size >= 8) {
    uint64_t word;
    std::memcpy(&word, p, 8);
    word ^= crc;  // low 4 bytes absorb the running crc
    crc = tb.t[7][word & 0xff] ^ tb.t[6][(word >> 8) & 0xff] ^
          tb.t[5][(word >> 16) & 0xff] ^ tb.t[4][(word >> 24) & 0xff] ^
          tb.t[3][(word >> 32) & 0xff] ^ tb.t[2][(word >> 40) & 0xff] ^
          tb.t[1][(word >> 48) & 0xff] ^ tb.t[0][word >> 56];
    p += 8;
    size -= 8;
  }
  while (size-- > 0) {
    crc = tb.t[0][(crc ^ *p++) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

void WireWriter::U32(uint32_t v) {
  char bytes[4];
  std::memcpy(bytes, &v, 4);
  buf_.append(bytes, 4);
}

void WireWriter::U64(uint64_t v) {
  char bytes[8];
  std::memcpy(bytes, &v, 8);
  buf_.append(bytes, 8);
}

void WireWriter::F64(double v) { U64(std::bit_cast<uint64_t>(v)); }

void WireWriter::Bytes(const void* data, size_t n) {
  buf_.append(static_cast<const char*>(data), n);
}

uint32_t WireWriter::CrcSince(size_t from) const {
  return Crc32c(buf_.data() + from, buf_.size() - from);
}

bool WireReader::Take(void* out, size_t n) {
  if (failed_ || data_.size() - off_ < n) {
    failed_ = true;
    std::memset(out, 0, n);
    return false;
  }
  std::memcpy(out, data_.data() + off_, n);
  off_ += n;
  return true;
}

bool WireReader::U8(uint8_t* v) { return Take(v, 1); }
bool WireReader::U32(uint32_t* v) { return Take(v, 4); }
bool WireReader::U64(uint64_t* v) { return Take(v, 8); }

bool WireReader::I32(int32_t* v) {
  uint32_t raw = 0;
  const bool ok = U32(&raw);
  *v = static_cast<int32_t>(raw);
  return ok;
}

bool WireReader::F64(double* v) {
  uint64_t raw = 0;
  const bool ok = U64(&raw);
  *v = std::bit_cast<double>(raw);
  return ok;
}

bool WireReader::Bytes(void* out, size_t n) { return Take(out, n); }

bool WireReader::Skip(size_t n) {
  if (failed_ || data_.size() - off_ < n) {
    failed_ = true;
    return false;
  }
  off_ += n;
  return true;
}

uint32_t WireReader::CrcOver(size_t from) const {
  if (failed_ || from > off_) return 0;
  return Crc32c(data_.data() + from, off_ - from);
}

Result<std::string> ReadFileBytes(FileSystem& fs, const std::string& path) {
  return fs.ReadFile(path);
}

Result<std::string> ReadFileBytes(const std::string& path) {
  return ReadFileBytes(FileSystem::Default(), path);
}

Status WriteFileAtomic(const std::string& dir, const std::string& name,
                       std::string_view payload) {
  return pie::WriteFileAtomic(FileSystem::Default(), dir, name, payload);
}

Status EnsureDirectory(FileSystem& fs, const std::string& dir) {
  return fs.CreateDirs(dir);
}

Status EnsureDirectory(const std::string& dir) {
  return EnsureDirectory(FileSystem::Default(), dir);
}

}  // namespace pie::persist
