// Crash-safe checkpoint retention GC.
//
// Checkpoint writes never delete anything (persist/checkpoint.h), so a
// long-lived directory accumulates generations forever. RetainLatest(dir,
// n) bounds that: it keeps the newest n generations -- always including
// the generation recovery currently serves, even when that is older than
// all n (torn newer generations must keep their fallback) -- and deletes
// the rest.
//
// Deletion order is the crash defense, mirroring the write protocol in
// reverse: a victim generation's MANIFEST is unlinked first and the unlink
// made durable (directory fsync) before any of its shard files is touched.
// The manifest is the generation's commit point, so a crash anywhere
// mid-GC leaves either a still-complete generation (manifest intact, no
// shard deleted yet) or an already-invisible one (manifest gone) -- never
// a manifest whose shard files have been swept out from under it, which
// recovery would have to detect as corruption. The crash-point torture
// harness (tests/crash_torture_test.cc) enumerates every fs operation of
// a GC run and asserts exactly this.
//
// The shard sweep is an orphan collection: any shard or leftover .tmp
// file whose sequence number has no surviving manifest is removed -- but
// only for sequences BELOW the newest manifest. A sequence above it is a
// checkpoint currently being written (shards land before the manifest),
// and GC must never race a writer's files away.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/fs.h"
#include "util/status.h"

namespace pie::persist {

struct GcOptions {
  /// Filesystem the GC runs against; null means FileSystem::Default().
  FileSystem* fs = nullptr;
};

struct GcResult {
  /// The generation recovery serves (the newest fully verified one); GC
  /// never deletes it.
  uint64_t serving_seq = 0;
  /// Generations whose manifests were deleted, newest first.
  std::vector<uint64_t> removed_seqs;
  /// Files unlinked in total (manifests + shard files + stale temps).
  uint64_t files_removed = 0;
};

/// Keeps the newest `keep` generations (plus the serving generation) in
/// `dir`, deleting the rest manifest-first. InvalidArgument when keep < 1;
/// NotFound when `dir` holds no manifest; DataLoss -- and NOTHING deleted
/// -- when no generation verifies (a GC must never destroy the evidence
/// of a corruption it cannot recover from). Instrumented via
/// pie_persist_gc_* (runs, generations/files deleted, wall time).
Result<GcResult> RetainLatest(const std::string& dir, int keep,
                              const GcOptions& options = {});

}  // namespace pie::persist
