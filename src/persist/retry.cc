#include "persist/retry.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "obs/metrics.h"
#include "util/hashing.h"

namespace pie::persist {

int ParseBoundedEnvInt(const char* text, int max_value, int fallback,
                       bool* invalid) {
  *invalid = true;
  if (text == nullptr) return fallback;
  const size_t len = std::strlen(text);
  if (len == 0 || len > 9) return fallback;
  long value = 0;
  for (size_t i = 0; i < len; ++i) {
    if (text[i] < '0' || text[i] > '9') return fallback;
    value = value * 10 + (text[i] - '0');
  }
  if (value > max_value) return fallback;
  *invalid = false;
  return static_cast<int>(value);
}

namespace {

int EnvInt(const char* var, int max_value, int fallback) {
  const char* env = std::getenv(var);
  if (env == nullptr) return fallback;
  bool invalid = false;
  const int value = ParseBoundedEnvInt(env, max_value, fallback, &invalid);
  if (invalid) {
    obs::MetricsRegistry::Global()
        .GetCounter("pie_config_errors_total",
                    "Invalid configuration values rejected at startup",
                    {{"var", var}})
        .Increment();
    std::fprintf(stderr,
                 "pie: ignoring invalid %s=\"%s\" (expected an integer in "
                 "[0, %d]); using default %d\n",
                 var, env, max_value, fallback);
  }
  return value;
}

obs::Counter& RetryCounter(const char* op_name) {
  return obs::MetricsRegistry::Global().GetCounter(
      "pie_persist_retries_total",
      "Transient persist I/O failures re-attempted, by operation",
      {{"op", op_name}});
}

}  // namespace

RetryPolicy RetryPolicy::FromEnv() {
  // Read once: a service's retry posture is a startup decision, and the
  // one-time parse keeps invalid values from warning per checkpoint.
  static const int retries = EnvInt("PIE_PERSIST_RETRIES", 100, 2);
  static const int base_ms = EnvInt("PIE_PERSIST_RETRY_BASE_MS", 60000, 5);
  RetryPolicy policy;
  policy.max_retries = retries;
  policy.base_backoff_ms = base_ms;
  return policy;
}

int BackoffMs(const RetryPolicy& policy, int attempt) {
  if (policy.base_backoff_ms <= 0) return 0;
  // min(base * 2^(a-1), max), shift-capped so it cannot overflow.
  const int shift = attempt - 1 > 20 ? 20 : attempt - 1;
  long backoff = static_cast<long>(policy.base_backoff_ms) << shift;
  if (backoff > policy.max_backoff_ms) backoff = policy.max_backoff_ms;
  // Deterministic jitter in [backoff/2, backoff].
  const uint64_t half = static_cast<uint64_t>(backoff) / 2;
  const uint64_t jitter =
      Mix64(policy.jitter_seed ^ static_cast<uint64_t>(attempt)) %
      (half + 1);
  return static_cast<int>(half + jitter);
}

Status RunWithRetry(const RetryPolicy& policy, const char* op_name,
                    const std::function<Status()>& fn) {
  Status status = fn();
  for (int attempt = 1;
       attempt <= policy.max_retries && IsRetryable(status); ++attempt) {
    RetryCounter(op_name).Increment();
    const int backoff = BackoffMs(policy, attempt);
    if (backoff > 0) {
      if (policy.sleep_ms) {
        policy.sleep_ms(backoff);
      } else {
        std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
      }
    }
    status = fn();
  }
  return status;
}

}  // namespace pie::persist
