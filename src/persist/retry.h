// Bounded-exponential-backoff retry for transient persist I/O.
//
// The filesystem layer (util/fs.h) types its errors: Unavailable is the
// transient errno class (EINTR/EAGAIN/EBUSY/ENOSPC/EDQUOT) and the ONLY
// code RunWithRetry re-attempts -- corruption (DataLoss), missing files
// (NotFound), and hard I/O errors (Internal, e.g. EIO on fsync) fail fast
// on the first attempt, because retrying them cannot help and would mask
// real damage. Each re-attempt is counted in
// pie_persist_retries_total{op=...}.
//
// Backoff is bounded exponential with DETERMINISTIC jitter: attempt a
// sleeps in [b/2, b] for b = min(base * 2^(a-1), max), with the offset
// drawn from Mix64(jitter_seed ^ a) -- no wall clock, no global RNG, so a
// fault-injection test replays the identical schedule and the determinism
// invariant of the rest of the stack extends to the retry path. The
// defaults come from the environment: PIE_PERSIST_RETRIES (re-attempts
// after the first try, strict integer in [0, 100], default 2) and
// PIE_PERSIST_RETRY_BASE_MS (strict integer in [0, 60000], default 5; 0
// disables sleeping entirely). Invalid values warn once and count in
// pie_config_errors_total, exactly like PIE_THREADS/PIE_CHECKPOINT_DIR.

#pragma once

#include <cstdint>
#include <functional>

#include "util/status.h"

namespace pie::persist {

struct RetryPolicy {
  /// Re-attempts after the first try (total tries = max_retries + 1).
  int max_retries = 2;
  /// First backoff in milliseconds; doubles per attempt. 0 = no sleeping.
  int base_backoff_ms = 5;
  /// Backoff ceiling in milliseconds.
  int max_backoff_ms = 1000;
  /// Seed of the deterministic jitter.
  uint64_t jitter_seed = 0;
  /// Test hook: replaces the real sleep when set (receives milliseconds).
  std::function<void(int)> sleep_ms;

  /// Policy from PIE_PERSIST_RETRIES / PIE_PERSIST_RETRY_BASE_MS,
  /// strictly parsed and read once per process.
  static RetryPolicy FromEnv();
};

/// True for the transient class RunWithRetry re-attempts.
inline bool IsRetryable(const Status& status) {
  return status.code() == StatusCode::kUnavailable;
}

/// The backoff (with jitter) before re-attempt `attempt` (1-based).
/// Exposed for the determinism test.
int BackoffMs(const RetryPolicy& policy, int attempt);

/// Runs `fn` up to policy.max_retries + 1 times, sleeping BackoffMs
/// between attempts while the error is retryable. Returns the first OK or
/// the last error; counts each re-attempt in
/// pie_persist_retries_total{op=op_name}.
Status RunWithRetry(const RetryPolicy& policy, const char* op_name,
                    const std::function<Status()>& fn);

/// Strict parse of a nonnegative bounded integer environment value
/// (digits only, no surrounding whitespace, value in [0, max_value]).
/// Sets *invalid and returns fallback on any violation. Exposed for unit
/// tests; production goes through RetryPolicy::FromEnv.
int ParseBoundedEnvInt(const char* text, int max_value, int fallback,
                       bool* invalid);

}  // namespace pie::persist
