// Checkpoint orchestration: generation-based crash-safe snapshots of a
// SketchStore, recovery with torn-write fallback, and cross-process merge.
//
// A checkpoint *generation* is one manifest plus one file per shard, all
// named by the generation sequence number. Writing order is the crash
// defense: every shard file lands atomically (persist/wire.h) before the
// manifest -- which records each shard file's exact size and CRC32C -- is
// written, also atomically, as the commit point. A generation without a
// decodable manifest, or whose shard files disagree with the manifest's
// byte-accounting, is invisible to recovery; older complete generations in
// the same directory remain as fallbacks and are never deleted here.
//
// Recovery therefore scans manifests newest-first and returns the first
// generation whose every file verifies byte-for-byte. This is exercised
// by the torn-write tests: truncating or bit-flipping any file of the
// newest generation makes recovery land on the previous one.
//
// Merge (SketchStore::MergeCheckpoints) is the distributed path: N
// processes each ingest a disjoint slice of a stream and checkpoint to
// their own directory; merging folds per-(shard, instance) sketches in
// directory order, which reproduces -- bitwise, entry order included --
// the store a single process would have built over the concatenated
// slices (both samplers are exactly mergeable and the store's record
// model is pre-aggregated per key). The determinism gate in
// tests/persist_determinism_test.cc asserts bitwise-identical
// QueryService answers.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "persist/format.h"
#include "persist/retry.h"
#include "store/sketch_store.h"
#include "util/fs.h"
#include "util/status.h"

namespace pie::persist {

/// Per-checkpoint knobs. Defaults are right for production; tests override.
struct CheckpointOptions {
  /// Estimator tier recorded in every file header (provenance: which
  /// estimator bits produced this store's query answers). Defaults to the
  /// writing binary's EstimatorTierTag(); the format-pinning golden test
  /// overrides it so pinned bytes are identical in every build config.
  uint32_t tier_tag;

  /// Filesystem all checkpoint I/O goes through; null means
  /// FileSystem::Default(). Tests inject FaultInjectingFs here.
  FileSystem* fs = nullptr;

  /// Retry posture for transient (Unavailable) write failures; defaults
  /// to RetryPolicy::FromEnv() (PIE_PERSIST_RETRIES /
  /// PIE_PERSIST_RETRY_BASE_MS).
  RetryPolicy retry;

  CheckpointOptions();
};

/// Writes `snapshot` into `dir` as one new generation: shard files first
/// (each atomic), manifest last. The workhorse behind
/// SketchStore::Checkpoint, also used directly by pie_storectl and by
/// tests that checkpoint a snapshot they already hold.
Status WriteCheckpoint(const StoreSnapshot& snapshot, const std::string& dir,
                       const CheckpointOptions& options = CheckpointOptions());

/// One verified checkpoint generation, decoded. Strict loads verify every
/// shard; a degraded load may mark shards absent instead (shard_absent[s]
/// nonzero, shards[s] default-constructed) -- empty shard_absent means the
/// generation is complete.
struct LoadedCheckpoint {
  Manifest manifest;
  std::vector<ShardFileData> shards;  // index == shard index
  std::vector<uint8_t> shard_absent;  // empty, or one flag per shard
};

/// Loads the newest complete generation in `dir`, skipping generations
/// with missing/truncated/corrupt files (each skip is counted in
/// pie_persist_crc_failures_total; skips whose cause is a file that
/// vanished/unreadable mid-scan additionally count in
/// pie_persist_scan_skips_total). NotFound when `dir` has no manifests;
/// DataLoss when none of them yields a complete generation.
Result<LoadedCheckpoint> LoadLatestCheckpoint(FileSystem& fs,
                                              const std::string& dir);
Result<LoadedCheckpoint> LoadLatestCheckpoint(const std::string& dir);

/// Degraded-mode load: serves the newest generation whose manifest
/// decodes and that has at least one fully verified shard file, marking
/// unrecoverable shards absent (counted in pie_degraded_shards_total)
/// instead of skipping the generation. A generation without a decodable
/// manifest stays invisible exactly as in strict mode -- degraded serving
/// never resurrects an uncommitted checkpoint, it only tolerates committed
/// generations losing shard files afterwards. NotFound when `dir` has no
/// manifests; DataLoss when no generation yields even one shard.
Result<LoadedCheckpoint> LoadLatestCheckpointDegraded(FileSystem& fs,
                                                      const std::string& dir);

/// Manifest sequence numbers present in `dir`, newest first.
std::vector<uint64_t> ListManifestSeqs(FileSystem& fs,
                                       const std::string& dir);
std::vector<uint64_t> ListManifestSeqs(const std::string& dir);

/// Strict parsers of the on-disk generation file names
/// ("MANIFEST-%016x.pie", "shard-%016x-%05u.pie"); false when `name` does
/// not match exactly. Shared by recovery scans and retention GC.
bool ParseManifestFileName(const std::string& name, uint64_t* seq);
bool ParseShardFileName(const std::string& name, uint64_t* seq,
                        uint32_t* shard);

/// Strict parse of a PIE_CHECKPOINT_DIR-style value, mirroring
/// ParsePieThreads: rejects (sets *invalid, returns "") null, empty or
/// whitespace-only text, leading/trailing whitespace, control characters,
/// and paths longer than kMaxCheckpointDirLength; trailing '/' characters
/// are stripped (the root path "/" is kept). Exposed for unit tests;
/// production callers go through ResolveCheckpointDir.
inline constexpr size_t kMaxCheckpointDirLength = 4096;
std::string ParsePieCheckpointDir(const char* text, bool* invalid);

/// Resolves the effective checkpoint directory: a nonempty `requested`
/// (e.g. a --checkpoint-dir flag) wins; otherwise the PIE_CHECKPOINT_DIR
/// environment variable, strictly validated and read once -- an invalid
/// value is rejected with a one-time stderr warning and counted via
/// pie_config_errors_total{var="PIE_CHECKPOINT_DIR"}. Empty result means
/// checkpointing is not configured.
std::string ResolveCheckpointDir(const std::string& requested);

}  // namespace pie::persist
