#include "persist/format.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <unordered_set>

#include "sampling/rank.h"
#include "util/hashing.h"

namespace pie::persist {

namespace {

Status Corrupt(const std::string& what) {
  return Status::DataLoss("persist: " + what);
}

bool ByRank(const BottomKSketch::Entry& a, const BottomKSketch::Entry& b) {
  return a.rank < b.rank;
}

/// Reads one `count x u64` keys slab + one `count x f64` weights slab,
/// each followed by its CRC, into `out` (keys then weights). The caller
/// has already bounded `count` against remaining().
bool ReadSlabs(WireReader* r, uint64_t count,
               std::vector<WeightedItem>* out) {
  out->resize(count);
  size_t from = r->offset();
  for (auto& item : *out) r->U64(&item.key);
  const uint32_t keys_crc_actual = r->CrcOver(from);
  uint32_t keys_crc = 0;
  r->U32(&keys_crc);
  from = r->offset();
  for (auto& item : *out) r->F64(&item.weight);
  const uint32_t weights_crc_actual = r->CrcOver(from);
  uint32_t weights_crc = 0;
  r->U32(&weights_crc);
  return r->ok() && keys_crc == keys_crc_actual &&
         weights_crc == weights_crc_actual;
}

void WriteSlabs(const std::vector<WeightedItem>& items, WireWriter* w) {
  size_t from = w->size();
  for (const auto& item : items) w->U64(item.key);
  w->U32(w->CrcSince(from));
  from = w->size();
  for (const auto& item : items) w->F64(item.weight);
  w->U32(w->CrcSince(from));
}

}  // namespace

void WriteFileHeader(uint32_t file_type, uint32_t tier_tag, WireWriter* w) {
  const size_t from = w->size();
  w->U64(kMagic);
  w->U32(kFormatVersion);
  w->U32(file_type);
  w->U32(tier_tag);
  w->U32(w->CrcSince(from));
}

Result<FileHeader> ReadFileHeader(WireReader* r) {
  const size_t from = r->offset();
  uint64_t magic = 0;
  FileHeader header;
  r->U64(&magic);
  r->U32(&header.version);
  r->U32(&header.file_type);
  r->U32(&header.tier_tag);
  const uint32_t crc_actual = r->CrcOver(from);
  uint32_t crc = 0;
  if (!r->U32(&crc)) return Corrupt("file too short for header");
  if (magic != kMagic) return Corrupt("bad magic (not a PIEPRST1 file)");
  if (crc != crc_actual) return Corrupt("header CRC mismatch");
  if (header.version != kFormatVersion) {
    return Corrupt("unsupported format version " +
                   std::to_string(header.version));
  }
  if (header.file_type != kFileTypeShard &&
      header.file_type != kFileTypeManifest) {
    return Corrupt("unknown file type " + std::to_string(header.file_type));
  }
  return header;
}

void WriteFooter(WireWriter* w) {
  w->U32(kTagFoot);
  w->U64(static_cast<uint64_t>(w->size()) - 4);  // body excludes the tag
  w->U32(w->CrcSince(0));
}

Status VerifyFileIntegrity(std::string_view file) {
  constexpr size_t kFooterSize = 16;  // tag u32 + body len u64 + crc u32
  if (file.size() < kFooterSize) return Corrupt("file too short for footer");
  WireReader r(file.substr(file.size() - kFooterSize));
  uint32_t tag = 0, crc = 0;
  uint64_t body_len = 0;
  r.U32(&tag);
  r.U64(&body_len);
  r.U32(&crc);
  if (tag != kTagFoot) return Corrupt("missing footer (truncated file?)");
  if (body_len != file.size() - kFooterSize) {
    return Corrupt("footer body length disagrees with file size");
  }
  if (crc != Crc32c(file.data(), file.size() - 4)) {
    return Corrupt("file CRC mismatch");
  }
  return Status::OK();
}

void SerializePpsSketch(const StreamingPpsSketch& sketch, int instance,
                        WireWriter* w) {
  w->U32(kTagPps);
  w->I32(instance);
  w->F64(sketch.tau());
  w->U64(sketch.salt());
  w->U64(sketch.num_updates());
  w->U64(static_cast<uint64_t>(sketch.entries().size()));
  WriteSlabs(sketch.entries(), w);
}

Result<std::pair<int, StreamingPpsSketch>> DeserializePpsSketch(
    WireReader* r) {
  uint32_t tag = 0;
  int32_t instance = 0;
  double tau = 0;
  uint64_t salt = 0, num_updates = 0, entry_count = 0;
  r->U32(&tag);
  r->I32(&instance);
  r->F64(&tau);
  r->U64(&salt);
  r->U64(&num_updates);
  if (!r->U64(&entry_count)) return Corrupt("truncated PPS block header");
  if (tag != kTagPps) return Corrupt("bad PPS block tag");
  if (!(tau > 0) || !std::isfinite(tau)) {
    return Corrupt("PPS block with invalid tau");
  }
  // Bound the allocation by the bytes actually present: each entry needs
  // 16 slab bytes, so a corrupted count can never trigger a huge resize.
  if (entry_count > r->remaining() / 16) {
    return Corrupt("PPS entry count exceeds remaining bytes");
  }
  if (entry_count > num_updates) {
    return Corrupt("PPS block with more entries than updates");
  }
  std::vector<WeightedItem> entries;
  if (!ReadSlabs(r, entry_count, &entries)) {
    return Corrupt("PPS slab truncated or CRC mismatch");
  }
  // Sketch invariants, checked here with typed errors so corrupt (or
  // crafted, CRC-fixed-up) files can never reach the PIE_CHECKs in
  // FromParts: distinct keys, finite positive weights at or above each
  // key's inclusion threshold.
  const SeedFunction seed(salt);
  std::unordered_set<uint64_t> keys;
  keys.reserve(entries.size());
  for (const auto& e : entries) {
    if (!keys.insert(e.key).second) {
      return Corrupt("PPS block with duplicate key");
    }
    if (!std::isfinite(e.weight) || e.weight <= 0 ||
        e.weight < seed(e.key) * tau) {
      return Corrupt("PPS entry violates the inclusion invariant");
    }
  }
  return std::make_pair(
      static_cast<int>(instance),
      StreamingPpsSketch::FromParts(tau, salt, std::move(entries),
                                    num_updates));
}

void SerializeBottomkSketch(const StreamingBottomkSketch& sketch,
                            WireWriter* w) {
  w->U32(kTagBtk);
  w->I32(sketch.k());
  w->U32(static_cast<uint32_t>(sketch.family()));
  w->U64(sketch.salt());
  w->U64(sketch.num_updates());
  w->U64(static_cast<uint64_t>(sketch.pending().size()));
  // Reuse the keys/weights slab shape; ranks are recomputed on load.
  std::vector<WeightedItem> items;
  items.reserve(sketch.pending().size());
  for (const auto& slot : sketch.pending()) {
    items.push_back({slot.key, slot.weight});
  }
  WriteSlabs(items, w);
}

Result<StreamingBottomkSketch> DeserializeBottomkSketch(WireReader* r) {
  uint32_t tag = 0, family_raw = 0;
  int32_t k = 0;
  uint64_t salt = 0, num_updates = 0, slot_count = 0;
  r->U32(&tag);
  r->I32(&k);
  r->U32(&family_raw);
  r->U64(&salt);
  r->U64(&num_updates);
  if (!r->U64(&slot_count)) return Corrupt("truncated bottom-k block header");
  if (tag != kTagBtk) return Corrupt("bad bottom-k block tag");
  if (k <= 0) return Corrupt("bottom-k block with k <= 0");
  if (family_raw > static_cast<uint32_t>(RankFamily::kExp)) {
    return Corrupt("bottom-k block with unknown rank family");
  }
  const RankFamily family = static_cast<RankFamily>(family_raw);
  if (slot_count > static_cast<uint64_t>(k) + 1) {
    return Corrupt("bottom-k block with more than k+1 slots");
  }
  if (slot_count > r->remaining() / 16 || slot_count > num_updates) {
    return Corrupt("bottom-k slot count exceeds remaining bytes or updates");
  }
  std::vector<WeightedItem> items;
  if (!ReadSlabs(r, slot_count, &items)) {
    return Corrupt("bottom-k slab truncated or CRC mismatch");
  }
  const SeedFunction seed(salt);
  std::unordered_set<uint64_t> keys;
  keys.reserve(items.size());
  std::vector<BottomKSketch::Entry> slots;
  slots.reserve(items.size());
  for (const auto& item : items) {
    if (!keys.insert(item.key).second) {
      return Corrupt("bottom-k block with duplicate key");
    }
    if (!std::isfinite(item.weight) || item.weight <= 0) {
      return Corrupt("bottom-k slot with nonpositive weight");
    }
    slots.push_back(
        {item.key, item.weight, RankValue(family, item.weight, seed(item.key))});
  }
  if (!std::is_heap(slots.begin(), slots.end(), ByRank)) {
    return Corrupt("bottom-k slots are not in heap order");
  }
  return StreamingBottomkSketch::FromParts(k, family, salt, std::move(slots),
                                           num_updates);
}

std::string EncodeShardFile(
    uint32_t tier_tag, uint32_t shard_index, uint32_t num_shards,
    const std::map<int, StreamingPpsSketch>& sketches) {
  WireWriter w;
  WriteFileHeader(kFileTypeShard, tier_tag, &w);
  w.U32(shard_index);
  w.U32(num_shards);
  w.U64(static_cast<uint64_t>(sketches.size()));
  for (const auto& [instance, sketch] : sketches) {
    SerializePpsSketch(sketch, instance, &w);
  }
  WriteFooter(&w);
  return w.Take();
}

Result<ShardFileData> DecodeShardFile(std::string_view file) {
  if (Status s = VerifyFileIntegrity(file); !s.ok()) return s;
  WireReader r(file);
  auto header = ReadFileHeader(&r);
  if (!header.ok()) return header.status();
  if (header->file_type != kFileTypeShard) {
    return Corrupt("expected a shard file");
  }
  ShardFileData data;
  data.tier_tag = header->tier_tag;
  uint64_t sketch_count = 0;
  r.U32(&data.shard_index);
  r.U32(&data.num_shards);
  if (!r.U64(&sketch_count)) return Corrupt("truncated shard file header");
  if (data.num_shards == 0 || data.shard_index >= data.num_shards) {
    return Corrupt("shard file with out-of-range shard index");
  }
  // A PPS block is at least 48 bytes (header + two slab CRCs).
  if (sketch_count > r.remaining() / 48) {
    return Corrupt("shard sketch count exceeds remaining bytes");
  }
  data.sketches.reserve(sketch_count);
  for (uint64_t i = 0; i < sketch_count; ++i) {
    auto sketch = DeserializePpsSketch(&r);
    if (!sketch.ok()) return sketch.status();
    if (!data.sketches.empty() &&
        sketch->first <= data.sketches.back().first) {
      return Corrupt("shard instances out of order");
    }
    data.sketches.push_back(std::move(sketch).value());
  }
  if (r.remaining() != 16) {  // exactly the footer must remain
    return Corrupt("trailing bytes after last shard sketch");
  }
  return data;
}

std::string EncodeManifest(const Manifest& manifest) {
  WireWriter w;
  WriteFileHeader(kFileTypeManifest, manifest.tier_tag, &w);
  w.U64(manifest.seq);
  w.I32(manifest.options.num_shards);
  w.F64(manifest.options.default_tau);
  w.U64(manifest.options.salt);
  w.U32(manifest.options.coordinated ? 1 : 0);
  w.U64(static_cast<uint64_t>(manifest.options.instance_tau.size()));
  for (const auto& [instance, tau] : manifest.options.instance_tau) {
    w.I32(instance);
    w.F64(tau);
  }
  for (const auto& shard : manifest.shards) {
    w.U64(shard.file_size);
    w.U32(shard.file_crc);
  }
  WriteFooter(&w);
  return w.Take();
}

Result<Manifest> DecodeManifest(std::string_view file) {
  if (Status s = VerifyFileIntegrity(file); !s.ok()) return s;
  WireReader r(file);
  auto header = ReadFileHeader(&r);
  if (!header.ok()) return header.status();
  if (header->file_type != kFileTypeManifest) {
    return Corrupt("expected a manifest file");
  }
  Manifest manifest;
  manifest.tier_tag = header->tier_tag;
  uint32_t coordinated = 0;
  uint64_t override_count = 0;
  r.U64(&manifest.seq);
  r.I32(&manifest.options.num_shards);
  r.F64(&manifest.options.default_tau);
  r.U64(&manifest.options.salt);
  r.U32(&coordinated);
  if (!r.U64(&override_count)) return Corrupt("truncated manifest header");
  if (manifest.options.num_shards <= 0) {
    return Corrupt("manifest with nonpositive shard count");
  }
  if (!(manifest.options.default_tau > 0) ||
      !std::isfinite(manifest.options.default_tau)) {
    return Corrupt("manifest with invalid default tau");
  }
  if (coordinated > 1) return Corrupt("manifest with invalid coordinated flag");
  manifest.options.coordinated = coordinated == 1;
  if (override_count > r.remaining() / 12) {
    return Corrupt("manifest override count exceeds remaining bytes");
  }
  for (uint64_t i = 0; i < override_count; ++i) {
    int32_t instance = 0;
    double tau = 0;
    r.I32(&instance);
    if (!r.F64(&tau)) return Corrupt("truncated manifest overrides");
    if (!(tau > 0) || !std::isfinite(tau)) {
      return Corrupt("manifest with invalid instance tau");
    }
    auto [it, inserted] =
        manifest.options.instance_tau.emplace(instance, tau);
    if (!inserted) return Corrupt("manifest with duplicate instance tau");
  }
  const auto num_shards = static_cast<uint64_t>(manifest.options.num_shards);
  if (num_shards > r.remaining() / 12) {
    return Corrupt("manifest shard table exceeds remaining bytes");
  }
  manifest.shards.resize(num_shards);
  for (auto& shard : manifest.shards) {
    r.U64(&shard.file_size);
    if (!r.U32(&shard.file_crc)) return Corrupt("truncated manifest shards");
  }
  if (r.remaining() != 16) {
    return Corrupt("trailing bytes after manifest shard table");
  }
  return manifest;
}

std::string ManifestFileName(uint64_t seq) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "MANIFEST-%016llx.pie",
                static_cast<unsigned long long>(seq));
  return buf;
}

std::string ShardFileName(uint64_t seq, uint32_t shard) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "shard-%016llx-%05u.pie",
                static_cast<unsigned long long>(seq), shard);
  return buf;
}

}  // namespace pie::persist
