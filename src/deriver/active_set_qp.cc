#include "deriver/active_set_qp.h"

#include <algorithm>
#include <cmath>

#include "deriver/linalg.h"
#include "deriver/simplex.h"
#include "util/check.h"

namespace pie {
namespace {

constexpr double kTol = 1e-9;
constexpr int kMaxIterations = 2000;

// Finds a feasible point of {A_eq x = b_eq, A_in x <= b_in} via phase-1
// simplex on the split x = xp - xm with slacks on the inequalities.
Result<Vec<double>> FeasiblePoint(const QpProblem<double>& qp) {
  const int n = static_cast<int>(qp.d.size());
  const int m_eq = qp.a_eq.rows();
  const int m_in = qp.a_in.rows();
  const int cols = 2 * n + m_in;  // xp, xm, slacks
  Mat<double> a(m_eq + m_in, cols);
  Vec<double> b(static_cast<size_t>(m_eq + m_in), 0.0);
  for (int i = 0; i < m_eq; ++i) {
    for (int j = 0; j < n; ++j) {
      a.at(i, j) = qp.a_eq.at(i, j);
      a.at(i, n + j) = -qp.a_eq.at(i, j);
    }
    b[static_cast<size_t>(i)] = qp.b_eq[static_cast<size_t>(i)];
  }
  for (int i = 0; i < m_in; ++i) {
    for (int j = 0; j < n; ++j) {
      a.at(m_eq + i, j) = qp.a_in.at(i, j);
      a.at(m_eq + i, n + j) = -qp.a_in.at(i, j);
    }
    a.at(m_eq + i, 2 * n + i) = 1.0;  // slack
    b[static_cast<size_t>(m_eq + i)] = qp.b_in[static_cast<size_t>(i)];
  }
  auto point = FindFeasiblePoint<double>(a, b);
  if (!point.ok()) return point.status();
  Vec<double> x(static_cast<size_t>(n));
  for (int j = 0; j < n; ++j) {
    x[static_cast<size_t>(j)] =
        (*point)[static_cast<size_t>(j)] - (*point)[static_cast<size_t>(n + j)];
  }
  return x;
}

struct WorkingRow {
  bool is_eq;
  int index;
};

}  // namespace

Result<QpSolution<double>> SolveQpActiveSet(const QpProblem<double>& qp) {
  const int n = static_cast<int>(qp.d.size());
  PIE_CHECK(static_cast<int>(qp.c.size()) == n);
  for (double d : qp.d) PIE_CHECK(d > 0);
  const int m_eq = qp.a_eq.rows();
  const int m_in = qp.a_in.rows();

  auto start = FeasiblePoint(qp);
  if (!start.ok()) return start.status();
  Vec<double> x = std::move(start.value());

  auto row_dot = [&](bool is_eq, int i, const Vec<double>& v) {
    double acc = 0.0;
    const Mat<double>& m = is_eq ? qp.a_eq : qp.a_in;
    for (int j = 0; j < n; ++j) acc += m.at(i, j) * v[static_cast<size_t>(j)];
    return acc;
  };

  // Initial working set: all equalities + inequalities tight at x.
  std::vector<uint8_t> active(static_cast<size_t>(m_in), 0);
  for (int i = 0; i < m_in; ++i) {
    if (std::fabs(row_dot(false, i, x) - qp.b_in[static_cast<size_t>(i)]) <=
        kTol) {
      active[static_cast<size_t>(i)] = 1;
    }
  }

  for (int iter = 0; iter < kMaxIterations; ++iter) {
    // Build an independent working set (equalities first).
    std::vector<WorkingRow> rows;
    for (int i = 0; i < m_eq; ++i) rows.push_back({true, i});
    for (int i = 0; i < m_in; ++i) {
      if (active[static_cast<size_t>(i)]) rows.push_back({false, i});
    }
    // Reduce to independent rows (w.r.t. the x-coefficients only).
    {
      Mat<double> g(static_cast<int>(rows.size()), n);
      Vec<double> h(rows.size(), 0.0);
      for (size_t k = 0; k < rows.size(); ++k) {
        const Mat<double>& m = rows[k].is_eq ? qp.a_eq : qp.a_in;
        for (int j = 0; j < n; ++j) g.at(static_cast<int>(k), j) = m.at(rows[k].index, j);
      }
      auto keep = internal::IndependentRows<double>(g, h);
      if (keep.ok()) {
        std::vector<int> sorted = keep.value();
        std::sort(sorted.begin(), sorted.end());
        std::vector<WorkingRow> reduced;
        reduced.reserve(sorted.size());
        for (int idx : sorted) reduced.push_back(rows[static_cast<size_t>(idx)]);
        rows = std::move(reduced);
      }
    }
    const int k = static_cast<int>(rows.size());

    // Solve the equality-constrained subproblem on the working set:
    // (G D^-1 G^T) lambda = G D^-1 c - h;  x* = D^-1 (c - G^T lambda).
    Vec<double> lambda;
    Vec<double> x_star(static_cast<size_t>(n), 0.0);
    {
      Mat<double> gram(k, k);
      Vec<double> rhs(static_cast<size_t>(k), 0.0);
      auto coeff = [&](int a, int j) {
        const Mat<double>& m = rows[static_cast<size_t>(a)].is_eq ? qp.a_eq : qp.a_in;
        return m.at(rows[static_cast<size_t>(a)].index, j);
      };
      auto rhs_of = [&](int a) {
        return rows[static_cast<size_t>(a)].is_eq
                   ? qp.b_eq[static_cast<size_t>(rows[static_cast<size_t>(a)].index)]
                   : qp.b_in[static_cast<size_t>(rows[static_cast<size_t>(a)].index)];
      };
      for (int a = 0; a < k; ++a) {
        double acc = 0.0;
        for (int j = 0; j < n; ++j) {
          acc += coeff(a, j) * qp.c[static_cast<size_t>(j)] /
                 qp.d[static_cast<size_t>(j)];
        }
        rhs[static_cast<size_t>(a)] = acc - rhs_of(a);
        for (int b = a; b < k; ++b) {
          double dot = 0.0;
          for (int j = 0; j < n; ++j) {
            dot += coeff(a, j) * coeff(b, j) / qp.d[static_cast<size_t>(j)];
          }
          gram.at(a, b) = dot;
          gram.at(b, a) = dot;
        }
      }
      if (k > 0) {
        auto solved = SolveLinearSystem(gram, rhs);
        if (!solved.ok()) {
          return Status::Internal("active-set KKT system singular");
        }
        lambda = std::move(solved.value());
      }
      for (int j = 0; j < n; ++j) {
        double acc = qp.c[static_cast<size_t>(j)];
        for (int a = 0; a < k; ++a) {
          acc -= coeff(a, j) * lambda[static_cast<size_t>(a)];
        }
        x_star[static_cast<size_t>(j)] = acc / qp.d[static_cast<size_t>(j)];
      }
    }

    // Step direction.
    double move = 0.0;
    for (int j = 0; j < n; ++j) {
      move = std::max(move, std::fabs(x_star[static_cast<size_t>(j)] -
                                      x[static_cast<size_t>(j)]));
    }

    if (move <= kTol) {
      // Stationary on the working set: check inequality multipliers.
      int worst = -1;
      double worst_lambda = -kTol;
      for (int a = 0; a < k; ++a) {
        if (rows[static_cast<size_t>(a)].is_eq) continue;
        if (lambda[static_cast<size_t>(a)] < worst_lambda) {
          worst_lambda = lambda[static_cast<size_t>(a)];
          worst = a;
        }
      }
      if (worst < 0) {
        QpSolution<double> sol;
        sol.x = x;
        double obj = 0.0;
        for (int j = 0; j < n; ++j) {
          const double xj = x[static_cast<size_t>(j)];
          obj += 0.5 * qp.d[static_cast<size_t>(j)] * xj * xj -
                 qp.c[static_cast<size_t>(j)] * xj;
        }
        sol.objective = obj;
        return sol;
      }
      active[static_cast<size_t>(rows[static_cast<size_t>(worst)].index)] = 0;
      continue;
    }

    // Longest feasible step toward x_star.
    double alpha = 1.0;
    int blocking = -1;
    for (int i = 0; i < m_in; ++i) {
      if (active[static_cast<size_t>(i)]) continue;
      double dir = 0.0;
      for (int j = 0; j < n; ++j) {
        dir += qp.a_in.at(i, j) *
               (x_star[static_cast<size_t>(j)] - x[static_cast<size_t>(j)]);
      }
      if (dir <= kTol) continue;  // moving away from this constraint
      const double slack = qp.b_in[static_cast<size_t>(i)] - row_dot(false, i, x);
      const double limit = slack / dir;
      if (limit < alpha - 1e-15) {
        alpha = std::max(0.0, limit);
        blocking = i;
      }
    }
    for (int j = 0; j < n; ++j) {
      x[static_cast<size_t>(j)] += alpha * (x_star[static_cast<size_t>(j)] -
                                            x[static_cast<size_t>(j)]);
    }
    if (blocking >= 0) {
      active[static_cast<size_t>(blocking)] = 1;
    }
  }
  return Status::Internal("active-set QP iteration cap reached");
}

template <>
Result<QpSolution<double>> SolveQpForDerivation(const QpProblem<double>& qp) {
  if (qp.a_in.rows() <= kQpMaxInequalities) {
    return SolveDiagonalQp(qp);
  }
  return SolveQpActiveSet(qp);
}

}  // namespace pie
