// Property checkers and analyses for derived estimator tables:
// unbiasedness, nonnegativity, monotonicity (Section 2.1), per-vector
// variance and dominance comparisons, existence certificates (used to
// machine-check the Theorem 6.1 impossibility results), and the Delta(v,
// eps) quantity of Lemma 2.1.

#pragma once

#include <optional>
#include <vector>

#include "deriver/model.h"
#include "deriver/simplex.h"
#include "util/status.h"

namespace pie {

/// E[f^ | v] for every data vector.
template <typename S>
std::vector<S> ExpectationByVector(const CompiledModel<S>& m,
                                   const std::vector<S>& x) {
  PIE_CHECK(static_cast<int>(x.size()) == m.num_outcomes);
  std::vector<S> out(static_cast<size_t>(m.num_vectors),
                     ScalarTraits<S>::Zero());
  for (int v = 0; v < m.num_vectors; ++v) {
    for (int o = 0; o < m.num_outcomes; ++o) {
      out[static_cast<size_t>(v)] =
          out[static_cast<size_t>(v)] +
          m.p[static_cast<size_t>(v)][static_cast<size_t>(o)] *
              x[static_cast<size_t>(o)];
    }
  }
  return out;
}

/// Var[f^ | v] for every data vector.
template <typename S>
std::vector<S> VarianceByVector(const CompiledModel<S>& m,
                                const std::vector<S>& x) {
  std::vector<S> mean = ExpectationByVector(m, x);
  std::vector<S> out(static_cast<size_t>(m.num_vectors),
                     ScalarTraits<S>::Zero());
  for (int v = 0; v < m.num_vectors; ++v) {
    S second = ScalarTraits<S>::Zero();
    for (int o = 0; o < m.num_outcomes; ++o) {
      second = second +
               m.p[static_cast<size_t>(v)][static_cast<size_t>(o)] *
                   x[static_cast<size_t>(o)] * x[static_cast<size_t>(o)];
    }
    out[static_cast<size_t>(v)] =
        second - mean[static_cast<size_t>(v)] * mean[static_cast<size_t>(v)];
  }
  return out;
}

/// True iff E[f^ | v] == f(v) for all v (exact for Rational).
template <typename S>
bool IsUnbiased(const CompiledModel<S>& m, const std::vector<S>& x) {
  const std::vector<S> mean = ExpectationByVector(m, x);
  for (int v = 0; v < m.num_vectors; ++v) {
    if (!ScalarTraits<S>::IsZero(mean[static_cast<size_t>(v)] -
                                 m.f[static_cast<size_t>(v)])) {
      return false;
    }
  }
  return true;
}

/// True iff every outcome's estimate is >= 0.
template <typename S>
bool IsNonnegative(const std::vector<S>& x) {
  for (const S& xi : x) {
    if (ScalarTraits<S>::IsNegative(xi)) return false;
  }
  return true;
}

/// True iff the estimator is monotone: whenever outcome o is at least as
/// informative as o' (V*(o) a subset of V*(o')), x_o >= x_{o'}.
template <typename S>
bool IsMonotone(const CompiledModel<S>& m, const std::vector<S>& x) {
  // consistent[o] = bitmask of data vectors consistent with o.
  std::vector<uint64_t> consistent(static_cast<size_t>(m.num_outcomes), 0);
  for (int v = 0; v < m.num_vectors; ++v) {
    for (int o = 0; o < m.num_outcomes; ++o) {
      if (m.Consistent(v, o)) {
        consistent[static_cast<size_t>(o)] |= (1ULL << v);
      }
    }
  }
  for (int o1 = 0; o1 < m.num_outcomes; ++o1) {
    for (int o2 = 0; o2 < m.num_outcomes; ++o2) {
      const uint64_t c1 = consistent[static_cast<size_t>(o1)];
      const uint64_t c2 = consistent[static_cast<size_t>(o2)];
      if ((c1 & c2) == c1) {  // V*(o1) subset of V*(o2)
        if (ScalarTraits<S>::IsNegative(x[static_cast<size_t>(o1)] -
                                        x[static_cast<size_t>(o2)])) {
          return false;
        }
      }
    }
  }
  return true;
}

enum class Dominance {
  kFirstDominates,   ///< var1 <= var2 everywhere, strictly somewhere
  kSecondDominates,  ///< var2 <= var1 everywhere, strictly somewhere
  kEqual,            ///< identical variance on every data vector
  kIncomparable,     ///< each is strictly better somewhere
};

/// Compares two estimator tables by per-vector variance.
template <typename S>
Dominance CompareDominance(const CompiledModel<S>& m, const std::vector<S>& x1,
                           const std::vector<S>& x2) {
  const std::vector<S> v1 = VarianceByVector(m, x1);
  const std::vector<S> v2 = VarianceByVector(m, x2);
  bool first_better = false;
  bool second_better = false;
  for (int v = 0; v < m.num_vectors; ++v) {
    const S diff = v1[static_cast<size_t>(v)] - v2[static_cast<size_t>(v)];
    if (ScalarTraits<S>::IsZero(diff)) continue;
    if (ScalarTraits<S>::IsNegative(diff)) {
      first_better = true;
    } else {
      second_better = true;
    }
  }
  if (first_better && second_better) return Dominance::kIncomparable;
  if (first_better) return Dominance::kFirstDominates;
  if (second_better) return Dominance::kSecondDominates;
  return Dominance::kEqual;
}

/// Existence certificate: is there ANY unbiased nonnegative estimator for
/// the model? Feasibility of {x >= 0, sum_o P(o|v) x_o = f(v) for all v},
/// decided by exact two-phase simplex. Returns a witness table when
/// feasible; Status Infeasible is the machine-checked impossibility
/// certificate (Theorem 6.1 instances).
template <typename S>
Result<std::vector<S>> ExistsUnbiasedNonnegative(const CompiledModel<S>& m) {
  Mat<S> a(m.num_vectors, m.num_outcomes);
  Vec<S> b(static_cast<size_t>(m.num_vectors));
  for (int v = 0; v < m.num_vectors; ++v) {
    for (int o = 0; o < m.num_outcomes; ++o) {
      a.at(v, o) = m.p[static_cast<size_t>(v)][static_cast<size_t>(o)];
    }
    b[static_cast<size_t>(v)] = m.f[static_cast<size_t>(v)];
  }
  return FindFeasiblePoint(a, b);
}

/// Delta(v, eps) of Lemma 2.1 (equation (2)): one minus the largest
/// probability of a sample-space portion Omega' such that the data vectors
/// consistent with *every* outcome v produces on Omega' can drive f below
/// f(v) - eps. Necessary conditions: Delta > 0 for an unbiased nonnegative
/// estimator to exist; Delta = Omega(eps^2) for bounded variance; Delta =
/// Omega(eps) for a bounded estimator. Exponential in |Omega| (capped).
template <typename S>
S DeltaLemma21(const CompiledModel<S>& m, int v, const S& eps) {
  PIE_CHECK(v >= 0 && v < m.num_vectors);
  PIE_CHECK(m.num_sigmas <= 16);
  PIE_CHECK(m.num_vectors <= 64);

  // Per sigma: bitmask of data vectors consistent with the outcome v yields
  // under sigma.
  std::vector<uint64_t> mask(static_cast<size_t>(m.num_sigmas), 0);
  for (int s = 0; s < m.num_sigmas; ++s) {
    const int o = m.sigma_outcome[static_cast<size_t>(v)][static_cast<size_t>(s)];
    for (int w = 0; w < m.num_vectors; ++w) {
      if (m.Consistent(w, o)) mask[static_cast<size_t>(s)] |= (1ULL << w);
    }
  }

  const S threshold = m.f[static_cast<size_t>(v)] - eps;
  S best = ScalarTraits<S>::Zero();  // max P(Omega') over qualifying subsets
  bool any = false;
  for (uint32_t subset = 1; subset < (1u << m.num_sigmas); ++subset) {
    uint64_t inter = ~0ULL;
    S prob = ScalarTraits<S>::Zero();
    for (int s = 0; s < m.num_sigmas; ++s) {
      if ((subset >> s) & 1u) {
        inter &= mask[static_cast<size_t>(s)];
        prob = prob + m.sigma_prob[static_cast<size_t>(s)];
      }
    }
    // inf of f over the consistent intersection.
    std::optional<S> inf;
    for (int w = 0; w < m.num_vectors; ++w) {
      if ((inter >> w) & 1ULL) {
        if (!inf.has_value() || m.f[static_cast<size_t>(w)] < *inf) {
          inf = m.f[static_cast<size_t>(w)];
        }
      }
    }
    if (!inf.has_value()) continue;  // empty intersection: no constraint
    const S slack = threshold - *inf;
    if (!ScalarTraits<S>::IsNegative(slack)) {  // inf <= f(v) - eps
      if (!any || best < prob) best = prob;
      any = true;
    }
  }
  if (!any) return ScalarTraits<S>::One();  // Delta(v,eps) = 1 by definition
  return ScalarTraits<S>::One() - best;
}

}  // namespace pie
