// Two-phase dense simplex over a generic scalar, with Bland's rule (finite
// termination; exact with Rational scalars).
//
// Solves   minimize c^T x   subject to   A x = b,  x >= 0.
//
// Used by the derivation engine for (a) existence certificates: an unbiased
// nonnegative estimator over a finite model exists iff the linear system
// {sum_o P(o|v) x_o = f(v) for all v, x >= 0} is feasible (this is how the
// Theorem 6.1 impossibility results are machine-checked), and (b) initial
// feasible points for constrained derivations.

#pragma once

#include <vector>

#include "deriver/linalg.h"
#include "deriver/scalar_traits.h"
#include "util/status.h"

namespace pie {

template <typename S>
struct LpProblem {
  Mat<S> a;  ///< m x n constraint matrix
  Vec<S> b;  ///< m right-hand sides
  Vec<S> c;  ///< n objective coefficients (minimized)
};

template <typename S>
struct LpSolution {
  Vec<S> x;
  S objective;
};

namespace internal {

/// Simplex tableau: rows 0..m-1 are constraints, row m is the reduced-cost
/// row; column n_total is the RHS.
template <typename S>
class SimplexTableau {
 public:
  SimplexTableau(const Mat<S>& a, const Vec<S>& b, int extra_cols)
      : m_(a.rows()), n_(a.cols() + extra_cols), t_(m_ + 1, n_ + 1) {
    for (int i = 0; i < m_; ++i) {
      const bool flip = ScalarTraits<S>::IsNegative(b[static_cast<size_t>(i)]);
      for (int j = 0; j < a.cols(); ++j) {
        t_.at(i, j) = flip ? -a.at(i, j) : a.at(i, j);
      }
      t_.at(i, n_) =
          flip ? -b[static_cast<size_t>(i)] : b[static_cast<size_t>(i)];
    }
    basis_.assign(static_cast<size_t>(m_), -1);
  }

  int m() const { return m_; }
  int n() const { return n_; }
  S& at(int i, int j) { return t_.at(i, j); }
  const S& at(int i, int j) const { return t_.at(i, j); }
  int basis(int row) const { return basis_[static_cast<size_t>(row)]; }
  void set_basis(int row, int col) { basis_[static_cast<size_t>(row)] = col; }

  /// Gauss-Jordan pivot on (row, col); updates the objective row too.
  void Pivot(int row, int col) {
    const S pivot = t_.at(row, col);
    PIE_CHECK(!ScalarTraits<S>::IsZero(pivot));
    for (int j = 0; j <= n_; ++j) t_.at(row, j) = t_.at(row, j) / pivot;
    for (int i = 0; i <= m_; ++i) {
      if (i == row) continue;
      const S factor = t_.at(i, col);
      if (ScalarTraits<S>::IsZero(factor)) continue;
      for (int j = 0; j <= n_; ++j) {
        t_.at(i, j) = t_.at(i, j) - factor * t_.at(row, j);
      }
    }
    basis_[static_cast<size_t>(row)] = col;
  }

  /// Runs simplex iterations with Bland's rule on columns < allowed_cols.
  /// Returns OK at optimum, OutOfRange if unbounded.
  Status Iterate(int allowed_cols) {
    while (true) {
      // Entering column: smallest index with negative reduced cost.
      int enter = -1;
      for (int j = 0; j < allowed_cols; ++j) {
        if (ScalarTraits<S>::IsNegative(t_.at(m_, j))) {
          enter = j;
          break;
        }
      }
      if (enter < 0) return Status::OK();
      // Leaving row: min ratio, Bland tie-break on basis index.
      int leave = -1;
      for (int i = 0; i < m_; ++i) {
        const S& aij = t_.at(i, enter);
        if (ScalarTraits<S>::IsZero(aij) || ScalarTraits<S>::IsNegative(aij)) {
          continue;
        }
        if (leave < 0) {
          leave = i;
          continue;
        }
        // ratio_i < ratio_leave <=> b_i * a_lj < b_l * a_ij
        const S lhs = t_.at(i, n_) * t_.at(leave, enter);
        const S rhs = t_.at(leave, n_) * aij;
        if (lhs < rhs ||
            (!(rhs < lhs) && basis(i) < basis(leave))) {
          leave = i;
        }
      }
      if (leave < 0) return Status::OutOfRange("LP is unbounded");
      Pivot(leave, enter);
    }
  }

 private:
  int m_, n_;
  Mat<S> t_;
  std::vector<int> basis_;
};

}  // namespace internal

/// Solves the standard-form LP. Status codes: Infeasible (no x >= 0 with
/// Ax = b), OutOfRange (unbounded), otherwise OK with an optimal vertex.
template <typename S>
Result<LpSolution<S>> SolveLp(const LpProblem<S>& prob) {
  const int m = prob.a.rows();
  const int n = prob.a.cols();
  PIE_CHECK(static_cast<int>(prob.b.size()) == m);
  PIE_CHECK(static_cast<int>(prob.c.size()) == n);

  // Phase 1: artificial columns n..n+m-1 form the initial basis.
  internal::SimplexTableau<S> t(prob.a, prob.b, /*extra_cols=*/m);
  for (int i = 0; i < m; ++i) {
    t.at(i, n + i) = ScalarTraits<S>::One();
    t.set_basis(i, n + i);
  }
  // Reduced costs for objective = sum of artificials: r_j = -sum_i T[i][j]
  // on original columns, 0 on artificials; RHS = -sum_i b_i.
  for (int j = 0; j <= t.n(); ++j) {
    if (j >= n && j < t.n()) continue;  // artificial columns keep cost 0
    S acc = ScalarTraits<S>::Zero();
    for (int i = 0; i < m; ++i) acc = acc + t.at(i, j);
    t.at(m, j) = -acc;
  }
  Status phase1 = t.Iterate(t.n());
  if (!phase1.ok()) return phase1;  // cannot be unbounded in theory
  // Feasible iff the phase-1 optimum is 0 (RHS of the objective row is the
  // negated objective value).
  const S phase1_obj = -t.at(m, t.n());
  if (!ScalarTraits<S>::IsZero(phase1_obj)) {
    return Status::Infeasible("no nonnegative solution to Ax=b");
  }
  // Drive any remaining artificial variables out of the basis.
  for (int i = 0; i < m; ++i) {
    if (t.basis(i) < n) continue;
    int col = -1;
    for (int j = 0; j < n; ++j) {
      if (!ScalarTraits<S>::IsZero(t.at(i, j))) {
        col = j;
        break;
      }
    }
    if (col >= 0) {
      t.Pivot(i, col);
    }
    // else: redundant row; its basis stays artificial at value 0, harmless.
  }

  // Phase 2: rebuild the reduced-cost row from the real objective.
  for (int j = 0; j <= t.n(); ++j) {
    S cj = (j < n) ? prob.c[static_cast<size_t>(j)] : ScalarTraits<S>::Zero();
    S zj = ScalarTraits<S>::Zero();
    for (int i = 0; i < m; ++i) {
      const int bi = t.basis(i);
      if (bi >= 0 && bi < n) {
        zj = zj + prob.c[static_cast<size_t>(bi)] * t.at(i, j);
      }
    }
    t.at(m, j) = cj - zj;
  }
  {
    S obj = ScalarTraits<S>::Zero();
    for (int i = 0; i < m; ++i) {
      const int bi = t.basis(i);
      if (bi >= 0 && bi < n) {
        obj = obj + prob.c[static_cast<size_t>(bi)] * t.at(i, t.n());
      }
    }
    t.at(m, t.n()) = -obj;
  }
  Status phase2 = t.Iterate(n);  // artificials barred from re-entering
  if (!phase2.ok()) return phase2;

  LpSolution<S> sol;
  sol.x.assign(static_cast<size_t>(n), ScalarTraits<S>::Zero());
  for (int i = 0; i < m; ++i) {
    const int bi = t.basis(i);
    if (bi >= 0 && bi < n) {
      sol.x[static_cast<size_t>(bi)] = t.at(i, t.n());
    }
  }
  sol.objective = -t.at(m, t.n());
  return sol;
}

/// Finds any x >= 0 with A x = b, or Infeasible.
template <typename S>
Result<Vec<S>> FindFeasiblePoint(const Mat<S>& a, const Vec<S>& b) {
  LpProblem<S> prob;
  prob.a = a;
  prob.b = b;
  prob.c.assign(static_cast<size_t>(a.cols()), ScalarTraits<S>::Zero());
  auto sol = SolveLp(prob);
  if (!sol.ok()) return sol.status();
  return std::move(sol.value().x);
}

}  // namespace pie
