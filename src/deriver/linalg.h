// Small dense linear algebra over a generic scalar (double or Rational),
// sized for the derivation engine's tiny KKT systems.

#pragma once

#include <vector>

#include "deriver/scalar_traits.h"
#include "util/check.h"
#include "util/status.h"

namespace pie {

template <typename S>
using Vec = std::vector<S>;

/// Dense row-major matrix.
template <typename S>
class Mat {
 public:
  Mat() : rows_(0), cols_(0) {}
  Mat(int rows, int cols)
      : rows_(rows),
        cols_(cols),
        data_(static_cast<size_t>(rows) * static_cast<size_t>(cols),
              ScalarTraits<S>::Zero()) {
    PIE_CHECK(rows >= 0 && cols >= 0);
  }

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  S& at(int i, int j) {
    PIE_DCHECK(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[static_cast<size_t>(i) * cols_ + j];
  }
  const S& at(int i, int j) const {
    PIE_DCHECK(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[static_cast<size_t>(i) * cols_ + j];
  }

 private:
  int rows_, cols_;
  std::vector<S> data_;
};

/// Solves the square system A x = b by Gaussian elimination with partial
/// pivoting (largest |pivot| for double; first nonzero works exactly for
/// Rational but we still pick the largest for uniformity). Returns
/// Infeasible if A is singular.
template <typename S>
Result<Vec<S>> SolveLinearSystem(Mat<S> a, Vec<S> b) {
  const int n = a.rows();
  PIE_CHECK(a.cols() == n);
  PIE_CHECK(static_cast<int>(b.size()) == n);

  std::vector<int> perm(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) perm[static_cast<size_t>(i)] = i;

  for (int col = 0; col < n; ++col) {
    // Pivot selection.
    int pivot = -1;
    S best = ScalarTraits<S>::Zero();
    for (int row = col; row < n; ++row) {
      const S mag = ScalarTraits<S>::Abs(a.at(row, col));
      if (!ScalarTraits<S>::IsZero(mag) && (pivot < 0 || best < mag)) {
        pivot = row;
        best = mag;
      }
    }
    if (pivot < 0) {
      return Status::Infeasible("singular linear system");
    }
    if (pivot != col) {
      for (int j = 0; j < n; ++j) std::swap(a.at(pivot, j), a.at(col, j));
      std::swap(b[static_cast<size_t>(pivot)], b[static_cast<size_t>(col)]);
    }
    // Eliminate below.
    for (int row = col + 1; row < n; ++row) {
      if (ScalarTraits<S>::IsZero(a.at(row, col))) continue;
      const S factor = a.at(row, col) / a.at(col, col);
      a.at(row, col) = ScalarTraits<S>::Zero();
      for (int j = col + 1; j < n; ++j) {
        a.at(row, j) = a.at(row, j) - factor * a.at(col, j);
      }
      b[static_cast<size_t>(row)] =
          b[static_cast<size_t>(row)] - factor * b[static_cast<size_t>(col)];
    }
  }

  // Back substitution.
  Vec<S> x(static_cast<size_t>(n), ScalarTraits<S>::Zero());
  for (int row = n - 1; row >= 0; --row) {
    S acc = b[static_cast<size_t>(row)];
    for (int j = row + 1; j < n; ++j) {
      acc = acc - a.at(row, j) * x[static_cast<size_t>(j)];
    }
    x[static_cast<size_t>(row)] = acc / a.at(row, row);
  }
  return x;
}

/// Dot product.
template <typename S>
S Dot(const Vec<S>& a, const Vec<S>& b) {
  PIE_CHECK(a.size() == b.size());
  S acc = ScalarTraits<S>::Zero();
  for (size_t i = 0; i < a.size(); ++i) acc = acc + a[i] * b[i];
  return acc;
}

}  // namespace pie
