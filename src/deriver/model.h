// Finite discrete model of sampling dispersed data vectors (Section 2 of
// the paper), executable form.
//
// Entry i has a finite value domain V_i and a finite set of predicates
// sigma_i (each with a probability); the sample S(sigma, v) contains entry i
// iff sigma_i(v_i) is true. This captures:
//   * weight-oblivious Poisson: predicates {include-all w.p. p_i,
//     include-nothing w.p. 1-p_i};
//   * weighted sampling: monotone threshold predicates (include values above
//     a cutoff), which for binary domains reduces to {include value 1 w.p.
//     p_i, include nothing w.p. 1-p_i};
//   * known vs unknown seeds: whether the outcome reveals which predicate
//     was drawn for entries that were not sampled.
//
// CompileModel enumerates data vectors, the predicate space Omega, and the
// distinct outcomes (what the estimator sees), producing the conditional
// distribution P(outcome | data vector) that Algorithms 1/2 and the
// property checkers operate on. Scalars are double or exact Rational.

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "deriver/scalar_traits.h"
#include "util/check.h"
#include "util/status.h"

namespace pie {

/// One predicate of one entry: probability and the inclusion indicator per
/// value index of that entry's domain.
template <typename S>
struct DiscretePredicate {
  S prob;
  std::vector<uint8_t> includes;
};

/// Value domain and predicate distribution of one entry.
template <typename S>
struct EntryDomain {
  std::vector<S> values;
  std::vector<DiscretePredicate<S>> predicates;
};

/// The full model: entries, seed visibility, the data-vector set V, and the
/// estimated function f.
template <typename S>
struct DiscreteModel {
  std::vector<EntryDomain<S>> entries;
  bool seeds_known = true;
  /// Data vectors as value indices per entry; empty means the full product
  /// of the entry domains.
  std::vector<std::vector<int>> data_vectors;
  std::function<S(const std::vector<S>&)> f;

  int r() const { return static_cast<int>(entries.size()); }
};

/// CompileModel output: everything indexed by dense ids.
template <typename S>
struct CompiledModel {
  int num_vectors = 0;
  int num_outcomes = 0;
  int num_sigmas = 0;  ///< |Omega|

  /// p[v][o] = P(outcome o | data vector v).
  std::vector<std::vector<S>> p;
  /// f[v].
  std::vector<S> f;
  /// Probability of each predicate vector sigma (independent across entries).
  std::vector<S> sigma_prob;
  /// sigma_outcome[v][sigma] = outcome id observed for (v, sigma).
  std::vector<std::vector<int>> sigma_outcome;

  /// Value indices of each data vector.
  std::vector<std::vector<int>> vector_values;
  /// Human-readable forms for reports.
  std::vector<std::string> vector_desc;
  std::vector<std::string> outcome_desc;

  bool Consistent(int v, int o) const {
    return !ScalarTraits<S>::IsZero(p[static_cast<size_t>(v)][static_cast<size_t>(o)]);
  }
};

/// Enumerates vectors, sigma space, and outcomes. Checks that each entry's
/// predicate probabilities are a distribution. Size guards: at most 64 data
/// vectors * 4096 sigmas.
template <typename S>
CompiledModel<S> CompileModel(const DiscreteModel<S>& model);

// ---------------------------------------------------------------------------
// Builders
// ---------------------------------------------------------------------------

/// Weight-oblivious Poisson: entry i sampled with probability probs[i]
/// independently of its value.
template <typename S>
DiscreteModel<S> MakeObliviousModel(std::vector<std::vector<S>> domains,
                                    std::vector<S> probs, bool seeds_known,
                                    std::function<S(const std::vector<S>&)> f);

/// Weighted sampling of binary values: a 1-entry is sampled with probability
/// probs[i]; a 0-entry never. With seeds_known, an unsampled entry whose
/// predicate would have sampled a 1 certifies the value 0.
template <typename S>
DiscreteModel<S> MakeWeightedBinaryModel(std::vector<S> probs,
                                         bool seeds_known,
                                         std::function<S(const std::vector<S>&)> f);

/// Weighted threshold sampling over an ascending domain (values[0] == 0):
/// predicate j = "include values with index >= j" for j = 1..|domain|, plus
/// the include-nothing predicate; threshold_probs[i][j-1] is the probability
/// of predicate j and the remainder goes to include-nothing. This is the
/// discrete analogue of PPS thresholds u_i * tau_i.
template <typename S>
DiscreteModel<S> MakeWeightedThresholdModel(
    std::vector<std::vector<S>> domains,
    std::vector<std::vector<S>> threshold_probs, bool seeds_known,
    std::function<S(const std::vector<S>&)> f);

// Scalar-generic function objects for common f.
template <typename S>
S MaxS(const std::vector<S>& v) {
  PIE_CHECK(!v.empty());
  S best = v[0];
  for (const S& x : v) {
    if (best < x) best = x;
  }
  return best;
}

template <typename S>
S MinS(const std::vector<S>& v) {
  PIE_CHECK(!v.empty());
  S best = v[0];
  for (const S& x : v) {
    if (x < best) best = x;
  }
  return best;
}

template <typename S>
S RangeS(const std::vector<S>& v) {
  return MaxS(v) - MinS(v);
}

template <typename S>
S OrS(const std::vector<S>& v) {
  for (const S& x : v) {
    if (!ScalarTraits<S>::IsZero(x)) return ScalarTraits<S>::One();
  }
  return ScalarTraits<S>::Zero();
}

/// XOR of two bits (== RG over a binary two-entry domain).
template <typename S>
S XorS(const std::vector<S>& v) {
  PIE_CHECK(v.size() == 2);
  return RangeS(v);
}

// ---------------------------------------------------------------------------
// Implementation
// ---------------------------------------------------------------------------

template <typename S>
CompiledModel<S> CompileModel(const DiscreteModel<S>& model) {
  const int r = model.r();
  PIE_CHECK(r >= 1);
  PIE_CHECK(model.f != nullptr);

  // Validate predicate distributions.
  for (const auto& entry : model.entries) {
    PIE_CHECK(!entry.values.empty());
    PIE_CHECK(!entry.predicates.empty());
    S total = ScalarTraits<S>::Zero();
    for (const auto& pred : entry.predicates) {
      PIE_CHECK(!ScalarTraits<S>::IsNegative(pred.prob));
      PIE_CHECK(pred.includes.size() == entry.values.size());
      total = total + pred.prob;
    }
    PIE_CHECK(ScalarTraits<S>::IsZero(total - ScalarTraits<S>::One()));
  }

  CompiledModel<S> out;

  // Data vectors: explicit list or the full product.
  if (!model.data_vectors.empty()) {
    out.vector_values = model.data_vectors;
  } else {
    std::vector<int> idx(static_cast<size_t>(r), 0);
    while (true) {
      out.vector_values.push_back(idx);
      int pos = r - 1;
      while (pos >= 0) {
        if (++idx[static_cast<size_t>(pos)] <
            static_cast<int>(model.entries[static_cast<size_t>(pos)].values.size())) {
          break;
        }
        idx[static_cast<size_t>(pos)] = 0;
        --pos;
      }
      if (pos < 0) break;
    }
  }
  out.num_vectors = static_cast<int>(out.vector_values.size());
  PIE_CHECK(out.num_vectors <= 64);

  // Sigma space: product of predicate indices.
  int num_sigmas = 1;
  for (const auto& entry : model.entries) {
    num_sigmas *= static_cast<int>(entry.predicates.size());
    PIE_CHECK(num_sigmas <= 4096);
  }
  out.num_sigmas = num_sigmas;
  out.sigma_prob.resize(static_cast<size_t>(num_sigmas));
  for (int s = 0; s < num_sigmas; ++s) {
    S prob = ScalarTraits<S>::One();
    int rem = s;
    for (int i = 0; i < r; ++i) {
      const auto& preds = model.entries[static_cast<size_t>(i)].predicates;
      const int pi = rem % static_cast<int>(preds.size());
      rem /= static_cast<int>(preds.size());
      prob = prob * preds[static_cast<size_t>(pi)].prob;
    }
    out.sigma_prob[static_cast<size_t>(s)] = prob;
  }

  // f values and vector descriptions.
  out.f.resize(static_cast<size_t>(out.num_vectors));
  out.vector_desc.resize(static_cast<size_t>(out.num_vectors));
  for (int v = 0; v < out.num_vectors; ++v) {
    std::vector<S> values(static_cast<size_t>(r));
    std::string desc = "(";
    for (int i = 0; i < r; ++i) {
      const int vi = out.vector_values[static_cast<size_t>(v)][static_cast<size_t>(i)];
      values[static_cast<size_t>(i)] =
          model.entries[static_cast<size_t>(i)].values[static_cast<size_t>(vi)];
      if (i > 0) desc += ",";
      desc += "v" + std::to_string(vi);
    }
    desc += ")";
    out.f[static_cast<size_t>(v)] = model.f(values);
    out.vector_desc[static_cast<size_t>(v)] = desc;
  }

  // Outcome enumeration. An outcome key encodes, per entry: the visible
  // predicate index (or -1 when seeds are unknown) and the sampled value
  // index (or -1 when unsampled).
  std::map<std::vector<int>, int> outcome_ids;
  out.p.assign(static_cast<size_t>(out.num_vectors), {});
  out.sigma_outcome.assign(static_cast<size_t>(out.num_vectors),
                           std::vector<int>(static_cast<size_t>(num_sigmas), -1));

  for (int v = 0; v < out.num_vectors; ++v) {
    for (int s = 0; s < num_sigmas; ++s) {
      std::vector<int> key;
      key.reserve(static_cast<size_t>(2 * r));
      std::string desc = "S={";
      bool first = true;
      int rem = s;
      for (int i = 0; i < r; ++i) {
        const auto& preds = model.entries[static_cast<size_t>(i)].predicates;
        const int pi = rem % static_cast<int>(preds.size());
        rem /= static_cast<int>(preds.size());
        const int vi = out.vector_values[static_cast<size_t>(v)][static_cast<size_t>(i)];
        const bool in =
            preds[static_cast<size_t>(pi)].includes[static_cast<size_t>(vi)] != 0;
        key.push_back(model.seeds_known ? pi : -1);
        key.push_back(in ? vi : -1);
        if (in) {
          if (!first) desc += ",";
          desc += std::to_string(i) + ":v" + std::to_string(vi);
          first = false;
        }
      }
      desc += "}";
      if (model.seeds_known) {
        desc += " sigma=" + std::to_string(s);
      }

      auto [it, inserted] =
          outcome_ids.emplace(std::move(key), static_cast<int>(outcome_ids.size()));
      const int oid = it->second;
      if (inserted) out.outcome_desc.push_back(desc);
      out.sigma_outcome[static_cast<size_t>(v)][static_cast<size_t>(s)] = oid;
    }
  }
  out.num_outcomes = static_cast<int>(outcome_ids.size());

  for (int v = 0; v < out.num_vectors; ++v) {
    out.p[static_cast<size_t>(v)].assign(static_cast<size_t>(out.num_outcomes),
                                         ScalarTraits<S>::Zero());
    for (int s = 0; s < num_sigmas; ++s) {
      const int oid = out.sigma_outcome[static_cast<size_t>(v)][static_cast<size_t>(s)];
      out.p[static_cast<size_t>(v)][static_cast<size_t>(oid)] =
          out.p[static_cast<size_t>(v)][static_cast<size_t>(oid)] +
          out.sigma_prob[static_cast<size_t>(s)];
    }
  }
  return out;
}

template <typename S>
DiscreteModel<S> MakeObliviousModel(std::vector<std::vector<S>> domains,
                                    std::vector<S> probs, bool seeds_known,
                                    std::function<S(const std::vector<S>&)> f) {
  PIE_CHECK(domains.size() == probs.size());
  DiscreteModel<S> model;
  model.seeds_known = seeds_known;
  model.f = std::move(f);
  for (size_t i = 0; i < domains.size(); ++i) {
    EntryDomain<S> entry;
    entry.values = std::move(domains[i]);
    DiscretePredicate<S> all{probs[i],
                             std::vector<uint8_t>(entry.values.size(), 1)};
    DiscretePredicate<S> none{ScalarTraits<S>::One() - probs[i],
                              std::vector<uint8_t>(entry.values.size(), 0)};
    entry.predicates = {all, none};
    model.entries.push_back(std::move(entry));
  }
  return model;
}

template <typename S>
DiscreteModel<S> MakeWeightedBinaryModel(
    std::vector<S> probs, bool seeds_known,
    std::function<S(const std::vector<S>&)> f) {
  DiscreteModel<S> model;
  model.seeds_known = seeds_known;
  model.f = std::move(f);
  for (const S& p : probs) {
    EntryDomain<S> entry;
    entry.values = {ScalarTraits<S>::Zero(), ScalarTraits<S>::One()};
    // "low threshold": samples the value 1; never samples 0.
    DiscretePredicate<S> low{p, {0, 1}};
    DiscretePredicate<S> high{ScalarTraits<S>::One() - p, {0, 0}};
    entry.predicates = {low, high};
    model.entries.push_back(std::move(entry));
  }
  return model;
}

template <typename S>
DiscreteModel<S> MakeWeightedThresholdModel(
    std::vector<std::vector<S>> domains,
    std::vector<std::vector<S>> threshold_probs, bool seeds_known,
    std::function<S(const std::vector<S>&)> f) {
  PIE_CHECK(domains.size() == threshold_probs.size());
  DiscreteModel<S> model;
  model.seeds_known = seeds_known;
  model.f = std::move(f);
  for (size_t i = 0; i < domains.size(); ++i) {
    EntryDomain<S> entry;
    entry.values = std::move(domains[i]);
    const size_t n = entry.values.size();
    PIE_CHECK(ScalarTraits<S>::IsZero(entry.values[0]));
    PIE_CHECK(threshold_probs[i].size() == n - 1);
    S rest = ScalarTraits<S>::One();
    // Predicate j samples values with index >= j (j = 1..n-1): a monotone
    // threshold below the j-th value.
    for (size_t j = 1; j < n; ++j) {
      std::vector<uint8_t> inc(n, 0);
      for (size_t t = j; t < n; ++t) inc[t] = 1;
      entry.predicates.push_back({threshold_probs[i][j - 1], std::move(inc)});
      rest = rest - threshold_probs[i][j - 1];
    }
    PIE_CHECK(!ScalarTraits<S>::IsNegative(rest));
    entry.predicates.push_back({rest, std::vector<uint8_t>(n, 0)});
    model.entries.push_back(std::move(entry));
  }
  return model;
}

}  // namespace pie
