// Uniform treatment of double and exact Rational scalars in the derivation
// engine. Rational instantiations compare exactly (epsilon 0), so the
// engine can certify unbiasedness and optimality with no numeric tolerance;
// double instantiations use small tolerances.

#pragma once

#include <cmath>

#include "util/rational.h"

namespace pie {

template <typename S>
struct ScalarTraits;

template <>
struct ScalarTraits<double> {
  static double Zero() { return 0.0; }
  static double One() { return 1.0; }
  static bool IsZero(double x) { return std::fabs(x) <= 1e-11; }
  static bool IsNegative(double x) { return x < -1e-9; }
  static double Abs(double x) { return std::fabs(x); }
  static double FromInt(int64_t v) { return static_cast<double>(v); }
};

template <>
struct ScalarTraits<Rational> {
  static Rational Zero() { return Rational(0); }
  static Rational One() { return Rational(1); }
  static bool IsZero(const Rational& x) { return x.IsZero(); }
  static bool IsNegative(const Rational& x) { return x.IsNegative(); }
  static Rational Abs(const Rational& x) { return x.Abs(); }
  static Rational FromInt(int64_t v) { return Rational(v); }
};

}  // namespace pie
