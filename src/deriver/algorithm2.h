// Algorithm 2 of the paper: the ordered-partition estimator f^(U), and its
// singleton-batch special case f^(+≺) (order-based with explicit
// nonnegativity constraints, equations (7)-(9)).
//
// Batches of data vectors are processed in order. For batch U_h, the
// outcomes consistent with U_h and not yet assigned get values minimizing
// the summed variance contribution of the batch members, subject to
//   * unbiasedness for every member of U_h (equation (8)),
//   * not violating nonnegativity for any vector in a later batch
//     (equation (9)),
//   * nonnegativity of the estimates themselves.
// With symmetric batches (all permutations of a vector in one batch) the
// strictly convex objective yields the symmetric locally-Pareto-optimal
// solution the paper describes; with singleton batches it reproduces
// f^(+≺).

#pragma once

#include <functional>
#include <map>
#include <string>
#include <type_traits>
#include <vector>

#include "deriver/active_set_qp.h"
#include "deriver/model.h"
#include "deriver/qp.h"
#include "util/status.h"

namespace pie {

/// Runs Algorithm 2 over `batches` (a partition of 0..num_vectors-1,
/// most-preferred batch first). Returns the per-outcome estimate table.
template <typename S>
Result<std::vector<S>> DeriveConstrained(
    const CompiledModel<S>& m, const std::vector<std::vector<int>>& batches) {
  // Validate that batches partition the vector set.
  {
    std::vector<uint8_t> seen(static_cast<size_t>(m.num_vectors), 0);
    for (const auto& batch : batches) {
      for (int v : batch) {
        PIE_CHECK(v >= 0 && v < m.num_vectors);
        PIE_CHECK(!seen[static_cast<size_t>(v)]);
        seen[static_cast<size_t>(v)] = 1;
      }
    }
    for (uint8_t s : seen) PIE_CHECK(s);
  }

  std::vector<S> x(static_cast<size_t>(m.num_outcomes),
                   ScalarTraits<S>::Zero());
  std::vector<uint8_t> processed(static_cast<size_t>(m.num_outcomes), 0);

  // f0[v]: contribution of processed outcomes to E[f^ | v].
  auto f0_of = [&](int v) {
    S f0 = ScalarTraits<S>::Zero();
    for (int o = 0; o < m.num_outcomes; ++o) {
      if (!processed[static_cast<size_t>(o)]) continue;
      f0 = f0 + m.p[static_cast<size_t>(v)][static_cast<size_t>(o)] *
                    x[static_cast<size_t>(o)];
    }
    return f0;
  };

  for (size_t h = 0; h < batches.size(); ++h) {
    const auto& batch = batches[h];
    // Unprocessed outcomes consistent with some member of the batch.
    std::vector<int> vars;  // outcome ids
    for (int o = 0; o < m.num_outcomes; ++o) {
      if (processed[static_cast<size_t>(o)]) continue;
      for (int v : batch) {
        if (m.Consistent(v, o)) {
          vars.push_back(o);
          break;
        }
      }
    }

    if (vars.empty()) {
      for (int v : batch) {
        if (!ScalarTraits<S>::IsZero(m.f[static_cast<size_t>(v)] - f0_of(v))) {
          return Status::Infeasible(
              "vector " + m.vector_desc[static_cast<size_t>(v)] +
              " fully determined with wrong expectation");
        }
      }
      continue;
    }
    const int n = static_cast<int>(vars.size());

    // Objective: sum_{v in batch} sum_o P(o|v) (x_o - f(v))^2
    //  => D_o = 2 sum_v P(o|v), c_o = 2 sum_v P(o|v) f(v).
    QpProblem<S> qp;
    qp.d.assign(static_cast<size_t>(n), ScalarTraits<S>::Zero());
    qp.c.assign(static_cast<size_t>(n), ScalarTraits<S>::Zero());
    const S two = ScalarTraits<S>::FromInt(2);
    for (int j = 0; j < n; ++j) {
      const int o = vars[static_cast<size_t>(j)];
      for (int v : batch) {
        const S& pvo = m.p[static_cast<size_t>(v)][static_cast<size_t>(o)];
        qp.d[static_cast<size_t>(j)] = qp.d[static_cast<size_t>(j)] + two * pvo;
        qp.c[static_cast<size_t>(j)] =
            qp.c[static_cast<size_t>(j)] +
            two * pvo * m.f[static_cast<size_t>(v)];
      }
    }

    // Unbiasedness equalities for batch members.
    std::vector<std::vector<S>> eq_rows;
    std::vector<S> eq_rhs;
    for (int v : batch) {
      std::vector<S> row(static_cast<size_t>(n), ScalarTraits<S>::Zero());
      S ps = ScalarTraits<S>::Zero();
      for (int j = 0; j < n; ++j) {
        const S& pvo = m.p[static_cast<size_t>(v)]
                          [static_cast<size_t>(vars[static_cast<size_t>(j)])];
        row[static_cast<size_t>(j)] = pvo;
        ps = ps + pvo;
      }
      const S target = m.f[static_cast<size_t>(v)] - f0_of(v);
      if (ScalarTraits<S>::IsZero(ps)) {
        if (!ScalarTraits<S>::IsZero(target)) {
          return Status::Infeasible(
              "vector " + m.vector_desc[static_cast<size_t>(v)] +
              " fully determined with wrong expectation");
        }
        continue;
      }
      eq_rows.push_back(std::move(row));
      eq_rhs.push_back(target);
    }

    // Inequalities: later batches' vectors must retain E[f^|v'] <= f(v')
    // (equation (9)), plus x >= 0.
    std::vector<std::vector<S>> in_rows;
    std::vector<S> in_rhs;
    for (size_t h2 = h + 1; h2 < batches.size(); ++h2) {
      for (int w : batches[h2]) {
        std::vector<S> row(static_cast<size_t>(n), ScalarTraits<S>::Zero());
        bool interacts = false;
        for (int j = 0; j < n; ++j) {
          const S& pwo = m.p[static_cast<size_t>(w)]
                            [static_cast<size_t>(vars[static_cast<size_t>(j)])];
          row[static_cast<size_t>(j)] = pwo;
          if (!ScalarTraits<S>::IsZero(pwo)) interacts = true;
        }
        if (!interacts) continue;
        in_rows.push_back(std::move(row));
        in_rhs.push_back(m.f[static_cast<size_t>(w)] - f0_of(w));
      }
    }
    for (int j = 0; j < n; ++j) {
      std::vector<S> row(static_cast<size_t>(n), ScalarTraits<S>::Zero());
      row[static_cast<size_t>(j)] = -ScalarTraits<S>::One();
      in_rows.push_back(std::move(row));
      in_rhs.push_back(ScalarTraits<S>::Zero());
    }
    if (static_cast<int>(in_rows.size()) > kQpMaxInequalities &&
        !std::is_same_v<S, double>) {
      return Status::OutOfRange(
          "derivation batch too large for the exact QP solver; use double "
          "scalars to enable the numeric active-set fallback");
    }

    qp.a_eq = Mat<S>(static_cast<int>(eq_rows.size()), n);
    qp.b_eq = eq_rhs;
    for (size_t i = 0; i < eq_rows.size(); ++i) {
      for (int j = 0; j < n; ++j) {
        qp.a_eq.at(static_cast<int>(i), j) = eq_rows[i][static_cast<size_t>(j)];
      }
    }
    qp.a_in = Mat<S>(static_cast<int>(in_rows.size()), n);
    qp.b_in = in_rhs;
    for (size_t i = 0; i < in_rows.size(); ++i) {
      for (int j = 0; j < n; ++j) {
        qp.a_in.at(static_cast<int>(i), j) = in_rows[i][static_cast<size_t>(j)];
      }
    }

    auto sol = SolveQpForDerivation(qp);
    if (!sol.ok()) {
      return Status::Infeasible(
          "batch " + std::to_string(h) +
          " admits no nonnegative unbiased extension: " +
          sol.status().message());
    }
    for (int j = 0; j < n; ++j) {
      x[static_cast<size_t>(vars[static_cast<size_t>(j)])] =
          sol.value().x[static_cast<size_t>(j)];
      processed[static_cast<size_t>(vars[static_cast<size_t>(j)])] = 1;
    }
  }
  return x;
}

/// Convenience: singleton batches in the given order => f^(+≺).
template <typename S>
Result<std::vector<S>> DeriveConstrainedOrder(const CompiledModel<S>& m,
                                              const std::vector<int>& order) {
  std::vector<std::vector<int>> batches;
  batches.reserve(order.size());
  for (int v : order) batches.push_back({v});
  return DeriveConstrained(m, batches);
}

/// Convenience: batches grouped by an integer key (ascending).
template <typename S>
std::vector<std::vector<int>> BatchesByKey(
    const CompiledModel<S>& m,
    const std::function<int(const std::vector<int>&)>& key) {
  std::map<int, std::vector<int>> grouped;
  for (int v = 0; v < m.num_vectors; ++v) {
    grouped[key(m.vector_values[static_cast<size_t>(v)])].push_back(v);
  }
  std::vector<std::vector<int>> batches;
  batches.reserve(grouped.size());
  for (auto& [k, vs] : grouped) batches.push_back(std::move(vs));
  return batches;
}

}  // namespace pie
