// Primal active-set solver for convex QPs with a positive diagonal Hessian
// (double precision) -- the scalable companion to the exact enumeration
// solver in qp.h, used when a derivation batch has too many inequality
// constraints for subset enumeration.
//
//   minimize    (1/2) x^T D x - c^T x        (D diagonal, D_ii > 0)
//   subject to  A_eq x  = b_eq
//               A_in x <= b_in
//
// Standard method: start from a feasible vertex (phase-1 simplex after a
// x = x+ - x- split), repeatedly solve the equality-constrained subproblem
// on the working set via the Schur complement (G D^-1 G^T) system, take the
// longest feasible step toward its solution (adding the blocking constraint
// to the working set), and drop constraints with negative multipliers at
// stationary points. Convex objective + anti-cycling tolerance discipline
// give convergence; an iteration cap returns Internal on pathological
// inputs.

#pragma once

#include <vector>

#include "deriver/qp.h"

namespace pie {

/// Solves the QP numerically. Status: Infeasible when phase 1 finds no
/// feasible point; Internal if the iteration cap is hit.
Result<QpSolution<double>> SolveQpActiveSet(const QpProblem<double>& qp);

/// Dispatch used by the derivation engine: exact enumeration when the
/// inequality count permits, active set otherwise. The generic template is
/// exact-only (Rational has no numeric fallback).
template <typename S>
Result<QpSolution<S>> SolveQpForDerivation(const QpProblem<S>& qp) {
  return SolveDiagonalQp(qp);
}

template <>
Result<QpSolution<double>> SolveQpForDerivation(const QpProblem<double>& qp);

}  // namespace pie
