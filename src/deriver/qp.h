// Convex quadratic programming with a positive diagonal Hessian, solved
// exactly by enumeration of active sets.
//
//   minimize    (1/2) x^T D x - c^T x        (D diagonal, D_ii > 0)
//   subject to  A_eq x  = b_eq
//               A_in x <= b_in
//
// The derivation engine's batches (Algorithm 2 / the f^(+≺) construction)
// produce QPs with a handful of variables and constraints, so we trade
// asymptotics for certainty: every subset of inequality constraints is
// tried as the active set; a subset whose KKT system is solvable, primal
// feasible, and dual feasible is the global optimum (the objective is
// strictly convex). With Rational scalars the solution is exact, which is
// what lets tests assert the paper's closed forms to the last digit.
//
// The number of inequality rows is capped (kMaxInequalities); derivation
// domains beyond that should use a numerical QP instead.

#pragma once

#include <vector>

#include "deriver/linalg.h"
#include "deriver/scalar_traits.h"
#include "util/status.h"

namespace pie {

inline constexpr int kQpMaxInequalities = 22;

template <typename S>
struct QpProblem {
  Vec<S> d;    ///< diagonal of D; all entries must be positive
  Vec<S> c;    ///< linear term (see objective above)
  Mat<S> a_eq;
  Vec<S> b_eq;
  Mat<S> a_in;
  Vec<S> b_in;
};

template <typename S>
struct QpSolution {
  Vec<S> x;
  S objective;
};

namespace internal {

/// Row-reduces [A|b]; returns the list of independent row indices, or
/// Infeasible if a dependent row is inconsistent (0 = nonzero).
template <typename S>
Result<std::vector<int>> IndependentRows(const Mat<S>& a, const Vec<S>& b) {
  const int m = a.rows();
  const int n = a.cols();
  Mat<S> work(m, n + 1);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) work.at(i, j) = a.at(i, j);
    work.at(i, n) = b[static_cast<size_t>(i)];
  }
  std::vector<int> keep;
  std::vector<int> rows(static_cast<size_t>(m));
  for (int i = 0; i < m; ++i) rows[static_cast<size_t>(i)] = i;

  int rank_row = 0;
  for (int col = 0; col < n && rank_row < m; ++col) {
    int pivot = -1;
    for (int i = rank_row; i < m; ++i) {
      if (!ScalarTraits<S>::IsZero(work.at(i, col))) {
        pivot = i;
        break;
      }
    }
    if (pivot < 0) continue;
    if (pivot != rank_row) {
      for (int j = 0; j <= n; ++j) {
        std::swap(work.at(pivot, j), work.at(rank_row, j));
      }
      std::swap(rows[static_cast<size_t>(pivot)],
                rows[static_cast<size_t>(rank_row)]);
    }
    keep.push_back(rows[static_cast<size_t>(rank_row)]);
    for (int i = rank_row + 1; i < m; ++i) {
      if (ScalarTraits<S>::IsZero(work.at(i, col))) continue;
      const S factor = work.at(i, col) / work.at(rank_row, col);
      for (int j = col; j <= n; ++j) {
        work.at(i, j) = work.at(i, j) - factor * work.at(rank_row, j);
      }
    }
    ++rank_row;
  }
  // Any remaining row must be all-zero including its RHS.
  for (int i = rank_row; i < m; ++i) {
    if (!ScalarTraits<S>::IsZero(work.at(i, n))) {
      return Status::Infeasible("inconsistent equality constraints");
    }
  }
  return keep;
}

}  // namespace internal

/// Solves the diagonal QP; see file comment. Returns Infeasible when the
/// constraint set is empty (or when every KKT system is singular, which for
/// consistent inputs means infeasibility).
template <typename S>
Result<QpSolution<S>> SolveDiagonalQp(const QpProblem<S>& qp) {
  const int n = static_cast<int>(qp.d.size());
  PIE_CHECK(static_cast<int>(qp.c.size()) == n);
  PIE_CHECK(qp.a_eq.cols() == n || qp.a_eq.rows() == 0);
  PIE_CHECK(qp.a_in.cols() == n || qp.a_in.rows() == 0);
  PIE_CHECK(qp.a_in.rows() <= kQpMaxInequalities);
  for (const S& di : qp.d) {
    PIE_CHECK(!ScalarTraits<S>::IsZero(di) && !ScalarTraits<S>::IsNegative(di));
  }

  // Deduplicate dependent equality rows (or fail fast on inconsistency).
  auto keep = internal::IndependentRows(qp.a_eq, qp.b_eq);
  if (!keep.ok()) return keep.status();
  const std::vector<int>& eq_rows = keep.value();
  const int m_eq = static_cast<int>(eq_rows.size());
  const int m_in = qp.a_in.rows();

  auto objective = [&](const Vec<S>& x) {
    S obj = ScalarTraits<S>::Zero();
    for (int i = 0; i < n; ++i) {
      const S xi = x[static_cast<size_t>(i)];
      obj = obj + qp.d[static_cast<size_t>(i)] * xi * xi /
                      ScalarTraits<S>::FromInt(2) -
            qp.c[static_cast<size_t>(i)] * xi;
    }
    return obj;
  };

  for (uint32_t mask = 0; mask < (1u << m_in); ++mask) {
    // Active rows: all (independent) equalities plus the subset `mask`.
    std::vector<std::pair<const Mat<S>*, int>> active;
    for (int e : eq_rows) active.push_back({&qp.a_eq, e});
    int n_active_in = 0;
    for (int i = 0; i < m_in; ++i) {
      if ((mask >> i) & 1u) {
        active.push_back({&qp.a_in, i});
        ++n_active_in;
      }
    }
    const int k = static_cast<int>(active.size());
    if (k > n) continue;  // cannot be linearly independent

    // Build G (k x n), h (k); solve (G D^-1 G^T) lambda = G D^-1 c - h,
    // then x = D^-1 (c - G^T lambda).
    Mat<S> gram(k, k);
    Vec<S> rhs(static_cast<size_t>(k), ScalarTraits<S>::Zero());
    auto row_coeff = [&](int idx, int j) -> const S& {
      return active[static_cast<size_t>(idx)].first->at(
          active[static_cast<size_t>(idx)].second, j);
    };
    auto row_rhs = [&](int idx) -> const S& {
      const auto& [matrix, row] = active[static_cast<size_t>(idx)];
      return matrix == &qp.a_eq ? qp.b_eq[static_cast<size_t>(row)]
                                : qp.b_in[static_cast<size_t>(row)];
    };
    for (int a = 0; a < k; ++a) {
      S acc = ScalarTraits<S>::Zero();
      for (int j = 0; j < n; ++j) {
        acc = acc + row_coeff(a, j) * qp.c[static_cast<size_t>(j)] /
                        qp.d[static_cast<size_t>(j)];
      }
      rhs[static_cast<size_t>(a)] = acc - row_rhs(a);
      for (int b = a; b < k; ++b) {
        S dot = ScalarTraits<S>::Zero();
        for (int j = 0; j < n; ++j) {
          dot = dot + row_coeff(a, j) * row_coeff(b, j) /
                          qp.d[static_cast<size_t>(j)];
        }
        gram.at(a, b) = dot;
        gram.at(b, a) = dot;
      }
    }
    Result<Vec<S>> lambda = k == 0
                                ? Result<Vec<S>>(Vec<S>{})
                                : SolveLinearSystem(gram, rhs);
    if (!lambda.ok()) continue;  // dependent active set; a subset covers it

    Vec<S> x(static_cast<size_t>(n));
    for (int j = 0; j < n; ++j) {
      S acc = qp.c[static_cast<size_t>(j)];
      for (int a = 0; a < k; ++a) {
        acc = acc - row_coeff(a, j) * lambda.value()[static_cast<size_t>(a)];
      }
      x[static_cast<size_t>(j)] = acc / qp.d[static_cast<size_t>(j)];
    }

    // Dual feasibility: multipliers of active inequalities must be >= 0.
    bool valid = true;
    for (int a = m_eq; a < k && valid; ++a) {
      if (ScalarTraits<S>::IsNegative(
              lambda.value()[static_cast<size_t>(a)])) {
        valid = false;
      }
    }
    // Primal feasibility of inactive inequalities.
    for (int i = 0; i < m_in && valid; ++i) {
      if ((mask >> i) & 1u) continue;
      S acc = ScalarTraits<S>::Zero();
      for (int j = 0; j < n; ++j) {
        acc = acc + qp.a_in.at(i, j) * x[static_cast<size_t>(j)];
      }
      if (ScalarTraits<S>::IsNegative(qp.b_in[static_cast<size_t>(i)] - acc)) {
        valid = false;
      }
    }
    if (!valid) continue;

    QpSolution<S> sol;
    sol.objective = objective(x);
    sol.x = std::move(x);
    return sol;
  }
  return Status::Infeasible("QP has no feasible KKT point");
}

}  // namespace pie
