// CompileModel and the builders are templates (double / Rational); this
// translation unit forces the common instantiations so template bugs are
// caught when the library builds, not first at test link time.

#include "deriver/model.h"

namespace pie {

template struct DiscreteModel<double>;
template struct DiscreteModel<Rational>;
template CompiledModel<double> CompileModel(const DiscreteModel<double>&);
template CompiledModel<Rational> CompileModel(const DiscreteModel<Rational>&);

}  // namespace pie
