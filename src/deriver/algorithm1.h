// Algorithm 1 of the paper: the order-based estimator f^(≺).
//
// Data vectors are processed in a caller-supplied sequence (a linearization
// of the order ≺). For each vector v, the outcomes consistent with v that
// were not already assigned by preceding vectors all receive the unique
// value that makes the estimator unbiased for v (equation (6)). The result,
// when it exists, is the unique order-based estimator and is Pareto optimal
// (Lemma 3.1); it may fail to exist (Infeasible) or come out negative on
// some outcomes -- use DeriveConstrained (algorithm2.h) to force
// nonnegativity.

#pragma once

#include <algorithm>
#include <functional>
#include <vector>

#include "deriver/model.h"
#include "deriver/scalar_traits.h"
#include "util/status.h"

namespace pie {

/// Runs Algorithm 1 over `order` (a permutation of 0..num_vectors-1, most
/// preferred first). Returns the per-outcome estimate table.
template <typename S>
Result<std::vector<S>> DeriveOrderBased(const CompiledModel<S>& m,
                                        const std::vector<int>& order) {
  PIE_CHECK(static_cast<int>(order.size()) == m.num_vectors);
  std::vector<S> x(static_cast<size_t>(m.num_outcomes),
                   ScalarTraits<S>::Zero());
  std::vector<uint8_t> processed(static_cast<size_t>(m.num_outcomes), 0);

  for (int v : order) {
    PIE_CHECK(v >= 0 && v < m.num_vectors);
    // Contribution of already-processed outcomes to E[f^ | v].
    S f0 = ScalarTraits<S>::Zero();
    S ps = ScalarTraits<S>::Zero();
    for (int o = 0; o < m.num_outcomes; ++o) {
      const S& pvo = m.p[static_cast<size_t>(v)][static_cast<size_t>(o)];
      if (ScalarTraits<S>::IsZero(pvo)) continue;
      if (processed[static_cast<size_t>(o)]) {
        f0 = f0 + pvo * x[static_cast<size_t>(o)];
      } else {
        ps = ps + pvo;
      }
    }
    const S target = m.f[static_cast<size_t>(v)] - f0;
    if (ScalarTraits<S>::IsZero(ps)) {
      if (!ScalarTraits<S>::IsZero(target)) {
        return Status::Infeasible(
            "no unbiased order-based estimator: vector " +
            m.vector_desc[static_cast<size_t>(v)] +
            " is fully determined by preceding outcomes with the wrong "
            "expectation");
      }
      continue;
    }
    const S value = target / ps;
    for (int o = 0; o < m.num_outcomes; ++o) {
      const S& pvo = m.p[static_cast<size_t>(v)][static_cast<size_t>(o)];
      if (ScalarTraits<S>::IsZero(pvo) || processed[static_cast<size_t>(o)]) {
        continue;
      }
      x[static_cast<size_t>(o)] = value;
      processed[static_cast<size_t>(o)] = 1;
    }
  }
  return x;
}

/// Convenience: builds a processing order by an integer key (stable: ties
/// keep data-vector id order). Smaller keys are processed first.
template <typename S>
std::vector<int> OrderByKey(const CompiledModel<S>& m,
                            const std::function<int(const std::vector<int>&)>& key) {
  std::vector<int> order(static_cast<size_t>(m.num_vectors));
  for (int v = 0; v < m.num_vectors; ++v) order[static_cast<size_t>(v)] = v;
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return key(m.vector_values[static_cast<size_t>(a)]) <
           key(m.vector_values[static_cast<size_t>(b)]);
  });
  return order;
}

}  // namespace pie
