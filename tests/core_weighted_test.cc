// Tests for the weighted PPS known-seeds max estimators (Section 5.2 and
// Appendix A): determining vectors, the Figure 3 closed form, unbiasedness
// by quadrature and Monte Carlo, variance ratios, and the monotonicity /
// dominance claims.

#include <cmath>

#include "core/ht.h"
#include "core/max_weighted.h"
#include "gtest/gtest.h"
#include "sampling/poisson.h"
#include "util/random.h"
#include "util/stats.h"

namespace pie {
namespace {

// ---------------------------------------------------------------------------
// max^(HT) weighted
// ---------------------------------------------------------------------------

TEST(MaxHtWeightedTest, PositiveIffMaxIdentifiable) {
  const MaxHtWeighted est({10.0, 10.0});
  // v = (6, 2): both sampled when u1 <= .6, u2 <= .2.
  {
    const auto o = SamplePpsWithSeeds({6, 2}, {10, 10}, {0.5, 0.1});
    ASSERT_TRUE(o.sampled[0] && o.sampled[1]);
    EXPECT_NEAR(est.Estimate(o), 6.0 / (0.6 * 0.6), 1e-12);
  }
  {
    // Entry 2 missing but bound u2*tau = 5 < 6: max still known.
    const auto o = SamplePpsWithSeeds({6, 2}, {10, 10}, {0.5, 0.5});
    ASSERT_TRUE(o.sampled[0] && !o.sampled[1]);
    EXPECT_NEAR(est.Estimate(o), 6.0 / (0.6 * 0.6), 1e-12);
  }
  {
    // Entry 2 missing with bound 8 > 6: max not identifiable.
    const auto o = SamplePpsWithSeeds({6, 2}, {10, 10}, {0.5, 0.8});
    EXPECT_EQ(est.Estimate(o), 0.0);
  }
}

TEST(MaxHtWeightedTest, PositiveProbFormula) {
  const MaxHtWeighted est({10.0, 20.0});
  EXPECT_NEAR(est.PositiveProb({6, 2}), 0.6 * 0.3, 1e-12);
  EXPECT_NEAR(est.PositiveProb({15, 2}), 1.0 * 0.75, 1e-12);
  EXPECT_EQ(est.PositiveProb({0, 0}), 0.0);
}

TEST(MaxHtWeightedTest, UnbiasedOverSeeds) {
  const std::vector<double> tau = {10.0, 10.0};
  const MaxHtWeighted est(tau);
  Rng rng(9);
  for (auto v : {std::vector<double>{6, 2}, {3, 3}, {9, 0}, {0, 4}}) {
    RunningStat stat;
    for (int t = 0; t < 300000; ++t) {
      stat.Add(est.Estimate(SamplePps(v, tau, rng)));
    }
    EXPECT_NEAR(stat.mean(), std::max(v[0], v[1]),
                5.0 * stat.standard_error() + 1e-9);
  }
}

TEST(MaxHtWeightedTest, VarianceFormula) {
  const MaxHtWeighted est({10.0, 10.0});
  // rho = max/tau: Var = max^2 (1/rho^2 - 1); normalized: 1 - rho^2.
  const double rho = 0.5;
  EXPECT_NEAR(est.Variance({5, 3}) / 100.0, 1.0 - rho * rho, 1e-12);
  EXPECT_EQ(est.Variance({0, 0}), 0.0);
  // Fully sampled data has zero variance.
  EXPECT_NEAR(est.Variance({12, 15}), 0.0, 1e-12);
}

TEST(MaxHtWeightedTest, VarianceMatchesMonteCarlo) {
  const std::vector<double> tau = {8.0, 12.0};
  const MaxHtWeighted est(tau);
  const std::vector<double> v = {4.0, 3.0};
  Rng rng(17);
  RunningStat stat;
  for (int t = 0; t < 400000; ++t) {
    stat.Add(est.Estimate(SamplePps(v, tau, rng)));
  }
  EXPECT_NEAR(stat.sample_variance(), est.Variance(v),
              0.03 * est.Variance(v));
}

// ---------------------------------------------------------------------------
// max^(L) weighted: determining vectors
// ---------------------------------------------------------------------------

TEST(MaxLWeightedTest, DeterminingVectorTable) {
  const MaxLWeightedTwo est(10.0, 10.0);
  {  // S = {}
    const auto o = SamplePpsWithSeeds({1, 1}, {10, 10}, {0.5, 0.5});
    const auto phi = est.DeterminingVector(o);
    EXPECT_EQ(phi[0], 0.0);
    EXPECT_EQ(phi[1], 0.0);
  }
  {  // S = {1}: phi = (v1, min(u2 tau2, v1)) -- bound below v1.
    const auto o = SamplePpsWithSeeds({6, 2}, {10, 10}, {0.1, 0.5});
    const auto phi = est.DeterminingVector(o);
    EXPECT_EQ(phi[0], 6.0);
    EXPECT_EQ(phi[1], 5.0);
  }
  {  // S = {1}: bound above v1 clips to v1.
    const auto o = SamplePpsWithSeeds({6, 2}, {10, 10}, {0.1, 0.9});
    const auto phi = est.DeterminingVector(o);
    EXPECT_EQ(phi[0], 6.0);
    EXPECT_EQ(phi[1], 6.0);
  }
  {  // S = {2}
    const auto o = SamplePpsWithSeeds({6, 2}, {10, 10}, {0.9, 0.1});
    const auto phi = est.DeterminingVector(o);
    EXPECT_EQ(phi[0], 2.0);  // min(9, 2)
    EXPECT_EQ(phi[1], 2.0);
  }
  {  // S = {1,2}
    const auto o = SamplePpsWithSeeds({6, 2}, {10, 10}, {0.1, 0.1});
    const auto phi = est.DeterminingVector(o);
    EXPECT_EQ(phi[0], 6.0);
    EXPECT_EQ(phi[1], 2.0);
  }
}

// ---------------------------------------------------------------------------
// max^(L) weighted: Figure 3 closed form
// ---------------------------------------------------------------------------

TEST(MaxLWeightedTest, EqualValuesFormula) {
  // Equation (25): est(v,v) = v / (rho1 + (1-rho1) rho2).
  const double tau1 = 10.0, tau2 = 20.0;
  const MaxLWeightedTwo est(tau1, tau2);
  for (double v : {1.0, 5.0, 9.0}) {
    const double rho1 = v / tau1;
    const double rho2 = v / tau2;
    EXPECT_NEAR(est.EstimateFromDeterminingVector(v, v),
                v / (rho1 + (1 - rho1) * rho2), 1e-10);
  }
  // v above both thresholds: estimate exactly v.
  EXPECT_NEAR(est.EstimateFromDeterminingVector(25.0, 25.0), 25.0, 1e-10);
}

TEST(MaxLWeightedTest, CertainLowEntryFormula) {
  // Equation (26): lo >= tau_lo => est = lo + (hi - lo)/min(1, hi/tau_hi).
  const MaxLWeightedTwo est(10.0, 4.0);
  EXPECT_NEAR(est.EstimateFromDeterminingVector(8.0, 5.0),
              5.0 + 3.0 / 0.8, 1e-10);
  EXPECT_NEAR(est.EstimateFromDeterminingVector(12.0, 5.0), 12.0, 1e-10);
}

TEST(MaxLWeightedTest, CertainHighEntryIsExact) {
  // hi >= tau_hi and lo below its threshold: estimate hi (Appendix A).
  const MaxLWeightedTwo est(10.0, 10.0);
  EXPECT_NEAR(est.EstimateFromDeterminingVector(11.0, 3.0), 11.0, 1e-10);
}

TEST(MaxLWeightedTest, SymmetricInCoordinates) {
  const MaxLWeightedTwo a(10.0, 20.0);
  const MaxLWeightedTwo b(20.0, 10.0);
  for (double v1 : {1.0, 4.0, 15.0}) {
    for (double v2 : {0.5, 4.0, 12.0}) {
      EXPECT_NEAR(a.EstimateFromDeterminingVector(v1, v2),
                  b.EstimateFromDeterminingVector(v2, v1), 1e-10);
    }
  }
}

TEST(MaxLWeightedTest, ContinuousAcrossCaseBoundaries) {
  const double tau1 = 10.0, tau2 = 6.0;
  const MaxLWeightedTwo est(tau1, tau2);
  const double eps = 1e-7;
  // Boundary lo = tau_lo (cases (26) <-> (30)).
  EXPECT_NEAR(est.EstimateFromDeterminingVector(8.0, tau2 - eps),
              est.EstimateFromDeterminingVector(8.0, tau2 + eps), 1e-4);
  // Boundary hi = tau_lo (cases (29) <-> (30)).
  EXPECT_NEAR(est.EstimateFromDeterminingVector(tau2 - eps, 2.0),
              est.EstimateFromDeterminingVector(tau2 + eps, 2.0), 1e-4);
  // Boundary hi = tau_hi (cases (30) <-> exact).
  EXPECT_NEAR(est.EstimateFromDeterminingVector(tau1 - eps, 2.0),
              est.EstimateFromDeterminingVector(tau1 + eps, 2.0), 1e-4);
  // Boundary hi = lo (equation (29) as Delta -> 0 vs equation (25)).
  EXPECT_NEAR(est.EstimateFromDeterminingVector(4.0, 4.0 - eps),
              est.EstimateFromDeterminingVector(4.0, 4.0), 1e-4);
}

TEST(MaxLWeightedTest, MonotoneInInformation) {
  // Monotonicity (Section 2.1): a tighter bound on the unseen entry (a
  // smaller consistent set) can only increase the estimate. Note the
  // estimate is NOT monotone in the sampled value hi -- outcomes with
  // different sampled values carry disjoint consistent sets, so monotonicity
  // does not relate them.
  const MaxLWeightedTwo est(10.0, 8.0);
  double prev = -1.0;
  for (double lo = 3.0; lo >= 0.02; lo -= 0.02) {
    const double e = est.EstimateFromDeterminingVector(3.0, lo);
    EXPECT_GE(e, prev - 1e-9) << "lo=" << lo;
    prev = e;
  }
  // The exact-value outcome refines every bound outcome at or above it:
  // est(v1, v2_exact) >= est(v1, bound) for bound >= v2.
  for (double bound : {0.5, 1.0, 2.0, 3.0}) {
    EXPECT_GE(est.EstimateFromDeterminingVector(3.0, 0.5),
              est.EstimateFromDeterminingVector(3.0, bound) - 1e-9);
  }
}

TEST(MaxLWeightedTest, NonnegativeOnGrid) {
  const MaxLWeightedTwo est(10.0, 7.0);
  for (double hi = 0.1; hi <= 12.0; hi += 0.3) {
    for (double lo = 0.01; lo <= hi; lo += 0.25) {
      EXPECT_GE(est.EstimateFromDeterminingVector(hi, lo), -1e-10);
    }
  }
}

// ---------------------------------------------------------------------------
// max^(L) weighted: unbiasedness and variance
// ---------------------------------------------------------------------------

class MaxLWeightedUnbiasedTest
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(MaxLWeightedUnbiasedTest, MeanEqualsMaxByQuadrature) {
  const auto [tau1, tau2] = GetParam();
  const MaxLWeightedTwo est(tau1, tau2);
  for (double v1 : {0.0, 0.4, 2.0, 5.0, 0.9 * tau1, 1.5 * tau1}) {
    for (double v2 : {0.0, 0.7, 2.0, 0.9 * tau2, 1.2 * tau2}) {
      const double mx = std::max(v1, v2);
      EXPECT_NEAR(est.Mean(v1, v2), mx, 1e-5 * std::max(1.0, mx))
          << "tau=(" << tau1 << "," << tau2 << ") v=(" << v1 << "," << v2
          << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Thresholds, MaxLWeightedUnbiasedTest,
    ::testing::Values(std::make_tuple(10.0, 10.0), std::make_tuple(10.0, 5.0),
                      std::make_tuple(3.0, 20.0)));

TEST(MaxLWeightedTest, MeanAndVarianceMatchMonteCarlo) {
  const double tau1 = 10.0, tau2 = 10.0;
  const MaxLWeightedTwo est(tau1, tau2);
  const std::vector<double> v = {4.0, 2.0};
  Rng rng(5);
  RunningStat stat;
  for (int t = 0; t < 300000; ++t) {
    stat.Add(est.Estimate(SamplePps(v, {tau1, tau2}, rng)));
  }
  EXPECT_NEAR(stat.mean(), 4.0, 5.0 * stat.standard_error());
  EXPECT_NEAR(stat.sample_variance(), est.Variance(4.0, 2.0),
              0.05 * est.Variance(4.0, 2.0));
}

TEST(MaxLWeightedTest, DisjointSupportVarianceStructure) {
  // Erratum (documented in DESIGN.md): Section 5.2 claims the estimator on
  // data (rho*tau, 0) "equals tau* with probability rho and 0 otherwise"
  // (variance (rho - rho^2) tau^2). Only the *average* over the unseen
  // entry's seed is tau*; the actual order-based estimator varies with the
  // seed bound (a log spread), so its variance is strictly larger. The
  // measured structure, verified here, is Var((rho tau, 0)) slightly above
  // (1 - rho^2) tau^2 / 2, i.e. VAR[HT]/VAR[L] in [1.9, 2.01] at min = 0.
  const double tau = 10.0;
  const MaxLWeightedTwo est(tau, tau);
  const MaxHtWeighted ht({tau, tau});
  for (double rho : {0.05, 0.1, 0.5, 0.9}) {
    for (bool swap : {false, true}) {
      const double v1 = swap ? 0.0 : rho * tau;
      const double v2 = swap ? rho * tau : 0.0;
      const double var_l = est.Variance(v1, v2);
      const double var_ht = ht.Variance({v1, v2});
      const double half_ht = 0.5 * (1.0 - rho * rho) * tau * tau;
      EXPECT_GE(var_l, half_ht * 0.999) << rho;
      EXPECT_LE(var_l, half_ht * 1.05) << rho;
      EXPECT_GE(var_ht / var_l, 1.9) << rho;
      // ... and strictly above the paper's idealized two-point value.
      EXPECT_GT(var_l, (rho - rho * rho) * tau * tau) << rho;
    }
  }
}

TEST(MaxLWeightedTest, DominatesHtEverywhere) {
  // max^(L) dominates max^(HT); the variance ratio grows with min/max and
  // at min = max equals (1+rho)(2-rho)/(rho(1-rho)) exactly (from the
  // two-point distribution of the estimator on equal-valued data).
  const double tau = 10.0;
  const MaxLWeightedTwo l(tau, tau);
  const MaxHtWeighted ht({tau, tau});
  for (double rho : {0.1, 0.3, 0.7, 0.95}) {
    double prev_ratio = 0.0;
    for (double frac : {0.0, 0.3, 0.8, 1.0}) {
      const double v1 = rho * tau;
      const double v2 = frac * v1;
      const double var_l = l.Variance(v1, v2);
      const double var_ht = ht.Variance({v1, v2});
      if (var_l <= 0) continue;
      const double ratio = var_ht / var_l;
      EXPECT_GE(ratio, 1.9) << "rho=" << rho << " frac=" << frac;
      EXPECT_GE(ratio, prev_ratio - 1e-6);  // increasing in min/max
      prev_ratio = ratio;
    }
    const double expected_at_equal =
        (1.0 + rho) * (2.0 - rho) / (rho * (1.0 - rho));
    EXPECT_NEAR(ht.Variance({rho * tau, rho * tau}) /
                    l.Variance(rho * tau, rho * tau),
                expected_at_equal, 1e-4 * expected_at_equal)
        << rho;
  }
}

TEST(MaxLWeightedTest, ZeroDataHasZeroEstimateAndVariance) {
  const MaxLWeightedTwo est(5.0, 5.0);
  EXPECT_EQ(est.EstimateFromDeterminingVector(0.0, 0.0), 0.0);
  EXPECT_NEAR(est.Mean(0.0, 0.0), 0.0, 1e-12);
  EXPECT_NEAR(est.Variance(0.0, 0.0), 0.0, 1e-12);
}

TEST(MaxLWeightedTest, FullyDeterminedDataIsExact) {
  // Both values above their thresholds: always sampled, zero variance.
  const MaxLWeightedTwo est(5.0, 5.0);
  EXPECT_NEAR(est.Mean(7.0, 6.0), 7.0, 1e-10);
  EXPECT_NEAR(est.Variance(7.0, 6.0), 0.0, 1e-10);
}

TEST(MaxLWeightedTest, UnboundedButIntegrable) {
  // The estimate grows like log(1/lo) as the bound shrinks -- large but
  // finite, and the variance stays bounded (Lemma 2.1 discussion).
  const MaxLWeightedTwo est(10.0, 10.0);
  const MaxHtWeighted ht({10.0, 10.0});
  const double big = est.EstimateFromDeterminingVector(1.0, 1e-9);
  EXPECT_GT(big, 10.0);
  EXPECT_TRUE(std::isfinite(big));
  EXPECT_LT(est.Variance(1.0, 0.0), 0.53 * ht.Variance({1.0, 0.0}));
}

}  // namespace
}  // namespace pie
