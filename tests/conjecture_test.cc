// Extending the paper's verified range for its Section 4.1 conjecture.
//
// The paper conjectures that the uniform-p max^(L) estimator is monotone,
// nonnegative, and dominates max^(HT) for all r, and reports verifying the
// sufficient coefficient conditions of Lemma 4.2 for r <= 4. Here we
// verify (a) the Lemma 4.2 coefficient conditions up to r = 16 across a p
// grid, and (b) the monotonicity property itself -- estimates are
// nondecreasing under information refinement (adding sampled entries) --
// directly on outcome pairs up to r = 6, plus dominance over HT by exact
// enumeration. Also the general-p closed-form variance for r = 2.

#include <cmath>
#include <vector>

#include "core/enumerate.h"
#include "core/functions.h"
#include "core/ht.h"
#include "core/max_oblivious.h"
#include "gtest/gtest.h"
#include "util/random.h"

namespace pie {
namespace {

ObliviousOutcome MakeOutcome(const std::vector<double>& values,
                             const std::vector<double>& p, uint32_t mask) {
  std::vector<double> seeds(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    seeds[i] = ((mask >> i) & 1u) ? 0.0 : 1.0 - 1e-12;
  }
  return SampleObliviousWithSeeds(values, p, seeds);
}

class Lemma42SweepTest : public ::testing::TestWithParam<int> {};

TEST_P(Lemma42SweepTest, CoefficientConditionsHoldBeyondPaperRange) {
  // alpha_1 > 0, alpha_i < 0 for i > 1, alpha_1 <= p^-r: sufficient for
  // monotonicity, nonnegativity, and HT dominance (Lemma 4.2). The paper
  // checked r <= 4; we sweep a probability grid at each r up to 16.
  const int r = GetParam();
  for (double p : {0.05, 0.1, 0.2, 0.35, 0.5, 0.65, 0.8, 0.95}) {
    const MaxLUniform est(r, p);
    EXPECT_GT(est.alpha()[0], 0.0) << "r=" << r << " p=" << p;
    // p^-r overflows no earlier than r=16 at p=0.05? 20^16 ~ 6.5e20: fine.
    EXPECT_LE(est.alpha()[0], std::pow(p, -r) * (1 + 1e-9))
        << "r=" << r << " p=" << p;
    for (int i = 1; i < r; ++i) {
      // Nonpositive; at large r and p near 1 the trailing coefficients
      // (~(1-p)^{i-1}) underflow below the prefix sums' ULP and round to
      // exactly 0, so strict negativity cannot be asserted in double.
      EXPECT_LE(est.alpha()[static_cast<size_t>(i)], 0.0)
          << "r=" << r << " p=" << p << " i=" << i;
      if (r <= 8 || p <= 0.8) {
        EXPECT_LT(est.alpha()[static_cast<size_t>(i)], 0.0)
            << "r=" << r << " p=" << p << " i=" << i;
      }
    }
    // Prefix sums must stay positive (estimates of all-equal vectors).
    for (double a : est.prefix_sums()) {
      EXPECT_GT(a, 0.0) << "r=" << r << " p=" << p;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(UpToSixteen, Lemma42SweepTest,
                         ::testing::Values(2, 3, 4, 5, 6, 8, 10, 12, 16));

class MonotonicityConjectureTest
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(MonotonicityConjectureTest, RefinementNeverDecreasesEstimate) {
  // Direct check of the conjecture's monotonicity claim: for every data
  // vector and every pair of nested sampled sets S1 subset S2, the
  // estimate under S2 is at least the estimate under S1.
  const auto [r, p] = GetParam();
  const MaxLUniform est(r, p);
  const std::vector<double> probs(static_cast<size_t>(r), p);
  Rng rng(1000 + r);
  for (int t = 0; t < 12; ++t) {
    std::vector<double> v(static_cast<size_t>(r));
    for (double& x : v) {
      const double roll = rng.UniformDouble();
      x = roll < 0.2 ? 0.0 : (roll < 0.45 ? 4.0 : rng.UniformDouble(0, 9));
    }
    std::vector<double> cache(1u << r, 0.0);
    for (uint32_t mask = 0; mask < (1u << r); ++mask) {
      cache[mask] = est.Estimate(MakeOutcome(v, probs, mask));
    }
    for (uint32_t mask = 0; mask < (1u << r); ++mask) {
      for (int add = 0; add < r; ++add) {
        if ((mask >> add) & 1u) continue;
        const uint32_t bigger = mask | (1u << add);
        EXPECT_GE(cache[bigger], cache[mask] - 1e-9)
            << "r=" << r << " p=" << p << " mask=" << mask << "+" << add;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    BeyondPaperRange, MonotonicityConjectureTest,
    ::testing::Combine(::testing::Values(5, 6),
                       ::testing::Values(0.15, 0.5, 0.85)));

TEST(ConjectureTest, DominanceOverHtAtRFiveAndSix) {
  for (int r : {5, 6}) {
    for (double p : {0.2, 0.6}) {
      const MaxLUniform est(r, p);
      const std::vector<double> probs(static_cast<size_t>(r), p);
      Rng rng(77 + r);
      for (int t = 0; t < 8; ++t) {
        std::vector<double> v(static_cast<size_t>(r));
        for (double& x : v) x = rng.UniformDouble(0, 6);
        EXPECT_LE(est.Variance(v),
                  ObliviousHtVariance(v, probs, MaxOf) + 1e-9)
            << "r=" << r << " p=" << p;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Closed-form r = 2 variance for arbitrary (p1, p2)
// ---------------------------------------------------------------------------

class MaxLTwoClosedFormTest
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(MaxLTwoClosedFormTest, MatchesEnumeration) {
  const auto [p1, p2] = GetParam();
  const MaxLTwo est(p1, p2);
  Rng rng(9);
  for (int t = 0; t < 50; ++t) {
    const double v1 = rng.UniformDouble(0, 10);
    const double v2 = rng.UniformDouble(0, 10);
    EXPECT_NEAR(est.VarianceClosedForm(v1, v2), est.Variance(v1, v2),
                1e-9 * std::max(1.0, est.Variance(v1, v2)))
        << v1 << "," << v2;
  }
  // Degenerate corners.
  EXPECT_NEAR(est.VarianceClosedForm(0, 0), 0.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MaxLTwoClosedFormTest,
    ::testing::Values(std::make_tuple(0.5, 0.5), std::make_tuple(0.1, 0.9),
                      std::make_tuple(0.3, 0.3), std::make_tuple(0.99, 0.01)));

}  // namespace
}  // namespace pie
