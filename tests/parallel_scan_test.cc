// The fused-scan and parallel-driver invariants:
//  * registry sweep: EstimateWithVarianceMany is BITWISE identical to the
//    two separate EstimateMany / EstimateSecondMomentMany passes it fuses
//    (est equal to the estimate pass, var equal to est^2 - second moment),
//    on randomized batches including empty and single-row ones -- so every
//    driver can switch to the fused call without perturbing results;
//  * the deterministic scan driver (engine/parallel_scan.h) produces the
//    same bytes for 1, 2, and 8 threads -- fixed-size chunking plus a
//    fixed-shape pairwise tree reduction make the output a function of the
//    chunk size alone;
//  * EstimateSum, AccuracyAccumulator, and ScanSum/ScanBatch agree
//    bitwise on the same batch (one reduction definition across the
//    codebase).

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "accuracy/accumulator.h"
#include "engine/engine.h"
#include "engine/parallel_scan.h"
#include "engine/registry.h"
#include "gtest/gtest.h"
#include "util/hashing.h"
#include "util/random.h"

namespace pie {
namespace {

::testing::AssertionResult BitwiseEqual(double a, double b) {
  uint64_t ba, bb;
  std::memcpy(&ba, &a, sizeof(ba));
  std::memcpy(&bb, &b, sizeof(bb));
  if (ba == bb) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << a << " and " << b << " differ (bits 0x" << std::hex << ba
         << " vs 0x" << bb << ")";
}

// Random data vector matching the kernel's domain (binary for OR; scaled
// nonnegative reals spanning below- and above-threshold values for PPS).
std::vector<double> RandomValues(const KernelEntry& entry,
                                 const SamplingParams& params, Rng& rng) {
  const int r = params.r();
  std::vector<double> values(static_cast<size_t>(r), 0.0);
  if (rng.UniformDouble() < 0.1) return values;  // all-zero vector
  if (entry.spec.function == Function::kOr) {
    bool any = false;
    for (double& v : values) {
      v = rng.UniformDouble() < 0.5 ? 1.0 : 0.0;
      any = any || v == 1.0;
    }
    if (!any) values[0] = 1.0;
    return values;
  }
  double scale = 10.0;
  if (entry.spec.scheme == Scheme::kPps) {
    for (double tau : params.per_entry) scale = std::fmax(scale, tau);
  }
  for (double& v : values) v = rng.UniformDouble(0.0, 1.5 * scale);
  return values;
}

void FillRandomBatch(const KernelEntry& entry, const SamplingParams& params,
                     int size, Rng& rng, OutcomeBatch* batch) {
  batch->Reset(entry.spec.scheme, params.r());
  for (int i = 0; i < size; ++i) {
    const std::vector<double> values = RandomValues(entry, params, rng);
    const Outcome o = SampleOutcome(entry.spec.scheme, params, values, rng);
    if (entry.spec.scheme == Scheme::kOblivious) {
      batch->Append(o.oblivious);
    } else {
      batch->Append(o.pps);
    }
  }
}

// ---------------------------------------------------------------------------
// Fused pass == two-pass bridge, registry-wide
// ---------------------------------------------------------------------------

TEST(FusedScanTest, EstimateWithVarianceManyBitwiseMatchesTwoPasses) {
  for (const auto& entry : KernelRegistry::Global().Entries()) {
    for (const auto& params : entry.example_params) {
      auto kernel = entry.factory(entry.spec, params);
      ASSERT_TRUE(kernel.ok()) << kernel.status().ToString();
      Rng rng(HashCombine(HashBytes(entry.spec.ToString()),
                          static_cast<uint64_t>(params.r()) + 31));
      for (const int batch_size : {0, 1, 2, 57, 256, 700}) {
        OutcomeBatch batch;
        FillRandomBatch(entry, params, batch_size, rng, &batch);
        const BatchView view = batch.view();

        std::vector<double> est_two(static_cast<size_t>(batch_size) + 1);
        std::vector<double> second(static_cast<size_t>(batch_size) + 1);
        (*kernel)->EstimateMany(view, est_two.data());
        (*kernel)->EstimateSecondMomentMany(view, second.data());

        std::vector<double> est_fused(static_cast<size_t>(batch_size) + 1);
        std::vector<double> var_fused(static_cast<size_t>(batch_size) + 1);
        (*kernel)->EstimateWithVarianceMany(view, est_fused.data(),
                                            var_fused.data());

        for (int i = 0; i < batch_size; ++i) {
          const size_t s = static_cast<size_t>(i);
          EXPECT_TRUE(BitwiseEqual(est_fused[s], est_two[s]))
              << (*kernel)->name() << " estimate row " << i;
          EXPECT_TRUE(BitwiseEqual(var_fused[s],
                                   est_two[s] * est_two[s] - second[s]))
              << (*kernel)->name() << " variance row " << i;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Deterministic parallel driver
// ---------------------------------------------------------------------------

TEST(ParallelScanTest, SameBitsForOneTwoAndEightThreads) {
  for (const auto& entry : KernelRegistry::Global().Entries()) {
    const auto& params = entry.example_params.front();
    auto kernel = entry.factory(entry.spec, params);
    ASSERT_TRUE(kernel.ok()) << kernel.status().ToString();
    Rng rng(HashCombine(HashBytes(entry.spec.ToString()), 4242));
    OutcomeBatch batch;
    // Spans many chunks, with a ragged tail (not a multiple of 256).
    FillRandomBatch(entry, params, 2011, rng, &batch);

    ScanOptions options;
    options.num_threads = 1;
    const ScanPartial one = ScanBatch(**kernel, batch.view(), options);
    for (const int threads : {2, 8}) {
      options.num_threads = threads;
      const ScanPartial many = ScanBatch(**kernel, batch.view(), options);
      EXPECT_TRUE(BitwiseEqual(many.sum, one.sum))
          << (*kernel)->name() << " sum @" << threads;
      EXPECT_TRUE(BitwiseEqual(many.variance, one.variance))
          << (*kernel)->name() << " variance @" << threads;
      EXPECT_EQ(many.per_key.count(), one.per_key.count());
      EXPECT_TRUE(BitwiseEqual(many.per_key.mean(), one.per_key.mean()))
          << (*kernel)->name() << " mean @" << threads;
      EXPECT_TRUE(BitwiseEqual(many.per_key.m2(), one.per_key.m2()))
          << (*kernel)->name() << " m2 @" << threads;
      EXPECT_TRUE(
          BitwiseEqual(ScanSum(**kernel, batch.view(), threads), one.sum))
          << (*kernel)->name() << " ScanSum @" << threads;
    }
  }
}

TEST(ParallelScanTest, EstimateSumAndAccumulatorShareTheReduction) {
  auto kernel = KernelRegistry::Global().Create(
      {Function::kMax, Scheme::kPps, Regime::kKnownSeeds, Family::kL},
      SamplingParams({10.0, 8.0}));
  ASSERT_TRUE(kernel.ok());
  const KernelEntry* entry = nullptr;
  for (const auto& e : KernelRegistry::Global().Entries()) {
    if (e.spec.function == Function::kMax && e.spec.scheme == Scheme::kPps &&
        e.spec.family == Family::kL) {
      entry = &e;
    }
  }
  ASSERT_NE(entry, nullptr);
  Rng rng(7);
  OutcomeBatch batch;
  FillRandomBatch(*entry, SamplingParams({10.0, 8.0}), 1500, rng, &batch);

  const double sum = EstimateSum(**kernel, batch);
  EXPECT_TRUE(BitwiseEqual(EstimateSum(**kernel, batch, /*num_threads=*/4),
                           sum));
  AccuracyAccumulator acc;
  acc.AddBatch(**kernel, batch);
  EXPECT_TRUE(BitwiseEqual(acc.sum(), sum));
  AccuracyAccumulator acc4;
  acc4.AddBatch(**kernel, batch, /*num_threads=*/4);
  EXPECT_TRUE(BitwiseEqual(acc4.sum(), sum));
  EXPECT_TRUE(BitwiseEqual(acc4.variance(), acc.variance()));
  AccuracyAccumulator point_only;
  point_only.AddBatchEstimateOnly(**kernel, batch, /*num_threads=*/2);
  EXPECT_TRUE(BitwiseEqual(point_only.sum(), sum));
  EXPECT_EQ(point_only.variance(), 0.0);
}

TEST(ParallelScanTest, EmptyAndSingleChunkBatches) {
  auto kernel = KernelRegistry::Global().Create(
      {Function::kMax, Scheme::kOblivious, Regime::kKnownSeeds, Family::kL},
      {0.5, 0.3});
  ASSERT_TRUE(kernel.ok());
  OutcomeBatch batch;
  batch.Reset(Scheme::kOblivious, 2);
  ScanOptions options;
  options.num_threads = 8;
  const ScanPartial empty = ScanBatch(**kernel, batch.view(), options);
  EXPECT_EQ(empty.sum, 0.0);
  EXPECT_EQ(empty.variance, 0.0);
  EXPECT_EQ(empty.per_key.count(), 0);
  EXPECT_EQ(ScanSum(**kernel, batch.view(), 8), 0.0);

  // A sub-chunk batch reduces to the plain row-order sum: the scalar loop
  // is the single-chunk special case of the driver.
  Rng rng(3);
  std::vector<Outcome> outcomes;
  for (int i = 0; i < 57; ++i) {
    outcomes.push_back(SampleOutcome(
        Scheme::kOblivious, {0.5, 0.3},
        {rng.UniformDouble(0, 10), rng.UniformDouble(0, 10)}, rng));
    batch.Append(outcomes.back().oblivious);
  }
  double scalar_sum = 0.0;
  for (const Outcome& o : outcomes) scalar_sum += (*kernel)->Estimate(o);
  EXPECT_TRUE(BitwiseEqual(ScanSum(**kernel, batch.view(), 8), scalar_sum));
}

TEST(ParallelScanTest, TreeReduceShapeDependsOnlyOnCount) {
  struct P {
    double v = 0.0;
    void Merge(const P& o) { v += o.v; }
  };
  // Shape check against the hand-rolled tree for 5 elements:
  // ((0+1)+(2+3))+4.
  std::vector<P> p(5);
  const double vals[5] = {1e16, 1.0, -1e16, 3.0, 0.5};
  for (int i = 0; i < 5; ++i) p[static_cast<size_t>(i)].v = vals[i];
  TreeReduce(p.data(), 5);
  const double expected = ((vals[0] + vals[1]) + (vals[2] + vals[3])) + vals[4];
  EXPECT_TRUE(BitwiseEqual(p[0].v, expected));
}

}  // namespace
}  // namespace pie
