// Tests for src/sampling: rank families, Poisson samplers (oblivious and
// weighted PPS), bottom-k sketches, and VarOpt.

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include "gtest/gtest.h"
#include "sampling/bottomk.h"
#include "sampling/poisson.h"
#include "sampling/rank.h"
#include "sampling/varopt.h"
#include "util/random.h"
#include "util/stats.h"

namespace pie {
namespace {

// ---------------------------------------------------------------------------
// Rank families
// ---------------------------------------------------------------------------

TEST(RankTest, PpsRankFormula) {
  EXPECT_DOUBLE_EQ(RankValue(RankFamily::kPps, 4.0, 0.5), 0.125);
  EXPECT_DOUBLE_EQ(RankValue(RankFamily::kPps, 1.0, 0.25), 0.25);
}

TEST(RankTest, ExpRankFormula) {
  const double r = RankValue(RankFamily::kExp, 2.0, 0.5);
  EXPECT_NEAR(r, -std::log(0.5) / 2.0, 1e-15);
}

TEST(RankTest, ZeroWeightNeverSampled) {
  EXPECT_TRUE(std::isinf(RankValue(RankFamily::kPps, 0.0, 0.3)));
  EXPECT_TRUE(std::isinf(RankValue(RankFamily::kExp, 0.0, 0.3)));
  EXPECT_EQ(RankInclusionProb(RankFamily::kPps, 0.0, 1.0), 0.0);
}

TEST(RankTest, InclusionProbMatchesCdf) {
  // P[rank < tau] should equal RankInclusionProb for both families.
  for (RankFamily family : {RankFamily::kPps, RankFamily::kExp}) {
    const double w = 0.7;
    const double tau = 0.9;
    Rng rng(42);
    int hits = 0;
    const int trials = 200000;
    for (int i = 0; i < trials; ++i) {
      if (RankValue(family, w, rng.UniformDouble()) < tau) ++hits;
    }
    EXPECT_NEAR(hits / static_cast<double>(trials),
                RankInclusionProb(family, w, tau), 0.005)
        << RankFamilyToString(family);
  }
}

TEST(RankTest, InclusionProbClampsToOne) {
  EXPECT_DOUBLE_EQ(RankInclusionProb(RankFamily::kPps, 10.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(RankInclusionProb(RankFamily::kPps, 2.0, 10.0), 1.0);
  EXPECT_DOUBLE_EQ(RankInclusionProb(RankFamily::kExp, 5.0, Infinity()), 1.0);
}

TEST(RankTest, ExpMinRankIsExponentialOfSum) {
  // EXP ranks: min rank over a set ~ EXP(sum of weights); check the mean.
  const std::vector<double> weights = {1.0, 2.5, 0.5, 4.0};
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  Rng rng(7);
  RunningStat stat;
  for (int trial = 0; trial < 100000; ++trial) {
    double min_rank = Infinity();
    for (double w : weights) {
      min_rank =
          std::min(min_rank, RankValue(RankFamily::kExp, w, rng.UniformDouble()));
    }
    stat.Add(min_rank);
  }
  EXPECT_NEAR(stat.mean(), 1.0 / total, 0.002);
}

TEST(RankTest, ValidateWeightRejectsBadInput) {
  EXPECT_TRUE(ValidateWeight(1.5).ok());
  EXPECT_TRUE(ValidateWeight(0.0).ok());
  EXPECT_FALSE(ValidateWeight(-1.0).ok());
  EXPECT_FALSE(ValidateWeight(std::nan("")).ok());
  EXPECT_FALSE(ValidateWeight(Infinity()).ok());
}

// ---------------------------------------------------------------------------
// Poisson samplers
// ---------------------------------------------------------------------------

TEST(PoissonTest, ValidateConfigs) {
  EXPECT_TRUE(ValidateObliviousConfig({1.0, 2.0}, {0.5, 1.0}).ok());
  EXPECT_FALSE(ValidateObliviousConfig({1.0}, {0.5, 0.5}).ok());
  EXPECT_FALSE(ValidateObliviousConfig({1.0, 1.0}, {0.0, 0.5}).ok());
  EXPECT_FALSE(ValidateObliviousConfig({1.0, 1.0}, {0.5, 1.5}).ok());
  EXPECT_FALSE(ValidateObliviousConfig({}, {}).ok());
  EXPECT_TRUE(ValidatePpsConfig({1.0, 0.0}, {2.0, 3.0}).ok());
  EXPECT_FALSE(ValidatePpsConfig({1.0, 1.0}, {0.0, 1.0}).ok());
  EXPECT_FALSE(ValidatePpsConfig({-1.0, 1.0}, {1.0, 1.0}).ok());
}

TEST(PoissonTest, ObliviousSeedsControlInclusion) {
  const auto out =
      SampleObliviousWithSeeds({5.0, 7.0, 9.0}, {0.5, 0.5, 0.5}, {0.4, 0.6, 0.1});
  EXPECT_TRUE(out.sampled[0]);
  EXPECT_FALSE(out.sampled[1]);
  EXPECT_TRUE(out.sampled[2]);
  EXPECT_EQ(out.value[0], 5.0);
  EXPECT_EQ(out.value[1], 0.0);  // hidden
  EXPECT_EQ(out.value[2], 9.0);
  EXPECT_EQ(out.NumSampled(), 2);
  EXPECT_EQ(out.MaxSampledValue(), 9.0);
  EXPECT_FALSE(out.AllSampled());
}

TEST(PoissonTest, ObliviousInclusionFrequencies) {
  const std::vector<double> values = {1.0, 2.0, 3.0};
  const std::vector<double> p = {0.2, 0.5, 0.9};
  Rng rng(19);
  std::vector<int> hits(3, 0);
  const int trials = 100000;
  for (int t = 0; t < trials; ++t) {
    const auto out = SampleOblivious(values, p, rng);
    for (int i = 0; i < 3; ++i) hits[i] += out.sampled[i];
  }
  for (int i = 0; i < 3; ++i) {
    EXPECT_NEAR(hits[i] / static_cast<double>(trials), p[i], 0.01);
  }
}

TEST(PoissonTest, PpsInclusionRule) {
  // v >= u * tau <=> sampled.
  const auto out = SamplePpsWithSeeds({3.0, 3.0}, {10.0, 10.0}, {0.2, 0.4});
  EXPECT_TRUE(out.sampled[0]);   // 3 >= 2
  EXPECT_FALSE(out.sampled[1]);  // 3 < 4
  EXPECT_DOUBLE_EQ(out.UpperBound(1), 4.0);
}

TEST(PoissonTest, PpsZeroNeverSampled) {
  Rng rng(3);
  for (int t = 0; t < 1000; ++t) {
    const auto out = SamplePps({0.0, 5.0}, {1.0, 1.0}, rng);
    EXPECT_FALSE(out.sampled[0]);
    EXPECT_TRUE(out.sampled[1]);  // 5 >= u*1 always
  }
}

TEST(PoissonTest, PpsInclusionProbabilityIsPps) {
  const double v = 2.5;
  const double tau = 10.0;
  Rng rng(23);
  int hits = 0;
  const int trials = 200000;
  for (int t = 0; t < trials; ++t) {
    hits += SamplePps({v}, {tau}, rng).sampled[0];
  }
  EXPECT_NEAR(hits / static_cast<double>(trials), v / tau, 0.004);
}

TEST(PoissonTest, PpsUnsampledBoundHolds) {
  Rng rng(29);
  for (int t = 0; t < 10000; ++t) {
    const auto out = SamplePps({4.0}, {16.0}, rng);
    if (!out.sampled[0]) {
      EXPECT_GT(out.UpperBound(0), 4.0);  // v < u*tau
    }
  }
}

// ---------------------------------------------------------------------------
// Bottom-k
// ---------------------------------------------------------------------------

std::vector<WeightedItem> MakeItems(int n, uint64_t key_base, Rng& rng) {
  std::vector<WeightedItem> items;
  for (int i = 0; i < n; ++i) {
    items.push_back({key_base + static_cast<uint64_t>(i),
                     std::floor(rng.UniformDouble(1.0, 100.0))});
  }
  return items;
}

TEST(BottomKTest, ValidatesConfig) {
  EXPECT_FALSE(ValidateBottomKConfig({}, 0).ok());
  EXPECT_TRUE(ValidateBottomKConfig({{1, 2.0}}, 3).ok());
  EXPECT_FALSE(ValidateBottomKConfig({{1, -2.0}}, 3).ok());
}

TEST(BottomKTest, KeepsKSmallestRanks) {
  Rng rng(5);
  const auto items = MakeItems(50, 100, rng);
  const SeedFunction seed(77);
  const int k = 10;
  const auto sketch = BottomKSample(items, k, RankFamily::kPps, seed);
  ASSERT_EQ(static_cast<int>(sketch.entries.size()), k);

  // Brute-force ranks.
  std::vector<double> all_ranks;
  for (const auto& item : items) {
    all_ranks.push_back(RankValue(RankFamily::kPps, item.weight, seed(item.key)));
  }
  std::sort(all_ranks.begin(), all_ranks.end());
  // Entries are the k smallest, sorted ascending; threshold is the (k+1)-st.
  for (int i = 0; i < k; ++i) {
    EXPECT_DOUBLE_EQ(sketch.entries[i].rank, all_ranks[i]);
  }
  EXPECT_DOUBLE_EQ(sketch.threshold, all_ranks[k]);
}

TEST(BottomKTest, SmallInstanceIsExact) {
  Rng rng(9);
  const auto items = MakeItems(5, 10, rng);
  const auto sketch = BottomKSample(items, 8, RankFamily::kExp, SeedFunction(3));
  EXPECT_EQ(sketch.entries.size(), 5u);
  EXPECT_TRUE(std::isinf(sketch.threshold));
  double total = 0.0;
  double est = 0.0;
  for (const auto& item : items) total += item.weight;
  for (const auto& e : sketch.entries) est += sketch.AdjustedWeight(e);
  EXPECT_NEAR(est, total, 1e-9);  // adjusted weight == weight when exact
}

TEST(BottomKTest, SkipsZeroWeights) {
  std::vector<WeightedItem> items = {{1, 0.0}, {2, 5.0}, {3, 0.0}, {4, 2.0}};
  const auto sketch = BottomKSample(items, 10, RankFamily::kPps, SeedFunction(1));
  EXPECT_EQ(sketch.entries.size(), 2u);
  for (const auto& e : sketch.entries) EXPECT_GT(e.weight, 0.0);
}

class BottomKUnbiasedTest
    : public ::testing::TestWithParam<RankFamily> {};

TEST_P(BottomKUnbiasedTest, SubsetSumIsUnbiased) {
  // Rank-conditioning estimator: mean over independent salts approaches the
  // true subset sum.
  Rng rng(13);
  const auto items = MakeItems(30, 0, rng);
  double true_sum = 0.0;
  auto pred = [](uint64_t key) { return key % 3 == 0; };
  for (const auto& item : items) {
    if (pred(item.key)) true_sum += item.weight;
  }
  RunningStat stat;
  for (uint64_t salt = 0; salt < 20000; ++salt) {
    const auto sketch =
        BottomKSample(items, 8, GetParam(), SeedFunction(salt * 1315423911ULL + 7));
    stat.Add(BottomKSubsetSum(sketch, pred));
  }
  EXPECT_NEAR(stat.mean(), true_sum, 4.0 * stat.standard_error());
}

INSTANTIATE_TEST_SUITE_P(Families, BottomKUnbiasedTest,
                         ::testing::Values(RankFamily::kPps, RankFamily::kExp));

TEST(BottomKTest, SharedSeedRanksAreConsistent) {
  // Consistent ranks (Section 7.2): with a shared seed, a larger value gets
  // a smaller rank; equal values get equal ranks.
  const SeedFunction seed(55);
  Rng rng(17);
  for (int t = 0; t < 1000; ++t) {
    const uint64_t key = rng.NextU64();
    const double u = seed(key);
    const double w_small = rng.UniformDouble(0.1, 10.0);
    const double w_large = w_small + rng.UniformDouble(0.0, 10.0);
    for (RankFamily family : {RankFamily::kPps, RankFamily::kExp}) {
      EXPECT_LE(RankValue(family, w_large, u), RankValue(family, w_small, u));
      EXPECT_EQ(RankValue(family, w_small, u), RankValue(family, w_small, u));
    }
  }
}

TEST(BottomKTest, CoordinatedSketchesOverlapMoreThanIndependent) {
  // Shared-salt bottom-k samples of two similar instances share most keys;
  // independent salts share few (the motivation for coordination).
  Rng rng(21);
  const auto items = MakeItems(200, 0, rng);
  auto items2 = items;  // identical second instance
  const int k = 20;
  const auto a = BottomKSample(items, k, RankFamily::kPps, SeedFunction(1));
  const auto b_coord = BottomKSample(items2, k, RankFamily::kPps, SeedFunction(1));
  const auto b_indep = BottomKSample(items2, k, RankFamily::kPps, SeedFunction(2));

  auto overlap = [](const BottomKSketch& x, const BottomKSketch& y) {
    std::set<uint64_t> keys;
    for (const auto& e : x.entries) keys.insert(e.key);
    int shared = 0;
    for (const auto& e : y.entries) shared += keys.count(e.key);
    return shared;
  };
  EXPECT_EQ(overlap(a, b_coord), k);  // identical data + salt => same sketch
  EXPECT_LT(overlap(a, b_indep), k / 2);
}

// ---------------------------------------------------------------------------
// VarOpt
// ---------------------------------------------------------------------------

TEST(VarOptTest, ValidatesConfig) {
  EXPECT_FALSE(ValidateVarOptConfig(0).ok());
  EXPECT_TRUE(ValidateVarOptConfig(5).ok());
}

TEST(VarOptTest, HoldsEverythingUnderK) {
  VarOptSampler sampler(10, 42);
  for (uint64_t i = 0; i < 6; ++i) sampler.Add(i, 1.0 + static_cast<double>(i));
  EXPECT_EQ(sampler.size(), 6);
  EXPECT_EQ(sampler.threshold(), 0.0);
  for (const auto& e : sampler.Sample()) {
    EXPECT_EQ(e.weight, e.adjusted_weight);
  }
}

TEST(VarOptTest, FixedSampleSize) {
  Rng rng(31);
  VarOptSampler sampler(16, 99);
  for (uint64_t i = 0; i < 1000; ++i) {
    sampler.Add(i, rng.UniformDouble(0.5, 20.0));
  }
  EXPECT_EQ(sampler.size(), 16);
  EXPECT_EQ(sampler.Sample().size(), 16u);
  EXPECT_GT(sampler.threshold(), 0.0);
}

TEST(VarOptTest, IgnoresNonPositiveWeights) {
  VarOptSampler sampler(4, 1);
  sampler.Add(1, 0.0);
  sampler.Add(2, 3.0);
  EXPECT_EQ(sampler.size(), 1);
}

TEST(VarOptTest, TotalEstimateIsExact) {
  // The VarOpt signature property: sum of adjusted weights equals the true
  // total deterministically.
  Rng rng(37);
  for (uint64_t seed = 0; seed < 20; ++seed) {
    VarOptSampler sampler(8, seed);
    double total = 0.0;
    for (uint64_t i = 0; i < 200; ++i) {
      const double w = std::floor(rng.UniformDouble(1.0, 50.0));
      total += w;
      sampler.Add(i, w);
    }
    double est = 0.0;
    for (const auto& e : sampler.Sample()) est += e.adjusted_weight;
    EXPECT_NEAR(est, total, 1e-6 * total);
    EXPECT_NEAR(sampler.total_weight(), total, 1e-9);
  }
}

TEST(VarOptTest, InclusionProbabilitiesArePps) {
  // Inclusion frequency of each item should approach min(1, w/tau).
  const std::vector<double> weights = {1, 1, 1, 1, 2, 2, 4, 8, 30};
  const int k = 4;
  const int trials = 40000;
  std::vector<int> hits(weights.size(), 0);
  double tau_sum = 0.0;
  for (int t = 0; t < trials; ++t) {
    VarOptSampler sampler(k, static_cast<uint64_t>(t) * 2654435761ULL + 1);
    for (size_t i = 0; i < weights.size(); ++i) {
      sampler.Add(i, weights[i]);
    }
    for (const auto& e : sampler.Sample()) ++hits[e.key];
    tau_sum += sampler.threshold();
  }
  const double tau = tau_sum / trials;
  for (size_t i = 0; i < weights.size(); ++i) {
    EXPECT_NEAR(hits[i] / static_cast<double>(trials),
                std::fmin(1.0, weights[i] / tau), 0.02)
        << "item " << i;
  }
}

TEST(VarOptTest, SubsetSumIsUnbiased) {
  Rng rng(41);
  std::vector<WeightedItem> items = MakeItems(60, 0, rng);
  auto pred = [](uint64_t key) { return key % 2 == 0; };
  double true_sum = 0.0;
  for (const auto& item : items) {
    if (pred(item.key)) true_sum += item.weight;
  }
  RunningStat stat;
  for (int t = 0; t < 20000; ++t) {
    VarOptSampler sampler(12, static_cast<uint64_t>(t) + 17);
    sampler.AddAll(items);
    stat.Add(sampler.SubsetSumEstimate(pred));
  }
  EXPECT_NEAR(stat.mean(), true_sum, 4.0 * stat.standard_error());
}

TEST(VarOptTest, ThresholdGrowsMonotonically) {
  Rng rng(43);
  VarOptSampler sampler(8, 3);
  double last_tau = 0.0;
  for (uint64_t i = 0; i < 500; ++i) {
    sampler.Add(i, rng.UniformDouble(0.1, 5.0));
    EXPECT_GE(sampler.threshold(), last_tau - 1e-12);
    last_tau = sampler.threshold();
  }
}

}  // namespace
}  // namespace pie
