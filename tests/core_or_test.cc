// Tests for the Boolean OR estimators (Section 4.3 and their weighted
// known-seeds forms, Section 5.1): specialization of max, closed-form
// variances (equations (23), (24)), asymptotics, and the outcome mapping.

#include <cmath>

#include "core/enumerate.h"
#include "core/functions.h"
#include "core/max_oblivious.h"
#include "core/or_oblivious.h"
#include "core/or_weighted.h"
#include "gtest/gtest.h"
#include "util/random.h"
#include "util/stats.h"

namespace pie {
namespace {

ObliviousOutcome MakeOutcome(const std::vector<double>& values,
                             const std::vector<double>& p, uint32_t mask) {
  std::vector<double> seeds(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    seeds[i] = ((mask >> i) & 1u) ? 0.0 : 1.0 - 1e-12;
  }
  return SampleObliviousWithSeeds(values, p, seeds);
}

// ---------------------------------------------------------------------------
// OR^(HT)
// ---------------------------------------------------------------------------

TEST(OrHtTest, EstimateTable) {
  const std::vector<double> p = {0.5, 0.25};
  EXPECT_DOUBLE_EQ(OrHtEstimate(MakeOutcome({1, 0}, p, 0b11)), 8.0);
  EXPECT_DOUBLE_EQ(OrHtEstimate(MakeOutcome({0, 0}, p, 0b11)), 0.0);
  EXPECT_DOUBLE_EQ(OrHtEstimate(MakeOutcome({1, 1}, p, 0b01)), 0.0);
}

TEST(OrHtTest, UnbiasedAndVarianceFormula) {
  const std::vector<double> p = {0.5, 0.25};
  for (auto v : {std::vector<double>{1, 1}, {1, 0}, {0, 1}}) {
    EXPECT_NEAR(ObliviousExpectation(v, p, OrHtEstimate), 1.0, 1e-12);
    EXPECT_NEAR(ObliviousVariance(v, p, OrHtEstimate), OrHtVariance(p), 1e-12);
  }
  EXPECT_NEAR(OrHtVariance(p), 1.0 / 0.125 - 1.0, 1e-12);
}

// ---------------------------------------------------------------------------
// OR^(L) two instances
// ---------------------------------------------------------------------------

TEST(OrLTwoTest, SpecializesMaxL) {
  const double p1 = 0.35, p2 = 0.65;
  const OrLTwo or_l(p1, p2);
  const MaxLTwo max_l(p1, p2);
  const std::vector<double> p = {p1, p2};
  for (double v1 : {0.0, 1.0}) {
    for (double v2 : {0.0, 1.0}) {
      for (uint32_t mask = 0; mask < 4; ++mask) {
        const auto outcome = MakeOutcome({v1, v2}, p, mask);
        EXPECT_NEAR(or_l.Estimate(outcome), max_l.Estimate(outcome), 1e-12);
      }
    }
  }
}

class OrLTwoGridTest : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(OrLTwoGridTest, UnbiasedNonnegativeDominant) {
  const auto [p1, p2] = GetParam();
  const OrLTwo est(p1, p2);
  const std::vector<double> p = {p1, p2};
  auto fn = [&](const ObliviousOutcome& o) { return est.Estimate(o); };
  for (int v1 : {0, 1}) {
    for (int v2 : {0, 1}) {
      const std::vector<double> v = {static_cast<double>(v1),
                                     static_cast<double>(v2)};
      EXPECT_NEAR(ObliviousExpectation(v, p, fn), OrOf(v), 1e-12);
      EXPECT_GE(ObliviousMinEstimate(v, p, fn), -1e-12);
      if (OrOf(v) == 1.0) {
        EXPECT_LE(est.Variance(v1, v2), OrHtVariance(p) + 1e-12);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    ProbabilityGrid, OrLTwoGridTest,
    ::testing::Values(std::make_tuple(0.5, 0.5), std::make_tuple(0.1, 0.9),
                      std::make_tuple(0.05, 0.05), std::make_tuple(0.99, 0.4)));

TEST(OrLTwoTest, Equation24Variance) {
  // VAR[OR^L | (1,1)] = 1/(p1+p2-p1p2) - 1.
  for (auto [p1, p2] : {std::make_pair(0.5, 0.5), std::make_pair(0.3, 0.7)}) {
    const OrLTwo est(p1, p2);
    EXPECT_NEAR(est.VarianceBothOnes(), 1.0 / (p1 + p2 - p1 * p2) - 1.0,
                1e-12);
    EXPECT_NEAR(est.Variance(1, 1), est.VarianceBothOnes(), 1e-12);
  }
}

TEST(OrLTwoTest, VarianceOneZeroMatchesEnumeration) {
  for (auto [p1, p2] : {std::make_pair(0.5, 0.5), std::make_pair(0.2, 0.6)}) {
    const OrLTwo est(p1, p2);
    EXPECT_NEAR(est.VarianceOneZero(), est.Variance(1, 0), 1e-12);
  }
}

TEST(OrLTwoTest, SmallPAsymptotics) {
  // Section 4.3: as p -> 0, VAR[L|(1,1)] ~ 1/(2p) and VAR[L|(1,0)] ~
  // 1/(4p^2), vs VAR[HT] ~ 1/p^2.
  const double p = 1e-3;
  const OrLTwo est(p, p);
  EXPECT_NEAR(est.VarianceBothOnes() * 2.0 * p, 1.0, 0.01);
  EXPECT_NEAR(est.VarianceOneZero() * 4.0 * p * p, 1.0, 0.01);
  EXPECT_NEAR(OrHtVariance({p, p}) * p * p, 1.0, 0.01);
}

// ---------------------------------------------------------------------------
// OR^(L) uniform, general r
// ---------------------------------------------------------------------------

TEST(OrLUniformTest, EstimateIsPrefixSum) {
  const OrLUniform est(4, 0.3);
  const MaxLUniform max_l(4, 0.3);
  // z sampled zeros with at least one sampled one => A_{r-z}.
  EXPECT_NEAR(est.EstimateFromCounts(1, 0), max_l.prefix_sums()[3], 1e-12);
  EXPECT_NEAR(est.EstimateFromCounts(2, 1), max_l.prefix_sums()[2], 1e-12);
  EXPECT_NEAR(est.EstimateFromCounts(1, 3), max_l.prefix_sums()[0], 1e-12);
  EXPECT_EQ(est.EstimateFromCounts(0, 2), 0.0);
}

TEST(OrLUniformTest, AgreesWithMaxLUniformOnOutcomes) {
  const int r = 5;
  const double p = 0.4;
  const OrLUniform or_l(r, p);
  const MaxLUniform max_l(r, p);
  const std::vector<double> probs(r, p);
  Rng rng(3);
  for (int t = 0; t < 200; ++t) {
    std::vector<double> v(r);
    for (double& x : v) x = rng.Bernoulli(0.5) ? 1.0 : 0.0;
    const uint32_t mask = static_cast<uint32_t>(rng.UniformInt(1u << r));
    const auto outcome = MakeOutcome(v, probs, mask);
    EXPECT_NEAR(or_l.Estimate(outcome), max_l.Estimate(outcome), 1e-10);
  }
}

class OrLUniformUnbiasedTest
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(OrLUniformUnbiasedTest, UnbiasedForEveryOnesCount) {
  const auto [r, p] = GetParam();
  const OrLUniform est(r, p);
  const std::vector<double> probs(r, p);
  auto fn = [&](const ObliviousOutcome& o) { return est.Estimate(o); };
  for (int ones = 0; ones <= r; ++ones) {
    std::vector<double> v(r, 0.0);
    for (int i = 0; i < ones; ++i) v[i] = 1.0;
    EXPECT_NEAR(ObliviousExpectation(v, probs, fn), ones > 0 ? 1.0 : 0.0,
                1e-9)
        << "r=" << r << " p=" << p << " ones=" << ones;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, OrLUniformUnbiasedTest,
    ::testing::Combine(::testing::Values(2, 3, 4, 6, 8),
                       ::testing::Values(0.1, 0.5, 0.95)));

TEST(OrLUniformTest, VarianceMatchesEnumeration) {
  for (int r : {2, 3, 5}) {
    for (double p : {0.3, 0.7}) {
      const OrLUniform est(r, p);
      const std::vector<double> probs(r, p);
      auto fn = [&](const ObliviousOutcome& o) { return est.Estimate(o); };
      for (int ones = 0; ones <= r; ++ones) {
        std::vector<double> v(r, 0.0);
        for (int i = 0; i < ones; ++i) v[i] = 1.0;
        EXPECT_NEAR(est.Variance(ones), ObliviousVariance(v, probs, fn),
                    1e-9)
            << "r=" << r << " p=" << p << " ones=" << ones;
      }
    }
  }
}

TEST(OrLUniformTest, VarianceZeroOnAllZeros) {
  EXPECT_EQ(OrLUniform(4, 0.5).Variance(0), 0.0);
}

// ---------------------------------------------------------------------------
// OR^(U)
// ---------------------------------------------------------------------------

TEST(OrUTwoTest, UnbiasedNonnegativeAndBeatsHtOnChange) {
  for (auto [p1, p2] : {std::make_pair(0.5, 0.5), std::make_pair(0.2, 0.3)}) {
    const OrUTwo est(p1, p2);
    const std::vector<double> p = {p1, p2};
    auto fn = [&](const ObliviousOutcome& o) { return est.Estimate(o); };
    for (int v1 : {0, 1}) {
      for (int v2 : {0, 1}) {
        const std::vector<double> v = {static_cast<double>(v1),
                                       static_cast<double>(v2)};
        EXPECT_NEAR(ObliviousExpectation(v, p, fn), OrOf(v), 1e-12);
        EXPECT_GE(ObliviousMinEstimate(v, p, fn), -1e-12);
      }
    }
    EXPECT_LT(est.Variance(1, 0), OrHtVariance(p));
    EXPECT_LT(est.Variance(1, 1), OrHtVariance(p));
  }
}

TEST(OrEstimatorsTest, Figure2Ordering) {
  // Figure 2: L has minimum variance on (1,1); U is the symmetric estimator
  // with minimum variance on (1,0)/(0,1); both dominate HT.
  for (double p : {0.1, 0.2, 0.3, 0.5}) {
    const OrLTwo l(p, p);
    const OrUTwo u(p, p);
    EXPECT_LT(l.Variance(1, 1), u.Variance(1, 1));
    EXPECT_GT(l.Variance(1, 0), u.Variance(1, 0));
    EXPECT_LT(l.Variance(1, 1), OrHtVariance({p, p}));
    EXPECT_LT(u.Variance(1, 0), OrHtVariance({p, p}));
  }
}

TEST(OrUTwoTest, SmallPAsymptotics) {
  // As p -> 0: VAR[U|(1,0)] ~ 1/(4p^2) and VAR[U|(1,1)] ~ 1/(2p).
  const double p = 1e-3;
  const OrUTwo est(p, p);
  EXPECT_NEAR(est.Variance(1, 0) * 4.0 * p * p, 1.0, 0.02);
  EXPECT_NEAR(est.Variance(1, 1) * 2.0 * p, 1.0, 0.02);
}

// ---------------------------------------------------------------------------
// Weighted OR with known seeds (Section 5.1)
// ---------------------------------------------------------------------------

TEST(OrWeightedTest, BinaryInclusionProbs) {
  const auto p = BinaryPpsInclusionProbs({2.0, 0.5, 1.0});
  EXPECT_DOUBLE_EQ(p[0], 0.5);
  EXPECT_DOUBLE_EQ(p[1], 1.0);
  EXPECT_DOUBLE_EQ(p[2], 1.0);
}

TEST(OrWeightedTest, MappingClassifiesSeeds) {
  // tau = 2 => p = 1/2. Entry sampled => mapped sampled value 1; unsampled
  // with seed below p => mapped sampled value 0; else unsampled.
  const std::vector<double> tau = {2.0, 2.0};
  // v = (1, 0); seeds (0.3, 0.3): entry 1 sampled (1 >= 0.6? no!) --
  // inclusion needs v >= u*tau: 1 >= 0.6 yes. Entry 2 value 0: never.
  const auto outcome = SamplePpsWithSeeds({1.0, 0.0}, tau, {0.3, 0.3});
  ASSERT_TRUE(outcome.sampled[0]);
  ASSERT_FALSE(outcome.sampled[1]);
  const auto mapped = MapBinaryPpsToOblivious(outcome);
  EXPECT_TRUE(mapped.sampled[0]);
  EXPECT_EQ(mapped.value[0], 1.0);
  EXPECT_TRUE(mapped.sampled[1]);  // seed 0.3 < p = 0.5 certifies the zero
  EXPECT_EQ(mapped.value[1], 0.0);

  const auto outcome2 = SamplePpsWithSeeds({1.0, 0.0}, tau, {0.3, 0.8});
  const auto mapped2 = MapBinaryPpsToOblivious(outcome2);
  EXPECT_FALSE(mapped2.sampled[1]);  // seed 0.8 > p: membership unknown
}

TEST(OrWeightedTest, MappingPreservesProbabilities) {
  // The mapped outcome distribution must equal weight-oblivious sampling
  // with p_i = min(1, 1/tau_i): check per-entry mapped-sampled frequencies.
  const std::vector<double> tau = {2.5, 4.0};
  const std::vector<double> p = BinaryPpsInclusionProbs(tau);
  Rng rng(77);
  const std::vector<double> v = {1.0, 1.0};
  int hits0 = 0, hits1 = 0;
  const int trials = 100000;
  for (int t = 0; t < trials; ++t) {
    const auto mapped = MapBinaryPpsToOblivious(SamplePps(v, tau, rng));
    hits0 += mapped.sampled[0];
    hits1 += mapped.sampled[1];
  }
  EXPECT_NEAR(hits0 / static_cast<double>(trials), p[0], 0.005);
  EXPECT_NEAR(hits1 / static_cast<double>(trials), p[1], 0.005);
}

TEST(OrWeightedTest, EstimatorsUnbiasedOverSeedDistribution) {
  const double tau1 = 3.0, tau2 = 5.0;
  const OrWeightedTwo est(tau1, tau2);
  Rng rng(123);
  for (auto v : {std::vector<double>{1, 1}, {1, 0}, {0, 1}, {0, 0}}) {
    RunningStat ht, l, u;
    for (int t = 0; t < 200000; ++t) {
      const auto outcome = SamplePps(v, {tau1, tau2}, rng);
      ht.Add(est.EstimateHt(outcome));
      l.Add(est.EstimateL(outcome));
      u.Add(est.EstimateU(outcome));
    }
    const double truth = OrOf(v);
    EXPECT_NEAR(ht.mean(), truth, 5.0 * ht.standard_error() + 1e-9);
    EXPECT_NEAR(l.mean(), truth, 5.0 * l.standard_error() + 1e-9);
    EXPECT_NEAR(u.mean(), truth, 5.0 * u.standard_error() + 1e-9);
  }
}

TEST(OrWeightedTest, VarianceMatchesObliviousCase) {
  // Section 5.1: "The variance of the estimators is the same as in the
  // weight oblivious case."
  const double tau = 4.0;  // p = 1/4
  const double p = 0.25;
  const OrWeightedTwo est(tau, tau);
  const OrLTwo oblivious(p, p);
  Rng rng(321);
  RunningStat l;
  for (int t = 0; t < 400000; ++t) {
    l.Add(est.EstimateL(SamplePps({1, 0}, {tau, tau}, rng)));
  }
  const double var_mc = l.sample_variance();
  EXPECT_NEAR(var_mc, oblivious.VarianceOneZero(),
              0.05 * oblivious.VarianceOneZero());
}

}  // namespace
}  // namespace pie
