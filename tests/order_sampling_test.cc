// Properties of order (bottom-k) sampling that Section 7.1 cites from the
// literature: EXP ranks realize weighted sampling without replacement, PPS
// ranks realize priority sampling; plus coordination behavior across
// similar instances.

#include <algorithm>
#include <cmath>
#include <map>

#include "gtest/gtest.h"
#include "sampling/bottomk.h"
#include "sampling/rank.h"
#include "util/random.h"
#include "util/stats.h"

namespace pie {
namespace {

TEST(OrderSamplingTest, ExpRanksFirstPickIsProportionalToWeight) {
  // With EXP ranks, the minimum-rank key is drawn with probability
  // w_i / sum(w) -- the first step of successive weighted sampling.
  const std::vector<WeightedItem> items = {{1, 1.0}, {2, 2.0}, {3, 3.0},
                                           {4, 4.0}};
  const double total = 10.0;
  std::map<uint64_t, int> first_counts;
  const int trials = 200000;
  Rng rng(3);
  for (int t = 0; t < trials; ++t) {
    uint64_t argmin = 0;
    double best = Infinity();
    for (const auto& item : items) {
      const double r =
          RankValue(RankFamily::kExp, item.weight, rng.UniformDouble());
      if (r < best) {
        best = r;
        argmin = item.key;
      }
    }
    ++first_counts[argmin];
  }
  for (const auto& item : items) {
    EXPECT_NEAR(first_counts[item.key] / static_cast<double>(trials),
                item.weight / total, 0.01)
        << item.key;
  }
}

TEST(OrderSamplingTest, ExpRanksSecondPickMatchesWithoutReplacement) {
  // Conditioned on the first pick, the second-smallest rank is distributed
  // as weighted sampling from the remainder: P(first=3, second=4) =
  // (w3/W) * (w4/(W-w3)).
  const std::vector<WeightedItem> items = {{1, 1.0}, {2, 2.0}, {3, 3.0},
                                           {4, 4.0}};
  const double total = 10.0;
  std::map<std::pair<uint64_t, uint64_t>, int> pair_counts;
  const int trials = 300000;
  Rng rng(7);
  for (int t = 0; t < trials; ++t) {
    std::vector<std::pair<double, uint64_t>> ranked;
    for (const auto& item : items) {
      ranked.push_back(
          {RankValue(RankFamily::kExp, item.weight, rng.UniformDouble()),
           item.key});
    }
    std::sort(ranked.begin(), ranked.end());
    ++pair_counts[{ranked[0].second, ranked[1].second}];
  }
  auto weight_of = [&](uint64_t key) {
    for (const auto& item : items) {
      if (item.key == key) return item.weight;
    }
    return 0.0;
  };
  for (const auto& [pair, count] : pair_counts) {
    const double w1 = weight_of(pair.first);
    const double w2 = weight_of(pair.second);
    const double expected = (w1 / total) * (w2 / (total - w1));
    EXPECT_NEAR(count / static_cast<double>(trials), expected,
                5.0 * std::sqrt(expected / trials) + 2e-3)
        << pair.first << "," << pair.second;
  }
}

TEST(OrderSamplingTest, PpsBottomKIsPrioritySampling) {
  // Priority sampling: inclusion of key i given threshold tau is
  // min(1, w_i * tau). Verify empirical inclusion against the rank-
  // conditioning probability computed from each realized sketch.
  Rng rng(11);
  std::vector<WeightedItem> items;
  for (uint64_t i = 1; i <= 40; ++i) {
    items.push_back({i, std::ceil(rng.UniformDouble(1, 30))});
  }
  // For a fixed key, E[1{included}] == E[F_w(threshold_without_key)]; use
  // the estimator identity instead: the HT adjusted weights must average
  // to the true weight for every key.
  std::vector<RunningStat> adjusted(items.size());
  const int trials = 30000;
  for (int t = 0; t < trials; ++t) {
    const auto sketch = BottomKSample(items, 10, RankFamily::kPps,
                                      SeedFunction(Mix64(t * 31 + 7)));
    std::vector<double> per_key(items.size(), 0.0);
    for (const auto& e : sketch.entries) {
      per_key[e.key - 1] = sketch.AdjustedWeight(e);
    }
    for (size_t i = 0; i < items.size(); ++i) adjusted[i].Add(per_key[i]);
  }
  for (size_t i = 0; i < items.size(); ++i) {
    EXPECT_NEAR(adjusted[i].mean(), items[i].weight,
                5.0 * adjusted[i].standard_error())
        << "key " << items[i].key;
  }
}

TEST(OrderSamplingTest, CoordinatedSketchesTrackValueChangesConsistently) {
  // Consistent ranks (Section 7.2): when one instance's values dominate
  // another's everywhere, its bottom-k sample "covers" the other's in rank:
  // every key sampled in the smaller-valued instance with rank r also has
  // rank <= r in the larger-valued instance.
  Rng rng(13);
  std::vector<WeightedItem> small, large;
  for (uint64_t i = 1; i <= 100; ++i) {
    const double w = rng.UniformDouble(1, 20);
    small.push_back({i, w});
    large.push_back({i, w * rng.UniformDouble(1.0, 3.0)});
  }
  const SeedFunction seed(77);
  const auto sk_small = BottomKSample(small, 15, RankFamily::kExp, seed);
  const auto sk_large = BottomKSample(large, 15, RankFamily::kExp, seed);
  std::map<uint64_t, double> large_ranks;
  for (const auto& item : large) {
    large_ranks[item.key] =
        RankValue(RankFamily::kExp, item.weight, seed(item.key));
  }
  for (const auto& e : sk_small.entries) {
    EXPECT_LE(large_ranks[e.key], e.rank + 1e-15) << e.key;
  }
}

TEST(OrderSamplingTest, ThresholdDistributionShiftsWithK) {
  // Larger k => larger (k+1)-st smallest rank threshold, monotonically in
  // expectation and per fixed seed.
  Rng rng(17);
  std::vector<WeightedItem> items;
  for (uint64_t i = 1; i <= 200; ++i) {
    items.push_back({i, rng.UniformDouble(0.5, 5.0)});
  }
  const SeedFunction seed(5);
  double last = 0.0;
  for (int k : {5, 20, 80, 150}) {
    const auto sketch = BottomKSample(items, k, RankFamily::kPps, seed);
    EXPECT_GT(sketch.threshold, last);
    last = sketch.threshold;
  }
}

TEST(OrderSamplingTest, BottomKSubsetSumVarianceShrinksWithK) {
  Rng rng(19);
  std::vector<WeightedItem> items;
  for (uint64_t i = 1; i <= 100; ++i) {
    items.push_back({i, std::ceil(rng.UniformDouble(1, 50))});
  }
  auto pred = [](uint64_t key) { return key % 4 == 0; };
  auto variance_at_k = [&](int k) {
    RunningStat stat;
    for (int t = 0; t < 8000; ++t) {
      const auto sketch = BottomKSample(items, k, RankFamily::kExp,
                                        SeedFunction(Mix64(t * 13 + 1)));
      stat.Add(BottomKSubsetSum(sketch, pred));
    }
    return stat.sample_variance();
  };
  const double v10 = variance_at_k(10);
  const double v40 = variance_at_k(40);
  EXPECT_LT(v40, 0.5 * v10);
}

}  // namespace
}  // namespace pie
