// Unit tests of the pluggable filesystem layer (util/fs.h) and the persist
// retry policy (persist/retry.h): POSIX round-trips, WriteFileAtomic's
// short-write/EINTR loop under injected append limits, FaultInjectingFs
// script semantics (fail-at-Nth, typed faults, crash freezing), retry
// classification and deterministic backoff, and the recovery scan's
// skip-with-metric behavior when files vanish mid-scan.

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "persist/checkpoint.h"
#include "persist/retry.h"
#include "store/sketch_store.h"
#include "util/fs.h"
#include "util/status.h"

namespace pie {
namespace {

std::string FreshDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::string Payload(size_t n) {
  std::string payload;
  payload.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    payload.push_back(static_cast<char>('a' + (i * 31 % 26)));
  }
  return payload;
}

TEST(FsTest, WriteFileAtomicRoundTrip) {
  const std::string dir = FreshDir("fs_roundtrip");
  FileSystem& fs = FileSystem::Default();
  const std::string payload = Payload(100000);
  ASSERT_TRUE(WriteFileAtomic(fs, dir, "blob.bin", payload).ok());
  auto read = fs.ReadFile(dir + "/blob.bin");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, payload);
  // No temp debris after a clean write.
  auto names = fs.ListDir(dir);
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names->size(), 1u);
}

TEST(FsTest, ReadMissingFileIsNotFound) {
  const std::string dir = FreshDir("fs_missing");
  auto read = FileSystem::Default().ReadFile(dir + "/nope");
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kNotFound);
}

TEST(FsTest, RemoveMissingFileIsNotFound) {
  const std::string dir = FreshDir("fs_rm_missing");
  const Status status = FileSystem::Default().RemoveFile(dir + "/nope");
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

TEST(FsTest, ListMissingDirIsNotFound) {
  auto names =
      FileSystem::Default().ListDir(testing::TempDir() + "/no_such_dir_xyz");
  ASSERT_FALSE(names.ok());
  EXPECT_EQ(names.status().code(), StatusCode::kNotFound);
}

TEST(FaultFsTest, ShortWritesStillCompleteAtomically) {
  // An append limit of 7 forces WriteFileAtomic's loop through ~hundreds
  // of short writes; the final bytes must still be exact.
  const std::string dir = FreshDir("fs_short_writes");
  FaultInjectingFs fs(&FileSystem::Default(), /*seed=*/1);
  fs.SetAppendLimit(7);
  const std::string payload = Payload(1000);
  ASSERT_TRUE(WriteFileAtomic(fs, dir, "blob.bin", payload).ok());
  auto read = FileSystem::Default().ReadFile(dir + "/blob.bin");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, payload);
}

TEST(FaultFsTest, ZeroProgressAppendFailsTyped) {
  // EINTR-forever: appends that never land must surface Unavailable, not
  // hang (the 1000-stall guard).
  const std::string dir = FreshDir("fs_stall");
  FaultInjectingFs fs(&FileSystem::Default(), 1);
  fs.SetAppendLimit(0);
  const Status status = WriteFileAtomic(fs, dir, "blob.bin", Payload(10));
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  // The failed write's temp file was cleaned up.
  auto names = FileSystem::Default().ListDir(dir);
  ASSERT_TRUE(names.ok());
  EXPECT_TRUE(names->empty());
}

TEST(FaultFsTest, FailNthOpIsOneShot) {
  const std::string dir = FreshDir("fs_fail_nth");
  FaultInjectingFs fs(&FileSystem::Default(), 1);
  // Op 1 is the NewWritableFile of the first WriteFileAtomic.
  fs.FailOp(1, Status::Unavailable("injected ENOSPC"));
  const Status first = WriteFileAtomic(fs, dir, "a", "hello");
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.code(), StatusCode::kUnavailable);
  // The script entry is consumed: the retry succeeds.
  EXPECT_TRUE(WriteFileAtomic(fs, dir, "a", "hello").ok());
}

TEST(FaultFsTest, TypedFaultTargetsOpClass) {
  // EIO on the next fsync only; creates/appends/renames untouched.
  const std::string dir = FreshDir("fs_typed");
  FaultInjectingFs fs(&FileSystem::Default(), 1);
  fs.FailNextOps(FsOp::kSync, 1, Status::Internal("injected EIO"));
  const Status status = WriteFileAtomic(fs, dir, "a", "hello");
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_TRUE(WriteFileAtomic(fs, dir, "a", "hello").ok());
}

TEST(FaultFsTest, CrashFreezesEveryLaterOp) {
  const std::string dir = FreshDir("fs_crash");
  FaultInjectingFs fs(&FileSystem::Default(), 1);
  ASSERT_TRUE(WriteFileAtomic(fs, dir, "a", "hello").ok());
  const uint64_t clean_ops = fs.ops();
  ASSERT_GT(clean_ops, 0u);
  fs.Reset();
  fs.CrashAtOp(2);
  EXPECT_FALSE(WriteFileAtomic(fs, dir, "b", "world").ok());
  EXPECT_TRUE(fs.crashed());
  // Everything afterwards fails; the directory state is frozen.
  EXPECT_FALSE(fs.ReadFile(dir + "/a").ok());
  EXPECT_FALSE(fs.ListDir(dir).ok());
  EXPECT_FALSE(fs.RemoveFile(dir + "/a").ok());
  // The pre-crash file is untouched underneath.
  auto read = FileSystem::Default().ReadFile(dir + "/a");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "hello");
}

TEST(FaultFsTest, TornWriteIsDeterministicInSeed) {
  // Crash on an append: a seeded strict-prefix lands. Same seed, same
  // script => same bytes on disk, bit for bit.
  const std::string payload = Payload(5000);
  std::string first_bytes;
  for (int round = 0; round < 2; ++round) {
    const std::string dir = FreshDir("fs_torn");
    FaultInjectingFs fs(&FileSystem::Default(), /*seed=*/42);
    fs.CrashAtOp(2);  // op 1 = create, op 2 = first append
    ASSERT_FALSE(WriteFileAtomic(fs, dir, "blob", payload).ok());
    auto read = FileSystem::Default().ReadFile(dir + "/blob.tmp");
    ASSERT_TRUE(read.ok());
    EXPECT_LT(read->size(), payload.size());
    EXPECT_EQ(*read, payload.substr(0, read->size()));
    if (round == 0) {
      first_bytes = *read;
    } else {
      EXPECT_EQ(*read, first_bytes);
    }
  }
}

TEST(FaultFsTest, OpCountingIsStable) {
  // The torture harness learns op counts from a clean pass; the same
  // sequence of calls must count identically every time.
  uint64_t counts[2];
  for (int round = 0; round < 2; ++round) {
    const std::string dir = FreshDir("fs_counting");
    FaultInjectingFs fs(&FileSystem::Default(), 7);
    ASSERT_TRUE(WriteFileAtomic(fs, dir, "a", "payload").ok());
    ASSERT_TRUE(fs.ReadFile(dir + "/a").ok());
    ASSERT_TRUE(fs.ListDir(dir).ok());
    counts[round] = fs.ops();
  }
  EXPECT_EQ(counts[0], counts[1]);
  EXPECT_GT(counts[0], 0u);
}

TEST(RetryTest, OnlyUnavailableIsRetryable) {
  EXPECT_TRUE(persist::IsRetryable(Status::Unavailable("x")));
  EXPECT_FALSE(persist::IsRetryable(Status::OK()));
  EXPECT_FALSE(persist::IsRetryable(Status::Internal("x")));
  EXPECT_FALSE(persist::IsRetryable(Status::NotFound("x")));
  EXPECT_FALSE(persist::IsRetryable(Status::DataLoss("x")));
  EXPECT_FALSE(persist::IsRetryable(Status::InvalidArgument("x")));
}

TEST(RetryTest, BackoffIsBoundedAndDeterministic) {
  persist::RetryPolicy policy;
  policy.base_backoff_ms = 8;
  policy.max_backoff_ms = 1000;
  policy.jitter_seed = 99;
  for (int attempt = 1; attempt <= 12; ++attempt) {
    const int backoff = persist::BackoffMs(policy, attempt);
    long ceiling = static_cast<long>(policy.base_backoff_ms)
                   << (attempt - 1 > 20 ? 20 : attempt - 1);
    if (ceiling > policy.max_backoff_ms) ceiling = policy.max_backoff_ms;
    EXPECT_GE(backoff, static_cast<int>(ceiling / 2));
    EXPECT_LE(backoff, static_cast<int>(ceiling));
    // Deterministic: same (policy, attempt) => same value.
    EXPECT_EQ(backoff, persist::BackoffMs(policy, attempt));
  }
}

TEST(RetryTest, RunWithRetryRecoversFromTransientFailures) {
  persist::RetryPolicy policy;
  policy.max_retries = 3;
  policy.base_backoff_ms = 5;
  std::vector<int> sleeps;
  policy.sleep_ms = [&sleeps](int ms) { sleeps.push_back(ms); };
  int calls = 0;
  const Status status =
      persist::RunWithRetry(policy, "test_op", [&calls]() -> Status {
        ++calls;
        if (calls < 3) return Status::Unavailable("transient");
        return Status::OK();
      });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 3);
  ASSERT_EQ(sleeps.size(), 2u);  // two re-attempts, each after a backoff
  for (const int ms : sleeps) EXPECT_GT(ms, 0);
}

TEST(RetryTest, RunWithRetryStopsOnFatalStatus) {
  persist::RetryPolicy policy;
  policy.max_retries = 5;
  policy.sleep_ms = [](int) {};
  int calls = 0;
  const Status status =
      persist::RunWithRetry(policy, "test_op", [&calls]() -> Status {
        ++calls;
        return Status::DataLoss("fatal");
      });
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
  EXPECT_EQ(calls, 1);  // fatal errors are never re-attempted
}

TEST(RetryTest, RunWithRetryExhaustsBudget) {
  persist::RetryPolicy policy;
  policy.max_retries = 2;
  policy.sleep_ms = [](int) {};
  int calls = 0;
  const Status status =
      persist::RunWithRetry(policy, "test_op", [&calls]() -> Status {
        ++calls;
        return Status::Unavailable("still down");
      });
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(calls, 3);  // initial + max_retries
}

TEST(RetryTest, ParseBoundedEnvInt) {
  bool invalid = false;
  EXPECT_EQ(persist::ParseBoundedEnvInt("0", 100, 7, &invalid), 0);
  EXPECT_FALSE(invalid);
  EXPECT_EQ(persist::ParseBoundedEnvInt("100", 100, 7, &invalid), 100);
  EXPECT_FALSE(invalid);
  EXPECT_EQ(persist::ParseBoundedEnvInt("101", 100, 7, &invalid), 7);
  EXPECT_TRUE(invalid);
  EXPECT_EQ(persist::ParseBoundedEnvInt("abc", 100, 7, &invalid), 7);
  EXPECT_TRUE(invalid);
  EXPECT_EQ(persist::ParseBoundedEnvInt("-1", 100, 7, &invalid), 7);
  EXPECT_TRUE(invalid);
  EXPECT_EQ(persist::ParseBoundedEnvInt("", 100, 7, &invalid), 7);
  EXPECT_TRUE(invalid);
  EXPECT_EQ(persist::ParseBoundedEnvInt("9999999999", 100, 7, &invalid), 7);
  EXPECT_TRUE(invalid);
  // nullptr falls back too (the unset case is filtered before parsing).
  EXPECT_EQ(persist::ParseBoundedEnvInt(nullptr, 100, 7, &invalid), 7);
  EXPECT_TRUE(invalid);
}

TEST(RetryTest, CheckpointWriteSurvivesTransientFaults) {
  // End-to-end: a checkpoint whose first two fs ops fail transiently
  // still lands, through the RunWithRetry wrapping in WriteCheckpoint.
  const std::string dir = FreshDir("retry_checkpoint");
  SketchStoreOptions store_options;
  store_options.num_shards = 2;
  store_options.default_tau = 4.0;
  SketchStore store(store_options);
  for (uint64_t k = 1; k <= 200; ++k) store.Update(0, k, 1.0);

  FaultInjectingFs fs(&FileSystem::Default(), 3);
  fs.FailNextOps(FsOp::kCreate, 1, Status::Unavailable("injected ENOSPC"));
  persist::CheckpointOptions options;
  options.fs = &fs;
  options.retry.max_retries = 2;
  options.retry.sleep_ms = [](int) {};
  ASSERT_TRUE(persist::WriteCheckpoint(*store.Snapshot(), dir, options).ok());
  auto recovered = SketchStore::Recover(dir);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ((*recovered)->Snapshot()->UpdateCount(0), 200u);
}

TEST(ScanSkipTest, VanishedFilesFallBackToOlderGeneration) {
  // Generation 2's shard file "vanishes" (NotFound on read, as if a
  // concurrent GC unlinked it between the scan and the read): recovery
  // serves generation 1 instead of hard-failing.
  const std::string dir = FreshDir("scan_skip");
  SketchStoreOptions store_options;
  store_options.num_shards = 2;
  store_options.default_tau = 4.0;
  SketchStore store(store_options);
  for (uint64_t k = 1; k <= 100; ++k) store.Update(0, k, 1.0);
  ASSERT_TRUE(store.Checkpoint(dir).ok());  // generation 1
  for (uint64_t k = 101; k <= 200; ++k) store.Update(0, k, 1.0);
  ASSERT_TRUE(store.Checkpoint(dir).ok());  // generation 2

  FaultInjectingFs fs(&FileSystem::Default(), 5);
  // Op 1 is the ListDir of the manifest scan, op 2 reads generation 2's
  // manifest, op 3 its first shard file -- fail that one as NotFound.
  fs.FailOp(3, Status::NotFound("injected: file vanished mid-scan"));
  auto loaded = persist::LoadLatestCheckpoint(fs, dir);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->manifest.seq, 1u);
}

TEST(ScanSkipTest, ListDirToleratesVanishingEntries) {
  // The POSIX ListDir must not throw or hard-error on a directory whose
  // entries are being unlinked concurrently; simplest observable contract:
  // listing a live directory succeeds and returns exactly its entries.
  const std::string dir = FreshDir("scan_list");
  FileSystem& fs = FileSystem::Default();
  ASSERT_TRUE(WriteFileAtomic(fs, dir, "one", "1").ok());
  ASSERT_TRUE(WriteFileAtomic(fs, dir, "two", "2").ok());
  auto names = fs.ListDir(dir);
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names->size(), 2u);
}

}  // namespace
}  // namespace pie
