// Tests for max-dominance over priority (bottom-k) sketches: the rank-
// conditioning reduction to per-key weighted-PPS outcomes.

#include <cmath>

#include "aggregate/priority_dominance.h"
#include "core/functions.h"
#include "gtest/gtest.h"
#include "util/hashing.h"
#include "util/random.h"
#include "util/stats.h"

namespace pie {
namespace {

MultiInstanceData SmallData(Rng& rng, int keys) {
  MultiInstanceData data(2);
  for (int k = 1; k <= keys; ++k) {
    const double v1 =
        rng.Bernoulli(0.85) ? std::ceil(rng.UniformDouble(1, 40)) : 0.0;
    const double v2 =
        rng.Bernoulli(0.85) ? std::ceil(rng.UniformDouble(1, 40)) : 0.0;
    if (v1 > 0) data.Set(static_cast<uint64_t>(k), 0, v1);
    if (v2 > 0) data.Set(static_cast<uint64_t>(k), 1, v2);
  }
  return data;
}

TEST(PriorityDominanceTest, ThresholdsFromRanks) {
  Rng rng(3);
  const auto data = SmallData(rng, 50);
  const auto sk = BuildPrioritySketch(data.InstanceItems(0), 10, 77);
  ASSERT_EQ(sk.sketch.entries.size(), 10u);
  EXPECT_NEAR(sk.InclusionTau(), 1.0 / sk.sketch.threshold, 1e-15);
  EXPECT_NEAR(sk.ExclusionTau(), 1.0 / sk.sketch.entries.back().rank, 1e-15);
  // (k+1)-st rank > k-th rank => inclusion tau < exclusion tau.
  EXPECT_LT(sk.InclusionTau(), sk.ExclusionTau());
}

TEST(PriorityDominanceTest, ExactSketchGivesExactEstimate) {
  Rng rng(5);
  const auto data = SmallData(rng, 20);
  const auto s1 = BuildPrioritySketch(data.InstanceItems(0), 100, 1);
  const auto s2 = BuildPrioritySketch(data.InstanceItems(1), 100, 2);
  const auto est = EstimateMaxDominancePriority(s1, s2);
  const double truth = data.SumAggregate(MaxOf);
  EXPECT_NEAR(est.l, truth, 1e-6 * truth);
  EXPECT_NEAR(est.ht, truth, 1e-6 * truth);
}

TEST(PriorityDominanceTest, UnbiasedOverSalts) {
  Rng rng(7);
  const auto data = SmallData(rng, 80);
  const double truth = data.SumAggregate(MaxOf);
  const auto items1 = data.InstanceItems(0);
  const auto items2 = data.InstanceItems(1);
  RunningStat ht, l;
  for (uint64_t trial = 0; trial < 12000; ++trial) {
    const auto s1 = BuildPrioritySketch(items1, 25, Mix64(2 * trial + 1));
    const auto s2 = BuildPrioritySketch(items2, 25, Mix64(2 * trial + 2));
    const auto est = EstimateMaxDominancePriority(s1, s2);
    ht.Add(est.ht);
    l.Add(est.l);
  }
  // Rank conditioning yields conditional (hence marginal) unbiasedness;
  // allow the usual MC band.
  EXPECT_NEAR(ht.mean(), truth, 5 * ht.standard_error());
  EXPECT_NEAR(l.mean(), truth, 5 * l.standard_error());
  EXPECT_LT(l.sample_variance(), 0.7 * ht.sample_variance());
}

TEST(PriorityDominanceTest, SelectionPredicate) {
  Rng rng(11);
  const auto data = SmallData(rng, 60);
  auto pred = [](uint64_t key) { return key % 3 == 0; };
  const double truth = data.SumAggregate(MaxOf, pred);
  const auto items1 = data.InstanceItems(0);
  const auto items2 = data.InstanceItems(1);
  RunningStat l;
  for (uint64_t trial = 0; trial < 8000; ++trial) {
    const auto s1 = BuildPrioritySketch(items1, 20, Mix64(7 * trial + 1));
    const auto s2 = BuildPrioritySketch(items2, 20, Mix64(7 * trial + 2));
    l.Add(EstimateMaxDominancePriority(s1, s2, pred).l);
  }
  EXPECT_NEAR(l.mean(), truth, 5 * l.standard_error());
}

TEST(PriorityDominanceTest, MatchesPoissonEfficiencyShape) {
  // The Figure 7 caption's claim: priority sampling gives essentially the
  // same HT/L efficiency gap as Poisson PPS. Compare empirical variance
  // ratios at matched expected sample size.
  Rng rng(13);
  const auto data = SmallData(rng, 120);
  const auto items1 = data.InstanceItems(0);
  const auto items2 = data.InstanceItems(1);
  const int k = 30;
  RunningStat pri_ht, pri_l;
  for (uint64_t trial = 0; trial < 8000; ++trial) {
    const auto s1 = BuildPrioritySketch(items1, k, Mix64(3 * trial + 1));
    const auto s2 = BuildPrioritySketch(items2, k, Mix64(3 * trial + 2));
    const auto est = EstimateMaxDominancePriority(s1, s2);
    pri_ht.Add(est.ht);
    pri_l.Add(est.l);
  }
  const double ratio = pri_ht.sample_variance() / pri_l.sample_variance();
  EXPECT_GT(ratio, 1.8);  // the same ~2-3x gap as the Poisson pipeline
  EXPECT_LT(ratio, 5.0);
}

}  // namespace
}  // namespace pie
