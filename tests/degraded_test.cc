// Degraded-mode serving: recovery with RecoverPolicy::kDegraded marks
// unrecoverable shards absent instead of failing the generation, and
// QueryService answers every aggregate from the surviving shards with a
// coverage annotation and conservatively widened (cluster-sampling)
// intervals. The answers must be deterministic -- bitwise identical across
// thread counts (and across PIE_SIMD builds; CI runs this test in both) --
// and a degraded store must refuse to checkpoint.

#include <bit>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "persist/format.h"
#include "store/query_service.h"
#include "store/sketch_store.h"
#include "util/random.h"
#include "util/status.h"

namespace pie {
namespace {

constexpr int kThreadCounts[] = {1, 2, 8};
constexpr int kNumShards = 8;

SketchStoreOptions StoreOptions() {
  SketchStoreOptions options;
  options.num_shards = kNumShards;
  options.default_tau = 16.0;
  options.instance_tau[10] = 4.0;  // unit weights: tau = 1/p
  options.instance_tau[11] = 4.0;
  options.salt = 909090;
  return options;
}

/// Two weighted instances with overlapping keys (dominance / L1) plus two
/// unit-weight instances (DistinctUnion). Deterministic.
std::unique_ptr<SketchStore> BuildStore() {
  auto store = std::make_unique<SketchStore>(StoreOptions());
  Rng rng(777);
  for (uint64_t key = 1; key <= 4000; ++key) {
    store->Update(0, key, std::ceil(64.0 / (1 + rng.UniformInt(63))));
    if (key % 2 == 0) {
      store->Update(1, key, std::ceil(32.0 / (1 + rng.UniformInt(31))));
    }
    store->Update(10, key, 1.0);
    if (key % 3 == 0) store->Update(11, key + 1000, 1.0);
  }
  return store;
}

std::string FreshDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/degraded_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

/// Checkpoints a fresh store into `dir` and deletes the given shard files
/// of its (single) generation.
void WriteStoreWithLostShards(const std::string& dir,
                              const std::vector<uint32_t>& lost) {
  const auto store = BuildStore();
  ASSERT_TRUE(store->Checkpoint(dir).ok());
  for (const uint32_t s : lost) {
    const std::string path =
        dir + "/" + persist::ShardFileName(/*seq=*/1, s);
    ASSERT_TRUE(std::filesystem::remove(path)) << path;
  }
}

/// All four aggregate types answered from `service`, as intervals in a
/// fixed order: MaxDominance (ht, l), MinDominanceHt, L1Distance,
/// DistinctUnion (ht, l).
std::vector<IntervalEstimate> AllAggregates(const QueryService& service) {
  std::vector<IntervalEstimate> out;
  const auto max_dom = service.MaxDominance(0, 1);
  EXPECT_TRUE(max_dom.ok()) << max_dom.status().ToString();
  out.push_back(max_dom->ht);
  out.push_back(max_dom->l);
  const auto min_dom = service.MinDominanceHt(0, 1);
  EXPECT_TRUE(min_dom.ok()) << min_dom.status().ToString();
  out.push_back(*min_dom);
  const auto l1 = service.L1Distance(0, 1);
  EXPECT_TRUE(l1.ok()) << l1.status().ToString();
  out.push_back(*l1);
  const auto distinct = service.DistinctUnion({10, 11});
  EXPECT_TRUE(distinct.ok()) << distinct.status().ToString();
  out.push_back(distinct->ht);
  out.push_back(distinct->l);
  return out;
}

std::vector<uint64_t> Bits(const std::vector<IntervalEstimate>& intervals) {
  std::vector<uint64_t> bits;
  for (const auto& e : intervals) {
    bits.push_back(std::bit_cast<uint64_t>(e.estimate));
    bits.push_back(std::bit_cast<uint64_t>(e.variance));
    bits.push_back(std::bit_cast<uint64_t>(e.std_err));
    bits.push_back(std::bit_cast<uint64_t>(e.lo));
    bits.push_back(std::bit_cast<uint64_t>(e.hi));
    bits.push_back(std::bit_cast<uint64_t>(e.coverage));
  }
  return bits;
}

TEST(DegradedTest, DegradedRecoverMarksLostShardsAbsent) {
  const std::string dir = FreshDir("mark");
  WriteStoreWithLostShards(dir, {1, 5});

  // Strict recovery must NOT serve the damaged (only) generation.
  auto strict = SketchStore::Recover(dir);
  ASSERT_FALSE(strict.ok());
  EXPECT_EQ(strict.status().code(), StatusCode::kDataLoss);

  RecoverOptions options;
  options.policy = RecoverPolicy::kDegraded;
  auto degraded = SketchStore::Recover(dir, options);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  const SketchStore& store = **degraded;
  EXPECT_EQ(store.absent_shards(), 2);
  EXPECT_TRUE(store.ShardAbsent(1));
  EXPECT_TRUE(store.ShardAbsent(5));
  EXPECT_FALSE(store.ShardAbsent(0));

  const auto snapshot = store.Snapshot();
  EXPECT_EQ(snapshot->absent_shards(), 2);
  EXPECT_DOUBLE_EQ(snapshot->coverage(), 6.0 / 8.0);
  // The surviving shards carry fewer records than the full store.
  const auto full = BuildStore();
  EXPECT_LT(snapshot->UpdateCount(0), full->Snapshot()->UpdateCount(0));
  EXPECT_GT(snapshot->UpdateCount(0), 0u);
}

TEST(DegradedTest, DegradedNeverResurrectsUncommittedGeneration) {
  // Generation 2 has every shard file but NO manifest (crashed before its
  // commit point): degraded recovery must serve complete generation 1, not
  // stitch together the uncommitted one.
  const std::string dir = FreshDir("uncommitted");
  const auto store = BuildStore();
  ASSERT_TRUE(store->Checkpoint(dir).ok());
  ASSERT_TRUE(store->Checkpoint(dir).ok());
  ASSERT_TRUE(std::filesystem::remove(
      dir + "/" + persist::ManifestFileName(/*seq=*/2)));

  RecoverOptions options;
  options.policy = RecoverPolicy::kDegraded;
  auto degraded = SketchStore::Recover(dir, options);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_EQ((*degraded)->absent_shards(), 0);
  EXPECT_EQ((*degraded)->Snapshot()->UpdateCount(0),
            store->Snapshot()->UpdateCount(0));
}

TEST(DegradedTest, AllShardsLostIsDataLoss) {
  const std::string dir = FreshDir("all_lost");
  WriteStoreWithLostShards(dir, {0, 1, 2, 3, 4, 5, 6, 7});
  RecoverOptions options;
  options.policy = RecoverPolicy::kDegraded;
  auto degraded = SketchStore::Recover(dir, options);
  ASSERT_FALSE(degraded.ok());
  EXPECT_EQ(degraded.status().code(), StatusCode::kDataLoss);
}

TEST(DegradedTest, DegradedStoreRefusesCheckpoint) {
  const std::string dir = FreshDir("refuse");
  WriteStoreWithLostShards(dir, {2});
  RecoverOptions options;
  options.policy = RecoverPolicy::kDegraded;
  auto degraded = SketchStore::Recover(dir, options);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();

  const std::string out = FreshDir("refuse_out");
  const Status status = (*degraded)->Checkpoint(out);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(DegradedTest, DegradedAnswersAllAggregatesDeterministically) {
  const std::string dir = FreshDir("determinism");
  WriteStoreWithLostShards(dir, {1, 5});
  RecoverOptions options;
  options.policy = RecoverPolicy::kDegraded;
  auto degraded = SketchStore::Recover(dir, options);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  const auto snapshot = (*degraded)->Snapshot();

  std::vector<uint64_t> want;
  for (const int threads : kThreadCounts) {
    QueryServiceOptions query_options;
    query_options.num_threads = threads;
    QueryService service(snapshot, query_options);
    const auto intervals = AllAggregates(service);
    for (const auto& e : intervals) {
      EXPECT_DOUBLE_EQ(e.coverage, 6.0 / 8.0);
      EXPECT_GT(e.estimate, 0.0);
      EXPECT_GE(e.hi, e.lo);
    }
    const std::vector<uint64_t> bits = Bits(intervals);
    if (want.empty()) {
      want = bits;
    } else {
      EXPECT_EQ(bits, want)
          << "degraded answers drifted at num_threads=" << threads;
    }
  }
  ASSERT_FALSE(want.empty());
}

TEST(DegradedTest, DegradedIntervalsAreConservative) {
  // The cluster-sampling extrapolation must not narrow error bars: for
  // every aggregate the degraded CI is at least as wide as the full-store
  // CI (1/c^2 within-shard scaling plus the between-shard term).
  const auto full = BuildStore();
  QueryService full_service(full->Snapshot());
  const auto full_intervals = AllAggregates(full_service);

  const std::string dir = FreshDir("conservative");
  WriteStoreWithLostShards(dir, {1, 5});
  RecoverOptions options;
  options.policy = RecoverPolicy::kDegraded;
  auto degraded = SketchStore::Recover(dir, options);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  QueryService degraded_service((*degraded)->Snapshot());
  const auto degraded_intervals = AllAggregates(degraded_service);

  ASSERT_EQ(full_intervals.size(), degraded_intervals.size());
  for (size_t i = 0; i < full_intervals.size(); ++i) {
    const double full_width = full_intervals[i].hi - full_intervals[i].lo;
    const double degraded_width =
        degraded_intervals[i].hi - degraded_intervals[i].lo;
    EXPECT_GE(degraded_width, full_width) << "aggregate " << i;
    EXPECT_DOUBLE_EQ(full_intervals[i].coverage, 1.0) << "aggregate " << i;
    EXPECT_DOUBLE_EQ(degraded_intervals[i].coverage, 6.0 / 8.0)
        << "aggregate " << i;
  }
}

TEST(DegradedTest, SelectorAggregatesCarryCoverageToo) {
  const std::string dir = FreshDir("auto");
  WriteStoreWithLostShards(dir, {3});
  RecoverOptions options;
  options.policy = RecoverPolicy::kDegraded;
  auto degraded = SketchStore::Recover(dir, options);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  QueryService service((*degraded)->Snapshot());

  const auto max_auto = service.MaxDominanceAuto(0, 1);
  ASSERT_TRUE(max_auto.ok()) << max_auto.status().ToString();
  EXPECT_DOUBLE_EQ(max_auto->interval.coverage, 7.0 / 8.0);
  const auto distinct_auto = service.DistinctUnionAuto({10, 11});
  ASSERT_TRUE(distinct_auto.ok()) << distinct_auto.status().ToString();
  EXPECT_DOUBLE_EQ(distinct_auto->interval.coverage, 7.0 / 8.0);
}

TEST(DegradedTest, WithVarianceOffKeepsZeroWidthContract) {
  const std::string dir = FreshDir("novariance");
  WriteStoreWithLostShards(dir, {1, 5});
  RecoverOptions options;
  options.policy = RecoverPolicy::kDegraded;
  auto degraded = SketchStore::Recover(dir, options);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();

  QueryServiceOptions query_options;
  query_options.with_variance = false;
  QueryService service((*degraded)->Snapshot(), query_options);
  for (const auto& e : AllAggregates(service)) {
    EXPECT_EQ(std::bit_cast<uint64_t>(e.std_err),
              std::bit_cast<uint64_t>(0.0));
    EXPECT_EQ(std::bit_cast<uint64_t>(e.lo),
              std::bit_cast<uint64_t>(e.estimate));
    EXPECT_EQ(std::bit_cast<uint64_t>(e.hi),
              std::bit_cast<uint64_t>(e.estimate));
    EXPECT_DOUBLE_EQ(e.coverage, 6.0 / 8.0);
  }
}

TEST(DegradedTest, CompleteStoreReportsFullCoverage) {
  // The strict path is untouched: a complete store's answers carry
  // coverage 1.0 (the byte-identical gate for strict-mode answers is
  // tests/persist_determinism_test.cc).
  const auto full = BuildStore();
  QueryService service(full->Snapshot());
  for (const auto& e : AllAggregates(service)) {
    EXPECT_DOUBLE_EQ(e.coverage, 1.0);
  }
}

}  // namespace
}  // namespace pie
