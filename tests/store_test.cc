// Tests for the store layer: one-pass streaming sketch builders
// (equivalence with the batch builders on any arrival order, exact
// merges), the sharded SketchStore's snapshot semantics, and the
// QueryService's parity with the aggregate-layer estimators.

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

#include "aggregate/distinct.h"
#include "aggregate/distinct_multi.h"
#include "aggregate/dominance.h"
#include "aggregate/sketch.h"
#include "gtest/gtest.h"
#include "sampling/bottomk.h"
#include "store/query_service.h"
#include "store/sketch_store.h"
#include "store/streaming_sketch.h"
#include "util/random.h"
#include "workload/sets.h"

namespace pie {
namespace {

std::vector<WeightedItem> ZipfishItems(int n, Rng& rng) {
  std::vector<WeightedItem> items;
  for (int i = 0; i < n; ++i) {
    items.push_back({static_cast<uint64_t>(i + 1),
                     std::ceil(100.0 / (1 + rng.UniformInt(50)))});
  }
  return items;
}

std::vector<std::vector<WeightedItem>> Permutations(
    const std::vector<WeightedItem>& items) {
  std::vector<std::vector<WeightedItem>> perms;
  perms.push_back(items);
  perms.push_back({items.rbegin(), items.rend()});
  std::mt19937_64 shuffler(12345);
  for (int i = 0; i < 3; ++i) {
    auto shuffled = items;
    std::shuffle(shuffled.begin(), shuffled.end(), shuffler);
    perms.push_back(std::move(shuffled));
  }
  return perms;
}

// ---------------------------------------------------------------------------
// StreamingPpsSketch
// ---------------------------------------------------------------------------

TEST(StreamingPpsTest, MatchesBatchBuildOnAnyPermutation) {
  Rng rng(3);
  const auto items = ZipfishItems(300, rng);
  const double tau = 40.0;
  const uint64_t salt = 9;
  const auto batch = PpsInstanceSketch::Build(items, tau, salt);
  std::vector<WeightedItem> batch_sorted(batch.entries());
  std::sort(batch_sorted.begin(), batch_sorted.end(),
            [](const WeightedItem& a, const WeightedItem& b) {
              return a.key < b.key;
            });
  ASSERT_GT(batch.size(), 0);

  for (const auto& perm : Permutations(items)) {
    StreamingPpsSketch stream(tau, salt);
    for (const auto& item : perm) stream.Update(item.key, item.weight);
    const auto stream_sorted = stream.EntriesByKey();
    ASSERT_EQ(stream_sorted.size(), batch_sorted.size());
    for (size_t i = 0; i < stream_sorted.size(); ++i) {
      EXPECT_EQ(stream_sorted[i].key, batch_sorted[i].key);
      EXPECT_EQ(stream_sorted[i].weight, batch_sorted[i].weight);  // bitwise
    }
    EXPECT_EQ(stream.num_updates(), items.size());
  }
}

TEST(StreamingPpsTest, MergeOfDisjointPartsMatchesDirect) {
  Rng rng(5);
  const auto items = ZipfishItems(400, rng);
  const double tau = 25.0;
  const uint64_t salt = 77;
  StreamingPpsSketch direct(tau, salt);
  for (const auto& item : items) direct.Update(item.key, item.weight);

  std::vector<StreamingPpsSketch> parts(
      4, StreamingPpsSketch(tau, salt));
  for (const auto& item : items) {
    parts[Mix64(item.key) % 4].Update(item.key, item.weight);
  }
  StreamingPpsSketch merged(tau, salt);
  for (const auto& part : parts) merged.Merge(part);

  const auto direct_sorted = direct.EntriesByKey();
  const auto merged_sorted = merged.EntriesByKey();
  ASSERT_EQ(direct_sorted.size(), merged_sorted.size());
  for (size_t i = 0; i < direct_sorted.size(); ++i) {
    EXPECT_EQ(direct_sorted[i].key, merged_sorted[i].key);
    EXPECT_EQ(direct_sorted[i].weight, merged_sorted[i].weight);
  }
  EXPECT_EQ(merged.num_updates(), direct.num_updates());
}

TEST(StreamingPpsTest, SampledKeyAccumulatesRepeats) {
  StreamingPpsSketch stream(10.0, /*salt=*/1);
  // Weight 100 clears any threshold; repeats accumulate exactly.
  stream.Update(42, 100.0);
  stream.Update(42, 7.0);
  double value = 0.0;
  ASSERT_TRUE(stream.Lookup(42, &value));
  EXPECT_EQ(value, 107.0);
  EXPECT_EQ(stream.size(), 1);
  EXPECT_EQ(stream.num_updates(), 2u);
}

TEST(StreamingPpsTest, TemplatedSubsetSumMatchesSketchPath) {
  Rng rng(11);
  const auto items = ZipfishItems(200, rng);
  StreamingPpsSketch stream(60.0, /*salt=*/13);
  for (const auto& item : items) stream.Update(item.key, item.weight);
  const auto view = PpsInstanceSketch::FromStreaming(stream);
  auto pred = [](uint64_t key) { return key % 3 == 0; };
  EXPECT_EQ(stream.SubsetSumEstimate(pred), view.SubsetSumEstimate(pred));
}

// ---------------------------------------------------------------------------
// StreamingBottomkSketch
// ---------------------------------------------------------------------------

void ExpectSketchesIdentical(const BottomKSketch& a, const BottomKSketch& b) {
  EXPECT_EQ(a.family, b.family);
  EXPECT_EQ(a.k, b.k);
  EXPECT_EQ(a.threshold, b.threshold);  // bitwise (also covers +inf)
  ASSERT_EQ(a.entries.size(), b.entries.size());
  for (size_t i = 0; i < a.entries.size(); ++i) {
    EXPECT_EQ(a.entries[i].key, b.entries[i].key);
    EXPECT_EQ(a.entries[i].weight, b.entries[i].weight);
    EXPECT_EQ(a.entries[i].rank, b.entries[i].rank);
  }
}

TEST(StreamingBottomkTest, MatchesBatchSamplerOnAnyPermutation) {
  Rng rng(7);
  const auto items = ZipfishItems(500, rng);
  for (RankFamily family : {RankFamily::kPps, RankFamily::kExp}) {
    const int k = 64;
    const uint64_t salt = 21;
    const auto batch = BottomKSample(items, k, family, SeedFunction(salt));
    for (const auto& perm : Permutations(items)) {
      StreamingBottomkSketch stream(k, family, salt);
      for (const auto& item : perm) stream.Update(item.key, item.weight);
      ExpectSketchesIdentical(stream.Finalize(), batch);
    }
  }
}

TEST(StreamingBottomkTest, MergeOfDisjointPartsMatchesDirect) {
  Rng rng(9);
  const auto items = ZipfishItems(300, rng);
  const int k = 48;
  const uint64_t salt = 33;
  const auto batch =
      BottomKSample(items, k, RankFamily::kPps, SeedFunction(salt));

  // Uneven split: one part smaller than k (infinite threshold), one large.
  std::vector<StreamingBottomkSketch> parts(
      3, StreamingBottomkSketch(k, RankFamily::kPps, salt));
  for (size_t i = 0; i < items.size(); ++i) {
    const int part = i < 10 ? 0 : (i % 2 == 0 ? 1 : 2);
    parts[static_cast<size_t>(part)].Update(items[i].key, items[i].weight);
  }
  StreamingBottomkSketch merged(k, RankFamily::kPps, salt);
  for (const auto& part : parts) merged.Merge(part);
  ExpectSketchesIdentical(merged.Finalize(), batch);
  EXPECT_EQ(merged.num_updates(), items.size());
}

TEST(StreamingBottomkTest, FewerThanKItemsIsExact) {
  StreamingBottomkSketch stream(10, RankFamily::kPps, /*salt=*/3);
  stream.Update(1, 5.0);
  stream.Update(2, 3.0);
  stream.Update(3, 0.0);  // never retained
  const auto sketch = stream.Finalize();
  EXPECT_EQ(sketch.entries.size(), 2u);
  EXPECT_TRUE(std::isinf(sketch.threshold));
}

// ---------------------------------------------------------------------------
// SketchStore snapshots
// ---------------------------------------------------------------------------

SketchStoreOptions SmallStoreOptions() {
  SketchStoreOptions options;
  options.num_shards = 4;
  options.default_tau = 30.0;
  options.salt = 101;
  return options;
}

TEST(SketchStoreTest, SnapshotReusesCleanShardsAndSeesWrites) {
  Rng rng(15);
  const auto items = ZipfishItems(200, rng);
  SketchStore store(SmallStoreOptions());
  store.UpdateBatch(0, items);

  const auto snap1 = store.Snapshot();
  const auto snap2 = store.Snapshot();
  for (int s = 0; s < store.num_shards(); ++s) {
    // Quiet shards republish nothing: both snapshots share the same
    // immutable per-shard capture.
    EXPECT_EQ(&snap1->Shard(s), &snap2->Shard(s)) << s;
  }

  // One write dirties exactly its shard.
  const uint64_t key = 999983;
  store.Update(0, key, 1e6);
  const auto snap3 = store.Snapshot();
  for (int s = 0; s < store.num_shards(); ++s) {
    if (s == store.ShardOf(key)) {
      EXPECT_NE(&snap1->Shard(s), &snap3->Shard(s));
    } else {
      EXPECT_EQ(&snap1->Shard(s), &snap3->Shard(s));
    }
  }
  // The old snapshot is immutable: the new key is visible only in snap3.
  EXPECT_FALSE(snap1->MergedInstance(0).Lookup(key, nullptr));
  EXPECT_TRUE(snap3->MergedInstance(0).Lookup(key, nullptr));
}

TEST(SketchStoreTest, MaterializeMatchesDirectBuild) {
  Rng rng(17);
  const auto items = ZipfishItems(500, rng);
  const auto options = SmallStoreOptions();
  SketchStore store(options);
  store.UpdateBatch(2, items);
  const auto snapshot = store.Snapshot();
  EXPECT_EQ(snapshot->Instances(), std::vector<int>{2});
  EXPECT_EQ(snapshot->UpdateCount(2), items.size());

  const auto materialized = MaterializeInstance(*snapshot, 2);
  const auto direct = PpsInstanceSketch::Build(items, options.default_tau,
                                               store.InstanceSalt(2));
  ASSERT_EQ(materialized.size(), direct.size());
  for (const auto& e : direct.entries()) {
    double value = 0.0;
    ASSERT_TRUE(materialized.Lookup(e.key, &value)) << e.key;
    EXPECT_EQ(value, e.weight);
  }
  EXPECT_EQ(materialized.tau(), direct.tau());
  EXPECT_EQ(materialized.salt(), direct.salt());
}

TEST(SketchStoreTest, SaltDerivation) {
  SketchStoreOptions options = SmallStoreOptions();
  {
    SketchStore store(options);
    EXPECT_NE(store.InstanceSalt(0), store.InstanceSalt(1));
  }
  options.coordinated = true;
  {
    SketchStore store(options);
    EXPECT_EQ(store.InstanceSalt(0), store.InstanceSalt(1));
    EXPECT_EQ(store.InstanceSalt(0), options.salt);
  }
}

TEST(SketchStoreTest, PerInstanceTauOverride) {
  SketchStoreOptions options = SmallStoreOptions();
  options.instance_tau[1] = 7.5;
  SketchStore store(options);
  EXPECT_EQ(store.TauFor(0), options.default_tau);
  EXPECT_EQ(store.TauFor(1), 7.5);
  store.Update(1, 4, 1.0);
  EXPECT_EQ(store.Snapshot()->TauFor(1), 7.5);
}

// ---------------------------------------------------------------------------
// QueryService parity with the aggregate layer
// ---------------------------------------------------------------------------

struct TwoInstanceStore {
  std::shared_ptr<SketchStore> store;
  std::vector<WeightedItem> items1, items2;
};

TwoInstanceStore MakeTwoInstanceStore() {
  Rng rng(23);
  TwoInstanceStore out;
  // Overlapping universes with distinct weights per instance.
  for (int i = 0; i < 600; ++i) {
    const uint64_t key = static_cast<uint64_t>(1 + rng.UniformInt(800));
    const double weight = std::ceil(100.0 / (1 + rng.UniformInt(30)));
    auto& items = i % 2 == 0 ? out.items1 : out.items2;
    bool seen = false;
    for (const auto& item : items) seen = seen || item.key == key;
    if (!seen) items.push_back({key, weight});
  }
  SketchStoreOptions options;
  options.num_shards = 8;
  options.default_tau = 20.0;
  options.salt = 5150;
  out.store = std::make_shared<SketchStore>(options);
  out.store->UpdateBatch(0, out.items1);
  out.store->UpdateBatch(1, out.items2);
  return out;
}

TEST(QueryServiceTest, MaxDominanceMatchesAggregatePath) {
  const auto fixture = MakeTwoInstanceStore();
  const auto snapshot = fixture.store->Snapshot();
  QueryService service(snapshot, {/*num_threads=*/1});
  const auto store_est = service.MaxDominance(0, 1);
  ASSERT_TRUE(store_est.ok());

  const auto s1 = MaterializeInstance(*snapshot, 0);
  const auto s2 = MaterializeInstance(*snapshot, 1);
  const auto direct = EstimateMaxDominance(s1, s2);
  EXPECT_NEAR(store_est->ht.estimate, direct.ht, 1e-9 * std::fabs(direct.ht));
  EXPECT_NEAR(store_est->l.estimate, direct.l, 1e-9 * std::fabs(direct.l));

  // The aggregate layer's snapshot overload is the same computation.
  const auto bridged = EstimateMaxDominance(*snapshot, 0, 1);
  EXPECT_EQ(bridged.ht, store_est->ht.estimate);
  EXPECT_EQ(bridged.l, store_est->l.estimate);
}

TEST(QueryServiceTest, MinAndL1MatchAggregatePath) {
  const auto fixture = MakeTwoInstanceStore();
  const auto snapshot = fixture.store->Snapshot();
  QueryService service(snapshot, {/*num_threads=*/1});
  const auto s1 = MaterializeInstance(*snapshot, 0);
  const auto s2 = MaterializeInstance(*snapshot, 1);

  const auto min_est = service.MinDominanceHt(0, 1);
  ASSERT_TRUE(min_est.ok());
  const double direct_min = EstimateMinDominanceHt(s1, s2);
  EXPECT_NEAR(min_est->estimate, direct_min, 1e-9 * std::fabs(direct_min));

  const auto l1_est = service.L1Distance(0, 1);
  ASSERT_TRUE(l1_est.ok());
  const double direct_l1 = EstimateL1Distance(s1, s2);
  EXPECT_NEAR(l1_est->estimate, direct_l1, 1e-9 * std::fabs(direct_l1));
  EXPECT_NEAR(EstimateL1Distance(*snapshot, 0, 1), l1_est->estimate,
              1e-12 * std::fabs(l1_est->estimate));
}

TEST(QueryServiceTest, ParallelScanIsBitwiseDeterministic) {
  const auto fixture = MakeTwoInstanceStore();
  const auto snapshot = fixture.store->Snapshot();
  const auto sequential =
      QueryService(snapshot, {/*num_threads=*/1}).MaxDominance(0, 1);
  const auto parallel =
      QueryService(snapshot, {/*num_threads=*/4}).MaxDominance(0, 1);
  ASSERT_TRUE(sequential.ok());
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(sequential->ht.estimate, parallel->ht.estimate);  // bitwise: fixed reduction order
  EXPECT_EQ(sequential->l.estimate, parallel->l.estimate);
  EXPECT_EQ(sequential->ht.variance, parallel->ht.variance);
  EXPECT_EQ(sequential->l.variance, parallel->l.variance);
}

TEST(QueryServiceTest, DistinctUnionMatchesClassificationPath) {
  const SetPair pair = MakeJaccardSetPair(3000, 0.4);
  SketchStoreOptions options;
  options.num_shards = 8;
  options.default_tau = 1.0 / 0.25;  // p = 0.25 membership sampling
  options.salt = 31337;
  SketchStore store(options);
  for (uint64_t key : pair.n1) store.Update(0, key, 1.0);
  for (uint64_t key : pair.n2) store.Update(1, key, 1.0);
  const auto snapshot = store.Snapshot();

  QueryService service(snapshot, {/*num_threads=*/2});
  const auto est = service.DistinctUnion({0, 1});
  ASSERT_TRUE(est.ok());

  const auto b1 = BinaryInstanceFromStore(*snapshot, 0);
  const auto b2 = BinaryInstanceFromStore(*snapshot, 1);
  const auto c = ClassifyDistinct(b1, b2);
  const double ht = DistinctHtEstimate(c, b1.p, b2.p);
  const double l = DistinctLEstimate(c, b1.p, b2.p);
  EXPECT_NEAR(est->ht.estimate, ht, 1e-9 * std::fabs(ht) + 1e-9);
  EXPECT_NEAR(est->l.estimate, l, 1e-9 * std::fabs(l) + 1e-9);
}

TEST(QueryServiceTest, DistinctUnionMultiInstanceMatchesMultiPath) {
  Rng rng(41);
  SketchStoreOptions options;
  options.num_shards = 4;
  options.default_tau = 1.0 / 0.2;
  options.salt = 2024;
  SketchStore store(options);
  std::vector<std::vector<uint64_t>> sets(3);
  for (int i = 0; i < 3; ++i) {
    for (int u = 0; u < 2000; ++u) {
      const uint64_t key = static_cast<uint64_t>(1 + rng.UniformInt(4000));
      sets[static_cast<size_t>(i)].push_back(key);
    }
    std::sort(sets[static_cast<size_t>(i)].begin(),
              sets[static_cast<size_t>(i)].end());
    sets[static_cast<size_t>(i)].erase(
        std::unique(sets[static_cast<size_t>(i)].begin(),
                    sets[static_cast<size_t>(i)].end()),
        sets[static_cast<size_t>(i)].end());
    for (uint64_t key : sets[static_cast<size_t>(i)]) {
      store.Update(i, key, 1.0);
    }
  }
  const auto snapshot = store.Snapshot();
  const auto est =
      QueryService(snapshot, {/*num_threads=*/1}).DistinctUnion({0, 1, 2});
  ASSERT_TRUE(est.ok());

  std::vector<BinaryInstanceSketch> sketches;
  for (int i = 0; i < 3; ++i) {
    sketches.push_back(BinaryInstanceFromStore(*snapshot, i));
  }
  const auto multi = EstimateDistinctMulti(sketches);
  EXPECT_NEAR(est->ht.estimate, multi.ht, 1e-9 * std::fabs(multi.ht) + 1e-9);
  EXPECT_NEAR(est->l.estimate, multi.l, 1e-9 * std::fabs(multi.l) + 1e-9);
}

TEST(QueryServiceTest, DistinctUnionRejectsWeightedIngestion) {
  SketchStoreOptions options;
  options.num_shards = 2;
  options.default_tau = 5.0;
  SketchStore store(options);
  store.Update(0, 1, 50.0);  // heavy: sampled with certainty
  store.Update(1, 2, 50.0);
  const auto est = QueryService(store.Snapshot()).DistinctUnion({0, 1});
  EXPECT_FALSE(est.ok());
}

TEST(QueryServiceTest, SubsetSumMatchesMaterializedSketch) {
  const auto fixture = MakeTwoInstanceStore();
  const auto snapshot = fixture.store->Snapshot();
  QueryService service(snapshot);
  const auto s1 = MaterializeInstance(*snapshot, 0);
  auto pred = [](uint64_t key) { return key % 5 != 0; };
  EXPECT_NEAR(service.SubsetSumHt(0, pred), s1.SubsetSumEstimate(pred),
              1e-9 * std::fabs(s1.SubsetSumEstimate(pred)));
}

}  // namespace
}  // namespace pie
