// The observability layer (src/obs/): sharded counter/gauge/histogram
// exactness, registry identity, trace span nesting and ring bounding, the
// concurrent writer/snapshot stress (run under TSan by the tsan CI job as
// ObsStress*), and -- the invariant the whole layer must uphold -- a
// registry-wide sweep proving instrumentation never perturbs estimator
// output bits, hammered or quiet, metrics ON or OFF (the sweep writes an
// FNV-1a digest of every sum/variance for the CI ON-vs-OFF comparison).

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "engine/parallel_scan.h"
#include "engine/registry.h"
#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/hashing.h"
#include "util/random.h"

namespace pie {
namespace {

::testing::AssertionResult BitwiseEqual(double a, double b) {
  uint64_t ba, bb;
  std::memcpy(&ba, &a, sizeof(ba));
  std::memcpy(&bb, &b, sizeof(bb));
  if (ba == bb) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << a << " and " << b << " differ (bits 0x" << std::hex << ba
         << " vs 0x" << bb << ")";
}

#ifdef PIE_METRICS

TEST(ObsMetricsTest, CounterSumsExactlyAcrossThreads) {
  obs::Counter& counter = obs::MetricsRegistry::Global().GetCounter(
      "pie_test_threads_total", "test counter");
  const uint64_t before = counter.Value();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.Increment();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.Value() - before,
            static_cast<uint64_t>(kThreads) * kPerThread);
  counter.Add(5);
  EXPECT_EQ(counter.Value() - before,
            static_cast<uint64_t>(kThreads) * kPerThread + 5);
}

TEST(ObsMetricsTest, GaugeSetAndAdd) {
  obs::Gauge& gauge =
      obs::MetricsRegistry::Global().GetGauge("pie_test_gauge", "test gauge");
  gauge.Set(2.5);
  EXPECT_EQ(gauge.Value(), 2.5);
  gauge.Add(1.25);
  gauge.Add(-0.75);
  EXPECT_EQ(gauge.Value(), 3.0);
}

TEST(ObsMetricsTest, HistogramBucketBoundsAreInclusiveUpper) {
  obs::Histogram& h = obs::MetricsRegistry::Global().GetHistogram(
      "pie_test_bounds_seconds", "test histogram", {1.0, 2.0, 4.0});
  // Prometheus `le` semantics: a bound belongs to its own bucket; the
  // first value past the last bound lands in the overflow bucket.
  h.Observe(0.0);
  h.Observe(1.0);                            // == bound 0: bucket 0
  h.Observe(std::nextafter(1.0, 2.0));       // just past: bucket 1
  h.Observe(2.0);                            // == bound 1: bucket 1
  h.Observe(4.0);                            // == bound 2: bucket 2
  h.Observe(std::nextafter(4.0, 8.0));       // just past the last: overflow
  h.Observe(1e9);                            // overflow
  EXPECT_EQ(h.BucketCount(0), 2u);
  EXPECT_EQ(h.BucketCount(1), 2u);
  EXPECT_EQ(h.BucketCount(2), 1u);
  EXPECT_EQ(h.BucketCount(3), 2u);
  EXPECT_EQ(h.CountValue(), 7u);
  EXPECT_DOUBLE_EQ(h.SumValue(), 0.0 + 1.0 + std::nextafter(1.0, 2.0) + 2.0 +
                                     4.0 + std::nextafter(4.0, 8.0) + 1e9);
}

TEST(ObsMetricsTest, HistogramQuantileInterpolatesWithinBucket) {
  obs::Histogram& h = obs::MetricsRegistry::Global().GetHistogram(
      "pie_test_quantile_seconds", "test histogram", {1.0, 2.0, 4.0});
  for (int i = 0; i < 3; ++i) h.Observe(1.5);  // bucket 1
  h.Observe(3.0);                              // bucket 2
  const obs::MetricsSnapshot snapshot =
      obs::MetricsRegistry::Global().Snapshot();
  const obs::MetricValue* m = snapshot.Find("pie_test_quantile_seconds");
  ASSERT_NE(m, nullptr);
  ASSERT_EQ(m->count, 4u);
  // target = 2 of 4 falls 2/3 into bucket (1, 2].
  EXPECT_NEAR(m->Quantile(0.5), 1.0 + (2.0 / 3.0), 1e-12);
  // The top observation interpolates to its bucket's upper bound.
  EXPECT_NEAR(m->Quantile(1.0), 4.0, 1e-12);
  EXPECT_LE(m->Quantile(0.0), m->Quantile(0.5));
  EXPECT_LE(m->Quantile(0.5), m->Quantile(0.99));
}

TEST(ObsMetricsTest, RegistryIdentityIsNamePlusLabels) {
  auto& reg = obs::MetricsRegistry::Global();
  obs::Counter& a =
      reg.GetCounter("pie_test_identity_total", "h", {{"k", "1"}});
  obs::Counter& b =
      reg.GetCounter("pie_test_identity_total", "h", {{"k", "1"}});
  obs::Counter& c =
      reg.GetCounter("pie_test_identity_total", "h", {{"k", "2"}});
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &c);
}

TEST(ObsMetricsTest, CallbackGaugeEvaluatesAtSnapshotTime) {
  auto& reg = obs::MetricsRegistry::Global();
  std::atomic<double> source{7.0};
  reg.RegisterCallbackGauge("pie_test_callback_gauge", "h",
                            [&source] { return source.load(); });
  const obs::MetricValue* first =
      reg.Snapshot().Find("pie_test_callback_gauge");
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->value, 7.0);
  source.store(9.0);
  const obs::MetricValue* second =
      reg.Snapshot().Find("pie_test_callback_gauge");
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(second->value, 9.0);
  // Detach from the stack-local before the test returns: later snapshots
  // (other tests, exit dumps) must not run a dangling callback.
  reg.RegisterCallbackGauge("pie_test_callback_gauge", "h",
                            [] { return 0.0; });
}

TEST(ObsTraceTest, SpansNestIntoRootTreesOnThisThread) {
  obs::SetSlowTraceThresholdNs(0);
  obs::ClearRecentTraces();
  {
    obs::ScopedSpan root("test/root");
    { obs::ScopedSpan child("test/child_a"); }
    {
      obs::ScopedSpan child("test/child_b");
      { obs::ScopedSpan grandchild("test/grandchild"); }
    }
  }
  const std::vector<obs::TraceSpan> traces = obs::RecentTraces();
  ASSERT_EQ(traces.size(), 1u);
  const obs::TraceSpan& root = traces[0];
  EXPECT_EQ(root.name, "test/root");
  ASSERT_EQ(root.children.size(), 2u);
  EXPECT_EQ(root.children[0].name, "test/child_a");
  EXPECT_EQ(root.children[1].name, "test/child_b");
  ASSERT_EQ(root.children[1].children.size(), 1u);
  EXPECT_EQ(root.children[1].children[0].name, "test/grandchild");
  EXPECT_GE(root.duration_ns, root.children[0].duration_ns);
  std::ostringstream os;
  obs::DumpTraces(os);
  EXPECT_NE(os.str().find("test/grandchild"), std::string::npos);
}

TEST(ObsTraceTest, RingIsBoundedAndThresholdFilters) {
  obs::SetSlowTraceThresholdNs(0);
  obs::ClearRecentTraces();
  const uint64_t completed_before = obs::TraceRootsCompleted();
  for (int i = 0; i < obs::kTraceRingCapacity + 10; ++i) {
    obs::ScopedSpan span("test/ring");
  }
  EXPECT_EQ(obs::RecentTraces().size(),
            static_cast<size_t>(obs::kTraceRingCapacity));
  EXPECT_EQ(obs::TraceRootsCompleted() - completed_before,
            static_cast<uint64_t>(obs::kTraceRingCapacity) + 10);

  // An hour-long threshold drops every root (still counted as completed).
  obs::SetSlowTraceThresholdNs(int64_t{3600} * 1000000000);
  obs::ClearRecentTraces();
  { obs::ScopedSpan span("test/fast"); }
  EXPECT_TRUE(obs::RecentTraces().empty());
  EXPECT_EQ(obs::TraceRootsCompleted() - completed_before,
            static_cast<uint64_t>(obs::kTraceRingCapacity) + 11);
  obs::SetSlowTraceThresholdNs(0);
}

// ---------------------------------------------------------------------------
// Concurrent writers vs snapshot/dump readers (the TSan stress)
// ---------------------------------------------------------------------------

TEST(ObsStressTest, ConcurrentWritersAndReadersStayConsistent) {
  auto& reg = obs::MetricsRegistry::Global();
  obs::Counter& counter =
      reg.GetCounter("pie_test_stress_total", "stress counter");
  obs::Gauge& gauge = reg.GetGauge("pie_test_stress_gauge", "stress gauge");
  obs::Histogram& histogram = reg.GetHistogram(
      "pie_test_stress_seconds", "stress histogram", obs::LatencyBuckets());
  const uint64_t count_before = counter.Value();
  const uint64_t observed_before = histogram.CountValue();

  constexpr int kWriters = 4;
  constexpr int kOpsPerWriter = 50000;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerWriter; ++i) {
        counter.Increment();
        gauge.Set(static_cast<double>(t));
        histogram.Observe(1e-6 * static_cast<double>(i % 1000));
        if (i % 1024 == 0) {
          obs::ScopedSpan span("test/stress");
        }
      }
    });
  }
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const obs::MetricsSnapshot snapshot = reg.Snapshot();
      EXPECT_GE(snapshot.SumValues("pie_test_stress_total"),
                static_cast<double>(count_before));
      std::ostringstream os;
      reg.DumpPrometheusText(os);
      reg.DumpJson(os);
      (void)obs::RecentTraces();
    }
  });
  for (auto& writer : writers) writer.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  EXPECT_EQ(counter.Value() - count_before,
            static_cast<uint64_t>(kWriters) * kOpsPerWriter);
  EXPECT_EQ(histogram.CountValue() - observed_before,
            static_cast<uint64_t>(kWriters) * kOpsPerWriter);
}

#else  // !PIE_METRICS

TEST(ObsMetricsTest, DisabledBuildIsInertButLinkable) {
  auto& reg = obs::MetricsRegistry::Global();
  obs::Counter& counter = reg.GetCounter("pie_test_off_total", "h");
  counter.Add(17);
  EXPECT_EQ(counter.Value(), 0u);
  obs::Histogram& h =
      reg.GetHistogram("pie_test_off_seconds", "h", obs::LatencyBuckets());
  h.Observe(1.0);
  EXPECT_EQ(h.CountValue(), 0u);
  EXPECT_TRUE(reg.Snapshot().metrics.empty());
  { obs::ScopedSpan span("test/off"); }
  EXPECT_TRUE(obs::RecentTraces().empty());
}

#endif  // PIE_METRICS

// ---------------------------------------------------------------------------
// The layer's load-bearing invariant: instrumentation never changes output
// bits. Registry-wide sweep, quiet vs hammered, identical in ON and OFF
// builds (CI compares the digests of the two configurations).
// ---------------------------------------------------------------------------

std::vector<double> SweepValues(const KernelEntry& entry,
                                const SamplingParams& params, Rng& rng) {
  const int r = params.r();
  std::vector<double> values(static_cast<size_t>(r), 0.0);
  if (entry.spec.function == Function::kOr) {
    for (double& v : values) v = rng.UniformDouble() < 0.5 ? 1.0 : 0.0;
    return values;
  }
  double scale = 10.0;
  if (entry.spec.scheme == Scheme::kPps) {
    for (double tau : params.per_entry) scale = std::fmax(scale, tau);
  }
  for (double& v : values) v = rng.UniformDouble(0.0, 1.5 * scale);
  return values;
}

void Fnv1aAdd(uint64_t* digest, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  for (int byte = 0; byte < 8; ++byte) {
    *digest ^= (bits >> (8 * byte)) & 0xff;
    *digest *= 1099511628211ull;
  }
}

TEST(ObsDeterminismTest, SweepIsBitwiseIdenticalUnderInstrumentationLoad) {
  // Quiet pass, then the same scans while hammer threads flood the
  // registry with updates, snapshots, and spans. Identical bytes required:
  // metrics reads/writes share no state with estimator math.
  struct SweepResult {
    std::string spec;
    double sum;
    double variance;
  };
  const auto run_sweep = [](std::vector<SweepResult>* results) {
    results->clear();
    for (const auto& entry : KernelRegistry::Global().Entries()) {
      for (const auto& params : entry.example_params) {
        auto kernel = entry.factory(entry.spec, params);
        ASSERT_TRUE(kernel.ok()) << kernel.status().ToString();
        Rng rng(HashCombine(HashBytes(entry.spec.ToString()),
                            static_cast<uint64_t>(params.r())));
        OutcomeBatch batch;
        batch.Reset(entry.spec.scheme, params.r());
        for (int i = 0; i < 700; ++i) {
          const Outcome o = SampleOutcome(entry.spec.scheme, params,
                                          SweepValues(entry, params, rng),
                                          rng);
          if (entry.spec.scheme == Scheme::kOblivious) {
            batch.Append(o.oblivious);
          } else {
            batch.Append(o.pps);
          }
        }
        ScanOptions options;
        options.num_threads = 2;
        const ScanPartial partial =
            ScanBatch(**kernel, batch.view(), options);
        results->push_back(
            {entry.spec.ToString(), partial.sum, partial.variance});
      }
    }
  };

  std::vector<SweepResult> quiet;
  run_sweep(&quiet);  // warm-up: kernel statics, metric registrations
  run_sweep(&quiet);

  std::atomic<bool> stop{false};
  std::vector<std::thread> hammers;
  for (int t = 0; t < 2; ++t) {
    hammers.emplace_back([&stop] {
      auto& reg = obs::MetricsRegistry::Global();
      obs::Counter& counter =
          reg.GetCounter("pie_test_hammer_total", "hammer");
      obs::Histogram& histogram = reg.GetHistogram(
          "pie_test_hammer_seconds", "hammer", obs::LatencyBuckets());
      while (!stop.load(std::memory_order_relaxed)) {
        counter.Add(3);
        histogram.Observe(1e-5);
        obs::ScopedSpan span("test/hammer");
        std::ostringstream os;
        reg.DumpPrometheusText(os);
      }
    });
  }
  std::vector<SweepResult> hammered;
  run_sweep(&hammered);
  stop.store(true, std::memory_order_relaxed);
  for (auto& hammer : hammers) hammer.join();

  ASSERT_EQ(quiet.size(), hammered.size());
  ASSERT_GT(quiet.size(), 0u);
  uint64_t digest = 14695981039346656037ull;  // FNV-1a offset basis
  for (size_t i = 0; i < quiet.size(); ++i) {
    EXPECT_EQ(quiet[i].spec, hammered[i].spec);
    EXPECT_TRUE(BitwiseEqual(quiet[i].sum, hammered[i].sum))
        << quiet[i].spec;
    EXPECT_TRUE(BitwiseEqual(quiet[i].variance, hammered[i].variance))
        << quiet[i].spec;
    Fnv1aAdd(&digest, quiet[i].sum);
    Fnv1aAdd(&digest, quiet[i].variance);
  }

  // CI runs this test in the ON and OFF trees and diffs the two digests:
  // compiling the instrumentation out must not move a single bit either.
  if (const char* path = std::getenv("PIE_OBS_DIGEST_FILE")) {
    std::ofstream out(path);
    char buf[32];
    std::snprintf(buf, sizeof buf, "%016llx\n",
                  static_cast<unsigned long long>(digest));
    out << buf;
  }
}

}  // namespace
}  // namespace pie
