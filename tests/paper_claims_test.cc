// One test per substantive claim in the paper's narrative, beyond the
// figure reproductions: Lemma 2.1's quantitative necessary conditions,
// Lemma 3.1/3.2 (order-based estimators are unbiased/Pareto; monotonicity
// criterion), the Section 5 outcome-mapping equivalence at general r, the
// Pareto structure across processing orders, and the sample-based
// confidence intervals built on the Section 8.1 variance formulas.

#include <algorithm>
#include <cmath>

#include "aggregate/distinct.h"
#include "core/or_oblivious.h"
#include "core/or_weighted.h"
#include "deriver/algorithm1.h"
#include "deriver/algorithm2.h"
#include "deriver/model.h"
#include "deriver/properties.h"
#include "gtest/gtest.h"
#include "util/random.h"
#include "util/stats.h"
#include "workload/sets.h"

namespace pie {
namespace {

using R = Rational;

int OrLOrderKey(const std::vector<int>& v) {
  int zeros = 0;
  for (int x : v) zeros += x == 0 ? 1 : 0;
  return zeros == static_cast<int>(v.size()) ? -1 : zeros;
}

// ---------------------------------------------------------------------------
// Lemma 2.1: quantitative necessary conditions
// ---------------------------------------------------------------------------

TEST(Lemma21Test, DeltaScalesWithEpsilonForBoundedVarianceCases) {
  // For OR with known seeds an unbiased nonnegative bounded-variance
  // estimator exists, so Delta(v, eps) = Omega(eps^2) must hold. On the
  // binary domain f only takes values {0, 1}, so Delta is constant in eps
  // over (0, 1]: exactly p1 = 1/4 at v = (1, 0) (the only way to leave
  // OR = 0 possible is the "entry-1 predicate high" portion of the sample
  // space) -- comfortably satisfying the quadratic lower bound.
  auto compiled = CompileModel(
      MakeWeightedBinaryModel<R>({R(1, 4), R(1, 4)}, true, OrS<R>));
  EXPECT_EQ(DeltaLemma21(compiled, 2, R(1, 2)), R(1, 4));
  EXPECT_EQ(DeltaLemma21(compiled, 2, R(1, 10)), R(1, 4));
  EXPECT_EQ(DeltaLemma21(compiled, 2, R(1)), R(1, 4));
}

TEST(Lemma21Test, DeltaMonotoneInEpsilon) {
  // Directly verify Delta(v, eps) is nondecreasing in eps on a model where
  // intermediate f values exist (3-level domain).
  auto compiled = CompileModel(MakeObliviousModel<R>(
      {{R(0), R(1), R(2)}}, {R(1, 3)}, true,
      [](const std::vector<R>& v) { return v[0]; }));
  // Vector index 2 = value 2.
  const R d1 = DeltaLemma21(compiled, 2, R(1, 2));   // need inf <= 3/2
  const R d2 = DeltaLemma21(compiled, 2, R(3, 2));   // need inf <= 1/2
  EXPECT_LE(d1, d2);
}

// ---------------------------------------------------------------------------
// Lemma 3.1 / 3.2 structure
// ---------------------------------------------------------------------------

TEST(Lemma31Test, OrderBasedEstimatorIsUniqueGivenOrder) {
  // Re-deriving with the same order must give the identical table
  // (uniqueness claim of Lemma 3.1's construction).
  auto compiled = CompileModel(MakeObliviousModel<R>(
      {{R(0), R(1)}, {R(0), R(1)}}, {R(2, 5), R(1, 3)}, true, OrS<R>));
  auto order = OrderByKey(compiled, OrLOrderKey);
  auto a = DeriveOrderBased(compiled, order);
  auto b = DeriveOrderBased(compiled, order);
  ASSERT_TRUE(a.ok() && b.ok());
  for (int o = 0; o < compiled.num_outcomes; ++o) {
    EXPECT_EQ((*a)[static_cast<size_t>(o)], (*b)[static_cast<size_t>(o)]);
  }
}

TEST(Lemma31Test, AllConstrainedOrdersArePairwiseNonDominating) {
  // Every f^(+≺) is Pareto optimal, so no derived table may strictly
  // dominate another: across all 4! singleton orders of the binary OR
  // model, pairwise comparisons must be Equal or Incomparable.
  auto compiled = CompileModel(MakeObliviousModel<R>(
      {{R(0), R(1)}, {R(0), R(1)}}, {R(1, 4), R(1, 4)}, true, OrS<R>));
  std::vector<int> order = {0, 1, 2, 3};
  std::vector<std::vector<R>> tables;
  do {
    auto t = DeriveConstrainedOrder(compiled, order);
    if (t.ok() && IsUnbiased(compiled, *t) && IsNonnegative(*t)) {
      tables.push_back(*t);
    }
  } while (std::next_permutation(order.begin(), order.end()));
  ASSERT_GE(tables.size(), 4u);
  for (size_t i = 0; i < tables.size(); ++i) {
    for (size_t j = 0; j < tables.size(); ++j) {
      if (i == j) continue;
      const Dominance d = CompareDominance(compiled, tables[i], tables[j]);
      EXPECT_TRUE(d == Dominance::kEqual || d == Dominance::kIncomparable)
          << i << " vs " << j;
    }
  }
}

TEST(Lemma32Test, MonotonicityCriterion) {
  // Lemma 3.2: f^(≺) is monotone iff every outcome's estimate is at most
  // the estimate on outcomes determined by each consistent vector. The L
  // order satisfies it; the U construction does not (estimate 0 on the
  // fully-sampled (1,1) outcome).
  auto compiled = CompileModel(MakeObliviousModel<R>(
      {{R(0), R(1)}, {R(0), R(1)}}, {R(1, 2), R(1, 2)}, true, OrS<R>));
  auto l = DeriveOrderBased(compiled, OrderByKey(compiled, OrLOrderKey));
  ASSERT_TRUE(l.ok());
  EXPECT_TRUE(IsMonotone(compiled, *l));

  auto u = DeriveConstrained(
      compiled, BatchesByKey(compiled, [](const std::vector<int>& v) {
        int pos = 0;
        for (int x : v) pos += x > 0 ? 1 : 0;
        return pos;
      }));
  ASSERT_TRUE(u.ok());
  EXPECT_FALSE(IsMonotone(compiled, *u));
}

// ---------------------------------------------------------------------------
// Section 5: the outcome-mapping equivalence at general r
// ---------------------------------------------------------------------------

TEST(Section5Test, WeightedKnownSeedsEqualsObliviousAtRThree) {
  // Compile the weighted binary known-seeds model at r = 3 and derive
  // OR^(L); its per-vector variances must match the uniform-p oblivious
  // closed form (the Section 5 equivalence), computed by OrLUniform.
  const R p(1, 2);
  auto compiled = CompileModel(
      MakeWeightedBinaryModel<R>({p, p, p}, true, OrS<R>));
  auto table = DeriveOrderBased(compiled, OrderByKey(compiled, OrLOrderKey));
  ASSERT_TRUE(table.ok());
  EXPECT_TRUE(IsUnbiased(compiled, *table));
  EXPECT_TRUE(IsNonnegative(*table));

  const OrLUniform closed(3, 0.5);
  auto var = VarianceByVector(compiled, *table);
  for (int v = 0; v < compiled.num_vectors; ++v) {
    int ones = 0;
    for (int idx : compiled.vector_values[static_cast<size_t>(v)]) {
      ones += idx;
    }
    EXPECT_NEAR(ToDouble(var[static_cast<size_t>(v)]), closed.Variance(ones),
                1e-10)
        << compiled.vector_desc[static_cast<size_t>(v)];
  }
}

TEST(Section5Test, MappedEstimatorMatchesDerivedOnSampledOutcomes) {
  // The runtime path (OrWeightedUniform: map the PPS outcome, apply the
  // oblivious prefix-sum estimator) agrees with Monte Carlo unbiasedness
  // at r = 3 for every ones-count.
  const double tau = 2.0;  // p = 1/2
  const OrWeightedUniform est(3, tau);
  Rng rng(5);
  for (int ones = 0; ones <= 3; ++ones) {
    std::vector<double> v(3, 0.0);
    for (int i = 0; i < ones; ++i) v[static_cast<size_t>(i)] = 1.0;
    RunningStat stat;
    for (int t = 0; t < 100000; ++t) {
      stat.Add(est.EstimateL(SamplePps(v, {tau, tau, tau}, rng)));
    }
    EXPECT_NEAR(stat.mean(), ones > 0 ? 1.0 : 0.0,
                5 * stat.standard_error() + 1e-9);
  }
}

// ---------------------------------------------------------------------------
// Section 8.1 confidence intervals (plug-in)
// ---------------------------------------------------------------------------

TEST(DistinctCiTest, IntersectionEstimateIsUnbiased) {
  const SetPair pair = MakeJaccardSetPair(1200, 0.5);
  RunningStat stat;
  for (uint64_t trial = 0; trial < 4000; ++trial) {
    const auto s1 = SampleBinaryInstance(pair.n1, 0.25, Mix64(3 * trial + 1));
    const auto s2 = SampleBinaryInstance(pair.n2, 0.25, Mix64(3 * trial + 2));
    stat.Add(DistinctIntersectionEstimate(ClassifyDistinct(s1, s2), 0.25,
                                          0.25));
  }
  EXPECT_NEAR(stat.mean(), static_cast<double>(pair.intersection),
              4 * stat.standard_error());
}

TEST(DistinctCiTest, JaccardRatioEstimateIsConsistent) {
  const SetPair pair = MakeJaccardSetPair(20000, 0.7);
  const auto s1 = SampleBinaryInstance(pair.n1, 0.3, 17);
  const auto s2 = SampleBinaryInstance(pair.n2, 0.3, 23);
  const auto ci = DistinctLEstimateWithCi(ClassifyDistinct(s1, s2), 0.3, 0.3);
  EXPECT_NEAR(ci.jaccard, pair.jaccard, 0.1);
}

TEST(DistinctCiTest, CoverageNearNominal) {
  const SetPair pair = MakeJaccardSetPair(3000, 0.4);
  const double truth = static_cast<double>(pair.union_size);
  int covered = 0;
  const int trials = 2000;
  for (uint64_t trial = 0; trial < static_cast<uint64_t>(trials); ++trial) {
    const auto s1 = SampleBinaryInstance(pair.n1, 0.2, Mix64(5 * trial + 1));
    const auto s2 = SampleBinaryInstance(pair.n2, 0.2, Mix64(5 * trial + 2));
    const auto ci =
        DistinctLEstimateWithCi(ClassifyDistinct(s1, s2), 0.2, 0.2);
    if (truth >= ci.lo && truth <= ci.hi) ++covered;
  }
  const double coverage = covered / static_cast<double>(trials);
  EXPECT_GE(coverage, 0.92);
  EXPECT_LE(coverage, 0.99);
}

TEST(DistinctCiTest, DegenerateEmptySample) {
  DistinctClassification empty;
  const auto ci = DistinctLEstimateWithCi(empty, 0.5, 0.5);
  EXPECT_EQ(ci.estimate, 0.0);
  EXPECT_EQ(ci.lo, 0.0);
  EXPECT_EQ(ci.hi, 0.0);
}

}  // namespace
}  // namespace pie
