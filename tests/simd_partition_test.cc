// Pattern-partition units plus the registry-wide crafted-pattern bitwise
// sweep behind the PIE_SIMD contract: for every registered kernel, the
// batch paths (EstimateMany / EstimateSecondMomentMany /
// EstimateWithVarianceMany -- pattern-partitioned branch-free loops when
// PIE_SIMD is on, the portable loops when off) must be BITWISE identical
// to the scalar per-row Estimate / EstimateSecondMoment path on batches of
// every pattern shape: empty, single-row, all-sampled, none-sampled, and
// mixed patterns crossing partition-block boundaries. Run in both CMake
// configs (the scalar-fallback CI job builds -DPIE_SIMD=OFF), this pins
// partitioned == fallback == scalar through the shared scalar reference.

#include <cmath>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "engine/pattern_partition.h"
#include "engine/registry.h"
#include "gtest/gtest.h"
#include "util/hashing.h"
#include "util/random.h"

namespace pie {
namespace {

::testing::AssertionResult BitwiseEqual(double a, double b) {
  uint64_t ba, bb;
  std::memcpy(&ba, &a, sizeof(ba));
  std::memcpy(&bb, &b, sizeof(bb));
  if (ba == bb) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << a << " and " << b << " differ (bits 0x" << std::hex << ba
         << " vs 0x" << bb << ")";
}

// ---------------------------------------------------------------------------
// Partition units
// ---------------------------------------------------------------------------

TEST(PatternPartitionTest, R2BucketsAreStableAndExhaustive) {
  uint8_t sampled[2 * 8] = {0, 0, 1, 0, 0, 1, 1, 1,
                            1, 0, 1, 1, 0, 0, 0, 1};
  R2Partition part;
  PartitionR2(sampled, 8, &part);
  ASSERT_EQ(part.count[0], 2);
  ASSERT_EQ(part.count[1], 2);
  ASSERT_EQ(part.count[2], 2);
  ASSERT_EQ(part.count[3], 2);
  // Stable: bucket indices ascend in row order.
  EXPECT_EQ(part.idx[0][0], 0);
  EXPECT_EQ(part.idx[0][1], 6);
  EXPECT_EQ(part.idx[1][0], 1);
  EXPECT_EQ(part.idx[1][1], 4);
  EXPECT_EQ(part.idx[2][0], 2);
  EXPECT_EQ(part.idx[2][1], 7);
  EXPECT_EQ(part.idx[3][0], 3);
  EXPECT_EQ(part.idx[3][1], 5);
}

TEST(PatternPartitionTest, AllSampledSplitsOnEveryEntry) {
  uint8_t sampled[3 * 4] = {1, 1, 1, /**/ 1, 0, 1, /**/ 0, 0, 0, /**/ 1, 1,
                            1};
  AllSampledPartition part;
  PartitionAllSampled(sampled, 3, 4, &part);
  ASSERT_EQ(part.count, 2);
  ASSERT_EQ(part.rest_count, 2);
  EXPECT_EQ(part.idx[0], 0);
  EXPECT_EQ(part.idx[1], 3);
  EXPECT_EQ(part.rest[0], 1);
  EXPECT_EQ(part.rest[1], 2);
}

TEST(PatternPartitionTest, GatherScatterRoundTrip) {
  double slab[2 * 4] = {0.5, 1.5, 2.5, 3.5, 4.5, 5.5, 6.5, 7.5};
  const uint16_t idx[3] = {0, 2, 3};
  double dense[3];
  GatherColumn(slab, 2, 1, idx, 3, dense);
  EXPECT_EQ(dense[0], 1.5);
  EXPECT_EQ(dense[1], 5.5);
  EXPECT_EQ(dense[2], 7.5);
  double out[4] = {0, 0, 0, 0};
  Scatter(dense, idx, 3, out);
  ScatterConstant(-1.0, idx + 1, 1, out);
  EXPECT_EQ(out[0], 1.5);
  EXPECT_EQ(out[1], 0.0);
  EXPECT_EQ(out[2], -1.0);
  EXPECT_EQ(out[3], 7.5);
}

// ---------------------------------------------------------------------------
// Registry-wide crafted-pattern sweep
// ---------------------------------------------------------------------------

enum class PatternShape { kAllSampled, kNoneSampled, kMixed };

/// Fills one handcrafted row: `pattern` gives the sampled flags; values
/// respect each kernel family's domain (binary for OR -- exactly 1.0 on
/// sampled entries of weighted OR, whose mapping checks set semantics;
/// scaled nonnegative reals otherwise), and seeds are always populated for
/// PPS so identifiability bounds of unsampled entries are exercised.
void FillRow(const KernelEntry& entry, const SamplingParams& params,
             unsigned pattern, Rng& rng, OutcomeBatch* batch) {
  const int r = params.r();
  const int i = batch->AppendRow();
  uint8_t* sampled = batch->sampled_row(i);
  double* value = batch->value_row(i);
  double* param = batch->param_row(i);
  double scale = 10.0;
  if (entry.spec.scheme == Scheme::kPps) {
    for (double tau : params.per_entry) scale = std::fmax(scale, tau);
  }
  for (int j = 0; j < r; ++j) {
    param[j] = params.per_entry[static_cast<size_t>(j)];
    sampled[j] = (pattern >> j) & 1u;
    if (entry.spec.function == Function::kOr) {
      value[j] = sampled[j] != 0 ? 1.0 : 0.0;
    } else {
      value[j] = sampled[j] != 0 ? rng.UniformDouble(0.0, 1.5 * scale) : 0.0;
    }
  }
  if (entry.spec.scheme == Scheme::kPps) {
    double* seed = batch->seed_row(i);
    for (int j = 0; j < r; ++j) seed[j] = rng.UniformDouble();
  }
}

void FillPatternBatch(const KernelEntry& entry, const SamplingParams& params,
                      PatternShape shape, int size, Rng& rng,
                      OutcomeBatch* batch) {
  const int r = params.r();
  batch->Reset(entry.spec.scheme, r);
  const unsigned all = (1u << r) - 1u;
  for (int i = 0; i < size; ++i) {
    unsigned pattern = 0;
    switch (shape) {
      case PatternShape::kAllSampled:
        pattern = all;
        break;
      case PatternShape::kNoneSampled:
        pattern = 0;
        break;
      case PatternShape::kMixed:
        // Every pattern appears, in a block-crossing repeating order.
        pattern = static_cast<unsigned>(i) % (all + 1u);
        break;
    }
    FillRow(entry, params, pattern, rng, batch);
  }
}

TEST(SimdPartitionTest, BatchPathsMatchScalarOnCraftedPatterns) {
  struct Case {
    PatternShape shape;
    int size;
  };
  const Case cases[] = {
      {PatternShape::kMixed, 0},        {PatternShape::kMixed, 1},
      {PatternShape::kAllSampled, 1},   {PatternShape::kNoneSampled, 1},
      {PatternShape::kAllSampled, 300}, {PatternShape::kNoneSampled, 300},
      {PatternShape::kMixed, 257},      {PatternShape::kMixed, 700},
  };
  for (const auto& entry : KernelRegistry::Global().Entries()) {
    for (const auto& params : entry.example_params) {
      auto kernel = entry.factory(entry.spec, params);
      ASSERT_TRUE(kernel.ok()) << kernel.status().ToString();
      Rng rng(HashCombine(HashBytes(entry.spec.ToString()),
                          static_cast<uint64_t>(params.r()) + 97));
      for (const auto& c : cases) {
        OutcomeBatch batch;
        FillPatternBatch(entry, params, c.shape, c.size, rng, &batch);
        const BatchView view = batch.view();
        const size_t n = static_cast<size_t>(c.size);

        std::vector<double> est(n + 1), second(n + 1);
        std::vector<double> fused_est(n + 1), fused_var(n + 1);
        (*kernel)->EstimateMany(view, est.data());
        (*kernel)->EstimateSecondMomentMany(view, second.data());
        (*kernel)->EstimateWithVarianceMany(view, fused_est.data(),
                                            fused_var.data());

        Outcome row;
        for (int i = 0; i < c.size; ++i) {
          const size_t s = static_cast<size_t>(i);
          ExtractRow(view, i, &row);
          const double scalar_est = (*kernel)->Estimate(row);
          const double scalar_second = (*kernel)->EstimateSecondMoment(row);
          const std::string label = (*kernel)->name() + " size " +
                                    std::to_string(c.size) + " row " +
                                    std::to_string(i);
          EXPECT_TRUE(BitwiseEqual(est[s], scalar_est)) << label;
          EXPECT_TRUE(BitwiseEqual(second[s], scalar_second)) << label;
          EXPECT_TRUE(BitwiseEqual(fused_est[s], scalar_est)) << label;
          EXPECT_TRUE(BitwiseEqual(
              fused_var[s], scalar_est * scalar_est - scalar_second))
              << label;
        }
      }
    }
  }
}

}  // namespace
}  // namespace pie
