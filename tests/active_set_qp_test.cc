// Tests for the numeric active-set QP solver: agreement with the exact
// enumeration solver on random problems, edge cases, and the large-batch
// derivation path it unlocks.

#include <cmath>

#include "deriver/active_set_qp.h"
#include "deriver/algorithm2.h"
#include "deriver/model.h"
#include "deriver/properties.h"
#include "gtest/gtest.h"
#include "util/random.h"

namespace pie {
namespace {

TEST(ActiveSetQpTest, UnconstrainedOptimum) {
  QpProblem<double> qp;
  qp.d = {2, 4};
  qp.c = {2, 4};
  qp.a_eq = Mat<double>(0, 2);
  qp.a_in = Mat<double>(0, 2);
  auto sol = SolveQpActiveSet(qp);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->x[0], 1.0, 1e-7);
  EXPECT_NEAR(sol->x[1], 1.0, 1e-7);
}

TEST(ActiveSetQpTest, BindingInequality) {
  // min (x-3)^2 s.t. x <= 1.
  QpProblem<double> qp;
  qp.d = {2};
  qp.c = {6};
  qp.a_eq = Mat<double>(0, 1);
  qp.a_in = Mat<double>(1, 1);
  qp.a_in.at(0, 0) = 1;
  qp.b_in = {1};
  auto sol = SolveQpActiveSet(qp);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->x[0], 1.0, 1e-7);
}

TEST(ActiveSetQpTest, EqualityPlusInequality) {
  // min x1^2 + x2^2 - x1 s.t. x1 + x2 = 1, x1 <= 1/4 => (1/4, 3/4).
  QpProblem<double> qp;
  qp.d = {2, 2};
  qp.c = {1, 0};
  qp.a_eq = Mat<double>(1, 2);
  qp.a_eq.at(0, 0) = 1;
  qp.a_eq.at(0, 1) = 1;
  qp.b_eq = {1};
  qp.a_in = Mat<double>(1, 2);
  qp.a_in.at(0, 0) = 1;
  qp.b_in = {0.25};
  auto sol = SolveQpActiveSet(qp);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->x[0], 0.25, 1e-7);
  EXPECT_NEAR(sol->x[1], 0.75, 1e-7);
}

TEST(ActiveSetQpTest, DetectsInfeasible) {
  // x <= -1 and -x <= 0 cannot both hold.
  QpProblem<double> qp;
  qp.d = {2};
  qp.c = {0};
  qp.a_eq = Mat<double>(0, 1);
  qp.a_in = Mat<double>(2, 1);
  qp.a_in.at(0, 0) = 1;
  qp.a_in.at(1, 0) = -1;
  qp.b_in = {-1, 0};
  EXPECT_FALSE(SolveQpActiveSet(qp).ok());
}

TEST(ActiveSetQpTest, AgreesWithExactSolverOnRandomProblems) {
  Rng rng(20110609);
  int solved = 0;
  for (int trial = 0; trial < 200; ++trial) {
    const int n = 2 + static_cast<int>(rng.UniformInt(4));
    const int m_eq = static_cast<int>(rng.UniformInt(2));
    const int m_in = 1 + static_cast<int>(rng.UniformInt(6));
    QpProblem<double> qp;
    qp.d.resize(static_cast<size_t>(n));
    qp.c.resize(static_cast<size_t>(n));
    for (int j = 0; j < n; ++j) {
      qp.d[static_cast<size_t>(j)] = rng.UniformDouble(0.5, 4.0);
      qp.c[static_cast<size_t>(j)] = rng.UniformDouble(-3.0, 3.0);
    }
    // Feasibility by construction: constraints evaluated at a reference
    // point xref get slack added.
    Vec<double> xref(static_cast<size_t>(n));
    for (double& v : xref) v = rng.UniformDouble(-1, 1);
    qp.a_eq = Mat<double>(m_eq, n);
    qp.b_eq.assign(static_cast<size_t>(m_eq), 0.0);
    for (int i = 0; i < m_eq; ++i) {
      double rhs = 0.0;
      for (int j = 0; j < n; ++j) {
        qp.a_eq.at(i, j) = rng.UniformDouble(-2, 2);
        rhs += qp.a_eq.at(i, j) * xref[static_cast<size_t>(j)];
      }
      qp.b_eq[static_cast<size_t>(i)] = rhs;
    }
    qp.a_in = Mat<double>(m_in, n);
    qp.b_in.assign(static_cast<size_t>(m_in), 0.0);
    for (int i = 0; i < m_in; ++i) {
      double lhs = 0.0;
      for (int j = 0; j < n; ++j) {
        qp.a_in.at(i, j) = rng.UniformDouble(-2, 2);
        lhs += qp.a_in.at(i, j) * xref[static_cast<size_t>(j)];
      }
      qp.b_in[static_cast<size_t>(i)] = lhs + rng.UniformDouble(0.0, 1.0);
    }

    auto exact = SolveDiagonalQp(qp);
    auto numeric = SolveQpActiveSet(qp);
    ASSERT_TRUE(exact.ok()) << trial;  // feasible by construction
    ASSERT_TRUE(numeric.ok()) << trial;
    EXPECT_NEAR(numeric->objective, exact->objective,
                1e-6 * std::max(1.0, std::fabs(exact->objective)))
        << trial;
    ++solved;
  }
  EXPECT_EQ(solved, 200);
}

TEST(ActiveSetQpTest, UnlocksLargeDerivationBatches) {
  // The gap-batched RG derivation on the 3-level weighted scheme exceeds
  // the exact solver's inequality cap; with double scalars the active-set
  // fallback makes it go through, and the result is a valid symmetric
  // estimator.
  auto model = MakeWeightedThresholdModel<double>(
      {{0, 1, 2}, {0, 1, 2}}, {{0.25, 0.25}, {0.25, 0.25}},
      /*seeds_known=*/true, RangeS<double>);
  auto compiled = CompileModel(model);
  auto batches = BatchesByKey(compiled, [](const std::vector<int>& v) {
    return v[0] > v[1] ? v[0] - v[1] : v[1] - v[0];
  });
  auto table = DeriveConstrained(compiled, batches);
  ASSERT_TRUE(table.ok());
  EXPECT_TRUE(IsUnbiased(compiled, *table));
  EXPECT_TRUE(IsNonnegative(*table));
  // Symmetric batches + strictly convex objective => symmetric estimator:
  // variances of (v0,v1) and (v1,v0) must coincide.
  auto var = VarianceByVector(compiled, *table);
  auto find_vec = [&](int a, int b) {
    for (int v = 0; v < compiled.num_vectors; ++v) {
      if (compiled.vector_values[static_cast<size_t>(v)] ==
          std::vector<int>{a, b}) {
        return v;
      }
    }
    return -1;
  };
  EXPECT_NEAR(var[static_cast<size_t>(find_vec(0, 1))],
              var[static_cast<size_t>(find_vec(1, 0))], 1e-6);
  EXPECT_NEAR(var[static_cast<size_t>(find_vec(2, 1))],
              var[static_cast<size_t>(find_vec(1, 2))], 1e-6);
}

}  // namespace
}  // namespace pie
