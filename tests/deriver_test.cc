// Tests for the derivation engine: linear algebra, simplex, the exact QP,
// the discrete model compiler, Algorithm 1 / Algorithm 2, the property
// checkers, the Lemma 2.1 Delta quantity, and the machine-checked
// Theorem 6.1 impossibility certificates.
//
// Where possible the checks are EXACT: Rational scalars, probabilities like
// 1/2 and 1/4, and equality to the paper's closed forms with zero
// tolerance.

#include <functional>

#include "core/max_oblivious.h"
#include "core/or_oblivious.h"
#include "deriver/algorithm1.h"
#include "deriver/algorithm2.h"
#include "deriver/linalg.h"
#include "deriver/model.h"
#include "deriver/properties.h"
#include "deriver/qp.h"
#include "deriver/simplex.h"
#include "gtest/gtest.h"
#include "util/random.h"

namespace pie {
namespace {

using R = Rational;

// ---------------------------------------------------------------------------
// Linear algebra
// ---------------------------------------------------------------------------

TEST(LinalgTest, SolvesDouble) {
  Mat<double> a(2, 2);
  a.at(0, 0) = 2;
  a.at(0, 1) = 1;
  a.at(1, 0) = 1;
  a.at(1, 1) = 3;
  auto x = SolveLinearSystem<double>(a, {5, 10});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 1.0, 1e-12);
  EXPECT_NEAR((*x)[1], 3.0, 1e-12);
}

TEST(LinalgTest, SolvesRationalExactly) {
  Mat<R> a(2, 2);
  a.at(0, 0) = R(1, 2);
  a.at(0, 1) = R(1, 3);
  a.at(1, 0) = R(1, 4);
  a.at(1, 1) = R(1);
  auto x = SolveLinearSystem<R>(a, {R(1), R(2)});
  ASSERT_TRUE(x.ok());
  // Solve by hand: x = (4/5, 9/5).
  EXPECT_EQ((*x)[0], R(4, 5));
  EXPECT_EQ((*x)[1], R(9, 5));
}

TEST(LinalgTest, DetectsSingular) {
  Mat<double> a(2, 2);
  a.at(0, 0) = 1;
  a.at(0, 1) = 2;
  a.at(1, 0) = 2;
  a.at(1, 1) = 4;
  EXPECT_FALSE(SolveLinearSystem<double>(a, {1, 2}).ok());
}

TEST(LinalgTest, RandomRoundTrip) {
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    const int n = 1 + static_cast<int>(rng.UniformInt(6));
    Mat<double> a(n, n);
    Vec<double> x_true(n);
    for (int i = 0; i < n; ++i) {
      x_true[i] = rng.UniformDouble(-3, 3);
      for (int j = 0; j < n; ++j) a.at(i, j) = rng.UniformDouble(-2, 2);
    }
    Vec<double> b(n, 0.0);
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) b[i] += a.at(i, j) * x_true[j];
    }
    auto x = SolveLinearSystem<double>(a, b);
    if (!x.ok()) continue;  // singular random draw
    for (int i = 0; i < n; ++i) EXPECT_NEAR((*x)[i], x_true[i], 1e-8);
  }
}

TEST(LinalgTest, DotProduct) {
  EXPECT_EQ(Dot<R>({R(1, 2), R(3)}, {R(4), R(1, 3)}), R(3));
  EXPECT_DOUBLE_EQ(Dot<double>({1, 2, 3}, {4, 5, 6}), 32.0);
}

// ---------------------------------------------------------------------------
// Simplex
// ---------------------------------------------------------------------------

TEST(SimplexTest, SolvesBasicLp) {
  // min -x1 - 2 x2  s.t.  x1 + x2 + s = 4, x <= ... classic: optimum at
  // x2 = 4.
  LpProblem<double> lp;
  lp.a = Mat<double>(1, 3);
  lp.a.at(0, 0) = 1;
  lp.a.at(0, 1) = 1;
  lp.a.at(0, 2) = 1;  // slack
  lp.b = {4};
  lp.c = {-1, -2, 0};
  auto sol = SolveLp(lp);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->objective, -8.0, 1e-9);
  EXPECT_NEAR(sol->x[1], 4.0, 1e-9);
}

TEST(SimplexTest, ExactRationalOptimum) {
  // min x1 + x2 s.t. 2x1 + x2 = 3, x1 + 3x2 = 4  => unique point.
  LpProblem<R> lp;
  lp.a = Mat<R>(2, 2);
  lp.a.at(0, 0) = R(2);
  lp.a.at(0, 1) = R(1);
  lp.a.at(1, 0) = R(1);
  lp.a.at(1, 1) = R(3);
  lp.b = {R(3), R(4)};
  lp.c = {R(1), R(1)};
  auto sol = SolveLp(lp);
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->x[0], R(1));
  EXPECT_EQ(sol->x[1], R(1));
  EXPECT_EQ(sol->objective, R(2));
}

TEST(SimplexTest, DetectsInfeasible) {
  // x1 + x2 = -1 with x >= 0 is infeasible.
  LpProblem<double> lp;
  lp.a = Mat<double>(1, 2);
  lp.a.at(0, 0) = 1;
  lp.a.at(0, 1) = 1;
  lp.b = {-1};
  lp.c = {0, 0};
  auto sol = SolveLp(lp);
  ASSERT_FALSE(sol.ok());
  EXPECT_EQ(sol.status().code(), StatusCode::kInfeasible);
}

TEST(SimplexTest, DetectsUnbounded) {
  // min -x1 s.t. x1 - x2 = 0: x1 can grow without bound.
  LpProblem<double> lp;
  lp.a = Mat<double>(1, 2);
  lp.a.at(0, 0) = 1;
  lp.a.at(0, 1) = -1;
  lp.b = {0};
  lp.c = {-1, 0};
  auto sol = SolveLp(lp);
  ASSERT_FALSE(sol.ok());
  EXPECT_EQ(sol.status().code(), StatusCode::kOutOfRange);
}

TEST(SimplexTest, HandlesRedundantRows) {
  // Duplicate constraint rows must not break phase 2.
  LpProblem<R> lp;
  lp.a = Mat<R>(2, 2);
  lp.a.at(0, 0) = R(1);
  lp.a.at(0, 1) = R(1);
  lp.a.at(1, 0) = R(2);
  lp.a.at(1, 1) = R(2);
  lp.b = {R(2), R(4)};
  lp.c = {R(1), R(0)};
  auto sol = SolveLp(lp);
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->objective, R(0));  // put everything on x2
}

TEST(SimplexTest, FindFeasiblePointWitness) {
  Mat<R> a(1, 2);
  a.at(0, 0) = R(1);
  a.at(0, 1) = R(2);
  auto x = FindFeasiblePoint<R>(a, {R(3)});
  ASSERT_TRUE(x.ok());
  EXPECT_EQ((*x)[0] + R(2) * (*x)[1], R(3));
  EXPECT_FALSE((*x)[0].IsNegative());
  EXPECT_FALSE((*x)[1].IsNegative());
}

// ---------------------------------------------------------------------------
// QP
// ---------------------------------------------------------------------------

TEST(QpTest, UnconstrainedOptimum) {
  QpProblem<double> qp;
  qp.d = {2, 4};
  qp.c = {2, 4};
  qp.a_eq = Mat<double>(0, 2);
  qp.a_in = Mat<double>(0, 2);
  auto sol = SolveDiagonalQp(qp);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->x[0], 1.0, 1e-12);  // x = D^-1 c
  EXPECT_NEAR(sol->x[1], 1.0, 1e-12);
}

TEST(QpTest, EqualityConstrained) {
  // min x1^2 + x2^2 s.t. x1 + x2 = 2 => (1,1).
  QpProblem<R> qp;
  qp.d = {R(2), R(2)};
  qp.c = {R(0), R(0)};
  qp.a_eq = Mat<R>(1, 2);
  qp.a_eq.at(0, 0) = R(1);
  qp.a_eq.at(0, 1) = R(1);
  qp.b_eq = {R(2)};
  qp.a_in = Mat<R>(0, 2);
  auto sol = SolveDiagonalQp(qp);
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->x[0], R(1));
  EXPECT_EQ(sol->x[1], R(1));
}

TEST(QpTest, ActiveInequality) {
  // min (x-3)^2 s.t. x <= 1 => x = 1.
  QpProblem<double> qp;
  qp.d = {2};
  qp.c = {6};
  qp.a_eq = Mat<double>(0, 1);
  qp.a_in = Mat<double>(1, 1);
  qp.a_in.at(0, 0) = 1;
  qp.b_in = {1};
  auto sol = SolveDiagonalQp(qp);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->x[0], 1.0, 1e-12);
}

TEST(QpTest, InactiveInequalityIgnored) {
  // min (x-3)^2 s.t. x <= 10 => x = 3.
  QpProblem<double> qp;
  qp.d = {2};
  qp.c = {6};
  qp.a_eq = Mat<double>(0, 1);
  qp.a_in = Mat<double>(1, 1);
  qp.a_in.at(0, 0) = 1;
  qp.b_in = {10};
  auto sol = SolveDiagonalQp(qp);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->x[0], 3.0, 1e-12);
}

TEST(QpTest, ExactRationalWithMixedConstraints) {
  // min x1^2 + x2^2 - x1  s.t. x1 + x2 = 1, x1 <= 1/4.
  // Unconstrained-on-line optimum is x1 = 3/4 => inequality binds: x1 = 1/4.
  QpProblem<R> qp;
  qp.d = {R(2), R(2)};
  qp.c = {R(1), R(0)};
  qp.a_eq = Mat<R>(1, 2);
  qp.a_eq.at(0, 0) = R(1);
  qp.a_eq.at(0, 1) = R(1);
  qp.b_eq = {R(1)};
  qp.a_in = Mat<R>(1, 2);
  qp.a_in.at(0, 0) = R(1);
  qp.b_in = {R(1, 4)};
  auto sol = SolveDiagonalQp(qp);
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->x[0], R(1, 4));
  EXPECT_EQ(sol->x[1], R(3, 4));
}

TEST(QpTest, InfeasibleConstraints) {
  // x <= -1 with x >= 0 (as inequality rows).
  QpProblem<double> qp;
  qp.d = {2};
  qp.c = {0};
  qp.a_eq = Mat<double>(0, 1);
  qp.a_in = Mat<double>(2, 1);
  qp.a_in.at(0, 0) = 1;
  qp.a_in.at(1, 0) = -1;
  qp.b_in = {-1, 0};
  EXPECT_FALSE(SolveDiagonalQp(qp).ok());
}

TEST(QpTest, RedundantEqualitiesHandled) {
  QpProblem<R> qp;
  qp.d = {R(2), R(2)};
  qp.c = {R(0), R(0)};
  qp.a_eq = Mat<R>(2, 2);
  qp.a_eq.at(0, 0) = R(1);
  qp.a_eq.at(0, 1) = R(1);
  qp.a_eq.at(1, 0) = R(2);
  qp.a_eq.at(1, 1) = R(2);
  qp.b_eq = {R(2), R(4)};
  qp.a_in = Mat<R>(0, 2);
  auto sol = SolveDiagonalQp(qp);
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->x[0], R(1));
  EXPECT_EQ(sol->x[1], R(1));
}

TEST(QpTest, InconsistentEqualitiesRejected) {
  QpProblem<R> qp;
  qp.d = {R(2), R(2)};
  qp.c = {R(0), R(0)};
  qp.a_eq = Mat<R>(2, 2);
  qp.a_eq.at(0, 0) = R(1);
  qp.a_eq.at(0, 1) = R(1);
  qp.a_eq.at(1, 0) = R(2);
  qp.a_eq.at(1, 1) = R(2);
  qp.b_eq = {R(2), R(5)};  // 2*(row 0) would need b = 4
  qp.a_in = Mat<R>(0, 2);
  EXPECT_FALSE(SolveDiagonalQp(qp).ok());
}

// ---------------------------------------------------------------------------
// Model compilation
// ---------------------------------------------------------------------------

TEST(ModelTest, ObliviousBinaryCounts) {
  auto model = MakeObliviousModel<R>({{R(0), R(1)}, {R(0), R(1)}},
                                     {R(1, 2), R(1, 2)}, true, OrS<R>);
  auto compiled = CompileModel(model);
  EXPECT_EQ(compiled.num_vectors, 4);
  // Per entry: sampled-with-value (2 values) or unsampled => 3 states.
  EXPECT_EQ(compiled.num_outcomes, 9);
  EXPECT_EQ(compiled.num_sigmas, 4);
}

TEST(ModelTest, ConditionalProbabilitiesSumToOne) {
  auto model = MakeObliviousModel<R>({{R(0), R(1), R(2)}, {R(0), R(5)}},
                                     {R(1, 3), R(2, 5)}, true, MaxS<R>);
  auto compiled = CompileModel(model);
  for (int v = 0; v < compiled.num_vectors; ++v) {
    R total(0);
    for (int o = 0; o < compiled.num_outcomes; ++o) {
      total += compiled.p[v][o];
      EXPECT_FALSE(compiled.p[v][o].IsNegative());
    }
    EXPECT_EQ(total, R(1));
  }
}

TEST(ModelTest, WeightedBinarySeedVisibility) {
  // Known seeds: 3 states per entry (sampled-1, certified-0, unknown);
  // unknown seeds: 2 states (sampled-1, missing).
  auto known =
      CompileModel(MakeWeightedBinaryModel<R>({R(1, 2), R(1, 2)}, true, OrS<R>));
  auto unknown = CompileModel(
      MakeWeightedBinaryModel<R>({R(1, 2), R(1, 2)}, false, OrS<R>));
  EXPECT_EQ(known.num_outcomes, 9);
  EXPECT_EQ(unknown.num_outcomes, 4);
}

TEST(ModelTest, ThresholdModelMonotonePredicates) {
  // Domain {0,1,2}, threshold probabilities (P[sample >=1], extra for >=2).
  auto model = MakeWeightedThresholdModel<double>(
      {{0, 1, 2}}, {{0.3, 0.4}}, true,
      [](const std::vector<double>& v) { return v[0]; });
  auto compiled = CompileModel(model);
  // Value 2 is sampled by predicates ">=1" and ">=2": probability 0.7;
  // value 1 by ">=1" only: 0.3; value 0 never. Vector ids follow the
  // domain: 0 -> value 0, 1 -> value 1, 2 -> value 2.
  // P(sampled | v) = 1 - P(outcomes consistent with the all-zero vector).
  auto p_sampled = [&](int v) {
    double unsampled = 0.0;
    for (int o = 0; o < compiled.num_outcomes; ++o) {
      // outcomes consistent with the all-zero vector are the unsampled ones
      if (compiled.Consistent(0, o)) unsampled += compiled.p[v][o];
    }
    return 1.0 - unsampled;
  };
  EXPECT_NEAR(p_sampled(2), 0.7, 1e-12);
  EXPECT_NEAR(p_sampled(1), 0.3, 1e-12);
  EXPECT_NEAR(p_sampled(0), 0.0, 1e-12);
}

// ---------------------------------------------------------------------------
// Algorithm 1: order-based derivation
// ---------------------------------------------------------------------------

// The OR^(L) order key of Section 4.3: the all-zero vector first, then by
// the number of zero entries ascending.
int OrLOrderKey(const std::vector<int>& value_indices) {
  int zeros = 0;
  for (int idx : value_indices) zeros += idx == 0 ? 1 : 0;
  if (zeros == static_cast<int>(value_indices.size())) return -1;
  return zeros;
}

TEST(Algorithm1Test, DerivesOrLExactly) {
  // Oblivious binary, p1 = p2 = 1/2: Algorithm 1 with the #zeros order must
  // reproduce OR^(L): A_2 = 4/3 on single-positive outcomes, A_1 = 8/3 on
  // (1,0)-both-sampled outcomes (Figure 1 table with v in {0,1}).
  auto model = MakeObliviousModel<R>({{R(0), R(1)}, {R(0), R(1)}},
                                     {R(1, 2), R(1, 2)}, true, OrS<R>);
  auto compiled = CompileModel(model);
  auto order = OrderByKey(compiled, OrLOrderKey);
  auto table = DeriveOrderBased(compiled, order);
  ASSERT_TRUE(table.ok());
  EXPECT_TRUE(IsUnbiased(compiled, *table));
  EXPECT_TRUE(IsNonnegative(*table));
  EXPECT_TRUE(IsMonotone(compiled, *table));

  // Cross-check against the closed form, exactly.
  const OrLTwo closed(0.5, 0.5);
  // Find outcomes by description through the p-matrix: the vector (1,1) has
  // id with both indices 1.
  // Instead of parsing descriptions, check the multiset of estimate values:
  // 0 (empty/zero outcomes), 4/3, 8/3.
  for (const R& x : *table) {
    EXPECT_TRUE(x == R(0) || x == R(4, 3) || x == R(8, 3)) << x.ToString();
  }
  // And per-vector variances match the closed form.
  auto var = VarianceByVector(compiled, *table);
  for (int v = 0; v < compiled.num_vectors; ++v) {
    const auto& idx = compiled.vector_values[v];
    EXPECT_NEAR(ToDouble(var[v]), closed.Variance(idx[0], idx[1]), 1e-12);
  }
}

TEST(Algorithm1Test, DerivesMaxLOnThreeLevelDomain) {
  // Oblivious domain {0,1,2}^2 with the L(v) = #(entries < max) order must
  // match the MaxLTwo closed form on every outcome type.
  const double p1 = 0.5, p2 = 0.25;
  auto model = MakeObliviousModel<double>({{0, 1, 2}, {0, 1, 2}}, {p1, p2},
                                          true, MaxS<double>);
  auto compiled = CompileModel(model);
  auto order = OrderByKey(compiled, [&](const std::vector<int>& vi) {
    if (vi[0] == 0 && vi[1] == 0) return -1;  // zero vector first
    const int mx = std::max(vi[0], vi[1]);
    return (vi[0] < mx ? 1 : 0) + (vi[1] < mx ? 1 : 0);
  });
  auto table = DeriveOrderBased(compiled, order);
  ASSERT_TRUE(table.ok());
  EXPECT_TRUE(IsUnbiased(compiled, *table));
  EXPECT_TRUE(IsNonnegative(*table));

  const MaxLTwo closed(p1, p2);
  auto var = VarianceByVector(compiled, *table);
  for (int v = 0; v < compiled.num_vectors; ++v) {
    const auto& idx = compiled.vector_values[v];
    EXPECT_NEAR(var[v], closed.Variance(idx[0], idx[1]), 1e-9)
        << compiled.vector_desc[v];
  }
}

TEST(Algorithm1Test, RationalMaxLMatchesClosedFormExactly) {
  // p = 1/2 uniform: A_2 = 4/3, A_1 = 8/3 scale to values: on domain
  // {0, 1, 3} the both-sampled (3,1) outcome must get
  // max/(p^2) - ((1/p - 1)*3 + (1/p - 1)*1)/q = 12 - (3+1)/(3/4) = 20/3.
  auto model = MakeObliviousModel<R>({{R(0), R(1), R(3)}, {R(0), R(1), R(3)}},
                                     {R(1, 2), R(1, 2)}, true, MaxS<R>);
  auto compiled = CompileModel(model);
  auto order = OrderByKey(compiled, [&](const std::vector<int>& vi) {
    if (vi[0] == 0 && vi[1] == 0) return -1;
    return vi[0] == vi[1] ? 0 : 1;
  });
  auto table = DeriveOrderBased(compiled, order);
  ASSERT_TRUE(table.ok());
  EXPECT_TRUE(IsUnbiased(compiled, *table));
  // The both-sampled outcomes (3,1) and (1,3) (symmetric under p1 = p2)
  // are exactly the ones with estimate 20/3.
  int hits = 0;
  for (const R& x : *table) hits += (x == R(20, 3)) ? 1 : 0;
  EXPECT_EQ(hits, 2);
}

TEST(Algorithm1Test, FailsWhenOrderIsInfeasible) {
  // Weighted binary with UNKNOWN seeds: processing (1,1) last forces a
  // negative estimate (Theorem 6.1 mechanics); with an order processing
  // (1,1) before (1,0)/(0,1), Algorithm 1 fails outright because the
  // single-sample outcomes are already fixed by (1,1)... construct the
  // degenerate failure: order (0,0) -> (1,1) -> (1,0) -> (0,1). Processing
  // (1,0) after (1,1) leaves it only outcomes already processed.
  auto model =
      MakeWeightedBinaryModel<R>({R(1, 4), R(1, 4)}, false, OrS<R>);
  auto compiled = CompileModel(model);
  // ids: (0,0)=0, (0,1)=1, (1,0)=2, (1,1)=3 in product order.
  auto bad = DeriveOrderBased(compiled, std::vector<int>{0, 3, 2, 1});
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInfeasible);
}

TEST(Algorithm1Test, UnknownSeedsOrGoesNegative) {
  // The Theorem 6.1 phenomenon, both ways. With unknown seeds the dense-
  // first OR^(L) order is infeasible outright (the (1,1) step swallows the
  // single-sample outcomes, leaving (1,0)/(0,1) over-determined)...
  auto model =
      MakeWeightedBinaryModel<R>({R(1, 4), R(1, 4)}, false, OrS<R>);
  auto compiled = CompileModel(model);
  auto dense_first =
      DeriveOrderBased(compiled, OrderByKey(compiled, OrLOrderKey));
  EXPECT_FALSE(dense_first.ok());

  // ... while the sparse-first order (the proof order of Theorem 6.1)
  // succeeds but is forced to the negative value (p1+p2-1)/(p1p2) = -8 on
  // the both-sampled outcome.
  // Product-order vector ids: (0,0)=0, (0,1)=1, (1,0)=2, (1,1)=3.
  auto table = DeriveOrderBased(compiled, std::vector<int>{0, 1, 2, 3});
  ASSERT_TRUE(table.ok());
  EXPECT_TRUE(IsUnbiased(compiled, *table));
  EXPECT_FALSE(IsNonnegative(*table));
  bool found = false;
  for (const R& x : *table) found = found || x == R(-8);
  EXPECT_TRUE(found);
}

TEST(Algorithm1Test, KnownSeedsOrStaysNonnegative) {
  // Same probabilities, but with known seeds partial information rescues
  // nonnegativity (Section 5.1).
  auto model = MakeWeightedBinaryModel<R>({R(1, 4), R(1, 4)}, true, OrS<R>);
  auto compiled = CompileModel(model);
  auto table = DeriveOrderBased(compiled, OrderByKey(compiled, OrLOrderKey));
  ASSERT_TRUE(table.ok());
  EXPECT_TRUE(IsUnbiased(compiled, *table));
  EXPECT_TRUE(IsNonnegative(*table));
  EXPECT_TRUE(IsMonotone(compiled, *table));
}

// ---------------------------------------------------------------------------
// Algorithm 2: constrained / batched derivation
// ---------------------------------------------------------------------------

int CountPositives(const std::vector<int>& value_indices) {
  int pos = 0;
  for (int idx : value_indices) pos += idx > 0 ? 1 : 0;
  return pos;
}

TEST(Algorithm2Test, DerivesOrUExactly) {
  // Batches by #positive entries reproduce OR^(U): at p1 = p2 = 1/4,
  // single-sample estimate 1/(p(1 + max(0, 1-2p))) = 8/3.
  auto model = MakeObliviousModel<R>({{R(0), R(1)}, {R(0), R(1)}},
                                     {R(1, 4), R(1, 4)}, true, OrS<R>);
  auto compiled = CompileModel(model);
  auto table = DeriveConstrained(compiled, BatchesByKey(compiled, CountPositives));
  ASSERT_TRUE(table.ok());
  EXPECT_TRUE(IsUnbiased(compiled, *table));
  EXPECT_TRUE(IsNonnegative(*table));

  const OrUTwo closed(0.25, 0.25);
  auto var = VarianceByVector(compiled, *table);
  for (int v = 0; v < compiled.num_vectors; ++v) {
    const auto& idx = compiled.vector_values[v];
    EXPECT_NEAR(ToDouble(var[v]), closed.Variance(idx[0], idx[1]), 1e-12)
        << compiled.vector_desc[v];
  }
  // Exact single-sample estimate value.
  bool found = false;
  for (const R& x : *table) found = found || x == R(8, 3);
  EXPECT_TRUE(found);
}

TEST(Algorithm2Test, DerivesMaxUOnMultiValueDomain) {
  // Domain {0,1,2}^2, batches by #positives: estimates on single-sampled
  // outcomes must scale linearly (v/(p(1+max(0,1-2p)))) as in the
  // continuous-value construction, p = 1/4 => value 2 maps to 16/3.
  auto model = MakeObliviousModel<R>({{R(0), R(1), R(2)}, {R(0), R(1), R(2)}},
                                     {R(1, 4), R(1, 4)}, true, MaxS<R>);
  auto compiled = CompileModel(model);
  auto table = DeriveConstrained(compiled, BatchesByKey(compiled, CountPositives));
  ASSERT_TRUE(table.ok());
  EXPECT_TRUE(IsUnbiased(compiled, *table));
  EXPECT_TRUE(IsNonnegative(*table));

  const MaxUTwo closed(0.25, 0.25);
  auto var = VarianceByVector(compiled, *table);
  for (int v = 0; v < compiled.num_vectors; ++v) {
    const auto& idx = compiled.vector_values[v];
    EXPECT_NEAR(ToDouble(var[v]),
                closed.Variance(static_cast<double>(idx[0]),
                                static_cast<double>(idx[1])),
                1e-12)
        << compiled.vector_desc[v];
  }
  bool found_8_3 = false, found_16_3 = false;
  for (const R& x : *table) {
    found_8_3 = found_8_3 || x == R(8, 3);
    found_16_3 = found_16_3 || x == R(16, 3);
  }
  EXPECT_TRUE(found_8_3);
  EXPECT_TRUE(found_16_3);
}

TEST(Algorithm2Test, SingletonBatchesMatchAlgorithm1WhenNonnegative) {
  // f^(+≺) == f^(≺) whenever the latter is nonnegative (Section 3).
  auto model = MakeObliviousModel<R>({{R(0), R(1)}, {R(0), R(1)}},
                                     {R(1, 2), R(1, 2)}, true, OrS<R>);
  auto compiled = CompileModel(model);
  auto order = OrderByKey(compiled, OrLOrderKey);
  auto plain = DeriveOrderBased(compiled, order);
  auto constrained = DeriveConstrainedOrder(compiled, order);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(constrained.ok());
  for (int o = 0; o < compiled.num_outcomes; ++o) {
    EXPECT_EQ((*plain)[o], (*constrained)[o]) << o;
  }
}

TEST(Algorithm2Test, AsymmetricOrderReproducesUasEstimator) {
  // Singleton batches processing (1,0) before (0,1) give the asymmetric
  // max^(Uas) of Section 4.2: S={1} -> 1/p1; S={2} -> 1/max(1-p1, p2).
  auto model = MakeObliviousModel<R>({{R(0), R(1)}, {R(0), R(1)}},
                                     {R(1, 4), R(1, 4)}, true, OrS<R>);
  auto compiled = CompileModel(model);
  // Product order: (0,0)=0, (0,1)=1, (1,0)=2, (1,1)=3.
  auto table = DeriveConstrainedOrder(compiled, std::vector<int>{0, 2, 1, 3});
  ASSERT_TRUE(table.ok());
  EXPECT_TRUE(IsUnbiased(compiled, *table));
  EXPECT_TRUE(IsNonnegative(*table));
  // 1/p1 = 4 and 1/max(1-p1, p2) = 4/3 must both appear.
  bool found_4 = false, found_4_3 = false;
  for (const R& x : *table) {
    found_4 = found_4 || x == R(4);
    found_4_3 = found_4_3 || x == R(4, 3);
  }
  EXPECT_TRUE(found_4);
  EXPECT_TRUE(found_4_3);
}

TEST(Algorithm2Test, InfeasibleWhenNoNonnegativeEstimatorExists) {
  auto model =
      MakeWeightedBinaryModel<R>({R(1, 4), R(1, 4)}, false, OrS<R>);
  auto compiled = CompileModel(model);
  auto table =
      DeriveConstrained(compiled, BatchesByKey(compiled, CountPositives));
  EXPECT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), StatusCode::kInfeasible);
}

// ---------------------------------------------------------------------------
// Properties, dominance, existence, Lemma 2.1
// ---------------------------------------------------------------------------

TEST(PropertiesTest, HtTableDominatedByL) {
  auto model = MakeObliviousModel<R>({{R(0), R(1)}, {R(0), R(1)}},
                                     {R(1, 2), R(1, 2)}, true, OrS<R>);
  auto compiled = CompileModel(model);
  auto l_table =
      DeriveOrderBased(compiled, OrderByKey(compiled, OrLOrderKey));
  ASSERT_TRUE(l_table.ok());

  // Build the HT table directly: 4/prod(p) on all-sampled outcomes with a
  // one; everything else zero.
  std::vector<R> ht(compiled.num_outcomes, R(0));
  for (int o = 0; o < compiled.num_outcomes; ++o) {
    // All-sampled outcomes are consistent with exactly one vector.
    int consistent = 0, witness = -1;
    for (int v = 0; v < compiled.num_vectors; ++v) {
      if (compiled.Consistent(v, o)) {
        ++consistent;
        witness = v;
      }
    }
    if (consistent == 1 && !compiled.f[witness].IsZero()) {
      ht[o] = R(4);  // 1/(1/2 * 1/2)
    }
  }
  EXPECT_TRUE(IsUnbiased(compiled, ht));
  EXPECT_EQ(CompareDominance(compiled, *l_table, ht),
            Dominance::kFirstDominates);
  EXPECT_EQ(CompareDominance(compiled, ht, *l_table),
            Dominance::kSecondDominates);
  EXPECT_EQ(CompareDominance(compiled, ht, ht), Dominance::kEqual);
}

TEST(PropertiesTest, LAndUAreIncomparable) {
  auto model = MakeObliviousModel<R>({{R(0), R(1)}, {R(0), R(1)}},
                                     {R(1, 4), R(1, 4)}, true, OrS<R>);
  auto compiled = CompileModel(model);
  auto l_table = DeriveOrderBased(compiled, OrderByKey(compiled, OrLOrderKey));
  auto u_table =
      DeriveConstrained(compiled, BatchesByKey(compiled, CountPositives));
  ASSERT_TRUE(l_table.ok());
  ASSERT_TRUE(u_table.ok());
  EXPECT_EQ(CompareDominance(compiled, *l_table, *u_table),
            Dominance::kIncomparable);
}

TEST(ExistenceTest, Theorem61OrImpossibleWithUnknownSeeds) {
  // p1 + p2 < 1: no unbiased nonnegative estimator for OR; at p1 + p2 >= 1
  // one exists. The LP is the machine-checkable certificate.
  auto infeasible = CompileModel(
      MakeWeightedBinaryModel<R>({R(1, 4), R(1, 4)}, false, OrS<R>));
  auto result = ExistsUnbiasedNonnegative(infeasible);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInfeasible);

  auto feasible = CompileModel(
      MakeWeightedBinaryModel<R>({R(2, 3), R(2, 3)}, false, OrS<R>));
  auto witness = ExistsUnbiasedNonnegative(feasible);
  ASSERT_TRUE(witness.ok());
  EXPECT_TRUE(IsUnbiased(feasible, *witness));
  EXPECT_TRUE(IsNonnegative(*witness));
}

TEST(ExistenceTest, Theorem61XorImpossibleForAnyProbability) {
  // RG^d over binary = XOR: impossible with unknown seeds even at high
  // sampling probabilities (the second argument of Theorem 6.1).
  for (R p : {R(1, 4), R(1, 2), R(9, 10)}) {
    auto compiled =
        CompileModel(MakeWeightedBinaryModel<R>({p, p}, false, XorS<R>));
    auto result = ExistsUnbiasedNonnegative(compiled);
    EXPECT_FALSE(result.ok()) << p.ToString();
  }
}

TEST(ExistenceTest, XorPossibleWithKnownSeeds) {
  // Known seeds reveal certified zeros, making XOR estimable.
  auto compiled = CompileModel(
      MakeWeightedBinaryModel<R>({R(1, 2), R(1, 2)}, true, XorS<R>));
  auto witness = ExistsUnbiasedNonnegative(compiled);
  ASSERT_TRUE(witness.ok());
  EXPECT_TRUE(IsUnbiased(compiled, *witness));
  EXPECT_TRUE(IsNonnegative(*witness));
}

TEST(ExistenceTest, ObliviousAlwaysFeasible) {
  auto compiled = CompileModel(MakeObliviousModel<R>(
      {{R(0), R(1)}, {R(0), R(1)}}, {R(1, 10), R(1, 10)}, true, OrS<R>));
  EXPECT_TRUE(ExistsUnbiasedNonnegative(compiled).ok());
}

TEST(DeltaTest, OrKnownVsUnknownSeeds) {
  // Lemma 2.1 on data (1,0), f = OR, eps in (0,1]:
  // unknown seeds: Delta = p1 (only the "entry-1 predicate high" portion
  // leaves OR=0 possible); with p1+p2<1 this is fine (>0) -- the OR
  // impossibility is a finer phenomenon than Lemma 2.1's necessary
  // condition.
  auto unknown = CompileModel(
      MakeWeightedBinaryModel<R>({R(1, 4), R(1, 3)}, false, OrS<R>));
  // vector (1,0) has product index {1,0} -> id 2 (entry-0-major product
  // enumeration: (0,0)=0,(0,1)=1,(1,0)=2,(1,1)=3).
  EXPECT_EQ(DeltaLemma21(unknown, 2, R(1, 2)), R(1, 4));
  EXPECT_EQ(DeltaLemma21(unknown, 2, R(1)), R(1, 4));
}

TEST(DeltaTest, XorUnknownSeedsHasDeltaZero) {
  // For XOR at (1,0) every outcome is consistent with (1,1) (XOR=0), so
  // Delta(v, eps) = 0: Lemma 2.1 directly certifies nonexistence.
  auto unknown = CompileModel(
      MakeWeightedBinaryModel<R>({R(1, 4), R(1, 3)}, false, XorS<R>));
  EXPECT_EQ(DeltaLemma21(unknown, 2, R(1, 2)), R(0));
}

TEST(DeltaTest, AllOrNothingGivesSamplingProbability) {
  // Single entry, oblivious: Delta(v, eps) = p for 0 < eps <= f(v): the
  // sample either reveals everything (probability p) or nothing.
  auto compiled = CompileModel(MakeObliviousModel<R>(
      {{R(0), R(1)}}, {R(2, 7)}, true,
      [](const std::vector<R>& v) { return v[0]; }));
  EXPECT_EQ(DeltaLemma21(compiled, 1, R(1, 2)), R(2, 7));
}

}  // namespace
}  // namespace pie
