// Multi-threaded ingest-while-query stress test for the sketch store,
// designed to run under ThreadSanitizer (see the tsan CI job).
//
// Four ingest threads (one instance each) stream deterministic update
// sequences into a shared store while two query threads repeatedly take
// snapshots and verify the core consistency contract: every (shard,
// instance) view in a snapshot equals a single-threaded replay of exactly
// the update prefix it claims to contain (each instance is written by one
// thread, so the shard's received subsequence is a prefix of that thread's
// per-shard sequence, identified by the sketch's update count). Queries
// over a snapshot must equal the same queries over a store rebuilt
// single-threaded from those prefixes, bitwise.

#include <atomic>
#include <cmath>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "engine/parallel_scan.h"
#include "gtest/gtest.h"
#include "store/query_service.h"
#include "store/sketch_store.h"
#include "util/random.h"

namespace pie {
namespace {

constexpr int kNumInstances = 4;
constexpr int kNumIngestThreads = kNumInstances;  // one instance per thread
constexpr int kNumQueryThreads = 2;
constexpr int kUpdatesPerInstance = 30000;

SketchStoreOptions StressOptions() {
  SketchStoreOptions options;
  options.num_shards = 8;
  options.default_tau = 50.0;
  options.salt = 424242;
  return options;
}

/// The deterministic update sequence instance `i`'s writer thread applies.
std::vector<WeightedItem> InstanceUpdates(int instance) {
  Rng rng(1000 + static_cast<uint64_t>(instance));
  std::vector<WeightedItem> updates;
  updates.reserve(kUpdatesPerInstance);
  for (int u = 0; u < kUpdatesPerInstance; ++u) {
    // Overlapping key universe across instances; skewed weights.
    const uint64_t key = static_cast<uint64_t>(1 + rng.UniformInt(20000));
    const double weight = std::ceil(200.0 / (1 + rng.UniformInt(40)));
    updates.push_back({key, weight});
  }
  return updates;
}

/// The prefix of `updates` that landed in `shard`, replayed single-threaded
/// into a fresh sketch: `count` is the number of records the snapshot's
/// (shard, instance) sketch reports having absorbed.
StreamingPpsSketch ReplayShardPrefix(const SketchStore& store,
                                     const std::vector<WeightedItem>& updates,
                                     int instance, int shard, uint64_t count) {
  StreamingPpsSketch replay(store.TauFor(instance),
                            store.InstanceSalt(instance));
  uint64_t applied = 0;
  for (const auto& update : updates) {
    if (applied == count) break;
    if (store.ShardOf(update.key) != shard) continue;
    replay.Update(update.key, update.weight);
    ++applied;
  }
  EXPECT_EQ(applied, count);
  return replay;
}

void ExpectSameSample(const StreamingPpsSketch& a,
                      const StreamingPpsSketch& b) {
  ASSERT_EQ(a.size(), b.size());
  const auto& ae = a.entries();
  const auto& be = b.entries();
  for (size_t i = 0; i < ae.size(); ++i) {
    // Arrival order and weights are reproduced exactly (single writer per
    // (shard, instance), deterministic sequence).
    ASSERT_EQ(ae[i].key, be[i].key) << i;
    ASSERT_EQ(ae[i].weight, be[i].weight) << i;
  }
}

TEST(StoreStressTest, ConcurrentIngestAndSnapshotQueries) {
  SketchStore store(StressOptions());
  std::vector<std::vector<WeightedItem>> updates;
  updates.reserve(kNumInstances);
  for (int i = 0; i < kNumInstances; ++i) updates.push_back(InstanceUpdates(i));

  std::atomic<int> writers_done{0};
  std::atomic<int> snapshots_checked{0};
  std::vector<std::thread> threads;
  threads.reserve(kNumIngestThreads + kNumQueryThreads);

  for (int i = 0; i < kNumIngestThreads; ++i) {
    threads.emplace_back([&store, &updates, &writers_done, i] {
      for (const auto& update : updates[static_cast<size_t>(i)]) {
        store.Update(i, update.key, update.weight);
      }
      writers_done.fetch_add(1);
    });
  }

  for (int q = 0; q < kNumQueryThreads; ++q) {
    threads.emplace_back([&store, &updates, &writers_done, &snapshots_checked,
                          q] {
      Rng rng(90 + static_cast<uint64_t>(q));
      while (true) {
        const bool final_pass = writers_done.load() == kNumIngestThreads;
        const auto snapshot = store.Snapshot();

        // (1) Replay check: every (shard, instance) view equals a
        // single-threaded replay of the prefix it claims. Spot-check one
        // random shard per pass (all shards on the final pass).
        for (int shard = 0; shard < store.num_shards(); ++shard) {
          if (!final_pass &&
              shard != static_cast<int>(rng.UniformInt(
                           static_cast<uint64_t>(store.num_shards())))) {
            continue;
          }
          for (int instance = 0; instance < kNumInstances; ++instance) {
            const StreamingPpsSketch* view =
                snapshot->Shard(shard).Instance(instance);
            if (view == nullptr) continue;
            const StreamingPpsSketch replay = ReplayShardPrefix(
                store, updates[static_cast<size_t>(instance)], instance,
                shard, view->num_updates());
            ExpectSameSample(*view, replay);
          }
        }

        // (2) Query check: estimates over the live snapshot equal the same
        // queries over a store rebuilt single-threaded from the snapshot's
        // per-shard prefixes, bitwise.
        SketchStore rebuilt(StressOptions());
        for (int shard = 0; shard < store.num_shards(); ++shard) {
          for (int instance = 0; instance < kNumInstances; ++instance) {
            const StreamingPpsSketch* view =
                snapshot->Shard(shard).Instance(instance);
            if (view == nullptr) continue;
            uint64_t applied = 0;
            for (const auto& update : updates[static_cast<size_t>(instance)]) {
              if (applied == view->num_updates()) break;
              if (store.ShardOf(update.key) != shard) continue;
              rebuilt.Update(instance, update.key, update.weight);
              ++applied;
            }
          }
        }
        const QueryService live(snapshot, {/*num_threads=*/2});
        const QueryService replayed(rebuilt.Snapshot(), {/*num_threads=*/1});
        const auto live_max = live.MaxDominance(0, 1);
        const auto replay_max = replayed.MaxDominance(0, 1);
        ASSERT_TRUE(live_max.ok());
        ASSERT_TRUE(replay_max.ok());
        EXPECT_EQ(live_max->ht.estimate, replay_max->ht.estimate);
        EXPECT_EQ(live_max->ht.variance, replay_max->ht.variance);
        EXPECT_EQ(live_max->l.estimate, replay_max->l.estimate);
        EXPECT_EQ(live_max->l.variance, replay_max->l.variance);
        const auto live_l1 = live.L1Distance(2, 3);
        const auto replay_l1 = replayed.L1Distance(2, 3);
        ASSERT_TRUE(live_l1.ok());
        ASSERT_TRUE(replay_l1.ok());
        EXPECT_EQ(live_l1->estimate, replay_l1->estimate);

        snapshots_checked.fetch_add(1);
        if (final_pass) break;
      }
    });
  }

  for (auto& thread : threads) thread.join();
  // Both query threads ran at least their final full-verification pass.
  EXPECT_GE(snapshots_checked.load(), kNumQueryThreads);

  // The settled store equals a full single-threaded replay.
  const auto final_snapshot = store.Snapshot();
  for (int instance = 0; instance < kNumInstances; ++instance) {
    EXPECT_EQ(final_snapshot->UpdateCount(instance),
              static_cast<uint64_t>(kUpdatesPerInstance));
    StreamingPpsSketch replay(store.TauFor(instance),
                              store.InstanceSalt(instance));
    for (const auto& update : updates[static_cast<size_t>(instance)]) {
      replay.Update(update.key, update.weight);
    }
    const auto merged = final_snapshot->MergedInstance(instance);
    const auto merged_sorted = merged.EntriesByKey();
    const auto replay_sorted = replay.EntriesByKey();
    ASSERT_EQ(merged_sorted.size(), replay_sorted.size());
    for (size_t i = 0; i < merged_sorted.size(); ++i) {
      EXPECT_EQ(merged_sorted[i].key, replay_sorted[i].key);
      EXPECT_EQ(merged_sorted[i].weight, replay_sorted[i].weight);
    }
  }
}

// The deterministic scan driver under TSan: concurrent multi-threaded
// scans of one shared batch (every ScanBatch call shares the persistent
// process-wide worker pool, submitting chunk tasks over the same
// read-only slabs) must be race-free and return the same bytes for every
// thread count -- the guarantee the multi-threaded QueryService scans
// ride on.
TEST(StoreStressTest, ParallelScanIsRaceFreeAndThreadCountInvariant) {
  SketchStore store(StressOptions());
  const auto updates = InstanceUpdates(0);
  for (const auto& update : updates) {
    store.Update(0, update.key, update.weight);
    store.Update(1, update.key, update.weight * 0.5);
  }
  const auto snapshot = store.Snapshot();

  // One big r=2 batch over the union of sampled keys (all shards).
  const double tau1 = snapshot->TauFor(0);
  const double tau2 = snapshot->TauFor(1);
  const SeedFunction seed1(snapshot->InstanceSalt(0));
  const SeedFunction seed2(snapshot->InstanceSalt(1));
  OutcomeBatch batch;
  batch.Reset(Scheme::kPps, 2);
  for (int s = 0; s < snapshot->num_shards(); ++s) {
    const StreamingPpsSketch* s1 = snapshot->Shard(s).Instance(0);
    const StreamingPpsSketch* s2 = snapshot->Shard(s).Instance(1);
    if (s1 == nullptr) continue;
    for (const auto& e : s1->entries()) {
      const int i = batch.AppendRow();
      double* tau = batch.param_row(i);
      tau[0] = tau1;
      tau[1] = tau2;
      double* seed = batch.seed_row(i);
      seed[0] = seed1(e.key);
      seed[1] = seed2(e.key);
      uint8_t* sampled = batch.sampled_row(i);
      double* value = batch.value_row(i);
      sampled[0] = 1;
      value[0] = e.weight;
      double v = 0.0;
      const bool in2 = s2 != nullptr && s2->Lookup(e.key, &v);
      sampled[1] = in2 ? 1 : 0;
      value[1] = in2 ? v : 0.0;
    }
  }
  ASSERT_GT(batch.size(), 1000);

  auto kernel = EstimationEngine::Global().Kernel(
      {Function::kMax, Scheme::kPps, Regime::kKnownSeeds, Family::kL},
      SamplingParams({tau1, tau2}));
  ASSERT_TRUE(kernel.ok());

  ScanOptions options;
  options.num_threads = 1;
  const ScanPartial reference = ScanBatch(**kernel, batch.view(), options);

  // Several scanning threads, each driving its own multi-threaded scan of
  // the shared batch concurrently.
  std::vector<std::thread> scanners;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < 3; ++t) {
    scanners.emplace_back([&, t] {
      for (const int threads : {2, 8}) {
        ScanOptions opts;
        opts.num_threads = threads;
        const ScanPartial got = ScanBatch(**kernel, batch.view(), opts);
        if (std::memcmp(&got.sum, &reference.sum, sizeof(double)) != 0 ||
            std::memcmp(&got.variance, &reference.variance,
                        sizeof(double)) != 0 ||
            got.per_key.count() != reference.per_key.count()) {
          mismatches.fetch_add(1);
        }
      }
      (void)t;
    });
  }
  for (auto& scanner : scanners) scanner.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace pie
