// The PIE_FAST_LOG accuracy/versioning contract (core/fast_log.h):
//  * FastLog is within kFastLogMaxUlp ulps of std::log over the regime
//    input ranges (and far beyond them -- the whole positive normal range);
//  * PieLog routes to the tier the build selected, bitwise;
//  * within the tier, the weighted max^(L) scan is bitwise deterministic
//    at any thread count and batch slicing, and -- because the fast-log
//    tier is libm-free (pure IEEE arithmetic, no platform libm) -- its
//    digest matches a committed golden value;
//  * the estimator stays unbiased under the active tier (Monte Carlo).
//
// Runs in every CMake config; the golden-digest comparison and the
// FastLog-specific assertions that depend on tier selection are gated on
// PIE_FAST_LOG, everything else runs in both tiers.

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/fast_log.h"
#include "core/max_weighted.h"
#include "engine/engine.h"
#include "engine/parallel_scan.h"
#include "gtest/gtest.h"
#include "sampling/poisson.h"
#include "util/random.h"
#include "util/stats.h"

namespace pie {
namespace {

::testing::AssertionResult BitwiseEqual(double a, double b) {
  uint64_t ba, bb;
  std::memcpy(&ba, &a, sizeof(ba));
  std::memcpy(&bb, &b, sizeof(bb));
  if (ba == bb) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << a << " and " << b << " differ (bits 0x" << std::hex << ba
         << " vs 0x" << bb << ")";
}

/// ULP distance between two finite doubles of the same sign regime, via
/// the ordered-integer mapping (negative doubles map below positives).
uint64_t UlpDistance(double a, double b) {
  auto ordered = [](double v) {
    int64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    return bits < 0 ? std::numeric_limits<int64_t>::min() - bits : bits;
  };
  const int64_t oa = ordered(a);
  const int64_t ob = ordered(b);
  return oa > ob ? static_cast<uint64_t>(oa - ob)
                 : static_cast<uint64_t>(ob - oa);
}

// ---------------------------------------------------------------------------
// FastLog accuracy vs libm
// ---------------------------------------------------------------------------

TEST(FastLogTest, ExactAtOne) {
  EXPECT_TRUE(BitwiseEqual(FastLog(1.0), 0.0));
}

TEST(FastLogTest, WithinUlpBoundOnRegimeRanges) {
  // The eq (29)/(30) log arguments are products of ratios >= 1, so the
  // regime range is [1, inf); sweep it densely near 1 (where log loses
  // absolute precision), across the moderate values the estimators
  // produce, and across the whole positive normal range for headroom.
  Rng rng(101);
  uint64_t max_ulp = 0;
  double worst = 1.0;
  auto check = [&](double x) {
    const double ref = std::log(x);
    const double fast = FastLog(x);
    const uint64_t ulp = UlpDistance(fast, ref);
    if (ulp > max_ulp) {
      max_ulp = ulp;
      worst = x;
    }
  };
  for (int i = 0; i < 200000; ++i) {
    check(1.0 + rng.UniformDouble(0.0, 1e-6));        // barely above 1
    check(rng.UniformDouble(1.0, 16.0));              // regime bulk
    check(rng.UniformDouble(1.0, 1e9));               // wide regime
    check(std::exp2(rng.UniformDouble(-1000.0, 1000.0)));  // full normals
  }
  // Power-of-two and sqrt(2) reduction boundaries, exact and +-1 ulp.
  for (int e = -64; e <= 64; ++e) {
    const double p = std::ldexp(1.0, e);
    for (double x : {p, std::nextafter(p, 2 * p), std::nextafter(p, 0.0),
                     p * 1.4142135623730951}) {
      if (x > 0) check(x);
    }
  }
  EXPECT_LE(max_ulp, static_cast<uint64_t>(kFastLogMaxUlp))
      << "worst x = " << worst;
}

TEST(FastLogTest, PieLogSelectsBuildTierBitwise) {
  Rng rng(103);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.UniformDouble(1.0, 1e6);
#ifdef PIE_FAST_LOG
    EXPECT_TRUE(BitwiseEqual(PieLog(x), FastLog(x)));
#else
    EXPECT_TRUE(BitwiseEqual(PieLog(x), std::log(x)));
#endif
  }
}

// ---------------------------------------------------------------------------
// Tier determinism: thread count, batch slicing, golden digest
// ---------------------------------------------------------------------------

void Fnv1aAdd(uint64_t* digest, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  for (int byte = 0; byte < 8; ++byte) {
    *digest ^= (bits >> (8 * byte)) & 0xff;
    *digest *= 1099511628211ull;
  }
}

/// Log-heavy weighted max^(L) batch: values inside (0, tau) on both
/// entries so the both-sampled rows land in the eq (29)/(30) regimes;
/// natural PPS sampling keeps every pattern bucket populated. Odd size so
/// the partition-block tail is exercised.
OutcomeBatch MakeWeightedLogBatch(int size) {
  const std::vector<double> tau = {10.0, 8.0};
  Rng rng(107);
  OutcomeBatch batch;
  batch.Reset(Scheme::kPps, 2);
  std::vector<double> values(2);
  for (int i = 0; i < size; ++i) {
    values[0] = rng.UniformDouble(0.5, 9.9);
    values[1] = values[0] * rng.UniformDouble(0.1, 0.8);
    batch.Append(SamplePps(values, tau, rng));
  }
  return batch;
}

KernelHandle WeightedMaxKernel() {
  return EstimationEngine::Global()
      .Kernel({Function::kMax, Scheme::kPps, Regime::kKnownSeeds, Family::kL},
              SamplingParams({10.0, 8.0}))
      .value();
}

TEST(FastLogTierTest, ScanIsBitwiseDeterministicAcrossThreadsAndShapes) {
  const int kRows = 4103;  // crosses block boundaries with a ragged tail
  const OutcomeBatch batch = MakeWeightedLogBatch(kRows);
  const BatchView view = batch.view();
  const KernelHandle kernel = WeightedMaxKernel();

  std::vector<double> est(kRows), fused_est(kRows), fused_var(kRows);
  kernel->EstimateMany(view, est.data());
  kernel->EstimateWithVarianceMany(view, fused_est.data(), fused_var.data());

  // Batch shape must not matter: re-run EstimateMany over ragged slices.
  for (int chunk : {1, 127, 256, 1000}) {
    std::vector<double> sliced(kRows);
    for (int begin = 0; begin < kRows; begin += chunk) {
      const int count = std::min(chunk, kRows - begin);
      kernel->EstimateMany(view.Slice(begin, count), sliced.data() + begin);
    }
    for (int i = 0; i < kRows; ++i) {
      ASSERT_TRUE(BitwiseEqual(sliced[static_cast<size_t>(i)],
                               est[static_cast<size_t>(i)]))
          << "chunk " << chunk << " row " << i;
    }
  }

  // Thread count must not matter: the deterministic scan driver owns the
  // combine order.
  ScanOptions options;
  options.num_threads = 1;
  const ScanPartial one = ScanBatch(*kernel, view, options);
  for (int threads : {2, 8}) {
    options.num_threads = threads;
    const ScanPartial many = ScanBatch(*kernel, view, options);
    EXPECT_TRUE(BitwiseEqual(many.sum, one.sum)) << threads << " threads";
    EXPECT_TRUE(BitwiseEqual(many.variance, one.variance))
        << threads << " threads";
  }

  uint64_t digest = 14695981039346656037ull;  // FNV-1a offset basis
  for (int i = 0; i < kRows; ++i) {
    Fnv1aAdd(&digest, est[static_cast<size_t>(i)]);
    Fnv1aAdd(&digest, fused_var[static_cast<size_t>(i)]);
  }
  Fnv1aAdd(&digest, one.sum);
  Fnv1aAdd(&digest, one.variance);
  char hex[32];
  std::snprintf(hex, sizeof hex, "%016llx",
                static_cast<unsigned long long>(digest));

#ifdef PIE_FAST_LOG
  // The fast-log tier is libm-free on this path -- Rng, PPS sampling, the
  // closed forms, and FastLog are pure IEEE add/sub/mul/div and bit ops
  // compiled under -ffp-contract=off -- so the digest is portable across
  // machines and committed as a golden value. A mismatch means the tier's
  // estimator version changed; that requires a deliberate golden update.
  EXPECT_STREQ(hex, "118f4d05fe31dead");
#else
  // The std::log tier's bits depend on the platform libm; just report.
  std::printf("std::log tier digest: %s\n", hex);
#endif
}

// ---------------------------------------------------------------------------
// Unbiasedness under the active tier
// ---------------------------------------------------------------------------

TEST(FastLogTierTest, WeightedMaxStaysUnbiasedUnderActiveTier) {
  // Log-regime-heavy value pairs: the estimate of a both-sampled outcome
  // goes through PieLog, so the tier's log error feeds straight into the
  // Monte Carlo mean if it were biased beyond ulp noise.
  const double tau1 = 10.0, tau2 = 8.0;
  const MaxLWeightedTwo est(tau1, tau2);
  Rng rng(109);
  for (auto v : {std::vector<double>{6.5, 5.2}, {4.0, 2.0}, {9.0, 7.0}}) {
    RunningStat stat;
    for (int t = 0; t < 300000; ++t) {
      stat.Add(est.Estimate(SamplePps(v, {tau1, tau2}, rng)));
    }
    EXPECT_NEAR(stat.mean(), std::max(v[0], v[1]),
                5.0 * stat.standard_error() + 1e-9)
        << "v=(" << v[0] << "," << v[1] << ")";
  }
}

}  // namespace
}  // namespace pie
